package chow88

import (
	"reflect"
	"strings"
	"testing"

	"chow88/internal/benchprog"
	"chow88/internal/pipeline"
	"chow88/internal/pixie"
	"chow88/internal/sim"
)

// The procedure integrator's contract: integrated programs behave exactly
// like their originals (same Output on every engine), pass the linkage
// validator cleanly under every mode, stay byte-deterministic across the
// parallel and sequential pipelines, and — the point of the exercise —
// actually run faster under mode C with profile feedback.

// TestInlineCleanCorpus compiles the whole suite under every measurement
// mode with inlining on and Strict set: a single check violation, demotion
// or discarded integration fails the test.
func TestInlineCleanCorpus(t *testing.T) {
	progs := benchprog.All()
	if testing.Short() {
		progs = progs[:4]
	}
	for _, bp := range progs {
		for _, mode := range allModes() {
			mode.Inline = true
			mode.Strict = true
			label := bp.Name + "/" + mode.Name
			prog, err := Compile(bp.Source, mode)
			if err != nil {
				t.Fatalf("%s: inlined compile: %v", label, err)
			}
			if len(prog.Demotions) != 0 {
				t.Fatalf("%s: inlined compile degraded: %+v", label, prog.Demotions)
			}
			if prog.Inline == nil {
				t.Fatalf("%s: no inline report (integration discarded?)", label)
			}
		}
	}
}

// TestInlineDifferentialThreeEngines proves inlined programs produce
// byte-identical Output to their non-inlined builds, on all three
// simulator tiers.
func TestInlineDifferentialThreeEngines(t *testing.T) {
	progs := benchprog.All()
	if testing.Short() {
		progs = progs[:4]
	}
	for _, bp := range progs {
		base, err := Compile(bp.Source, ModeC())
		if err != nil {
			t.Fatalf("%s: compile: %v", bp.Name, err)
		}
		want, err := base.Run()
		if err != nil {
			t.Fatalf("%s: run: %v", bp.Name, err)
		}
		inl, err := CompileInlined(bp.Source, ModeC(), 0)
		if err != nil {
			t.Fatalf("%s: inlined compile: %v", bp.Name, err)
		}
		res, err := requireEnginesAgree(t, bp.Name+"/inlined", inl, sim.Options{})
		if err != nil {
			t.Fatalf("%s: inlined run: %v", bp.Name, err)
		}
		if !reflect.DeepEqual(res.Output, want.Output) {
			t.Fatalf("%s: inlined output diverged\n got: %v\nwant: %v", bp.Name, res.Output, want.Output)
		}
	}
}

// TestInlineParallelSequentialDeterminism: the integrated build must be
// byte-identical whichever pipeline compiled it.
func TestInlineParallelSequentialDeterminism(t *testing.T) {
	progs := benchprog.All()
	if testing.Short() {
		progs = progs[:4]
	}
	for _, bp := range progs {
		par := ModeC()
		par.Inline = true
		seq := par
		seq.Sequential = true
		p1, err := Compile(bp.Source, par)
		if err != nil {
			t.Fatalf("%s: parallel: %v", bp.Name, err)
		}
		p2, err := Compile(bp.Source, seq)
		if err != nil {
			t.Fatalf("%s: sequential: %v", bp.Name, err)
		}
		if p1.Disassemble() != p2.Disassemble() {
			t.Fatalf("%s: parallel and sequential inlined builds diverge", bp.Name)
		}
		if !reflect.DeepEqual(p1.Code, p2.Code) {
			t.Fatalf("%s: inlined images diverge beyond the disassembly", bp.Name)
		}
	}
}

// TestInlineCyclesWinModeC is the acceptance bar: under mode C with
// profile feedback, inlining must reduce cycles on at least 6 of the 13
// programs and regress none by more than 2%. The linkage attribution must
// show where the cycles went: call-linkage cycles strictly drop whenever
// sites were inlined.
func TestInlineCyclesWinModeC(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite profile-guided measurement")
	}
	improved, regressed := 0, 0
	for _, bp := range benchprog.All() {
		ipra, err := CompileProfiled(bp.Source, ModeC())
		if err != nil {
			t.Fatalf("%s: profiled: %v", bp.Name, err)
		}
		ipraRes, err := ipra.Run()
		if err != nil {
			t.Fatalf("%s: profiled run: %v", bp.Name, err)
		}
		inl, err := CompileInlined(bp.Source, ModeC(), 0)
		if err != nil {
			t.Fatalf("%s: inlined: %v", bp.Name, err)
		}
		inlRes, err := inl.Run()
		if err != nil {
			t.Fatalf("%s: inlined run: %v", bp.Name, err)
		}
		if !reflect.DeepEqual(inlRes.Output, ipraRes.Output) {
			t.Fatalf("%s: inlined output diverged", bp.Name)
		}
		ic, nc := ipraRes.Stats.Cycles, inlRes.Stats.Cycles
		switch {
		case nc < ic:
			improved++
		case nc > ic:
			regressed++
			if pct := -pixie.PercentReduction(ic, nc); pct > 2.0 {
				t.Errorf("%s: inlining regressed cycles by %.2f%% (%d -> %d)", bp.Name, pct, ic, nc)
			}
		}
		if inl.Inline != nil && inl.Inline.SitesInlined > 0 &&
			inlRes.Stats.LinkageCycles >= ipraRes.Stats.LinkageCycles {
			t.Errorf("%s: %d sites inlined but linkage cycles did not drop (%d -> %d)",
				bp.Name, inl.Inline.SitesInlined, ipraRes.Stats.LinkageCycles, inlRes.Stats.LinkageCycles)
		}
	}
	if improved < 6 {
		t.Errorf("inlining improved only %d programs, want >= 6", improved)
	}
	t.Logf("inlining: %d improved, %d regressed", improved, regressed)
}

// TestInlineModeSkewFallback is the statefile-fingerprint bugfix test: a
// state captured without inlining must never serve an inline-mode build
// (and an inline-mode build must never capture state), so flipping the
// flag can only force a full rebuild — not silently reuse non-inlined
// plans.
func TestInlineModeSkewFallback(t *testing.T) {
	b := benchprog.Lookup("stanford")

	res, err := pipeline.BuildIncremental(b.Source, ModeC(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.State == nil {
		t.Fatal("clean non-inlined build captured no state")
	}

	inlMode := ModeC()
	inlMode.Inline = true
	res2, err := pipeline.BuildIncremental(b.Source, inlMode, res.State)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Incremental {
		t.Fatal("non-inlined state was reused for an inline-mode build")
	}
	if !strings.Contains(res2.FallbackReason, "inlin") {
		t.Errorf("fallback reason %q does not mention inlining", res2.FallbackReason)
	}
	if res2.State != nil {
		t.Error("inline-mode build captured state (chunk mapping no longer describes the program)")
	}
	full, err := Compile(b.Source, inlMode)
	if err != nil {
		t.Fatal(err)
	}
	sameProgram(t, "inline mode skew", &Program{Code: res2.Prog}, full)

	// The inline axis must also skew the fingerprint itself, so even a
	// path that only compares fingerprints refuses the crossing.
	res3, err := pipeline.BuildIncremental(b.Source, inlMode, res.State)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Incremental {
		t.Fatal("second inline-mode build went incremental")
	}
}
