package chow88

// Tests for the decision-provenance explain layer: journal determinism
// across the parallel and sequential pipelines, the golden journals for
// nim under modes B and C, the suite-wide cause invariants, output
// neutrality (an active journal must not perturb generated code), and the
// explaindiff attribution bar.
//
// The journal is one process-global pointer, so none of these tests use
// t.Parallel — each installs a fresh journal per compile and uninstalls it
// before asserting.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"chow88/internal/benchprog"
	"chow88/internal/explain"
	"chow88/internal/faultinject"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden explain journals")

// journalFor compiles src under mode with a fresh journal and returns the
// artifact (and the program, for tests that need both).
func journalFor(t *testing.T, src string, mode Mode) (*explain.Artifact, *Program) {
	t.Helper()
	explain.Begin()
	defer explain.End()
	prog, err := Compile(src, mode)
	if err != nil {
		t.Fatalf("compile %s: %v", mode.Name, err)
	}
	return explain.Current().Artifact(), prog
}

// TestExplainDeterminism is the journal's contract: for every suite
// program under every measurement mode, the parallel pipeline's journal is
// byte-identical to the sequential pipeline's. Decisions carry no
// timestamps or worker identities, every set iterated while recording has
// a fixed order, and the artifact serializes in module order — so the JSON
// forms must match exactly.
func TestExplainDeterminism(t *testing.T) {
	forceParallel(t)
	for _, p := range benchprog.All() {
		for _, mode := range allModes() {
			t.Run(fmt.Sprintf("%s/%s", p.Name, mode.Name), func(t *testing.T) {
				seqMode := mode
				seqMode.Sequential = true
				seqArt, _ := journalFor(t, p.Source, seqMode)
				parArt, _ := journalFor(t, p.Source, mode)
				seq, err := json.Marshal(seqArt)
				if err != nil {
					t.Fatal(err)
				}
				par, err := json.Marshal(parArt)
				if err != nil {
					t.Fatal(err)
				}
				if string(seq) != string(par) {
					t.Errorf("parallel journal diverges from sequential\n%s", firstDiff(string(seq), string(par)))
				}
			})
		}
	}
}

// TestExplainGolden pins the nim journal under modes B and C. Run with
// -update after an intentional decision change to refresh the goldens.
func TestExplainGolden(t *testing.T) {
	src, err := os.ReadFile("testdata/nim.cw")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		mode   Mode
		golden string
	}{
		{ModeB(), "testdata/nim.explain.b.golden"},
		{ModeC(), "testdata/nim.explain.c.golden"},
	} {
		t.Run(filepath.Base(c.golden), func(t *testing.T) {
			art, _ := journalFor(t, string(src), c.mode)
			got := art.Narrative("")
			if *updateGolden {
				if err := os.WriteFile(c.golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(c.golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("journal narrative drifted from %s (run with -update if intended)\n%s",
					c.golden, firstDiff(string(want), got))
			}
		})
	}
}

// TestExplainInvariants sweeps the whole suite under mode C and checks the
// journal's completeness contract: every save/restore site in the final
// plan has a matching placement record, and every recorded decision
// carries a cause where one is defined.
func TestExplainInvariants(t *testing.T) {
	for _, p := range benchprog.All() {
		t.Run(p.Name, func(t *testing.T) {
			art, prog := journalFor(t, p.Source, ModeC())
			for f, fp := range prog.Plan.Funcs {
				pj := art.Proc(f.Name)
				find := func(kind, reg, block string) bool {
					if pj == nil {
						return false
					}
					for _, d := range pj.Decisions {
						if d.Kind == kind && d.Reg == reg && d.Block == block {
							return true
						}
					}
					return false
				}
				for _, r := range fp.Plan.Regs().Regs() {
					for _, b := range fp.Plan.SaveAt[r] {
						if !find(explain.KindSave, r.String(), b.Name) {
							t.Errorf("%s: plan saves %s at %s but the journal has no record", f.Name, r, b.Name)
						}
					}
					for _, b := range fp.Plan.RestoreAt[r] {
						if !find(explain.KindRestore, r.String(), b.Name) {
							t.Errorf("%s: plan restores %s at %s but the journal has no record", f.Name, r, b.Name)
						}
					}
				}
				// Every procedure has a classification verdict with a cause.
				found := false
				if pj != nil {
					for _, d := range pj.Decisions {
						if d.Kind == explain.KindClassify {
							found = true
							if d.Cause == "" {
								t.Errorf("%s: classification without a cause", f.Name)
							}
						}
					}
				}
				if !found {
					t.Errorf("%s: no classification recorded", f.Name)
				}
			}
			// Placement records always carry a cause enum.
			for _, pj := range art.Procs {
				for _, d := range pj.Decisions {
					if (d.Kind == explain.KindSave || d.Kind == explain.KindRestore) && d.Cause == "" {
						t.Errorf("%s: %s of %s at %s has no cause", pj.Func, d.Kind, d.Reg, d.Block)
					}
				}
			}
		})
	}
}

// TestExplainRecordsDemotions forces a validation failure with fault
// injection and requires the degradation ladder's interventions to appear
// in the journal with their phase and reason.
func TestExplainRecordsDemotions(t *testing.T) {
	for _, p := range benchprog.All() {
		explain.Begin()
		plan := &faultinject.Plan{Point: faultinject.PointDropSave}
		faultinject.Arm(plan)
		prog, err := Compile(p.Source, ModeC())
		faultinject.Disarm()
		art := explain.End().Artifact()
		if err != nil {
			t.Fatalf("%s: chaos compile must degrade, not fail: %v", p.Name, err)
		}
		if !plan.Fired() {
			continue
		}
		if len(prog.Demotions) == 0 {
			t.Fatalf("%s: fault fired but nothing degraded", p.Name)
		}
		demotes := 0
		for _, pj := range art.Procs {
			for _, d := range pj.Decisions {
				if d.Kind == explain.KindDemote {
					demotes++
					if d.Cause == "" || d.Detail == "" {
						t.Errorf("%s: demotion record lacks cause/detail: %+v", pj.Func, d)
					}
				}
			}
		}
		if demotes < len(prog.Demotions) {
			t.Errorf("%s: %d demotions on the report but only %d demote records in the journal",
				p.Name, len(prog.Demotions), demotes)
		}
		return // one fired fault is enough
	}
	t.Skip("PointDropSave never found an eligible site")
}

// TestExplainRecordsInlineVerdicts compiles the suite with inlining and
// requires every refused-for-budget site to be visible in the journal.
func TestExplainRecordsInlineVerdicts(t *testing.T) {
	mode := ModeC()
	mode.Inline = true
	mode.InlineBudget = 10 // tight budget so refusals happen
	sawRefusal := false
	for _, p := range benchprog.All() {
		explain.Begin()
		prog, err := CompileProfiled(p.Source, mode)
		art := explain.End().Artifact()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if prog.Inline == nil {
			continue
		}
		accepts, refusals := 0, 0
		for _, d := range art.Decisions() {
			switch d.Kind {
			case explain.KindInline:
				accepts++
			case explain.KindInlineRefuse:
				refusals++
				if d.Cause != "budget" || d.Detail == "" {
					t.Errorf("%s: refusal record lacks cause/detail: %+v", p.Name, d)
				}
			}
		}
		if accepts != prog.Inline.SitesInlined {
			t.Errorf("%s: %d sites inlined but %d accept records", p.Name, prog.Inline.SitesInlined, accepts)
		}
		if prog.Inline.BudgetStopped > 0 && refusals == 0 {
			t.Errorf("%s: %d sites budget-stopped but no refusal records", p.Name, prog.Inline.BudgetStopped)
		}
		if refusals > 0 {
			sawRefusal = true
		}
	}
	if !sawRefusal {
		t.Error("tight budget never produced a recorded refusal anywhere in the suite")
	}
}

// TestExplainOutputNeutral: an active journal must not change the code the
// compiler generates — observation only.
func TestExplainOutputNeutral(t *testing.T) {
	for _, p := range benchprog.All() {
		explain.End()
		off, err := Compile(p.Source, ModeC())
		if err != nil {
			t.Fatal(err)
		}
		explain.Begin()
		on, err := Compile(p.Source, ModeC())
		explain.End()
		if err != nil {
			t.Fatal(err)
		}
		if off.Disassemble() != on.Disassemble() {
			t.Errorf("%s: journal-on compile differs from journal-off", p.Name)
		}
	}
}

// TestExplainDiffAttribution is the acceptance bar for explaindiff: with
// measured block frequencies (profile feedback), diffing the mode B and
// mode C journals of a suite program must attribute at least 90%% of the
// measured save/restore cycle delta. nim is used because shrink-wrapping
// moves real traffic there.
func TestExplainDiffAttribution(t *testing.T) {
	src, err := os.ReadFile("testdata/nim.cw")
	if err != nil {
		t.Fatal(err)
	}
	measure := func(mode Mode) (*explain.Artifact, int64) {
		t.Helper()
		explain.Begin()
		prog, err := CompileProfiled(string(src), mode)
		art := explain.End().Artifact()
		if err != nil {
			t.Fatalf("compile %s: %v", mode.Name, err)
		}
		res, err := prog.Run()
		if err != nil {
			t.Fatalf("run %s: %v", mode.Name, err)
		}
		return art, res.Stats.SaveRestoreLS()
	}
	artB, lsB := measure(ModeB())
	artC, lsC := measure(ModeC())
	measured := float64(lsC - lsB)
	if measured == 0 {
		t.Fatal("shrink-wrapping moved no save/restore traffic on nim; pick a different program")
	}
	d := explain.DiffArtifacts(artB, artC)
	if att := d.Attribution(measured); att < 90 {
		t.Errorf("explaindiff attributes %.1f%% of the %v-cycle save/restore delta, want >= 90%%\n%s",
			att, measured, d.Format("B", "C", measured, true))
	}
}
