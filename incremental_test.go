package chow88

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"chow88/internal/benchprog"
	"chow88/internal/front"
	"chow88/internal/incr"
	"chow88/internal/mach"
	"chow88/internal/obs"
	"chow88/internal/pipeline"
	"chow88/internal/progen"
)

// Incremental recompilation's contract is absolute: whatever the edit,
// whatever was reused, the output must be byte-identical to a full
// compile of the same source. These tests enforce it over hand-written
// edits, generated programs and randomized edit sequences, and pin the
// reuse accounting (the whole point of the feature) via obs counters.

// samePrograms compares two linked images in full: every instruction,
// every function record, the data layout.
func sameProgram(t *testing.T, ctx string, got, want *Program) {
	t.Helper()
	if got.Disassemble() != want.Disassemble() {
		t.Fatalf("%s: incremental disassembly diverged from full compile", ctx)
	}
	if !reflect.DeepEqual(got.Code, want.Code) {
		t.Fatalf("%s: incremental image diverged from full compile beyond the disassembly", ctx)
	}
}

// bodyEdit inserts a statement at the start of the named function's body.
func bodyEdit(t testing.TB, src, name, stmt string) string {
	t.Helper()
	chunks, err := front.ChunkSource(src)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range chunks {
		if c.Kind == front.ChunkFunc && c.Name == name {
			brace := strings.Index(c.Text, "{")
			chunks[i].Text = c.Text[:brace+1] + "\n  " + stmt + c.Text[brace+1:]
			return joinChunks(chunks)
		}
	}
	t.Fatalf("no function %s in source", name)
	return ""
}

func joinChunks(chunks []front.Chunk) string {
	var b strings.Builder
	for _, c := range chunks {
		b.WriteString(c.Text)
		b.WriteString("\n\n")
	}
	return b.String()
}

// definedFuncs returns the names of the function definitions in src, in
// declaration order.
func definedFuncs(t testing.TB, src string) []string {
	t.Helper()
	chunks, err := front.ChunkSource(src)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, c := range chunks {
		if c.Kind == front.ChunkFunc {
			names = append(names, c.Name)
		}
	}
	return names
}

// TestIncrementalByteIdentity: for every suite program and a spread of
// modes, an incremental rebuild after a body edit must equal the full
// compile of the edited source, and an untouched rebuild must reuse
// every function.
func TestIncrementalByteIdentity(t *testing.T) {
	forceParallel(t)
	for _, mode := range []Mode{ModeBase(), ModeB(), ModeC()} {
		for _, b := range benchprog.All() {
			t.Run(mode.Name+"/"+b.Name, func(t *testing.T) {
				res1, err := pipeline.BuildIncremental(b.Source, mode, nil)
				if err != nil {
					t.Fatal(err)
				}
				if res1.Incremental {
					t.Fatal("first build with no state claims to be incremental")
				}
				if res1.State == nil {
					t.Fatal("clean full build captured no state")
				}

				// No edit: everything must be reused.
				res2, err := pipeline.BuildIncremental(b.Source, mode, res1.State)
				if err != nil {
					t.Fatal(err)
				}
				if !res2.Incremental {
					t.Fatalf("identical source fell back to a full rebuild")
				}
				if res2.Replanned != 0 {
					t.Fatalf("identical source replanned %d functions", res2.Replanned)
				}
				full, err := Compile(b.Source, mode)
				if err != nil {
					t.Fatal(err)
				}
				sameProgram(t, "no-edit", &Program{Code: res2.Prog}, full)

				// Body edit on the last defined function that isn't main.
				names := definedFuncs(t, b.Source)
				victim := names[0]
				for _, n := range names {
					if n != "main" {
						victim = n
					}
				}
				edited := bodyEdit(t, b.Source, victim, "print(90001);")
				res3, err := pipeline.BuildIncremental(edited, mode, res2.State)
				if err != nil {
					t.Fatal(err)
				}
				if !res3.Incremental {
					t.Fatalf("body edit fell back to a full rebuild: %s", res3.FallbackReason)
				}
				fullEdited, err := Compile(edited, mode)
				if err != nil {
					t.Fatal(err)
				}
				sameProgram(t, "body-edit "+victim, &Program{Code: res3.Prog}, fullEdited)
				if res3.Replanned == 0 {
					t.Error("body edit replanned nothing")
				}
			})
		}
	}
}

// arity counts the parameters a chunk head declares.
func arity(head string) int {
	open := strings.Index(head, "(")
	close := strings.Index(head, ")")
	inner := strings.TrimSpace(head[open+1 : close])
	if inner == "" {
		return 0
	}
	return strings.Count(inner, ",") + 1
}

// mutate applies one random edit to the chunk list and returns the new
// source: a body edit, a consistent parameter rename (signature edit), a
// new call edge, or a new function plus a call to it.
func mutate(t *testing.T, rng *rand.Rand, src string, step int) string {
	t.Helper()
	chunks, err := front.ChunkSource(src)
	if err != nil {
		t.Fatal(err)
	}
	var fns []int
	for i, c := range chunks {
		if c.Kind == front.ChunkFunc {
			fns = append(fns, i)
		}
	}
	pick := func(notMain bool) int {
		for {
			i := fns[rng.Intn(len(fns))]
			if !notMain || chunks[i].Name != "main" {
				return i
			}
		}
	}
	insert := func(i int, stmt string) {
		c := chunks[i]
		brace := strings.Index(c.Text, "{")
		chunks[i].Text = c.Text[:brace+1] + "\n  " + stmt + c.Text[brace+1:]
	}
	switch rng.Intn(4) {
	case 0: // body edit
		insert(pick(false), fmt.Sprintf("print(%d);", 100000+step))
	case 1: // signature edit: rename the first parameter everywhere in the chunk
		i := pick(true)
		from, to := "p0", "qq0"
		if !strings.Contains(chunks[i].Head, from) {
			from, to = "qq0", "p0"
		}
		if strings.Contains(chunks[i].Head, from) {
			chunks[i].Text = strings.ReplaceAll(chunks[i].Text, from, to)
			chunks[i].Head = strings.ReplaceAll(chunks[i].Head, from, to)
		} else {
			insert(i, fmt.Sprintf("print(%d);", 200000+step))
		}
	case 2: // call-edge edit: make one function call another
		caller, callee := pick(false), pick(true)
		args := make([]string, arity(chunks[callee].Head))
		for k := range args {
			args[k] = fmt.Sprint(rng.Intn(5))
		}
		insert(caller, fmt.Sprintf("print(%s(%s));", chunks[callee].Name, strings.Join(args, ", ")))
	case 3: // new function, inserted at a random declaration position
		name := fmt.Sprintf("zq%d", step)
		nc := front.Chunk{
			Name: name,
			Kind: front.ChunkFunc,
			Text: fmt.Sprintf("func %s(a int) int { return a * 2 + %d; }", name, step),
		}
		at := fns[rng.Intn(len(fns))]
		chunks = append(chunks[:at], append([]front.Chunk{nc}, chunks[at:]...)...)
		// ... and a caller, so the new function is reachable.
		fns = fns[:0]
		for i, c := range chunks {
			if c.Kind == front.ChunkFunc && c.Name != name {
				fns = append(fns, i)
			}
		}
		insert(pick(false), fmt.Sprintf("print(%s(%d));", name, step))
	}
	return joinChunks(chunks)
}

// TestIncrementalEditSequences drives randomized edit sequences over
// generated programs — body, signature, call-edge and new-function
// mutations — checking byte-identity against a from-scratch compile at
// every step, and that the incremental path (not the fallback) is doing
// the work.
func TestIncrementalEditSequences(t *testing.T) {
	forceParallel(t)
	steps := 8
	if testing.Short() {
		steps = 3
	}
	for _, mode := range []Mode{ModeBase(), ModeC()} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", mode.Name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				src := progen.Generate(seed, progen.DefaultConfig())
				res, err := pipeline.BuildIncremental(src, mode, nil)
				if err != nil {
					t.Fatal(err)
				}
				incremental := 0
				for step := 0; step < steps; step++ {
					src = mutate(t, rng, src, step)
					res, err = pipeline.BuildIncremental(src, mode, res.State)
					if err != nil {
						t.Fatalf("step %d: %v\nsource:\n%s", step, err, src)
					}
					if res.Incremental {
						incremental++
					} else {
						t.Logf("step %d fell back: %s", step, res.FallbackReason)
					}
					full, err := Compile(src, mode)
					if err != nil {
						t.Fatalf("step %d full compile: %v\nsource:\n%s", step, err, src)
					}
					sameProgram(t, fmt.Sprintf("step %d", step), &Program{Code: res.Prog}, full)
				}
				if incremental == 0 {
					t.Error("no step took the incremental path")
				}
			})
		}
	}
}

// TestIncrementalEditSequenceStress widens the sequence test to every
// measurement mode and a dozen seeds (including the register-pressure
// configurations D and E, whose linkage vectors differ most). Trimmed
// under -short; `make incr` runs it in full.
func TestIncrementalEditSequenceStress(t *testing.T) {
	forceParallel(t)
	modes := []Mode{ModeBase(), ModeB(), ModeC(), ModeD(), ModeE()}
	seeds, steps := int64(12), 12
	if testing.Short() {
		modes = []Mode{ModeC()}
		seeds, steps = 2, 4
	}
	for _, mode := range modes {
		for seed := int64(1); seed <= seeds; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", mode.Name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed * 1000))
				src := progen.Generate(seed, progen.DefaultConfig())
				res, err := pipeline.BuildIncremental(src, mode, nil)
				if err != nil {
					t.Fatal(err)
				}
				for step := 0; step < steps; step++ {
					src = mutate(t, rng, src, step)
					res, err = pipeline.BuildIncremental(src, mode, res.State)
					if err != nil {
						t.Fatalf("step %d: %v\nsource:\n%s", step, err, src)
					}
					full, err := Compile(src, mode)
					if err != nil {
						t.Fatalf("step %d full compile: %v\nsource:\n%s", step, err, src)
					}
					sameProgram(t, fmt.Sprintf("step %d", step), &Program{Code: res.Prog}, full)
				}
			})
		}
	}
}

// TestIncrementalFrontier is the acceptance bar for the reuse accounting:
// on the large suite program, a one-function body edit must replan only
// that function once its republished linkage matches (summary cut-off),
// reuse every other function's plan and code, and still be byte-identical.
func TestIncrementalFrontier(t *testing.T) {
	forceParallel(t)
	b := benchprog.Large()
	mode := ModeC()
	s := obs.Begin(obs.Options{})
	defer obs.End()

	res1, err := pipeline.BuildIncremental(b.Source, mode, nil)
	if err != nil {
		t.Fatal(err)
	}
	defined := definedFuncs(t, b.Source)
	victim := ""
	for _, n := range defined {
		if n != "main" {
			victim = n
		}
	}

	// A comment-only body edit: the chunk hash changes, so the function is
	// replanned — but its plan, and therefore its published linkage, comes
	// out identical, so the delta propagation must stop immediately.
	edited := bodyEdit(t, b.Source, victim, "/* nudge */")
	snap := s.Snap()
	res2, err := pipeline.BuildIncremental(edited, mode, res1.State)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.ReportSince(snap)
	if !res2.Incremental {
		t.Fatalf("fell back to a full rebuild: %s", res2.FallbackReason)
	}
	if got := rep.Counter("incr.funcs_replanned"); got != 1 {
		t.Errorf("replanned %d functions for a one-function edit, want 1", got)
	}
	if got := rep.Counter("incr.summary_cutoffs"); got != 1 {
		t.Errorf("summary cut-offs %d, want 1 (the edited function republishes identical linkage)", got)
	}
	if got := rep.Counter("incr.delta_propagations"); got != 0 {
		t.Errorf("delta propagated to %d callers, want 0", got)
	}
	if got := rep.Counter("incr.funcs_reused"); got != int64(len(defined)-1) {
		t.Errorf("reused %d functions, want %d", got, len(defined)-1)
	}
	if got := rep.Counter("incr.code_reused"); got != int64(len(defined)-1) {
		t.Errorf("reused %d code artifacts, want %d", got, len(defined)-1)
	}
	full, err := Compile(edited, mode)
	if err != nil {
		t.Fatal(err)
	}
	sameProgram(t, "comment edit", &Program{Code: res2.Prog}, full)

	// A real edit to the same function: still byte-identical; the frontier
	// stays bounded by the function plus its transitive callers.
	edited2 := bodyEdit(t, edited, victim, "print(424242);")
	snap = s.Snap()
	res3, err := pipeline.BuildIncremental(edited2, mode, res2.State)
	if err != nil {
		t.Fatal(err)
	}
	rep = s.ReportSince(snap)
	if !res3.Incremental {
		t.Fatalf("fell back to a full rebuild: %s", res3.FallbackReason)
	}
	if got := rep.Counter("incr.funcs_replanned"); got < 1 || got >= int64(len(defined)) {
		t.Errorf("replanned %d functions, want at least 1 and fewer than all %d", got, len(defined))
	}
	full2, err := Compile(edited2, mode)
	if err != nil {
		t.Fatal(err)
	}
	sameProgram(t, "real edit", &Program{Code: res3.Prog}, full2)
}

// TestIncrementalStatefile exercises the on-disk path end to end:
// CompileIncremental creates, uses and refreshes the statefile, and every
// corruption of it degrades to a correct full recompile.
func TestIncrementalStatefile(t *testing.T) {
	b := benchprog.Lookup("stanford")
	mode := ModeC()
	path := filepath.Join(t.TempDir(), "stanford.state")

	p1, err := CompileIncremental(b.Source, mode, path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("statefile not written: %v", err)
	}
	if _, err := incr.Load(path); err != nil {
		t.Fatalf("fresh statefile does not load: %v", err)
	}
	full, err := Compile(b.Source, mode)
	if err != nil {
		t.Fatal(err)
	}
	sameProgram(t, "first build", p1, full)

	edited := bodyEdit(t, b.Source, definedFuncs(t, b.Source)[0], "print(31337);")
	p2, err := CompileIncremental(edited, mode, path)
	if err != nil {
		t.Fatal(err)
	}
	fullEdited, err := Compile(edited, mode)
	if err != nil {
		t.Fatal(err)
	}
	sameProgram(t, "incremental edit", p2, fullEdited)

	// Corrupt the statefile every way we can think of; each must be
	// rejected by Load and the compile must stay correct.
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := map[string][]byte{
		"bit-flip-payload": append(append([]byte{}, good[:len(good)-7]...), good[len(good)-7]^0x40),
		"truncated":        good[:len(good)/2],
		"bad-magic":        append([]byte("NOTSTATE"), good[8:]...),
		"bad-version":      append(append([]byte{}, good[:8]...), append([]byte{0xff, 0xff, 0xff, 0xff}, good[12:]...)...),
		"empty":            {},
		"garbage":          []byte("CHOWINCR but not really"),
	}
	for name, data := range corruptions {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := incr.Load(path); err == nil {
				t.Error("corrupt statefile loaded without error")
			}
			p, err := CompileIncremental(edited, mode, path)
			if err != nil {
				t.Fatalf("corrupt statefile broke the compile: %v", err)
			}
			sameProgram(t, name, p, fullEdited)
			// The full rebuild must have replaced the corrupt statefile with
			// a usable one.
			if _, err := incr.Load(path); err != nil {
				t.Errorf("statefile not repaired after fallback: %v", err)
			}
		})
	}
}

// TestIncrementalModeChange: a state captured under one mode must not
// serve another; the build falls back and recaptures.
func TestIncrementalModeChange(t *testing.T) {
	b := benchprog.Lookup("stanford")
	res, err := pipeline.BuildIncremental(b.Source, ModeC(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := pipeline.BuildIncremental(b.Source, ModeB(), res.State)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Incremental {
		t.Fatal("state captured under ModeC was reused for ModeB")
	}
	if !strings.Contains(res2.FallbackReason, "mode changed") {
		t.Errorf("fallback reason %q does not mention the mode change", res2.FallbackReason)
	}
	full, err := Compile(b.Source, ModeB())
	if err != nil {
		t.Fatal(err)
	}
	sameProgram(t, "mode change", &Program{Code: res2.Prog}, full)
}

// TestIncrementalConventionChange proves a statefile is keyed to its
// calling convention: state captured under the default convention is never
// spliced into a build for a different caller/callee partition (stale
// summaries and save sites would miscompile silently), while state captured
// under the custom convention still transfers to a matching build.
func TestIncrementalConventionChange(t *testing.T) {
	b := benchprog.Lookup("stanford")
	conv := mach.Boundary(13, 2)
	res, err := pipeline.BuildIncremental(b.Source, ModeC(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := pipeline.BuildIncremental(b.Source, ModeConv(conv), res.State)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Incremental {
		t.Fatal("state captured under the default convention was reused for " + conv.Spec())
	}
	if !strings.Contains(res2.FallbackReason, "mode changed") {
		t.Errorf("fallback reason %q does not mention the mode change", res2.FallbackReason)
	}
	full, err := Compile(b.Source, ModeConv(conv))
	if err != nil {
		t.Fatal(err)
	}
	sameProgram(t, "convention change", &Program{Code: res2.Prog}, full)

	// The full rebuild's state is keyed to the new convention and transfers
	// to the next matching build.
	res3, err := pipeline.BuildIncremental(b.Source, ModeConv(conv), res2.State)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Incremental {
		t.Errorf("convention-matched state did not transfer: %q", res3.FallbackReason)
	}
}
