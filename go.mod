module chow88

go 1.22
