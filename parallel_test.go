package chow88

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"chow88/internal/benchprog"
)

// forceParallel raises GOMAXPROCS so the wavefront scheduler and parallel
// codegen actually spawn workers even on a single-core machine (the pipeline
// falls back to the sequential walk when only one proc is available).
func forceParallel(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestParallelPipelineDeterminism is the pipeline's contract: for every
// suite program under every measurement mode, the parallel pipeline
// (wavefront allocation, concurrent codegen, cached front end) must produce
// byte-identical machine code to the sequential pipeline.
func TestParallelPipelineDeterminism(t *testing.T) {
	forceParallel(t)
	progs := benchprog.All()
	progs = append(progs, benchprog.Large())
	for _, p := range progs {
		for _, mode := range allModes() {
			t.Run(fmt.Sprintf("%s/%s", p.Name, mode.Name), func(t *testing.T) {
				seqMode := mode
				seqMode.Sequential = true
				seq, err := Compile(p.Source, seqMode)
				if err != nil {
					t.Fatalf("sequential compile: %v", err)
				}
				par, err := Compile(p.Source, mode)
				if err != nil {
					t.Fatalf("parallel compile: %v", err)
				}
				want, got := seq.Disassemble(), par.Disassemble()
				if want != got {
					t.Errorf("parallel pipeline diverges from sequential (%d vs %d bytes)\n%s",
						len(want), len(got), firstDiff(want, got))
				}
				// A second parallel compile exercises the cache-hit path;
				// it must be identical too (the clone shares nothing).
				again, err := Compile(p.Source, mode)
				if err != nil {
					t.Fatalf("cached compile: %v", err)
				}
				if d := again.Disassemble(); d != want {
					t.Errorf("cache-hit compile diverges\n%s", firstDiff(want, d))
				}
			})
		}
	}
}

// firstDiff renders the first disagreeing line of two disassemblies.
func firstDiff(a, b string) string {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			start := i - 40
			if start < 0 {
				start = 0
			}
			end := i + 40
			ea, eb := end, end
			if ea > len(a) {
				ea = len(a)
			}
			if eb > len(b) {
				eb = len(b)
			}
			return fmt.Sprintf("first divergence at byte %d:\n  seq: %q\n  par: %q", i, a[start:ea], b[start:eb])
		}
	}
	return fmt.Sprintf("one output is a prefix of the other (%d vs %d bytes)", len(a), len(b))
}

// wideFlatSource builds a call graph with many independent leaves under one
// root: the widest wavefront level the scheduler can see, and therefore the
// configuration most likely to expose races in summary publication.
func wideFlatSource(leaves int) string {
	src := "var work [32]int;\n"
	for i := 0; i < leaves; i++ {
		src += fmt.Sprintf(`func w%d(x int) int {
    var i int;
    var s int;
    s = x + %d;
    for (i = 0; i < %d; i = i + 1) { s = s + i * %d; work[i %% 32] = s; }
    return s + work[%d];
}
`, i, i, 3+i%5, 1+i%3, i%32)
	}
	src += "func main() {\n    var t int;\n    t = 0;\n"
	for i := 0; i < leaves; i++ {
		src += fmt.Sprintf("    t = t + w%d(%d);\n", i, i)
	}
	src += "    print(t);\n}\n"
	return src
}

// TestPlanModuleWideCallGraphRace repeatedly compiles a wide, flat call
// graph — many leaves, one root — under the parallel pipeline, from several
// goroutines at once. Run under `go test -race` this drives the
// wavefront workers, the synchronized oracle, the parallel code generator
// and the front-end cache through their contended paths.
func TestPlanModuleWideCallGraphRace(t *testing.T) {
	forceParallel(t)
	src := wideFlatSource(48)
	seqMode := ModeC()
	seqMode.Sequential = true
	ref, err := Compile(src, seqMode)
	if err != nil {
		t.Fatalf("sequential compile: %v", err)
	}
	want := ref.Disassemble()

	const goroutines, iters = 4, 3
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				prog, err := Compile(src, ModeC())
				if err != nil {
					errc <- fmt.Errorf("compile: %w", err)
					return
				}
				if got := prog.Disassemble(); got != want {
					errc <- fmt.Errorf("concurrent compile diverged (%d vs %d bytes)", len(got), len(want))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestLargeProgramRuns pins down that the synthetic large program is valid,
// terminating CW whose compiled output matches the reference interpreter —
// so the compile benchmarks measure a real program.
func TestLargeProgramRuns(t *testing.T) {
	forceParallel(t)
	p := benchprog.Large()
	want, err := Interpret(p.Source)
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	prog, err := Compile(p.Source, ModeC())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := prog.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Output) != len(want) {
		t.Fatalf("output length %d, want %d", len(res.Output), len(want))
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("output[%d] = %d, want %d", i, res.Output[i], want[i])
		}
	}
}
