package chow88

import (
	"reflect"
	"testing"
)

// allModes returns every measurement configuration.
func allModes() []Mode {
	return []Mode{ModeBase(), ModeA(), ModeB(), ModeC(), ModeD(), ModeE()}
}

// checkAllModes compiles src under every mode, runs it, and compares the
// output with the reference interpreter.
func checkAllModes(t *testing.T, src string) {
	t.Helper()
	want, err := Interpret(src)
	if err != nil {
		t.Fatalf("interpreter: %v", err)
	}
	for _, mode := range allModes() {
		prog, err := Compile(src, mode)
		if err != nil {
			t.Fatalf("[%s] compile: %v", mode.Name, err)
		}
		res, err := prog.Run()
		if err != nil {
			t.Fatalf("[%s] run: %v\n%s", mode.Name, err, prog.Disassemble())
		}
		if !reflect.DeepEqual(res.Output, want) {
			t.Errorf("[%s] output = %v, want %v\n%s", mode.Name, res.Output, want, prog.Disassemble())
		}
	}
}

func TestSmokeArithmetic(t *testing.T) {
	checkAllModes(t, `func main() {
        print(2 + 3 * 4);
        print((10 - 2) / 4);
        print(17 % 5);
    }`)
}

func TestSmokeCalls(t *testing.T) {
	checkAllModes(t, `
func add(a int, b int) int { return a + b; }
func main() { print(add(3, 4)); print(add(add(1, 2), add(3, 4))); }`)
}

func TestSmokeRecursion(t *testing.T) {
	checkAllModes(t, `
func fib(n int) int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() { print(fib(12)); }`)
}

func TestSmokeLoops(t *testing.T) {
	checkAllModes(t, `
func sum(n int) int {
    var s int;
    var i int;
    for (i = 1; i <= n; i = i + 1) { s = s + i; }
    return s;
}
func main() { print(sum(100)); }`)
}

func TestSmokeGlobalsArrays(t *testing.T) {
	checkAllModes(t, `
var g int;
var a [10]int;
func fill() {
    var i int;
    for (i = 0; i < 10; i = i + 1) { a[i] = i * i; g = g + a[i]; }
}
func main() {
    fill();
    print(g);
    print(a[7]);
}`)
}

func TestSmokeIndirect(t *testing.T) {
	checkAllModes(t, `
var op func(int, int) int;
func add(a int, b int) int { return a + b; }
func mul(a int, b int) int { return a * b; }
func pick(n int) {
    if (n == 0) { op = add; } else { op = mul; }
}
func main() {
    pick(0); print(op(3, 4));
    pick(1); print(op(3, 4));
}`)
}

func TestSmokeDeepCalls(t *testing.T) {
	// Deep call chain exercising register exhaustion and propagation.
	checkAllModes(t, `
func l1(x int) int { return x * 2 + 1; }
func l2(x int) int { var a int; var b int; a = l1(x); b = l1(x + 1); return a + b; }
func l3(x int) int { var a int; var b int; a = l2(x); b = l2(x + 2); return a * b; }
func l4(x int) int { var a int; var b int; a = l3(x); b = l3(x + 3); return a - b; }
func l5(x int) int { var a int; var b int; a = l4(x); b = l4(x + 4); return a + b * 3; }
func main() { print(l5(1)); print(l5(2)); }`)
}

func TestSmokeManyArgs(t *testing.T) {
	// More arguments than parameter registers: stack passing.
	checkAllModes(t, `
func six(a int, b int, c int, d int, e int, f int) int {
    return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
}
func main() { print(six(1, 2, 3, 4, 5, 6)); }`)
}

func TestSmokeMutualRecursion(t *testing.T) {
	checkAllModes(t, `
func even(n int) int { if (n == 0) { return 1; } return odd(n - 1); }
func odd(n int) int { if (n == 0) { return 0; } return even(n - 1); }
func main() { print(even(9)); print(odd(9)); }`)
}

func TestSmokeShortCircuit(t *testing.T) {
	checkAllModes(t, `
var n int;
func inc() int { n = n + 1; return n; }
func main() {
    var x int;
    x = 0 && inc();
    print(x); print(n);
    x = 1 || inc();
    print(x); print(n);
    x = 1 && inc();
    print(x); print(n);
}`)
}

func TestSmokeLocalArrays(t *testing.T) {
	checkAllModes(t, `
func rev(seed int) int {
    var buf [8]int;
    var i int;
    for (i = 0; i < 8; i = i + 1) { buf[i] = seed + i; }
    var s int;
    for (i = 7; i >= 0; i = i - 1) { s = s * 2 + buf[i]; }
    return s;
}
func main() { print(rev(3)); }`)
}

func TestSmokeLiveAcrossCalls(t *testing.T) {
	// Values must survive many calls: the callee-saved/shrink-wrap machinery
	// gets exercised hard.
	checkAllModes(t, `
func id(x int) int { return x; }
func work(a int, b int, c int) int {
    var t1 int; var t2 int; var t3 int;
    t1 = id(a);
    t2 = id(b);
    t3 = id(c);
    return t1 * 100 + t2 * 10 + t3 + a + b + c;
}
func main() { print(work(1, 2, 3)); }`)
}

func TestSmokePartialPathUsage(t *testing.T) {
	// A register used only on one path: shrink-wrapping moves the
	// save/restore off the other path; results must agree regardless.
	checkAllModes(t, `
func leaf(x int) int { return x + 1; }
func f(n int) int {
    if (n > 0) {
        var a int; var b int; var c int;
        a = leaf(n); b = leaf(a); c = leaf(b);
        return a + b + c;
    }
    return n;
}
func main() { print(f(5)); print(f(-5)); }`)
}
