package chow88

import (
	"reflect"
	"testing"

	"chow88/internal/progen"
)

// highPressureSrc keeps far more values live across calls than seven
// registers can hold, forcing spills that the splitting round should turn
// into block-local register residency.
const highPressureSrc = `
func leaf(v int) int { return v * 2 + 1; }

func heavy(x int) int {
    var a int; var b int; var c int; var d int;
    var e int; var f int; var g int; var h int;
    var i int; var j int;
    a = leaf(x);
    b = leaf(a + 1);
    c = leaf(b + 2);
    d = leaf(c + 3);
    e = leaf(d + 4);
    f = leaf(e + 5);
    g = leaf(f + 6);
    h = leaf(g + 7);
    i = leaf(h + 8);
    j = leaf(i + 9);
    // The ranges span into a call-free loop with repeated uses: split
    // pieces can live in registers here even though the whole ranges
    // cannot.
    var k int;
    var s int;
    s = 0;
    for (k = 0; k < 8; k = k + 1) {
        s = s + a + b + c + d + e + f + g + h + i + j;
        s = s * 2 + a + j + e;
    }
    return s;
}

func main() {
    var k int;
    var s int;
    s = 0;
    for (k = 0; k < 50; k = k + 1) {
        s = (s + heavy(k)) % 1000000007;
    }
    print(s);
}
`

// TestSplittingReducesSpillTraffic: with only 7 registers, the splitting
// round must strictly reduce scalar memory traffic versus spilling whole
// ranges, without changing results.
func TestSplittingReducesSpillTraffic(t *testing.T) {
	withSplit := ModeD()
	noSplit := ModeD()
	noSplit.DisableSplitting = true
	noSplit.Name += "/nosplit"

	progSplit, err := Compile(highPressureSrc, withSplit)
	if err != nil {
		t.Fatal(err)
	}
	progNo, err := Compile(highPressureSrc, noSplit)
	if err != nil {
		t.Fatal(err)
	}
	resSplit, err := progSplit.Run()
	if err != nil {
		t.Fatal(err)
	}
	resNo, err := progNo.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resSplit.Output, resNo.Output) {
		t.Fatalf("outputs differ: %v vs %v", resSplit.Output, resNo.Output)
	}
	if resSplit.Stats.ScalarLS() > resNo.Stats.ScalarLS() {
		t.Errorf("splitting increased scalar traffic: %d (split) vs %d (unsplit)",
			resSplit.Stats.ScalarLS(), resNo.Stats.ScalarLS())
	}
	t.Logf("scalar l+s: split=%d unsplit=%d cycles: split=%d unsplit=%d",
		resSplit.Stats.ScalarLS(), resNo.Stats.ScalarLS(),
		resSplit.Stats.Cycles, resNo.Stats.Cycles)
}

// TestSplittingWinsWhenPiecesFit: a few hot spilled ranges reused in a
// call-free loop are exactly what block-level splitting monetizes.
func TestSplittingWinsWhenPiecesFit(t *testing.T) {
	// Under 7 registers: v1..v4, s and k stay hot everywhere; a is hot only
	// in the first loop and b only in the second, but their whole ranges
	// interfere with everything (a is live through loop 2 and b through
	// loop 1), so whole-range coloring must spill one of them and pay per
	// use. Block-level pieces interfere only inside their own loop, fit the
	// register file there, and cost one reload per iteration instead of two.
	src := `
func hot(x int) int {
    var v1 int; var v2 int; var v3 int; var v4 int;
    var a int; var b int;
    v1 = x + 1; v2 = x + 2; v3 = x + 3; v4 = x + 4;
    a = x * 3 + 1;
    b = x * 5 + 2;
    var k int;
    var s int;
    s = 0;
    for (k = 0; k < 15; k = k + 1) {
        s = s + v1 + v2 + v3 + v4 + a;
        s = s * 2 + a;
    }
    for (k = 0; k < 15; k = k + 1) {
        s = s + v1 + v2 + v3 + v4 + b;
        s = s * 2 + b;
    }
    return s + a + b + v1;
}

func main() {
    var k int;
    var s int;
    s = 0;
    for (k = 0; k < 30; k = k + 1) {
        s = (s + hot(k)) % 1000000007;
    }
    print(s);
}
`
	withSplit := ModeD()
	noSplit := ModeD()
	noSplit.DisableSplitting = true
	noSplit.Name += "/nosplit"
	progSplit, err := Compile(src, withSplit)
	if err != nil {
		t.Fatal(err)
	}
	progNo, err := Compile(src, noSplit)
	if err != nil {
		t.Fatal(err)
	}
	resSplit, err := progSplit.Run()
	if err != nil {
		t.Fatal(err)
	}
	resNo, err := progNo.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resSplit.Output, resNo.Output) {
		t.Fatalf("outputs differ: %v vs %v", resSplit.Output, resNo.Output)
	}
	if resSplit.Stats.ScalarLS() >= resNo.Stats.ScalarLS() {
		t.Errorf("splitting should win here: %d (split) vs %d (unsplit)",
			resSplit.Stats.ScalarLS(), resNo.Stats.ScalarLS())
	}
	t.Logf("scalar l+s: split=%d unsplit=%d", resSplit.Stats.ScalarLS(), resNo.Stats.ScalarLS())
}

// TestSplittingCorrectOnRandomPrograms: the splitting round must preserve
// semantics under heavy pressure (restricted register files) on generated
// programs. (The main differential tests already run with splitting on;
// this adds the split-vs-unsplit cross-check.)
func TestSplittingCorrectOnRandomPrograms(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	for seed := 0; seed < n; seed++ {
		src := progen.Generate(int64(seed), progen.DefaultConfig())
		want, ok := oracle(src)
		if !ok {
			continue
		}
		for _, base := range []Mode{ModeD(), ModeE()} {
			noSplit := base
			noSplit.DisableSplitting = true
			for _, mode := range []Mode{base, noSplit} {
				prog, err := Compile(src, mode)
				if err != nil {
					t.Fatalf("seed %d [%s]: compile: %v", seed, mode.Name, err)
				}
				res, err := prog.Run()
				if err != nil {
					t.Fatalf("seed %d [%s]: run: %v", seed, mode.Name, err)
				}
				if !reflect.DeepEqual(res.Output, want) {
					t.Fatalf("seed %d [%s]: output mismatch\n got %v\nwant %v\n%s",
						seed, mode.Name, res.Output, want, src)
				}
			}
		}
	}
}
