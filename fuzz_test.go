package chow88

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chow88/internal/benchprog"
	"chow88/internal/daemon"
	"chow88/internal/front"
	"chow88/internal/interp"
	"chow88/internal/parser"
	"chow88/internal/progen"
	"chow88/internal/sema"
)

// fuzzSeeds feeds the corpus every suite benchmark, every testdata program
// and a handful of generated call-intensive programs — real CW programs make
// the mutator's starting points, so mutations explore near-valid inputs
// instead of pure noise.
func fuzzSeeds(f *testing.F) {
	f.Helper()
	for _, b := range benchprog.All() {
		f.Add(b.Source)
	}
	files, _ := filepath.Glob("testdata/*.cw")
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	for seed := int64(1); seed <= 4; seed++ {
		f.Add(progen.Generate(seed, progen.DefaultConfig()))
	}
}

// FuzzParse drives arbitrary bytes through the front end. The contract is
// containment: malformed or hostile input must come back as an error — a
// StageError naming the stage that rejected it — never as a panic escaping
// Build.
func FuzzParse(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		_, err := front.Build(src, true)
		if err == nil {
			return
		}
		var se *front.StageError
		if !errors.As(err, &se) {
			t.Errorf("front-end failure is not a StageError: %v", err)
		}
	})
}

// FuzzCompile is the differential fuzzer: any program the front end accepts
// must compile under full validation (ModeC + Strict, so a linkage-invariant
// violation is a test failure, not a silent repair) and, when both the
// compiled program and the AST interpreter terminate within budget, produce
// identical output.
func FuzzCompile(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		tree, err := parser.Parse(src)
		if err != nil {
			return
		}
		info, err := sema.Check(tree)
		if err != nil {
			return
		}
		mode := ModeC()
		mode.Strict = true
		prog, err := Compile(src, mode)
		if err != nil {
			t.Fatalf("front end accepted the program but the back end failed: %v", err)
		}
		res, runErr := prog.RunWith(RunOptions{
			MaxInstrs: 2_000_000,
			Deadline:  2 * time.Second,
		})
		if runErr != nil {
			return // trap or budget expiry: no clean output to compare
		}
		want, interpErr := interp.Run(info, interp.Options{MaxSteps: 20_000_000})
		if interpErr != nil {
			return
		}
		if len(res.Output) != len(want.Output) {
			t.Fatalf("output length diverged from the interpreter: %d vs %d",
				len(res.Output), len(want.Output))
		}
		for i := range want.Output {
			if res.Output[i] != want.Output[i] {
				t.Fatalf("output[%d] = %d, interpreter says %d", i, res.Output[i], want.Output[i])
			}
		}
	})
}

// FuzzDaemonRequest hammers the chowd request decoder — the first code
// that touches every byte a network client sends — with arbitrary input.
// The decoder's contract: never panic, return exactly one of
// (request, typed rejection), reject with a plausible HTTP status, and
// only accept requests whose knobs survive full validation (so a worker
// never sees a request it cannot build a compilation mode from).
func FuzzDaemonRequest(f *testing.F) {
	f.Add([]byte(`{"source":"func main() { print(1); }"}`))
	f.Add([]byte(`{"source":"func main() { print(1); }","opt":"O2","shrinkwrap":false,"regs":"caller7","open":["f"],"strict":true}`))
	f.Add([]byte(`{"source":"x","client":"alice","timeout_ms":250,"max_instrs":1000,"engine":"reference","disasm":true}`))
	f.Add([]byte(`{"source":""}`))
	f.Add([]byte(`{"source":"x","nope":1}`))
	f.Add([]byte(`{"source":"x"} {"source":"y"}`))
	f.Add([]byte(`{"source":"x","engine":"turbo"}`))
	f.Add([]byte(`{"source":"x","timeout_ms":-5}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("{\"source\":\"" + strings.Repeat("//x\\n", 600) + "\"}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, rerr := daemon.DecodeRequest(bytes.NewReader(data), daemon.Limits{MaxBodyBytes: 1 << 16, MaxSourceLines: 500})
		if (req == nil) == (rerr == nil) {
			t.Fatalf("DecodeRequest returned req=%v rerr=%v; want exactly one", req, rerr)
		}
		if rerr != nil {
			if rerr.Status < 400 || rerr.Status > 599 {
				t.Fatalf("rejection with non-error status %d (%s)", rerr.Status, rerr.Class)
			}
			if rerr.Class == "" {
				t.Fatalf("rejection without a class: %v", rerr)
			}
			return
		}
		if req.Source == "" {
			t.Fatal("accepted a request with empty source")
		}
		if _, merr := req.Mode(); merr != nil {
			t.Fatalf("accepted request cannot build a mode: %v", merr)
		}
	})
}
