# chow88 — build and verification entry points.

GO ?= go

.PHONY: all build test race bench benchjson ci fmt-check vet chaos incr native inline chowd sweep fuzz trace clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full test suite under the race detector (includes the parallel-pipeline
# determinism and wide-call-graph race tests).
race:
	$(GO) test -race ./...

# Compile-speed and simulator benchmarks; run twice into old.txt/new.txt and
# compare with benchstat (see README "Benchmarking the compiler").
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCompile|BenchmarkSim' -benchmem ./

# Benchmark trajectory snapshot: one-iteration rows for the compile,
# simulator, inliner, daemon-saturation and convention (sweep-winner vs
# default) benchmarks (including the paper-* and req/s-p50-p99 custom
# metrics), converted to JSON so successive PRs accumulate comparable
# BENCH_*.json files instead of unparsed bench text. Override the output
# with BENCH=BENCH_N.json.
BENCH ?= BENCH_10.json
benchjson:
	$(GO) test -run '^$$' -bench 'BenchmarkCompile|BenchmarkSim|BenchmarkInline|BenchmarkDaemon|BenchmarkConvention' -benchmem -benchtime 1x ./ | $(GO) run ./cmd/benchjson -o $(BENCH)

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Fault-injection differential suite: every registered injection point
# against every suite program, plus the strict-mode and determinism checks
# (see DESIGN.md §9). Also exercised by plain `make test`; this target runs
# it alone, verbosely.
chaos:
	$(GO) test -run 'TestChaos|TestDemotionReplan' -v ./

# Incremental-recompilation differential suite: byte-identity against
# from-scratch compiles over the benchmark corpus, randomized edit
# sequences (the stress matrix), frontier-exactness counters, statefile
# corruption tolerance and mode-change fallback (see DESIGN.md §10), plus
# the incr/front unit tests. Also exercised by plain `make test`; this
# target runs the suite alone, verbosely, with the edit-speedup benchmark.
incr:
	$(GO) test -run 'TestIncremental' -v ./
	$(GO) test ./internal/incr ./internal/front
	$(GO) test -run '^$$' -bench 'BenchmarkIncrementalRecompile' -benchtime 1x ./

# Native-tier gate: the three-way differential suite (every engine test
# compares fast and native against the reference oracle), the translation-
# cache concurrency test under the race detector, and a one-iteration
# smoke of the native benchmark rows (see DESIGN.md §11). Also exercised
# by plain `make test` / `make race`; this target runs the native-specific
# slice alone.
native:
	$(GO) test -run 'TestEngines|TestNative|TestXopNames|TestWallClockDeadline|TestDeadlinePartialStatsExact' ./internal/sim ./
	$(GO) test -race -run 'TestNativeConcurrentRuns' -count=2 ./internal/sim
	$(GO) test -run '^$$' -bench 'BenchmarkSimNative' -benchtime 1x ./

# Procedure-integrator gate: the inline pass unit tests, the inlined-corpus
# slice (clean validator run across all modes, three-engine differential,
# parallel/sequential determinism, the mode-C cycles-win acceptance bar and
# the statefile mode-skew fallback) and a one-iteration smoke of the inline
# on/off benchmark rows (see DESIGN.md §12). Also exercised by plain
# `make test`; this target runs the inlining slice alone.
inline:
	$(GO) test ./internal/inline
	$(GO) test -run 'TestInline' -v ./ ./internal/ir
	$(GO) test -run '^$$' -bench 'BenchmarkInline' -benchtime 1x ./

# Daemon gate: the chowd end-to-end test — build the real chowd and
# chowload binaries, serve a loopback unix socket, drive a mixed workload
# with slowloris and oversized abuse alongside healthy clients, and
# require zero healthy 5xx, zero oracle mismatches and a clean SIGTERM
# drain (see DESIGN.md §14). The daemon's unit and chaos suites
# (./internal/daemon) also run under plain `make test` / `make race`.
chowd:
	$(GO) test -run TestChowdE2E -count=1 -v ./cmd/chowd
	$(GO) test ./internal/daemon ./internal/loadgen

# Convention gate: the enumerator/spec/validator unit tests, the
# differential suite at the partition-space extremes (0- and 6-parameter
# conventions, all-caller and all-callee partitions, validator in strict
# mode), and the sweep smoke — a sampled convention set over a 3-program
# workload with explain-journal attribution and parallel/sequential
# byte-determinism, plus the per-program profile-guided selection gate
# (never regress vs the default convention, beat it somewhere). Also
# exercised by plain `make test`; this target runs the slice alone.
sweep:
	$(GO) test ./internal/mach
	$(GO) test -run 'TestConvention' ./
	$(GO) test -run 'TestSweep|TestSampleConventions|TestTune' -v ./internal/experiments

# Longer fuzzing session for the front-end containment, differential
# compile and daemon request-decoder targets. FUZZTIME can be raised for
# overnight runs.
FUZZTIME ?= 60s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./
	$(GO) test -run '^$$' -fuzz FuzzCompile -fuzztime $(FUZZTIME) ./
	$(GO) test -run '^$$' -fuzz FuzzDaemonRequest -fuzztime $(FUZZTIME) ./

# The gate every change must pass: formatting, vet, build, the race-enabled
# test suite (./... includes the incr, front and daemon packages, so the
# incremental driver's and admission queue's concurrency run under the
# detector), the incremental differential suite, the chowd end-to-end
# gate, the convention-sweep gate, a one-iteration smoke of the compile,
# incremental, simulator (all three engines), inliner, daemon-saturation
# and convention benchmarks (via benchjson, which also refreshes the
# $(BENCH) trajectory snapshot), the obs- and explain-disabled
# zero-allocation checks, and a short smoke of the fuzz targets (seed
# corpus + a few seconds of mutation).
ci: fmt-check vet build race incr native inline chowd sweep benchjson
	$(GO) test -run '^$$' -bench 'BenchmarkObsDisabled' -benchtime 1x ./internal/obs
	$(GO) test -run '^$$' -bench 'BenchmarkExplainDisabled' -benchtime 1x ./internal/explain
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./
	$(GO) test -run '^$$' -fuzz FuzzCompile -fuzztime 10s ./
	$(GO) test -run '^$$' -fuzz FuzzDaemonRequest -fuzztime 10s ./

# Observability smoke: compile and run a Table 1 program with tracing on,
# then check the emitted Chrome trace JSON is well formed.
trace:
	$(GO) run ./cmd/chowcc -O3 -stats -trace=trace.json -run testdata/nim.cw > /dev/null
	$(GO) run ./cmd/tracelint trace.json

clean:
	$(GO) clean ./...
	rm -f trace.json
