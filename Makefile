# chow88 — build and verification entry points.

GO ?= go

.PHONY: all build test race bench ci fmt-check vet trace clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full test suite under the race detector (includes the parallel-pipeline
# determinism and wide-call-graph race tests).
race:
	$(GO) test -race ./...

# Compile-speed and simulator benchmarks; run twice into old.txt/new.txt and
# compare with benchstat (see README "Benchmarking the compiler").
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCompile|BenchmarkSim' -benchmem ./

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The gate every change must pass: formatting, vet, build, the race-enabled
# test suite, and a one-iteration smoke of the compile and simulator
# benchmarks (both engines) plus the obs-disabled zero-allocation check.
ci: fmt-check vet build race
	$(GO) test -run '^$$' -bench 'BenchmarkCompile|BenchmarkSim' -benchtime 1x ./
	$(GO) test -run '^$$' -bench 'BenchmarkObsDisabled' -benchtime 1x ./internal/obs

# Observability smoke: compile and run a Table 1 program with tracing on,
# then check the emitted Chrome trace JSON is well formed.
trace:
	$(GO) run ./cmd/chowcc -O3 -stats -trace=trace.json -run testdata/nim.cw > /dev/null
	$(GO) run ./cmd/tracelint trace.json

clean:
	$(GO) clean ./...
	rm -f trace.json
