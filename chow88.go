// Package chow88 reproduces Fred Chow's PLDI 1988 paper "Minimizing
// Register Usage Penalty at Procedure Calls": one-pass inter-procedural
// register allocation layered on priority-based coloring, and
// shrink-wrapping of callee-saved register saves/restores.
//
// The package compiles programs in CW — a small, call-intensive, C-like
// experiment language — to code for a MIPS R2000-like virtual machine, under
// the compilation modes the paper measures:
//
//	ModeBase  -O2, shrink-wrap off (the baseline of every comparison)
//	ModeA     -O2, shrink-wrap on            (Table 1, column A)
//	ModeB     -O3 (IPRA), shrink-wrap off    (Table 1, column B)
//	ModeC     -O3 (IPRA), shrink-wrap on     (Table 1, column C)
//	ModeD     ModeC with 7 caller-saved regs (Table 2, column D)
//	ModeE     ModeC with 7 callee-saved regs (Table 2, column E)
//
// Running the compiled program on the built-in simulator yields pixie-style
// statistics (cycles, scalar loads/stores, calls) from which the paper's
// tables are regenerated.
//
// Quick start:
//
//	prog, err := chow88.Compile(src, chow88.ModeC())
//	res, err := prog.Run()
//	fmt.Println(res.Output, res.Stats.Cycles)
package chow88

import (
	"context"

	"chow88/internal/core"
	"chow88/internal/explain"
	"chow88/internal/front"
	"chow88/internal/incr"
	"chow88/internal/interp"
	"chow88/internal/ir"
	"chow88/internal/mcode"
	"chow88/internal/obs"
	"chow88/internal/parser"
	"chow88/internal/pipeline"
	"chow88/internal/pixie"
	"chow88/internal/sema"
	"chow88/internal/sim"
)

// Mode selects a compilation configuration. Use the Mode* constructors.
type Mode = core.Mode

// The paper's measurement modes, plus ModeConv — mode C under an arbitrary
// register convention (see internal/mach.ParseConvention / Enumerate for
// building one).
var (
	ModeBase = core.ModeBase
	ModeA    = core.ModeA
	ModeB    = core.ModeB
	ModeC    = core.ModeC
	ModeD    = core.ModeD
	ModeE    = core.ModeE
	ModeConv = core.ModeConv
)

// Stats re-exports the pixie trace counters.
type Stats = pixie.Stats

// Program is a compiled CW program.
type Program struct {
	// Mode the program was compiled under.
	Mode Mode
	// Module is the optimized IR.
	Module *ir.Module
	// Plan is the register-allocation decision for every function.
	Plan *core.ProgramPlan
	// Code is the linked machine-code image.
	Code *mcode.Program
	// Report carries the compilation's phase timings and allocator metrics
	// when an obs session is active (obs.Begin); nil otherwise.
	Report *obs.CompileReport
	// Demotions records every graceful-degradation intervention taken while
	// compiling (procedures demoted to the open convention or replanned
	// after a validation failure or recovered worker panic). Empty for a
	// clean compile. Also available on Report when one is attached.
	Demotions []obs.Demotion
	// Inline is the procedure integrator's report when the mode enabled
	// inlining and the integrated build survived validation; nil otherwise
	// (including when a failed inlined build was discarded — see the
	// "discard-inlining" Demotion).
	Inline *obs.InlineReport
}

// Compile compiles CW source under the given mode.
//
// The pipeline is parallel by default: the front end (through the -O2
// optimizer) is shared across modes through internal/front's source-keyed
// cache, register allocation proceeds wavefront-parallel over the call
// graph, and machine code is emitted per function concurrently. Output is
// byte-identical to the sequential pipeline, which remains reachable via
// mode.Sequential.
//
// Under mode.Validate (on in every mode constructor) the linkage-invariant
// validator runs after planning and after code generation; a procedure
// whose plan fails validation is demoted to the safe open convention and
// the affected call-graph slice replanned, with the interventions recorded
// on Program.Demotions. mode.Strict turns any such repair into an error.
func Compile(src string, mode Mode) (*Program, error) {
	return CompileCtx(context.Background(), src, mode)
}

// CompileCtx is Compile with a cancellation/deadline context threaded
// through the validated pipeline (checked at stage boundaries; see
// pipeline.BuildCtx). It is the primitive the chowd daemon's per-request
// deadlines are built on. A nil ctx means Background.
func CompileCtx(ctx context.Context, src string, mode Mode) (*Program, error) {
	s := obs.Current()
	snap := s.Snap()
	var sp obs.Span
	if s != nil {
		sp = s.Span(obs.PhaseCompile, "Compile "+mode.Name)
	}
	mod, err := front.Module(src, mode.Optimize, !mode.Sequential)
	if err != nil {
		sp.End()
		return nil, err
	}
	plan, code, demotions, err := pipeline.BuildCtx(ctx, mod, mode)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.End()
	// plan.Module, not mod: an inlined build that was discarded compiled the
	// pristine clone, and an inlined build that stuck rewrote mod in place.
	p := &Program{Mode: mode, Module: plan.Module, Plan: plan, Code: code, Demotions: demotions, Inline: plan.Inline}
	if s != nil {
		p.Report = &obs.CompileReport{Report: *s.ReportSince(snap), Demotions: demotions}
	}
	attachExplain(p)
	return p, nil
}

// attachExplain snapshots the active decision journal (if any) onto the
// program's compile report, so chowcc -json and the explaindiff artifacts
// fall out of the ordinary report path.
func attachExplain(p *Program) {
	if j := explain.Current(); j != nil && p.Report != nil {
		p.Report.Explain = j.Artifact()
	}
}

// CompileIncremental compiles src like Compile, reusing the previous
// build recorded in the statefile at statePath when one exists. Only the
// summary-delta frontier of the edit — the changed functions plus the
// callers reached by a changed register-usage summary or argument-location
// vector — is replanned and re-emitted; everything else's plan and code
// are reused verbatim, and the output is byte-identical to a full
// Compile. A missing, corrupt, version-skewed or mode-mismatched
// statefile (or any internal surprise on the incremental path) degrades
// to a full recompile, never to a wrong program. The statefile is
// rewritten to describe the new build when possible.
func CompileIncremental(src string, mode Mode, statePath string) (*Program, error) {
	return CompileIncrementalCtx(context.Background(), src, mode, statePath)
}

// CompileIncrementalCtx is CompileIncremental with a cancellation/deadline
// context (see CompileCtx). A nil ctx means Background.
func CompileIncrementalCtx(ctx context.Context, src string, mode Mode, statePath string) (*Program, error) {
	s := obs.Current()
	snap := s.Snap()
	var sp obs.Span
	if s != nil {
		sp = s.Span(obs.PhaseCompile, "CompileIncremental "+mode.Name)
	}
	st, _ := incr.Load(statePath) // any load failure means "no previous state"
	res, err := pipeline.BuildIncrementalCtx(ctx, src, mode, st)
	sp.End()
	if err != nil {
		return nil, err
	}
	if res.State != nil {
		// A failed save only costs the next round its head start.
		_ = res.State.Save(statePath)
	}
	p := &Program{Mode: mode, Module: res.Plan.Module, Plan: res.Plan, Code: res.Prog, Demotions: res.Demotions, Inline: res.Plan.Inline}
	if s != nil {
		p.Report = &obs.CompileReport{Report: *s.ReportSince(snap), Demotions: res.Demotions}
	}
	// On the incremental path the journal covers only the replanned
	// frontier: reused plans and code were never re-decided this round.
	attachExplain(p)
	return p, nil
}

// RunResult is the outcome of executing a compiled program.
type RunResult struct {
	Output []int64
	Stats  Stats
	// Engine names the simulator engine that executed the run ("fast" or
	// "reference"); FallbackReason explains a reference run the fast engine
	// declined (see sim.Result).
	Engine         string
	FallbackReason string
	// Report carries the run's metrics window when an obs session is
	// active; nil otherwise.
	Report *obs.RunReport
}

// RunOptions bound simulator resource use.
type RunOptions = sim.Options

// Run executes the program on the virtual machine with default limits.
func (p *Program) Run() (*RunResult, error) { return p.RunWith(RunOptions{}) }

// RunWith executes the program with explicit limits.
func (p *Program) RunWith(opts RunOptions) (*RunResult, error) {
	res, err := sim.Run(p.Code, opts)
	if res == nil {
		return nil, err
	}
	return &RunResult{
		Output: res.Output, Stats: res.Stats,
		Engine: res.Engine, FallbackReason: res.FallbackReason,
		Report: res.Report,
	}, err
}

// Disassemble renders the generated machine code.
func (p *Program) Disassemble() string { return p.Code.Disassemble() }

// Interpret runs src on the reference AST interpreter, the oracle the
// compiled implementation is differentially tested against.
func Interpret(src string) ([]int64, error) {
	tree, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(tree)
	if err != nil {
		return nil, err
	}
	res, err := interp.Run(info, interp.Options{})
	if res == nil {
		return nil, err
	}
	return res.Output, err
}
