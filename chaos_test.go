package chow88

import (
	"fmt"
	"testing"

	"chow88/internal/benchprog"
	"chow88/internal/faultinject"
	"chow88/internal/obs"
)

// oracleOutputs interprets every suite program once; the AST interpreter is
// the ground truth every chaos-compiled binary must still match.
func oracleOutputs(t *testing.T) map[string][]int64 {
	t.Helper()
	out := map[string][]int64{}
	for _, b := range benchprog.All() {
		want, err := Interpret(b.Source)
		if err != nil {
			t.Fatalf("interpret %s: %v", b.Name, err)
		}
		out[b.Name] = want
	}
	return out
}

func sameOutput(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChaosDifferential is the fault-injection differential suite (make
// chaos): for every compile-path injection point and every suite program
// under ModeC, the compile must neither crash nor miscompile — an injected
// fault is either caught by the validator (the procedure degrades and the
// intervention is visible on the CompileReport) or was never eligible to
// fire. The compiled output must match the interpreter oracle either way.
// The service-path points (daemon worker panic, statefile corruption) are
// exercised by internal/daemon's chaos suite.
func TestChaosDifferential(t *testing.T) {
	forceParallel(t)
	oracle := oracleOutputs(t)
	firedSomewhere := map[faultinject.Point]bool{}
	for _, pt := range faultinject.CompilePoints() {
		for _, b := range benchprog.All() {
			t.Run(fmt.Sprintf("%s/%s", pt, b.Name), func(t *testing.T) {
				s := obs.Begin(obs.Options{})
				defer obs.End()
				snap := s.Snap()

				plan := &faultinject.Plan{Point: pt}
				faultinject.Arm(plan)
				prog, err := Compile(b.Source, ModeC())
				faultinject.Disarm()
				if err != nil {
					t.Fatalf("chaos compile must degrade, not fail: %v", err)
				}

				if plan.Fired() {
					firedSomewhere[pt] = true
					if len(prog.Demotions) == 0 {
						t.Errorf("fault %s fired in %s but no degradation was recorded", pt, plan.Site())
					}
					found := false
					for _, d := range prog.Demotions {
						if d.Func == plan.Site() {
							found = true
						}
					}
					if !found {
						t.Errorf("fault landed in %s; demotions %v never intervene on it",
							plan.Site(), prog.Demotions)
					}
					rep := s.ReportSince(snap)
					if rep.Counter("check.demotions")+rep.Counter("check.replans") == 0 {
						t.Error("caught fault not visible in the report's demotion counters")
					}
					if rep.Counter("check.faults_injected") == 0 {
						t.Error("fired fault not counted as injected")
					}
				} else if len(prog.Demotions) != 0 {
					t.Errorf("no fault fired but the pipeline degraded: %v", prog.Demotions)
				}

				res, err := prog.Run()
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if !sameOutput(res.Output, oracle[b.Name]) {
					t.Fatalf("chaos output diverged from the interpreter oracle (fault %s in %q)",
						pt, plan.Site())
				}
			})
		}
	}
	for _, pt := range faultinject.CompilePoints() {
		if !firedSomewhere[pt] {
			t.Errorf("injection point %s never found an eligible site in the whole suite", pt)
		}
	}
}

// TestChaosStrict: under Mode.Strict a caught fault is a hard error, not a
// silent repair.
func TestChaosStrict(t *testing.T) {
	b := benchprog.Lookup("stanford")
	plan := &faultinject.Plan{Point: faultinject.PointCorruptSummary}
	faultinject.Arm(plan)
	mode := ModeC()
	mode.Strict = true
	_, err := Compile(b.Source, mode)
	faultinject.Disarm()
	if !plan.Fired() {
		t.Skip("no eligible summary to corrupt")
	}
	if err == nil {
		t.Fatal("strict mode must fail on an injected fault, not degrade")
	}
}

// TestChaosEscalationNoDoubleDemotion audits the degradation ladder's
// second rung: a procedure that fails again AFTER being demoted to the
// open convention must escalate to replan-nosw — never be "demoted" a
// second time (demoting an open procedure is a no-op that would loop the
// repair forever) and never fail the compile. A persistent fault
// (Times=2) makes the victim's save plan lose a site once in the original
// plan and once more in the post-demotion replan, so the validator
// catches the same procedure on two consecutive rounds.
//
// The test runs under mode E (7 callee-saved registers): that pressure is
// what leaves closed procedures with shrink-wrapped local save sites for
// the fault to drop — under the full register file a closed procedure's
// saves all migrate to its ancestors and the point is only eligible on
// open procedures, which the first rung replans without demoting.
func TestChaosEscalationNoDoubleDemotion(t *testing.T) {
	forceParallel(t)
	oracle := oracleOutputs(t)

	escalated := false
	for _, b := range benchprog.All() {
		// Candidate victims: closed procedures with a save/restore plan in
		// the clean compile — the procedures PointDropSave is eligible for
		// both before and (if they still save registers as open procs)
		// after demotion.
		clean, err := Compile(b.Source, ModeE())
		if err != nil {
			t.Fatal(err)
		}
		var candidates []string
		for _, f := range clean.Module.Funcs {
			fp := clean.Plan.Funcs[f]
			if fp != nil && !fp.Open && fp.Plan != nil && !fp.Plan.Regs().Empty() {
				candidates = append(candidates, f.Name)
			}
		}

		for _, victim := range candidates {
			plan := &faultinject.Plan{
				Point: faultinject.PointDropSave, Func: victim, Times: 2,
			}
			faultinject.Arm(plan)
			prog, err := Compile(b.Source, ModeE())
			faultinject.Disarm()
			if err != nil {
				t.Fatalf("%s/%s: persistent fault must degrade, not fail: %v",
					b.Name, victim, err)
			}

			var actions []string
			for _, d := range prog.Demotions {
				if d.Func == victim {
					actions = append(actions, d.Action)
				} else {
					t.Errorf("%s/%s: intervention on bystander %s (%s)",
						b.Name, victim, d.Func, d.Action)
				}
			}
			demotes := 0
			for _, a := range actions {
				if a == "demote" {
					demotes++
				}
			}
			if demotes > 1 {
				t.Errorf("%s/%s: procedure demoted twice: %v", b.Name, victim, actions)
			}
			// The full escalation: first round demotes the closed victim,
			// second round finds the demoted (now open) victim failing again
			// and must take the nosw rung. Victims whose open-convention
			// replan has no save sites left absorb only the first firing and
			// stop at ["demote"]; they still prove no-double-demotion above.
			if len(actions) >= 2 {
				if actions[0] != "demote" || actions[1] != "replan-nosw" {
					t.Errorf("%s/%s: ladder took %v, want [demote replan-nosw]",
						b.Name, victim, actions)
				} else {
					escalated = true
				}
			}

			res, err := prog.Run()
			if err != nil {
				t.Fatalf("%s/%s: run: %v", b.Name, victim, err)
			}
			if !sameOutput(res.Output, oracle[b.Name]) {
				t.Fatalf("%s/%s: escalated compile diverged from the interpreter oracle",
					b.Name, victim)
			}
		}
	}
	if !escalated {
		t.Error("no victim in the suite exercised the demote -> replan-nosw escalation")
	}
}

// TestDemotionReplanDeterminism pins an injected fault to one procedure and
// requires the degraded compile to be byte-identical across repeated runs
// and across the parallel and sequential pipelines: graceful degradation
// must not cost determinism.
func TestDemotionReplanDeterminism(t *testing.T) {
	forceParallel(t)
	b := benchprog.Lookup("stanford")

	// Find a deterministic victim: the first closed procedure with a
	// non-empty summary, by module order.
	clean, err := Compile(b.Source, ModeC())
	if err != nil {
		t.Fatal(err)
	}
	victim := ""
	for _, f := range clean.Module.Funcs {
		fp := clean.Plan.Funcs[f]
		if fp != nil && fp.Summary != nil && !fp.Summary.Used.Empty() {
			victim = f.Name
			break
		}
	}
	if victim == "" {
		t.Fatal("no closed procedure to corrupt")
	}

	compileFaulted := func(sequential bool) *Program {
		t.Helper()
		faultinject.Arm(&faultinject.Plan{Point: faultinject.PointCorruptSummary, Func: victim})
		mode := ModeC()
		mode.Sequential = sequential
		prog, err := Compile(b.Source, mode)
		faultinject.Disarm()
		if err != nil {
			t.Fatalf("faulted compile: %v", err)
		}
		if len(prog.Demotions) == 0 {
			t.Fatalf("expected %s to be degraded", victim)
		}
		return prog
	}

	ref := compileFaulted(false)
	refAsm := ref.Disassemble()
	if again := compileFaulted(false).Disassemble(); again != refAsm {
		t.Error("degraded parallel compile is not deterministic across runs")
	}
	if seq := compileFaulted(true).Disassemble(); seq != refAsm {
		t.Error("degraded compile differs between parallel and sequential pipelines")
	}

	// The degraded binary still matches the clean one's behaviour.
	cleanRes, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	degRes, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !sameOutput(cleanRes.Output, degRes.Output) {
		t.Error("degraded binary output diverged from the clean compile")
	}
}
