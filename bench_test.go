package chow88

import (
	"fmt"
	"testing"

	"chow88/internal/benchprog"
	"chow88/internal/codegen"
	"chow88/internal/core"
	"chow88/internal/experiments"
	"chow88/internal/front"
	"chow88/internal/ir"
	"chow88/internal/pipeline"
	"chow88/internal/sim"
)

// The bench harness regenerates every measurement of the paper's evaluation
// as testing.B benchmarks. Each iteration compiles and executes a benchmark
// program on the cycle-accurate simulator; the paper's metrics are attached
// as custom units so `go test -bench` output reproduces the table rows:
//
//	paper-cycles        executed machine cycles (Table 1/2 column I input)
//	paper-scalarLS      scalar loads+stores     (column II input)
//	paper-saverestore   the save/restore component
//	paper-cyc/call      call intensity (Table 1's cycles/call column)

func benchProgram(b *testing.B, src string, mode Mode) {
	b.Helper()
	prog, err := Compile(src, mode)
	if err != nil {
		b.Fatalf("compile: %v", err)
	}
	var last *RunResult
	for i := 0; i < b.N; i++ {
		res, err := prog.Run()
		if err != nil {
			b.Fatalf("run: %v", err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(float64(last.Stats.Cycles), "paper-cycles")
		b.ReportMetric(float64(last.Stats.ScalarLS()), "paper-scalarLS")
		b.ReportMetric(float64(last.Stats.SaveRestoreLS()), "paper-saverestore")
		b.ReportMetric(last.Stats.CyclesPerCall(), "paper-cyc/call")
	}
}

// BenchmarkTable1 measures every suite program under the baseline and the
// three Table 1 columns (A = -O2+sw, B = -O3, C = -O3+sw).
func BenchmarkTable1(b *testing.B) {
	modes := map[string]Mode{
		"base": ModeBase(), "A": ModeA(), "B": ModeB(), "C": ModeC(),
	}
	for _, prog := range benchprog.All() {
		for _, key := range []string{"base", "A", "B", "C"} {
			b.Run(fmt.Sprintf("%s/%s", prog.Name, key), func(b *testing.B) {
				benchProgram(b, prog.Source, modes[key])
			})
		}
	}
}

// BenchmarkTable2 measures the register-class restriction columns
// (D = 7 caller-saved, E = 7 callee-saved).
func BenchmarkTable2(b *testing.B) {
	modes := map[string]Mode{"D": ModeD(), "E": ModeE()}
	for _, prog := range benchprog.All() {
		for _, key := range []string{"D", "E"} {
			b.Run(fmt.Sprintf("%s/%s", prog.Name, key), func(b *testing.B) {
				benchProgram(b, prog.Source, modes[key])
			})
		}
	}
}

// BenchmarkFigures runs the Figure 1-4 demonstrations (placement reports
// and per-path/per-frequency measurements).
func BenchmarkFigures(b *testing.B) {
	figs := map[string]func() (string, error){
		"fig1": experiments.Fig1,
		"fig2": experiments.Fig2,
		"fig3": experiments.Fig3,
		"fig4": experiments.Fig4,
	}
	for name, fn := range figs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fn(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSim measures raw simulator speed over compiled programs: the
// predecoded block-batched engine ("fast") against the per-instruction
// reference interpreter. All engines produce bit-identical
// Output/Stats/InstrCounts (see TestEnginesBitIdenticalOnSuite); this
// benchmark measures the speed gap the predecoding buys. The engines are
// pinned via sim.Options so the rows keep measuring the same tiers across
// PRs; BenchmarkSimNative runs the closure-threaded tier on identical
// workloads for apples-to-apples benchstat comparisons.
func BenchmarkSim(b *testing.B) {
	benchSimEngines(b, sim.Options{}, []string{"fast", "ref"})
}

// BenchmarkSimNative measures the closure-threaded native tier (the
// default behind Prog.Run) on the exact workloads of BenchmarkSim.
func BenchmarkSimNative(b *testing.B) {
	benchSimEngines(b, sim.Options{}, []string{"native"})
}

// BenchmarkSimProfile is BenchmarkSim with per-instruction profiling on —
// the configuration every CompileProfiled training run pays for.
func BenchmarkSimProfile(b *testing.B) {
	benchSimEngines(b, sim.Options{Profile: true}, []string{"native", "fast", "ref"})
}

func benchSimEngines(b *testing.B, opts sim.Options, engines []string) {
	for _, p := range compileBenchPrograms() {
		prog, err := Compile(p.Source, ModeC())
		if err != nil {
			b.Fatal(err)
		}
		for _, engine := range engines {
			run := sim.Run
			o := opts
			if engine == "ref" {
				run = sim.RunReference
			} else {
				o.Engine = engine
			}
			b.Run(fmt.Sprintf("%s/%s", p.Name, engine), func(b *testing.B) {
				var instrs int64
				for i := 0; i < b.N; i++ {
					res, err := run(prog.Code, o)
					if err != nil {
						b.Fatal(err)
					}
					instrs = res.Stats.Instrs
				}
				if elapsed := b.Elapsed(); elapsed > 0 {
					b.ReportMetric(float64(instrs)*float64(b.N)/elapsed.Seconds()/1e6, "Minstr/s")
				}
			})
		}
	}
}

// compileBenchPrograms are the compile-speed workloads: two real suite
// programs and the synthetic wide-call-graph program built for the pipeline.
func compileBenchPrograms() []benchprog.Benchmark {
	return []benchprog.Benchmark{
		*benchprog.Lookup("nim"),
		*benchprog.Lookup("uopt"),
		benchprog.Large(),
	}
}

// BenchmarkCompile measures end-to-end compilation speed (the paper reports
// the back-end cost of linked-Ucode compilation; this is our analogue), in
// both pipeline configurations. "parallel" is the default pipeline —
// wavefront allocation, concurrent codegen, warm front-end cache;
// "sequential" is the original single-threaded walk with the cache bypassed.
// Both run with the linkage validator off, so their numbers stay comparable
// across the validator's introduction; "parallel+validate" measures the
// default production configuration (validator on, injection disarmed).
// Compare with benchstat; the parallel columns only separate from the
// sequential ones when GOMAXPROCS > 1 (see README).
func BenchmarkCompile(b *testing.B) {
	for _, p := range compileBenchPrograms() {
		for _, variant := range []string{"sequential", "parallel", "parallel+validate"} {
			mode := ModeC()
			mode.Sequential = variant == "sequential"
			mode.Validate = variant == "parallel+validate"
			b.Run(fmt.Sprintf("%s/%s", p.Name, variant), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Compile(p.Source, mode); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkIncrementalRecompile measures the single-function-edit rebuild,
// the workload incremental recompilation exists for: each iteration makes
// a never-seen body edit to one function of the large suite program and
// rebuilds. "full" pays the whole pipeline (the new source misses every
// cache); "incremental" carries the state forward and replans only the
// summary-delta frontier. Compare the two interleaved, same session.
func BenchmarkIncrementalRecompile(b *testing.B) {
	base := benchprog.Large()
	mode := ModeC()
	names := definedFuncs(b, base.Source)
	victim := names[0]
	for _, n := range names {
		if n != "main" {
			victim = n
		}
	}
	uniq := 0
	edit := func() string {
		uniq++
		return bodyEdit(b, base.Source, victim, fmt.Sprintf("print(%d);", 500000+uniq))
	}

	// Edit synthesis re-lexes the source to splice the chunk; that is the
	// editor's cost, not the compiler's, so it runs off the clock in both
	// variants.
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			src := edit()
			b.StartTimer()
			if _, err := Compile(src, mode); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		res, err := pipeline.BuildIncremental(base.Source, mode, nil)
		if err != nil {
			b.Fatal(err)
		}
		st := res.State
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			src := edit()
			b.StartTimer()
			res, err := pipeline.BuildIncremental(src, mode, st)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Incremental {
				b.Fatalf("fell back to a full rebuild: %s", res.FallbackReason)
			}
			st = res.State
		}
	})
}

// BenchmarkCompileFrontend isolates the mode-independent prefix of the
// pipeline (parse → sema → lower → -O2). "cold" rebuilds from source every
// iteration; "cached" measures a front-end cache hit, i.e. the cost of deep-
// copying the frozen master module.
func BenchmarkCompileFrontend(b *testing.B) {
	for _, p := range compileBenchPrograms() {
		b.Run(p.Name+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := front.Build(p.Source, true); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(p.Name+"/cached", func(b *testing.B) {
			if _, err := front.Module(p.Source, true, true); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := front.Module(p.Source, true, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompilePlan isolates register allocation (PlanModule): the
// wavefront-parallel walk against the sequential one. Live-range splitting
// rewrites the IR, so each iteration plans a fresh clone of a prebuilt
// master module; the clone cost is common to both variants.
func BenchmarkCompilePlan(b *testing.B) {
	for _, p := range compileBenchPrograms() {
		master, err := front.Build(p.Source, true)
		if err != nil {
			b.Fatal(err)
		}
		for _, variant := range []string{"sequential", "parallel"} {
			mode := ModeC()
			mode.Sequential = variant == "sequential"
			mode.Validate = false // isolate allocation: no worker panic containment
			b.Run(fmt.Sprintf("%s/%s", p.Name, variant), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.PlanModule(ir.CloneModule(master), mode)
				}
			})
		}
	}
}

// BenchmarkCompileCodegen isolates machine-code emission (Generate) over a
// fixed plan: concurrent per-function emission against module-order
// emission. Generate does not mutate the plan, so one plan serves all
// iterations.
func BenchmarkCompileCodegen(b *testing.B) {
	for _, p := range compileBenchPrograms() {
		for _, variant := range []string{"sequential", "parallel"} {
			mode := ModeC()
			mode.Sequential = variant == "sequential"
			mode.Validate = false // isolate emission: no worker panic containment
			master, err := front.Build(p.Source, true)
			if err != nil {
				b.Fatal(err)
			}
			plan := core.PlanModule(master, mode)
			b.Run(fmt.Sprintf("%s/%s", p.Name, variant), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := codegen.Generate(plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkInline measures what the procedure integrator buys on the
// BenchmarkSim workloads: each pair of rows compiles under mode C with
// profile feedback — inlining off against inlining on at the default
// budget — and attaches the paper metrics (cycles, save/restore traffic,
// linkage cycles) for benchstat comparison of the on/off columns.
func BenchmarkInline(b *testing.B) {
	for _, p := range compileBenchPrograms() {
		for _, variant := range []string{"off", "on"} {
			b.Run(fmt.Sprintf("%s/%s", p.Name, variant), func(b *testing.B) {
				var prog *Program
				var err error
				if variant == "on" {
					prog, err = CompileInlined(p.Source, ModeC(), 0)
				} else {
					prog, err = CompileProfiled(p.Source, ModeC())
				}
				if err != nil {
					b.Fatalf("compile: %v", err)
				}
				var last *RunResult
				for i := 0; i < b.N; i++ {
					res, err := prog.Run()
					if err != nil {
						b.Fatalf("run: %v", err)
					}
					last = res
				}
				if last != nil {
					b.ReportMetric(float64(last.Stats.Cycles), "paper-cycles")
					b.ReportMetric(float64(last.Stats.SaveRestoreLS()), "paper-saverestore")
					b.ReportMetric(float64(last.Stats.LinkageCycles), "paper-linkage")
				}
			})
		}
	}
}

// BenchmarkHeightSweep is the ablation the paper's analysis calls for: "the
// relevant parameter is the height of the call graph". It builds synthetic
// call chains of growing depth, with register pressure at every level, and
// reports the save/restore traffic of the two restricted register classes.
// As the chain outgrows the register file, the callee-saved configuration's
// ability to migrate saves up the graph becomes the deciding factor.
func BenchmarkHeightSweep(b *testing.B) {
	for _, depth := range []int{2, 6, 12} {
		src := experiments.ChainProgram(depth, 3)
		for key, mode := range map[string]Mode{"D": ModeD(), "E": ModeE()} {
			b.Run(fmt.Sprintf("depth%d/%s", depth, key), func(b *testing.B) {
				benchProgram(b, src, mode)
			})
		}
	}
}

// BenchmarkConvention snapshots the calling-convention auto-tuner's
// headline into the benchjson trajectory: a sampled sweep over a 3-program
// workload selects a winner, and the default convention and that winner are
// then measured side by side so successive BENCH_*.json files show whether
// the swept partition keeps its edge as the compiler evolves.
func BenchmarkConvention(b *testing.B) {
	var wl []experiments.Workload
	for _, p := range benchprog.All()[:3] {
		wl = append(wl, experiments.Workload{Name: p.Name, Source: p.Source})
	}
	rep, err := experiments.Sweep(experiments.SampleConventions(8), wl, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range []struct {
		key string
		row *experiments.SweepRow
	}{{"default", rep.Base}, {"winner", rep.Winner()}} {
		b.Run(r.key, func(b *testing.B) {
			var cycles, saveLS, linkage int64
			for i := 0; i < b.N; i++ {
				cycles, saveLS, linkage = 0, 0, 0
				for _, w := range wl {
					prog, err := Compile(w.Source, ModeConv(r.row.Cfg))
					if err != nil {
						b.Fatalf("%s: %v", w.Name, err)
					}
					res, err := prog.Run()
					if err != nil {
						b.Fatalf("%s: %v", w.Name, err)
					}
					cycles += res.Stats.Cycles
					saveLS += res.Stats.SaveRestoreLS()
					linkage += res.Stats.LinkageCycles
				}
			}
			b.ReportMetric(float64(cycles), "paper-cycles")
			b.ReportMetric(float64(saveLS), "paper-saverestore")
			b.ReportMetric(float64(linkage), "conv-linkage")
		})
	}
}
