package chow88

import (
	"errors"
	"reflect"
	"testing"

	"chow88/internal/benchprog"
	"chow88/internal/mach"
	"chow88/internal/progen"
)

// conventionTestPoints are the partition-space extremes the differential
// suite compiles under: both degenerate parameter counts (0 — every
// argument on the stack — and 6 — two temporaries drafted as parameter
// registers), both degenerate partitions (everything caller-saved,
// everything callee-saved), and the paper's own point for control.
func conventionTestPoints(t *testing.T) []*mach.Config {
	points := []*mach.Config{
		mach.Boundary(9, 0),  // paper partition, 0 params: all args on stack
		mach.Boundary(9, 6),  // paper partition, 6 params: $a0-$a3 + $t9,$t8
		mach.Boundary(0, 4),  // all 20 caller-saved
		mach.Boundary(20, 0), // all 20 callee-saved, no param regs
		mach.Boundary(20, 4), // all 20 callee-saved, params still $a0-$a3
		mach.Boundary(9, 4),  // the paper's measured convention
		mach.Boundary(3, 6),
		mach.Boundary(17, 1),
	}
	for _, c := range points {
		if c == nil {
			t.Fatal("nil convention test point: Boundary rejected a point it should supply")
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: invalid test point: %v", c.Name, err)
		}
	}
	return points
}

// TestConventionDifferentialSuite proves the allocator, save/restore
// machinery, validator and codegen honor arbitrary conventions — in
// particular arbitrary parameter-register counts (the historical code path
// assumed the 4-register $a0–$a3 convention): every suite program compiled
// under each extreme convention, with the validator in strict mode (any
// degradation is a failure), must print exactly what the default-convention
// build prints.
func TestConventionDifferentialSuite(t *testing.T) {
	progs := benchprog.All()
	if testing.Short() {
		progs = progs[:4]
	}
	for _, b := range progs {
		base, err := Compile(b.Source, ModeC())
		if err != nil {
			t.Fatalf("%s [default]: compile: %v", b.Name, err)
		}
		want, err := base.Run()
		if err != nil {
			t.Fatalf("%s [default]: run: %v", b.Name, err)
		}
		for _, cfg := range conventionTestPoints(t) {
			mode := ModeConv(cfg)
			mode.Strict = true
			prog, err := Compile(b.Source, mode)
			if err != nil {
				t.Fatalf("%s [%s]: compile: %v", b.Name, cfg.Name, err)
			}
			res, err := prog.Run()
			if err != nil {
				t.Fatalf("%s [%s]: run: %v", b.Name, cfg.Name, err)
			}
			if !reflect.DeepEqual(res.Output, want.Output) {
				t.Fatalf("%s [%s]: output mismatch\n got: %v\nwant: %v",
					b.Name, cfg.Name, res.Output, want.Output)
			}
		}
	}
}

// TestConventionDifferentialRandom drives the same conventions over random
// programs whose call sites carry up to 6 arguments, so 0-param conventions
// marshal everything through stack slots and 6-param conventions deliver
// arguments in $t8/$t9 — both beyond what the fixed $a0–$a3 convention ever
// exercised.
func TestConventionDifferentialRandom(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	cfg := progen.DefaultConfig()
	cfg.MaxParams = 6
	points := conventionTestPoints(t)
	skipped := 0
	for seed := 0; seed < seeds; seed++ {
		src := progen.Generate(int64(seed), cfg)
		want, ok := oracle(src)
		if !ok {
			skipped++
			continue
		}
		for _, c := range points {
			mode := ModeConv(c)
			mode.Strict = true
			prog, err := Compile(src, mode)
			if err != nil {
				t.Fatalf("seed %d [%s]: compile: %v\n%s", seed, c.Name, err, src)
			}
			res, err := prog.Run()
			if err != nil {
				t.Fatalf("seed %d [%s]: run: %v\n%s", seed, c.Name, err, src)
			}
			if !reflect.DeepEqual(res.Output, want) {
				t.Fatalf("seed %d [%s]: output mismatch\n got: %v\nwant: %v\nsource:\n%s\nassembly:\n%s",
					seed, c.Name, res.Output, want, src, prog.Disassemble())
			}
		}
	}
	if skipped > seeds/2 {
		t.Fatalf("too many over-budget seeds skipped: %d of %d", skipped, seeds)
	}
}

// TestCompileRejectsBadConvention pins the validation funnel: an incoherent
// Config handed to any compile entry point fails fast with the named
// *mach.ConfigError, which classifies to its own exit code (and HTTP 400 in
// the daemon) rather than an internal error.
func TestCompileRejectsBadConvention(t *testing.T) {
	mode := ModeC()
	mode.Config = &mach.Config{
		Name:        "nonsense",
		CallerSaved: mach.SetOf(mach.T0, mach.S0),
		CalleeSaved: mach.SetOf(mach.S0, mach.S1),
	}
	_, err := Compile("func main() { print(1); }", mode)
	if err == nil {
		t.Fatal("Compile accepted an overlapping caller/callee partition")
	}
	var ce *mach.ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *mach.ConfigError", err)
	}
	if ce.Reason != mach.ReasonClassOverlap {
		t.Errorf("reason = %s, want %s", ce.Reason, mach.ReasonClassOverlap)
	}
	if code, _ := ClassifyError(err); code != ExitBadConv {
		t.Errorf("ClassifyError = %d, want ExitBadConv (%d)", code, ExitBadConv)
	}
}
