// nim - play the game of Nim with three heaps.
var wins int;
var losses int;
var probes int;

func max2(a int, b int) int {
    if (a > b) { return a; }
    return b;
}

func min2(a int, b int) int {
    if (a < b) { return a; }
    return b;
}

func isZero(a int, b int, c int) int {
    return a == 0 && b == 0 && c == 0;
}

func note(win int) int {
    if (win == 1) { wins = wins + 1; } else { losses = losses + 1; }
    return win;
}

// winning returns 1 when the position (a,b,c) with the current player to
// move is a first-player win under normal play.
func winning(a int, b int, c int) int {
    probes = probes + 1;
    if (isZero(a, b, c)) { return note(0); }
    var k int;
    for (k = 1; k <= a; k = k + 1) {
        if (!winning(a - k, b, c)) { return note(1); }
    }
    for (k = 1; k <= b; k = k + 1) {
        if (!winning(a, b - k, c)) { return note(1); }
    }
    for (k = 1; k <= c; k = k + 1) {
        if (!winning(a, b, c - k)) { return note(1); }
    }
    return note(0);
}

// xorHeaps computes the nim-sum without bitwise operators.
func xorBit(a int, b int, bit int) int {
    var x int;
    var y int;
    x = (a / bit) % 2;
    y = (b / bit) % 2;
    if (x != y) { return bit; }
    return 0;
}

func nimXor(a int, b int) int {
    var s int;
    var bit int;
    s = 0;
    for (bit = 1; bit <= 8; bit = bit * 2) {
        s = s + xorBit(a, b, bit);
    }
    return s;
}

var mvA int;
var mvB int;
var mvC int;

// bestMove finds an optimal move from (a,b,c), storing the new position.
func bestMove(a int, b int, c int) int {
    var k int;
    for (k = 1; k <= a; k = k + 1) {
        if (nimXor(nimXor(a - k, b), c) == 0) { mvA = a - k; mvB = b; mvC = c; return 1; }
    }
    for (k = 1; k <= b; k = k + 1) {
        if (nimXor(nimXor(a, b - k), c) == 0) { mvA = a; mvB = b - k; mvC = c; return 1; }
    }
    for (k = 1; k <= c; k = k + 1) {
        if (nimXor(nimXor(a, b), c - k) == 0) { mvA = a; mvB = b; mvC = c - k; return 1; }
    }
    // Losing position: take one from the biggest heap.
    if (a >= b && a >= c) { mvA = a - 1; mvB = b; mvC = c; return 0; }
    if (b >= a && b >= c) { mvA = a; mvB = b - 1; mvC = c; return 0; }
    mvA = a; mvB = b; mvC = c - 1;
    return 0;
}

// playGame plays both sides optimally from (a,b,c); returns the number of
// moves made.
func playGame(a int, b int, c int) int {
    var moves int;
    moves = 0;
    while (!isZero(a, b, c)) {
        bestMove(a, b, c);
        a = mvA; b = mvB; c = mvC;
        moves = moves + 1;
    }
    return moves;
}

// tournament plays many games from systematically varied positions,
// keeping its running totals in locals across the long call chains.
func tournament(limit int) int {
    var a int;
    var total int;
    var checks int;
    total = 0;
    checks = 0;
    for (a = 1; a <= limit; a = a + 1) {
        var b int;
        for (b = 1; b <= limit; b = b + 1) {
            var c int;
            for (c = 1; c <= limit; c = c + 1) {
                var moves int;
                var theory int;
                moves = playGame(a, b, c);
                theory = nimXor(nimXor(a, b), c);
                if (theory == 0) { checks = checks + 1; }
                total = total + moves * 3 + max2(a, min2(b, c)) + checks;
            }
        }
    }
    return total;
}

func main() {
    var a int;
    var b int;
    // Solve all positions up to (3,3,3) by brute force.
    for (a = 0; a <= 3; a = a + 1) {
        for (b = 0; b <= 3; b = b + 1) {
            var c int;
            for (c = 0; c <= 3; c = c + 1) {
                var w int;
                w = winning(a, b, c);
                // Cross-check against nim-sum theory.
                if (w != (nimXor(nimXor(a, b), c) != 0)) { print(-999); }
            }
        }
    }
    print(wins);
    print(losses);
    print(probes);
    print(playGame(7, 11, 13));
    print(tournament(9));
}
