package chow88

import (
	"reflect"
	"testing"

	"chow88/internal/interp"
	"chow88/internal/parser"
	"chow88/internal/progen"
	"chow88/internal/sema"
)

// oracle runs the reference interpreter with a tight step budget, so that
// only fast programs are used as differential-test cases (a program near the
// budget would take minutes on the cycle-accurate simulator × 6 modes).
func oracle(src string) ([]int64, bool) {
	tree, err := parser.Parse(src)
	if err != nil {
		return nil, false
	}
	info, err := sema.Check(tree)
	if err != nil {
		return nil, false
	}
	res, err := interp.Run(info, interp.Options{MaxSteps: 2_000_000, MaxDepth: 2000})
	if err != nil {
		return nil, false
	}
	return res.Output, true
}

// TestDifferentialRandomPrograms is the central correctness argument of the
// whole reproduction: for hundreds of randomly generated CW programs, every
// compilation mode — baseline coloring, shrink-wrap, inter-procedural
// allocation with and without shrink-wrap, and both restricted register
// sets — must print exactly what the reference interpreter prints. Any
// mis-placed save/restore, wrong clobber assumption, broken parameter
// negotiation or bad spill corrupts some run and fails here.
func TestDifferentialRandomPrograms(t *testing.T) {
	seeds := 300
	if testing.Short() {
		seeds = 40
	}
	modes := allModes()
	skipped := 0
	for seed := 0; seed < seeds; seed++ {
		src := progen.Generate(int64(seed), progen.DefaultConfig())
		want, ok := oracle(src)
		if !ok {
			// Some generated programs exceed the step budget (deep
			// recursion fan-out); they are valid but too slow to use as
			// oracle cases.
			skipped++
			continue
		}
		for _, mode := range modes {
			prog, err := Compile(src, mode)
			if err != nil {
				t.Fatalf("seed %d [%s]: compile: %v\n%s", seed, mode.Name, err, src)
			}
			res, err := prog.Run()
			if err != nil {
				t.Fatalf("seed %d [%s]: run: %v\n%s", seed, mode.Name, err, src)
			}
			if !reflect.DeepEqual(res.Output, want) {
				t.Fatalf("seed %d [%s]: output mismatch\n got: %v\nwant: %v\nsource:\n%s\nassembly:\n%s",
					seed, mode.Name, res.Output, want, src, prog.Disassemble())
			}
		}
	}
	if skipped > seeds/2 {
		t.Fatalf("too many over-budget seeds skipped: %d of %d", skipped, seeds)
	}
}

// TestDifferentialBigPrograms stresses register pressure with larger shapes.
func TestDifferentialBigPrograms(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	cfg := progen.Config{
		Funcs:     12,
		Globals:   8,
		Arrays:    3,
		MaxStmts:  7,
		MaxDepth:  4,
		MaxExpr:   4,
		MaxParams: 6,
		FuncVars:  3,
		Recursion: true,
	}
	modes := allModes()
	skipped := 0
	for seed := 1000; seed < 1000+seeds; seed++ {
		src := progen.Generate(int64(seed), cfg)
		want, ok := oracle(src)
		if !ok {
			skipped++
			continue
		}
		for _, mode := range modes {
			prog, err := Compile(src, mode)
			if err != nil {
				t.Fatalf("seed %d [%s]: compile: %v", seed, mode.Name, err)
			}
			res, err := prog.Run()
			if err != nil {
				t.Fatalf("seed %d [%s]: run: %v\n%s", seed, mode.Name, err, src)
			}
			if !reflect.DeepEqual(res.Output, want) {
				t.Fatalf("seed %d [%s]: output mismatch\n got: %v\nwant: %v\nsource:\n%s",
					seed, mode.Name, res.Output, want, src)
			}
		}
	}
	// Deeply recursive shapes blow the step budget often; enough must
	// survive to make the test meaningful.
	if seeds-skipped < seeds/5 {
		t.Fatalf("too many over-budget seeds skipped: %d of %d", skipped, seeds)
	}
}

// TestDifferentialForcedOpen exercises the separate-compilation path: random
// subsets of functions are forced open, and results must be unchanged.
func TestDifferentialForcedOpen(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		src := progen.Generate(int64(seed), progen.DefaultConfig())
		want, ok := oracle(src)
		if !ok {
			continue // over the step budget
		}
		mode := ModeC()
		// Force a deterministic-but-varied subset open.
		switch seed % 3 {
		case 0:
			mode.ForceOpen = []string{"f0", "f3"}
		case 1:
			mode.ForceOpen = []string{"f1", "f2", "f4"}
		case 2:
			mode.ForceOpen = []string{"f0", "f1", "f2", "f3", "f4", "f5"}
		}
		prog, err := Compile(src, mode)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		res, err := prog.Run()
		if err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, src)
		}
		if !reflect.DeepEqual(res.Output, want) {
			t.Fatalf("seed %d: forced-open output mismatch\n got: %v\nwant: %v\n%s", seed, res.Output, want, src)
		}
	}
}

// TestDifferentialNoOpt checks the pipeline with the optimizer disabled,
// isolating allocator+codegen correctness from optimizer correctness.
func TestDifferentialNoOpt(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		src := progen.Generate(int64(seed), progen.DefaultConfig())
		want, ok := oracle(src)
		if !ok {
			continue // over the step budget
		}
		for _, base := range []Mode{ModeBase(), ModeC()} {
			mode := base
			mode.Optimize = false
			mode.Name += "/noopt"
			prog, err := Compile(src, mode)
			if err != nil {
				t.Fatalf("seed %d [%s]: compile: %v", seed, mode.Name, err)
			}
			res, err := prog.Run()
			if err != nil {
				t.Fatalf("seed %d [%s]: run: %v", seed, mode.Name, err)
			}
			if !reflect.DeepEqual(res.Output, want) {
				t.Fatalf("seed %d [%s]: output mismatch\n got: %v\nwant: %v\n%s", seed, mode.Name, res.Output, want, src)
			}
		}
	}
}
