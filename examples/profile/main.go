// profile: demonstrate the paper's stated future work — feeding measured
// execution frequencies back to the register allocator. The static
// loop-depth estimate cannot tell a 400-iteration loop from a 2-iteration
// one; a training run can.
package main

import (
	"fmt"
	"log"

	"chow88"
	"chow88/internal/benchprog"
)

const src = `
var g int;

func q(v int) int { return v + 1; }

func r(v int) int {
    var a int;
    var b int;
    a = q(v);
    b = q(v + 1);
    return a * b + g;
}

func p() int {
    var x int;
    var acc int;
    var i int;
    x = 13;
    acc = 0;
    for (i = 0; i < 400; i = i + 1) {
        acc = acc + q(i) + x;
    }
    for (i = 0; i < 2; i = i + 1) {
        acc = acc + r(i) + x;
    }
    return acc;
}

func main() { print(p()); }
`

func main() {
	static, err := chow88.Compile(src, chow88.ModeC())
	if err != nil {
		log.Fatal(err)
	}
	sres, err := static.Run()
	if err != nil {
		log.Fatal(err)
	}
	profiled, err := chow88.CompileProfiled(src, chow88.ModeC())
	if err != nil {
		log.Fatal(err)
	}
	pres, err := profiled.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static estimates:  output=%v cycles=%d save/restore=%d\n",
		sres.Output, sres.Stats.Cycles, sres.Stats.SaveRestoreLS())
	fmt.Printf("profile feedback:  output=%v cycles=%d save/restore=%d\n",
		pres.Output, pres.Stats.Cycles, pres.Stats.SaveRestoreLS())
	fmt.Println("\nWith measured block frequencies the allocator prices the two call")
	fmt.Println("sites by their true weights instead of treating both loops alike —")
	fmt.Println("the paper's prescription for its ccom regression (§8).")

	// The suite's diff benchmark shows the effect at full size: under plain
	// IPRA its cycles regress versus -O2 (saves migrated into a hotter
	// region, the paper's ccom failure mode); the profile repairs it.
	d := benchprog.Lookup("diff")
	base := mustRun(d.Source, chow88.ModeBase(), false)
	ipra := mustRun(d.Source, chow88.ModeC(), false)
	prof := mustRun(d.Source, chow88.ModeC(), true)
	fmt.Printf("\ndiff benchmark cycles:  -O2 %d | -O3+sw %d | -O3+sw+profile %d\n",
		base.Stats.Cycles, ipra.Stats.Cycles, prof.Stats.Cycles)
}

func mustRun(src string, mode chow88.Mode, profile bool) *chow88.RunResult {
	var prog *chow88.Program
	var err error
	if profile {
		prog, err = chow88.CompileProfiled(src, mode)
	} else {
		prog, err = chow88.Compile(src, mode)
	}
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}
