// Quickstart: compile a CW program under two modes, run both, and compare
// the register-usage penalty at procedure calls.
package main

import (
	"fmt"
	"log"

	"chow88"
)

const src = `
// Sum the first n squares through a deliberately call-intensive helper
// chain, then checksum an array transformation.
var data [64]int;

func square(x int) int { return x * x; }

func addSquare(acc int, x int) int { return acc + square(x); }

func sumSquares(n int) int {
    var acc int;
    var i int;
    acc = 0;
    for (i = 1; i <= n; i = i + 1) {
        acc = addSquare(acc, i);
    }
    return acc;
}

func transform(seed int) int {
    var i int;
    for (i = 0; i < 64; i = i + 1) {
        data[i] = square(i + seed) % 1000;
    }
    var sig int;
    sig = 0;
    for (i = 0; i < 64; i = i + 1) {
        sig = (sig * 31 + data[i]) % 1000000007;
    }
    return sig;
}

func main() {
    print(sumSquares(100));
    print(transform(7));
}
`

func main() {
	for _, mode := range []chow88.Mode{chow88.ModeBase(), chow88.ModeC()} {
		prog, err := chow88.Compile(src, mode)
		if err != nil {
			log.Fatalf("[%s] compile: %v", mode.Name, err)
		}
		res, err := prog.Run()
		if err != nil {
			log.Fatalf("[%s] run: %v", mode.Name, err)
		}
		fmt.Printf("mode %-8s output=%v\n", mode.Name, res.Output)
		fmt.Printf("  cycles=%d calls=%d scalar-loads/stores=%d save/restore=%d\n",
			res.Stats.Cycles, res.Stats.Calls, res.Stats.ScalarLS(), res.Stats.SaveRestoreLS())
	}
	fmt.Println("\nThe -O3 mode eliminates save/restore traffic at the calls whose")
	fmt.Println("callees, per their register-usage summaries, leave registers alone.")
}
