// shrinkwrap: visualize where the §5 data-flow analysis places the saves
// and restores of callee-saved registers, and measure what that does to a
// run that mostly takes the cheap path.
package main

import (
	"fmt"
	"log"
	"strings"

	"chow88"
)

const src = `
var g int;
var mode int;

func expensive(v int) int { return v * v + g; }

// handle takes the costly branch only when mode is set: the callee-saved
// registers that branch needs should be saved only there.
func handle(v int) int {
    if (mode > 0) {
        var a int;
        var b int;
        var c int;
        a = expensive(v);
        b = expensive(a);
        c = expensive(a + b);
        g = g + a + b + c;
    }
    g = g + 1;
    return g;
}

func main() {
    var i int;
    mode = 0;
    for (i = 0; i < 500; i = i + 1) {
        if (i % 50 == 0) { mode = 1; } else { mode = 0; }
        handle(i);
    }
    print(g);
}
`

func main() {
	for _, sw := range []bool{false, true} {
		mode := chow88.ModeBase()
		mode.ShrinkWrap = sw
		mode.Name = map[bool]string{false: "entry/exit saves", true: "shrink-wrapped"}[sw]
		prog, err := chow88.Compile(src, mode)
		if err != nil {
			log.Fatal(err)
		}
		f := prog.Module.Lookup("handle")
		fp := prog.Plan.Funcs[f]
		fmt.Printf("%s:\n", mode.Name)
		for _, r := range fp.Plan.Regs().Regs() {
			var saves, restores []string
			for _, b := range fp.Plan.SaveAt[r] {
				saves = append(saves, b.Name)
			}
			for _, b := range fp.Plan.RestoreAt[r] {
				restores = append(restores, b.Name)
			}
			fmt.Printf("  %s: save at {%s}, restore at {%s}\n",
				r, strings.Join(saves, ","), strings.Join(restores, ","))
		}
		res, err := prog.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  output=%v  save/restore ops=%d  cycles=%d\n\n",
			res.Output, res.Stats.SaveRestoreLS(), res.Stats.Cycles)
	}
	fmt.Println("With shrink-wrapping the saves move into the rarely-taken branch,")
	fmt.Println("so the 90% of calls that skip it pay no register-usage penalty.")
}
