// ipra: inspect the one-pass inter-procedural allocation of a program — the
// depth-first processing order, the open/closed classification, each closed
// procedure's register-usage summary, and where parameters travel.
package main

import (
	"fmt"
	"log"
	"strings"

	"chow88"
)

const src = `
var table [32]int;
var hook func(int) int;

func hash(k int) int { return (k * 2654435761) % 32; }

func probe(k int) int {
    var h int;
    h = hash(k);
    while (table[h] != 0 && table[h] != k) {
        h = (h + 1) % 32;
    }
    return h;
}

func insert(k int) { table[probe(k)] = k; }

func member(k int) int { return table[probe(k)] == k; }

func census(n int) int {
    if (n <= 0) { return 0; }
    return member(n * 3) + census(n - 1);
}

func double(x int) int { return x * 2; }

func main() {
    var i int;
    for (i = 1; i <= 20; i = i + 1) { insert(i * 3); }
    hook = double;
    print(census(25));
    print(hook(21));
}
`

func main() {
	prog, err := chow88.Compile(src, chow88.ModeC())
	if err != nil {
		log.Fatal(err)
	}
	pp := prog.Plan
	var order []string
	for _, f := range pp.Order {
		order = append(order, f.Name)
	}
	fmt.Printf("depth-first bottom-up order: %s\n\n", strings.Join(order, " -> "))
	for _, f := range pp.Order {
		fp := pp.Funcs[f]
		if fp == nil {
			continue
		}
		if fp.Open {
			fmt.Printf("%-8s OPEN   (%s)\n", f.Name, fp.OpenReason)
			fmt.Printf("         default linkage; callee-saved registers it uses are saved\n")
			fmt.Printf("         locally: %v\n", fp.Plan.Regs())
			continue
		}
		fmt.Printf("%-8s closed summary: %s\n", f.Name, fp.Summary)
	}
	res, err := prog.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprogram output: %v (cycles %d, calls %d)\n",
		res.Output, res.Stats.Cycles, res.Stats.Calls)
}
