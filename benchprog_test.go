package chow88

import (
	"reflect"
	"testing"

	"chow88/internal/benchprog"
)

// TestBenchmarksAllModes compiles and runs every suite benchmark under every
// measurement mode, requiring interpreter-identical output. This is both the
// correctness gate for the evaluation and a smoke test that the workloads
// terminate within sane budgets.
func TestBenchmarksAllModes(t *testing.T) {
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			want, err := Interpret(b.Source)
			if err != nil {
				t.Fatalf("interpreter: %v", err)
			}
			if len(want) == 0 {
				t.Fatalf("benchmark prints nothing; output checks would be vacuous")
			}
			for _, mode := range allModes() {
				prog, err := Compile(b.Source, mode)
				if err != nil {
					t.Fatalf("[%s] compile: %v", mode.Name, err)
				}
				res, err := prog.Run()
				if err != nil {
					t.Fatalf("[%s] run: %v", mode.Name, err)
				}
				if !reflect.DeepEqual(res.Output, want) {
					t.Errorf("[%s] output = %v, want %v", mode.Name, res.Output, want)
				}
			}
		})
	}
}

// TestBenchmarksAreCallIntensive checks the suite matches the paper's
// workload character: every benchmark makes procedure calls, and the suite
// spans both call-dense and call-sparse regimes.
func TestBenchmarksAreCallIntensive(t *testing.T) {
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := Compile(b.Source, ModeBase())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			res, err := prog.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Stats.Calls < 100 {
				t.Errorf("only %d calls; the suite must be call-intensive", res.Stats.Calls)
			}
			cpc := res.Stats.CyclesPerCall()
			if cpc > 5000 {
				t.Errorf("cycles/call = %.0f; too call-sparse for the paper's analysis", cpc)
			}
		})
	}
}

func TestBenchmarkRegistry(t *testing.T) {
	all := benchprog.All()
	if len(all) != 13 {
		t.Fatalf("suite has %d entries, want 13", len(all))
	}
	if benchprog.Lookup("nim") == nil || benchprog.Lookup("uopt") == nil {
		t.Fatal("lookup broken")
	}
	if benchprog.Lookup("nope") != nil {
		t.Fatal("lookup should miss")
	}
	for _, b := range all {
		if b.Lines < 50 {
			t.Errorf("%s: only %d lines", b.Name, b.Lines)
		}
	}
}
