// Package opt is the baseline scalar optimizer, standing in for the paper's
// -O2 global optimizer (Uopt): constant folding, block-local value numbering
// (CSE) and copy/constant propagation, liveness-based dead-code elimination,
// and control-flow simplification.
//
// The paper's baseline matters: its allocator improves on an already
// competent -O2, and the evaluation normalizes everything against it. All
// compilation modes here run the same optimizer so the measured deltas come
// from the allocation techniques alone.
package opt

import (
	"fmt"

	"chow88/internal/ir"
	"chow88/internal/liveness"
)

// Run optimizes every function of m in place.
func Run(m *ir.Module) {
	for _, f := range m.Funcs {
		if f.Extern {
			continue
		}
		RunFunc(f)
	}
}

// RunFunc optimizes a single function to a fixpoint (bounded).
func RunFunc(f *ir.Func) {
	for i := 0; i < 8; i++ {
		changed := false
		for _, b := range f.Blocks {
			if localOptimize(f, b) {
				changed = true
			}
		}
		if foldBranches(f) {
			changed = true
		}
		if simplifyCFG(f) {
			changed = true
		}
		if deadCodeElim(f) {
			changed = true
		}
		if !changed {
			break
		}
	}
}

// exprKey identifies a pure computation for value numbering.
type exprKey struct {
	op   ir.Op
	a, b string
	gidx *ir.Global
}

func operandKey(o ir.Operand, names map[*ir.Temp]string) string {
	if o.Temp != nil {
		return names[o.Temp]
	}
	return fmt.Sprintf("#%d", o.Const)
}

// localOptimize performs constant folding, copy/constant propagation, and
// value numbering within one block. Returns whether anything changed.
func localOptimize(f *ir.Func, b *ir.Block) bool {
	changed := false
	// names gives each temp a value name; redefinition refreshes it.
	names := map[*ir.Temp]string{}
	nameOf := func(t *ir.Temp) string {
		if n, ok := names[t]; ok {
			return n
		}
		n := fmt.Sprintf("v%d.in", t.ID)
		names[t] = n
		return n
	}
	// constVal maps value names to known constants.
	constVal := map[string]int64{}
	// copyOf maps value names to an equivalent temp currently holding it.
	holder := map[string]*ir.Temp{}
	// available maps expression keys to value names.
	available := map[exprKey]string{}
	gen := 0
	freshName := func() string {
		gen++
		return fmt.Sprintf("n%d.%d", b.ID, gen)
	}

	// killGlobals invalidates global-load values (after calls and stores).
	killGlobals := func() {
		for k := range available {
			if k.op == ir.OpLoadG || k.op == ir.OpLoadIdx {
				delete(available, k)
			}
		}
	}

	substitute := func(o *ir.Operand) {
		if o.Temp == nil {
			return
		}
		n := nameOf(o.Temp)
		if c, ok := constVal[n]; ok {
			*o = ir.ConstOp(c)
			changed = true
			return
		}
		if h, ok := holder[n]; ok && h != o.Temp && names[h] == n {
			*o = ir.TempOp(h)
			changed = true
		}
	}

	for idx, in := range b.Instrs {
		// Propagate into operands.
		switch in.Op {
		case ir.OpJmp:
		case ir.OpCall, ir.OpCallInd:
			if in.Op == ir.OpCallInd {
				substitute(&in.A)
			}
			for i := range in.Args {
				substitute(&in.Args[i])
			}
		default:
			substitute(&in.A)
			substitute(&in.B)
		}

		// Fold pure ops with constant operands.
		if folded, ok := fold(in); ok {
			b.Instrs[idx] = folded
			in = folded
			changed = true
		}

		// Effects on the local value state.
		switch in.Op {
		case ir.OpConst:
			n := freshName()
			names[in.Dst] = n
			constVal[n] = in.Imm
			holder[n] = in.Dst
		case ir.OpCopy:
			if in.A.Temp != nil {
				n := nameOf(in.A.Temp)
				names[in.Dst] = n
				if _, ok := holder[n]; !ok {
					holder[n] = in.A.Temp
				}
			} else {
				n := freshName()
				names[in.Dst] = n
				constVal[n] = in.A.Const
				holder[n] = in.Dst
			}
		case ir.OpNeg, ir.OpNot, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
			ir.OpCmpEq, ir.OpCmpNe, ir.OpCmpLt, ir.OpCmpLe, ir.OpCmpGt, ir.OpCmpGe,
			ir.OpLoadG, ir.OpLoadIdx, ir.OpFuncAddr:
			key := exprKey{op: in.Op, gidx: in.Global}
			if in.Op == ir.OpFuncAddr {
				key.a = in.Callee.Name
			} else {
				key.a = operandKey(in.A, names)
				key.b = operandKey(in.B, names)
			}
			if in.Op == ir.OpLoadIdx {
				if in.Arr.Global != nil {
					key.gidx = in.Arr.Global
				} else {
					key.b = "local:" + in.Arr.Local.Name + "/" + key.b
				}
			}
			if n, ok := available[key]; ok {
				if h, hok := holder[n]; hok && names[h] == n && h != in.Dst {
					// Replace the recomputation with a copy (CSE).
					b.Instrs[idx] = &ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: ir.TempOp(h)}
					names[in.Dst] = n
					changed = true
					continue
				}
			}
			n := freshName()
			names[in.Dst] = n
			holder[n] = in.Dst
			if in.Op != ir.OpDiv && in.Op != ir.OpRem && in.Op != ir.OpLoadIdx {
				// Division and indexed loads may trap; re-running them is
				// still pure, so they are CSE-able, but their results are
				// recorded the same way regardless.
			}
			available[key] = n
		case ir.OpStoreG:
			// A scalar-global store invalidates loads of that global (and,
			// conservatively, nothing else).
			for k := range available {
				if k.op == ir.OpLoadG && k.gidx == in.Global {
					delete(available, k)
				}
			}
		case ir.OpStoreIdx:
			// An indexed store conservatively invalidates all indexed loads.
			for k := range available {
				if k.op == ir.OpLoadIdx {
					delete(available, k)
				}
			}
		case ir.OpCall, ir.OpCallInd:
			killGlobals()
			if in.Dst != nil {
				n := freshName()
				names[in.Dst] = n
				holder[n] = in.Dst
			}
		}
	}
	return changed
}

// fold evaluates pure instructions with constant operands.
func fold(in *ir.Instr) (*ir.Instr, bool) {
	c := func(v int64) (*ir.Instr, bool) {
		return &ir.Instr{Op: ir.OpConst, Dst: in.Dst, Imm: v}, true
	}
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch in.Op {
	case ir.OpNeg:
		if in.A.IsConst() {
			return c(-in.A.Const)
		}
	case ir.OpNot:
		if in.A.IsConst() {
			return c(b2i(in.A.Const == 0))
		}
	case ir.OpCopy:
		if in.A.IsConst() {
			return c(in.A.Const)
		}
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpCmpEq, ir.OpCmpNe, ir.OpCmpLt, ir.OpCmpLe, ir.OpCmpGt, ir.OpCmpGe:
		if !in.A.IsConst() || !in.B.IsConst() {
			// Algebraic identities with one constant.
			if in.Op == ir.OpAdd && in.B.IsConst() && in.B.Const == 0 && in.A.Temp != nil {
				return &ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: in.A}, true
			}
			if in.Op == ir.OpAdd && in.A.IsConst() && in.A.Const == 0 && in.B.Temp != nil {
				return &ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: in.B}, true
			}
			if in.Op == ir.OpSub && in.B.IsConst() && in.B.Const == 0 && in.A.Temp != nil {
				return &ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: in.A}, true
			}
			if in.Op == ir.OpMul && in.B.IsConst() && in.B.Const == 1 && in.A.Temp != nil {
				return &ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: in.A}, true
			}
			if in.Op == ir.OpMul && in.A.IsConst() && in.A.Const == 1 && in.B.Temp != nil {
				return &ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: in.B}, true
			}
			return nil, false
		}
		x, y := in.A.Const, in.B.Const
		switch in.Op {
		case ir.OpAdd:
			return c(x + y)
		case ir.OpSub:
			return c(x - y)
		case ir.OpMul:
			return c(x * y)
		case ir.OpDiv:
			if y == 0 {
				return nil, false // keep the trap
			}
			if x == -1<<63 && y == -1 {
				return c(x)
			}
			return c(x / y)
		case ir.OpRem:
			if y == 0 {
				return nil, false
			}
			if x == -1<<63 && y == -1 {
				return c(0)
			}
			return c(x % y)
		case ir.OpCmpEq:
			return c(b2i(x == y))
		case ir.OpCmpNe:
			return c(b2i(x != y))
		case ir.OpCmpLt:
			return c(b2i(x < y))
		case ir.OpCmpLe:
			return c(b2i(x <= y))
		case ir.OpCmpGt:
			return c(b2i(x > y))
		case ir.OpCmpGe:
			return c(b2i(x >= y))
		}
	}
	return nil, false
}

// foldBranches turns branches on constants into jumps.
func foldBranches(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpBr || !t.A.IsConst() {
			continue
		}
		target := t.Target
		if t.A.Const == 0 {
			target = t.Else
		}
		b.Instrs[len(b.Instrs)-1] = &ir.Instr{Op: ir.OpJmp, Target: target}
		changed = true
	}
	if changed {
		f.ComputeCFG()
		f.RemoveUnreachable()
	}
	return changed
}

// deadCodeElim removes side-effect-free instructions whose results are dead.
func deadCodeElim(f *ir.Func) bool {
	changed := false
	live := liveness.Analyze(f)
	n := f.NumTemps()
	var buf []*ir.Temp
	for _, b := range f.Blocks {
		liveNow := make([]bool, n)
		live.LiveOut[b].ForEach(func(i int) { liveNow[i] = true })
		// Backward sweep marking dead defs.
		keep := make([]bool, len(b.Instrs))
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			dead := in.Dst != nil && !liveNow[in.Dst.ID] && !in.HasSideEffects()
			keep[i] = !dead
			if dead {
				changed = true
				continue
			}
			if in.Dst != nil {
				liveNow[in.Dst.ID] = false
			}
			buf = in.Uses(buf[:0])
			for _, t := range buf {
				liveNow[t.ID] = true
			}
		}
		if changed {
			var out []*ir.Instr
			for i, in := range b.Instrs {
				if keep[i] {
					out = append(out, in)
				}
			}
			b.Instrs = out
		}
	}
	// Calls whose results are dead keep the call but drop the destination.
	live = liveness.Analyze(f)
	for _, b := range f.Blocks {
		liveNow := make([]bool, n)
		live.LiveOut[b].ForEach(func(i int) { liveNow[i] = true })
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if in.Op.IsCall() && in.Dst != nil && !liveNow[in.Dst.ID] {
				in.Dst = nil
				changed = true
			}
			if in.Dst != nil {
				liveNow[in.Dst.ID] = false
			}
			buf = in.Uses(buf[:0])
			for _, t := range buf {
				liveNow[t.ID] = true
			}
		}
	}
	return changed
}

// simplifyCFG threads jumps through empty blocks and merges straight-line
// pairs, shrinking the CFG the shrink-wrap analysis sees.
func simplifyCFG(f *ir.Func) bool {
	changed := false
	// Thread jumps to blocks that only jump elsewhere.
	jumpOnly := func(b *ir.Block) *ir.Block {
		if len(b.Instrs) == 1 && b.Instrs[0].Op == ir.OpJmp {
			return b.Instrs[0].Target
		}
		return nil
	}
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		redirect := func(blk *ir.Block) *ir.Block {
			seen := map[*ir.Block]bool{}
			for {
				next := jumpOnly(blk)
				if next == nil || seen[blk] || next == blk {
					return blk
				}
				seen[blk] = true
				blk = next
			}
		}
		switch t.Op {
		case ir.OpJmp:
			if n := redirect(t.Target); n != t.Target {
				t.Target = n
				changed = true
			}
		case ir.OpBr:
			if n := redirect(t.Target); n != t.Target {
				t.Target = n
				changed = true
			}
			if n := redirect(t.Else); n != t.Else {
				t.Else = n
				changed = true
			}
			if t.Target == t.Else {
				b.Instrs[len(b.Instrs)-1] = &ir.Instr{Op: ir.OpJmp, Target: t.Target}
				changed = true
			}
		}
	}
	if changed {
		f.ComputeCFG()
		f.RemoveUnreachable()
	}
	// Merge b -> s when b jumps to s and s has exactly one predecessor.
	merged := false
	for _, b := range f.Blocks {
		for {
			t := b.Terminator()
			if t == nil || t.Op != ir.OpJmp {
				break
			}
			s := t.Target
			if s == b || len(s.Preds) != 1 || s == f.Entry() {
				break
			}
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1], s.Instrs...)
			s.Instrs = nil
			merged = true
			f.ComputeCFG()
		}
	}
	if merged {
		// Drop emptied blocks.
		var kept []*ir.Block
		for _, b := range f.Blocks {
			if len(b.Instrs) > 0 {
				kept = append(kept, b)
			}
		}
		f.Blocks = kept
		f.ComputeCFG()
		f.RemoveUnreachable()
		changed = true
	}
	return changed
}
