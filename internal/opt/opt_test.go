package opt

import (
	"reflect"
	"strings"
	"testing"

	"chow88/internal/interp"
	"chow88/internal/ir"
	"chow88/internal/lower"
	"chow88/internal/parser"
	"chow88/internal/progen"
	"chow88/internal/sema"
)

func optimized(t *testing.T, src string) *ir.Module {
	t.Helper()
	tree, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(tree)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	mod, err := lower.Build(info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	Run(mod)
	if err := ir.VerifyModule(mod); err != nil {
		t.Fatalf("optimizer broke the IR: %v", err)
	}
	return mod
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestConstantFolding(t *testing.T) {
	mod := optimized(t, `func main() { print(2 + 3 * 4); }`)
	f := mod.Lookup("main")
	if n := countOps(f, ir.OpAdd) + countOps(f, ir.OpMul); n != 0 {
		t.Errorf("%d arithmetic ops survive constant folding:\n%s", n, ir.FuncString(f))
	}
}

func TestBranchFolding(t *testing.T) {
	mod := optimized(t, `
func main() {
    if (1 < 2) { print(1); } else { print(2); }
}`)
	f := mod.Lookup("main")
	if n := countOps(f, ir.OpBr); n != 0 {
		t.Errorf("constant branch survives:\n%s", ir.FuncString(f))
	}
	// The dead arm must be gone entirely.
	s := ir.FuncString(f)
	if strings.Contains(s, "print 2") {
		t.Errorf("dead branch survives:\n%s", s)
	}
}

func TestLocalCSE(t *testing.T) {
	mod := optimized(t, `
func f(a int, b int) int {
    var x int;
    var y int;
    x = a * b + 3;
    y = a * b + 3;
    return x + y;
}
func main() { print(f(2, 5)); }`)
	f := mod.Lookup("f")
	if n := countOps(f, ir.OpMul); n > 1 {
		t.Errorf("a*b computed %d times:\n%s", n, ir.FuncString(f))
	}
}

func TestDeadZeroInitEliminated(t *testing.T) {
	// s is always assigned before use, so the implicit zero-init dies.
	mod := optimized(t, `
func f(a int) int {
    var s int;
    s = a * 2;
    return s;
}
func main() { print(f(4)); }`)
	f := mod.Lookup("f")
	if n := countOps(f, ir.OpConst); n != 0 {
		t.Errorf("%d consts survive (zero-init should be dead):\n%s", n, ir.FuncString(f))
	}
}

func TestDivisionByZeroPreserved(t *testing.T) {
	// A potentially trapping division must never be folded away, even with a
	// dead result.
	mod := optimized(t, `
var z int;
func main() {
    var unused int;
    unused = 1 / z;
    print(7);
}`)
	f := mod.Lookup("main")
	if n := countOps(f, ir.OpDiv); n != 1 {
		t.Errorf("div count = %d; traps must be preserved:\n%s", n, ir.FuncString(f))
	}
}

func TestGlobalLoadInvalidatedByCall(t *testing.T) {
	mod := optimized(t, `
var g int;
func bump() { g = g + 1; }
func main() {
    var a int;
    var b int;
    a = g;
    bump();
    b = g;
    print(a + b);
}`)
	f := mod.Lookup("main")
	if n := countOps(f, ir.OpLoadG); n < 2 {
		t.Errorf("load of g across a call was wrongly CSEd:\n%s", ir.FuncString(f))
	}
}

func TestGlobalLoadInvalidatedByStore(t *testing.T) {
	mod := optimized(t, `
var g int;
func main() {
    var a int;
    var b int;
    a = g;
    g = 5;
    b = g;
    print(a + b);
}`)
	f := mod.Lookup("main")
	// The second read may be forwarded from the constant store or reloaded,
	// but it must not reuse the pre-store load.
	res := runModule(t, `
var g int;
func main() {
    var a int;
    var b int;
    a = g;
    g = 5;
    b = g;
    print(a + b);
}`)
	if !reflect.DeepEqual(res, []int64{5}) {
		t.Errorf("semantics broken: %v", res)
	}
	_ = f
}

func TestAlgebraicIdentities(t *testing.T) {
	mod := optimized(t, `
func f(a int) int {
    return (a + 0) * 1 - 0;
}
func main() { print(f(9)); }`)
	f := mod.Lookup("f")
	if n := countOps(f, ir.OpAdd) + countOps(f, ir.OpMul) + countOps(f, ir.OpSub); n != 0 {
		t.Errorf("identities not simplified:\n%s", ir.FuncString(f))
	}
}

func TestCFGSimplification(t *testing.T) {
	mod := optimized(t, `
func f(a int) int {
    var r int;
    if (a > 0) { r = 1; } else { r = 2; }
    return r;
}
func main() { print(f(1)); }`)
	f := mod.Lookup("f")
	// Jump-only blocks should be threaded away; expect a compact CFG.
	if len(f.Blocks) > 4 {
		t.Errorf("CFG not simplified: %d blocks\n%s", len(f.Blocks), ir.FuncString(f))
	}
}

// runModule interprets the source (semantic oracle for optimizer tests).
func runModule(t *testing.T, src string) []int64 {
	t.Helper()
	tree, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(tree)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := interp.Run(info, interp.Options{})
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	return res.Output
}

// TestOptimizerPreservesVerification fuzzes the optimizer against the IR
// verifier on random programs (semantic preservation is covered by the
// top-level differential tests).
func TestOptimizerPreservesVerification(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 25
	}
	for seed := 0; seed < n; seed++ {
		src := progen.Generate(int64(seed), progen.DefaultConfig())
		tree, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		info, err := sema.Check(tree)
		if err != nil {
			t.Fatalf("seed %d: check: %v", seed, err)
		}
		mod, err := lower.Build(info)
		if err != nil {
			t.Fatalf("seed %d: lower: %v", seed, err)
		}
		Run(mod)
		if err := ir.VerifyModule(mod); err != nil {
			t.Fatalf("seed %d: optimizer broke the IR: %v\n%s", seed, err, src)
		}
	}
}
