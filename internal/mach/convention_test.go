package mach

import (
	"errors"
	"strings"
	"testing"
)

func TestValidateAccepts(t *testing.T) {
	for _, c := range []*Config{Default(), CallerOnly7(), CalleeOnly7(),
		{Name: "none", Params: []Reg{A0}}} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: Validate() = %v, want nil", c.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		cfg    *Config
		reason string
	}{
		{"overlap", &Config{CallerSaved: SetOf(T0, S0), CalleeSaved: SetOf(S0, S1)}, ReasonClassOverlap},
		{"reserved-caller", &Config{CallerSaved: SetOf(T0, RA)}, ReasonReserved},
		{"reserved-callee", &Config{CalleeSaved: SetOf(S0, SP)}, ReasonReserved},
		{"reserved-scratch", &Config{CallerSaved: SetOf(K0)}, ReasonReserved},
		{"reserved-result", &Config{CallerSaved: SetOf(V0)}, ReasonReserved},
		{"dup-param", &Config{CallerSaved: SetOf(A0, A1), Params: []Reg{A0, A1, A0}}, ReasonParamDup},
		{"param-callee", &Config{CalleeSaved: SetOf(S0), Params: []Reg{S0}}, ReasonParamCallee},
		{"param-reserved", &Config{CallerSaved: SetOf(T0), Params: []Reg{RA}}, ReasonParamReserved},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want %s", tc.name, tc.reason)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a *ConfigError", tc.name, err)
			continue
		}
		if ce.Reason != tc.reason {
			t.Errorf("%s: reason = %s, want %s", tc.name, ce.Reason, tc.reason)
		}
	}
}

func TestSpecCanonical(t *testing.T) {
	cases := []struct {
		cfg  *Config
		want string
	}{
		{Default(), "caller=v1,a0-a3,t0-t9;callee=s0-s8;params=a0-a3"},
		{CallerOnly7(), "caller=t0-t6;callee=;params=a0-a3"},
		{CalleeOnly7(), "caller=;callee=s0-s6;params=a0-a3"},
	}
	for _, tc := range cases {
		if got := tc.cfg.Spec(); got != tc.want {
			t.Errorf("%s: Spec() = %q, want %q", tc.cfg.Name, got, tc.want)
		}
	}
}

func sameSets(a, b *Config) bool {
	if a.CallerSaved != b.CallerSaved || a.CalleeSaved != b.CalleeSaved ||
		len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	return true
}

// TestSpecRoundTrip checks parse → encode → parse identity over the named
// configurations and the entire enumerated convention space.
func TestSpecRoundTrip(t *testing.T) {
	cfgs := []*Config{Default(), CallerOnly7(), CalleeOnly7()}
	enumerated := Enumerate(-1)
	cfgs = append(cfgs, enumerated...)
	for _, c := range cfgs {
		spec := c.Spec()
		parsed, err := ParseConvention(spec)
		if err != nil {
			t.Fatalf("%s: ParseConvention(%q): %v", c.Name, spec, err)
		}
		if !sameSets(c, parsed) {
			t.Fatalf("%s: round trip changed sets: %q -> caller=%s callee=%s params=%v",
				c.Name, spec, parsed.CallerSaved, parsed.CalleeSaved, parsed.Params)
		}
		if got := parsed.Spec(); got != spec {
			t.Fatalf("%s: re-encode not canonical: %q -> %q", c.Name, spec, got)
		}
	}
	// Within the enumerated space every convention point is distinct.
	specs := map[string]string{}
	for _, c := range enumerated {
		spec := c.Spec()
		if prev, dup := specs[spec]; dup {
			t.Fatalf("spec %q produced by both %s and %s", spec, prev, c.Name)
		}
		specs[spec] = c.Name
	}
}

func TestParseConventionErrors(t *testing.T) {
	cases := []string{
		"",
		"caller",
		"caller=t0;caller=t1",
		"bogus=t0",
		"caller=t0,xyz",
		"caller=t0-s0",
		"caller=s3-s1",
		"caller=t0;callee=s0;params=s0", // valid syntax, invalid convention
	}
	for _, spec := range cases {
		if _, err := ParseConvention(spec); err == nil {
			t.Errorf("ParseConvention(%q) = nil error, want failure", spec)
		} else {
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Errorf("ParseConvention(%q): error %v is not a *ConfigError", spec, err)
			}
		}
	}
}

func TestParseConventionForgiving(t *testing.T) {
	// Dollar prefixes, spaces, and reordered sections all parse to the
	// same canonical convention.
	want := Default().Spec()
	for _, spec := range []string{
		"params=a0-a3; callee=s0-s8; caller=$v1,$a0-$a3,$t0-$t9",
		"caller=v1,a0,a1,a2,a3,t0,t1,t2,t3,t4,t5,t6,t7,t8,t9;callee=s0-s8;params=a0,a1,a2,a3",
	} {
		c, err := ParseConvention(spec)
		if err != nil {
			t.Fatalf("ParseConvention(%q): %v", spec, err)
		}
		if got := c.Spec(); got != want {
			t.Errorf("ParseConvention(%q).Spec() = %q, want %q", spec, got, want)
		}
	}
}

func TestEnumerate(t *testing.T) {
	all := Enumerate(-1)
	if len(all) < 100 {
		t.Fatalf("Enumerate(-1) = %d conventions, want >= 100", len(all))
	}
	boundaries := map[int]bool{}
	paramCounts := map[int]bool{}
	for _, c := range all {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: enumerated convention invalid: %v", c.Name, err)
		}
		if got := c.CallerSaved & c.CalleeSaved; !got.Empty() {
			t.Errorf("%s: classes overlap: %s", c.Name, got)
		}
		boundaries[c.CalleeSaved.Count()] = true
		paramCounts[len(c.Params)] = true
		if !strings.HasPrefix(c.Name, "c") {
			t.Errorf("unexpected short name %q", c.Name)
		}
	}
	for n := 0; n <= len(PartitionRegs); n++ {
		if !boundaries[n] {
			t.Errorf("no convention with %d callee-saved registers", n)
		}
	}
	for p := 0; p <= MaxParams; p++ {
		if !paramCounts[p] {
			t.Errorf("no convention with %d parameter registers", p)
		}
	}
	// The paper's partition (9 callee-saved, 4 params) must be in the space
	// and must match Default's register sets exactly.
	b := Boundary(9, 4)
	if b == nil {
		t.Fatal("Boundary(9, 4) = nil")
	}
	d := Default()
	if b.CallerSaved != d.CallerSaved || b.CalleeSaved != d.CalleeSaved {
		t.Errorf("Boundary(9,4) = %s, want Default's sets %s/%s",
			b.Spec(), d.CallerSaved, d.CalleeSaved)
	}
	// Once $t8/$t9 turn callee-saved the 5/6-param points must be skipped,
	// not emitted invalid.
	if c := Boundary(15, 6); c != nil {
		t.Errorf("Boundary(15, 6) = %s, want nil (param pool exhausted)", c.Spec())
	}
	if c := Boundary(20, 4); c == nil || len(c.Params) != 4 {
		t.Errorf("Boundary(20, 4) should still supply a0-a3 params, got %v", c)
	}
}

func TestEnumerateMaxParams(t *testing.T) {
	for _, c := range Enumerate(2) {
		if len(c.Params) > 2 {
			t.Fatalf("Enumerate(2) emitted %d params (%s)", len(c.Params), c.Name)
		}
	}
}
