// Convention construction, validation and enumeration.
//
// The paper fixes one register-usage convention (11 caller-saved + 9
// callee-saved + 4 parameter registers) and measures two hand-restricted
// variants (Table 2's D and E columns). This file makes the convention a
// first-class, constructible value: a canonical string encoding for CLI
// flags and cache fingerprints, a validator that rejects nonsense
// partitions with a named reason before they reach the allocator, and a
// generator that enumerates the caller/callee partition space the
// auto-tuning sweep searches.
package mach

import (
	"fmt"
	"strconv"
	"strings"
)

// Reserved is the set of registers no convention may allocate or pass
// parameters in: the hardwired zero, the code generator's scratch registers
// ($at, $k0, $k1), the result register ($v0), and the global/stack/return
// linkage registers ($gp, $sp, $ra).
var Reserved = SetOf(Zero, AT, V0, K0, K1, GP, SP, RA)

// PartitionRegs is the ordered register pool the sweep partitions into
// caller-saved and callee-saved classes: the paper's 20 allocatable
// registers, arranged so that a single moving boundary converts registers
// one at a time from the caller class to the callee class (caller-most
// first). The dedicated parameter registers $a0–$a3 are not part of the
// partition; they join the caller-saved class only while serving as
// parameter registers (as in Default).
var PartitionRegs = []Reg{V1, T0, T1, T2, T3, T4, T5, T6, T7, T8, T9,
	S0, S1, S2, S3, S4, S5, S6, S7, S8}

// ParamPool is the ordered pool parameter registers are drawn from when
// enumerating conventions: the four dedicated argument registers first,
// then (for 5- and 6-parameter conventions) the highest caller-saved
// temporaries. MaxParams bounds the enumerated parameter count.
var ParamPool = []Reg{A0, A1, A2, A3, T9, T8}

// MaxParams is the largest parameter-register count the enumerator emits.
const MaxParams = 6

// ConfigError reports an invalid register configuration. Reason is a
// stable machine-checkable identifier; Detail names the offending
// registers.
type ConfigError struct {
	Reason string // one of the Reason* constants
	Detail string
}

// Named validation-failure reasons.
const (
	ReasonClassOverlap  = "caller-callee-overlap"
	ReasonReserved      = "reserved-register"
	ReasonParamDup      = "duplicate-param"
	ReasonParamCallee   = "param-callee-saved"
	ReasonParamReserved = "param-reserved"
	ReasonBadSpec       = "bad-spec"
)

func (e *ConfigError) Error() string {
	return fmt.Sprintf("convention: %s: %s", e.Reason, e.Detail)
}

// Validate checks that the configuration describes a coherent convention:
//
//   - the caller-saved and callee-saved classes are disjoint (a register
//     cannot be both clobbered and preserved by the default linkage);
//   - no reserved register ($zero, $at, $v0, $k0, $k1, $gp, $sp, $ra) is
//     allocatable or a parameter register — the code generator owns them;
//   - parameter registers are pairwise distinct;
//   - no parameter register is callee-saved: an argument delivered in a
//     preserved register would be captured by the callee's entry save,
//     and the default oracle would under-report the call's clobber set.
//
// A configuration that fails any of these is a miscompile generator: the
// allocator or the emitted linkage fails far from the actual mistake.
// Every compile entry point validates the mode's Config before planning.
func (c *Config) Validate() error {
	if overlap := c.CallerSaved & c.CalleeSaved; !overlap.Empty() {
		return &ConfigError{ReasonClassOverlap,
			fmt.Sprintf("%s in both the caller-saved and callee-saved sets", overlap)}
	}
	if bad := c.Allocatable() & Reserved; !bad.Empty() {
		return &ConfigError{ReasonReserved,
			fmt.Sprintf("reserved %s in an allocatable set", bad)}
	}
	var seen RegSet
	for _, r := range c.Params {
		if Reserved.Has(r) {
			return &ConfigError{ReasonParamReserved,
				fmt.Sprintf("reserved %s used as a parameter register", r)}
		}
		if seen.Has(r) {
			return &ConfigError{ReasonParamDup,
				fmt.Sprintf("%s appears twice in the parameter list", r)}
		}
		seen = seen.Add(r)
	}
	if bad := seen & c.CalleeSaved; !bad.Empty() {
		return &ConfigError{ReasonParamCallee,
			fmt.Sprintf("parameter %s is callee-saved", bad)}
	}
	return nil
}

// specOrder is the canonical rendering order of conventionable registers:
// families are walked in this order and consecutive family members coalesce
// into ranges ("t0-t9" covers the numeric gap between $t7 and $t8).
var specOrder = []Reg{V1, A0, A1, A2, A3, T0, T1, T2, T3, T4, T5, T6, T7, T8, T9,
	S0, S1, S2, S3, S4, S5, S6, S7, S8}

// family splits a conventional register name into its letter prefix and
// numeric suffix ("t9" → "t", 9). ok is false for unsuffixed names.
func family(r Reg) (string, int, bool) {
	name := regNames[r]
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i == len(name) || i == 0 {
		return name, 0, false
	}
	n, err := strconv.Atoi(name[i:])
	if err != nil {
		return name, 0, false
	}
	return name[:i], n, true
}

// encodeSet renders a register set compactly in specOrder, coalescing runs
// within one register family: {$v1,$t0..$t9} → "v1,t0-t9".
func encodeSet(s RegSet) string {
	var parts []string
	i := 0
	for i < len(specOrder) {
		r := specOrder[i]
		if !s.Has(r) {
			i++
			continue
		}
		fam, start, ok := family(r)
		j := i
		if ok {
			n := start
			for j+1 < len(specOrder) {
				nf, nn, nok := family(specOrder[j+1])
				if !nok || nf != fam || nn != n+1 || !s.Has(specOrder[j+1]) {
					break
				}
				j++
				n++
			}
		}
		if j > i { // run of at least two
			parts = append(parts, regNames[specOrder[i]]+"-"+regNames[specOrder[j]])
		} else {
			parts = append(parts, regNames[specOrder[i]])
		}
		i = j + 1
	}
	return strings.Join(parts, ",")
}

// Spec returns the canonical convention encoding, e.g. for Default:
//
//	caller=v1,a0-a3,t0-t9;callee=s0-s8;params=a0-a3
//
// The caller and callee sections list the two allocatable classes in full
// (parameter registers appear in the caller list exactly when they are
// allocation candidates, as in Default); params lists the parameter
// registers in parameter order. ParseConvention(Spec()) reproduces the
// register sets exactly, so the spec doubles as a convention fingerprint.
func (c *Config) Spec() string {
	return fmt.Sprintf("caller=%s;callee=%s;params=%s",
		encodeSet(c.CallerSaved), encodeSet(c.CalleeSaved), encodeList(c.Params))
}

// encodeList renders an ordered register list, coalescing ascending runs
// within one family: [$a0,$a1,$a2,$a3] → "a0-a3". Order is preserved, so
// a permuted parameter list encodes (and re-parses) faithfully.
func encodeList(regs []Reg) string {
	var parts []string
	for i := 0; i < len(regs); {
		fam, n, ok := family(regs[i])
		j := i
		if ok {
			for j+1 < len(regs) {
				nf, nn, nok := family(regs[j+1])
				if !nok || nf != fam || nn != n+1 {
					break
				}
				j++
				n++
			}
		}
		if j > i {
			parts = append(parts, regNames[regs[i]]+"-"+regNames[regs[j]])
		} else {
			parts = append(parts, regNames[regs[i]])
		}
		i = j + 1
	}
	return strings.Join(parts, ",")
}

// regByName resolves a conventional register name (no "$" prefix).
func regByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	return 0, false
}

// parseRegList expands a comma-separated register list with family ranges
// ("v1,t0-t9") into registers, in list order.
func parseRegList(list string) ([]Reg, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	var out []Reg
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimPrefix(strings.TrimSpace(item), "$")
		lo, hi, isRange := item, item, false
		if k := strings.IndexByte(item, '-'); k >= 0 {
			lo, hi, isRange = item[:k], strings.TrimPrefix(item[k+1:], "$"), true
		}
		r0, ok := regByName(lo)
		if !ok {
			return nil, fmt.Errorf("unknown register %q", lo)
		}
		if !isRange {
			out = append(out, r0)
			continue
		}
		r1, ok := regByName(hi)
		if !ok {
			return nil, fmt.Errorf("unknown register %q", hi)
		}
		f0, n0, ok0 := family(r0)
		f1, n1, ok1 := family(r1)
		if !ok0 || !ok1 || f0 != f1 || n1 < n0 {
			return nil, fmt.Errorf("bad register range %q", item)
		}
		for n := n0; n <= n1; n++ {
			r, ok := regByName(fmt.Sprintf("%s%d", f0, n))
			if !ok {
				return nil, fmt.Errorf("no register %s%d in range %q", f0, n, item)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// ParseConvention parses a convention spec (see Spec for the grammar) into
// a validated Config. The three sections may appear in any order; missing
// sections are empty. The parsed configuration is validated before being
// returned, so a syntactically well-formed but incoherent spec (say, a
// parameter register in the callee-saved class) fails here with its named
// reason rather than deep inside the allocator.
func ParseConvention(spec string) (*Config, error) {
	c := &Config{}
	seen := map[string]bool{}
	for _, section := range strings.Split(spec, ";") {
		section = strings.TrimSpace(section)
		if section == "" {
			continue
		}
		k := strings.IndexByte(section, '=')
		if k < 0 {
			return nil, &ConfigError{ReasonBadSpec, fmt.Sprintf("section %q is not key=regs", section)}
		}
		key, val := strings.TrimSpace(section[:k]), section[k+1:]
		if seen[key] {
			return nil, &ConfigError{ReasonBadSpec, fmt.Sprintf("section %q appears twice", key)}
		}
		seen[key] = true
		regs, err := parseRegList(val)
		if err != nil {
			return nil, &ConfigError{ReasonBadSpec, err.Error()}
		}
		switch key {
		case "caller":
			c.CallerSaved = SetOf(regs...)
		case "callee":
			c.CalleeSaved = SetOf(regs...)
		case "params":
			c.Params = regs
		default:
			return nil, &ConfigError{ReasonBadSpec, fmt.Sprintf("unknown section %q", key)}
		}
	}
	if len(seen) == 0 {
		return nil, &ConfigError{ReasonBadSpec, "empty convention spec"}
	}
	c.Name = shortName(c)
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// shortName derives a compact display name from the class sizes:
// Default's partition renders as "c15s9p4" (15 caller-saved incl. params,
// 9 callee-saved, 4 parameter registers).
func shortName(c *Config) string {
	return fmt.Sprintf("c%ds%dp%d", c.CallerSaved.Count(), c.CalleeSaved.Count(), len(c.Params))
}

// Boundary builds the convention with ncallee callee-saved registers and
// nparams parameter registers: the last ncallee registers of PartitionRegs
// form the callee-saved class, the rest plus the parameter registers form
// the caller-saved class, and parameters are drawn from ParamPool (skipping
// pool members that landed in the callee class). It returns nil when the
// pool cannot supply nparams caller-side registers — the enumerator skips
// that point rather than emit an invalid convention.
func Boundary(ncallee, nparams int) *Config {
	if ncallee < 0 || ncallee > len(PartitionRegs) || nparams < 0 || nparams > MaxParams {
		return nil
	}
	cut := len(PartitionRegs) - ncallee
	caller := SetOf(PartitionRegs[:cut]...)
	callee := SetOf(PartitionRegs[cut:]...)
	var params []Reg
	for _, r := range ParamPool {
		if len(params) == nparams {
			break
		}
		if callee.Has(r) {
			continue
		}
		params = append(params, r)
	}
	if len(params) < nparams {
		return nil
	}
	c := &Config{
		CallerSaved: caller.Union(SetOf(params...)),
		CalleeSaved: callee,
		Params:      params,
	}
	c.Name = shortName(c)
	return c
}

// Enumerate emits the boundary-partition convention space the sweep
// searches: every callee-saved class size 0..20 crossed with every
// parameter-register count 0..maxParams (capped at MaxParams; a negative
// maxParams selects the cap). Points whose parameter pool is exhausted by
// the partition (5- and 6-parameter conventions once $t8/$t9 turn
// callee-saved) are skipped. Every returned convention passes Validate;
// the order is deterministic (ncallee-major, nparams-minor).
func Enumerate(maxParams int) []*Config {
	if maxParams < 0 || maxParams > MaxParams {
		maxParams = MaxParams
	}
	var out []*Config
	for ncallee := 0; ncallee <= len(PartitionRegs); ncallee++ {
		for nparams := 0; nparams <= maxParams; nparams++ {
			if c := Boundary(ncallee, nparams); c != nil {
				out = append(out, c)
			}
		}
	}
	return out
}
