// Package mach models the target machine: a MIPS R2000-like register file
// and the software register-usage conventions the paper's techniques
// manipulate. The measured configuration matches the paper's: 20 general
// registers available to the allocator (11 caller-saved + 9 callee-saved)
// plus 4 parameter registers that behave as caller-saved when not carrying
// parameters. Restricted configurations reproduce Table 2's columns D/E.
package mach

import (
	"fmt"
	"math/bits"
	"strings"
)

// Reg is a machine register number (0..31).
type Reg uint8

// MIPS-style register assignments.
const (
	Zero Reg = 0 // hardwired zero
	AT   Reg = 1 // assembler temporary (code generator scratch)
	V0   Reg = 2 // function result
	V1   Reg = 3 // second result; allocatable caller-saved
	A0   Reg = 4 // parameter registers
	A1   Reg = 5
	A2   Reg = 6
	A3   Reg = 7
	T0   Reg = 8 // caller-saved temporaries
	T1   Reg = 9
	T2   Reg = 10
	T3   Reg = 11
	T4   Reg = 12
	T5   Reg = 13
	T6   Reg = 14
	T7   Reg = 15
	S0   Reg = 16 // callee-saved
	S1   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	T8   Reg = 24
	T9   Reg = 25
	K0   Reg = 26 // code generator scratch (kernel regs on real MIPS)
	K1   Reg = 27
	GP   Reg = 28
	SP   Reg = 29
	S8   Reg = 30 // ninth callee-saved (frame pointer on real MIPS; unused here)
	RA   Reg = 31 // return address
)

// NumRegs is the register-file size.
const NumRegs = 32

var regNames = [NumRegs]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "s8", "ra",
}

// String returns the conventional register name.
func (r Reg) String() string {
	if int(r) < NumRegs {
		return "$" + regNames[r]
	}
	return fmt.Sprintf("$r%d", int(r))
}

// RegSet is a bit set of registers.
type RegSet uint32

// Set ops.
func (s RegSet) Has(r Reg) bool        { return s&(1<<r) != 0 }
func (s RegSet) Add(r Reg) RegSet      { return s | 1<<r }
func (s RegSet) Remove(r Reg) RegSet   { return s &^ (1 << r) }
func (s RegSet) Union(o RegSet) RegSet { return s | o }
func (s RegSet) Minus(o RegSet) RegSet { return s &^ o }
func (s RegSet) Count() int            { return bits.OnesCount32(uint32(s)) }
func (s RegSet) Empty() bool           { return s == 0 }

// ForEach visits the registers in ascending order.
func (s RegSet) ForEach(fn func(Reg)) {
	for v := uint32(s); v != 0; v &= v - 1 {
		fn(Reg(bits.TrailingZeros32(v)))
	}
}

// Regs returns the members in ascending order.
func (s RegSet) Regs() []Reg {
	out := make([]Reg, 0, s.Count())
	s.ForEach(func(r Reg) { out = append(out, r) })
	return out
}

// String renders the set, e.g. "{$t0, $s1}".
func (s RegSet) String() string {
	var parts []string
	s.ForEach(func(r Reg) { parts = append(parts, r.String()) })
	return "{" + strings.Join(parts, ", ") + "}"
}

// SetOf builds a set from registers.
func SetOf(rs ...Reg) RegSet {
	var s RegSet
	for _, r := range rs {
		s = s.Add(r)
	}
	return s
}

// Config describes which registers the allocator may use and under which
// convention each operates.
type Config struct {
	Name string
	// CallerSaved registers are clobbered by calls under the default
	// linkage; using one across a call costs a save/restore pair around the
	// call.
	CallerSaved RegSet
	// CalleeSaved registers are preserved by calls under the default
	// linkage; a procedure that uses one must save/restore it (at
	// entry/exit, or shrink-wrapped).
	CalleeSaved RegSet
	// Params are the registers of the default parameter-passing convention,
	// in parameter order. They behave as caller-saved when idle.
	Params []Reg
}

// Allocatable returns every register the allocator may assign.
func (c *Config) Allocatable() RegSet { return c.CallerSaved.Union(c.CalleeSaved) }

// ParamSet returns Params as a set.
func (c *Config) ParamSet() RegSet { return SetOf(c.Params...) }

// IsCalleeSaved reports whether r preserves its value across calls under
// the default linkage.
func (c *Config) IsCalleeSaved(r Reg) bool { return c.CalleeSaved.Has(r) }

// Default returns the paper's measured configuration: 11 caller-saved
// ($v1, $t0–$t9), 9 callee-saved ($s0–$s8), and 4 parameter registers
// ($a0–$a3) usable as caller-saved when idle.
func Default() *Config {
	return &Config{
		Name: "full",
		CallerSaved: SetOf(V1, T0, T1, T2, T3, T4, T5, T6, T7, T8, T9,
			A0, A1, A2, A3),
		CalleeSaved: SetOf(S0, S1, S2, S3, S4, S5, S6, S7, S8),
		Params:      []Reg{A0, A1, A2, A3},
	}
}

// CallerOnly7 restricts the allocator to 7 caller-saved registers
// (Table 2, column D). Parameters still travel in $a0–$a3, but those
// registers are not allocation candidates.
func CallerOnly7() *Config {
	return &Config{
		Name:        "caller7",
		CallerSaved: SetOf(T0, T1, T2, T3, T4, T5, T6),
		Params:      []Reg{A0, A1, A2, A3},
	}
}

// CalleeOnly7 restricts the allocator to 7 callee-saved registers
// (Table 2, column E).
func CalleeOnly7() *Config {
	return &Config{
		Name:        "callee7",
		CalleeSaved: SetOf(S0, S1, S2, S3, S4, S5, S6),
		Params:      []Reg{A0, A1, A2, A3},
	}
}
