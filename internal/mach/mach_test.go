package mach

import (
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := map[Reg]string{
		Zero: "$zero", V0: "$v0", A0: "$a0", T0: "$t0",
		S0: "$s0", SP: "$sp", RA: "$ra", K0: "$k0", S8: "$s8",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d = %s, want %s", int(r), r, want)
		}
	}
}

func TestRegSetOps(t *testing.T) {
	s := SetOf(T0, S1, A2)
	if !s.Has(T0) || !s.Has(S1) || !s.Has(A2) || s.Has(T1) {
		t.Fatal("membership broken")
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
	s = s.Remove(S1)
	if s.Has(S1) || s.Count() != 2 {
		t.Fatal("remove broken")
	}
	u := s.Union(SetOf(S1, S2))
	if u.Count() != 4 {
		t.Fatalf("union count = %d", u.Count())
	}
	m := u.Minus(SetOf(T0, A2))
	if m.Count() != 2 || !m.Has(S1) || !m.Has(S2) {
		t.Fatalf("minus = %s", m)
	}
	if !RegSet(0).Empty() || u.Empty() {
		t.Fatal("empty broken")
	}
	regs := SetOf(T1, T0).Regs()
	if len(regs) != 2 || regs[0] != T0 || regs[1] != T1 {
		t.Fatalf("regs = %v (want ascending)", regs)
	}
	if got := SetOf(T0, S1).String(); got != "{$t0, $s1}" {
		t.Fatalf("string = %s", got)
	}
}

func TestRegSetProperties(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := RegSet(a), RegSet(b)
		if x.Union(y) != y.Union(x) {
			return false
		}
		if x.Union(y).Minus(y).Count() > x.Count() {
			return false
		}
		n := 0
		x.ForEach(func(Reg) { n++ })
		return n == x.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := Default()
	// 11 caller-saved beyond the parameter registers, 9 callee-saved, 4
	// parameter registers — the R2000 set the paper measures.
	if n := cfg.CallerSaved.Minus(cfg.ParamSet()).Count(); n != 11 {
		t.Errorf("caller-saved (excl params) = %d, want 11", n)
	}
	if n := cfg.CalleeSaved.Count(); n != 9 {
		t.Errorf("callee-saved = %d, want 9", n)
	}
	if len(cfg.Params) != 4 {
		t.Errorf("params = %d, want 4", len(cfg.Params))
	}
	if n := cfg.Allocatable().Count(); n != 24 {
		t.Errorf("allocatable = %d, want 24 (20 + 4 param)", n)
	}
	// Reserved registers must never be allocatable.
	for _, r := range []Reg{Zero, AT, V0, K0, K1, GP, SP, RA} {
		if cfg.Allocatable().Has(r) {
			t.Errorf("%s must not be allocatable", r)
		}
	}
	if !cfg.IsCalleeSaved(S0) || cfg.IsCalleeSaved(T0) {
		t.Error("class test broken")
	}
}

func TestRestrictedConfigs(t *testing.T) {
	d := CallerOnly7()
	if d.CallerSaved.Count() != 7 || d.CalleeSaved.Count() != 0 {
		t.Errorf("caller7: %s / %s", d.CallerSaved, d.CalleeSaved)
	}
	e := CalleeOnly7()
	if e.CalleeSaved.Count() != 7 || e.CallerSaved.Count() != 0 {
		t.Errorf("callee7: %s / %s", e.CallerSaved, e.CalleeSaved)
	}
	// Parameter registers remain available for the linkage in both.
	if len(d.Params) != 4 || len(e.Params) != 4 {
		t.Error("restricted configs must keep the parameter convention")
	}
}
