package pixie

import (
	"strings"
	"testing"

	"chow88/internal/mcode"
)

func TestScalarClassification(t *testing.T) {
	var s Stats
	s.LoadsByClass[mcode.ClassScalar] = 10
	s.LoadsByClass[mcode.ClassSpill] = 5
	s.LoadsByClass[mcode.ClassSaveRestore] = 3
	s.LoadsByClass[mcode.ClassAggregate] = 100
	s.StoresByClass[mcode.ClassScalar] = 7
	s.StoresByClass[mcode.ClassAggregate] = 50
	if s.ScalarLoads() != 18 {
		t.Errorf("scalar loads = %d", s.ScalarLoads())
	}
	if s.ScalarStores() != 7 {
		t.Errorf("scalar stores = %d", s.ScalarStores())
	}
	if s.ScalarLS() != 25 {
		t.Errorf("scalarLS = %d", s.ScalarLS())
	}
	if s.SaveRestoreLS() != 3 {
		t.Errorf("save/restore = %d", s.SaveRestoreLS())
	}
}

func TestCyclesPerCall(t *testing.T) {
	s := Stats{Cycles: 1000, Calls: 10}
	if s.CyclesPerCall() != 100 {
		t.Errorf("cpc = %f", s.CyclesPerCall())
	}
	s.Calls = 0
	if s.CyclesPerCall() != 1000 {
		t.Errorf("cpc with no calls = %f", s.CyclesPerCall())
	}
}

func TestPercentReduction(t *testing.T) {
	if got := PercentReduction(200, 100); got != 50 {
		t.Errorf("50%% case = %f", got)
	}
	if got := PercentReduction(100, 120); got != -20 {
		t.Errorf("regression case = %f", got)
	}
	if got := PercentReduction(0, 5); got != 0 {
		t.Errorf("zero base = %f", got)
	}
	if got := PercentReduction(100, 100); got != 0 {
		t.Errorf("no change = %f", got)
	}
}

func TestStringReport(t *testing.T) {
	s := Stats{Cycles: 42, Instrs: 40, Calls: 2}
	out := s.String()
	for _, want := range []string{"cycles", "42", "calls", "scalar loads"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestClassTraffic(t *testing.T) {
	if !mcode.ClassScalar.IsScalarTraffic() || !mcode.ClassSpill.IsScalarTraffic() ||
		!mcode.ClassSaveRestore.IsScalarTraffic() {
		t.Error("scalar classes misclassified")
	}
	if mcode.ClassAggregate.IsScalarTraffic() || mcode.ClassNone.IsScalarTraffic() {
		t.Error("aggregate/none misclassified")
	}
}
