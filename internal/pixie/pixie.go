// Package pixie collects execution statistics in the manner of the MIPS
// instruction-tracing facility the paper used: executed cycles (exclusive of
// cache effects), instruction counts by kind, call counts, and loads/stores
// broken down by the classification the code generator attached — from
// which the paper's headline metric, scalar loads/stores, is derived.
package pixie

import (
	"fmt"
	"io"
	"strings"

	"chow88/internal/mcode"
)

// Stats accumulates the trace counters for one program run.
type Stats struct {
	Cycles int64
	// LinkageCycles counts cycles spent on instructions the code generator
	// flagged as call-linkage overhead (frame setup/teardown, argument and
	// result marshalling, the control transfer itself) — disjoint from
	// save/restore traffic, which SaveRestoreLS reports. Together the two
	// attribute where procedure-call overhead went, which is how the
	// inline-vs-IPRA experiment explains its cycle deltas.
	LinkageCycles int64
	Instrs        int64
	Calls         int64 // executed JAL/JALR
	Loads         int64
	Stores        int64
	// LoadsByClass and StoresByClass index by mcode.MemClass.
	LoadsByClass  [5]int64
	StoresByClass [5]int64
	Branches      int64
	Taken         int64
	MulDiv        int64
}

// Add accumulates d into s.
func (s *Stats) Add(d *Stats) { s.AddN(d, 1) }

// AddN accumulates d into s n times. The block-batched simulator counts
// block entries during execution and materializes the statistics once at
// the end — one AddN per basic block with n = its entry count.
func (s *Stats) AddN(d *Stats, n int64) {
	s.Cycles += n * d.Cycles
	s.LinkageCycles += n * d.LinkageCycles
	s.Instrs += n * d.Instrs
	s.Calls += n * d.Calls
	s.Loads += n * d.Loads
	s.Stores += n * d.Stores
	for i := range s.LoadsByClass {
		s.LoadsByClass[i] += n * d.LoadsByClass[i]
		s.StoresByClass[i] += n * d.StoresByClass[i]
	}
	s.Branches += n * d.Branches
	s.Taken += n * d.Taken
	s.MulDiv += n * d.MulDiv
}

// ScalarLoads returns loads attributable to scalar variables, temporaries
// and register saves/restores.
func (s *Stats) ScalarLoads() int64 {
	return s.LoadsByClass[mcode.ClassScalar] + s.LoadsByClass[mcode.ClassSpill] + s.LoadsByClass[mcode.ClassSaveRestore]
}

// ScalarStores is the store-side counterpart of ScalarLoads.
func (s *Stats) ScalarStores() int64 {
	return s.StoresByClass[mcode.ClassScalar] + s.StoresByClass[mcode.ClassSpill] + s.StoresByClass[mcode.ClassSaveRestore]
}

// ScalarLS is the paper's "scalar loads/stores" metric.
func (s *Stats) ScalarLS() int64 { return s.ScalarLoads() + s.ScalarStores() }

// SaveRestoreLS counts the save/restore component alone.
func (s *Stats) SaveRestoreLS() int64 {
	return s.LoadsByClass[mcode.ClassSaveRestore] + s.StoresByClass[mcode.ClassSaveRestore]
}

// CyclesPerCall reports average cycles between procedure calls, the paper's
// call-intensity measure (Table 1's "cycles/call" column).
func (s *Stats) CyclesPerCall() float64 {
	if s.Calls == 0 {
		return float64(s.Cycles)
	}
	return float64(s.Cycles) / float64(s.Calls)
}

// Diff reports how s differs from o, one "counter: got want" line per
// diverging field, or "" when the two are identical. The simulator's
// differential tests use it so a divergence names the counters involved
// instead of dumping two whole structs side by side.
func (s *Stats) Diff(o *Stats) string {
	if *s == *o {
		return ""
	}
	var b strings.Builder
	line := func(name string, got, want int64) {
		if got != want {
			fmt.Fprintf(&b, "%-16s %12d != %12d\n", name, got, want)
		}
	}
	line("cycles", s.Cycles, o.Cycles)
	line("linkage cycles", s.LinkageCycles, o.LinkageCycles)
	line("instructions", s.Instrs, o.Instrs)
	line("calls", s.Calls, o.Calls)
	line("loads", s.Loads, o.Loads)
	line("stores", s.Stores, o.Stores)
	for i := range s.LoadsByClass {
		line(fmt.Sprintf("loads.class%d", i), s.LoadsByClass[i], o.LoadsByClass[i])
		line(fmt.Sprintf("stores.class%d", i), s.StoresByClass[i], o.StoresByClass[i])
	}
	line("branches", s.Branches, o.Branches)
	line("taken", s.Taken, o.Taken)
	line("muldiv", s.MulDiv, o.MulDiv)
	return b.String()
}

// PercentReduction returns the percent reduction of new relative to base:
// positive when new is an improvement (smaller).
func PercentReduction(base, new int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-new) / float64(base)
}

// PrintRun renders a finished run the way the CLI drivers present it: the
// program's output values one per line on out, then the stats block on
// errw — preceded by a blank line and a "[label]" header when label is
// non-empty. chowcc -run and pixie share this one renderer.
func PrintRun(out, errw io.Writer, label string, output []int64, st *Stats) {
	for _, v := range output {
		fmt.Fprintln(out, v)
	}
	if label != "" {
		fmt.Fprintf(errw, "\n[%s]\n", label)
	}
	fmt.Fprint(errw, st.String())
}

// String renders a summary block.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles            %12d\n", s.Cycles)
	fmt.Fprintf(&b, "linkage cycles    %12d\n", s.LinkageCycles)
	fmt.Fprintf(&b, "instructions      %12d\n", s.Instrs)
	fmt.Fprintf(&b, "calls             %12d (%.1f cycles/call)\n", s.Calls, s.CyclesPerCall())
	fmt.Fprintf(&b, "loads             %12d\n", s.Loads)
	fmt.Fprintf(&b, "stores            %12d\n", s.Stores)
	fmt.Fprintf(&b, "scalar loads      %12d\n", s.ScalarLoads())
	fmt.Fprintf(&b, "scalar stores     %12d\n", s.ScalarStores())
	fmt.Fprintf(&b, "save/restore l+s  %12d\n", s.SaveRestoreLS())
	fmt.Fprintf(&b, "aggregate loads   %12d\n", s.LoadsByClass[mcode.ClassAggregate])
	fmt.Fprintf(&b, "aggregate stores  %12d\n", s.StoresByClass[mcode.ClassAggregate])
	return b.String()
}
