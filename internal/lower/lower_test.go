package lower

import (
	"strings"
	"testing"

	"chow88/internal/ir"
	"chow88/internal/parser"
	"chow88/internal/sema"
)

func build(t *testing.T, src string) *ir.Module {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(p)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	m, err := Build(info)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestSimpleFunction(t *testing.T) {
	m := build(t, `func add(x int, y int) int { return x + y; } func main() { print(add(1, 2)); }`)
	f := m.Lookup("add")
	if f == nil || len(f.Params) != 2 || !f.Returns {
		t.Fatalf("bad func: %+v", f)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	s := ir.FuncString(f)
	if !strings.Contains(s, "add") {
		t.Errorf("missing add instruction:\n%s", s)
	}
}

func TestControlFlowShape(t *testing.T) {
	m := build(t, `
func f(n int) int {
    var s int;
    while (n > 0) {
        s = s + n;
        n = n - 1;
    }
    return s;
}
func main() { print(f(3)); }`)
	f := m.Lookup("f")
	// Expect a loop: some block has a back edge (successor with smaller RPO index).
	rpo := f.RPO()
	idx := map[*ir.Block]int{}
	for i, b := range rpo {
		idx[b] = i
	}
	back := false
	for _, b := range rpo {
		for _, s := range b.Succs {
			if idx[s] <= idx[b] {
				back = true
			}
		}
	}
	if !back {
		t.Errorf("no back edge in loop:\n%s", ir.FuncString(f))
	}
}

func TestShortCircuitBecomesCFG(t *testing.T) {
	m := build(t, `
func f(a int, b int) int {
    if (a > 0 && b > 0) { return 1; }
    return 0;
}
func main() { print(f(1, 2)); }`)
	f := m.Lookup("f")
	// && must lower to branches: there should be at least 2 conditional branches.
	brs := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBr {
				brs++
			}
		}
	}
	if brs < 2 {
		t.Errorf("want >= 2 br instructions for &&, got %d:\n%s", brs, ir.FuncString(f))
	}
}

func TestDeadCodeAfterReturnPruned(t *testing.T) {
	m := build(t, `
func f() int {
    return 1;
    return 2;
}
func main() { print(f()); }`)
	f := m.Lookup("f")
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpRet && in.A.IsConst() && in.A.Const == 2 {
				t.Errorf("unreachable return survived:\n%s", ir.FuncString(f))
			}
		}
	}
}

func TestGlobalLayout(t *testing.T) {
	m := build(t, `
var a int;
var arr [10]int;
var b int;
func main() {}`)
	if len(m.Globals) != 3 {
		t.Fatalf("globals = %d", len(m.Globals))
	}
	a, arr, b := m.Globals[0], m.Globals[1], m.Globals[2]
	if a.Addr != ir.DataBase || arr.Addr != ir.DataBase+1 || b.Addr != ir.DataBase+11 {
		t.Errorf("layout: a=%d arr=%d b=%d", a.Addr, arr.Addr, b.Addr)
	}
	if m.DataSize() != ir.DataBase+12 {
		t.Errorf("data size = %d", m.DataSize())
	}
}

func TestIndirectCall(t *testing.T) {
	m := build(t, `
var f func(int) int;
func sq(x int) int { return x * x; }
func main() { f = sq; print(f(4)); }`)
	main := m.Lookup("main")
	var haveFuncAddr, haveCallInd bool
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpFuncAddr {
				haveFuncAddr = true
			}
			if in.Op == ir.OpCallInd {
				haveCallInd = true
			}
		}
	}
	if !haveFuncAddr || !haveCallInd {
		t.Errorf("funcaddr=%v callind=%v:\n%s", haveFuncAddr, haveCallInd, ir.FuncString(main))
	}
	if !m.Lookup("sq").AddressTaken {
		t.Errorf("sq not marked address-taken")
	}
}

func TestLocalArrayZeroed(t *testing.T) {
	m := build(t, `
func f() int {
    var a [100]int;
    return a[7];
}
func main() { print(f()); }`)
	f := m.Lookup("f")
	if len(f.LocalArrays) != 1 || f.LocalArrays[0].Size != 100 {
		t.Fatalf("local arrays: %+v", f.LocalArrays)
	}
	// Zeroing a large array should be a loop, not 100 stores.
	stores := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStoreIdx {
				stores++
			}
		}
	}
	if stores > 5 {
		t.Errorf("array zeroing unrolled too far: %d stores", stores)
	}
}

func TestFuncIndexes(t *testing.T) {
	m := build(t, `func a() {} func b() {} func main() {}`)
	if m.FuncIndex(m.Lookup("a")) != 1 || m.FuncIndex(m.Lookup("b")) != 2 || m.FuncIndex(m.Lookup("main")) != 3 {
		t.Errorf("bad func indexes")
	}
}

func TestVoidAndValueReturns(t *testing.T) {
	m := build(t, `
func v() { return; }
func w() {}
func x() int { if (1) { return 5; } }
func main() { v(); w(); print(x()); }`)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}
