// Package lower translates checked CW programs into the three-address IR.
//
// Short-circuit boolean operators become control flow, conditions branch on
// comparison results, and every function is closed with an implicit return
// (returning 0 in value-returning functions, matching the interpreter).
package lower

import (
	"fmt"

	"chow88/internal/ast"
	"chow88/internal/ir"
	"chow88/internal/sema"
	"chow88/internal/token"
)

// Build lowers the whole program.
func Build(info *sema.Info) (*ir.Module, error) {
	m := ir.NewModule()
	b := &builder{info: info, mod: m, globals: map[*sema.VarSym]*ir.Global{}}

	for _, g := range info.Globals {
		ig := &ir.Global{Name: g.Name, Size: 1}
		if g.Type.Kind == ast.ArrayType {
			ig.Size = g.Type.ArrLen
			ig.IsArray = true
		}
		m.Globals = append(m.Globals, ig)
		b.globals[g] = ig
	}
	// Create all functions first so calls can reference them.
	for _, d := range info.Program.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		f := ir.NewFunc(fd.Name)
		f.Returns = fd.Returns
		f.Extern = fd.Extern
		f.AddressTaken = info.AddressTaken[fd.Name]
		for _, p := range fd.Params {
			f.Params = append(f.Params, f.NewTemp(p.Name, true))
		}
		m.AddFunc(f)
	}
	for _, d := range info.Program.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Extern {
			continue
		}
		if err := b.buildFunc(fd); err != nil {
			return nil, err
		}
	}
	m.Layout()
	if err := ir.VerifyModule(m); err != nil {
		return nil, fmt.Errorf("lower: verifier: %w", err)
	}
	return m, nil
}

type builder struct {
	info    *sema.Info
	mod     *ir.Module
	globals map[*sema.VarSym]*ir.Global

	// Per-function state.
	fn     *ir.Func
	cur    *ir.Block
	temps  map[*sema.VarSym]*ir.Temp
	arrays map[*sema.VarSym]*ir.LocalArray
	// break/continue targets, innermost last.
	breaks    []*ir.Block
	continues []*ir.Block
}

func (b *builder) emit(in *ir.Instr) { b.cur.Instrs = append(b.cur.Instrs, in) }

func (b *builder) startBlock(blk *ir.Block) { b.cur = blk }

// terminated reports whether the current block already ended.
func (b *builder) terminated() bool {
	return len(b.cur.Instrs) > 0 && b.cur.Instrs[len(b.cur.Instrs)-1].Op.IsTerminator()
}

func (b *builder) jump(to *ir.Block) {
	if !b.terminated() {
		b.emit(&ir.Instr{Op: ir.OpJmp, Target: to})
	}
}

func (b *builder) buildFunc(fd *ast.FuncDecl) error {
	f := b.mod.Lookup(fd.Name)
	fi := b.info.Funcs[fd.Name]
	b.fn = f
	b.temps = map[*sema.VarSym]*ir.Temp{}
	b.arrays = map[*sema.VarSym]*ir.LocalArray{}
	b.breaks, b.continues = nil, nil

	for i, p := range fi.Params {
		b.temps[p] = f.Params[i]
	}
	for _, l := range fi.Locals {
		if l.ParamIndex >= 0 {
			continue
		}
		if l.Type.Kind == ast.ArrayType {
			arr := &ir.LocalArray{Name: fmt.Sprintf("%s.%d", l.Name, l.ID), Size: l.Type.ArrLen}
			f.LocalArrays = append(f.LocalArrays, arr)
			b.arrays[l] = arr
		} else {
			b.temps[l] = f.NewTemp(fmt.Sprintf("%s.%d", l.Name, l.ID), true)
		}
	}

	entry := f.NewBlock()
	b.startBlock(entry)
	// Zero-initialize non-parameter scalar locals: CW semantics say
	// variables start at zero, and the VM reuses stack memory and registers.
	for _, l := range fi.Locals {
		if l.ParamIndex >= 0 || l.Type.Kind == ast.ArrayType {
			continue
		}
		b.emit(&ir.Instr{Op: ir.OpConst, Dst: b.temps[l], Imm: 0})
	}
	for _, arr := range f.LocalArrays {
		b.zeroArray(ir.ArrayRef{Local: arr})
	}

	if err := b.stmtBlock(fd.Body); err != nil {
		return err
	}
	if !b.terminated() {
		b.emitImplicitReturn()
	}
	// Any block left unterminated (e.g. created after a return) gets an
	// implicit return too, then unreachable ones are pruned.
	for _, blk := range f.Blocks {
		if t := blk.Terminator(); t == nil {
			b.cur = blk
			b.emitImplicitReturn()
		}
	}
	f.ComputeCFG()
	f.RemoveUnreachable()
	return nil
}

func (b *builder) emitImplicitReturn() {
	if b.fn.Returns {
		op := ir.ConstOp(0)
		b.emit(ir.NewRet(&op))
	} else {
		b.emit(ir.NewRet(nil))
	}
}

// zeroArray emits a compact loop clearing the array (arrays also start
// zeroed). Unrolled for tiny arrays.
func (b *builder) zeroArray(arr ir.ArrayRef) {
	n := arr.Len()
	if n <= 4 {
		for i := 0; i < n; i++ {
			b.emit(&ir.Instr{Op: ir.OpStoreIdx, Arr: arr, A: ir.ConstOp(int64(i)), B: ir.ConstOp(0)})
		}
		return
	}
	idx := b.fn.NewTemp("", false)
	b.emit(&ir.Instr{Op: ir.OpConst, Dst: idx, Imm: 0})
	head := b.fn.NewBlock()
	body := b.fn.NewBlock()
	done := b.fn.NewBlock()
	b.jump(head)
	b.startBlock(head)
	cond := b.fn.NewTemp("", false)
	b.emit(&ir.Instr{Op: ir.OpCmpLt, Dst: cond, A: ir.TempOp(idx), B: ir.ConstOp(int64(n))})
	b.emit(&ir.Instr{Op: ir.OpBr, A: ir.TempOp(cond), Target: body, Else: done})
	b.startBlock(body)
	b.emit(&ir.Instr{Op: ir.OpStoreIdx, Arr: arr, A: ir.TempOp(idx), B: ir.ConstOp(0)})
	b.emit(&ir.Instr{Op: ir.OpAdd, Dst: idx, A: ir.TempOp(idx), B: ir.ConstOp(1)})
	b.jump(head)
	b.startBlock(done)
}

func (b *builder) stmtBlock(blk *ast.Block) error {
	for _, s := range blk.Stmts {
		if err := b.stmt(s); err != nil {
			return err
		}
		if b.terminated() {
			// Statements after return/break/continue are unreachable;
			// lower them into a fresh block that pruning will remove.
			b.startBlock(b.fn.NewBlock())
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.DeclStmt:
		return nil // handled in buildFunc
	case *ast.Block:
		return b.stmtBlock(s)
	case *ast.AssignStmt:
		return b.assign(s)
	case *ast.IfStmt:
		return b.ifStmt(s)
	case *ast.WhileStmt:
		return b.whileStmt(s)
	case *ast.ForStmt:
		return b.forStmt(s)
	case *ast.ReturnStmt:
		if s.Value != nil {
			v, err := b.expr(s.Value)
			if err != nil {
				return err
			}
			b.emit(ir.NewRet(&v))
			return nil
		}
		b.emit(ir.NewRet(nil))
		return nil
	case *ast.BreakStmt:
		b.jump(b.breaks[len(b.breaks)-1])
		return nil
	case *ast.ContinueStmt:
		b.jump(b.continues[len(b.continues)-1])
		return nil
	case *ast.ExprStmt:
		_, err := b.call(s.X.(*ast.CallExpr), false)
		return err
	}
	return fmt.Errorf("lower: unhandled statement %T", s)
}

func (b *builder) assign(s *ast.AssignStmt) error {
	switch lhs := s.Lhs.(type) {
	case *ast.Ident:
		sym := b.info.Uses[lhs]
		v, err := b.expr(s.Rhs)
		if err != nil {
			return err
		}
		if sym.Global {
			b.emit(&ir.Instr{Op: ir.OpStoreG, Global: b.globals[sym], A: v})
			return nil
		}
		dst := b.temps[sym]
		b.emitAssign(dst, v)
		return nil
	case *ast.IndexExpr:
		// CW evaluates the right-hand side before the index expression
		// (matching the reference interpreter).
		arr := b.arrayRef(lhs.Arr)
		v, err := b.expr(s.Rhs)
		if err != nil {
			return err
		}
		idx, err := b.expr(lhs.Index)
		if err != nil {
			return err
		}
		b.emit(&ir.Instr{Op: ir.OpStoreIdx, Arr: arr, A: idx, B: v})
		return nil
	}
	return fmt.Errorf("lower: bad assignment target %T", s.Lhs)
}

func (b *builder) emitAssign(dst *ir.Temp, v ir.Operand) {
	if v.IsConst() {
		b.emit(&ir.Instr{Op: ir.OpConst, Dst: dst, Imm: v.Const})
		return
	}
	if v.Temp == dst {
		return
	}
	b.emit(&ir.Instr{Op: ir.OpCopy, Dst: dst, A: v})
}

func (b *builder) arrayRef(id *ast.Ident) ir.ArrayRef {
	sym := b.info.Uses[id]
	if sym.Global {
		return ir.ArrayRef{Global: b.globals[sym]}
	}
	return ir.ArrayRef{Local: b.arrays[sym]}
}

func (b *builder) ifStmt(s *ast.IfStmt) error {
	thenBlk := b.fn.NewBlock()
	doneBlk := b.fn.NewBlock()
	elseBlk := doneBlk
	if s.Else != nil {
		elseBlk = b.fn.NewBlock()
	}
	if err := b.cond(s.Cond, thenBlk, elseBlk); err != nil {
		return err
	}
	b.startBlock(thenBlk)
	if err := b.stmtBlock(s.Then); err != nil {
		return err
	}
	b.jump(doneBlk)
	if s.Else != nil {
		b.startBlock(elseBlk)
		if err := b.stmt(s.Else); err != nil {
			return err
		}
		b.jump(doneBlk)
	}
	b.startBlock(doneBlk)
	return nil
}

func (b *builder) whileStmt(s *ast.WhileStmt) error {
	head := b.fn.NewBlock()
	body := b.fn.NewBlock()
	done := b.fn.NewBlock()
	b.jump(head)
	b.startBlock(head)
	if err := b.cond(s.Cond, body, done); err != nil {
		return err
	}
	b.breaks = append(b.breaks, done)
	b.continues = append(b.continues, head)
	b.startBlock(body)
	err := b.stmtBlock(s.Body)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if err != nil {
		return err
	}
	b.jump(head)
	b.startBlock(done)
	return nil
}

func (b *builder) forStmt(s *ast.ForStmt) error {
	if s.Init != nil {
		if err := b.stmt(s.Init); err != nil {
			return err
		}
	}
	head := b.fn.NewBlock()
	body := b.fn.NewBlock()
	post := b.fn.NewBlock()
	done := b.fn.NewBlock()
	b.jump(head)
	b.startBlock(head)
	if s.Cond != nil {
		if err := b.cond(s.Cond, body, done); err != nil {
			return err
		}
	} else {
		b.jump(body)
	}
	b.breaks = append(b.breaks, done)
	b.continues = append(b.continues, post)
	b.startBlock(body)
	err := b.stmtBlock(s.Body)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if err != nil {
		return err
	}
	b.jump(post)
	b.startBlock(post)
	if s.Post != nil {
		if err := b.stmt(s.Post); err != nil {
			return err
		}
	}
	b.jump(head)
	b.startBlock(done)
	return nil
}

// cond lowers e as a branch condition: control transfers to t when e is
// nonzero and to f otherwise. Short-circuit operators become CFG edges.
func (b *builder) cond(e ast.Expr, t, f *ir.Block) error {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.AndAnd:
			mid := b.fn.NewBlock()
			if err := b.cond(e.X, mid, f); err != nil {
				return err
			}
			b.startBlock(mid)
			return b.cond(e.Y, t, f)
		case token.OrOr:
			mid := b.fn.NewBlock()
			if err := b.cond(e.X, t, mid); err != nil {
				return err
			}
			b.startBlock(mid)
			return b.cond(e.Y, t, f)
		}
	case *ast.UnaryExpr:
		if e.Op == token.Not {
			return b.cond(e.X, f, t)
		}
	}
	v, err := b.expr(e)
	if err != nil {
		return err
	}
	if v.IsConst() {
		if v.Const != 0 {
			b.jump(t)
		} else {
			b.jump(f)
		}
		return nil
	}
	b.emit(&ir.Instr{Op: ir.OpBr, A: v, Target: t, Else: f})
	return nil
}

var binOps = map[token.Kind]ir.Op{
	token.Plus:    ir.OpAdd,
	token.Minus:   ir.OpSub,
	token.Star:    ir.OpMul,
	token.Slash:   ir.OpDiv,
	token.Percent: ir.OpRem,
	token.Eq:      ir.OpCmpEq,
	token.Neq:     ir.OpCmpNe,
	token.Lt:      ir.OpCmpLt,
	token.Leq:     ir.OpCmpLe,
	token.Gt:      ir.OpCmpGt,
	token.Geq:     ir.OpCmpGe,
}

// expr lowers e for its value.
func (b *builder) expr(e ast.Expr) (ir.Operand, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return ir.ConstOp(e.Value), nil
	case *ast.Ident:
		if sym, ok := b.info.Uses[e]; ok {
			if sym.Global {
				dst := b.fn.NewTemp("", false)
				b.emit(&ir.Instr{Op: ir.OpLoadG, Dst: dst, Global: b.globals[sym]})
				return ir.TempOp(dst), nil
			}
			return ir.TempOp(b.temps[sym]), nil
		}
		// Function name used as a value.
		fd := b.info.FuncRefs[e]
		dst := b.fn.NewTemp("", false)
		b.emit(&ir.Instr{Op: ir.OpFuncAddr, Dst: dst, Callee: b.mod.Lookup(fd.Name)})
		return ir.TempOp(dst), nil
	case *ast.IndexExpr:
		arr := b.arrayRef(e.Arr)
		idx, err := b.expr(e.Index)
		if err != nil {
			return ir.Operand{}, err
		}
		dst := b.fn.NewTemp("", false)
		b.emit(&ir.Instr{Op: ir.OpLoadIdx, Dst: dst, Arr: arr, A: idx})
		return ir.TempOp(dst), nil
	case *ast.CallExpr:
		return b.call(e, true)
	case *ast.UnaryExpr:
		if e.Op == token.Minus {
			v, err := b.expr(e.X)
			if err != nil {
				return ir.Operand{}, err
			}
			dst := b.fn.NewTemp("", false)
			b.emit(&ir.Instr{Op: ir.OpNeg, Dst: dst, A: v})
			return ir.TempOp(dst), nil
		}
		v, err := b.expr(e.X)
		if err != nil {
			return ir.Operand{}, err
		}
		dst := b.fn.NewTemp("", false)
		b.emit(&ir.Instr{Op: ir.OpNot, Dst: dst, A: v})
		return ir.TempOp(dst), nil
	case *ast.BinaryExpr:
		if e.Op == token.AndAnd || e.Op == token.OrOr {
			return b.boolValue(e)
		}
		x, err := b.expr(e.X)
		if err != nil {
			return ir.Operand{}, err
		}
		y, err := b.expr(e.Y)
		if err != nil {
			return ir.Operand{}, err
		}
		dst := b.fn.NewTemp("", false)
		b.emit(&ir.Instr{Op: binOps[e.Op], Dst: dst, A: x, B: y})
		return ir.TempOp(dst), nil
	}
	return ir.Operand{}, fmt.Errorf("lower: unhandled expression %T", e)
}

// boolValue materializes a short-circuit expression as a 0/1 temp.
func (b *builder) boolValue(e ast.Expr) (ir.Operand, error) {
	dst := b.fn.NewTemp("", false)
	tBlk := b.fn.NewBlock()
	fBlk := b.fn.NewBlock()
	done := b.fn.NewBlock()
	if err := b.cond(e, tBlk, fBlk); err != nil {
		return ir.Operand{}, err
	}
	b.startBlock(tBlk)
	b.emit(&ir.Instr{Op: ir.OpConst, Dst: dst, Imm: 1})
	b.jump(done)
	b.startBlock(fBlk)
	b.emit(&ir.Instr{Op: ir.OpConst, Dst: dst, Imm: 0})
	b.jump(done)
	b.startBlock(done)
	return ir.TempOp(dst), nil
}

// call lowers a call; wantValue selects whether a result temp is created.
func (b *builder) call(e *ast.CallExpr, wantValue bool) (ir.Operand, error) {
	// Builtin print.
	if _, isVar := b.info.Uses[e.Fun]; !isVar {
		if _, isFunc := b.info.FuncRefs[e.Fun]; !isFunc && e.Fun.Name == "print" {
			v, err := b.expr(e.Args[0])
			if err != nil {
				return ir.Operand{}, err
			}
			b.emit(&ir.Instr{Op: ir.OpPrint, A: v})
			return ir.ConstOp(0), nil
		}
	}
	args := make([]ir.Operand, len(e.Args))
	for i, a := range e.Args {
		v, err := b.expr(a)
		if err != nil {
			return ir.Operand{}, err
		}
		args[i] = v
	}
	var dst *ir.Temp
	if wantValue {
		dst = b.fn.NewTemp("", false)
	}
	if fd, ok := b.info.FuncRefs[e.Fun]; ok {
		b.emit(&ir.Instr{Op: ir.OpCall, Dst: dst, Callee: b.mod.Lookup(fd.Name), Args: args})
	} else {
		sym := b.info.Uses[e.Fun]
		var fv ir.Operand
		if sym.Global {
			t := b.fn.NewTemp("", false)
			b.emit(&ir.Instr{Op: ir.OpLoadG, Dst: t, Global: b.globals[sym]})
			fv = ir.TempOp(t)
		} else {
			fv = ir.TempOp(b.temps[sym])
		}
		b.emit(&ir.Instr{Op: ir.OpCallInd, Dst: dst, A: fv, Args: args})
	}
	if dst != nil {
		return ir.TempOp(dst), nil
	}
	return ir.ConstOp(0), nil
}
