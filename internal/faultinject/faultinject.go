// Package faultinject is the compiler's chaos layer: named injection
// points inside the register-allocation and code-generation pipeline that
// corrupt exactly the linkage artifacts the internal/check validator
// guards — a summary register bit, a shrink-wrap save site, a published
// parameter location — or panic inside one per-function pipeline worker.
//
// The layer exists to prove the validator's coverage: the chaos
// differential suite (make chaos) arms each point in turn and asserts the
// compiled program still produces interpreter-oracle-identical output,
// because the fault was either caught (and the procedure demoted to the
// safe open convention) or never eligible to fire.
//
// Injection is option-gated and costs one atomic pointer load per
// per-function site when disarmed; nothing in this package runs per
// instruction. An armed Plan fires a bounded number of times (once unless
// Plan.Times raises it), so graceful degradation always converges.
package faultinject

import (
	"fmt"
	"sync/atomic"

	"chow88/internal/mach"
	"chow88/internal/obs"
)

// Point names one injection site.
type Point int

// The registered injection points.
const (
	// PointCorruptSummary clears one register bit from a closed
	// procedure's published register-usage summary, making the summary an
	// unsound subset of the call tree's actual usage.
	PointCorruptSummary Point = iota
	// PointDropSave deletes one save site from a procedure's save/restore
	// plan, leaving a CFG path that modifies a callee-saved register
	// uncovered.
	PointDropSave
	// PointFlipParamReg reroutes one register-passed parameter in a closed
	// procedure's published summary to a different register, so callers
	// deliver the argument where the callee will never look.
	PointFlipParamReg
	// PointPanicPlan panics inside one per-function planning worker of the
	// wavefront-parallel allocator.
	PointPanicPlan
	// PointPanicCodegen panics inside one per-function code-generation
	// worker.
	PointPanicCodegen
	// PointPanicDaemonWorker panics inside one chowd request worker, after
	// admission but before any compilation work. The daemon's per-request
	// containment must turn it into a structured error response; the
	// process and its other workers must be unaffected.
	PointPanicDaemonWorker
	// PointCorruptStatefile flips one byte of an incremental statefile's
	// checksummed payload as it is written, simulating torn or bit-rotted
	// state on disk. The next load must reject the file end to end and
	// degrade to a full rebuild, never a miscompile.
	PointCorruptStatefile

	NumPoints
)

var pointNames = [NumPoints]string{
	PointCorruptSummary:    "corrupt-summary-bit",
	PointDropSave:          "drop-save-site",
	PointFlipParamReg:      "flip-param-reg",
	PointPanicPlan:         "panic-plan-worker",
	PointPanicCodegen:      "panic-codegen-worker",
	PointPanicDaemonWorker: "panic-daemon-worker",
	PointCorruptStatefile:  "corrupt-statefile",
}

// String returns the point's stable name (used in demotion reasons).
func (p Point) String() string {
	if p >= 0 && p < NumPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("point-%d", int(p))
}

// Points returns every registered injection point.
func Points() []Point {
	out := make([]Point, NumPoints)
	for i := range out {
		out[i] = Point(i)
	}
	return out
}

// CompilePoints returns the points that can fire inside a single Compile
// call — the compile-path chaos suite arms exactly these. The remaining
// points live on the service path (the chowd daemon's request workers and
// the incremental statefile writer) and are exercised by the daemon chaos
// suite instead.
func CompilePoints() []Point {
	var out []Point
	for _, p := range Points() {
		switch p {
		case PointPanicDaemonWorker, PointCorruptStatefile:
			continue
		}
		out = append(out, p)
	}
	return out
}

// Plan arms one injection. By default a Plan fires at most once: the first
// eligible site claims it atomically, so a degraded re-plan of the same
// procedure compiles clean (the fault is transient, as real cosmic-ray or
// heisenbug-class faults are). Times raises the budget for persistent
// faults — the degradation tests use Times=2 to make a procedure fail
// again after its first demotion and prove the ladder escalates instead of
// demoting twice.
type Plan struct {
	// Point selects the injection site.
	Point Point
	// Func restricts the injection to the named procedure; empty targets
	// the first eligible site encountered.
	Func string
	// Times is how many claims the plan honors before going quiet; zero
	// means once (the historical transient-fault default).
	Times int

	fires atomic.Int32
	site  atomic.Pointer[string]
}

// Fired reports whether the plan's fault was injected at least once.
func (p *Plan) Fired() bool { return p != nil && p.fires.Load() > 0 }

// Site returns the name of the procedure the fault landed in; empty until
// Fired.
func (p *Plan) Site() string {
	if p == nil {
		return ""
	}
	if s := p.site.Load(); s != nil {
		return *s
	}
	return ""
}

// armed is the installed plan; nil means injection is off, and every site
// reduces to one atomic load.
var armed atomic.Pointer[Plan]

// Arm installs p as the active injection (replacing any previous one).
// Passing nil disarms.
func Arm(p *Plan) { armed.Store(p) }

// Armed reports whether any injection plan is installed; hot paths check
// this once (one atomic load) before preparing injection candidates.
func Armed() bool { return armed.Load() != nil }

// Disarm removes and returns the active plan.
func Disarm() *Plan {
	p := armed.Load()
	armed.Store(nil)
	return p
}

// claim atomically fires the armed plan if it targets (pt, fn) and still
// has firing budget left.
func claim(pt Point, fn string) bool {
	p := armed.Load()
	if p == nil || p.Point != pt {
		return false
	}
	if p.Func != "" && p.Func != fn {
		return false
	}
	limit := int32(p.Times)
	if limit <= 0 {
		limit = 1
	}
	for {
		n := p.fires.Load()
		if n >= limit {
			return false
		}
		if p.fires.CompareAndSwap(n, n+1) {
			s := fn
			p.site.Store(&s)
			return true
		}
	}
}

// CorruptSummary returns used with one bit cleared when the armed plan
// targets fn's summary and used is non-empty; otherwise used unchanged.
// The cleared bit is the lowest register in used, which the summary's
// consumers necessarily rely on (every bit of a published summary covers
// real call-tree usage).
func CorruptSummary(fn string, used mach.RegSet) mach.RegSet {
	if used.Empty() || armed.Load() == nil || !claim(PointCorruptSummary, fn) {
		return used
	}
	var lowest mach.Reg
	used.ForEach(func(r mach.Reg) {
		if lowest == 0 {
			lowest = r
		}
	})
	return used.Remove(lowest)
}

// DropSave reports whether fn's save plan for register r should lose its
// first save site. Fires once, on the first managed register offered.
func DropSave(fn string, r mach.Reg) bool {
	if armed.Load() == nil {
		return false
	}
	return claim(PointDropSave, fn)
}

// FlipParamReg returns a wrong register to publish for one of fn's
// register-passed parameters: the lowest allocatable register different
// from the genuine one. ok is false when disarmed or ineligible.
func FlipParamReg(fn string, genuine mach.Reg, allocatable mach.RegSet) (mach.Reg, bool) {
	if allocatable.Remove(genuine).Empty() || armed.Load() == nil || !claim(PointFlipParamReg, fn) {
		return genuine, false
	}
	wrong := genuine
	allocatable.Remove(genuine).ForEach(func(r mach.Reg) {
		if wrong == genuine {
			wrong = r
		}
	})
	return wrong, true
}

// PanicPlan panics when the armed plan targets fn's planning worker.
func PanicPlan(fn string) {
	if armed.Load() == nil {
		return
	}
	if claim(PointPanicPlan, fn) {
		obs.Current().Add(obs.CCheckFaults, 1)
		panic(fmt.Sprintf("faultinject: %s in %s", PointPanicPlan, fn))
	}
}

// PanicCodegen panics when the armed plan targets fn's codegen worker.
func PanicCodegen(fn string) {
	if armed.Load() == nil {
		return
	}
	if claim(PointPanicCodegen, fn) {
		obs.Current().Add(obs.CCheckFaults, 1)
		panic(fmt.Sprintf("faultinject: %s in %s", PointPanicCodegen, fn))
	}
}

// PanicDaemonWorker panics inside a chowd request worker handling the
// named endpoint ("compile", "compile-incremental", "run").
func PanicDaemonWorker(endpoint string) {
	if armed.Load() == nil {
		return
	}
	if claim(PointPanicDaemonWorker, endpoint) {
		obs.Current().Add(obs.CCheckFaults, 1)
		panic(fmt.Sprintf("faultinject: %s handling %s", PointPanicDaemonWorker, endpoint))
	}
}

// CorruptStatefile reports whether the statefile being written to path
// should have one payload byte flipped (after its checksum was computed,
// so the corruption is detectable end to end).
func CorruptStatefile(path string) bool {
	if armed.Load() == nil {
		return false
	}
	if claim(PointCorruptStatefile, path) {
		obs.Current().Add(obs.CCheckFaults, 1)
		return true
	}
	return false
}
