package check

import (
	"testing"

	"chow88/internal/benchprog"
	"chow88/internal/core"
	"chow88/internal/front"
	"chow88/internal/mach"
)

// planFor compiles one corpus program under ModeC and returns its plan.
func planFor(t *testing.T) *core.ProgramPlan {
	t.Helper()
	b := benchprog.Lookup("stanford")
	if b == nil {
		t.Fatal("stanford benchmark missing")
	}
	mode := core.ModeC()
	mod, err := front.Module(b.Source, mode.Optimize, true)
	if err != nil {
		t.Fatalf("front: %v", err)
	}
	return core.PlanModule(mod, mode)
}

// victim returns a closed procedure whose summary reports register usage.
func victim(t *testing.T, pp *core.ProgramPlan) *core.FuncPlan {
	t.Helper()
	for _, f := range pp.Module.Funcs {
		fp := pp.Funcs[f]
		if fp != nil && fp.Summary != nil && !fp.Summary.Used.Empty() {
			return fp
		}
	}
	t.Fatal("no closed procedure with a non-empty summary")
	return nil
}

func hasRule(viols []Violation, rule string) bool {
	for _, v := range viols {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// The validator must not pass vacuously: each corruption class a fault
// injection can introduce must be detected when applied by hand.

func TestDetectsCorruptSummary(t *testing.T) {
	pp := planFor(t)
	fp := victim(t, pp)
	var lowest mach.Reg
	first := true
	fp.Summary.Used.ForEach(func(r mach.Reg) {
		if first {
			lowest, first = r, false
		}
	})
	fp.Summary.Used = fp.Summary.Used.Remove(lowest)
	viols := Plan(pp)
	if len(viols) == 0 {
		t.Fatalf("cleared %s from %s's summary; validator found nothing", lowest, fp.F.Name)
	}
	if !hasRule(viols, RuleSummarySoundness) && !hasRule(viols, RuleOracleAgreement) {
		t.Errorf("expected %s or %s, got %v", RuleSummarySoundness, RuleOracleAgreement, viols)
	}
}

func TestDetectsFlippedParamReg(t *testing.T) {
	pp := planFor(t)
	var fp *core.FuncPlan
	idx := -1
	for _, f := range pp.Module.Funcs {
		cand := pp.Funcs[f]
		if cand == nil || cand.Summary == nil {
			continue
		}
		for i, al := range cand.Summary.Args {
			if al.InReg {
				fp, idx = cand, i
				break
			}
		}
		if fp != nil {
			break
		}
	}
	if fp == nil {
		t.Fatal("no closed procedure with a register-passed parameter")
	}
	genuine := fp.Summary.Args[idx].Reg
	wrong := genuine
	pp.Mode.Config.Allocatable().Remove(genuine).ForEach(func(r mach.Reg) {
		if wrong == genuine {
			wrong = r
		}
	})
	fp.Summary.Args[idx].Reg = wrong
	viols := Plan(pp)
	if !hasRule(viols, RuleSummaryArgs) {
		t.Errorf("flipped parameter %d of %s from %s to %s; expected %s, got %v",
			idx, fp.F.Name, genuine, wrong, RuleSummaryArgs, viols)
	}
}

func TestDetectsDroppedSaveSite(t *testing.T) {
	pp := planFor(t)
	var fp *core.FuncPlan
	for _, f := range pp.Module.Funcs {
		cand := pp.Funcs[f]
		if cand != nil && !cand.Plan.Regs().Empty() {
			fp = cand
			break
		}
	}
	if fp == nil {
		t.Fatal("no procedure with a save plan")
	}
	var victim mach.Reg
	first := true
	fp.Plan.Regs().ForEach(func(r mach.Reg) {
		if first {
			victim, first = r, false
		}
	})
	fp.Plan.SaveAt[victim] = fp.Plan.SaveAt[victim][1:]
	viols := Plan(pp)
	if len(viols) == 0 {
		t.Fatalf("dropped %s's first save site in %s; validator found nothing", victim, fp.F.Name)
	}
	if !hasRule(viols, RuleSaveCoverage) && !hasRule(viols, RuleSaveBalance) &&
		!hasRule(viols, RuleSummarySoundness) {
		t.Errorf("expected a save-plan violation, got %v", viols)
	}
}

func TestDetectsMissingPlan(t *testing.T) {
	pp := planFor(t)
	fp := victim(t, pp)
	delete(pp.Funcs, fp.F)
	if !hasRule(Plan(pp), RuleMissingPlan) {
		t.Errorf("deleted %s's plan; expected %s", fp.F.Name, RuleMissingPlan)
	}
}
