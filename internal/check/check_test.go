package check

import (
	"fmt"
	"testing"

	"chow88/internal/benchprog"
	"chow88/internal/codegen"
	"chow88/internal/core"
	"chow88/internal/front"
)

func modes() []core.Mode {
	return []core.Mode{
		core.ModeBase(), core.ModeA(), core.ModeB(),
		core.ModeC(), core.ModeD(), core.ModeE(),
	}
}

// TestCleanCorpus runs both validators over every corpus program under all
// six measurement modes: a correct compiler produces zero violations.
func TestCleanCorpus(t *testing.T) {
	for _, b := range benchprog.All() {
		for _, mode := range modes() {
			t.Run(fmt.Sprintf("%s/%s", b.Name, mode.Name), func(t *testing.T) {
				mod, err := front.Module(b.Source, mode.Optimize, true)
				if err != nil {
					t.Fatalf("front: %v", err)
				}
				pp := core.PlanModule(mod, mode)
				for _, v := range Plan(pp) {
					t.Errorf("plan: %s", v)
				}
				prog, err := codegen.Generate(pp)
				if err != nil {
					t.Fatalf("codegen: %v", err)
				}
				for _, v := range Code(pp, prog) {
					t.Errorf("code: %s", v)
				}
			})
		}
	}
}
