package check

import (
	"chow88/internal/core"
	"chow88/internal/ir"
	"chow88/internal/mach"
	"chow88/internal/mcode"
)

// Code validates the emitted machine code against the linkage contracts of
// the plan it was generated from: on every path through every non-extern
// function, save/restore stack traffic balances (each restore pops a
// matching save, nothing stays saved at a return), and no callee-saved
// register is modified — by an instruction or by a call whose callee's
// summary admits destroying it — while unsaved, unless the function's own
// published summary declares the register used and so passes the
// obligation to its callers.
//
// The walk is a forward dataflow over the function's block layout with a
// per-register save-depth vector, the machine-level shadow of the plan
// checks in Plan: a miscompiled save/restore schedule that slipped past
// planning shows up here as an unbalanced or uncovered path.
func Code(pp *core.ProgramPlan, prog *mcode.Program) []Violation {
	return CodeFuncs(pp, prog, nil, SummariesOf(pp))
}

// CodeFuncs validates the emitted code of just fs (nil means every
// non-extern function), resolving callee summaries through summaryOf. The
// incremental pipeline checks only freshly emitted functions this way,
// with summaries of reused callees supplied from the previous build.
func CodeFuncs(pp *core.ProgramPlan, prog *mcode.Program, fs []*ir.Func, summaryOf func(*ir.Func) *core.Summary) []Violation {
	c := &checker{pp: pp, cfg: pp.Mode.Config, summaryOf: summaryOf}
	var restrict map[*ir.Func]bool
	if fs != nil {
		restrict = make(map[*ir.Func]bool, len(fs))
		for _, f := range fs {
			restrict[f] = true
		}
	}
	entryFunc := make(map[int]*ir.Func, len(prog.Funcs))
	for i, fi := range prog.Funcs {
		if i < len(pp.Module.Funcs) && !fi.Extern {
			entryFunc[fi.Entry] = pp.Module.Funcs[i]
		}
	}
	for i, fi := range prog.Funcs {
		if fi.Extern || i >= len(pp.Module.Funcs) {
			continue
		}
		f := pp.Module.Funcs[i]
		if restrict != nil && !restrict[f] {
			continue
		}
		fp := pp.Funcs[f]
		if fp == nil {
			continue // Plan already reported the missing plan
		}
		c.checkCodeFunc(fi, fp, prog, entryFunc)
	}
	return c.viols
}

// depths tracks, per register, how many unmatched save-class stores are
// outstanding. Depth 2 is legitimate (a plan save plus an around-call
// save); anything deeper is a schedule bug.
type depths [mach.NumRegs]int8

const maxSaveDepth = 3

func (c *checker) checkCodeFunc(fi *mcode.FuncInfo, fp *core.FuncPlan, prog *mcode.Program, entryFunc map[int]*ir.Func) {
	fn := fi.Name

	// The function's own summary exempts the registers it declares used:
	// destroying those is the callers' concern (§3).
	var exempt mach.RegSet
	if fp.Summary != nil {
		exempt = fp.Summary.Used & c.cfg.CalleeSaved
	}

	// Span starts in layout order; each span is one basic block.
	starts := make([]int, 0, len(fi.Blocks)+1)
	index := make(map[int]int) // code index -> span number
	add := func(s int) {
		if _, ok := index[s]; !ok && s >= fi.Entry && s < fi.End {
			index[s] = len(starts)
			starts = append(starts, s)
		}
	}
	add(fi.Entry)
	for _, bs := range fi.Blocks {
		add(bs.Start)
	}
	endOf := func(i int) int {
		if i+1 < len(starts) {
			return starts[i+1]
		}
		return fi.End
	}

	in := make([]depths, len(starts))
	seen := make([]bool, len(starts))
	seen[0] = true
	work := []int{0}
	for len(work) > 0 {
		si := work[len(work)-1]
		work = work[:len(work)-1]
		d := in[si]
		last := endOf(si) - 1
		for pc := starts[si]; pc <= last; pc++ {
			ins := &prog.Code[pc]
			switch ins.Op {
			case mcode.SW:
				if ins.Class == mcode.ClassSaveRestore && ins.Rs == mach.SP {
					d[ins.Rt]++
					if d[ins.Rt] > maxSaveDepth {
						c.report(fn, RuleCodeBalance, "pc %d: %s saved %d deep", pc, ins.Rt, d[ins.Rt])
					}
				}
			case mcode.LW:
				if ins.Class == mcode.ClassSaveRestore && ins.Rs == mach.SP {
					if d[ins.Rd] == 0 {
						c.report(fn, RuleCodeBalance, "pc %d: restore of %s, which is not saved on this path", pc, ins.Rd)
					} else {
						d[ins.Rd]--
					}
					continue // a restore is not a plain write
				}
				c.checkWrite(fn, pc, ins.Rd, &d, exempt)
			case mcode.LI, mcode.MOVE, mcode.ADD, mcode.SUB, mcode.MUL, mcode.DIV,
				mcode.REM, mcode.SLT, mcode.SLE, mcode.SEQ, mcode.SNE:
				c.checkWrite(fn, pc, ins.Rd, &d, exempt)
			case mcode.JAL:
				if callee, ok := entryFunc[ins.Target]; ok {
					if s := c.summaryOf(callee); s != nil {
						clob := s.Used & c.cfg.CalleeSaved
						clob.ForEach(func(r mach.Reg) {
							if d[r] == 0 && !exempt.Has(r) {
								c.report(fn, RuleCodeClobber,
									"pc %d: call to %s may destroy unsaved %s", pc, callee.Name, r)
							}
						})
					}
				}
			case mcode.JR:
				for r := range d {
					if d[r] != 0 {
						c.report(fn, RuleCodeBalance, "pc %d: return with %s still saved", pc, mach.Reg(r))
					}
				}
			}
		}

		// Successors from the span's final instruction.
		var succ []int
		t := &prog.Code[last]
		switch t.Op {
		case mcode.JR, mcode.EXIT:
		case mcode.J:
			succ = append(succ, t.Target)
		case mcode.BEQZ, mcode.BNEZ:
			succ = append(succ, t.Target, last+1)
		default:
			if last+1 >= fi.End {
				c.report(fn, RuleCodeBalance, "pc %d: control falls off the end of the function", last)
				continue
			}
			succ = append(succ, last+1)
		}
		for _, s := range succ {
			ti, ok := index[s]
			if !ok {
				continue // branch out of the function; mcode.Verify's concern
			}
			if !seen[ti] {
				seen[ti] = true
				in[ti] = d
				work = append(work, ti)
			} else if in[ti] != d {
				c.report(fn, RuleCodeBalance,
					"pc %d: block at %d entered with differing save depths on different paths", last, s)
			}
		}
	}
}

// checkWrite flags a write to an unsaved callee-saved register not covered
// by the function's published summary.
func (c *checker) checkWrite(fn string, pc int, rd mach.Reg, d *depths, exempt mach.RegSet) {
	if !c.cfg.CalleeSaved.Has(rd) || d[rd] != 0 || exempt.Has(rd) {
		return
	}
	c.report(fn, RuleCodeClobber, "pc %d: writes unsaved callee-saved %s", pc, rd)
}
