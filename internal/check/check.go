// Package check is the linkage-invariant validator: an independent
// re-derivation of the contracts the paper's inter-procedural allocator and
// shrink-wrapper must uphold, run against a finished allocation plan
// (Plan) and against the emitted machine code (Code).
//
// mcode.Verify checks structural well-formedness — registers in range,
// branches landing on block heads. This package checks meaning:
//
//   - a closed procedure's published register-usage summary, together with
//     its local save plan, covers everything its call tree actually
//     touches (§2–§3 of the paper);
//   - published parameter locations agree with where the allocator really
//     placed each parameter, and the oracle callers consumed agrees with
//     the plans on record (§4);
//   - no live range sits in a register a spanned call may destroy unless
//     the recorded allocation forces a save around that call;
//   - shrink-wrapped and entry/exit save/restore plans balance on every
//     CFG path and cover every block where a managed register is active
//     (equations 3.1–3.6, §5–§6).
//
// Every derivation here is recomputed from the IR and the per-function
// plans — never read back from the oracle or the planner's intermediate
// state — so a planner bug cannot vouch for itself.
package check

import (
	"fmt"

	"chow88/internal/core"
	"chow88/internal/ir"
	"chow88/internal/liveness"
	"chow88/internal/mach"
	"chow88/internal/regalloc"
)

// Rule identifiers, stable for scripting and demotion reasons.
const (
	RuleMissingPlan      = "missing-plan"
	RuleSummaryShape     = "summary-shape"
	RuleSummarySoundness = "summary-soundness"
	RuleSummaryArgs      = "summary-args"
	RuleParamSaveClash   = "param-save-conflict"
	RuleOracleAgreement  = "oracle-agreement"
	RuleUnsavedLiveRange = "live-across-unsaved-call"
	RuleSaveBalance      = "save-balance"
	RuleSaveCoverage     = "save-coverage"
	RuleSaveClass        = "save-class"
	RuleCodeBalance      = "code-save-balance"
	RuleCodeClobber      = "code-callee-saved-clobber"
)

// Violation is one broken invariant, attributed to the procedure whose
// demotion to the safe open convention would repair it.
type Violation struct {
	Func   string
	Rule   string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Func, v.Rule, v.Detail)
}

// Plan validates a finished allocation plan. It returns every violation
// found (nil when the plan is clean), in deterministic module order.
func Plan(pp *core.ProgramPlan) []Violation {
	return PlanFuncs(pp, pp.Module.Funcs, SummariesOf(pp))
}

// PlanFuncs validates the plans of just fs, resolving callee summaries
// through summaryOf instead of pp.Funcs. Incremental recompilation checks
// only the re-planned slice this way: reused callees have no FuncPlan in
// the shell ProgramPlan, but their linkage is known from the previous
// build's state, and summaryOf supplies it.
func PlanFuncs(pp *core.ProgramPlan, fs []*ir.Func, summaryOf func(*ir.Func) *core.Summary) []Violation {
	c := &checker{pp: pp, cfg: pp.Mode.Config, summaryOf: summaryOf}
	for _, f := range fs {
		if f.Extern {
			continue
		}
		fp := pp.Funcs[f]
		if fp == nil {
			c.report(f.Name, RuleMissingPlan, "no allocation plan recorded")
			continue
		}
		c.checkFunc(f, fp)
	}
	return c.viols
}

// SummariesOf resolves callee summaries from the plans recorded in pp —
// the default source for whole-module validation.
func SummariesOf(pp *core.ProgramPlan) func(*ir.Func) *core.Summary {
	return func(f *ir.Func) *core.Summary {
		if fp := pp.Funcs[f]; fp != nil {
			return fp.Summary
		}
		return nil
	}
}

type checker struct {
	pp        *core.ProgramPlan
	cfg       *mach.Config
	summaryOf func(*ir.Func) *core.Summary
	viols     []Violation
}

func (c *checker) report(fn, rule, format string, args ...any) {
	c.viols = append(c.viols, Violation{Func: fn, Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// defaultClobber is the register set a call under the default linkage may
// destroy: all caller-saved registers plus the parameter registers.
func (c *checker) defaultClobber() mach.RegSet {
	return c.cfg.CallerSaved.Union(c.cfg.ParamSet())
}

// calleePlan returns the recorded plan of a direct call's callee, or nil
// for indirect calls and extern callees.
func (c *checker) calleePlan(call *ir.Instr) *core.FuncPlan {
	if call.Op != ir.OpCall || call.Callee == nil || call.Callee.Extern {
		return nil
	}
	return c.pp.Funcs[call.Callee]
}

// calleeSummary returns the summary a direct call's callee publishes, per
// the checker's summary source; nil for indirect/extern callees and open
// procedures.
func (c *checker) calleeSummary(call *ir.Instr) *core.Summary {
	if call.Op != ir.OpCall || call.Callee == nil || call.Callee.Extern {
		return nil
	}
	return c.summaryOf(call.Callee)
}

// derivedClobber recomputes, from the plans on record, the registers a call
// may destroy — the ground truth the oracle's answers are checked against.
func (c *checker) derivedClobber(call *ir.Instr) mach.RegSet {
	if s := c.calleeSummary(call); s != nil {
		return s.Used
	}
	return c.defaultClobber()
}

// derivedArgs recomputes where a call's outgoing arguments belong.
func (c *checker) derivedArgs(call *ir.Instr) []regalloc.ArgLoc {
	if s := c.calleeSummary(call); s != nil {
		return s.Args
	}
	return regalloc.DefaultArgLocs(c.cfg, len(call.Args))
}

func (c *checker) checkFunc(f *ir.Func, fp *core.FuncPlan) {
	// Summary shape: open procedures and non-IPRA plans publish nothing;
	// closed procedures under IPRA always publish (§3).
	switch {
	case fp.Summary != nil && (fp.Open || !c.pp.Mode.IPRA):
		c.report(f.Name, RuleSummaryShape, "open or intra-procedural plan publishes a summary")
	case fp.Summary == nil && c.pp.Mode.IPRA && !fp.Open:
		c.report(f.Name, RuleSummaryShape, "closed procedure publishes no summary")
	}

	// Registers destroyed by the call subtrees, re-derived from the plans.
	var childUsed mach.RegSet
	callSites := f.CallSites()
	for _, cs := range callSites {
		childUsed = childUsed.Union(c.derivedClobber(cs.Instr))
	}
	planRegs := fp.Plan.Regs()

	if notCalleeSaved := planRegs.Minus(c.cfg.CalleeSaved); !notCalleeSaved.Empty() {
		c.report(f.Name, RuleSaveClass, "save plan manages non-callee-saved registers %s", notCalleeSaved)
	}

	// Summary soundness (§2): what callers are told, plus what is saved
	// locally, must cover everything the call tree touches. For summary-less
	// procedures the same obligation narrows to the callee-saved registers:
	// callers assume the default linkage preserves them, so every
	// callee-saved register the tree touches must be in the local plan.
	treeUsed := fp.Alloc.UsedRegs.Union(childUsed)
	if fp.Summary != nil {
		if missing := treeUsed.Minus(fp.Summary.Used.Union(planRegs)); !missing.Empty() {
			c.report(f.Name, RuleSummarySoundness,
				"call tree uses %s but summary %s + local saves %s do not cover it",
				missing, fp.Summary.Used, planRegs)
		}
	} else {
		if missing := (treeUsed & c.cfg.CalleeSaved).Minus(planRegs); !missing.Empty() {
			c.report(f.Name, RuleSummarySoundness,
				"callee-saved %s used by the call tree but absent from the save plan %s",
				missing, planRegs)
		}
	}

	// Published parameter locations must be where the allocator actually
	// put each parameter (§4), and a register that delivers a parameter
	// must never be locally saved: the save would capture the argument at
	// entry while the summary tells ancestors the register is preserved.
	if fp.Summary != nil {
		if len(fp.Summary.Args) != len(f.Params) {
			c.report(f.Name, RuleSummaryArgs, "summary publishes %d parameter locations for %d parameters",
				len(fp.Summary.Args), len(f.Params))
		} else {
			for i, al := range fp.Summary.Args {
				l := fp.Alloc.LocOf(f.Params[i])
				// A parameter dead at entry (redefined on every path before
				// any use) is passed through its stack slot even when its
				// later range holds a register: delivering into the register
				// at entry would clobber it ahead of its mid-body save.
				entryLive := fp.Alloc.Ranges[f.Params[i].ID].EntryLive
				switch {
				case al.InReg && !entryLive:
					c.report(f.Name, RuleSummaryArgs,
						"parameter %d dead at entry but published in %s", i, al.Reg)
				case al.InReg && (l.Kind != regalloc.LocReg || l.Reg != al.Reg):
					c.report(f.Name, RuleSummaryArgs,
						"parameter %d published in %s but allocated to %s", i, al.Reg, locString(l))
				case !al.InReg && l.Kind == regalloc.LocReg && entryLive:
					c.report(f.Name, RuleSummaryArgs,
						"parameter %d published on the stack but allocated to %s", i, l.Reg)
				case !al.InReg && al.Slot != i:
					c.report(f.Name, RuleSummaryArgs,
						"parameter %d published in stack slot %d", i, al.Slot)
				}
				if al.InReg && planRegs.Has(al.Reg) {
					c.report(f.Name, RuleParamSaveClash,
						"parameter %d arrives in %s, which the local save plan also manages", i, al.Reg)
				}
			}
		}
	}

	// The oracle answers this function's callers consumed must agree with
	// the plans on record; a stale or corrupted published summary shows up
	// here at every call site that consumed it.
	for _, cs := range callSites {
		blame := f.Name
		if cp := c.calleePlan(cs.Instr); cp != nil {
			blame = cs.Instr.Callee.Name
		}
		if got, want := c.pp.Oracle.Clobbered(cs.Instr), c.derivedClobber(cs.Instr); got != want {
			c.report(blame, RuleOracleAgreement,
				"call in %s: oracle says clobbered=%s, plans say %s", f.Name, got, want)
		}
		got, want := c.pp.Oracle.ArgLocs(cs.Instr), c.derivedArgs(cs.Instr)
		if len(got) != len(want) {
			c.report(blame, RuleOracleAgreement,
				"call in %s: oracle publishes %d argument locations, plans say %d", f.Name, len(got), len(want))
		} else {
			for i := range got {
				if got[i] != want[i] {
					c.report(blame, RuleOracleAgreement,
						"call in %s: argument %d oracle=%s plans=%s", f.Name, i, argString(got[i]), argString(want[i]))
					break
				}
			}
		}
	}

	// Independent liveness: ranges and their spanned calls recomputed from
	// the (final, post-splitting) IR rather than trusted from the plan.
	live := liveness.Analyze(f)
	ranges := liveness.Ranges(f, live)

	// A live range in a register the callee may destroy must be saved
	// around the call. Code generation saves exactly the calls the
	// *recorded* ranges span, so every recomputed spanned call must appear
	// there too.
	recorded := make(map[int]map[*ir.Instr]bool, len(fp.Alloc.Ranges))
	for id, rng := range fp.Alloc.Ranges {
		if rng == nil || len(rng.Calls) == 0 {
			continue
		}
		m := make(map[*ir.Instr]bool, len(rng.Calls))
		for _, cs := range rng.Calls {
			m[cs.Instr] = true
		}
		recorded[id] = m
	}
	for id, rng := range ranges {
		if id >= len(fp.Alloc.Locs) {
			c.report(f.Name, RuleUnsavedLiveRange, "temp %d outside the recorded allocation", id)
			continue
		}
		l := fp.Alloc.Locs[id]
		if l.Kind != regalloc.LocReg {
			continue
		}
		for _, cs := range rng.Calls {
			if !c.derivedClobber(cs.Instr).Has(l.Reg) {
				continue
			}
			if !recorded[id][cs.Instr] {
				c.report(f.Name, RuleUnsavedLiveRange,
					"%s (temp %d) is live in %s across a call that may destroy it, with no recorded save",
					rng.Temp, id, l.Reg)
			}
		}
	}

	c.checkSavePlan(f, fp, ranges)
}

// checkSavePlan walks the CFG verifying the save/restore plan: balanced on
// every path (equations 3.3/3.4: a save reaches exactly one restore and a
// restore is reached only saved), consistent at joins, empty at every
// exit, and covering every block where a managed register is active.
func (c *checker) checkSavePlan(f *ir.Func, fp *core.FuncPlan, ranges []*liveness.Range) {
	managed := fp.Plan.Regs()
	if managed.Empty() {
		return
	}

	saveAt := make(map[*ir.Block]mach.RegSet)
	restoreAt := make(map[*ir.Block]mach.RegSet)
	for r, blks := range fp.Plan.SaveAt {
		for _, b := range blks {
			saveAt[b] = saveAt[b].Add(r)
		}
	}
	for r, blks := range fp.Plan.RestoreAt {
		for _, b := range blks {
			restoreAt[b] = restoreAt[b].Add(r)
		}
	}

	// Blocks where each managed register is active: the live-range blocks
	// of every temp assigned to it, blocks whose calls may destroy it, and
	// blocks that marshal an outgoing argument into it — the same activity
	// notion the shrink-wrapper's APP attribute encodes (§5), re-derived.
	active := make(map[*ir.Block]mach.RegSet, len(f.Blocks))
	for id, rng := range ranges {
		if id >= len(fp.Alloc.Locs) {
			continue
		}
		l := fp.Alloc.Locs[id]
		if l.Kind != regalloc.LocReg || !managed.Has(l.Reg) {
			continue
		}
		for b := range rng.Blocks {
			active[b] = active[b].Add(l.Reg)
		}
	}
	for _, cs := range f.CallSites() {
		s := c.derivedClobber(cs.Instr) & managed
		for _, al := range c.derivedArgs(cs.Instr) {
			if al.InReg && managed.Has(al.Reg) {
				s = s.Add(al.Reg)
			}
		}
		if !s.Empty() {
			active[cs.Block] = active[cs.Block].Union(s)
		}
	}

	// Forward walk: the saved set at each block entry. The first reaching
	// state wins; any disagreeing join is itself a violation (mixed
	// saved/unsaved paths are exactly what range extension exists to
	// prevent, Fig. 2).
	in := make(map[*ir.Block]mach.RegSet, len(f.Blocks))
	seen := make(map[*ir.Block]bool, len(f.Blocks))
	entry := f.Entry()
	in[entry] = 0
	seen[entry] = true
	work := []*ir.Block{entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		state := in[b]
		if double := state & saveAt[b]; !double.Empty() {
			c.report(f.Name, RuleSaveBalance, "block %s saves %s again without an intervening restore", b.Name, double)
		}
		state = state.Union(saveAt[b])
		if uncovered := active[b].Minus(state); !uncovered.Empty() {
			c.report(f.Name, RuleSaveCoverage, "%s active in block %s outside its save region", uncovered, b.Name)
		}
		if unsaved := restoreAt[b].Minus(state); !unsaved.Empty() {
			c.report(f.Name, RuleSaveBalance, "block %s restores %s, which no path saved", b.Name, unsaved)
		}
		state = state.Minus(restoreAt[b])
		if t := b.Terminator(); t != nil && t.Op == ir.OpRet && !state.Empty() {
			c.report(f.Name, RuleSaveBalance, "%s still saved at the exit of block %s", state, b.Name)
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				in[s] = state
				work = append(work, s)
			} else if in[s] != state {
				c.report(f.Name, RuleSaveBalance,
					"block %s entered saved=%s on one path and saved=%s on another", s.Name, in[s], state)
			}
		}
	}
}

func locString(l regalloc.Loc) string {
	switch l.Kind {
	case regalloc.LocReg:
		return l.Reg.String()
	case regalloc.LocMem:
		return "memory"
	default:
		return "nowhere"
	}
}

func argString(a regalloc.ArgLoc) string {
	if a.InReg {
		return a.Reg.String()
	}
	return fmt.Sprintf("stack%d", a.Slot)
}
