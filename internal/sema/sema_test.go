package sema

import (
	"strings"
	"testing"

	"chow88/internal/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(p)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func wantErr(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("no error for:\n%s", src)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Errorf("error %q does not contain %q", err, fragment)
	}
}

const okProg = `
var g int;
var buf [16]int;
var hook func(int) int;

func twice(x int) int { return x + x; }

func use() {
    var i int;
    hook = twice;
    for (i = 0; i < 16; i = i + 1) {
        buf[i] = hook(i) + g;
    }
}

func main() {
    use();
    print(buf[3]);
}`

func TestOK(t *testing.T) {
	info := mustCheck(t, okProg)
	if len(info.Globals) != 3 {
		t.Errorf("globals = %d", len(info.Globals))
	}
	if !info.AddressTaken["twice"] {
		t.Errorf("twice should be address-taken")
	}
	if info.AddressTaken["use"] {
		t.Errorf("use should not be address-taken")
	}
	fi := info.Funcs["twice"]
	if len(fi.Params) != 1 || fi.Params[0].ParamIndex != 0 {
		t.Errorf("bad params: %+v", fi.Params)
	}
}

func TestShadowing(t *testing.T) {
	info := mustCheck(t, `
var x int;
func main() {
    var x int;
    x = 1;
    { var x int; x = 2; }
    print(x);
}`)
	fi := info.Funcs["main"]
	if len(fi.Locals) != 2 {
		t.Fatalf("locals = %d, want 2 distinct x symbols", len(fi.Locals))
	}
	if fi.Locals[0].ID == fi.Locals[1].ID {
		t.Errorf("shadowed locals share an ID")
	}
}

func TestMainRequired(t *testing.T) {
	wantErr(t, "func f() {}", "no main")
	wantErr(t, "func main(x int) {}", "main must take no parameters")
	wantErr(t, "func main() int { return 0; }", "main must take no parameters")
	wantErr(t, "extern func main();", "must not be extern")
}

func TestUndefined(t *testing.T) {
	wantErr(t, "func main() { x = 1; }", "undefined variable x")
	wantErr(t, "func main() { print(y); }", "undefined identifier y")
	wantErr(t, "func main() { nope(); }", "undefined function nope")
}

func TestDuplicates(t *testing.T) {
	wantErr(t, "var a int; var a int; func main() {}", "duplicate global")
	wantErr(t, "func f() {} func f() {} func main() {}", "duplicate function")
	wantErr(t, "var f int; func f() {} func main() {}", "already declared")
	wantErr(t, "func main() { var a int; var a int; }", "duplicate declaration")
	wantErr(t, "func print(x int) {} func main() {}", "builtin print")
}

func TestTypeErrors(t *testing.T) {
	wantErr(t, "var a [4]int; func main() { a = 1; }", "cannot assign")
	wantErr(t, "var a [4]int; func main() { print(a); }", "must be indexed")
	wantErr(t, "var g int; func main() { g[0] = 1; }", "not an array")
	wantErr(t, "func f(x int) {} func main() { f(); }", "expects 1 arguments, got 0")
	wantErr(t, "func f(x int) {} func main() { f(1, 2); }", "expects 1 arguments, got 2")
	wantErr(t, "var g int; func main() { g(); }", "not callable")
	wantErr(t, "func main() { print(1, 2); }", "exactly one argument")
	wantErr(t, "var h func() int; func f() {} func main() { h = f; }", "cannot assign")
}

func TestReturnChecks(t *testing.T) {
	wantErr(t, "func f() int { return; } func main() {}", "must return a value")
	wantErr(t, "func f() { return 1; } func main() {}", "returns no value")
}

func TestLoopChecks(t *testing.T) {
	wantErr(t, "func main() { break; }", "break outside loop")
	wantErr(t, "func main() { continue; }", "continue outside loop")
	mustCheck(t, "func main() { while (1) { break; continue; } }")
	mustCheck(t, "func main() { for (;;) { break; } }")
}

func TestArrayParamRejected(t *testing.T) {
	wantErr(t, "func f(a [3]int) {} func main() {}", "array parameters")
}

func TestFuncValueUses(t *testing.T) {
	// Passing a function name as a func-typed argument takes its address.
	info := mustCheck(t, `
func apply(f func(int) int, x int) int { return f(x); }
func sq(x int) int { return x * x; }
func main() { print(apply(sq, 5)); }`)
	if !info.AddressTaken["sq"] {
		t.Errorf("sq should be address-taken")
	}
	if info.AddressTaken["apply"] {
		t.Errorf("apply is only called directly")
	}
}

func TestVoidInExpr(t *testing.T) {
	wantErr(t, "func f() {} func main() { print(f()); }", "expected int expression")
}
