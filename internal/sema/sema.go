// Package sema performs symbol resolution and type checking for CW programs.
//
// Beyond ordinary checking it computes the two facts the inter-procedural
// allocator needs from the front end: which functions have their address
// taken (assigned to a function-typed variable or passed as a function-typed
// argument — such functions are callable indirectly and therefore *open*),
// and the fully resolved symbol for every identifier use.
package sema

import (
	"fmt"

	"chow88/internal/ast"
	"chow88/internal/token"
)

// VarSym is a resolved variable: a global, a parameter, or a local.
type VarSym struct {
	Name   string
	Type   *ast.Type
	Global bool
	// ParamIndex is the 0-based parameter position, or -1 for non-parameters.
	ParamIndex int
	// ID is unique among the symbols of one function (or among globals).
	ID int
}

func (v *VarSym) String() string { return v.Name }

// FuncInfo carries the symbols of one function.
type FuncInfo struct {
	Decl   *ast.FuncDecl
	Params []*VarSym
	// Locals lists every local symbol including parameters, in declaration
	// order. Shadowed variables appear as distinct symbols.
	Locals []*VarSym
}

// Info is the result of checking a program.
type Info struct {
	Program *ast.Program
	Globals []*VarSym
	Funcs   map[string]*FuncInfo
	// FuncOrder lists function names in declaration order.
	FuncOrder []string
	// Uses resolves each variable identifier to its symbol.
	Uses map[*ast.Ident]*VarSym
	// FuncRefs resolves each identifier that names a function.
	FuncRefs map[*ast.Ident]*ast.FuncDecl
	// AddressTaken holds functions whose address is taken (indirect-call
	// candidates; they must be treated as open by the allocator).
	AddressTaken map[string]bool
	// Types records the type of every expression.
	Types map[ast.Expr]*ast.Type
}

// Check resolves and type-checks prog.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Program:      prog,
			Funcs:        map[string]*FuncInfo{},
			Uses:         map[*ast.Ident]*VarSym{},
			FuncRefs:     map[*ast.Ident]*ast.FuncDecl{},
			AddressTaken: map[string]bool{},
			Types:        map[ast.Expr]*ast.Type{},
		},
		globals: map[string]*VarSym{},
		funcs:   map[string]*ast.FuncDecl{},
	}
	if err := c.collectTopLevel(prog); err != nil {
		return nil, err
	}
	for _, d := range prog.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Extern {
			continue
		}
		if err := c.checkFunc(fd); err != nil {
			return nil, err
		}
	}
	main, ok := c.funcs["main"]
	switch {
	case !ok:
		return nil, fmt.Errorf("program has no main function")
	case main.Extern:
		return nil, fmt.Errorf("%s: main must not be extern", main.Pos())
	case len(main.Params) != 0 || main.Returns:
		return nil, fmt.Errorf("%s: main must take no parameters and return nothing", main.Pos())
	}
	return c.info, nil
}

type checker struct {
	info    *Info
	globals map[string]*VarSym
	funcs   map[string]*ast.FuncDecl

	// Per-function state.
	fn        *FuncInfo
	scopes    []map[string]*VarSym
	loopDepth int
	nextID    int
}

func errAt(pos token.Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
}

func (c *checker) collectTopLevel(prog *ast.Program) error {
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.VarDecl:
			if _, dup := c.globals[d.Name]; dup {
				return errAt(d.Pos(), "duplicate global %s", d.Name)
			}
			if _, dup := c.funcs[d.Name]; dup {
				return errAt(d.Pos(), "%s already declared as a function", d.Name)
			}
			sym := &VarSym{Name: d.Name, Type: d.Type, Global: true, ParamIndex: -1, ID: len(c.info.Globals)}
			c.globals[d.Name] = sym
			c.info.Globals = append(c.info.Globals, sym)
		case *ast.FuncDecl:
			if _, dup := c.funcs[d.Name]; dup {
				return errAt(d.Pos(), "duplicate function %s", d.Name)
			}
			if _, dup := c.globals[d.Name]; dup {
				return errAt(d.Pos(), "%s already declared as a variable", d.Name)
			}
			if d.Name == "print" {
				return errAt(d.Pos(), "cannot redefine builtin print")
			}
			for _, p := range d.Params {
				if p.Type.Kind == ast.ArrayType {
					return errAt(p.Pos(), "array parameters are not supported; use a global array")
				}
			}
			c.funcs[d.Name] = d
			c.info.FuncOrder = append(c.info.FuncOrder, d.Name)
		}
	}
	return nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*VarSym{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declareLocal(d *ast.VarDecl, paramIndex int) (*VarSym, error) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[d.Name]; dup {
		return nil, errAt(d.Pos(), "duplicate declaration of %s in this scope", d.Name)
	}
	sym := &VarSym{Name: d.Name, Type: d.Type, ParamIndex: paramIndex, ID: c.nextID}
	c.nextID++
	top[d.Name] = sym
	c.fn.Locals = append(c.fn.Locals, sym)
	return sym, nil
}

// lookupVar finds a variable by name, innermost scope first, then globals.
func (c *checker) lookupVar(name string) *VarSym {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.globals[name]
}

func (c *checker) checkFunc(fd *ast.FuncDecl) error {
	c.fn = &FuncInfo{Decl: fd}
	c.scopes = nil
	c.loopDepth = 0
	c.nextID = 0
	c.info.Funcs[fd.Name] = c.fn

	c.pushScope()
	defer c.popScope()
	for i, p := range fd.Params {
		sym, err := c.declareLocal(p, i)
		if err != nil {
			return err
		}
		c.fn.Params = append(c.fn.Params, sym)
	}
	return c.checkBlock(fd.Body)
}

func (c *checker) checkBlock(b *ast.Block) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.DeclStmt:
		if _, clash := c.funcs[s.Decl.Name]; clash {
			return errAt(s.Pos(), "%s already declared as a function", s.Decl.Name)
		}
		_, err := c.declareLocal(s.Decl, -1)
		return err
	case *ast.Block:
		return c.checkBlock(s)
	case *ast.AssignStmt:
		return c.checkAssign(s)
	case *ast.IfStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil
	case *ast.WhileStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		c.loopDepth++
		err := c.checkBlock(s.Body)
		c.loopDepth--
		return err
	case *ast.ForStmt:
		// The init clause may declare nothing (CW has no for-scoped vars);
		// it is an assignment or call in the enclosing scope.
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.checkCond(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkStmt(s.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		err := c.checkBlock(s.Body)
		c.loopDepth--
		return err
	case *ast.ReturnStmt:
		if c.fn.Decl.Returns {
			if s.Value == nil {
				return errAt(s.Pos(), "%s must return a value", c.fn.Decl.Name)
			}
			return c.checkIntExpr(s.Value)
		}
		if s.Value != nil {
			return errAt(s.Pos(), "%s returns no value", c.fn.Decl.Name)
		}
		return nil
	case *ast.BreakStmt:
		if c.loopDepth == 0 {
			return errAt(s.Pos(), "break outside loop")
		}
		return nil
	case *ast.ContinueStmt:
		if c.loopDepth == 0 {
			return errAt(s.Pos(), "continue outside loop")
		}
		return nil
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return errAt(s.Pos(), "expression statement must be a call")
		}
		_, err := c.checkCall(call)
		return err
	}
	return errAt(s.Pos(), "unhandled statement %T", s)
}

func (c *checker) checkAssign(s *ast.AssignStmt) error {
	switch lhs := s.Lhs.(type) {
	case *ast.Ident:
		sym := c.lookupVar(lhs.Name)
		if sym == nil {
			return errAt(lhs.Pos(), "undefined variable %s", lhs.Name)
		}
		c.info.Uses[lhs] = sym
		switch sym.Type.Kind {
		case ast.IntType:
			return c.checkIntExpr(s.Rhs)
		case ast.FuncType:
			t, err := c.exprType(s.Rhs)
			if err != nil {
				return err
			}
			if !t.Equal(sym.Type) {
				return errAt(s.Rhs.Pos(), "cannot assign %s to %s of type %s", t, sym.Name, sym.Type)
			}
			return nil
		default:
			return errAt(lhs.Pos(), "cannot assign to %s of type %s", sym.Name, sym.Type)
		}
	case *ast.IndexExpr:
		if err := c.checkIndex(lhs); err != nil {
			return err
		}
		return c.checkIntExpr(s.Rhs)
	}
	return errAt(s.Lhs.Pos(), "invalid assignment target")
}

func (c *checker) checkCond(e ast.Expr) error { return c.checkIntExpr(e) }

func (c *checker) checkIntExpr(e ast.Expr) error {
	t, err := c.exprType(e)
	if err != nil {
		return err
	}
	if t.Kind != ast.IntType {
		return errAt(e.Pos(), "expected int expression, found %s", t)
	}
	return nil
}

// exprType types an expression, resolving identifiers as it goes.
func (c *checker) exprType(e ast.Expr) (*ast.Type, error) {
	t, err := c.exprType1(e)
	if err == nil {
		c.info.Types[e] = t
	}
	return t, err
}

func (c *checker) exprType1(e ast.Expr) (*ast.Type, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return ast.TInt, nil
	case *ast.Ident:
		if sym := c.lookupVar(e.Name); sym != nil {
			c.info.Uses[e] = sym
			if sym.Type.Kind == ast.ArrayType {
				return nil, errAt(e.Pos(), "array %s must be indexed", e.Name)
			}
			return sym.Type, nil
		}
		if fd, ok := c.funcs[e.Name]; ok {
			// A function name used as a value: its address is taken.
			c.info.FuncRefs[e] = fd
			c.info.AddressTaken[fd.Name] = true
			return fd.Sig(), nil
		}
		return nil, errAt(e.Pos(), "undefined identifier %s", e.Name)
	case *ast.IndexExpr:
		if err := c.checkIndex(e); err != nil {
			return nil, err
		}
		return ast.TInt, nil
	case *ast.CallExpr:
		return c.checkCall(e)
	case *ast.BinaryExpr:
		if err := c.checkIntExpr(e.X); err != nil {
			return nil, err
		}
		if err := c.checkIntExpr(e.Y); err != nil {
			return nil, err
		}
		return ast.TInt, nil
	case *ast.UnaryExpr:
		if err := c.checkIntExpr(e.X); err != nil {
			return nil, err
		}
		return ast.TInt, nil
	}
	return nil, errAt(e.Pos(), "unhandled expression %T", e)
}

func (c *checker) checkIndex(e *ast.IndexExpr) error {
	sym := c.lookupVar(e.Arr.Name)
	if sym == nil {
		return errAt(e.Arr.Pos(), "undefined variable %s", e.Arr.Name)
	}
	c.info.Uses[e.Arr] = sym
	if sym.Type.Kind != ast.ArrayType {
		return errAt(e.Arr.Pos(), "%s is not an array", e.Arr.Name)
	}
	return c.checkIntExpr(e.Index)
}

// checkCall types a call. The callee may be the builtin print, a declared
// function (direct call), or a function-typed variable (indirect call).
func (c *checker) checkCall(e *ast.CallExpr) (*ast.Type, error) {
	if e.Fun.Name == "print" {
		if c.lookupVar("print") == nil {
			if len(e.Args) != 1 {
				return nil, errAt(e.Pos(), "print takes exactly one argument")
			}
			if err := c.checkIntExpr(e.Args[0]); err != nil {
				return nil, err
			}
			return ast.TVoid, nil
		}
	}
	var sig *ast.Type
	if sym := c.lookupVar(e.Fun.Name); sym != nil {
		c.info.Uses[e.Fun] = sym
		if sym.Type.Kind != ast.FuncType {
			return nil, errAt(e.Fun.Pos(), "%s is not callable", e.Fun.Name)
		}
		sig = sym.Type
	} else if fd, ok := c.funcs[e.Fun.Name]; ok {
		c.info.FuncRefs[e.Fun] = fd
		sig = fd.Sig()
	} else {
		return nil, errAt(e.Fun.Pos(), "undefined function %s", e.Fun.Name)
	}
	if len(e.Args) != len(sig.Params) {
		return nil, errAt(e.Pos(), "%s expects %d arguments, got %d", e.Fun.Name, len(sig.Params), len(e.Args))
	}
	for i, a := range e.Args {
		at, err := c.exprType(a)
		if err != nil {
			return nil, err
		}
		if !at.Equal(sig.Params[i]) {
			return nil, errAt(a.Pos(), "argument %d of %s: expected %s, found %s", i+1, e.Fun.Name, sig.Params[i], at)
		}
	}
	if sig.Returns {
		return ast.TInt, nil
	}
	return ast.TVoid, nil
}
