package core

import (
	"chow88/internal/dataflow"
	"chow88/internal/explain"
	"chow88/internal/ir"
	"chow88/internal/mach"
	"chow88/internal/regalloc"
)

// SavePlan records where each managed callee-saved register is saved and
// restored inside one procedure. Saves execute at the entries of the listed
// blocks; restores execute at their exits, immediately before the
// terminator.
type SavePlan struct {
	SaveAt    map[mach.Reg][]*ir.Block
	RestoreAt map[mach.Reg][]*ir.Block

	// saveWhy/restoreWhy hold the eq-3.x provenance note per placement site,
	// filled only while an explain journal is active. Unexported: the plan's
	// serialized forms (and the incremental linkage digest) never carry them.
	saveWhy    map[mach.Reg]map[*ir.Block]string
	restoreWhy map[mach.Reg]map[*ir.Block]string
}

// NewSavePlan returns an empty plan.
func NewSavePlan() *SavePlan {
	return &SavePlan{SaveAt: map[mach.Reg][]*ir.Block{}, RestoreAt: map[mach.Reg][]*ir.Block{}}
}

func noteWhy(m map[mach.Reg]map[*ir.Block]string, r mach.Reg, b *ir.Block, why string) map[mach.Reg]map[*ir.Block]string {
	if m == nil {
		m = map[mach.Reg]map[*ir.Block]string{}
	}
	if m[r] == nil {
		m[r] = map[*ir.Block]string{}
	}
	m[r][b] = why
	return m
}

// SaveWhy / RestoreWhy return the recorded provenance of one site; empty
// when no journal was active while the plan was built.
func (p *SavePlan) SaveWhy(r mach.Reg, b *ir.Block) string    { return p.saveWhy[r][b] }
func (p *SavePlan) RestoreWhy(r mach.Reg, b *ir.Block) string { return p.restoreWhy[r][b] }

// Regs returns the set of registers the plan manages. A nil plan manages
// nothing.
func (p *SavePlan) Regs() mach.RegSet {
	var s mach.RegSet
	if p == nil {
		return s
	}
	for r := range p.SaveAt {
		s = s.Add(r)
	}
	return s
}

// SaveAtEntryOnly reports whether r's only save site is the procedure's
// entry block — the §6 criterion for propagating the save/restore to the
// ancestors instead of keeping it local.
func (p *SavePlan) SaveAtEntryOnly(f *ir.Func, r mach.Reg) bool {
	sites := p.SaveAt[r]
	return len(sites) == 1 && sites[0] == f.Entry()
}

// Drop removes r from the plan (used when §6 decides to propagate upward).
func (p *SavePlan) Drop(r mach.Reg) {
	delete(p.SaveAt, r)
	delete(p.RestoreAt, r)
	delete(p.saveWhy, r)
	delete(p.restoreWhy, r)
}

// EntryExitPlan places every register of regs at the procedure entry and all
// exits — the unoptimized convention used when shrink-wrapping is disabled.
func EntryExitPlan(f *ir.Func, regs mach.RegSet) *SavePlan {
	p := NewSavePlan()
	exits := f.ExitBlocks()
	explainOn := explain.Current() != nil
	regs.ForEach(func(r mach.Reg) {
		p.SaveAt[r] = []*ir.Block{f.Entry()}
		p.RestoreAt[r] = append([]*ir.Block(nil), exits...)
		if explainOn {
			p.saveWhy = noteWhy(p.saveWhy, r, f.Entry(), "entry/exit convention (shrink-wrap off)")
			for _, x := range exits {
				p.restoreWhy = noteWhy(p.restoreWhy, r, x, "entry/exit convention (shrink-wrap off)")
			}
		}
	})
	return p
}

// regAPP computes the APP attribute (§5): for every block, the set of
// managed registers active in it. A register is active throughout the live
// range of every temp assigned to it (its "region of activity" — using the
// whole live range, not just reference sites, keeps restores from landing
// inside a region where the register still carries a live value), in blocks
// whose calls may destroy it according to the callee's summary (the parent
// answers for its children's unsaved callee-saved usage, §3), and in blocks
// where an outgoing argument is marshalled into it.
func regAPP(f *ir.Func, alloc *regalloc.Result, oracle regalloc.Oracle, managed mach.RegSet) map[*ir.Block]mach.RegSet {
	app := make(map[*ir.Block]mach.RegSet, len(f.Blocks))
	for _, rng := range alloc.Ranges {
		l := alloc.Locs[rng.Temp.ID]
		if l.Kind != regalloc.LocReg || !managed.Has(l.Reg) {
			continue
		}
		for b := range rng.Blocks {
			app[b] = app[b].Add(l.Reg)
		}
	}
	for _, cs := range f.CallSites() {
		s := oracle.Clobbered(cs.Instr) & managed
		for _, al := range oracle.ArgLocs(cs.Instr) {
			if al.InReg && managed.Has(al.Reg) {
				s = s.Add(al.Reg)
			}
		}
		if s != 0 {
			app[cs.Block] = app[cs.Block].Union(s)
		}
	}
	for _, b := range f.Blocks {
		if _, ok := app[b]; !ok {
			app[b] = 0
		}
	}
	return app
}

// ShrinkWrap computes optimized save/restore placement for the managed
// registers using the anticipability/availability equations (3.1)–(3.6),
// with the paper's two refinements: usage-range extension to keep insertion
// points correct without creating new CFG nodes (Fig. 2), and whole-loop
// APP propagation so a wrapped region never sits strictly inside a loop.
func ShrinkWrap(f *ir.Func, app map[*ir.Block]mach.RegSet, managed mach.RegSet) *SavePlan {
	plan := NewSavePlan()
	if managed.Empty() {
		return plan
	}
	loops := dataflow.Loops(f)
	blocks := f.RPO()

	// The flow sets are dense over block IDs: one flat slice per equation
	// family instead of a hash lookup in every fixpoint step.
	maxID := 0
	for _, b := range f.Blocks {
		if b.ID > maxID {
			maxID = b.ID
		}
	}
	sets := make([]mach.RegSet, 5*(maxID+1))
	antIn := sets[0*(maxID+1) : 1*(maxID+1)]
	antOut := sets[1*(maxID+1) : 2*(maxID+1)]
	avIn := sets[2*(maxID+1) : 3*(maxID+1)]
	avOut := sets[3*(maxID+1) : 4*(maxID+1)]
	appv := sets[4*(maxID+1) : 5*(maxID+1)]
	for b, s := range app {
		appv[b.ID] = s
	}
	isExit := make([]bool, maxID+1)
	for _, b := range blocks {
		if t := b.Terminator(); t != nil && t.Op == ir.OpRet {
			isExit[b.ID] = true
		}
	}
	entry := f.Entry()

	// Loop rule: a register used anywhere in a loop is treated as used
	// throughout the loop, so saves/restores never land inside it (§5).
	extendLoops := func() bool {
		changed := false
		for _, l := range loops {
			var union mach.RegSet
			for b := range l.Blocks {
				union = union.Union(appv[b.ID])
			}
			for b := range l.Blocks {
				if appv[b.ID] != appv[b.ID].Union(union) {
					appv[b.ID] = appv[b.ID].Union(union)
					changed = true
				}
			}
		}
		return changed
	}
	for extendLoops() {
	}

	solve := func() {
		// Anticipability: backward, all-paths. Initialize interior to the
		// full set so the intersections converge downward.
		for _, b := range blocks {
			if isExit[b.ID] {
				antOut[b.ID] = 0
			} else {
				antOut[b.ID] = managed
			}
			antIn[b.ID] = appv[b.ID].Union(antOut[b.ID])
		}
		for changed := true; changed; {
			changed = false
			for i := len(blocks) - 1; i >= 0; i-- {
				b := blocks[i]
				if !isExit[b.ID] {
					out := managed
					for _, s := range b.Succs {
						out &= antIn[s.ID]
					}
					if out != antOut[b.ID] {
						antOut[b.ID] = out
						changed = true
					}
				}
				in := appv[b.ID].Union(antOut[b.ID])
				if in != antIn[b.ID] {
					antIn[b.ID] = in
					changed = true
				}
			}
		}
		// Availability: forward, all-paths.
		for _, b := range blocks {
			if b == entry {
				avIn[b.ID] = 0
			} else {
				avIn[b.ID] = managed
			}
			avOut[b.ID] = appv[b.ID].Union(avIn[b.ID])
		}
		for changed := true; changed; {
			changed = false
			for _, b := range blocks {
				if b != entry {
					in := managed
					for _, p := range b.Preds {
						in &= avOut[p.ID]
					}
					if in != avIn[b.ID] {
						avIn[b.ID] = in
						changed = true
					}
				}
				out := appv[b.ID].Union(avIn[b.ID])
				if out != avOut[b.ID] {
					avOut[b.ID] = out
					changed = true
				}
			}
		}
	}

	// Range extension (Fig. 2): insertion points must have uniform
	// predecessors (for saves) and successors (for restores); where paths
	// mix "already covered" with "not covered", extend the usage range into
	// the uncovered neighbours instead of splitting edges.
	extendRanges := func() bool {
		changed := false
		for _, b := range blocks {
			// Save side: want to insert where use is anticipated but not
			// available. A predecessor that neither anticipates nor has the
			// use available is an uncovered path; if any other predecessor
			// is covered, extend APP into the uncovered ones.
			need := antIn[b.ID] &^ avIn[b.ID]
			if need != 0 && len(b.Preds) > 0 {
				var covered, uncovered mach.RegSet
				for _, p := range b.Preds {
					cov := antIn[p.ID].Union(avOut[p.ID])
					covered = covered.Union(cov & need)
					uncovered = uncovered.Union(need &^ cov)
				}
				ext := covered & uncovered
				if ext != 0 {
					for _, p := range b.Preds {
						add := ext &^ (antIn[p.ID].Union(avOut[p.ID]))
						if add != 0 {
							appv[p.ID] = appv[p.ID].Union(add)
							changed = true
						}
					}
				}
			}
			// Restore side, symmetric on the reverse graph.
			need = avOut[b.ID] &^ antOut[b.ID]
			if need != 0 && len(b.Succs) > 0 {
				var covered, uncovered mach.RegSet
				for _, s := range b.Succs {
					cov := avOut[s.ID].Union(antIn[s.ID])
					covered = covered.Union(cov & need)
					uncovered = uncovered.Union(need &^ cov)
				}
				ext := covered & uncovered
				if ext != 0 {
					for _, s := range b.Succs {
						add := ext &^ (avOut[s.ID].Union(antIn[s.ID]))
						if add != 0 {
							appv[s.ID] = appv[s.ID].Union(add)
							changed = true
						}
					}
				}
			}
		}
		return changed
	}

	solve()
	for i := 0; i < 4*len(blocks)+8; i++ {
		if !extendRanges() {
			break
		}
		for extendLoops() {
		}
		solve()
	}

	// SAVE (3.5): at entries of blocks where the use is anticipated, not
	// yet available, and not anticipated in any predecessor.
	explainOn := explain.Current() != nil
	for _, b := range blocks {
		save := antIn[b.ID] &^ avIn[b.ID]
		for _, p := range b.Preds {
			save &^= antIn[p.ID].Union(avOut[p.ID])
		}
		save.ForEach(func(r mach.Reg) {
			plan.SaveAt[r] = append(plan.SaveAt[r], b)
			if explainOn {
				why := "eq 3.5: anticipated here, not available, no covered predecessor"
				if !appv[b.ID].Has(r) {
					why += " (hoisted by range extension)"
				}
				plan.saveWhy = noteWhy(plan.saveWhy, r, b, why)
			}
		})
		// RESTORE (3.6): at exits of blocks where the use is available, no
		// longer anticipated, and not available in any successor.
		restore := avOut[b.ID] &^ antOut[b.ID]
		for _, s := range b.Succs {
			restore &^= avOut[s.ID].Union(antIn[s.ID])
		}
		restore.ForEach(func(r mach.Reg) {
			plan.RestoreAt[r] = append(plan.RestoreAt[r], b)
			if explainOn {
				why := "eq 3.6: available at exit, no longer anticipated, no covered successor"
				if !appv[b.ID].Has(r) {
					why += " (sunk by range extension)"
				}
				plan.restoreWhy = noteWhy(plan.restoreWhy, r, b, why)
			}
		})
	}
	return plan
}
