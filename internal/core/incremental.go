package core

import (
	"chow88/internal/callgraph"
	"chow88/internal/ir"
	"chow88/internal/regalloc"
)

// Incremental recompilation hooks. The paper's summary mechanism makes a
// procedure's externally visible interface explicit — its open/closed
// classification plus, when closed, the published register-usage summary
// and argument locations — so a previous build's plans can be replayed
// function by function: seed the oracle with the old summaries, re-plan
// only the invalidated slice, and stop propagating as soon as a re-planned
// procedure's linkage encodes byte-identically to before (the callers saw
// nothing change). internal/incr drives these hooks.

// NewShellPlan builds a ProgramPlan skeleton for incremental recompilation:
// the call graph and oracle are constructed exactly as PlanModule would
// build them, but no function is planned — the incremental driver seeds
// summaries from the previous build and plans only the invalidated slice.
func NewShellPlan(m *ir.Module, mode Mode) *ProgramPlan {
	forceOpen := map[string]bool{}
	for _, n := range mode.ForceOpen {
		forceOpen[n] = true
	}
	g := callgraph.Build(m, forceOpen)
	pp := &ProgramPlan{
		Module: m,
		Graph:  g,
		Mode:   mode,
		Funcs:  map[*ir.Func]*FuncPlan{},
		Order:  g.PostOrder,
	}
	if mode.IPRA {
		pp.Oracle = newIPRAOracle(mode.Config)
	} else {
		pp.Oracle = regalloc.DefaultOracle{Config: mode.Config}
	}
	return pp
}

// SeedSummary publishes a prior build's summary for f without planning it,
// so callers planned later (or reused verbatim) see the same linkage the
// previous build published. A no-op outside IPRA mode.
func (pp *ProgramPlan) SeedSummary(f *ir.Func, s *Summary) {
	if o, ok := pp.Oracle.(*ipraOracle); ok && s != nil {
		o.publish(f, s)
	}
}

// PlanOne (re)plans a single function against the currently published
// summaries: any stale summary of f is withdrawn first, the plan is
// recomputed exactly as PlanModule's sequential walk would, and the fresh
// summary republishes. Panics are contained under Mode.Validate, as in
// Replan.
func (pp *ProgramPlan) PlanOne(f *ir.Func) (*FuncPlan, error) {
	o, _ := pp.Oracle.(*ipraOracle)
	if o != nil {
		o.unpublish(f)
	}
	delete(pp.Funcs, f)
	fp, err := pp.replanOne(f, pp.Mode)
	if err != nil {
		return nil, err
	}
	if fp.Summary != nil && o != nil {
		o.publish(f, fp.Summary)
	}
	pp.Funcs[f] = fp
	return fp, nil
}

// EncodeLinkage flattens one procedure's externally visible linkage into a
// canonical byte string. Two plans with equal encodings are
// interchangeable from every caller's point of view — open procedures all
// share the default linkage (clobber set and argument locations are fixed
// by the register configuration), and closed procedures are characterized
// by their published summary — so equality here is the summary-delta
// cut-off test of incremental recompilation.
func EncodeLinkage(open bool, s *Summary) []byte {
	if open || s == nil {
		return []byte{0}
	}
	buf := make([]byte, 0, 6+3*len(s.Args))
	buf = append(buf, 1,
		byte(s.Used), byte(s.Used>>8), byte(s.Used>>16), byte(s.Used>>24),
		byte(len(s.Args)))
	for _, a := range s.Args {
		if a.InReg {
			buf = append(buf, 1, byte(a.Reg), 0)
		} else {
			buf = append(buf, 0, byte(a.Slot), byte(a.Slot>>8))
		}
	}
	return buf
}
