package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"chow88/internal/check"
	"chow88/internal/core"
	"chow88/internal/front"
	"chow88/internal/ir"
	"chow88/internal/progen"
)

// bruteAffected recomputes Affected from first principles: rediscover the
// direct-call edges by scanning the IR (independently of the callgraph
// package), close the root set over transitive callers with a worklist,
// and order the members bottom-up. It must agree with
// ProgramPlan.Affected exactly — the degradation ladder and the
// incremental driver both trust that slice to cover every plan that
// consumed a root's linkage, and nothing else.
func bruteAffected(pp *core.ProgramPlan, roots []*ir.Func) []*ir.Func {
	callers := map[*ir.Func]map[*ir.Func]bool{}
	for _, f := range pp.Module.Funcs {
		if f.Extern {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					if callers[in.Callee] == nil {
						callers[in.Callee] = map[*ir.Func]bool{}
					}
					callers[in.Callee][f] = true
				}
			}
		}
	}
	in := map[*ir.Func]bool{}
	work := append([]*ir.Func{}, roots...)
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		if in[f] {
			continue
		}
		in[f] = true
		for c := range callers[f] {
			work = append(work, c)
		}
	}
	var out []*ir.Func
	for _, f := range pp.Graph.PostOrder {
		if in[f] && !f.Extern {
			out = append(out, f)
		}
	}
	return out
}

func names(fs []*ir.Func) string {
	s := ""
	for _, f := range fs {
		s += f.Name + " "
	}
	return s
}

// TestAffectedMatchesBruteForce: over randomized progen call graphs,
// Affected of every single root and of random multi-root sets equals the
// brute-force transitive-caller closure, in bottom-up order.
func TestAffectedMatchesBruteForce(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := progen.Generate(seed, progen.DefaultConfig())
			mod, err := front.Build(src, true)
			if err != nil {
				t.Fatal(err)
			}
			pp := core.PlanModule(mod, core.ModeC())

			var defined []*ir.Func
			for _, f := range mod.Funcs {
				if !f.Extern {
					defined = append(defined, f)
				}
			}

			for _, f := range defined {
				got := pp.Affected(f)
				want := bruteAffected(pp, []*ir.Func{f})
				if names(got) != names(want) {
					t.Errorf("Affected(%s):\n got %s\nwant %s", f.Name, names(got), names(want))
				}
			}

			rng := rand.New(rand.NewSource(seed * 7919))
			for trial := 0; trial < 10; trial++ {
				var roots []*ir.Func
				for _, f := range defined {
					if rng.Intn(3) == 0 {
						roots = append(roots, f)
					}
				}
				if len(roots) == 0 {
					continue
				}
				got := pp.Affected(roots...)
				want := bruteAffected(pp, roots)
				if names(got) != names(want) {
					t.Errorf("Affected(%s):\n got %s\nwant %s", names(roots), names(got), names(want))
				}
			}
		})
	}
}

// TestReplanTouchesOnlyAffected: demoting a procedure and replanning its
// Affected slice must leave every other procedure's plan untouched — the
// same *FuncPlan pointers — while the replanned slice gets fresh plans
// that still satisfy the linkage validator. This is the isolation the
// repair path (and the incremental driver's frontier reuse) relies on.
func TestReplanTouchesOnlyAffected(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := progen.Generate(seed, progen.DefaultConfig())
			mod, err := front.Build(src, true)
			if err != nil {
				t.Fatal(err)
			}
			pp := core.PlanModule(mod, core.ModeC())
			if viols := check.Plan(pp); len(viols) != 0 {
				t.Fatalf("clean plan has violations: %v", viols)
			}

			// Victim: the first closed procedure in bottom-up order, so the
			// demotion genuinely changes published linkage.
			var victim *ir.Func
			for _, f := range pp.Graph.PostOrder {
				if !f.Extern && !pp.Graph.Open[f] {
					victim = f
					break
				}
			}
			if victim == nil {
				t.Skip("no closed procedure in this graph")
			}

			before := map[*ir.Func]*core.FuncPlan{}
			for f, fp := range pp.Funcs {
				before[f] = fp
			}

			pp.Demote(victim, "isolation test")
			affected := pp.Affected(victim)
			inSlice := map[*ir.Func]bool{}
			for _, f := range affected {
				inSlice[f] = true
			}
			if err := pp.Replan(affected, nil); err != nil {
				t.Fatal(err)
			}

			for f, old := range before {
				now, ok := pp.Funcs[f]
				if !ok {
					t.Errorf("%s lost its plan", f.Name)
					continue
				}
				if inSlice[f] {
					if now == old {
						t.Errorf("%s is in the affected slice but kept its stale plan", f.Name)
					}
				} else if now != old {
					t.Errorf("%s is outside the affected slice but was replanned", f.Name)
				}
			}
			if !pp.Funcs[victim].Open {
				t.Errorf("replanned victim %s is still closed", victim.Name)
			}
			if viols := check.Plan(pp); len(viols) != 0 {
				t.Errorf("replanned slice violates linkage invariants: %v", viols)
			}
		})
	}
}
