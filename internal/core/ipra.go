package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"chow88/internal/callgraph"
	"chow88/internal/explain"
	"chow88/internal/faultinject"
	"chow88/internal/ir"
	"chow88/internal/mach"
	"chow88/internal/obs"
	"chow88/internal/regalloc"
)

// Mode selects a compilation configuration, mirroring the paper's
// measurement matrix (-O2/-O3 × shrink-wrap × register-set restriction).
type Mode struct {
	Name string
	// IPRA enables one-pass inter-procedural allocation (-O3).
	IPRA bool
	// ShrinkWrap enables optimized save/restore placement (§5).
	ShrinkWrap bool
	// Optimize runs the -O2 scalar optimizer (constant folding, local CSE,
	// copy propagation, dead-code elimination) before allocation.
	Optimize bool
	// Config is the register configuration (full, caller7, callee7).
	Config *mach.Config
	// ForceOpen names procedures to treat as open, simulating separate
	// compilation.
	ForceOpen []string
	// DisableSplitting turns off the live-range splitting round (for
	// ablation; Chow's allocator splits by default).
	DisableSplitting bool
	// Sequential runs the original single-threaded pipeline and bypasses the
	// front-end compile cache: PlanModule walks the call graph one function
	// at a time and codegen emits functions in module order. The default
	// (false) pipeline — wavefront-parallel allocation, parallel per-function
	// codegen, cached front end — produces byte-identical output; this switch
	// exists for differential testing and debugging.
	Sequential bool
	// Validate runs the linkage-invariant validator (internal/check) after
	// planning and after code generation, contains per-function worker
	// panics, and gracefully degrades offending procedures (demotion to the
	// open convention and re-planning of the affected call-graph slice)
	// instead of miscompiling or crashing. The mode constructors enable it;
	// a zero Mode leaves it off.
	Validate bool
	// Strict turns every degradation into a hard error: a validation
	// failure or recovered panic fails the compile instead of demoting (for
	// CI, where a plan that needed repair is itself the bug).
	Strict bool
	// Inline runs the profile-guided procedure integrator (internal/inline)
	// on the module before planning; InlineBudget is its code-growth
	// allowance in percent of the pre-inlining instruction count (0 selects
	// the pass default). Summaries, interference and shrink-wrap placements
	// are then computed on the integrated program.
	Inline       bool
	InlineBudget int
}

// The paper's measurement modes. Base is the baseline of all comparisons:
// -O2 with shrink-wrap disabled.
func ModeBase() Mode {
	return Mode{Name: "O2", Optimize: true, Config: mach.Default(), Validate: true}
}

// ModeA is -O2 with shrink-wrap enabled (Table 1, column A).
func ModeA() Mode {
	return Mode{Name: "O2+sw", Optimize: true, ShrinkWrap: true, Config: mach.Default(), Validate: true}
}

// ModeB is -O3 with shrink-wrap disabled (Table 1, column B).
func ModeB() Mode {
	return Mode{Name: "O3", Optimize: true, IPRA: true, Config: mach.Default(), Validate: true}
}

// ModeC is -O3 with shrink-wrap enabled (Table 1, column C).
func ModeC() Mode {
	return Mode{Name: "O3+sw", Optimize: true, IPRA: true, ShrinkWrap: true, Config: mach.Default(), Validate: true}
}

// ModeD is mode C restricted to 7 caller-saved registers (Table 2, column D).
func ModeD() Mode {
	m := ModeC()
	m.Name = "O3+sw/caller7"
	m.Config = mach.CallerOnly7()
	return m
}

// ModeE is mode C restricted to 7 callee-saved registers (Table 2, column E).
func ModeE() Mode {
	m := ModeC()
	m.Name = "O3+sw/callee7"
	m.Config = mach.CalleeOnly7()
	return m
}

// ModeConv is mode C (the paper's best: -O3 + shrink-wrap) under an
// arbitrary register convention — the mode every swept or hand-specified
// convention compiles under. The configuration is not validated here;
// pipeline.Build validates the mode's Config before planning so an
// incoherent convention fails with its named reason instead of
// miscompiling.
func ModeConv(cfg *mach.Config) Mode {
	m := ModeC()
	m.Name = "O3+sw/" + cfg.Name
	m.Config = cfg
	return m
}

// FuncPlan is the complete allocation decision for one function.
type FuncPlan struct {
	F    *ir.Func
	Open bool
	// OpenReason explains the open classification (empty for closed).
	OpenReason string
	// Alloc is the coloring result.
	Alloc *regalloc.Result
	// Plan places the local saves/restores of callee-saved registers.
	Plan *SavePlan
	// Summary is what callers see; nil for open procedures and outside
	// IPRA mode.
	Summary *Summary
	// TreeUsed is the register usage of the whole call tree rooted here
	// (before subtracting locally saved registers).
	TreeUsed mach.RegSet
}

// ProgramPlan is the allocation of a whole module.
type ProgramPlan struct {
	Module *ir.Module
	Graph  *callgraph.Graph
	Mode   Mode
	Funcs  map[*ir.Func]*FuncPlan
	// Order is the depth-first bottom-up processing order used.
	Order []*ir.Func
	// Oracle answers call-site linkage queries for code generation.
	Oracle regalloc.Oracle
	// Failed records planning-worker panics recovered under Mode.Validate,
	// keyed by function; the pipeline demotes and re-plans these.
	Failed map[*ir.Func]string
	// Inline is the procedure integrator's report when the pipeline ran it
	// before planning; nil otherwise. Attached here so the drivers see the
	// decisions without a second return path through Build.
	Inline *obs.InlineReport

	failedMu sync.Mutex
}

// noteFailure records a recovered planning-worker panic for f.
func (pp *ProgramPlan) noteFailure(f *ir.Func, cause any) {
	pp.failedMu.Lock()
	if pp.Failed == nil {
		pp.Failed = map[*ir.Func]string{}
	}
	pp.Failed[f] = fmt.Sprint(cause)
	pp.failedMu.Unlock()
	obs.Current().Add(obs.CCheckPanics, 1)
}

// PlanModule performs register allocation for every function of m under the
// given mode: one pass over the call graph in bottom-up order, extending
// the intra-procedural priority-based coloring with callee register-usage
// summaries exactly as in §2–§4 and §6 of the paper.
//
// The pass only requires that a function's closed callees be planned before
// the function itself (their summaries are its only cross-function input),
// so by default the call graph is condensed into dependency levels
// (callgraph.Wavefronts) and each level's functions are allocated
// concurrently by a bounded worker pool. Per-function planning is pure given
// the oracle, and summaries publish through the synchronized oracle, so the
// result is byte-identical to the sequential walk (mode.Sequential).
func PlanModule(m *ir.Module, mode Mode) *ProgramPlan {
	forceOpen := map[string]bool{}
	for _, n := range mode.ForceOpen {
		forceOpen[n] = true
	}
	g := callgraph.Build(m, forceOpen)

	pp := &ProgramPlan{
		Module: m,
		Graph:  g,
		Mode:   mode,
		Funcs:  map[*ir.Func]*FuncPlan{},
		Order:  g.PostOrder,
	}
	if j := explain.Current(); j != nil {
		// Journal buckets serialize in module order regardless of which
		// worker records them, which is what makes parallel and sequential
		// explain output byte-identical.
		names := make([]string, 0, len(m.Funcs))
		for _, f := range m.Funcs {
			if !f.Extern {
				names = append(names, f.Name)
			}
		}
		j.SetModuleOrder(names)
	}
	var oracle regalloc.Oracle
	publish := func(*ir.Func, *Summary) {}
	if mode.IPRA {
		o := newIPRAOracle(mode.Config)
		oracle = o
		publish = o.publish
	} else {
		oracle = regalloc.DefaultOracle{Config: mode.Config}
	}
	pp.Oracle = oracle

	plan := func(f *ir.Func) (fp *FuncPlan) {
		if mode.Validate {
			// Contain worker panics: the function is recorded as failed and
			// the pipeline demotes and re-plans it instead of crashing the
			// compile. Its summary is never published, so concurrently
			// planned callers already see the safe default linkage.
			defer func() {
				if r := recover(); r != nil {
					pp.noteFailure(f, r)
					fp = nil
				}
			}()
		}
		fp = planFunc(f, g, mode, oracle)
		if fp.Summary != nil {
			publish(f, fp.Summary)
		}
		return fp
	}

	workers := runtime.GOMAXPROCS(0)
	s := obs.Current()
	if mode.Sequential || workers <= 1 {
		sp := s.Span(obs.PhasePlan, "PlanModule (sequential)")
		for _, f := range g.PostOrder {
			if f.Extern {
				continue
			}
			if fp := plan(f); fp != nil {
				pp.Funcs[f] = fp
			}
		}
		sp.End()
		return pp
	}

	// Wavefront schedule: each level's functions have all their summary
	// inputs published by earlier levels, so they plan concurrently; the
	// level barrier orders publication against the next level's reads.
	levels := g.Wavefronts()
	if !mode.IPRA {
		// Without summaries there are no cross-function inputs at all:
		// every function is independent.
		levels = [][]*ir.Func{g.PostOrder}
	}
	s.SetMax(obs.GPlanWorkers, int64(workers))
	for li, level := range levels {
		var sp obs.Span
		if s != nil {
			s.Add(obs.CPlanLevels, 1)
			s.SetMax(obs.GMaxLevelWidth, int64(len(level)))
			sp = s.Span(obs.PhasePlan, fmt.Sprintf("wavefront %d (%d funcs)", li, len(level)))
		}
		fps := make([]*FuncPlan, len(level))
		runIndexed(len(level), workers, func(i int) {
			if !level[i].Extern {
				fps[i] = plan(level[i])
			}
		})
		for i, f := range level {
			if fps[i] != nil {
				pp.Funcs[f] = fps[i]
			}
		}
		sp.End()
	}
	return pp
}

// runIndexed executes fn(0..n-1) on up to `workers` goroutines, returning
// when all calls complete. Work is handed out through an atomic counter so
// uneven function sizes balance across workers.
func runIndexed(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// planFunc computes the complete allocation decision for one function. It
// mutates only f (live-range splitting rewrites) and consults other
// functions exclusively through the oracle, which is what makes concurrent
// planning of independent functions sound — and, given identical oracle
// answers, deterministic.
func planFunc(f *ir.Func, g *callgraph.Graph, mode Mode, oracle regalloc.Oracle) *FuncPlan {
	faultinject.PanicPlan(f.Name)
	cfg := mode.Config
	open := g.Open[f]
	interMode := mode.IPRA && !open
	j := explain.Current()
	if j != nil {
		cause := g.OpenCause[f]
		if cause == "" {
			cause = callgraph.CauseClosed
		}
		detail := g.OpenReason[f]
		if detail == "" {
			detail = "summary known before every caller is processed (§3)"
		}
		j.Record(f.Name, explain.Decision{
			Kind: explain.KindClassify, Cause: string(cause), Detail: detail,
		})
	}

	// Registers destroyed by the subtrees of this function's calls.
	var childUsed mach.RegSet
	for _, cs := range f.CallSites() {
		childUsed = childUsed.Union(oracle.Clobbered(cs.Instr))
	}

	opts := regalloc.Options{
		Config: cfg,
		Oracle: oracle,
	}
	if interMode {
		opts.Mode = regalloc.Inter
		// Prefer registers already used in the call tree, minimizing
		// the tree's register footprint (Fig. 1).
		opts.Prefer = childUsed
	} else {
		opts.Mode = regalloc.Intra
		opts.ParamIn = regalloc.DefaultArgLocs(cfg, len(f.Params))
		if mode.IPRA {
			// An open procedure must save the callee-saved registers
			// its closed children use without saving; having paid that,
			// it may use them freely itself (§3).
			opts.MustSave = childUsed & cfg.CalleeSaved
		}
	}
	alloc := regalloc.Allocate(f, opts)
	// Live-range splitting (one round): ranges that failed to color are
	// broken into block-local pieces connected through home slots and
	// the function re-colored; the rewrite is kept only if the predicted
	// memory traffic improves.
	if !mode.DisableSplitting && alloc.Spilled > 0 {
		alloc = trySplit(f, alloc, opts, oracle)
	}

	treeUsed := alloc.UsedRegs.Union(childUsed)
	calleeSavedInTree := treeUsed & cfg.CalleeSaved

	fp := &FuncPlan{
		F:          f,
		Open:       open,
		OpenReason: g.OpenReason[f],
		Alloc:      alloc,
		TreeUsed:   treeUsed,
	}

	var localSave mach.RegSet
	if interMode {
		if mode.ShrinkWrap && !calleeSavedInTree.Empty() {
			// §6: keep the save local (shrink-wrapped) when the usage
			// range does not span the whole procedure; propagate to the
			// ancestors when the save would sit at the entry anyway.
			app := regAPP(f, alloc, oracle, calleeSavedInTree)
			p := ShrinkWrap(f, app, calleeSavedInTree)
			calleeSavedInTree.ForEach(func(r mach.Reg) {
				if p.SaveAtEntryOnly(f, r) {
					if j != nil {
						j.Record(f.Name, explain.Decision{
							Kind: explain.KindWrap, Reg: r.String(), Cause: "propagate",
							Cost: float64(f.Entry().Freq()),
							Detail: fmt.Sprintf("§6: only save site is entry %s (cost %.4g per activation); save/restore deferred to ancestors",
								f.Entry().Name, f.Entry().Freq()),
						})
					}
					p.Drop(r)
				} else {
					if j != nil {
						var cost float64
						for _, b := range p.SaveAt[r] {
							cost += b.Freq()
						}
						for _, b := range p.RestoreAt[r] {
							cost += b.Freq()
						}
						j.Record(f.Name, explain.Decision{
							Kind: explain.KindWrap, Reg: r.String(), Cause: "wrap", Cost: cost,
							Detail: fmt.Sprintf("§6: %d save + %d restore site(s) inside the body (cost %.4g) vs entry/exit placement (cost %.4g); kept local, dropped from summary",
								len(p.SaveAt[r]), len(p.RestoreAt[r]), cost, 2*f.Entry().Freq()),
						})
					}
					localSave = localSave.Add(r)
				}
			})
			fp.Plan = p
		} else {
			// Without shrink-wrapping every save/restore propagates up
			// the call graph (§3).
			fp.Plan = NewSavePlan()
		}
		fp.Summary = &Summary{
			Used: treeUsed.Minus(localSave),
			Args: paramLocs(f, alloc),
		}
	} else {
		// Default linkage: this procedure saves every callee-saved
		// register its own body uses, plus (under IPRA) those its
		// closed children use without saving.
		managed := calleeSavedInTree
		if mode.ShrinkWrap && !managed.Empty() {
			app := regAPP(f, alloc, oracle, managed)
			fp.Plan = ShrinkWrap(f, app, managed)
		} else {
			fp.Plan = EntryExitPlan(f, managed)
		}
	}
	if faultinject.Armed() {
		injectFaults(f, fp, cfg)
	}
	if s := obs.Current(); s != nil {
		recordPlanObs(s, fp, cfg)
	}
	if j != nil {
		recordPlanExplain(j, fp, oracle, childUsed, localSave)
	}
	return fp
}

// recordPlanExplain journals the linkage this plan publishes: the negotiated
// linkage at each call site, the register-usage summary with the bits'
// provenance (own body vs callee trees vs locally-saved subtractions), and
// each parameter's negotiated location. Save/restore placements journal at
// codegen time, from the final plan, so demotion rounds never leave stale
// placement records.
func recordPlanExplain(j *explain.Journal, fp *FuncPlan, oracle regalloc.Oracle, childUsed, localSave mach.RegSet) {
	f := fp.F
	ipo, _ := oracle.(*ipraOracle)
	for _, cs := range f.CallSites() {
		callee := "(indirect)"
		if cs.Instr.Op == ir.OpCall {
			callee = cs.Instr.Callee.Name
		}
		cause := "default"
		if ipo != nil && ipo.summary(cs.Instr) != nil {
			cause = "summary"
		}
		j.Record(f.Name, explain.Decision{
			Kind: explain.KindCallSite, Callee: callee, Block: cs.Block.Name,
			Cause: cause, Freq: cs.Block.Freq(),
			Detail: fmt.Sprintf("clobbers %s; args %s", oracle.Clobbered(cs.Instr), argLocString(oracle.ArgLocs(cs.Instr))),
		})
	}
	if fp.Summary != nil {
		j.Record(f.Name, explain.Decision{
			Kind: explain.KindSummary, Cause: "published",
			Detail: fmt.Sprintf("%s (own body %s + callee trees %s - kept local %s)",
				fp.Summary, fp.Alloc.UsedRegs, childUsed, localSave),
		})
		for i, a := range fp.Summary.Args {
			d := explain.Decision{Kind: explain.KindParam}
			if a.InReg {
				d.Reg = a.Reg.String()
				d.Cause = "register"
				d.Detail = fmt.Sprintf("param %d settled in %s; callers deliver it there (§4)", i, a.Reg)
			} else {
				d.Cause = "memory"
				d.Detail = fmt.Sprintf("param %d never colored; callers deliver it through stack slot %d", i, a.Slot)
			}
			j.Record(f.Name, d)
		}
	}
}

// argLocString renders a call's negotiated argument locations compactly.
func argLocString(locs []regalloc.ArgLoc) string {
	if len(locs) == 0 {
		return "[]"
	}
	parts := make([]string, len(locs))
	for i, a := range locs {
		if a.InReg {
			parts[i] = a.Reg.String()
		} else {
			parts[i] = fmt.Sprintf("stack%d", a.Slot)
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// injectFaults applies any armed chaos injection to the freshly built plan,
// before the summary is published: a corrupted summary bit or flipped
// parameter register propagates to every caller that consumes it, and a
// dropped save site leaves a path that destroys a callee-saved register —
// exactly the linkage corruption the validator exists to catch.
func injectFaults(f *ir.Func, fp *FuncPlan, cfg *mach.Config) {
	fired := 0
	if s := fp.Summary; s != nil {
		if used := faultinject.CorruptSummary(f.Name, s.Used); used != s.Used {
			s.Used = used
			fired++
		}
		for i := range s.Args {
			if !s.Args[i].InReg {
				continue
			}
			if wrong, ok := faultinject.FlipParamReg(f.Name, s.Args[i].Reg, cfg.Allocatable()); ok {
				s.Args[i].Reg = wrong
				fired++
			}
			break
		}
	}
	if fp.Plan != nil {
		var victim mach.Reg
		found := false
		fp.Plan.Regs().ForEach(func(r mach.Reg) {
			if !found && len(fp.Plan.SaveAt[r]) > 0 {
				victim, found = r, true
			}
		})
		if found && faultinject.DropSave(f.Name, victim) {
			fp.Plan.SaveAt[victim] = fp.Plan.SaveAt[victim][1:]
			fired++
		}
	}
	if fired > 0 {
		obs.Current().Add(obs.CCheckFaults, int64(fired))
	}
}

// recordPlanObs publishes one function's allocation decision to the
// metrics registry: open/closed outcome, spills, callee-saved registers
// the summary frees for callers, and where the save/restore sites landed
// (shrink-wrapped into the body vs the default entry/exit placement).
func recordPlanObs(s *obs.Session, fp *FuncPlan, cfg *mach.Config) {
	s.Add(obs.CPlanFuncs, 1)
	if fp.Open {
		s.Add(obs.CProcsOpen, 1)
	} else {
		s.Add(obs.CProcsClosed, 1)
	}
	s.Add(obs.CSpilledRanges, int64(fp.Alloc.Spilled))
	if fp.Summary != nil {
		// Callee-saved registers the summary reports unused: callers keep
		// values in them across calls with no save/restore (§2).
		s.Add(obs.CCalleeSavedFreed, int64(cfg.CalleeSaved.Minus(fp.Summary.Used).Count()))
	}
	if fp.Plan == nil {
		return
	}
	var saves, restores, shrunk, entryExit int64
	for _, sites := range fp.Plan.SaveAt {
		saves += int64(len(sites))
	}
	for _, sites := range fp.Plan.RestoreAt {
		restores += int64(len(sites))
	}
	fp.Plan.Regs().ForEach(func(r mach.Reg) {
		if fp.Plan.SaveAtEntryOnly(fp.F, r) {
			entryExit++
		} else {
			shrunk++
		}
	})
	s.Add(obs.CSaveSites, saves)
	s.Add(obs.CRestoreSites, restores)
	s.Add(obs.CShrinkWrapRegs, shrunk)
	s.Add(obs.CEntryExitRegs, entryExit)
}

// paramLocs derives the published parameter locations of a closed procedure
// from its allocation: wherever each parameter temp settled is where callers
// must deliver the argument (§4). Parameters in memory (or never referenced)
// are passed through their incoming stack slots — as are parameters dead at
// entry (redefined on every path before any use): their register's activity
// range starts at the redefinition, so delivering the incoming value into it
// at entry would clobber the register ahead of its (possibly shrink-wrapped,
// mid-body) save. The caller's stack store costs one scalar write and
// touches no register; the callee never reads the slot.
func paramLocs(f *ir.Func, alloc *regalloc.Result) []regalloc.ArgLoc {
	out := make([]regalloc.ArgLoc, len(f.Params))
	for i, p := range f.Params {
		l := alloc.Locs[p.ID]
		if l.Kind == regalloc.LocReg && alloc.Ranges[p.ID].EntryLive {
			out[i] = regalloc.ArgLoc{InReg: true, Reg: l.Reg}
		} else {
			out[i] = regalloc.ArgLoc{Slot: i}
		}
	}
	return out
}
