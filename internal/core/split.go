package core

import (
	"fmt"

	"chow88/internal/explain"
	"chow88/internal/ir"
	"chow88/internal/obs"
	"chow88/internal/regalloc"
)

// funcSnapshot captures enough of a function's IR to undo an in-place
// rewrite: the per-block instruction slices and the instruction values
// themselves (operand substitution mutates instructions in place), plus the
// local-array list length.
type funcSnapshot struct {
	blocks  [][]*ir.Instr
	values  []ir.Instr
	ptrs    []*ir.Instr
	nArrays int
	nTemps  int
}

func snapshotFunc(f *ir.Func) *funcSnapshot {
	s := &funcSnapshot{nArrays: len(f.LocalArrays), nTemps: f.NumTemps()}
	for _, b := range f.Blocks {
		insts := make([]*ir.Instr, len(b.Instrs))
		copy(insts, b.Instrs)
		s.blocks = append(s.blocks, insts)
		for _, in := range b.Instrs {
			s.ptrs = append(s.ptrs, in)
			v := *in
			// The rewrite mutates argument operands in place; the slice
			// header alone would alias the mutated backing array.
			if len(in.Args) > 0 {
				v.Args = append([]ir.Operand(nil), in.Args...)
			}
			s.values = append(s.values, v)
		}
	}
	return s
}

func (s *funcSnapshot) restore(f *ir.Func) {
	for i, b := range f.Blocks {
		b.Instrs = s.blocks[i]
	}
	for i, p := range s.ptrs {
		*p = s.values[i]
	}
	f.LocalArrays = f.LocalArrays[:s.nArrays]
	f.TruncateTemps(s.nTemps)
}

// estimateTraffic predicts the frequency-weighted memory operations the
// generated code will execute under the given allocation: explicit memory
// instructions, operand loads and result stores of memory-resident temps,
// and around-call saves/restores of clobbered live registers. Used to judge
// whether a splitting round actually helped.
func estimateTraffic(f *ir.Func, alloc *regalloc.Result, oracle regalloc.Oracle) float64 {
	total := 0.0
	inMem := func(t *ir.Temp) bool {
		return t != nil && alloc.Locs[t.ID].Kind == regalloc.LocMem
	}
	var buf []*ir.Temp
	for _, b := range f.Blocks {
		freq := b.Freq()
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoadG, ir.OpStoreG, ir.OpLoadIdx, ir.OpStoreIdx:
				total += freq
			}
			buf = in.Uses(buf[:0])
			for _, u := range buf {
				if inMem(u) {
					total += freq
				}
			}
			if inMem(in.Dst) {
				total += freq
			}
		}
	}
	// Around-call saves of live clobbered registers.
	for _, rng := range alloc.Ranges {
		if alloc.Locs[rng.Temp.ID].Kind != regalloc.LocReg {
			continue
		}
		r := alloc.Locs[rng.Temp.ID].Reg
		for _, cs := range rng.Calls {
			if oracle.Clobbered(cs.Instr).Has(r) {
				total += 2 * cs.Block.Freq()
			}
		}
	}
	return total
}

// trySplit runs one live-range splitting round and keeps it only when the
// re-allocation's predicted memory traffic improves; otherwise the function
// is restored and the original allocation returned.
func trySplit(f *ir.Func, alloc *regalloc.Result, opts regalloc.Options, oracle regalloc.Oracle) *regalloc.Result {
	snap := snapshotFunc(f)
	before := estimateTraffic(f, alloc, oracle)
	n := regalloc.SplitSpilled(f, alloc, opts.Config.Allocatable().Count())
	if n == 0 {
		return alloc
	}
	obs.Current().Add(obs.CSplitRounds, 1)
	alloc2 := regalloc.Allocate(f, opts)
	after := estimateTraffic(f, alloc2, oracle)
	kept := after < before
	if j := explain.Current(); j != nil {
		cause := "reverted"
		if kept {
			cause = "kept"
		}
		j.Record(f.Name, explain.Decision{
			Kind: explain.KindSplit, Cause: cause, Cost: after - before,
			Detail: fmt.Sprintf("%d spilled range(s) split into block-local pieces; predicted memory traffic %.4g -> %.4g", n, before, after),
		})
	}
	if kept {
		obs.Current().Add(obs.CSplitKept, 1)
		return alloc2
	}
	snap.restore(f)
	return alloc
}
