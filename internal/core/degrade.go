package core

import (
	"fmt"

	"chow88/internal/callgraph"
	"chow88/internal/ir"
	"chow88/internal/obs"
)

// Graceful degradation (the paper's own escape hatch, §3): an open
// procedure always uses the safe default convention, so a procedure whose
// plan fails validation — or whose planning worker panicked — can be
// demoted to open and re-planned instead of failing or miscompiling the
// module. Demotion invalidates every ancestor whose plan consumed the
// demoted summary; the affected call-graph slice re-plans sequentially in
// bottom-up order, which keeps the repaired module deterministic.

// Demote forces f to the open convention. The caller must Replan the
// affected slice afterwards; until then f's old plan and summary are stale.
func (pp *ProgramPlan) Demote(f *ir.Func, reason string) {
	pp.Graph.Open[f] = true
	pp.Graph.OpenReason[f] = reason
	pp.Graph.OpenCause[f] = callgraph.CauseDemotion
}

// Affected returns the call-graph slice a change to roots invalidates: the
// roots plus every transitive caller (each consumed, directly or through
// intermediate summaries, linkage facts derived from a root). The slice is
// returned in bottom-up (post) order, ready for Replan.
func (pp *ProgramPlan) Affected(roots ...*ir.Func) []*ir.Func {
	in := map[*ir.Func]bool{}
	var visit func(f *ir.Func)
	visit = func(f *ir.Func) {
		if in[f] {
			return
		}
		in[f] = true
		for _, c := range pp.Graph.Callers[f] {
			visit(c)
		}
	}
	for _, f := range roots {
		visit(f)
	}
	out := make([]*ir.Func, 0, len(in))
	for _, f := range pp.Graph.PostOrder {
		if in[f] && !f.Extern {
			out = append(out, f)
		}
	}
	return out
}

// Replan recomputes the plans of fs, which must be closed under the
// caller relation (use Affected) and in bottom-up order. Summaries of every
// function in fs are withdrawn first, so re-planning sees no stale
// linkage; fresh summaries republish as each function completes. Functions
// in noShrinkWrap re-plan with shrink-wrapping disabled (the second rung of
// the degradation ladder). Replanning is sequential: it is the rare repair
// path, and a fixed order keeps the output byte-identical across runs.
func (pp *ProgramPlan) Replan(fs []*ir.Func, noShrinkWrap map[*ir.Func]bool) error {
	o, _ := pp.Oracle.(*ipraOracle)
	for _, f := range fs {
		if o != nil {
			o.unpublish(f)
		}
		delete(pp.Funcs, f)
	}
	s := obs.Current()
	sp := s.Span(obs.PhasePlan, fmt.Sprintf("replan (%d funcs)", len(fs)))
	defer sp.End()
	for _, f := range fs {
		mode := pp.Mode
		if noShrinkWrap[f] {
			mode.ShrinkWrap = false
		}
		fp, err := pp.replanOne(f, mode)
		if err != nil {
			return err
		}
		if fp.Summary != nil && o != nil {
			o.publish(f, fp.Summary)
		}
		pp.Funcs[f] = fp
		s.Add(obs.CCheckReplans, 1)
	}
	return nil
}

// replanOne re-plans a single function, containing panics (a repair that
// panics again is reported as an error, not a crash).
func (pp *ProgramPlan) replanOne(f *ir.Func, mode Mode) (fp *FuncPlan, err error) {
	if mode.Validate {
		defer func() {
			if r := recover(); r != nil {
				obs.Current().Add(obs.CCheckPanics, 1)
				fp, err = nil, fmt.Errorf("replan %s: recovered panic: %v", f.Name, r)
			}
		}()
	}
	return planFunc(f, pp.Graph, mode, pp.Oracle), nil
}
