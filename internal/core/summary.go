// Package core implements the paper's contribution: one-pass
// inter-procedural register allocation driven by a depth-first traversal of
// the call graph (§2–§4, §6), and shrink-wrapping of callee-saved register
// saves/restores (§5). It orchestrates the whole compilation pipeline from
// CW source to executable machine code.
package core

import (
	"fmt"
	"strings"
	"sync"

	"chow88/internal/ir"
	"chow88/internal/mach"
	"chow88/internal/regalloc"
)

// Summary is the register-usage information a closed procedure publishes to
// its callers: one bit per register covering the procedure's entire call
// tree (§2), plus where it expects each incoming parameter (§4).
//
// A register marked used may be destroyed by calling the procedure; a
// register not marked is preserved (either untouched by the whole tree, or
// saved and restored somewhere inside it).
type Summary struct {
	Used mach.RegSet
	Args []regalloc.ArgLoc
}

// String renders the summary for diagnostics.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "used=%s args=[", s.Used)
	for i, a := range s.Args {
		if i > 0 {
			b.WriteString(" ")
		}
		if a.InReg {
			b.WriteString(a.Reg.String())
		} else {
			fmt.Fprintf(&b, "stack%d", a.Slot)
		}
	}
	b.WriteString("]")
	return b.String()
}

// ipraOracle answers per-call-site linkage queries using the summaries of
// already-processed closed procedures, falling back to the default linkage
// for open, extern, and indirect callees (§3: open procedures need not
// specify usage information — all caller-saved registers are assumed used
// and all callee-saved registers preserved).
//
// The oracle is the one cross-function channel of the wavefront-parallel
// pipeline: each worker publishes its function's summary when planning
// completes, and workers of later levels read it. Publication and lookup are
// synchronized; the level barrier guarantees a closed callee's summary is
// published before any of its callers is dispatched, so lookups are never
// stale, only racy without the lock.
type ipraOracle struct {
	cfg       *mach.Config
	mu        sync.RWMutex
	summaries map[*ir.Func]*Summary
}

var _ regalloc.Oracle = (*ipraOracle)(nil)

func newIPRAOracle(cfg *mach.Config) *ipraOracle {
	return &ipraOracle{cfg: cfg, summaries: map[*ir.Func]*Summary{}}
}

// publish records a closed procedure's summary for its callers.
func (o *ipraOracle) publish(f *ir.Func, s *Summary) {
	o.mu.Lock()
	o.summaries[f] = s
	o.mu.Unlock()
}

// unpublish withdraws f's summary (graceful degradation: f is about to be
// demoted or replanned, and callers must fall back to the default linkage
// until a fresh summary is published).
func (o *ipraOracle) unpublish(f *ir.Func) {
	o.mu.Lock()
	delete(o.summaries, f)
	o.mu.Unlock()
}

// summary returns the published summary of a direct call's callee, or nil.
func (o *ipraOracle) summary(call *ir.Instr) *Summary {
	if call.Op != ir.OpCall {
		return nil
	}
	o.mu.RLock()
	s := o.summaries[call.Callee]
	o.mu.RUnlock()
	return s
}

func (o *ipraOracle) defaultClobber() mach.RegSet {
	return o.cfg.CallerSaved.Union(o.cfg.ParamSet())
}

// Clobbered implements regalloc.Oracle.
func (o *ipraOracle) Clobbered(call *ir.Instr) mach.RegSet {
	if s := o.summary(call); s != nil {
		return s.Used
	}
	return o.defaultClobber()
}

// ArgLocs implements regalloc.Oracle.
func (o *ipraOracle) ArgLocs(call *ir.Instr) []regalloc.ArgLoc {
	if s := o.summary(call); s != nil {
		return s.Args
	}
	return regalloc.DefaultArgLocs(o.cfg, len(call.Args))
}
