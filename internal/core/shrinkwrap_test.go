package core

import (
	"fmt"
	"strings"
	"testing"

	"chow88/internal/ir"
	"chow88/internal/lower"
	"chow88/internal/mach"
	"chow88/internal/opt"
	"chow88/internal/parser"
	"chow88/internal/progen"
	"chow88/internal/regalloc"
	"chow88/internal/sema"
)

func moduleFor(t *testing.T, src string) *ir.Module {
	t.Helper()
	tree, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(tree)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	mod, err := lower.Build(info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	opt.Run(mod)
	return mod
}

// checkPlan verifies, by walking every (block, save-state) configuration of
// the CFG, the fundamental shrink-wrap invariants for each managed register:
//   - on any path, the register is saved before the first block where it is
//     active (APP), and never saved twice without an intervening restore;
//   - a restore only happens after a save;
//   - at every exit, the register has been restored iff it was saved.
func checkPlan(t *testing.T, f *ir.Func, plan *SavePlan, app map[*ir.Block]mach.RegSet, managed mach.RegSet) {
	t.Helper()
	saveAt := map[*ir.Block]mach.RegSet{}
	restoreAt := map[*ir.Block]mach.RegSet{}
	for r, blks := range plan.SaveAt {
		for _, b := range blks {
			saveAt[b] = saveAt[b].Add(r)
		}
	}
	for r, blks := range plan.RestoreAt {
		for _, b := range blks {
			restoreAt[b] = restoreAt[b].Add(r)
		}
	}
	managed.ForEach(func(r mach.Reg) {
		type state struct {
			b     *ir.Block
			saved bool
		}
		seen := map[state]bool{}
		var walk func(b *ir.Block, saved bool)
		walk = func(b *ir.Block, saved bool) {
			st := state{b, saved}
			if seen[st] {
				return
			}
			seen[st] = true
			if saveAt[b].Has(r) {
				if saved {
					t.Errorf("%s: %s saved twice on a path through %s", f.Name, r, b.Name)
					return
				}
				saved = true
			}
			if app[b].Has(r) && !saved {
				t.Errorf("%s: %s active in %s without a save on some path", f.Name, r, b.Name)
				return
			}
			atExit := saved
			if restoreAt[b].Has(r) {
				if !saved {
					t.Errorf("%s: %s restored in %s without a save", f.Name, r, b.Name)
					return
				}
				atExit = false
			}
			term := b.Terminator()
			if term != nil && term.Op == ir.OpRet {
				if atExit {
					t.Errorf("%s: %s still saved (unrestored) at exit %s", f.Name, r, b.Name)
				}
				return
			}
			for _, s := range b.Succs {
				walk(s, atExit)
			}
		}
		walk(f.Entry(), false)
	})
}

// planAndCheck runs the shrink-wrap placement for every function of the
// program under mode C and validates the invariants.
func planAndCheck(t *testing.T, src string) {
	t.Helper()
	mod := moduleFor(t, src)
	pp := PlanModule(mod, ModeC())
	for _, f := range mod.Funcs {
		if f.Extern {
			continue
		}
		fp := pp.Funcs[f]
		managed := fp.Plan.Regs()
		if managed.Empty() {
			continue
		}
		app := regAPP(f, fp.Alloc, pp.Oracle, managed)
		// The plan may manage a subset (propagated registers were dropped);
		// check only what it manages.
		checkPlan(t, f, fp.Plan, app, managed)
	}
}

func TestShrinkWrapInvariantsOnPrograms(t *testing.T) {
	srcs := []string{
		`
var g int;
func leaf(v int) int { return v + g; }
func f(c1 int, c2 int) int {
    if (c1 > 0) {
        var x int;
        var a int;
        x = leaf(1);
        a = leaf(x);
        g = g + x + a;
    }
    g = g + 2;
    if (c2 > 0) {
        var w int;
        var b int;
        w = leaf(3);
        b = leaf(w);
        g = g + w + b;
    }
    return g;
}
func main() { print(f(1, 0)); print(f(0, 1)); }`,
		`
var g int;
func leaf(v int) int { return v * 2; }
func loopy(n int) int {
    var s int;
    var i int;
    s = 0;
    for (i = 0; i < n; i = i + 1) {
        s = s + leaf(i);
    }
    return s;
}
func main() { print(loopy(5)); }`,
		`
func self(n int) int {
    if (n <= 0) { return 1; }
    var a int;
    var b int;
    a = self(n - 1);
    b = self(n - 2);
    return a + b;
}
func main() { print(self(6)); }`,
	}
	for i, src := range srcs {
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) { planAndCheck(t, src) })
	}
}

// TestShrinkWrapInvariantsOnRandomPrograms property-checks the placement on
// generated programs under every mode that shrink-wraps.
func TestShrinkWrapInvariantsOnRandomPrograms(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 20
	}
	for seed := 0; seed < n; seed++ {
		src := progen.Generate(int64(seed), progen.DefaultConfig())
		planAndCheck(t, src)
	}
}

// TestShrinkWrapLoopRule: a register used inside a loop must not have its
// save/restore inside that loop.
func TestShrinkWrapLoopRule(t *testing.T) {
	mod := moduleFor(t, `
var g int;
func leaf(v int) int { return v + 1; }
func f(n int) int {
    var i int;
    for (i = 0; i < n; i = i + 1) {
        var x int;
        var y int;
        x = leaf(i);
        y = leaf(x);
        g = g + x + y;
    }
    return g;
}
func main() { print(f(10)); }`)
	pp := PlanModule(mod, ModeA())
	f := mod.Lookup("f")
	fp := pp.Funcs[f]
	if fp.Plan.Regs().Empty() {
		t.Skip("no callee-saved register chosen; nothing to verify")
	}
	for r, blks := range fp.Plan.SaveAt {
		for _, b := range blks {
			if b.LoopDepth > 0 {
				t.Errorf("save of %s placed inside a loop (block %s, depth %d)",
					r, b.Name, b.LoopDepth)
			}
		}
	}
	for r, blks := range fp.Plan.RestoreAt {
		for _, b := range blks {
			if b.LoopDepth > 0 {
				t.Errorf("restore of %s placed inside a loop (block %s, depth %d)",
					r, b.Name, b.LoopDepth)
			}
		}
	}
}

// TestEntryExitPlan covers the unoptimized placement helper.
func TestEntryExitPlan(t *testing.T) {
	mod := moduleFor(t, `
func f(n int) int {
    if (n > 0) { return 1; }
    return 2;
}
func main() { print(f(1)); }`)
	f := mod.Lookup("f")
	regs := mach.SetOf(mach.S0, mach.S3)
	plan := EntryExitPlan(f, regs)
	if !plan.Regs().Has(mach.S0) || !plan.Regs().Has(mach.S3) {
		t.Fatalf("plan regs = %s", plan.Regs())
	}
	if len(plan.SaveAt[mach.S0]) != 1 || plan.SaveAt[mach.S0][0] != f.Entry() {
		t.Errorf("save not at entry: %v", plan.SaveAt[mach.S0])
	}
	if len(plan.RestoreAt[mach.S0]) != len(f.ExitBlocks()) {
		t.Errorf("restores = %v, want one per exit", plan.RestoreAt[mach.S0])
	}
	if !plan.SaveAtEntryOnly(f, mach.S0) {
		t.Errorf("SaveAtEntryOnly should hold")
	}
	plan.Drop(mach.S0)
	if plan.Regs().Has(mach.S0) {
		t.Errorf("drop failed")
	}
}

// TestSectionSixPropagation: in a closed procedure whose register usage
// spans the whole body, the save propagates upward (summary marks the
// register used); usage confined to a branch stays local (summary clear).
func TestSectionSixPropagation(t *testing.T) {
	mod := moduleFor(t, `
var g int;
// leaf is self-recursive, hence open: calls to it clobber every
// caller-saved register, so values live across them need callee-saved
// registers — making the §6 decision observable.
func leaf(v int) int {
    if (v <= 0) { return g; }
    return leaf(v - 1) + 1;
}

// whole: x spans the entire procedure including both calls.
func whole(p int) int {
    var x int;
    var m int;
    x = p * 3;
    m = leaf(x);
    m = m + leaf(m);
    return m + x;
}

// partial: y is active only in the conditional arm.
func partial(p int) int {
    if (p > 0) {
        var y int;
        var z int;
        y = leaf(p);
        z = leaf(y);
        g = g + y + z;
    }
    return g;
}

func main() {
    print(whole(2));
    print(partial(1));
    print(partial(-1));
}`)
	pp := PlanModule(mod, ModeC())
	cfg := ModeC().Config

	whole := pp.Funcs[mod.Lookup("whole")]
	if whole.Open {
		t.Fatal("whole should be closed")
	}
	wholeCalleeSaved := whole.Alloc.UsedRegs & cfg.CalleeSaved
	if wholeCalleeSaved.Empty() {
		t.Fatalf("whole should use a callee-saved register; used %s", whole.Alloc.UsedRegs)
	}
	wholeCalleeSaved.ForEach(func(r mach.Reg) {
		if !whole.Summary.Used.Has(r) {
			t.Errorf("whole: %s spans the body; §6 should propagate it (summary %s)", r, whole.Summary)
		}
		if len(whole.Plan.SaveAt[r]) != 0 {
			t.Errorf("whole: %s should not be saved locally", r)
		}
	})

	partial := pp.Funcs[mod.Lookup("partial")]
	partialCalleeSaved := partial.Alloc.UsedRegs & cfg.CalleeSaved
	if partialCalleeSaved.Empty() {
		t.Fatalf("partial should use a callee-saved register; used %s", partial.Alloc.UsedRegs)
	}
	partialCalleeSaved.ForEach(func(r mach.Reg) {
		if partial.Summary.Used.Has(r) {
			t.Errorf("partial: %s is branch-confined; §6 should wrap it locally (summary %s)", r, partial.Summary)
		}
		if len(partial.Plan.SaveAt[r]) == 0 {
			t.Errorf("partial: %s needs a local save", r)
		}
		for _, b := range partial.Plan.SaveAt[r] {
			if b == partial.F.Entry() {
				t.Errorf("partial: %s saved at entry; should be inside the arm", r)
			}
		}
	})
}

// TestOpenProceduresSaveChildUsage: an open procedure must save the
// callee-saved registers its closed children use without saving (§3).
func TestOpenProceduresSaveChildUsage(t *testing.T) {
	mod := moduleFor(t, `
var g int;
// leaf is open (self-recursive) so its callers need callee-saved registers
// for values live across the calls.
func leaf(v int) int {
    if (v <= 0) { return g; }
    return leaf(v - 1) + 1;
}

// child is closed and keeps a value in a callee-saved register across the
// whole body, so the save propagates upward.
func child(p int) int {
    var x int;
    var m int;
    x = p + 1;
    m = leaf(x);
    m = m + leaf(m + x);
    return m + x;
}

func driver(n int) int {
    if (n <= 0) { return 0; }
    return child(n) + driver(n - 1);
}

func main() { print(driver(3)); }`)
	pp := PlanModule(mod, ModeC())
	cfg := ModeC().Config

	child := pp.Funcs[mod.Lookup("child")]
	if child.Open {
		t.Fatal("child should be closed")
	}
	propagated := child.Summary.Used & cfg.CalleeSaved
	if propagated.Empty() {
		t.Fatalf("child should propagate a callee-saved register; summary %s", child.Summary)
	}

	driver := pp.Funcs[mod.Lookup("driver")]
	if !driver.Open {
		t.Fatal("driver is recursive; must be open")
	}
	propagated.ForEach(func(r mach.Reg) {
		if len(driver.Plan.SaveAt[r]) == 0 {
			t.Errorf("driver must save %s for its closed child (plan regs %s)", r, driver.Plan.Regs())
		}
	})
}

// TestSummaryMergesChildUsage: a closed parent's summary covers its whole
// call tree.
func TestSummaryMergesChildUsage(t *testing.T) {
	mod := moduleFor(t, `
func bottom(x int) int { return x * 3 + 1; }
func mid(x int) int { return bottom(x) + bottom(x + 1); }
func top(x int) int { return mid(x) * 2; }
func main() { print(top(5)); }`)
	pp := PlanModule(mod, ModeC())
	bottom := pp.Funcs[mod.Lookup("bottom")]
	mid := pp.Funcs[mod.Lookup("mid")]
	top := pp.Funcs[mod.Lookup("top")]
	for _, fp := range []*FuncPlan{bottom, mid, top} {
		if fp.Open {
			t.Fatalf("%s should be closed", fp.F.Name)
		}
	}
	if bottom.Summary.Used&^mid.Summary.Used != 0 {
		t.Errorf("mid's summary %s must include bottom's %s", mid.Summary.Used, bottom.Summary.Used)
	}
	if mid.Summary.Used&^top.Summary.Used != 0 {
		t.Errorf("top's summary %s must include mid's %s", top.Summary.Used, mid.Summary.Used)
	}
}

// TestParameterNegotiation: a closed callee publishes where it wants its
// parameters; there is no fixed convention under IPRA.
func TestParameterNegotiation(t *testing.T) {
	mod := moduleFor(t, `
func addmul(a int, b int, c int) int { return a * b + c; }
func main() { print(addmul(2, 3, 4)); }`)
	pp := PlanModule(mod, ModeC())
	fp := pp.Funcs[mod.Lookup("addmul")]
	if fp.Open {
		t.Fatal("addmul should be closed")
	}
	if len(fp.Summary.Args) != 3 {
		t.Fatalf("args = %v", fp.Summary.Args)
	}
	seen := map[string]bool{}
	for i, a := range fp.Summary.Args {
		if !a.InReg {
			t.Errorf("arg %d spilled unnecessarily", i)
			continue
		}
		key := a.Reg.String()
		if seen[key] {
			t.Errorf("two parameters share %s", key)
		}
		seen[key] = true
	}
}

// TestModeNames sanity-checks the measurement-mode constructors.
func TestModeNames(t *testing.T) {
	for _, m := range []Mode{ModeBase(), ModeA(), ModeB(), ModeC(), ModeD(), ModeE()} {
		if m.Name == "" || m.Config == nil {
			t.Errorf("bad mode %+v", m)
		}
	}
	if ModeBase().IPRA || ModeBase().ShrinkWrap {
		t.Error("base must be plain -O2")
	}
	if !ModeC().IPRA || !ModeC().ShrinkWrap {
		t.Error("C must enable both techniques")
	}
	if ModeD().Config.CalleeSaved.Count() != 0 || ModeD().Config.CallerSaved.Count() != 7 {
		t.Error("D must be 7 caller-saved only")
	}
	if ModeE().Config.CallerSaved.Count() != 0 || ModeE().Config.CalleeSaved.Count() != 7 {
		t.Error("E must be 7 callee-saved only")
	}
}

// TestSummaryString covers the diagnostic rendering.
func TestSummaryString(t *testing.T) {
	s := &Summary{
		Used: mach.SetOf(mach.V1, mach.S0),
		Args: []regalloc.ArgLoc{
			{InReg: true, Reg: mach.V1},
			{Slot: 1},
		},
	}
	out := s.String()
	if !strings.Contains(out, "$v1") || !strings.Contains(out, "stack1") {
		t.Errorf("summary string = %s", out)
	}
}
