package callgraph

import (
	"testing"

	"chow88/internal/ir"
	"chow88/internal/lower"
	"chow88/internal/parser"
	"chow88/internal/sema"
)

func buildGraph(t *testing.T, src string, forceOpen ...string) (*ir.Module, *Graph) {
	t.Helper()
	tree, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(tree)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	mod, err := lower.Build(info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	fo := map[string]bool{}
	for _, n := range forceOpen {
		fo[n] = true
	}
	return mod, Build(mod, fo)
}

const chainSrc = `
func leaf(x int) int { return x + 1; }
func mid(x int) int { return leaf(x) * 2; }
func top(x int) int { return mid(x) + leaf(x); }
func main() { print(top(3)); }`

func TestClosedChain(t *testing.T) {
	mod, g := buildGraph(t, chainSrc)
	for _, name := range []string{"leaf", "mid", "top"} {
		if g.Open[mod.Lookup(name)] {
			t.Errorf("%s should be closed: %s", name, g.OpenReason[mod.Lookup(name)])
		}
	}
	if !g.Open[mod.Lookup("main")] {
		t.Error("main must be open")
	}
}

func TestPostOrderBottomUp(t *testing.T) {
	mod, g := buildGraph(t, chainSrc)
	pos := map[string]int{}
	for i, f := range g.PostOrder {
		pos[f.Name] = i
	}
	if !(pos["leaf"] < pos["mid"] && pos["mid"] < pos["top"] && pos["top"] < pos["main"]) {
		t.Errorf("order not bottom-up: %v", pos)
	}
	_ = mod
}

func TestSelfRecursionIsOpen(t *testing.T) {
	mod, g := buildGraph(t, `
func f(n int) int { if (n <= 0) { return 0; } return f(n - 1); }
func main() { print(f(3)); }`)
	if !g.Open[mod.Lookup("f")] {
		t.Error("self-recursive f must be open")
	}
	if !g.InCycle[mod.Lookup("f")] {
		t.Error("f is in a cycle")
	}
}

func TestMutualRecursionIsOpen(t *testing.T) {
	mod, g := buildGraph(t, `
func even(n int) int { if (n == 0) { return 1; } return odd(n - 1); }
func odd(n int) int { if (n == 0) { return 0; } return even(n - 1); }
func helper(x int) int { return x * 2; }
func main() { print(even(4) + helper(1)); }`)
	if !g.Open[mod.Lookup("even")] || !g.Open[mod.Lookup("odd")] {
		t.Error("mutually recursive pair must be open")
	}
	if g.Open[mod.Lookup("helper")] {
		t.Error("helper is not recursive")
	}
}

func TestAddressTakenIsOpen(t *testing.T) {
	mod, g := buildGraph(t, `
var fp func(int) int;
func target(x int) int { return x; }
func caller(x int) int { return fp(x); }
func main() { fp = target; print(caller(1)); }`)
	if !g.Open[mod.Lookup("target")] {
		t.Error("address-taken target must be open")
	}
	if g.Open[mod.Lookup("caller")] {
		t.Error("caller merely contains an indirect call; it stays closed")
	}
	if !g.HasIndirect[mod.Lookup("caller")] {
		t.Error("caller has an indirect call site")
	}
}

func TestExternIsOpen(t *testing.T) {
	mod, g := buildGraph(t, `
extern func lib(x int) int;
func wrapper(x int) int { return x * 2; }
func main() { print(wrapper(1)); }`)
	if !g.Open[mod.Lookup("lib")] {
		t.Error("extern must be open")
	}
	if g.OpenReason[mod.Lookup("lib")] != "extern" {
		t.Errorf("reason: %s", g.OpenReason[mod.Lookup("lib")])
	}
}

func TestForceOpen(t *testing.T) {
	mod, g := buildGraph(t, chainSrc, "mid")
	if !g.Open[mod.Lookup("mid")] {
		t.Error("mid was forced open")
	}
	if g.Open[mod.Lookup("leaf")] {
		t.Error("leaf should stay closed")
	}
}

func TestHeight(t *testing.T) {
	mod, g := buildGraph(t, chainSrc)
	if h := g.Height(mod.Lookup("leaf")); h != 1 {
		t.Errorf("height(leaf) = %d", h)
	}
	if h := g.Height(mod.Lookup("top")); h != 3 {
		t.Errorf("height(top) = %d", h)
	}
	if h := g.Height(mod.Lookup("main")); h != 4 {
		t.Errorf("height(main) = %d", h)
	}
}

func TestHeightWithCycle(t *testing.T) {
	mod, g := buildGraph(t, `
func a(n int) int { if (n <= 0) { return 0; } return b(n - 1); }
func b(n int) int { if (n <= 0) { return 1; } return a(n - 1); }
func main() { print(a(4)); }`)
	if h := g.Height(mod.Lookup("main")); h < 2 {
		t.Errorf("height(main) = %d; cycle must not make it degenerate", h)
	}
}

func TestOpenNames(t *testing.T) {
	_, g := buildGraph(t, chainSrc)
	names := g.OpenNames()
	if len(names) != 1 || names[0] != "main" {
		t.Errorf("open names = %v", names)
	}
}

// checkWavefronts validates the structural invariants of any wavefront
// partition: it is a permutation of PostOrder, and every closed callee sits
// in a strictly earlier level than its caller.
func checkWavefronts(t *testing.T, g *Graph) map[*ir.Func]int {
	t.Helper()
	fronts := g.Wavefronts()
	level := map[*ir.Func]int{}
	count := 0
	for l, fs := range fronts {
		if len(fs) == 0 {
			t.Errorf("level %d is empty", l)
		}
		for _, f := range fs {
			if _, dup := level[f]; dup {
				t.Errorf("%s appears twice", f.Name)
			}
			level[f] = l
			count++
		}
	}
	if count != len(g.PostOrder) {
		t.Errorf("wavefronts cover %d functions, PostOrder has %d", count, len(g.PostOrder))
	}
	for _, f := range g.PostOrder {
		for _, c := range g.Callees[f] {
			if c.Extern || c == f || g.Open[c] {
				continue
			}
			if level[c] >= level[f] {
				t.Errorf("closed callee %s (level %d) not before caller %s (level %d)",
					c.Name, level[c], f.Name, level[f])
			}
		}
	}
	return level
}

func TestWavefrontsChain(t *testing.T) {
	mod, g := buildGraph(t, chainSrc)
	level := checkWavefronts(t, g)
	// leaf < mid < top < main, and a pure chain forces four levels.
	want := map[string]int{"leaf": 0, "mid": 1, "top": 2, "main": 3}
	for name, l := range want {
		if got := level[mod.Lookup(name)]; got != l {
			t.Errorf("level(%s) = %d, want %d", name, got, l)
		}
	}
}

func TestWavefrontsWideGraph(t *testing.T) {
	// Many independent leaves under one root must collapse into two levels:
	// that is the parallelism the wavefront scheduler exploits.
	src := `
func l0(x int) int { return x + 0; }
func l1(x int) int { return x + 1; }
func l2(x int) int { return x + 2; }
func l3(x int) int { return x + 3; }
func main() { print(l0(1) + l1(2) + l2(3) + l3(4)); }`
	mod, g := buildGraph(t, src)
	level := checkWavefronts(t, g)
	for _, name := range []string{"l0", "l1", "l2", "l3"} {
		if got := level[mod.Lookup(name)]; got != 0 {
			t.Errorf("level(%s) = %d, want 0", name, got)
		}
	}
	if got := level[mod.Lookup("main")]; got != 1 {
		t.Errorf("level(main) = %d, want 1", got)
	}
}

func TestWavefrontsCycleMembersShareNoOrdering(t *testing.T) {
	mod, g := buildGraph(t, `
func even(n int) int { if (n == 0) { return 1; } return odd(n - 1); }
func odd(n int) int { if (n == 0) { return 0; } return even(n - 1); }
func helper(x int) int { return x * 2; }
func main() { print(even(4) + helper(1)); }`)
	level := checkWavefronts(t, g)
	// The cycle members are open; only the intra-cycle back edge is exempt
	// from ordering, so the pair still levels consistently below main.
	if level[mod.Lookup("even")] >= level[mod.Lookup("main")] ||
		level[mod.Lookup("odd")] >= level[mod.Lookup("main")] {
		t.Errorf("cycle members must still precede their caller: %v", level)
	}
	if got := level[mod.Lookup("helper")]; got != 0 {
		t.Errorf("level(helper) = %d, want 0", got)
	}
}

func TestDeadFunctionStillProcessed(t *testing.T) {
	mod, g := buildGraph(t, `
func unreached(x int) int { return x; }
func main() { print(1); }`)
	found := false
	for _, f := range g.PostOrder {
		if f == mod.Lookup("unreached") {
			found = true
		}
	}
	if !found {
		t.Error("dead functions must still appear in the processing order")
	}
}
