// Package callgraph builds the program call graph, classifies procedures as
// open or closed, and produces the depth-first bottom-up processing order
// that the one-pass inter-procedural allocator requires.
//
// A procedure is open (§3 of the paper) when its register usage cannot be
// propagated to all of its callers before they are processed:
//   - main (called by the operating system),
//   - extern procedures (separate compilation),
//   - address-taken procedures (indirect-call candidates),
//   - members of call-graph cycles, including self-recursion,
//   - procedures explicitly forced open (simulating separate compilation).
//
// Every other procedure is closed: by the time any caller is processed, the
// procedure's exact register-usage summary is known.
package callgraph

import (
	"sort"

	"chow88/internal/ir"
)

// Cause is the machine-matchable enum behind an open/closed verdict; the
// explain journal and explaindiff key on it (OpenReason keeps the prose).
type Cause string

// The classification causes. CauseDemotion is assigned after Build, by the
// pipeline's degradation ladder, when it forces a procedure open.
const (
	CauseClosed    Cause = "closed"
	CauseMain      Cause = "main"
	CauseExtern    Cause = "extern"
	CauseAddrTaken Cause = "addr-taken"
	CauseCycle     Cause = "cycle"
	CauseForceOpen Cause = "force-open"
	CauseDemotion  Cause = "demotion"
)

// Graph is the analyzed call graph.
type Graph struct {
	M *ir.Module
	// Callees lists the distinct direct callees of each function, in first-
	// call order.
	Callees map[*ir.Func][]*ir.Func
	// Callers is the reverse relation.
	Callers map[*ir.Func][]*ir.Func
	// HasIndirect marks functions containing indirect call sites.
	HasIndirect map[*ir.Func]bool
	// Open marks open procedures.
	Open map[*ir.Func]bool
	// OpenReason explains why a procedure is open (diagnostics).
	OpenReason map[*ir.Func]string
	// OpenCause is OpenReason's enum form (CauseClosed when absent/closed).
	OpenCause map[*ir.Func]Cause
	// PostOrder is the bottom-up processing order: every closed procedure
	// appears before all of its callers.
	PostOrder []*ir.Func
	// InCycle marks members of nontrivial SCCs or self-loops.
	InCycle map[*ir.Func]bool
}

// Build analyzes m. Functions named in forceOpen are treated as open, which
// models separate compilation of the rest of the program.
func Build(m *ir.Module, forceOpen map[string]bool) *Graph {
	g := &Graph{
		M:           m,
		Callees:     map[*ir.Func][]*ir.Func{},
		Callers:     map[*ir.Func][]*ir.Func{},
		HasIndirect: map[*ir.Func]bool{},
		Open:        map[*ir.Func]bool{},
		OpenReason:  map[*ir.Func]string{},
		OpenCause:   map[*ir.Func]Cause{},
		InCycle:     map[*ir.Func]bool{},
	}
	for _, f := range m.Funcs {
		if f.Extern {
			continue
		}
		seen := map[*ir.Func]bool{}
		for _, cs := range f.CallSites() {
			switch cs.Instr.Op {
			case ir.OpCall:
				callee := cs.Instr.Callee
				if !seen[callee] {
					seen[callee] = true
					g.Callees[f] = append(g.Callees[f], callee)
					g.Callers[callee] = append(g.Callers[callee], f)
				}
			case ir.OpCallInd:
				g.HasIndirect[f] = true
			}
		}
	}

	g.findCycles()

	markOpen := func(f *ir.Func, cause Cause, reason string) {
		if !g.Open[f] {
			g.Open[f] = true
			g.OpenReason[f] = reason
			g.OpenCause[f] = cause
		}
	}
	for _, f := range m.Funcs {
		switch {
		case f.Extern:
			markOpen(f, CauseExtern, "extern")
		case f.Name == "main":
			markOpen(f, CauseMain, "main (called by the operating system)")
		case f.AddressTaken:
			markOpen(f, CauseAddrTaken, "address taken (indirect-call candidate)")
		case g.InCycle[f]:
			markOpen(f, CauseCycle, "recursive (call-graph cycle)")
		case forceOpen[f.Name]:
			markOpen(f, CauseForceOpen, "forced open (separate compilation)")
		}
	}

	g.computePostOrder()
	return g
}

// findCycles runs Tarjan's SCC algorithm over direct-call edges and marks
// members of nontrivial components and self-recursive functions.
func (g *Graph) findCycles() {
	index := map[*ir.Func]int{}
	low := map[*ir.Func]int{}
	onStack := map[*ir.Func]bool{}
	var stack []*ir.Func
	next := 0

	var strongconnect func(f *ir.Func)
	strongconnect = func(f *ir.Func) {
		index[f] = next
		low[f] = next
		next++
		stack = append(stack, f)
		onStack[f] = true
		for _, c := range g.Callees[f] {
			if c.Extern {
				continue
			}
			if _, seen := index[c]; !seen {
				strongconnect(c)
				if low[c] < low[f] {
					low[f] = low[c]
				}
			} else if onStack[c] && index[c] < low[f] {
				low[f] = index[c]
			}
		}
		if low[f] == index[f] {
			var scc []*ir.Func
			for {
				n := len(stack) - 1
				v := stack[n]
				stack = stack[:n]
				onStack[v] = false
				scc = append(scc, v)
				if v == f {
					break
				}
			}
			if len(scc) > 1 {
				for _, v := range scc {
					g.InCycle[v] = true
				}
			}
		}
	}
	for _, f := range g.M.Funcs {
		if f.Extern {
			continue
		}
		if _, seen := index[f]; !seen {
			strongconnect(f)
		}
		// Self-recursion: a self edge is a cycle even in a singleton SCC.
		for _, c := range g.Callees[f] {
			if c == f {
				g.InCycle[f] = true
			}
		}
	}
}

// computePostOrder emits a depth-first postorder over direct-call edges,
// rooted at main, then at remaining unvisited functions (address-taken
// roots, dead functions) in declaration order. Cycles are broken at the
// first revisited node; their members are open, so ordering within a cycle
// does not matter.
func (g *Graph) computePostOrder() {
	visited := map[*ir.Func]bool{}
	var order []*ir.Func
	var dfs func(f *ir.Func)
	dfs = func(f *ir.Func) {
		visited[f] = true
		for _, c := range g.Callees[f] {
			if !visited[c] && !c.Extern {
				dfs(c)
			}
		}
		order = append(order, f)
	}
	if main := g.M.Lookup("main"); main != nil && !main.Extern {
		dfs(main)
	}
	for _, f := range g.M.Funcs {
		if !f.Extern && !visited[f] {
			dfs(f)
		}
	}
	g.PostOrder = order
}

// Wavefronts partitions the non-extern functions into dependency levels for
// parallel bottom-up allocation: every callee of a function that could
// publish a register-usage summary (in particular every closed callee)
// appears in a strictly earlier level, so that when a level is dispatched,
// all summaries its members may consult are already published. Intra-cycle
// edges impose no ordering — cycle members are open and never publish.
//
// Within a level, functions appear in PostOrder position, and the
// concatenation of all levels is a permutation of PostOrder, so a scheduler
// that drains levels front to back visits a valid bottom-up order.
func (g *Graph) Wavefronts() [][]*ir.Func {
	level := make(map[*ir.Func]int, len(g.PostOrder))
	max := -1
	for _, f := range g.PostOrder {
		l := 0
		for _, c := range g.Callees[f] {
			if c == f || c.Extern {
				continue
			}
			// A callee with no level yet appears later in PostOrder, which
			// only happens when the edge is a DFS back edge: f and c share a
			// cycle, both are open, and no ordering is required.
			if lc, ok := level[c]; ok && lc+1 > l {
				l = lc + 1
			}
		}
		level[f] = l
		if l > max {
			max = l
		}
	}
	fronts := make([][]*ir.Func, max+1)
	for _, f := range g.PostOrder {
		fronts[level[f]] = append(fronts[level[f]], f)
	}
	return fronts
}

// Height returns the call-graph height from f: 1 for a leaf, following
// direct edges only and treating back edges as leaves. The paper identifies
// height as the parameter governing register exhaustion.
func (g *Graph) Height(f *ir.Func) int {
	memo := map[*ir.Func]int{}
	onPath := map[*ir.Func]bool{}
	var walk func(f *ir.Func) int
	walk = func(f *ir.Func) int {
		if h, ok := memo[f]; ok {
			return h
		}
		if onPath[f] {
			return 0
		}
		onPath[f] = true
		h := 0
		for _, c := range g.Callees[f] {
			if c.Extern {
				continue
			}
			if ch := walk(c); ch > h {
				h = ch
			}
		}
		onPath[f] = false
		memo[f] = h + 1
		return h + 1
	}
	return walk(f)
}

// OpenNames returns the sorted names of open procedures (diagnostics).
func (g *Graph) OpenNames() []string {
	var names []string
	for f, open := range g.Open {
		if open {
			names = append(names, f.Name)
		}
	}
	sort.Strings(names)
	return names
}
