package benchprog

// nim: recursive game-tree search for the game of Nim (three heaps, normal
// play), plus a played-out game against the optimal strategy. Very
// call-intensive with tiny leaf procedures, like the paper's nim
// (43 cycles/call).
const srcNim = `
// nim - play the game of Nim with three heaps.
var wins int;
var losses int;
var probes int;

func max2(a int, b int) int {
    if (a > b) { return a; }
    return b;
}

func min2(a int, b int) int {
    if (a < b) { return a; }
    return b;
}

func isZero(a int, b int, c int) int {
    return a == 0 && b == 0 && c == 0;
}

func note(win int) int {
    if (win == 1) { wins = wins + 1; } else { losses = losses + 1; }
    return win;
}

// winning returns 1 when the position (a,b,c) with the current player to
// move is a first-player win under normal play.
func winning(a int, b int, c int) int {
    probes = probes + 1;
    if (isZero(a, b, c)) { return note(0); }
    var k int;
    for (k = 1; k <= a; k = k + 1) {
        if (!winning(a - k, b, c)) { return note(1); }
    }
    for (k = 1; k <= b; k = k + 1) {
        if (!winning(a, b - k, c)) { return note(1); }
    }
    for (k = 1; k <= c; k = k + 1) {
        if (!winning(a, b, c - k)) { return note(1); }
    }
    return note(0);
}

// xorHeaps computes the nim-sum without bitwise operators.
func xorBit(a int, b int, bit int) int {
    var x int;
    var y int;
    x = (a / bit) % 2;
    y = (b / bit) % 2;
    if (x != y) { return bit; }
    return 0;
}

func nimXor(a int, b int) int {
    var s int;
    var bit int;
    s = 0;
    for (bit = 1; bit <= 8; bit = bit * 2) {
        s = s + xorBit(a, b, bit);
    }
    return s;
}

var mvA int;
var mvB int;
var mvC int;

// bestMove finds an optimal move from (a,b,c), storing the new position.
func bestMove(a int, b int, c int) int {
    var k int;
    for (k = 1; k <= a; k = k + 1) {
        if (nimXor(nimXor(a - k, b), c) == 0) { mvA = a - k; mvB = b; mvC = c; return 1; }
    }
    for (k = 1; k <= b; k = k + 1) {
        if (nimXor(nimXor(a, b - k), c) == 0) { mvA = a; mvB = b - k; mvC = c; return 1; }
    }
    for (k = 1; k <= c; k = k + 1) {
        if (nimXor(nimXor(a, b), c - k) == 0) { mvA = a; mvB = b; mvC = c - k; return 1; }
    }
    // Losing position: take one from the biggest heap.
    if (a >= b && a >= c) { mvA = a - 1; mvB = b; mvC = c; return 0; }
    if (b >= a && b >= c) { mvA = a; mvB = b - 1; mvC = c; return 0; }
    mvA = a; mvB = b; mvC = c - 1;
    return 0;
}

// playGame plays both sides optimally from (a,b,c); returns the number of
// moves made.
func playGame(a int, b int, c int) int {
    var moves int;
    moves = 0;
    while (!isZero(a, b, c)) {
        bestMove(a, b, c);
        a = mvA; b = mvB; c = mvC;
        moves = moves + 1;
    }
    return moves;
}

// tournament plays many games from systematically varied positions,
// keeping its running totals in locals across the long call chains.
func tournament(limit int) int {
    var a int;
    var total int;
    var checks int;
    total = 0;
    checks = 0;
    for (a = 1; a <= limit; a = a + 1) {
        var b int;
        for (b = 1; b <= limit; b = b + 1) {
            var c int;
            for (c = 1; c <= limit; c = c + 1) {
                var moves int;
                var theory int;
                moves = playGame(a, b, c);
                theory = nimXor(nimXor(a, b), c);
                if (theory == 0) { checks = checks + 1; }
                total = total + moves * 3 + max2(a, min2(b, c)) + checks;
            }
        }
    }
    return total;
}

func main() {
    var a int;
    var b int;
    // Solve all positions up to (3,3,3) by brute force.
    for (a = 0; a <= 3; a = a + 1) {
        for (b = 0; b <= 3; b = b + 1) {
            var c int;
            for (c = 0; c <= 3; c = c + 1) {
                var w int;
                w = winning(a, b, c);
                // Cross-check against nim-sum theory.
                if (w != (nimXor(nimXor(a, b), c) != 0)) { print(-999); }
            }
        }
    }
    print(wins);
    print(losses);
    print(probes);
    print(playGame(7, 11, 13));
    print(tournament(9));
}
`

// map: backtracking 4-coloring of a planar map (a fixed 17-region adjacency
// graph), counting solutions (capped) and search nodes.
const srcMap = `
// map - find 4-colorings of a map by backtracking.
var adj [289]int;   // 17 x 17 adjacency matrix
var color [17]int;
var regions int;
var nodes int;
var solutions int;
var firstSig int;
var solutionCap int;

func setAdj(i int, j int) {
    adj[i * 17 + j] = 1;
    adj[j * 17 + i] = 1;
}

// ring builds a cycle of n regions starting at base.
func ring(base int, n int) {
    var i int;
    for (i = 0; i < n; i = i + 1) {
        setAdj(base + i, base + ((i + 1) % n));
    }
}

func buildMap() {
    regions = 17;
    // Hub-and-ring structure: center 0, inner ring 1..8, outer 9..16,
    // with spokes and diagonal braces.
    var i int;
    for (i = 1; i <= 8; i = i + 1) { setAdj(0, i); }
    ring(1, 8);
    ring(9, 8);
    for (i = 0; i < 8; i = i + 1) { setAdj(1 + i, 9 + i); }
    for (i = 0; i < 8; i = i + 1) { setAdj(1 + i, 9 + ((i + 1) % 8)); }
}

// okColor checks whether region r may take color c.
func okColor(r int, c int) int {
    var j int;
    for (j = 0; j < r; j = j + 1) {
        if (adj[r * 17 + j] == 1 && color[j] == c) { return 0; }
    }
    return 1;
}

// signature folds the first solution's colors into one value.
func signature() int {
    var s int;
    var i int;
    s = 0;
    for (i = 0; i < regions; i = i + 1) { s = s * 4 + color[i]; }
    return s % 1000000007;
}

// tryRegion extends a partial coloring to region r, stopping at the
// solution cap.
func tryRegion(r int) {
    if (solutions >= solutionCap) { return; }
    nodes = nodes + 1;
    if (r == regions) {
        solutions = solutions + 1;
        if (solutions == 1) { firstSig = signature(); }
        return;
    }
    var c int;
    var limit int;
    limit = 4;
    if (r == 0) { limit = 1; }    // fix the first color: mod out symmetry
    for (c = 0; c < limit; c = c + 1) {
        if (okColor(r, c)) {
            color[r] = c;
            tryRegion(r + 1);
            color[r] = -1;
        }
    }
}

func countEdges() int {
    var n int;
    var i int;
    var nn int;
    n = 0;
    nn = regions * regions;
    for (i = 0; i < nn; i = i + 1) { n = n + adj[i]; }
    return n / 2;
}

// --- verification phase: iterative, closed-call-intensive ---

func adjacent(i int, j int) int { return adj[i * 17 + j]; }

func colorOf(i int) int { return color[i]; }

func conflictsAt(r int) int {
    var j int;
    var n int;
    n = 0;
    for (j = 0; j < 17; j = j + 1) {
        if (j != r && adjacent(r, j) == 1 && colorOf(j) == colorOf(r)) {
            n = n + 1;
        }
    }
    return n;
}

func scoreColoring() int {
    var r int;
    var bad int;
    var score int;
    bad = 0;
    score = 0;
    for (r = 0; r < 17; r = r + 1) {
        bad = bad + conflictsAt(r);
        score = score * 4 + colorOf(r);
        score = score % 1000000007;
    }
    return score + bad * 1000000;
}

// greedyColor colors the map greedily (first legal color), iteratively.
func greedyColor() int {
    var r int;
    var recolored int;
    recolored = 0;
    for (r = 0; r < 17; r = r + 1) {
        var c int;
        for (c = 0; c < 4; c = c + 1) {
            if (okColor(r, c)) {
                color[r] = c;
                recolored = recolored + 1;
                c = 4;
            }
        }
    }
    return recolored;
}

func main() {
    buildMap();
    var i int;
    for (i = 0; i < 17; i = i + 1) { color[i] = -1; }
    solutionCap = 1500;
    print(countEdges());
    tryRegion(0);
    print(solutions);
    print(nodes);
    print(firstSig);

    // Re-color greedily many times (resetting between rounds) and verify;
    // this phase is iterative and dominated by calls to closed helpers.
    var round int;
    var sig int;
    sig = 0;
    for (round = 0; round < 60; round = round + 1) {
        for (i = 0; i < 17; i = i + 1) { color[i] = -1; }
        color[0] = round % 4;
        sig = (sig * 31 + greedyColor() + scoreColoring()) % 1000000007;
    }
    print(sig);
}
`

// calcc: variable-length string manipulation over a string heap — the
// paper's calcc manipulates dynamic strings. Strings are length-prefixed
// int sequences in a global pool; a small calculator parses and evaluates
// textual expressions.
const srcCalcc = `
// calcc - dynamic variable-length string manipulation and a string
// calculator. A string is a pool offset; pool[s] is the length.
var pool [4096]int;
var poolTop int;

func newStr() int {
    var s int;
    s = poolTop;
    pool[s] = 0;
    poolTop = poolTop + 1;
    return s;
}

func strLen(s int) int { return pool[s]; }
func strAt(s int, i int) int { return pool[s + 1 + i]; }

func pushChar(s int, c int) {
    // Only valid for the most recently created string.
    pool[s + 1 + pool[s]] = c;
    pool[s] = pool[s] + 1;
    poolTop = poolTop + 1;
}

// concat makes a fresh string holding a ++ b.
func concat(a int, b int) int {
    var s int;
    var i int;
    s = newStr();
    for (i = 0; i < strLen(a); i = i + 1) { pushChar(s, strAt(a, i)); }
    for (i = 0; i < strLen(b); i = i + 1) { pushChar(s, strAt(b, i)); }
    return s;
}

// reverse makes a fresh reversed copy.
func reverse(a int) int {
    var s int;
    var i int;
    s = newStr();
    for (i = strLen(a) - 1; i >= 0; i = i - 1) { pushChar(s, strAt(a, i)); }
    return s;
}

// cmp compares lexicographically: -1, 0, 1.
func cmp(a int, b int) int {
    var i int;
    var n int;
    n = strLen(a);
    if (strLen(b) < n) { n = strLen(b); }
    for (i = 0; i < n; i = i + 1) {
        if (strAt(a, i) < strAt(b, i)) { return -1; }
        if (strAt(a, i) > strAt(b, i)) { return 1; }
    }
    if (strLen(a) < strLen(b)) { return -1; }
    if (strLen(a) > strLen(b)) { return 1; }
    return 0;
}

func hash(a int) int {
    var h int;
    var i int;
    h = 5381;
    for (i = 0; i < strLen(a); i = i + 1) {
        h = (h * 33 + strAt(a, i)) % 1000000007;
    }
    return h;
}

// itoa renders a nonnegative number as a digit string.
func itoa(v int) int {
    var s int;
    var r int;
    s = newStr();
    if (v == 0) { pushChar(s, 48); return s; }
    r = newStr();
    while (v > 0) {
        pushChar(r, 48 + v % 10);
        v = v / 10;
    }
    return reverse(r);
}

// atoi parses a digit string.
func atoi(s int) int {
    var v int;
    var i int;
    v = 0;
    for (i = 0; i < strLen(s); i = i + 1) {
        v = v * 10 + (strAt(s, i) - 48);
    }
    return v;
}

// calc evaluates "a op b" written as a string: digits, one of +-*, digits.
func calc(e int) int {
    var i int;
    var lhs int;
    var op int;
    var rhs int;
    lhs = 0;
    i = 0;
    while (i < strLen(e) && strAt(e, i) >= 48 && strAt(e, i) <= 57) {
        lhs = lhs * 10 + (strAt(e, i) - 48);
        i = i + 1;
    }
    op = strAt(e, i);
    i = i + 1;
    rhs = 0;
    while (i < strLen(e)) {
        rhs = rhs * 10 + (strAt(e, i) - 48);
        i = i + 1;
    }
    if (op == 43) { return lhs + rhs; }
    if (op == 45) { return lhs - rhs; }
    return lhs * rhs;
}

// buildExpr makes the string "<a> <op> <b>" (without spaces).
func buildExpr(a int, op int, b int) int {
    var s int;
    var t int;
    s = itoa(a);
    t = newStr();
    pushChar(t, op);
    return concat(concat(s, t), itoa(b));
}

// indexOf finds the first occurrence of needle in hay (naive search).
func indexOf(hay int, needle int) int {
    var i int;
    var j int;
    var n int;
    var m int;
    n = strLen(hay);
    m = strLen(needle);
    for (i = 0; i + m <= n; i = i + 1) {
        var ok int;
        ok = 1;
        for (j = 0; j < m; j = j + 1) {
            if (strAt(hay, i + j) != strAt(needle, j)) { ok = 0; j = m; }
        }
        if (ok) { return i; }
    }
    return -1;
}

// rle run-length encodes a string into a fresh one: pairs (count, char).
func rle(a int) int {
    var s int;
    var i int;
    var n int;
    s = newStr();
    n = strLen(a);
    i = 0;
    while (i < n) {
        var c int;
        var run int;
        c = strAt(a, i);
        run = 1;
        while (i + run < n && strAt(a, i + run) == c) { run = run + 1; }
        pushChar(s, 48 + run % 10);
        pushChar(s, c);
        i = i + run;
    }
    return s;
}

func main() {
    var total int;
    var i int;
    total = 0;
    for (i = 1; i <= 40; i = i + 1) {
        var e int;
        e = buildExpr(i * 7, 43, i * 3);        // +
        total = total + calc(e);
        e = buildExpr(i * 11, 45, i);           // -
        total = total + calc(e);
        e = buildExpr(i, 42, i + 1);            // *
        total = total + calc(e);
        poolTop = 0;                            // reset the heap
    }
    print(total);

    // String algebra checks.
    var a int;
    var b int;
    a = itoa(12345);
    b = itoa(678);
    print(cmp(a, b));
    print(cmp(a, a));
    print(atoi(concat(a, b)));
    print(atoi(reverse(a)));
    print(hash(concat(b, reverse(a))));

    // Sort ten numeric strings by repeated minimum using cmp.
    var keys [10]int;
    for (i = 0; i < 10; i = i + 1) {
        keys[i] = itoa(((i * 37) % 11) * 13 + i);
    }
    var pass int;
    for (pass = 0; pass < 9; pass = pass + 1) {
        for (i = 0; i < 9; i = i + 1) {
            if (cmp(keys[i], keys[i + 1]) > 0) {
                var t2 int;
                t2 = keys[i];
                keys[i] = keys[i + 1];
                keys[i + 1] = t2;
            }
        }
    }
    var sig int;
    sig = 0;
    for (i = 0; i < 10; i = i + 1) { sig = (sig * 131 + atoi(keys[i])) % 1000000007; }
    print(sig);

    // Substring search and run-length coding over generated strings.
    var hay int;
    var needle int;
    hay = concat(itoa(123123123), itoa(456456));
    needle = itoa(23);
    print(indexOf(hay, needle));
    print(indexOf(hay, itoa(999)));
    var searchSig int;
    searchSig = 0;
    for (i = 1; i <= 25; i = i + 1) {
        var h int;
        h = concat(itoa(i * 111), itoa(i * 7));
        searchSig = (searchSig * 31 + indexOf(h, itoa(i)) + 2) % 1000000007;
    }
    print(searchSig);
    print(hash(rle(concat(itoa(11122333), itoa(4445555)))));
}
`

// diff: file comparison via the classic longest-common-subsequence dynamic
// program plus hunk extraction, on two synthesized integer "files".
const srcDiff = `
// diff - compare two files of lines (lines are hashed ints).
var fileA [64]int;
var fileB [64]int;
var lenA int;
var lenB int;
var lcs [4225]int;    // (64+1) x (64+1) DP table
var outSig int;

func lineHash(doc int, n int) int {
    // Deterministic pseudo-line content.
    return (doc * 31 + n * n * 7 + n * 13) % 97;
}

func buildFiles() {
    var i int;
    lenA = 60;
    lenB = 58;
    for (i = 0; i < lenA; i = i + 1) { fileA[i] = lineHash(1, i); }
    // B: same as A but with edits: delete 5..9, change 20..24, insert at 40.
    var j int;
    j = 0;
    for (i = 0; i < lenA; i = i + 1) {
        if (i >= 5 && i < 10) { continue; }
        if (i >= 20 && i < 25) {
            fileB[j] = lineHash(2, i);
            j = j + 1;
            continue;
        }
        if (i == 40) {
            fileB[j] = lineHash(3, 0);
            j = j + 1;
            if (j >= 58) { break; }
            fileB[j] = lineHash(3, 1);
            j = j + 1;
        }
        if (j >= 58) { break; }
        fileB[j] = fileA[i];
        j = j + 1;
        if (j >= 58) { break; }
    }
    lenB = j;
}

func idx(i int, j int) int { return i * 65 + j; }

func lineEq(i int, j int) int { return fileA[i] == fileB[j]; }

func maxv(a int, b int) int {
    if (a > b) { return a; }
    return b;
}

// buildLCS fills the DP table bottom-up. The bounds live in locals and the
// cell recurrence goes through small helper calls, as a real diff would
// factor its line comparison.
func buildLCS() {
    var i int;
    var j int;
    var na int;
    var nb int;
    na = lenA;
    nb = lenB;
    for (i = na - 1; i >= 0; i = i - 1) {
        for (j = nb - 1; j >= 0; j = j - 1) {
            if (lineEq(i, j)) {
                lcs[idx(i, j)] = lcs[idx(i + 1, j + 1)] + 1;
            } else {
                lcs[idx(i, j)] = maxv(lcs[idx(i + 1, j)], lcs[idx(i, j + 1)]);
            }
        }
    }
}

func emit(sig int, kind int, a int, b int) int {
    return (sig * 131 + kind * 7 + a * 31 + b) % 1000000007;
}

// walk traces the LCS emitting edit operations (1=del, 2=ins, 3=keep).
// Its cursor and signature state stays in locals, live across every call.
func walk() int {
    var i int;
    var j int;
    var na int;
    var nb int;
    var edits int;
    var sig int;
    i = 0;
    j = 0;
    na = lenA;
    nb = lenB;
    edits = 0;
    sig = outSig;
    while (i < na && j < nb) {
        if (lineEq(i, j)) {
            sig = emit(sig, 3, i, j);
            i = i + 1;
            j = j + 1;
        } else if (lcs[idx(i + 1, j)] >= lcs[idx(i, j + 1)]) {
            sig = emit(sig, 1, i, 0);
            i = i + 1;
            edits = edits + 1;
        } else {
            sig = emit(sig, 2, 0, j);
            j = j + 1;
            edits = edits + 1;
        }
    }
    while (i < na) { sig = emit(sig, 1, i, 0); i = i + 1; edits = edits + 1; }
    while (j < nb) { sig = emit(sig, 2, 0, j); j = j + 1; edits = edits + 1; }
    outSig = sig;
    return edits;
}

func main() {
    var round int;
    for (round = 0; round < 4; round = round + 1) {
        buildFiles();
        // Perturb B a little more each round.
        var k int;
        for (k = 0; k < round * 3; k = k + 1) {
            fileB[(k * 17) % lenB] = lineHash(4, k + round);
        }
        buildLCS();
        print(lcs[idx(0, 0)]);
        print(walk());
    }
    print(outSig);
}
`
