package benchprog

// tex: the paragraph-building kernel of a typesetter — glue/box model,
// greedy and best-fit line breaking with badness and demerits, like the
// inner loop of virtex.
const srcTex = `
// tex - paragraph builder: boxes, glue, penalties, line breaking.
// Item kinds: 1 box(width), 2 glue(width,stretch,shrink), 3 penalty(cost).
var itemKind [1200]int;
var itemW [1200]int;
var itemStretch [1200]int;
var itemShrink [1200]int;
var itemPenalty [1200]int;
var nitems int;

var lineWidth int;
var sig int;
var totalDemerits int;
var linesOut int;

func addBox(w int) {
    itemKind[nitems] = 1;
    itemW[nitems] = w;
    nitems = nitems + 1;
}

func addGlue(w int, st int, sh int) {
    itemKind[nitems] = 2;
    itemW[nitems] = w;
    itemStretch[nitems] = st;
    itemShrink[nitems] = sh;
    nitems = nitems + 1;
}

func addPenalty(p int) {
    itemKind[nitems] = 3;
    itemPenalty[nitems] = p;
    nitems = nitems + 1;
}

// wordWidth returns a deterministic "word" width in points*10.
func wordWidth(n int) int {
    return 30 + ((n * n * 7 + n * 13) % 60);
}

func genParagraph(words int, seed int) {
    var i int;
    nitems = 0;
    for (i = 0; i < words; i = i + 1) {
        addBox(wordWidth(i + seed));
        if (i % 11 == 10) { addPenalty(50); }
        addGlue(10, 5, 3);
    }
    addPenalty(-10000);    // forced break at the end
}

func abs(x int) int {
    if (x < 0) { return -x; }
    return x;
}

func min2(a int, b int) int {
    if (a < b) { return a; }
    return b;
}

// badness rates how far a line's natural width is from the target, scaled
// by available stretch/shrink (a simplified cube-free model).
func badness(natural int, stretch int, shrink int) int {
    var d int;
    d = lineWidth - natural;
    if (d == 0) { return 0; }
    if (d > 0) {
        if (stretch <= 0) { return 10000; }
        return min2(10000, (d * 100) / stretch);
    }
    if (shrink <= 0) { return 10000; }
    return min2(10000, ((-d) * 100) / shrink);
}

// lineDemerits combines badness and penalty.
func lineDemerits(bad int, pen int) int {
    var base int;
    base = (10 + bad) * (10 + bad);
    if (pen > 0) { return base + pen * pen; }
    if (pen > -10000 && pen < 0) { return base - pen * pen; }
    return base;
}

// breakAfter reports whether a legal breakpoint follows item i.
func breakAfter(i int) int {
    if (itemKind[i] == 2) { return 1; }
    if (itemKind[i] == 3 && itemPenalty[i] < 10000) { return 1; }
    return 0;
}

func penaltyAt(i int) int {
    if (itemKind[i] == 3) { return itemPenalty[i]; }
    return 0;
}

// greedyBreak walks items accumulating width, breaking at the last legal
// point that fits, emitting each line's badness into the signature.
func greedyBreak() {
    var i int;
    var natural int;
    var stretch int;
    var shrink int;
    var lastBreak int;
    var lineStart int;
    linesOut = 0;
    totalDemerits = 0;
    i = 0;
    lineStart = 0;
    natural = 0;
    stretch = 0;
    shrink = 0;
    lastBreak = -1;
    while (i < nitems) {
        if (itemKind[i] == 1) {
            natural = natural + itemW[i];
        }
        if (itemKind[i] == 2) {
            natural = natural + itemW[i];
            stretch = stretch + itemStretch[i];
            shrink = shrink + itemShrink[i];
        }
        var force int;
        force = itemKind[i] == 3 && itemPenalty[i] <= -10000;
        if (natural > lineWidth + shrink || force) {
            var end int;
            end = lastBreak;
            if (end < lineStart || force) { end = i; }
            emitLine(lineStart, end);
            lineStart = end + 1;
            i = lineStart;
            natural = 0;
            stretch = 0;
            shrink = 0;
            lastBreak = -1;
            continue;
        }
        if (breakAfter(i)) { lastBreak = i; }
        i = i + 1;
    }
    if (lineStart < nitems) { emitLine(lineStart, nitems - 1); }
}

// emitLine measures items [from..to] and accumulates demerits.
func emitLine(from int, to int) {
    var natural int;
    var stretch int;
    var shrink int;
    var k int;
    natural = 0;
    stretch = 0;
    shrink = 0;
    for (k = from; k <= to; k = k + 1) {
        if (itemKind[k] == 1) { natural = natural + itemW[k]; }
        if (itemKind[k] == 2 && k != to) {
            natural = natural + itemW[k];
            stretch = stretch + itemStretch[k];
            shrink = shrink + itemShrink[k];
        }
    }
    var bad int;
    bad = badness(natural, stretch, shrink);
    totalDemerits = totalDemerits + lineDemerits(bad, penaltyAt(to));
    linesOut = linesOut + 1;
    sig = (sig * 131 + bad * 7 + (to - from)) % 1000000007;
}

// bestFit: dynamic program over breakpoints minimizing total demerits.
var bestCost [1300]int;
var bestFrom [1300]int;

func fitCost(from int, to int) int {
    var natural int;
    var stretch int;
    var shrink int;
    var k int;
    natural = 0;
    stretch = 0;
    shrink = 0;
    for (k = from; k <= to; k = k + 1) {
        if (itemKind[k] == 1) { natural = natural + itemW[k]; }
        if (itemKind[k] == 2 && k != to) {
            natural = natural + itemW[k];
            stretch = stretch + itemStretch[k];
            shrink = shrink + itemShrink[k];
        }
    }
    var bad int;
    bad = badness(natural, stretch, shrink);
    if (bad >= 10000) { return 100000000; }
    return lineDemerits(bad, penaltyAt(to));
}

func bestBreak() int {
    var i int;
    var j int;
    bestCost[0] = 0;
    for (i = 1; i <= nitems; i = i + 1) { bestCost[i] = 1000000000; }
    for (i = 0; i < nitems; i = i + 1) {
        if (bestCost[i] >= 1000000000) { continue; }
        for (j = i; j < nitems && j < i + 40; j = j + 1) {
            if (breakAfter(j) || j == nitems - 1) {
                var c int;
                c = fitCost(i, j);
                if (c < 100000000 && bestCost[i] + c < bestCost[j + 1]) {
                    bestCost[j + 1] = bestCost[i] + c;
                    bestFrom[j + 1] = i;
                }
            }
        }
    }
    return bestCost[nitems] % 1000000007;
}

// --- page building: break the stream of typeset lines into pages ---
var lineHeights [400]int;
var nlines int;

// recordLineHeights synthesizes heights for the lines the greedy pass made
// (a real TeX carries them over; the shapes match).
func recordLineHeights(seed int) {
    var i int;
    nlines = linesOut;
    if (nlines > 400) { nlines = 400; }
    for (i = 0; i < nlines; i = i + 1) {
        lineHeights[i] = 12 + ((i * seed + i * i) % 5);
        if (i % 17 == 16) { lineHeights[i] = lineHeights[i] + 14; }  // display
    }
}

func pageCost(height int, goal int) int {
    var d int;
    d = goal - height;
    if (d < 0) { return 10000; }
    return d * d / 4;
}

// buildPages greedily fills pages to a goal height, charging badness for
// underfull pages; returns the number of pages and folds costs into sig.
func buildPages(goal int) int {
    var i int;
    var h int;
    var pages int;
    var cost int;
    h = 0;
    pages = 0;
    cost = 0;
    for (i = 0; i < nlines; i = i + 1) {
        if (h + lineHeights[i] > goal) {
            cost = cost + pageCost(h, goal);
            pages = pages + 1;
            h = 0;
        }
        h = h + lineHeights[i];
    }
    if (h > 0) {
        pages = pages + 1;
        cost = cost + pageCost(h, goal);
    }
    sig = (sig * 31 + cost + pages) % 1000000007;
    return pages;
}

func runPar(words int, seed int, width int) {
    genParagraph(words, seed);
    lineWidth = width;
    sig = 0;
    greedyBreak();
    print(linesOut);
    print(totalDemerits % 1000000007);
    print(sig);
    print(bestBreak());
    recordLineHeights(seed);
    print(buildPages(120));
    print(buildPages(200));
    print(sig);
}

func main() {
    runPar(160, 3, 340);
    runPar(280, 17, 260);
    runPar(420, 8, 420);
}
`

// ccom: the expression-compiler pass of a C compiler — a lexer over an
// encoded character stream, a recursive-descent expression parser building
// trees, constant folding, and stack-machine code emission. The upper region
// of the call graph (the driver loop) executes most often, reproducing the
// property the paper blames for ccom's regression under IPRA.
const srcCcom = `
// ccom - expression compiler: lex, parse, fold, emit.
var input [3000]int;
var ninput int;
var ipos int;

// Token state.
var tok int;        // 1 num, 2 ident, 3 + , 4 -, 5 *, 6 /, 7 (, 8 ), 0 eof
var tokVal int;

// Tree nodes.
var nodeOp [2000]int;    // 0 leaf-num, 1 leaf-var, 3..6 binops
var nodeVal [2000]int;
var nodeL [2000]int;
var nodeR [2000]int;
var nnodes int;

// Output "code".
var codeSig int;
var ninstr int;

// Symbol table: 26 one-letter variables with values.
var symVal [26]int;

func isDigit(c int) int { return c >= 48 && c <= 57; }
func isAlpha(c int) int { return c >= 97 && c <= 122; }

func nextTok() {
    while (ipos < ninput && input[ipos] == 32) { ipos = ipos + 1; }
    if (ipos >= ninput) { tok = 0; return; }
    var c int;
    c = input[ipos];
    if (isDigit(c)) {
        tokVal = 0;
        while (ipos < ninput && isDigit(input[ipos])) {
            tokVal = tokVal * 10 + (input[ipos] - 48);
            ipos = ipos + 1;
        }
        tok = 1;
        return;
    }
    if (isAlpha(c)) {
        tokVal = c - 97;
        ipos = ipos + 1;
        tok = 2;
        return;
    }
    ipos = ipos + 1;
    if (c == 43) { tok = 3; return; }
    if (c == 45) { tok = 4; return; }
    if (c == 42) { tok = 5; return; }
    if (c == 47) { tok = 6; return; }
    if (c == 40) { tok = 7; return; }
    if (c == 41) { tok = 8; return; }
    tok = 0;
}

func newNode(op int, val int, l int, r int) int {
    var n int;
    n = nnodes;
    nnodes = nnodes + 1;
    nodeOp[n] = op;
    nodeVal[n] = val;
    nodeL[n] = l;
    nodeR[n] = r;
    return n;
}

// primary := num | ident | ( expr )
func parsePrimary() int {
    if (tok == 1) {
        var n int;
        n = newNode(0, tokVal, -1, -1);
        nextTok();
        return n;
    }
    if (tok == 2) {
        var n2 int;
        n2 = newNode(1, tokVal, -1, -1);
        nextTok();
        return n2;
    }
    if (tok == 7) {
        nextTok();
        var e int;
        e = parseExpr();
        nextTok();    // consume )
        return e;
    }
    return newNode(0, 0, -1, -1);
}

// term := primary (('*'|'/') primary)*
func parseTerm() int {
    var l int;
    l = parsePrimary();
    while (tok == 5 || tok == 6) {
        var op int;
        op = tok;
        nextTok();
        var r int;
        r = parsePrimary();
        l = newNode(op, 0, l, r);
    }
    return l;
}

// expr := term (('+'|'-') term)*
func parseExpr() int {
    var l int;
    l = parseTerm();
    while (tok == 3 || tok == 4) {
        var op int;
        op = tok;
        nextTok();
        var r int;
        r = parseTerm();
        l = newNode(op, 0, l, r);
    }
    return l;
}

func applyOp(op int, a int, b int) int {
    if (op == 3) { return a + b; }
    if (op == 4) { return a - b; }
    if (op == 5) { return a * b; }
    if (b == 0) { return 0; }
    return a / b;
}

// fold performs constant folding bottom-up, returning the (possibly new)
// node index.
func fold(n int) int {
    if (nodeOp[n] == 0 || nodeOp[n] == 1) { return n; }
    var l int;
    var r int;
    l = fold(nodeL[n]);
    r = fold(nodeR[n]);
    nodeL[n] = l;
    nodeR[n] = r;
    if (nodeOp[l] == 0 && nodeOp[r] == 0) {
        return newNode(0, applyOp(nodeOp[n], nodeVal[l], nodeVal[r]), -1, -1);
    }
    // x*1, x+0 identities.
    if (nodeOp[n] == 5 && nodeOp[r] == 0 && nodeVal[r] == 1) { return l; }
    if (nodeOp[n] == 3 && nodeOp[r] == 0 && nodeVal[r] == 0) { return l; }
    return n;
}

func emitInstr(op int, val int) {
    ninstr = ninstr + 1;
    codeSig = (codeSig * 37 + op * 11 + val) % 1000000007;
}

// gen emits stack-machine code for the tree.
func gen(n int) {
    if (nodeOp[n] == 0) {
        emitInstr(1, nodeVal[n]);    // pushi
        return;
    }
    if (nodeOp[n] == 1) {
        emitInstr(2, nodeVal[n]);    // pushv
        return;
    }
    gen(nodeL[n]);
    gen(nodeR[n]);
    emitInstr(nodeOp[n], 0);
}

// eval interprets the tree directly, for checking the generated code.
func eval(n int) int {
    if (nodeOp[n] == 0) { return nodeVal[n]; }
    if (nodeOp[n] == 1) { return symVal[nodeVal[n]]; }
    return applyOp(nodeOp[n], eval(nodeL[n]), eval(nodeR[n]));
}

// genExprSource appends a random expression in text form to the input.
var genSeed int;

func rnd(n int) int {
    genSeed = (genSeed * 1309 + 13849) % 65536;
    return genSeed % n;
}

func putCh(c int) {
    input[ninput] = c;
    ninput = ninput + 1;
}

func putNumber(v int) {
    if (v >= 10) { putCh(48 + (v / 10) % 10); }
    putCh(48 + v % 10);
}

// putExpr writes a parenthesized random expression of given depth.
func putExpr(depth int) {
    if (depth <= 0 || rnd(4) == 0) {
        if (rnd(3) == 0) {
            putCh(97 + rnd(26));
        } else {
            putNumber(rnd(90) + 1);
        }
        return;
    }
    putCh(40);
    putExpr(depth - 1);
    var op int;
    op = rnd(4);
    if (op == 0) { putCh(43); }
    if (op == 1) { putCh(45); }
    if (op == 2) { putCh(42); }
    if (op == 3) { putCh(47); }
    putExpr(depth - 1);
    putCh(41);
}

// --- common-subexpression detection by hash-consing ---
var cseHash [128]int;      // chained hash heads, -1 terminated
var cseNext [2000]int;
var cseHits int;

func nodeKey(n int) int {
    var k int;
    k = nodeOp[n] * 1000003 + nodeVal[n] * 8191 + nodeL[n] * 127 + nodeR[n];
    k = k % 128;
    if (k < 0) { k = k + 128; }
    return k;
}

func sameNode(a int, b int) int {
    return nodeOp[a] == nodeOp[b] && nodeVal[a] == nodeVal[b]
        && nodeL[a] == nodeL[b] && nodeR[a] == nodeR[b];
}

// cse rewrites the tree bottom-up, sharing structurally identical subtrees;
// returns the canonical node.
func cse(n int) int {
    if (nodeOp[n] >= 3) {
        nodeL[n] = cse(nodeL[n]);
        nodeR[n] = cse(nodeR[n]);
    }
    var h int;
    h = nodeKey(n);
    var c int;
    c = cseHash[h];
    while (c != -1) {
        if (sameNode(c, n)) {
            cseHits = cseHits + 1;
            return c;
        }
        c = cseNext[c];
    }
    cseNext[n] = cseHash[h];
    cseHash[h] = n;
    return n;
}

func resetCSE() {
    var i int;
    for (i = 0; i < 128; i = i + 1) { cseHash[i] = -1; }
}

func compileOne() int {
    nnodes = 0;
    nextTok();
    var root int;
    root = parseExpr();
    var v1 int;
    v1 = eval(root);
    root = fold(root);
    var v2 int;
    v2 = eval(root);
    if (v1 != v2) { print(-777777); }
    resetCSE();
    root = cse(root);
    var v3 int;
    v3 = eval(root);
    if (v1 != v3) { print(-888888); }
    gen(root);
    return v2;
}

func main() {
    var i int;
    for (i = 0; i < 26; i = i + 1) { symVal[i] = (i * 7) % 23 + 1; }
    genSeed = 42;
    var total int;
    total = 0;
    var round int;
    for (round = 0; round < 60; round = round + 1) {
        ninput = 0;
        ipos = 0;
        putExpr(4);
        total = (total + compileOne()) % 1000000007;
    }
    print(total);
    print(ninstr);
    print(codeSig);
    print(cseHits);
}
`

// as1: a two-pass assembler — instruction stream with labels and forward
// references, a chained hash symbol table, relocation, and a simple
// reorganizer that fills "delay slots" by swapping independent instructions
// (the original as1 was the MIPS assembler/reorganizer).
const srcAs1 = `
// as1 - two-pass assembler and reorganizer.
// Source "statements": op in {1 add,2 sub,3 li,4 lw,5 sw,6 beq,7 jmp,
// 8 label-def, 9 nop}; operands are small ints; branch targets are label
// ids.
var srcOp [2600]int;
var srcA [2600]int;
var srcB [2600]int;
var srcC [2600]int;
var nsrc int;

// Symbol table: chained hash of label -> address.
var symHash [64]int;      // heads, -1 terminated
var symNext [400]int;
var symKey [400]int;
var symAddr [400]int;
var nsyms int;

// Output image.
var out [2600]int;
var nout int;

var seedAs int;

func rndAs(n int) int {
    seedAs = (seedAs * 1309 + 13849) % 65536;
    return seedAs % n;
}

func hashKey(k int) int { return (k * 2654435761) % 64; }

func symDefine(key int, addr int) {
    var h int;
    h = hashKey(key);
    if (h < 0) { h = -h; }
    symKey[nsyms] = key;
    symAddr[nsyms] = addr;
    symNext[nsyms] = symHash[h];
    symHash[h] = nsyms;
    nsyms = nsyms + 1;
}

func symLookup(key int) int {
    var h int;
    h = hashKey(key);
    if (h < 0) { h = -h; }
    var n int;
    n = symHash[h];
    while (n != -1) {
        if (symKey[n] == key) { return symAddr[n]; }
        n = symNext[n];
    }
    return -1;
}

// genSource synthesizes a program with labels and branches.
func genSource(stmts int) {
    var i int;
    var nlabels int;
    nsrc = 0;
    nlabels = 0;
    for (i = 0; i < stmts; i = i + 1) {
        var r int;
        r = rndAs(16);
        if (r == 0) {
            srcOp[nsrc] = 8;             // label definition
            srcA[nsrc] = nlabels;
            nlabels = nlabels + 1;
        } else if (r <= 4) {
            srcOp[nsrc] = 1 + rndAs(2);  // add/sub
            srcA[nsrc] = rndAs(8);
            srcB[nsrc] = rndAs(8);
            srcC[nsrc] = rndAs(8);
        } else if (r <= 7) {
            srcOp[nsrc] = 3;             // li
            srcA[nsrc] = rndAs(8);
            srcB[nsrc] = rndAs(100);
        } else if (r <= 10) {
            srcOp[nsrc] = 4;             // lw
            srcA[nsrc] = rndAs(8);
            srcB[nsrc] = rndAs(8);
            srcC[nsrc] = rndAs(32);
        } else if (r <= 12) {
            srcOp[nsrc] = 5;             // sw
            srcA[nsrc] = rndAs(8);
            srcB[nsrc] = rndAs(8);
            srcC[nsrc] = rndAs(32);
        } else if (r <= 14 && nlabels > 0) {
            srcOp[nsrc] = 6;             // beq to a known label
            srcA[nsrc] = rndAs(8);
            srcB[nsrc] = rndAs(8);
            srcC[nsrc] = rndAs(nlabels);
        } else {
            srcOp[nsrc] = 9;             // nop
        }
        nsrc = nsrc + 1;
    }
}

// pass1 assigns addresses to labels (labels emit no code).
func pass1() {
    var i int;
    var n int;
    var addr int;
    addr = 0;
    n = nsrc;
    for (i = 0; i < n; i = i + 1) {
        if (srcOp[i] == 8) {
            symDefine(srcA[i], addr);
        } else {
            addr = addr + 1;
        }
    }
}

// encode packs one statement into a word.
func encode(i int) int {
    var w int;
    w = srcOp[i] * 1000000 + srcA[i] * 10000 + srcB[i] * 100 + srcC[i] % 100;
    if (srcOp[i] == 6) {
        var t int;
        t = symLookup(srcC[i]);
        if (t == -1) { t = 0; }
        w = srcOp[i] * 1000000 + srcA[i] * 10000 + srcB[i] * 100 + t % 100;
    }
    return w;
}

// pass2 emits words.
func pass2() {
    var i int;
    var n int;
    var m int;
    m = 0;
    n = nsrc;
    for (i = 0; i < n; i = i + 1) {
        if (srcOp[i] != 8) {
            out[m] = encode(i);
            m = m + 1;
        }
    }
    nout = m;
}

// defines/uses for the reorganizer: reg defined by instr at out index.
func defReg(w int) int {
    var op int;
    op = w / 1000000;
    if (op == 1 || op == 2 || op == 3 || op == 4) { return (w / 10000) % 100; }
    return -1;
}

func usesReg(w int, r int) int {
    var op int;
    op = w / 1000000;
    if (op == 1 || op == 2) {
        return (w / 100) % 100 == r || w % 100 == r;
    }
    if (op == 4 || op == 5) {
        return (w / 100) % 100 == r || ((w / 10000) % 100 == r && op == 5);
    }
    if (op == 6) {
        return (w / 10000) % 100 == r || (w / 100) % 100 == r;
    }
    return 0;
}

func isBranch(w int) int { return w / 1000000 == 6; }
func isNop(w int) int { return w / 1000000 == 9; }

// reorganize: after each branch, if the following instruction is a nop, try
// to move an earlier independent instruction into the slot.
func canMove(w int, branch int) int {
    var d int;
    d = defReg(w);
    if (d == -1) { return isNop(w); }
    if (usesReg(branch, d)) { return 0; }
    if (w / 1000000 == 4 || w / 1000000 == 5) { return 0; }  // keep memory order
    return 1;
}

func reorganize() int {
    var i int;
    var n int;
    var filled int;
    filled = 0;
    n = nout;
    for (i = 1; i + 1 < n; i = i + 1) {
        if (isBranch(out[i]) && isNop(out[i + 1])) {
            // Look back a few instructions for a mover.
            var j int;
            for (j = i - 1; j >= 0 && j >= i - 4; j = j - 1) {
                if (isBranch(out[j])) { break; }
                if (canMove(out[j], out[i]) && !isNop(out[j])) {
                    var t int;
                    t = out[j];
                    out[j] = 9000000;
                    out[i + 1] = t;
                    filled = filled + 1;
                    break;
                }
            }
        }
    }
    return filled;
}

func checksum() int {
    var i int;
    var n int;
    var s int;
    s = 0;
    n = nout;
    for (i = 0; i < n; i = i + 1) {
        s = (s * 31 + out[i]) % 1000000007;
    }
    return s;
}

// peephole collapses li followed by add of the same register into a single
// li (constant folding at the assembler level), compacting the image.
func opOf(w int) int { return w / 1000000; }
func rdOf(w int) int { return (w / 10000) % 100; }

func peephole() int {
    var i int;
    var j int;
    var n int;
    var removed int;
    n = nout;
    removed = 0;
    j = 0;
    i = 0;
    while (i < n) {
        var w int;
        w = out[i];
        if (i + 1 < n && opOf(w) == 3 && opOf(out[i + 1]) == 1) {
            var rd int;
            rd = rdOf(out[i + 1]);
            // add rd, rs, rt where rs == li target and rd == li target:
            // fold into li rd, k (the simulated fold keeps a checksum-stable
            // encoding rather than real arithmetic).
            if (rdOf(w) == rd && (out[i + 1] / 100) % 100 == rd) {
                out[j] = 3 * 1000000 + rd * 10000 + (w % 10000 + out[i + 1] % 100) % 10000;
                j = j + 1;
                i = i + 2;
                removed = removed + 1;
                continue;
            }
        }
        out[j] = w;
        j = j + 1;
        i = i + 1;
    }
    nout = j;
    return removed;
}

func assemble(stmts int, seed int) {
    seedAs = seed;
    nsyms = 0;
    var i int;
    for (i = 0; i < 64; i = i + 1) { symHash[i] = -1; }
    genSource(stmts);
    pass1();
    pass2();
    print(nout);
    print(nsyms);
    print(checksum());
    print(reorganize());
    print(checksum());
    print(peephole());
    print(checksum());
}

func main() {
    assemble(900, 7);
    assemble(1400, 999);
}
`

// upas: the first pass of a Pascal-like compiler — a scanner and a full
// recursive-descent parser for a block-structured language over synthesized
// token streams, building a symbol table with scopes and checking types,
// with a deep call graph of small nonterminal procedures.
const srcUpas = `
// upas - parser pass of a Pascal-like compiler over a token stream.
// Tokens: 1 program, 2 var, 3 begin, 4 end, 5 if, 6 then, 7 else, 8 while,
// 9 do, 10 ident(val), 11 number(val), 12 :=, 13 ;, 14 +, 15 -, 16 *,
// 17 <, 18 (, 19 ), 20 ., 21 integer, 22 :, 23 ,, 0 eof.
// The parse cursor threads through every nonterminal as a parameter and
// return value, as in a hand-written production parser.
var tk [4000]int;
var tv [4000]int;
var ntk int;
var errs int;

// Scope-stacked symbol table.
var symName [200]int;
var symLevel [200]int;
var nsym int;
var level int;

var stmts int;
var exprs int;
var sig int;

func tokAt(pos int) int {
    if (pos >= ntk) { return 0; }
    return tk[pos];
}

func valAt(pos int) int {
    if (pos >= ntk) { return 0; }
    return tv[pos];
}

func expect(pos int, t int) int {
    if (tokAt(pos) != t) { errs = errs + 1; }
    if (pos < ntk) { return pos + 1; }
    return pos;
}

func openScope() { level = level + 1; }

func closeScope() {
    while (nsym > 0 && symLevel[nsym - 1] == level) { nsym = nsym - 1; }
    level = level - 1;
}

func declare(name int) {
    symName[nsym] = name;
    symLevel[nsym] = level;
    nsym = nsym + 1;
}

func lookup(name int) int {
    var i int;
    for (i = nsym - 1; i >= 0; i = i - 1) {
        if (symName[i] == name) { return symLevel[i]; }
    }
    return -1;
}

func noteUse(name int) {
    if (lookup(name) == -1) { errs = errs + 1; }
    sig = (sig * 31 + name + 1) % 1000000007;
}

// factor := ident | number | ( expr ); returns the new cursor.
func factor(pos int) int {
    exprs = exprs + 1;
    var t int;
    t = tokAt(pos);
    if (t == 10) {
        noteUse(valAt(pos));
        return pos + 1;
    }
    if (t == 11) {
        sig = (sig * 31 + valAt(pos)) % 1000000007;
        return pos + 1;
    }
    if (t == 18) {
        pos = expression(pos + 1);
        return expect(pos, 19);
    }
    errs = errs + 1;
    if (pos < ntk) { return pos + 1; }
    return pos;
}

// term := factor ('*' factor)*
func term(pos int) int {
    pos = factor(pos);
    while (tokAt(pos) == 16) {
        pos = factor(pos + 1);
    }
    return pos;
}

// simpleExpr := term (('+'|'-') term)*
func simpleExpr(pos int) int {
    pos = term(pos);
    while (tokAt(pos) == 14 || tokAt(pos) == 15) {
        pos = term(pos + 1);
    }
    return pos;
}

// expression := simpleExpr ('<' simpleExpr)?
func expression(pos int) int {
    pos = simpleExpr(pos);
    if (tokAt(pos) == 17) {
        pos = simpleExpr(pos + 1);
    }
    return pos;
}

// assignment := ident ':=' expression
func assignment(pos int) int {
    noteUse(valAt(pos));
    pos = expect(pos + 1, 12);
    return expression(pos);
}

// statement := assignment | compound | ifStmt | whileStmt
func statement(pos int) int {
    stmts = stmts + 1;
    var t int;
    t = tokAt(pos);
    if (t == 10) { return assignment(pos); }
    if (t == 3) { return compound(pos); }
    if (t == 5) { return ifStmt(pos); }
    if (t == 8) { return whileStmt(pos); }
    errs = errs + 1;
    if (pos < ntk) { return pos + 1; }
    return pos;
}

// compound := 'begin' statement (';' statement)* 'end'
func compound(pos int) int {
    pos = expect(pos, 3);
    pos = statement(pos);
    while (tokAt(pos) == 13) {
        pos = statement(pos + 1);
    }
    return expect(pos, 4);
}

func ifStmt(pos int) int {
    pos = expression(pos + 1);
    pos = expect(pos, 6);
    pos = statement(pos);
    if (tokAt(pos) == 7) {
        pos = statement(pos + 1);
    }
    return pos;
}

func whileStmt(pos int) int {
    pos = expression(pos + 1);
    pos = expect(pos, 9);
    return statement(pos);
}

// varDecls := 'var' (identList ':' 'integer' ';')*
func varDecls(pos int) int {
    if (tokAt(pos) != 2) { return pos; }
    pos = pos + 1;
    while (tokAt(pos) == 10) {
        declare(valAt(pos));
        pos = pos + 1;
        while (tokAt(pos) == 23) {
            pos = pos + 1;
            if (tokAt(pos) == 10) {
                declare(valAt(pos));
                pos = pos + 1;
            }
        }
        pos = expect(pos, 22);
        pos = expect(pos, 21);
        pos = expect(pos, 13);
    }
    return pos;
}

// block := varDecls compound
func block(pos int) int {
    openScope();
    pos = varDecls(pos);
    pos = compound(pos);
    closeScope();
    return pos;
}

// program := 'program' ident ';' block '.'
func parseProgram() int {
    var pos int;
    pos = expect(0, 1);
    pos = expect(pos, 10);
    pos = expect(pos, 13);
    pos = block(pos);
    return expect(pos, 20);
}

// --- token stream synthesis ---
var gseed int;

func grnd(n int) int {
    gseed = (gseed * 1309 + 13849) % 65536;
    return gseed % n;
}

func put(t int, v int) {
    tk[ntk] = t;
    tv[ntk] = v;
    ntk = ntk + 1;
}

func genExpr(depth int) {
    if (depth <= 0 || grnd(3) == 0) {
        if (grnd(2) == 0) { put(10, grnd(12)); } else { put(11, grnd(100)); }
        return;
    }
    if (grnd(4) == 0) {
        put(18, 0);
        genExpr(depth - 1);
        put(14 + grnd(2), 0);
        genExpr(depth - 1);
        put(19, 0);
        return;
    }
    genExpr(depth - 1);
    put(14 + grnd(3), 0);
    genExpr(depth - 1);
}

func genStmt(depth int) {
    var r int;
    r = grnd(10);
    if (depth <= 0 || r < 5) {
        put(10, grnd(12));
        put(12, 0);
        genExpr(2);
        return;
    }
    if (r < 7) {
        put(5, 0);
        genExpr(1);
        put(17, 0);
        genExpr(1);
        put(6, 0);
        genStmt(depth - 1);
        if (grnd(2) == 0) {
            put(7, 0);
            genStmt(depth - 1);
        }
        return;
    }
    if (r < 8) {
        put(8, 0);
        genExpr(1);
        put(17, 0);
        genExpr(1);
        put(9, 0);
        genStmt(depth - 1);
        return;
    }
    put(3, 0);
    genStmt(depth - 1);
    var k int;
    var n int;
    n = grnd(4) + 1;
    for (k = 0; k < n; k = k + 1) {
        put(13, 0);
        genStmt(depth - 1);
    }
    put(4, 0);
}

func genProgram(seed int) {
    gseed = seed;
    ntk = 0;
    put(1, 0);
    put(10, 0);
    put(13, 0);
    put(2, 0);
    // Three declaration groups of four identifiers each: "a,b,c,d: integer;".
    var i int;
    for (i = 0; i < 12; i = i + 1) {
        put(10, i);
        if (i % 4 != 3) {
            put(23, 0);
        } else {
            put(22, 0);
            put(21, 0);
            put(13, 0);
        }
    }
    put(3, 0);
    genStmt(4);
    var k int;
    for (k = 0; k < 14; k = k + 1) {
        put(13, 0);
        genStmt(3);
    }
    put(4, 0);
    put(20, 0);
    put(0, 0);
}

func parseOne(seed int) {
    genProgram(seed);
    errs = 0;
    nsym = 0;
    level = 0;
    stmts = 0;
    exprs = 0;
    sig = 0;
    var endPos int;
    endPos = parseProgram();
    print(ntk);
    print(endPos);
    print(stmts);
    print(exprs);
    print(errs);
    print(sig);
}

func main() {
    parseOne(11);
    parseOne(222);
    parseOne(3333);
}
`

// uopt: a global optimizer kernel — builds random control-flow graphs,
// runs iterative live-variable analysis with bit vectors (words of packed
// bits implemented arithmetically), then does a greedy interference-based
// register assignment, mirroring this repository's own machinery (as the
// paper's uopt contained its own allocator).
const srcUopt = `
// uopt - dataflow analysis and register assignment over random CFGs.
// CFG: up to 60 blocks, each with up to 2 successors; per-block use/def
// sets over 24 variables packed into ints (bit i = 1<<i via pow2 table).
var pow2 [24]int;
var succ1 [60]int;
var succ2 [60]int;
var useSet [60]int;
var defSet [60]int;
var liveIn [60]int;
var liveOut [60]int;
var nblocks int;

var sseed int;

func srnd(n int) int {
    sseed = (sseed * 1309 + 13849) % 65536;
    return sseed % n;
}

func bitAnd(a int, b int) int {
    var r int;
    var i int;
    r = 0;
    for (i = 0; i < 24; i = i + 1) {
        if ((a / pow2[i]) % 2 == 1 && (b / pow2[i]) % 2 == 1) { r = r + pow2[i]; }
    }
    return r;
}

func bitOr(a int, b int) int {
    var r int;
    var i int;
    r = 0;
    for (i = 0; i < 24; i = i + 1) {
        if ((a / pow2[i]) % 2 == 1 || (b / pow2[i]) % 2 == 1) { r = r + pow2[i]; }
    }
    return r;
}

func bitNot(a int) int {
    var r int;
    var i int;
    r = 0;
    for (i = 0; i < 24; i = i + 1) {
        if ((a / pow2[i]) % 2 == 0) { r = r + pow2[i]; }
    }
    return r;
}

func bitCount(a int) int {
    var n int;
    var i int;
    n = 0;
    for (i = 0; i < 24; i = i + 1) {
        n = n + (a / pow2[i]) % 2;
    }
    return n;
}

func hasBit(a int, i int) int { return (a / pow2[i]) % 2; }

func genCFG(blocks int) {
    var i int;
    nblocks = blocks;
    for (i = 0; i < nblocks; i = i + 1) {
        succ1[i] = -1;
        succ2[i] = -1;
        if (i + 1 < nblocks) { succ1[i] = i + 1; }
        if (srnd(3) == 0) { succ2[i] = srnd(nblocks); }
        var u int;
        var d int;
        var k int;
        u = 0;
        d = 0;
        for (k = 0; k < 4; k = k + 1) {
            u = bitOr(u, pow2[srnd(24)]);
            d = bitOr(d, pow2[srnd(24)]);
        }
        useSet[i] = u;
        defSet[i] = d;
    }
}

// liveness solves the backward equations to a fixpoint; returns iterations.
func liveness() int {
    var i int;
    for (i = 0; i < nblocks; i = i + 1) {
        liveIn[i] = 0;
        liveOut[i] = 0;
    }
    var iters int;
    var changed int;
    iters = 0;
    changed = 1;
    while (changed == 1) {
        changed = 0;
        iters = iters + 1;
        for (i = nblocks - 1; i >= 0; i = i - 1) {
            var out int;
            out = 0;
            if (succ1[i] != -1) { out = bitOr(out, liveIn[succ1[i]]); }
            if (succ2[i] != -1) { out = bitOr(out, liveIn[succ2[i]]); }
            var in int;
            in = bitOr(useSet[i], bitAnd(out, bitNot(defSet[i])));
            if (in != liveIn[i] || out != liveOut[i]) {
                changed = 1;
                liveIn[i] = in;
                liveOut[i] = out;
            }
        }
    }
    return iters;
}

// Interference: variables co-live in some block interfere.
var interf [576]int;    // 24 x 24

func buildInterference() int {
    var i int;
    var a int;
    var b int;
    var edges int;
    for (i = 0; i < 576; i = i + 1) { interf[i] = 0; }
    edges = 0;
    for (i = 0; i < nblocks; i = i + 1) {
        var lv int;
        lv = bitOr(liveIn[i], bitOr(liveOut[i], defSet[i]));
        for (a = 0; a < 24; a = a + 1) {
            if (hasBit(lv, a)) {
                for (b = a + 1; b < 24; b = b + 1) {
                    if (hasBit(lv, b) && interf[a * 24 + b] == 0) {
                        interf[a * 24 + b] = 1;
                        interf[b * 24 + a] = 1;
                        edges = edges + 1;
                    }
                }
            }
        }
    }
    return edges;
}

// assignRegs greedily colors variables with k registers; returns spills.
var colorOf [24]int;

func assignRegs(k int) int {
    var v int;
    var spills int;
    spills = 0;
    for (v = 0; v < 24; v = v + 1) { colorOf[v] = -1; }
    for (v = 0; v < 24; v = v + 1) {
        var used int;
        var u int;
        used = 0;
        for (u = 0; u < 24; u = u + 1) {
            if (interf[v * 24 + u] == 1 && colorOf[u] != -1) {
                used = bitOr(used, pow2[colorOf[u]]);
            }
        }
        var c int;
        var found int;
        found = 0;
        for (c = 0; c < k; c = c + 1) {
            if (found == 0 && hasBit(used, c) == 0) {
                colorOf[v] = c;
                found = 1;
            }
        }
        if (found == 0) { spills = spills + 1; }
    }
    return spills;
}

// --- dominators: iterative intersection over the block order ---
var idom [60]int;

func intersect(a int, b int) int {
    while (a != b) {
        while (a > b) { a = idom[a]; }
        while (b > a) { b = idom[b]; }
    }
    return a;
}

func dominators() int {
    var i int;
    for (i = 0; i < nblocks; i = i + 1) { idom[i] = -1; }
    idom[0] = 0;
    var changed int;
    var iters int;
    changed = 1;
    iters = 0;
    while (changed == 1) {
        changed = 0;
        iters = iters + 1;
        for (i = 1; i < nblocks; i = i + 1) {
            // Predecessors: the fall-through from i-1 plus any random edges.
            var nd int;
            nd = -1;
            var p int;
            for (p = 0; p < nblocks; p = p + 1) {
                if ((succ1[p] == i || succ2[p] == i) && idom[p] != -1) {
                    if (nd == -1) { nd = p; } else { nd = intersect(nd, p); }
                }
            }
            if (nd != -1 && idom[i] != nd) {
                idom[i] = nd;
                changed = 1;
            }
        }
    }
    var s int;
    s = 0;
    for (i = 0; i < nblocks; i = i + 1) {
        s = (s * 31 + idom[i] + 2) % 1000000007;
    }
    return s * 10 + iters % 10;
}

// --- constant propagation: a three-level lattice per variable ---
// 0 = bottom (unknown/varying), 1..N = constant id, top handled as 0 here.
var cpIn [60]int;

func meetCP(a int, b int) int {
    if (a == b) { return a; }
    return 0;
}

func constProp() int {
    var i int;
    for (i = 0; i < nblocks; i = i + 1) { cpIn[i] = i % 7 + 1; }
    var changed int;
    var rounds int;
    changed = 1;
    rounds = 0;
    while (changed == 1 && rounds < 32) {
        changed = 0;
        rounds = rounds + 1;
        for (i = 0; i < nblocks; i = i + 1) {
            var v int;
            v = cpIn[i];
            if (succ1[i] != -1) {
                var m int;
                m = meetCP(v, cpIn[succ1[i]]);
                if (m != cpIn[succ1[i]]) { cpIn[succ1[i]] = m; changed = 1; }
            }
            if (succ2[i] != -1) {
                var m2 int;
                m2 = meetCP(v, cpIn[succ2[i]]);
                if (m2 != cpIn[succ2[i]]) { cpIn[succ2[i]] = m2; changed = 1; }
            }
        }
    }
    var consts int;
    consts = 0;
    for (i = 0; i < nblocks; i = i + 1) {
        if (cpIn[i] != 0) { consts = consts + 1; }
    }
    return consts * 100 + rounds;
}

func runCFG(blocks int, seed int, k int) {
    sseed = seed;
    genCFG(blocks);
    print(liveness());
    print(buildInterference());
    print(assignRegs(k));
    var i int;
    var s int;
    s = 0;
    for (i = 0; i < nblocks; i = i + 1) {
        s = (s * 31 + liveIn[i]) % 1000000007;
    }
    print(s);
    print(dominators());
    print(constProp());
}

func main() {
    var i int;
    pow2[0] = 1;
    for (i = 1; i < 24; i = i + 1) { pow2[i] = pow2[i - 1] * 2; }
    runCFG(40, 5, 8);
    runCFG(60, 77, 6);
    runCFG(25, 1234, 10);
}
`
