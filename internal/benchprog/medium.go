package benchprog

// dhrystone: a faithful-in-spirit port of the classic synthetic benchmark:
// record assignments (via parallel arrays), string comparison, character
// handling, and the well-known Proc1..Proc8/Func1..Func3 call structure.
const srcDhrystone = `
// dhrystone - synthetic systems-programming benchmark.
// Record type: [discr, enumComp, intComp, strComp(8 chars)] in parallel
// arrays, two records: 0 = PtrGlob, 1 = PtrGlobNext.
var recDiscr [2]int;
var recEnum [2]int;
var recInt [2]int;
var recStr [16]int;     // two 8-char strings
var ptrGlob int;
var ptrGlobNext int;
var intGlob int;
var boolGlob int;
var ch1Glob int;
var ch2Glob int;
var arr1Glob [50]int;
var arr2Glob [2500]int; // 50 x 50
var str1Loc [8]int;
var str2Loc [8]int;

func setStr(base int, seed int) {
    var i int;
    for (i = 0; i < 8; i = i + 1) {
        recStr[base * 8 + i] = 65 + ((seed + i * 3) % 26);
    }
}

func strCmpRec(a int, b int) int {
    var i int;
    for (i = 0; i < 8; i = i + 1) {
        if (recStr[a * 8 + i] != recStr[b * 8 + i]) {
            return recStr[a * 8 + i] - recStr[b * 8 + i];
        }
    }
    return 0;
}

func func1(ch1 int, ch2 int) int {
    var chLoc1 int;
    var chLoc2 int;
    chLoc1 = ch1;
    chLoc2 = chLoc1;
    if (chLoc2 != ch2) { return 0; }
    ch1Glob = chLoc1;
    return 1;
}

func func2(s1 int, s2 int) int {
    var intLoc int;
    var chLoc int;
    intLoc = 2;
    chLoc = 65;
    while (intLoc <= 2) {
        if (func1(str1Loc[intLoc], str2Loc[intLoc + 1]) == 0) {
            chLoc = 65;
            intLoc = intLoc + 1;
        } else {
            break;
        }
    }
    if (chLoc >= 87 && chLoc < 90) { intLoc = 7; }
    if (chLoc == 82) { return 1; }
    if (cmpLocalStrings() > 0) {
        intLoc = intLoc + 7;
        intGlob = intLoc;
        return 1;
    }
    return 0;
}

func cmpLocalStrings() int {
    var i int;
    for (i = 0; i < 8; i = i + 1) {
        if (str1Loc[i] != str2Loc[i]) { return str1Loc[i] - str2Loc[i]; }
    }
    return 0;
}

func func3(enumPar int) int {
    var enumLoc int;
    enumLoc = enumPar;
    if (enumLoc == 2) { return 1; }
    return 0;
}

func proc8(base1 int, base2 int, intPar1 int, intPar2 int) {
    var intLoc int;
    var i int;
    intLoc = intPar1 + 5;
    arr1Glob[intLoc] = intPar2;
    arr1Glob[intLoc + 1] = arr1Glob[intLoc];
    arr1Glob[intLoc + 30] = intLoc;
    for (i = intLoc; i <= intLoc + 1; i = i + 1) {
        arr2Glob[intLoc * 50 + i] = intLoc;
    }
    arr2Glob[intLoc * 50 + intLoc - 1] = arr2Glob[intLoc * 50 + intLoc - 1] + 1;
    arr2Glob[(intLoc + 20) * 50 + intLoc] = arr1Glob[intLoc];
    intGlob = 5;
}

func proc7(intPar1 int, intPar2 int) int {
    var intLoc int;
    intLoc = intPar1 + 2;
    return intPar2 + intLoc;
}

func proc6(enumPar int) int {
    var enumLoc int;
    enumLoc = enumPar;
    if (func3(enumPar) == 0) { enumLoc = 3; }
    if (enumPar == 0) { return 0; }
    if (enumPar == 1) {
        if (intGlob > 100) { return 0; }
        return 3;
    }
    if (enumPar == 2) { return 1; }
    if (enumPar == 3) { return 2; }
    return enumLoc;
}

func proc5() {
    ch1Glob = 65;
    boolGlob = 0;
}

func proc4() {
    var boolLoc int;
    boolLoc = ch1Glob == 65;
    boolLoc = boolLoc || boolGlob;
    ch2Glob = 66;
}

func proc3(recIdx int) int {
    if (ptrGlob != -1) {
        return recInt[ptrGlob];
    }
    intGlob = 100;
    return proc7(10, intGlob);
}

func proc2(intPar int) int {
    var intLoc int;
    var enumLoc int;
    intLoc = intPar + 10;
    enumLoc = 0;
    while (1) {
        if (ch1Glob == 65) {
            intLoc = intLoc - 1;
            intLoc = intLoc - intGlob;
            enumLoc = 1;
        }
        if (enumLoc == 1) { break; }
    }
    return intLoc;
}

func proc1(recIdx int) {
    var next int;
    next = recIdx + 1;
    if (next > 1) { next = 1; }
    recDiscr[next] = recDiscr[recIdx];
    recInt[next] = 5;
    recEnum[next] = recEnum[recIdx];
    recInt[next] = proc7(recInt[next], 10);
    if (recDiscr[next] == 0) {
        recInt[next] = 6;
        recEnum[next] = proc6(recEnum[recIdx]);
        recInt[next] = proc7(recInt[next], intGlob);
    } else {
        recDiscr[recIdx] = recDiscr[next];
    }
}

func main() {
    var runs int;
    var i int;
    ptrGlob = 0;
    ptrGlobNext = 1;
    recDiscr[0] = 0;
    recEnum[0] = 2;
    recInt[0] = 40;
    setStr(0, 3);
    setStr(1, 3);
    for (i = 0; i < 8; i = i + 1) {
        str1Loc[i] = 68 + (i % 5);
        str2Loc[i] = 68 + (i % 5);
    }
    str2Loc[2] = 70;
    arr1Glob[8] = 10;

    var sum int;
    sum = 0;
    for (runs = 0; runs < 300; runs = runs + 1) {
        proc5();
        proc4();
        var intLoc1 int;
        var intLoc2 int;
        var intLoc3 int;
        intLoc1 = 2;
        intLoc2 = 3;
        if (func2(0, 0) == 0) { boolGlob = 1; } else { boolGlob = 0; }
        while (intLoc1 < intLoc2) {
            intLoc3 = 5 * intLoc1 - intLoc2;
            intLoc3 = proc7(intLoc1, intLoc2);
            intLoc1 = intLoc1 + 1;
        }
        proc8(0, 0, intLoc1, intLoc3);
        proc1(0);
        var chIdx int;
        for (chIdx = 65; chIdx <= 66; chIdx = chIdx + 1) {
            if (func1(chIdx, 67)) {
                intLoc3 = proc6(0) + intLoc3;
            }
        }
        intLoc3 = proc2(intLoc1) + proc3(0);
        sum = (sum + intLoc3 + intGlob + recInt[1]) % 1000000007;
    }
    print(sum);
    print(intGlob);
    print(boolGlob);
    print(ch1Glob);
    print(ch2Glob);
    print(arr1Glob[7]);
    print(arr2Glob[8 * 50 + 7]);
    print(recInt[1]);
}
`

// stanford: the integer kernels of Hennessy's Stanford suite — Perm,
// Towers, Queens, Intmm, Bubble, Quicksort, Treesort (array-encoded tree).
const srcStanford = `
// stanford - integer benchmark suite.
var permArr [11]int;

func swapPerm(i int, j int) {
    var t int;
    t = permArr[i];
    permArr[i] = permArr[j];
    permArr[j] = t;
}

// permute returns the number of permutation-tree nodes visited.
func permute(n int) int {
    var count int;
    count = 1;
    if (n != 1) {
        count = count + permute(n - 1);
        var k int;
        for (k = n - 1; k >= 1; k = k - 1) {
            swapPerm(n, k);
            count = count + permute(n - 1);
            swapPerm(n, k);
        }
    }
    return count;
}

// towers returns the number of disc moves.
func towers(n int, from int, to int, via int) int {
    if (n == 1) { return 1; }
    var a int;
    var b int;
    a = towers(n - 1, from, via, to);
    b = towers(n - 1, via, to, from);
    return a + b + 1;
}

var qRow [9]int;
var qD1 [17]int;
var qD2 [17]int;

func qFree(row int, col int) int {
    return qRow[row] == 0 && qD1[row + col] == 0 && qD2[row - col + 8] == 0;
}

func qPlace(row int, col int, v int) {
    qRow[row] = v;
    qD1[row + col] = v;
    qD2[row - col + 8] = v;
}

// queens returns the number of solutions below this column.
func queens(col int) int {
    var row int;
    var found int;
    found = 0;
    for (row = 0; row < 8; row = row + 1) {
        if (qFree(row, col)) {
            qPlace(row, col, 1);
            if (col == 7) {
                found = found + 1;
            } else {
                found = found + queens(col + 1);
            }
            qPlace(row, col, 0);
        }
    }
    return found;
}

var ma [256]int;
var mb [256]int;
var mr [256]int;

func innerProduct(row int, col int) int {
    var s int;
    var k int;
    s = 0;
    for (k = 0; k < 16; k = k + 1) {
        s = s + ma[row * 16 + k] * mb[k * 16 + col];
    }
    return s;
}

func intmm() int {
    var i int;
    var j int;
    for (i = 0; i < 256; i = i + 1) {
        ma[i] = (i % 7) - 3;
        mb[i] = (i % 5) - 2;
    }
    for (i = 0; i < 16; i = i + 1) {
        for (j = 0; j < 16; j = j + 1) {
            mr[i * 16 + j] = innerProduct(i, j);
        }
    }
    var sig int;
    sig = 0;
    for (i = 0; i < 256; i = i + 1) { sig = (sig * 31 + mr[i] + 1000) % 1000000007; }
    return sig;
}

var sortArr [200]int;

func fillSort(seed int) {
    var i int;
    var v int;
    v = seed;
    for (i = 0; i < 200; i = i + 1) {
        v = (v * 1309 + 13849) % 65536;
        sortArr[i] = v;
    }
}

func bubble() int {
    var i int;
    var top int;
    fillSort(74755);
    for (top = 199; top > 0; top = top - 1) {
        for (i = 0; i < top; i = i + 1) {
            if (sortArr[i] > sortArr[i + 1]) {
                var t int;
                t = sortArr[i];
                sortArr[i] = sortArr[i + 1];
                sortArr[i + 1] = t;
            }
        }
    }
    return sortArr[0] + sortArr[199] * 3 + sortArr[100];
}

func quickPartition(lo int, hi int) int {
    var pivot int;
    var i int;
    var j int;
    pivot = sortArr[(lo + hi) / 2];
    i = lo;
    j = hi;
    while (i <= j) {
        while (sortArr[i] < pivot) { i = i + 1; }
        while (sortArr[j] > pivot) { j = j - 1; }
        if (i <= j) {
            var t int;
            t = sortArr[i];
            sortArr[i] = sortArr[j];
            sortArr[j] = t;
            i = i + 1;
            j = j - 1;
        }
    }
    return i;
}

func quicksort(lo int, hi int) {
    if (lo >= hi) { return; }
    var m int;
    m = quickPartition(lo, hi);
    quicksort(lo, m - 1);
    quicksort(m, hi);
}

func quick() int {
    fillSort(74755);
    quicksort(0, 199);
    return sortArr[0] + sortArr[199] * 3 + sortArr[100];
}

// Treesort via an array-encoded binary search tree.
var treeKey [512]int;
var treeLeft [512]int;
var treeRight [512]int;
var treeTop int;

func treeInsert(root int, key int) int {
    if (root == -1) {
        var n int;
        n = treeTop;
        treeTop = treeTop + 1;
        treeKey[n] = key;
        treeLeft[n] = -1;
        treeRight[n] = -1;
        return n;
    }
    if (key < treeKey[root]) {
        treeLeft[root] = treeInsert(treeLeft[root], key);
    } else {
        treeRight[root] = treeInsert(treeRight[root], key);
    }
    return root;
}

// treeWalk folds the keys in order into the signature it is handed.
func treeWalk(root int, sig int) int {
    if (root == -1) { return sig; }
    sig = treeWalk(treeLeft[root], sig);
    sig = (sig * 37 + treeKey[root]) % 1000000007;
    return treeWalk(treeRight[root], sig);
}

func treesort() int {
    var i int;
    var v int;
    var root int;
    treeTop = 0;
    root = -1;
    v = 74755;
    for (i = 0; i < 300; i = i + 1) {
        v = (v * 1309 + 13849) % 65536;
        root = treeInsert(root, v);
    }
    return treeWalk(root, 0);
}

func main() {
    var i int;
    for (i = 0; i <= 10; i = i + 1) { permArr[i] = i; }
    print(permute(6));
    print(towers(12, 1, 3, 2));
    print(queens(0));
    print(intmm());
    print(bubble());
    print(quick());
    print(treesort());
}
`

// pf: a pretty-printer — reads a token stream (encoded program), tracks
// nesting and breaks lines at a right margin, emitting per-line indentation
// checksums. Call pattern mirrors a printer with many small emit helpers.
const srcPf = `
// pf - pretty-printer for a token stream.
// Token kinds: 1 ident, 2 number, 3 lbrace, 4 rbrace, 5 semi, 6 keyword,
// 7 lparen, 8 rparen, 9 operator, 10 comma.
var toks [2200]int;
var ntoks int;
var col int;
var indent int;
var line int;
var sig int;
var margin int;

func tokWidth(kind int) int {
    if (kind == 1) { return 6; }
    if (kind == 2) { return 4; }
    if (kind == 6) { return 5; }
    if (kind == 9) { return 2; }
    return 1;
}

func emitChar(n int) {
    col = col + n;
    sig = (sig * 31 + col) % 1000000007;
}

func newline() {
    sig = (sig * 131 + col * 7 + line) % 1000000007;
    line = line + 1;
    col = indent * 4;
}

func needBreak(w int) int {
    return col + w > margin;
}

func emitTok(kind int) {
    var w int;
    w = tokWidth(kind);
    if (needBreak(w)) { newline(); }
    emitChar(w);
    emitChar(1);    // following space
}

func openBlock() {
    emitTok(3);
    indent = indent + 1;
    newline();
}

func closeBlock() {
    indent = indent - 1;
    newline();
    emitTok(4);
    newline();
}

func semi() {
    emitTok(5);
    newline();
}

func format(i int) int {
    while (i < ntoks) {
        var k int;
        k = toks[i];
        if (k == 3) {
            openBlock();
            i = format(i + 1);
        } else if (k == 4) {
            closeBlock();
            return i + 1;
        } else if (k == 5) {
            semi();
            i = i + 1;
        } else {
            emitTok(k);
            i = i + 1;
        }
    }
    return i;
}

// genProgram synthesizes a deterministic token stream with nested blocks.
func genProgram(seed int) {
    var v int;
    var depth int;
    ntoks = 0;
    depth = 0;
    v = seed;
    while (ntoks < 2000) {
        v = (v * 1309 + 13849) % 65536;
        var r int;
        r = v % 12;
        if (r == 0 && depth < 6) {
            toks[ntoks] = 3;
            depth = depth + 1;
        } else if (r == 1 && depth > 0) {
            toks[ntoks] = 4;
            depth = depth - 1;
        } else if (r < 5) {
            toks[ntoks] = 1;
        } else if (r < 7) {
            toks[ntoks] = 2;
        } else if (r < 8) {
            toks[ntoks] = 5;
        } else if (r < 9) {
            toks[ntoks] = 6;
        } else if (r < 10) {
            toks[ntoks] = 9;
        } else {
            toks[ntoks] = 10;
        }
        ntoks = ntoks + 1;
    }
    while (depth > 0) {
        toks[ntoks] = 4;
        ntoks = ntoks + 1;
        depth = depth - 1;
    }
}

// fillStyle is an alternative one-pass layout: it never breaks before
// operators and collapses runs of commas, measuring how many tokens land
// per line (a pretty-printer's "fill" mode).
func fillStyle() int {
    var i int;
    var c int;
    var lines int;
    var onLine int;
    var fsig int;
    c = 0;
    lines = 1;
    onLine = 0;
    fsig = 0;
    for (i = 0; i < ntoks; i = i + 1) {
        var k int;
        var w int;
        k = toks[i];
        w = tokWidth(k) + 1;
        if (c + w > margin && k != 9 && k != 10 && onLine > 0) {
            fsig = (fsig * 131 + onLine) % 1000000007;
            lines = lines + 1;
            c = 0;
            onLine = 0;
        }
        c = c + w;
        onLine = onLine + 1;
        if (k == 5) {
            fsig = (fsig * 131 + onLine) % 1000000007;
            lines = lines + 1;
            c = 0;
            onLine = 0;
        }
    }
    return fsig * 7 + lines;
}

func run(seed int, m int) {
    genProgram(seed);
    col = 0;
    indent = 0;
    line = 1;
    sig = 0;
    margin = m;
    format(0);
    print(line);
    print(sig);
    print(fillStyle());
}

func main() {
    run(7, 72);
    run(99, 40);
    run(12345, 100);
}
`

// awk: pattern scanning — synthesized input records with fields, a set of
// patterns (field comparisons and range patterns), and per-pattern actions,
// like an awk program over a log file. The per-record state travels through
// parameters and the accumulators live in the driver's locals, mirroring
// how the original awk's interpreter loop keeps its cell registers.
const srcAwk = `
// awk - pattern scanning and processing.
// Records have 4 fields, synthesized deterministically from the record
// number; all per-pass state lives in runPass's locals.
var histo [10]int;

func recordValue(seed int, nr int) int {
    return (seed + nr * 2654435761) % 1000003;
}

func field0(v int) int { return v % 100; }
func field1(v int) int { return (v / 100) % 50; }
func field2(v int) int { return (v / 5000) % 20; }
func field3(v int) int { return v % 7; }

func matchEq(field int, val int) int { return field == val; }
func matchGt(field int, val int) int { return field > val; }
func matchMod(field int, m int, r int) int { return field % m == r; }

func action2(sum2 int, a int, c int) int {
    return (sum2 + a * c) % 1000000007;
}

func bumpHisto(b int) {
    histo[b % 10] = histo[b % 10] + 1;
}

// rangeStep advances a /start/,/stop/ range pattern: returns the new state
// (0 or 1) packed with whether the line was inside (state*2 + inside).
func rangeStep(state int, startHit int, stopHit int) int {
    var inside int;
    inside = 0;
    if (state == 0) {
        if (startHit) { state = 1; }
    }
    if (state == 1) {
        inside = 1;
        if (stopHit) { state = 0; }
    }
    return state * 2 + inside;
}

func runPass(seed int) {
    var nr int;
    var count1 int;
    var sum1 int;
    var count2 int;
    var sum2 int;
    var count3 int;
    var range1 int;
    var range2 int;
    var lines1 int;
    var lines2 int;
    var i int;
    nr = 0; count1 = 0; sum1 = 0; count2 = 0; sum2 = 0; count3 = 0;
    range1 = 0; range2 = 0; lines1 = 0; lines2 = 0;
    for (i = 0; i < 10; i = i + 1) { histo[i] = 0; }
    while (nr < 900) {
        nr = nr + 1;
        var v int;
        var a int;
        var b int;
        var c int;
        var d int;
        v = recordValue(seed, nr);
        a = field0(v);
        b = field1(v);
        c = field2(v);
        d = field3(v);
        if (matchGt(a, 50)) {
            count1 = count1 + 1;
            sum1 = sum1 + b;
        }
        if (matchMod(b, 3, 1) && matchEq(d, 2)) {
            count2 = count2 + 1;
            sum2 = action2(sum2, a, c);
        }
        if (matchEq(c, 7) || matchEq(c, 13)) { count3 = count3 + 1; }
        bumpHisto(b);
        var st int;
        st = rangeStep(range1, matchEq(d, 0), matchEq(d, 6));
        range1 = st / 2;
        lines1 = lines1 + st % 2;
        st = rangeStep(range2, matchGt(a, 90), matchGt(b, 45));
        range2 = st / 2;
        lines2 = lines2 + st % 2;
    }
    print(nr);
    print(count1);
    print(sum1);
    print(count2);
    print(sum2);
    print(count3);
    print(lines1);
    print(lines2);
    var hsig int;
    hsig = 0;
    for (i = 0; i < 10; i = i + 1) { hsig = hsig * 1000 + histo[i] % 1000; }
    print(hsig);
}

func main() {
    runPass(17);
    runPass(23456);
}
`
