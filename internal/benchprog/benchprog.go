// Package benchprog holds the 13 CW benchmark programs mirroring the
// paper's measurement suite (Table 1's rows). The originals were production
// Pascal/C programs; these are CW programs of graded size and matching
// character — game search, backtracking, string manipulation, file
// comparison, a synthetic benchmark, the Stanford suite, text processing,
// pattern scanning, and three compiler-like passes — chosen to span the same
// call-intensity and call-graph-height regimes the paper's analysis turns
// on.
package benchprog

// Benchmark is one suite entry.
type Benchmark struct {
	Name string
	// Description mirrors the paper's appendix.
	Description string
	// Source is the CW program text.
	Source string
	// Lines counts the source lines (the paper orders Table 1 by size).
	Lines int
}

// All returns the benchmarks in the paper's order (increasing size).
func All() []Benchmark {
	list := []Benchmark{
		{Name: "nim", Description: "a program to play the game of Nim", Source: srcNim},
		{Name: "map", Description: "a program to find a 4-coloring for a map", Source: srcMap},
		{Name: "calcc", Description: "a program that manipulates dynamic and variable-length strings", Source: srcCalcc},
		{Name: "diff", Description: "a file comparison utility", Source: srcDiff},
		{Name: "dhrystone", Description: "a synthetic systems-programming benchmark", Source: srcDhrystone},
		{Name: "stanford", Description: "the Stanford integer benchmark suite", Source: srcStanford},
		{Name: "pf", Description: "a pretty-printer", Source: srcPf},
		{Name: "awk", Description: "a pattern scanning and processing utility", Source: srcAwk},
		{Name: "tex", Description: "a paragraph-building typesetter kernel", Source: srcTex},
		{Name: "ccom", Description: "first pass of a C compiler (expression compiler)", Source: srcCcom},
		{Name: "as1", Description: "an assembler/reorganizer", Source: srcAs1},
		{Name: "upas", Description: "first pass of a Pascal compiler (parser)", Source: srcUpas},
		{Name: "uopt", Description: "a global optimizer (dataflow + allocation kernel)", Source: srcUopt},
	}
	for i := range list {
		list[i].Lines = countLines(list[i].Source)
	}
	return list
}

// Lookup returns the benchmark with the given name, or nil.
func Lookup(name string) *Benchmark {
	all := All()
	for i := range all {
		if all[i].Name == name {
			return &all[i]
		}
	}
	return nil
}

func countLines(s string) int {
	n := 0
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}
