package benchprog

import (
	"fmt"
	"strings"
)

// Large returns a synthetic program well beyond the paper suite's sizes,
// shaped for the compilation pipeline itself rather than for Table 1: a
// wide, shallow call graph (many independent leaves under a tier of middle
// functions under main) whose per-function bodies carry enough register
// pressure that allocation dominates compile time. The wavefront scheduler
// condenses it into three levels, so it exposes the pipeline's available
// parallelism almost perfectly.
//
// The program is deterministic, terminating and trap-free (all array
// indices derive from nonnegative loop counters), so it can also be
// executed. It is not part of All(): the paper's tables stay the paper's.
func Large() Benchmark {
	const nLeaves, nMids, leavesPerMid = 36, 12, 3
	var b strings.Builder
	b.WriteString("// large - synthetic wide-call-graph compile workload.\n")
	b.WriteString("var work [64]int;\n\n")
	for k := 0; k < nLeaves; k++ {
		fmt.Fprintf(&b, `func leaf%d(a int, b int) int {
    var i int;
    var s int;
    var t int;
    var u int;
    s = a * %d + %d;
    t = b + %d;
    u = 1;
    for (i = 0; i < %d; i = i + 1) {
        s = s + i * t;
        if (s > 4096) { s = s - 4093; }
        t = t + u;
        u = u + i + %d;
        if (u > 512) { u = u - 509; }
        work[i %% 64] = s + t;
        t = t + work[(i + %d) %% 64];
    }
    return s + t + u;
}

`, k, 3+k%5, k, k%7, 8+k%6, k%3, k%11)
	}
	for m := 0; m < nMids; m++ {
		// Each mid drives a distinct slice of leaves so the graph stays wide.
		l0 := (m * leavesPerMid) % nLeaves
		l1 := (m*leavesPerMid + 1) % nLeaves
		l2 := (m*leavesPerMid + 2) % nLeaves
		fmt.Fprintf(&b, `func mid%d(n int) int {
    var i int;
    var acc int;
    acc = n;
    for (i = 0; i < 3; i = i + 1) {
        acc = acc + leaf%d(i, n) + leaf%d(n, i) - leaf%d(i + n, i);
        if (acc > 100000) { acc = acc - 99991; }
        if (acc < 0 - 100000) { acc = acc + 99991; }
    }
    return acc;
}

`, m, l0, l1, l2)
	}
	b.WriteString("func main() {\n    var total int;\n    total = 0;\n")
	for m := 0; m < nMids; m++ {
		fmt.Fprintf(&b, "    total = total + mid%d(%d);\n", m, m+1)
	}
	b.WriteString("    print(total);\n}\n")
	src := b.String()
	return Benchmark{
		Name:        "large",
		Description: "synthetic wide-call-graph compile workload (not in the paper suite)",
		Source:      src,
		Lines:       countLines(src),
	}
}
