// Package liveness computes live-variable information for IR functions and
// builds the live-range summaries the priority-based coloring allocator
// consumes: the set of blocks each temp's range touches (the Chow–Hennessy
// granularity), frequency-weighted occurrence counts, the calls each range
// spans, and a precise interference graph.
package liveness

import (
	"chow88/internal/dataflow"
	"chow88/internal/ir"
)

// Result holds per-block live sets, bit-indexed by temp ID.
type Result struct {
	F       *ir.Func
	LiveIn  map[*ir.Block]dataflow.BitVec
	LiveOut map[*ir.Block]dataflow.BitVec
}

// Analyze runs backward live-variable analysis.
func Analyze(f *ir.Func) *Result {
	n := f.NumTemps()
	res := &Result{
		F:       f,
		LiveIn:  make(map[*ir.Block]dataflow.BitVec, len(f.Blocks)),
		LiveOut: make(map[*ir.Block]dataflow.BitVec, len(f.Blocks)),
	}
	use := make(map[*ir.Block]dataflow.BitVec, len(f.Blocks))
	def := make(map[*ir.Block]dataflow.BitVec, len(f.Blocks))
	// One contiguous backing array per vector family: four allocations for
	// the whole function instead of four per block.
	words := (n + 63) / 64
	backing := make(dataflow.BitVec, 4*words*len(f.Blocks))
	carve := func() dataflow.BitVec {
		v := backing[:words:words]
		backing = backing[words:]
		return v
	}
	var buf []*ir.Temp
	for _, b := range f.Blocks {
		u, d := carve(), carve()
		for _, in := range b.Instrs {
			buf = in.Uses(buf[:0])
			for _, t := range buf {
				if !d.Get(t.ID) {
					u.Set(t.ID)
				}
			}
			if in.Dst != nil {
				d.Set(in.Dst.ID)
			}
		}
		use[b], def[b] = u, d
		res.LiveIn[b] = carve()
		res.LiveOut[b] = carve()
	}
	// Iterate to fixpoint over postorder (reverse RPO) for fast convergence.
	rpo := f.RPO()
	in := dataflow.GetScratch(n)
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := res.LiveOut[b]
			for _, s := range b.Succs {
				if out.Union(res.LiveIn[s]) {
					changed = true
				}
			}
			in.Copy(out)
			in.AndNot(def[b])
			in.Union(use[b])
			if !in.Equal(res.LiveIn[b]) {
				res.LiveIn[b].Copy(in)
				changed = true
			}
		}
	}
	dataflow.PutScratch(in)
	return res
}

// Range is the allocator's view of one temp.
type Range struct {
	Temp *ir.Temp
	// Blocks the range touches (live-in, live-out, or referenced there).
	Blocks map[*ir.Block]bool
	// Weight is the frequency-weighted number of occurrences (defs + uses):
	// the number of memory operations avoided per run if the temp gets a
	// register instead of a stack home.
	Weight float64
	// Occurrences is the unweighted def+use count.
	Occurrences int
	// Calls lists the call sites whose execution the temp's value must
	// survive (live immediately after the call, not counting the call's own
	// result).
	Calls []ir.CallSite
	// EntryLive reports whether the range is live at function entry
	// (parameters).
	EntryLive bool
}

// Spans reports whether the range crosses any call.
func (r *Range) Spans() bool { return len(r.Calls) > 0 }

// Ranges builds the per-temp range summaries.
func Ranges(f *ir.Func, res *Result) []*Range {
	n := f.NumTemps()
	ranges := make([]*Range, n)
	temps := f.Temps()
	for i, t := range temps {
		ranges[i] = &Range{Temp: t, Blocks: map[*ir.Block]bool{}}
	}
	var buf []*ir.Temp
	live := dataflow.GetScratch(n)
	defer dataflow.PutScratch(live)
	for _, b := range f.Blocks {
		freq := b.Freq()
		res.LiveIn[b].ForEach(func(i int) { ranges[i].Blocks[b] = true })
		res.LiveOut[b].ForEach(func(i int) { ranges[i].Blocks[b] = true })
		// Backward scan for live-across-call sets.
		live.Copy(res.LiveOut[b])
		for ii := len(b.Instrs) - 1; ii >= 0; ii-- {
			in := b.Instrs[ii]
			if in.Op.IsCall() {
				live.ForEach(func(i int) {
					if in.Dst != nil && i == in.Dst.ID {
						return
					}
					r := ranges[i]
					r.Calls = append(r.Calls, ir.CallSite{Block: b, Index: ii, Instr: in})
				})
			}
			if in.Dst != nil {
				live.Clear(in.Dst.ID)
				r := ranges[in.Dst.ID]
				r.Blocks[b] = true
				r.Weight += freq
				r.Occurrences++
			}
			buf = in.Uses(buf[:0])
			for _, t := range buf {
				live.Set(t.ID)
				r := ranges[t.ID]
				r.Blocks[b] = true
				r.Weight += freq
				r.Occurrences++
			}
		}
	}
	if len(f.Blocks) > 0 {
		entryIn := res.LiveIn[f.Entry()]
		for i := range ranges {
			if entryIn.Get(i) {
				ranges[i].EntryLive = true
			}
		}
	}
	return ranges
}

// Interference is an adjacency structure over temp IDs.
type Interference struct {
	n   int
	adj []dataflow.BitVec
}

// NewInterference creates an empty graph over n temps. The rows share one
// contiguous backing array, so building the graph costs two allocations.
func NewInterference(n int) *Interference {
	g := &Interference{n: n, adj: make([]dataflow.BitVec, n)}
	words := (n + 63) / 64
	backing := make(dataflow.BitVec, words*n)
	for i := range g.adj {
		g.adj[i] = backing[:words:words]
		backing = backing[words:]
	}
	return g
}

// AddEdge records that a and b interfere.
func (g *Interference) AddEdge(a, b int) {
	if a == b {
		return
	}
	g.adj[a].Set(b)
	g.adj[b].Set(a)
}

// Interferes reports whether a and b interfere.
func (g *Interference) Interferes(a, b int) bool { return g.adj[a].Get(b) }

// Neighbors returns the adjacency set of a.
func (g *Interference) Neighbors(a int) dataflow.BitVec { return g.adj[a] }

// Degree returns the number of neighbors of a.
func (g *Interference) Degree(a int) int { return g.adj[a].Count() }

// BuildInterference computes a precise interference graph: a def interferes
// with everything live after the defining instruction (Chaitin's rule, with
// the copy refinement: for t := s the edge t–s is not added, enabling the
// allocator to give both the same register).
func BuildInterference(f *ir.Func, res *Result) *Interference {
	n := f.NumTemps()
	g := NewInterference(n)
	var buf []*ir.Temp
	live := dataflow.GetScratch(n)
	defer dataflow.PutScratch(live)
	for _, b := range f.Blocks {
		live.Copy(res.LiveOut[b])
		for ii := len(b.Instrs) - 1; ii >= 0; ii-- {
			in := b.Instrs[ii]
			if in.Dst != nil {
				copySrc := -1
				if in.Op == ir.OpCopy && in.A.Temp != nil {
					copySrc = in.A.Temp.ID
				}
				d := in.Dst.ID
				live.ForEach(func(i int) {
					if i != d && i != copySrc {
						g.AddEdge(d, i)
					}
				})
				live.Clear(d)
			}
			buf = in.Uses(buf[:0])
			for _, t := range buf {
				live.Set(t.ID)
			}
		}
	}
	// The calling convention "defines" all parameters at entry: parameters
	// live into the body interfere with each other and with anything else
	// live at entry.
	if len(f.Blocks) > 0 {
		entryIn := res.LiveIn[f.Entry()]
		for _, p := range f.Params {
			entryIn.ForEach(func(i int) {
				if i != p.ID {
					g.AddEdge(p.ID, i)
				}
			})
		}
		for i, p := range f.Params {
			for _, q := range f.Params[i+1:] {
				g.AddEdge(p.ID, q.ID)
			}
		}
	}
	return g
}
