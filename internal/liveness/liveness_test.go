package liveness

import (
	"testing"

	"chow88/internal/dataflow"
	"chow88/internal/ir"
	"chow88/internal/lower"
	"chow88/internal/parser"
	"chow88/internal/sema"
)

func buildFunc(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(p)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	m, err := lower.Build(info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	f := m.Lookup(name)
	dataflow.Loops(f)
	return f
}

func findTemp(f *ir.Func, name string) *ir.Temp {
	for _, t := range f.Temps() {
		if t.Name == name {
			return t
		}
	}
	return nil
}

func TestParamLiveIntoBody(t *testing.T) {
	f := buildFunc(t, `
func g(x int) int { return x; }
func f(a int, b int) int {
    var s int;
    s = g(a);
    return s + b;
}
func main() { print(f(1, 2)); }`, "f")
	res := Analyze(f)
	a, b := findTemp(f, "a"), findTemp(f, "b")
	if a == nil || b == nil {
		t.Fatal("params not found")
	}
	entryIn := res.LiveIn[f.Entry()]
	if !entryIn.Get(a.ID) || !entryIn.Get(b.ID) {
		t.Errorf("params must be live at entry: %s", entryIn)
	}

	ranges := Ranges(f, res)
	rb := ranges[b.ID]
	if !rb.EntryLive {
		t.Errorf("b should be entry-live")
	}
	// b is live across the call to g; a is not (consumed as an argument).
	if len(rb.Calls) != 1 {
		t.Errorf("b spans %d calls, want 1", len(rb.Calls))
	}
	ra := ranges[a.ID]
	if len(ra.Calls) != 0 {
		t.Errorf("a spans %d calls, want 0", len(ra.Calls))
	}
}

func TestCallResultNotLiveAcrossItsOwnCall(t *testing.T) {
	f := buildFunc(t, `
func g() int { return 1; }
func f() int {
    var x int;
    x = g();
    return x;
}
func main() { print(f()); }`, "f")
	res := Analyze(f)
	ranges := Ranges(f, res)
	for _, r := range ranges {
		if len(r.Calls) > 0 {
			t.Errorf("temp %s should not span the call that defines it", r.Temp)
		}
	}
}

func TestLoopWeights(t *testing.T) {
	f := buildFunc(t, `
func f(n int) int {
    var s int;
    var i int;
    for (i = 0; i < n; i = i + 1) { s = s + i; }
    return s;
}
func main() { print(f(10)); }`, "f")
	res := Analyze(f)
	ranges := Ranges(f, res)
	s := findTemp(f, "s.1")
	if s == nil {
		// Fall back: locate any var named with prefix s.
		for _, tt := range f.Temps() {
			if tt.IsVar && tt.Name[0] == 's' {
				s = tt
			}
		}
	}
	if s == nil {
		t.Fatal("s not found")
	}
	rs := ranges[s.ID]
	// s occurs inside the loop, so its weight must exceed its raw count.
	if rs.Weight <= float64(rs.Occurrences) {
		t.Errorf("weight %f should exceed occurrences %d (loop weighting)", rs.Weight, rs.Occurrences)
	}
}

func TestInterference(t *testing.T) {
	f := buildFunc(t, `
func f(a int, b int) int {
    var x int;
    var y int;
    x = a + b;
    y = a - b;
    return x * y;
}
func main() { print(f(3, 4)); }`, "f")
	res := Analyze(f)
	g := BuildInterference(f, res)
	a, b := findTemp(f, "a"), findTemp(f, "b")
	x, y := findTemp(f, "x.2"), findTemp(f, "y.3")
	if x == nil || y == nil {
		t.Fatalf("locals not found: %v", f.Temps())
	}
	if !g.Interferes(a.ID, b.ID) {
		t.Errorf("parameters a and b must interfere")
	}
	if !g.Interferes(x.ID, y.ID) {
		t.Errorf("x and y are simultaneously live; must interfere")
	}
	if g.Degree(x.ID) == 0 {
		t.Errorf("x has neighbors")
	}
}

func TestCopyDoesNotInterfere(t *testing.T) {
	// y = x; return y: x dies at the copy, so x and y can share a register.
	f := ir.NewFunc("c")
	x := f.NewTemp("x", true)
	y := f.NewTemp("y", true)
	b := f.NewBlock()
	op := ir.TempOp(y)
	b.Instrs = []*ir.Instr{
		{Op: ir.OpConst, Dst: x, Imm: 7},
		{Op: ir.OpCopy, Dst: y, A: ir.TempOp(x)},
		ir.NewRet(&op),
	}
	f.Returns = true
	f.ComputeCFG()
	res := Analyze(f)
	g := BuildInterference(f, res)
	if g.Interferes(x.ID, y.ID) {
		t.Errorf("copy-related temps should not interfere")
	}
}

func TestRangeBlocks(t *testing.T) {
	f := buildFunc(t, `
func f(n int) int {
    var s int;
    s = 1;
    if (n > 0) { s = 2; } else { s = 3; }
    return s;
}
func main() { print(f(0)); }`, "f")
	res := Analyze(f)
	ranges := Ranges(f, res)
	var s *ir.Temp
	for _, tt := range f.Temps() {
		if tt.IsVar && tt.Name[0] == 's' {
			s = tt
		}
	}
	rs := ranges[s.ID]
	if len(rs.Blocks) < 3 {
		t.Errorf("s should span several blocks, got %d", len(rs.Blocks))
	}
}
