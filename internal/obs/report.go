// Reports: the session's registry diffed over a snapshot window and
// shaped for humans (Table) or machines (encoding/json). CompileReport
// rides on chow88.Program, RunReport on sim.Result.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stat is one named counter or gauge value.
type Stat struct {
	Name  string
	Value int64
}

// PhaseStat is one phase timer: how many spans of the phase closed in the
// window and their cumulative wall time.
type PhaseStat struct {
	Phase string
	Count int64
	Nanos int64
}

// Report is a window of registry activity: everything that happened
// between a Snapshot and the moment ReportSince was called. Zero-valued
// phases and counters are suppressed.
type Report struct {
	// WallNanos is the window's wall-clock width.
	WallNanos int64
	Phases    []PhaseStat `json:",omitempty"`
	Counters  []Stat      `json:",omitempty"`
	// Gauges hold end-of-window high-water marks (not diffs).
	Gauges []Stat `json:",omitempty"`
}

// CompileReport describes one compilation.
type CompileReport struct {
	Report
	// Training isolates the profile-feedback training build and run;
	// nil for plain compiles. The enclosing Report covers the final
	// build only, so the two phases read separately.
	Training *Report `json:",omitempty"`
	// Demotions records every graceful-degradation intervention the
	// pipeline took: procedures replanned or demoted to the open
	// convention after a validation failure or a recovered worker panic.
	// Empty for clean compiles.
	Demotions []Demotion `json:",omitempty"`
	// Explain carries the decision-provenance journal artifact
	// (*explain.Artifact) when a journal was active during the compile.
	// Typed any because obs sits below explain in the import graph.
	Explain any `json:",omitempty"`
}

// Demotion is one graceful-degradation intervention on one procedure.
type Demotion struct {
	// Func is the procedure intervened on.
	Func string
	// Phase is the pipeline stage whose failure triggered the
	// intervention: "plan", "validate", "codegen" or "code-check".
	Phase string
	// Action is what the pipeline did: "replan" (recompute the plan),
	// "replan-nosw" (recompute with shrink-wrapping disabled for the
	// procedure) or "demote" (force the open convention and recompute).
	Action string
	// Reason is the violation rule or recovered panic that triggered it.
	Reason string
}

func (d Demotion) String() string {
	return fmt.Sprintf("%s: %s after %s failure (%s)", d.Func, d.Action, d.Phase, d.Reason)
}

// InlineReport summarizes one run of the profile-guided inliner over a
// module: what was considered, what was spliced, what the growth budget
// refused, and which procedures became uncalled and were dropped. It rides
// on core.ProgramPlan and chow88.Program so drivers can print the one-line
// diagnostic without re-deriving anything.
type InlineReport struct {
	// Budget is the code-growth allowance in percent of the pre-inlining
	// instruction count.
	Budget int
	// BaseInstrs / FinalInstrs are IR instruction counts before and after.
	BaseInstrs      int
	FinalInstrs     int
	SitesConsidered int
	SitesInlined    int
	// BudgetStopped counts candidates skipped because splicing them would
	// have exceeded the growth budget.
	BudgetStopped   int
	ProcsEliminated int
	// Inlined lists the accepted sites in the order they were spliced.
	Inlined []InlinedSite `json:",omitempty"`
}

// InlinedSite is one accepted inlining decision.
type InlinedSite struct {
	Caller string
	Callee string
	// Freq is the call block's execution-frequency estimate at decision
	// time (measured count under profile feedback, 10^depth otherwise).
	Freq float64
}

// String is the one-line driver diagnostic.
func (r *InlineReport) String() string {
	if r == nil {
		return ""
	}
	return fmt.Sprintf("inline: %d/%d sites inlined, %d procs eliminated, ir %d -> %d instrs (budget %d%%, %d stopped)",
		r.SitesInlined, r.SitesConsidered, r.ProcsEliminated, r.BaseInstrs, r.FinalInstrs, r.Budget, r.BudgetStopped)
}

// RunReport describes one simulator run.
type RunReport struct {
	Report
	// Engine is the engine that executed the run: "fast" or "reference".
	Engine string
	// FallbackReason explains a reference-engine run the fast engine
	// declined (static verification failure, degenerate initial stack
	// pointer). Empty when the fast engine ran.
	FallbackReason string `json:",omitempty"`
	// SuperHits are per-superinstruction dispatch counts attributed via
	// block entry counters, largest first.
	SuperHits []Stat `json:",omitempty"`
}

// SuperHitPrefix namespaces the labeled counters that carry the fast
// engine's per-superinstruction dispatch counts. ReportSince keeps them
// out of Counters; RunReport surfaces them as SuperHits.
const SuperHitPrefix = "sim.op."

// ReportSince diffs the registry against sn. A nil session returns nil.
func (s *Session) ReportSince(sn Snapshot) *Report {
	if s == nil {
		return nil
	}
	now := s.Snap()
	r := &Report{}
	if !sn.wall.IsZero() {
		r.WallNanos = now.wall.Sub(sn.wall).Nanoseconds()
	} else {
		r.WallNanos = now.wall.Sub(s.start).Nanoseconds()
	}
	for p := Phase(0); p < NumPhases; p++ {
		if n := now.phaseN[p] - sn.phaseN[p]; n > 0 {
			r.Phases = append(r.Phases, PhaseStat{
				Phase: p.Name(),
				Count: n,
				Nanos: now.phaseNS[p] - sn.phaseNS[p],
			})
		}
	}
	for c := Counter(0); c < NumCounters; c++ {
		if d := now.counters[c] - sn.counters[c]; d != 0 {
			r.Counters = append(r.Counters, Stat{Name: c.Name(), Value: d})
		}
	}
	for _, st := range labeledDiff(now.labeled, sn.labeled, "") {
		if !strings.HasPrefix(st.Name, SuperHitPrefix) {
			r.Counters = append(r.Counters, st)
		}
	}
	for g := Gauge(0); g < NumGauges; g++ {
		if v := now.gauges[g]; v != 0 {
			r.Gauges = append(r.Gauges, Stat{Name: g.Name(), Value: v})
		}
	}
	return r
}

// LabeledSince diffs the labeled counters with the given name prefix
// (which is stripped), sorted by value descending then name.
func (s *Session) LabeledSince(sn Snapshot, prefix string) []Stat {
	if s == nil {
		return nil
	}
	now := s.Snap()
	out := labeledDiff(now.labeled, sn.labeled, prefix)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Value > out[j].Value })
	return out
}

func labeledDiff(now, old map[string]int64, prefix string) []Stat {
	var out []Stat
	for name, v := range now {
		if prefix != "" && !strings.HasPrefix(name, prefix) {
			continue
		}
		if d := v - old[name]; d != 0 {
			out = append(out, Stat{Name: strings.TrimPrefix(name, prefix), Value: d})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counter looks up a counter diff by report name; zero when absent.
func (r *Report) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	for _, st := range r.Counters {
		if st.Name == name {
			return st.Value
		}
	}
	return 0
}

// Gauge looks up a gauge by report name; zero when absent.
func (r *Report) Gauge(name string) int64 {
	if r == nil {
		return 0
	}
	for _, st := range r.Gauges {
		if st.Name == name {
			return st.Value
		}
	}
	return 0
}

// PhaseNanos looks up a phase's cumulative time; zero when the phase never
// closed a span in the window.
func (r *Report) PhaseNanos(phase string) int64 {
	if r == nil {
		return 0
	}
	for _, p := range r.Phases {
		if p.Phase == phase {
			return p.Nanos
		}
	}
	return 0
}

func fmtDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// Table renders the report as an aligned text block.
func (r *Report) Table() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	r.writeTable(&b, "")
	return b.String()
}

func (r *Report) writeTable(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%swall time %s\n", indent, fmtDur(r.WallNanos))
	for _, p := range r.Phases {
		fmt.Fprintf(b, "%s  %-34s %12s  ×%d\n", indent, "phase "+p.Phase, fmtDur(p.Nanos), p.Count)
	}
	for _, c := range r.Counters {
		fmt.Fprintf(b, "%s  %-34s %12d\n", indent, c.Name, c.Value)
	}
	for _, g := range r.Gauges {
		fmt.Fprintf(b, "%s  %-34s %12d  (max)\n", indent, g.Name, g.Value)
	}
}

// Table renders the compile report, with the training window (when
// present) as an indented sub-block.
func (r *CompileReport) Table() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("compile:\n")
	r.Report.writeTable(&b, "  ")
	for _, d := range r.Demotions {
		fmt.Fprintf(&b, "  degraded %s\n", d)
	}
	if r.Training != nil {
		b.WriteString("  training build+run:\n")
		r.Training.writeTable(&b, "    ")
	}
	return b.String()
}

// superHitsShown caps the superinstruction rows Table prints (the JSON
// form always carries all of them).
const superHitsShown = 12

// Table renders the run report: the engine line, the metrics window and
// the hottest superinstructions.
func (r *RunReport) Table() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "run: engine=%s", r.Engine)
	if r.FallbackReason != "" {
		fmt.Fprintf(&b, " (fallback: %s)", r.FallbackReason)
	}
	b.WriteString("\n")
	r.Report.writeTable(&b, "  ")
	if len(r.SuperHits) > 0 {
		n := len(r.SuperHits)
		fmt.Fprintf(&b, "  hottest superinstructions (of %d executed kinds):\n", n)
		if n > superHitsShown {
			n = superHitsShown
		}
		for _, st := range r.SuperHits[:n] {
			fmt.Fprintf(&b, "    %-32s %12d\n", st.Name, st.Value)
		}
	}
	return b.String()
}
