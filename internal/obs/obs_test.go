package obs

import (
	"bytes"
	"encoding/json"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestNamesComplete catches a counter/gauge/phase added without a name table
// entry (an empty name would silently vanish from reports).
func TestNamesComplete(t *testing.T) {
	for c := Counter(0); c < NumCounters; c++ {
		if c.Name() == "" {
			t.Errorf("counter %d has no name", c)
		}
	}
	for g := Gauge(0); g < NumGauges; g++ {
		if g.Name() == "" {
			t.Errorf("gauge %d has no name", g)
		}
	}
	for p := Phase(0); p < NumPhases; p++ {
		if p.Name() == "" {
			t.Errorf("phase %d has no name", p)
		}
	}
}

// TestReportSince checks that reports diff the registry over the snapshot
// window: activity before the snapshot is excluded, gauges read end-of-window
// values, and superinstruction labels stay out of the Counters list.
func TestReportSince(t *testing.T) {
	s := NewSession(Options{})
	s.Add(CSimRunsFast, 3)
	s.SetMax(GMaxLevelWidth, 5)
	snap := s.Snap()

	s.Add(CSimRunsFast, 2)
	s.Add(CFrontCacheHit, 1)
	s.SetMax(GMaxLevelWidth, 4) // below the recorded max: no effect
	s.AddLabeled(SuperHitPrefix+"LW", 10)
	s.AddLabeled(SuperHitPrefix+"SW", 30)
	s.AddLabeled("other.label", 7)

	r := s.ReportSince(snap)
	if got := r.Counter("sim.runs_fast"); got != 2 {
		t.Errorf("sim.runs_fast diff = %d, want 2", got)
	}
	if got := r.Counter("front.cache_hits"); got != 1 {
		t.Errorf("front.cache_hits diff = %d, want 1", got)
	}
	if got := r.Counter("other.label"); got != 7 {
		t.Errorf("labeled counter diff = %d, want 7", got)
	}
	if got := r.Gauge("plan.max_level_width"); got != 5 {
		t.Errorf("gauge = %d, want high-water 5", got)
	}
	for _, st := range r.Counters {
		if st.Name == SuperHitPrefix+"LW" || st.Name == SuperHitPrefix+"SW" {
			t.Errorf("superinstruction label %q leaked into Counters", st.Name)
		}
	}
	hits := s.LabeledSince(snap, SuperHitPrefix)
	if len(hits) != 2 || hits[0].Name != "SW" || hits[0].Value != 30 || hits[1].Name != "LW" {
		t.Errorf("LabeledSince = %+v, want SW=30 then LW=10", hits)
	}
	if r.WallNanos <= 0 {
		t.Errorf("WallNanos = %d, want > 0", r.WallNanos)
	}
}

func TestSpanPhaseTimers(t *testing.T) {
	s := NewSession(Options{})
	snap := s.Snap()
	sp := s.Span(PhaseParse, "parse")
	time.Sleep(time.Millisecond)
	sp.End()
	s.Span(PhaseParse, "parse again").End()

	r := s.ReportSince(snap)
	var ps *PhaseStat
	for i := range r.Phases {
		if r.Phases[i].Phase == "parse" {
			ps = &r.Phases[i]
		}
	}
	if ps == nil {
		t.Fatalf("no parse phase in report: %+v", r.Phases)
	}
	if ps.Count != 2 {
		t.Errorf("parse span count = %d, want 2", ps.Count)
	}
	if ps.Nanos < int64(time.Millisecond) {
		t.Errorf("parse phase time = %d ns, want >= 1ms", ps.Nanos)
	}
	if got := r.PhaseNanos("parse"); got != ps.Nanos {
		t.Errorf("PhaseNanos = %d, want %d", got, ps.Nanos)
	}
}

// TestTraceJSON round-trips the trace through encoding/json and checks the
// trace_event invariants tracelint enforces.
func TestTraceJSON(t *testing.T) {
	s := NewSession(Options{Trace: true})
	s.Span(PhaseCompile, "Compile test").End()
	s.SpanTID(PhaseCodegen, "f", 2).End()

	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Cat  string   `json:"cat"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			TID  int      `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", f.DisplayTimeUnit)
	}
	spans := 0
	for _, e := range f.TraceEvents {
		if e.Name == "" || e.Ph == "" {
			t.Errorf("event missing name/ph: %+v", e)
		}
		if e.Ph != "X" {
			continue
		}
		spans++
		if e.TS == nil || *e.TS < 0 || e.Dur == nil || *e.Dur < 0 {
			t.Errorf("span %q has bad ts/dur: %+v", e.Name, e)
		}
		if e.Name == "f" && (e.TID != 2 || e.Cat != "codegen") {
			t.Errorf("span f: tid=%d cat=%q, want tid=2 cat=codegen", e.TID, e.Cat)
		}
	}
	if spans != 2 {
		t.Errorf("trace has %d spans, want 2", spans)
	}
}

// TestNilSafety exercises every entry point on a nil session; any panic
// fails the test.
func TestNilSafety(t *testing.T) {
	var s *Session
	s.Add(CSimRunsFast, 1)
	s.SetMax(GPlanWorkers, 4)
	s.AddLabeled("x", 1)
	s.Span(PhaseRun, "r").End()
	s.SpanTID(PhaseRun, "r", 3).End()
	(Span{}).End()
	snap := s.Snap()
	if r := s.ReportSince(snap); r != nil {
		t.Errorf("nil session ReportSince = %+v, want nil", r)
	}
	if h := s.LabeledSince(snap, SuperHitPrefix); h != nil {
		t.Errorf("nil session LabeledSince = %+v, want nil", h)
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Errorf("nil session trace is invalid JSON: %s", buf.String())
	}
	var nilR *Report
	var nilCR *CompileReport
	var nilRR *RunReport
	if nilR.Table() != "" || nilCR.Table() != "" || nilRR.Table() != "" {
		t.Error("nil report Table() should be empty")
	}
	if nilR.Counter("x") != 0 || nilR.Gauge("x") != 0 || nilR.PhaseNanos("x") != 0 {
		t.Error("nil report lookups should be zero")
	}
}

// disabledPath is the instrumentation sequence a hot call site executes when
// no session is installed.
func disabledPath() {
	s := Current()
	s.Add(CSimBlockEntries, 1)
	s.SetMax(GMaxLevelWidth, 9)
	sp := s.Span(PhaseRun, "run")
	sp.End()
}

// TestObsDisabledAllocFree holds the disabled path to zero allocations —
// the property that lets instrumentation live in the pipeline permanently.
func TestObsDisabledAllocFree(t *testing.T) {
	prev := End()
	defer current.Store(prev)
	if n := testing.AllocsPerRun(1000, disabledPath); n != 0 {
		t.Errorf("disabled obs path allocates %.1f objects per op, want 0", n)
	}
}

func BenchmarkObsDisabled(b *testing.B) {
	prev := End()
	defer current.Store(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disabledPath()
	}
}

// TestConcurrentRegistry hammers the atomic registry from several goroutines
// (run with -race in CI).
func TestConcurrentRegistry(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	s := NewSession(Options{Trace: true})
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Add(CCodegenFuncs, 1)
				s.SetMax(GCodegenWorkers, int64(w))
				s.AddLabeled("k", 1)
			}
			s.SpanTID(PhaseCodegen, "w", w).End()
		}(w)
	}
	wg.Wait()
	r := s.ReportSince(Snapshot{})
	if got := r.Counter("codegen.funcs_emitted"); got != workers*each {
		t.Errorf("funcs_emitted = %d, want %d", got, workers*each)
	}
	if got := r.Counter("k"); got != workers*each {
		t.Errorf("labeled k = %d, want %d", got, workers*each)
	}
	if got := r.Gauge("codegen.workers"); got != workers-1 {
		t.Errorf("workers gauge = %d, want %d", got, workers-1)
	}
}

// TestTableRenders sanity-checks the human-readable forms.
func TestTableRenders(t *testing.T) {
	s := NewSession(Options{})
	snap := s.Snap()
	s.Add(CSimRunsFast, 1)
	s.Span(PhaseRun, "run").End()
	s.AddLabeled(SuperHitPrefix+"LW", 5)
	rr := &RunReport{
		Report:    *s.ReportSince(snap),
		Engine:    "reference",
		SuperHits: s.LabeledSince(snap, SuperHitPrefix),
	}
	rr.FallbackReason = "verify failed"
	out := rr.Table()
	for _, want := range []string{"engine=reference", "fallback: verify failed", "sim.runs_fast", "LW"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("RunReport.Table() missing %q:\n%s", want, out)
		}
	}
	cr := &CompileReport{Report: *s.ReportSince(snap), Training: s.ReportSince(snap)}
	out = cr.Table()
	for _, want := range []string{"compile:", "training build+run:", "wall time"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("CompileReport.Table() missing %q:\n%s", want, out)
		}
	}
}
