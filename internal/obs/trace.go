// Chrome trace_event export. The session retains completed spans as
// "X" (complete) events; WriteTrace serializes them in the JSON Object
// Format ({"traceEvents": [...]}) that chrome://tracing and Perfetto load
// directly. Timestamps and durations are microseconds since session start,
// per the trace_event spec.
package obs

import (
	"encoding/json"
	"io"
	"time"
)

// traceEvent is one trace_event record. Field names follow the Chrome
// trace-event format document.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func (s *Session) addEvent(e traceEvent) {
	s.trace.Lock()
	if s.traceCap > 0 && len(s.trace.events) >= s.traceCap {
		s.trace.dropped++
	} else {
		s.trace.events = append(s.trace.events, e)
	}
	s.trace.Unlock()
}

// TraceDropped reports how many events were discarded because the session's
// TraceCap was reached. Zero for unbounded sessions.
func (s *Session) TraceDropped() int64 {
	if s == nil {
		return 0
	}
	s.trace.Lock()
	defer s.trace.Unlock()
	return s.trace.dropped
}

// explainDur is the nominal duration of an explain marker event, in
// microseconds. Decisions are instants, but a zero duration would be elided
// by Dur's omitempty and some viewers drop zero-width X events, so markers
// carry this epsilon (tracelint's containment check tolerates it).
const explainDur = 0.001

// ExplainEvent retains one decision-provenance marker on the main timeline
// (tid 0) under the "explain" category, stamped inside the trace lock so
// the per-TID explain stream is timestamp-monotonic in retention order.
// No-op on a nil session or when tracing is off.
func (s *Session) ExplainEvent(phase, fn, name string) {
	if s == nil || !s.tracing {
		return
	}
	s.trace.Lock()
	if s.traceCap > 0 && len(s.trace.events) >= s.traceCap {
		s.trace.dropped++
		s.trace.Unlock()
		return
	}
	ts := float64(time.Since(s.start).Nanoseconds()) / 1e3
	s.trace.events = append(s.trace.events, traceEvent{
		Name: name,
		Cat:  "explain",
		Ph:   "X",
		TS:   ts,
		Dur:  explainDur,
		Args: map[string]any{"phase": phase, "func": fn},
	})
	s.trace.Unlock()
}

// Events reports how many trace events the session has retained.
func (s *Session) Events() int {
	if s == nil {
		return 0
	}
	s.trace.Lock()
	defer s.trace.Unlock()
	return len(s.trace.events)
}

// traceFile is the serialized form: the trace_event JSON Object Format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace serializes the retained spans as Chrome trace_event JSON.
// Safe on a nil session (writes an empty, still-valid trace).
func (s *Session) WriteTrace(w io.Writer) error {
	f := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	if s != nil {
		// Name the process so Perfetto's track header reads sensibly.
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M",
			Args: map[string]any{"name": "chow88"},
		})
		s.trace.Lock()
		f.TraceEvents = append(f.TraceEvents, s.trace.events...)
		s.trace.Unlock()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
