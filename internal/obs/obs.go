// Package obs is the compiler and simulator observability layer: span
// tracing of pipeline phases (exported as Chrome trace_event JSON, viewable
// in Perfetto), an atomic metrics registry of counters/gauges/phase timers,
// and report structs the drivers attach to compiled programs and run
// results.
//
// The layer is strictly passive — it observes decisions, it never makes
// them — and it is built to cost nothing when nobody is looking:
//
//   - Disabled is the default. obs.Current() returns nil until a session is
//     installed with obs.Begin, and every method of *Session and Span is
//     nil-safe, so instrumentation sites read as straight-line code with no
//     conditionals at the call site.
//   - The disabled path is allocation-free and branch-cheap: one atomic
//     pointer load plus a nil check. BenchmarkObsDisabled in this package
//     holds that path to zero allocations.
//   - Counters and gauges are fixed enums indexed into arrays of
//     atomic.Int64, so concurrent pipeline stages (wavefront allocation,
//     parallel codegen) record without locks. Dynamically-named ("labeled")
//     counters exist for cold paths only (per-superinstruction hit counts,
//     published once per run).
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one registry counter. Counters accumulate; reports
// diff them against a Snapshot so one session can cover many compiles.
type Counter uint8

// The registry's counters. Names (counterNames) carry a subsystem prefix
// so reports group naturally.
const (
	// Front-end compile cache (internal/front).
	CFrontCacheHit Counter = iota
	CFrontCacheMiss
	CFrontCacheEvict
	// Register allocation (internal/core, internal/regalloc).
	CPlanLevels
	CPlanFuncs
	CProcsClosed
	CProcsOpen
	CCalleeSavedFreed
	CShrinkWrapRegs
	CEntryExitRegs
	CSaveSites
	CRestoreSites
	CSpilledRanges
	CSplitRounds
	CSplitKept
	CRangesColored
	CRangesSpilled
	// Code generation and linking (internal/codegen).
	CCodegenFuncs
	CLinkCodeWords
	// Linkage validation and graceful degradation (internal/check,
	// internal/pipeline, internal/faultinject).
	CCheckViolations
	CCheckDemotions
	CCheckReplans
	CCheckPanics
	CCheckFaults
	// Simulator (internal/sim).
	CSimRunsNative
	CSimRunsFast
	CSimRunsRef
	CSimVerifyFallback
	CSimStackFallback
	CSimNativeFallback
	CSimNativeTranslates
	CSimNativeBlocks
	CSimNativeCacheHits
	CSimBudgetHandoff
	CSimBlockEntries
	CSimInterpBridges
	CSimPredecodes
	CSimImageCacheHits
	CSimTailInlined
	CSimPoolReuse
	CSimPoolAlloc
	// Incremental recompilation (internal/incr).
	CIncrFullRebuild
	CIncrFuncsReused
	CIncrFuncsReplanned
	CIncrSummaryCutoffs
	CIncrDeltaPropagations
	CIncrDemandCompiles
	CIncrCodeReused
	// Profile-guided inlining (internal/inline).
	CInlineSitesConsidered
	CInlineSitesInlined
	CInlineBudgetStopped
	CInlineProcsEliminated
	CInlineDiscards
	// Compile-as-a-service daemon (internal/daemon).
	CDaemonAccepted
	CDaemonRejectedQueue
	CDaemonRejectedSize
	CDaemonBadRequests
	CDaemonDeadlines
	CDaemonPanics
	CDaemonStateEvictions
	CDaemonDrainRefusals

	NumCounters
)

var counterNames = [NumCounters]string{
	CFrontCacheHit:       "front.cache_hits",
	CFrontCacheMiss:      "front.cache_misses",
	CFrontCacheEvict:     "front.cache_evictions",
	CPlanLevels:          "plan.wavefront_levels",
	CPlanFuncs:           "plan.funcs_planned",
	CProcsClosed:         "plan.procs_closed",
	CProcsOpen:           "plan.procs_open",
	CCalleeSavedFreed:    "plan.callee_saved_freed_by_summary",
	CShrinkWrapRegs:      "plan.regs_shrink_wrapped",
	CEntryExitRegs:       "plan.regs_entry_exit",
	CSaveSites:           "plan.save_sites",
	CRestoreSites:        "plan.restore_sites",
	CSpilledRanges:       "plan.spilled_ranges",
	CSplitRounds:         "plan.split_rounds",
	CSplitKept:           "plan.split_kept",
	CRangesColored:       "regalloc.ranges_colored",
	CRangesSpilled:       "regalloc.ranges_spilled",
	CCodegenFuncs:        "codegen.funcs_emitted",
	CLinkCodeWords:       "link.code_words",
	CCheckViolations:     "check.violations",
	CCheckDemotions:      "check.demotions",
	CCheckReplans:        "check.replans",
	CCheckPanics:         "check.panics_recovered",
	CCheckFaults:         "check.faults_injected",
	CSimRunsNative:       "sim.runs_native",
	CSimRunsFast:         "sim.runs_fast",
	CSimRunsRef:          "sim.runs_reference",
	CSimVerifyFallback:   "sim.verify_fallbacks",
	CSimStackFallback:    "sim.stack_fallbacks",
	CSimNativeFallback:   "sim.native_fallbacks",
	CSimNativeTranslates: "sim.native_translations",
	CSimNativeBlocks:     "sim.native_blocks_translated",
	CSimNativeCacheHits:  "sim.native_cache_hits",
	CSimBudgetHandoff:    "sim.budget_handoffs",
	CSimBlockEntries:     "sim.block_entries",
	CSimInterpBridges:    "sim.interp_bridges",
	CSimPredecodes:       "sim.predecodes",
	CSimImageCacheHits:   "sim.image_cache_hits",
	CSimTailInlined:      "sim.tail_blocks_inlined",
	CSimPoolReuse:        "sim.mem_pool_reuses",
	CSimPoolAlloc:        "sim.mem_pool_allocs",

	CIncrFullRebuild:       "incr.full_rebuilds",
	CIncrFuncsReused:       "incr.funcs_reused",
	CIncrFuncsReplanned:    "incr.funcs_replanned",
	CIncrSummaryCutoffs:    "incr.summary_cutoffs",
	CIncrDeltaPropagations: "incr.delta_propagations",
	CIncrDemandCompiles:    "incr.demand_compiles",
	CIncrCodeReused:        "incr.code_reused",

	CInlineSitesConsidered: "inline.sites_considered",
	CInlineSitesInlined:    "inline.sites_inlined",
	CInlineBudgetStopped:   "inline.budget_stopped",
	CInlineProcsEliminated: "inline.procs_eliminated",
	CInlineDiscards:        "inline.discards",

	CDaemonAccepted:       "daemon.accepted",
	CDaemonRejectedQueue:  "daemon.rejected_queue_full",
	CDaemonRejectedSize:   "daemon.rejected_too_large",
	CDaemonBadRequests:    "daemon.bad_requests",
	CDaemonDeadlines:      "daemon.deadline_exceeded",
	CDaemonPanics:         "daemon.request_panics",
	CDaemonStateEvictions: "daemon.state_evictions",
	CDaemonDrainRefusals:  "daemon.drain_refusals",
}

// Name returns the counter's report name.
func (c Counter) Name() string { return counterNames[c] }

// Gauge identifies a high-water-mark value: SetMax keeps the maximum
// observed, so reports show e.g. the widest wavefront level of a compile.
type Gauge uint8

// The registry's gauges.
const (
	GMaxLevelWidth Gauge = iota
	GPlanWorkers
	GCodegenWorkers
	GFrontCacheEntries
	GIncrFrontier
	GDaemonQueueHigh
	GDaemonBusyHigh

	NumGauges
)

var gaugeNames = [NumGauges]string{
	GMaxLevelWidth:     "plan.max_level_width",
	GPlanWorkers:       "plan.workers",
	GCodegenWorkers:    "codegen.workers",
	GFrontCacheEntries: "front.cache_entries",
	GIncrFrontier:      "incr.frontier_size",
	GDaemonQueueHigh:   "daemon.queue_high_water",
	GDaemonBusyHigh:    "daemon.busy_workers_high_water",
}

// Name returns the gauge's report name.
func (g Gauge) Name() string { return gaugeNames[g] }

// Phase identifies one pipeline phase for span tracing and phase timers.
type Phase uint8

// The traced pipeline phases.
const (
	PhaseCompile Phase = iota
	PhaseParse
	PhaseSema
	PhaseLower
	PhaseOpt
	PhasePlan
	PhaseValidate
	PhaseCodegen
	PhaseLink
	PhasePredecode
	PhaseRun
	PhaseIncr
	PhaseInline

	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseCompile:   "compile",
	PhaseParse:     "parse",
	PhaseSema:      "sema",
	PhaseLower:     "lower",
	PhaseOpt:       "opt",
	PhasePlan:      "plan",
	PhaseValidate:  "validate",
	PhaseCodegen:   "codegen",
	PhaseLink:      "link",
	PhasePredecode: "predecode",
	PhaseRun:       "run",
	PhaseIncr:      "incremental",
	PhaseInline:    "inline",
}

// Name returns the phase's span category / report name.
func (p Phase) Name() string { return phaseNames[p] }

// Options configure a session.
type Options struct {
	// Trace retains span events for export as Chrome trace_event JSON.
	// Metrics and phase timers are always collected by an active session;
	// only event retention is optional.
	Trace bool
	// TraceCap bounds the retained trace events; once reached, further
	// events are dropped (and counted — see Session.TraceDropped). Zero
	// means unbounded, the right choice for one-shot CLI invocations; a
	// long-lived session (the chowd daemon) must cap retention or the
	// trace buffer grows without limit.
	TraceCap int
}

// Session is one observation window. All methods are safe on a nil
// receiver (no-ops returning zero values) and safe for concurrent use.
type Session struct {
	start    time.Time
	tracing  bool
	traceCap int

	counters [NumCounters]atomic.Int64
	gauges   [NumGauges]atomic.Int64
	phaseNS  [NumPhases]atomic.Int64
	phaseN   [NumPhases]atomic.Int64

	labeled struct {
		sync.Mutex
		m map[string]int64
	}

	trace struct {
		sync.Mutex
		events  []traceEvent
		dropped int64
	}
}

// current is the installed session; nil means observability is disabled.
var current atomic.Pointer[Session]

// Begin installs a fresh session as the current one and returns it. The
// previous session, if any, is replaced. Sessions are meant to be
// process-wide (a CLI invocation, one test); concurrent Begin calls race
// for the slot, last one wins.
func Begin(opts Options) *Session {
	s := NewSession(opts)
	current.Store(s)
	return s
}

// End uninstalls the current session and returns it for reading; nil when
// no session was active.
func End() *Session {
	s := current.Load()
	current.Store(nil)
	return s
}

// Current returns the installed session, or nil when observability is
// disabled. The nil result is usable directly: every method no-ops.
func Current() *Session { return current.Load() }

// NewSession builds a session without installing it (tests observe in
// isolation this way).
func NewSession(opts Options) *Session {
	s := &Session{start: time.Now(), tracing: opts.Trace, traceCap: opts.TraceCap}
	s.labeled.m = map[string]int64{}
	return s
}

// Add bumps a counter by n.
func (s *Session) Add(c Counter, n int64) {
	if s == nil {
		return
	}
	s.counters[c].Add(n)
}

// SetMax raises a gauge to v when v exceeds the recorded maximum.
func (s *Session) SetMax(g Gauge, v int64) {
	if s == nil {
		return
	}
	for {
		old := s.gauges[g].Load()
		if v <= old || s.gauges[g].CompareAndSwap(old, v) {
			return
		}
	}
}

// AddLabeled bumps a dynamically-named counter. For cold paths only — it
// takes a lock; hot paths use the fixed Counter enum.
func (s *Session) AddLabeled(name string, n int64) {
	if s == nil {
		return
	}
	s.labeled.Lock()
	s.labeled.m[name] += n
	s.labeled.Unlock()
}

// Span opens a span of the given phase on the main timeline (tid 0).
func (s *Session) Span(p Phase, name string) Span { return s.SpanTID(p, name, 0) }

// SpanTID opens a span on an explicit timeline; parallel pipeline stages
// pass their worker index so Perfetto renders one lane per worker. The
// zero Span (and any span from a nil session) is a no-op to End.
func (s *Session) SpanTID(p Phase, name string, tid int) Span {
	if s == nil {
		return Span{}
	}
	return Span{s: s, name: name, phase: p, tid: int32(tid), start: time.Now()}
}

// Span is an open interval on the trace timeline. It is a value type: the
// disabled path constructs and discards it without allocating.
type Span struct {
	s     *Session
	name  string
	phase Phase
	tid   int32
	start time.Time
}

// End closes the span: the elapsed time is added to the phase timer and,
// when tracing, a complete ("X") event is retained.
func (sp Span) End() {
	s := sp.s
	if s == nil {
		return
	}
	d := time.Since(sp.start)
	s.phaseNS[sp.phase].Add(int64(d))
	s.phaseN[sp.phase].Add(1)
	if s.tracing {
		s.addEvent(traceEvent{
			Name: sp.name,
			Cat:  sp.phase.Name(),
			Ph:   "X",
			TS:   float64(sp.start.Sub(s.start).Nanoseconds()) / 1e3,
			Dur:  float64(d.Nanoseconds()) / 1e3,
			TID:  int(sp.tid),
		})
	}
}

// Snapshot captures the registry state at one instant so a report can
// cover exactly one compile or one run within a longer session.
type Snapshot struct {
	wall     time.Time
	counters [NumCounters]int64
	gauges   [NumGauges]int64
	phaseNS  [NumPhases]int64
	phaseN   [NumPhases]int64
	labeled  map[string]int64
}

// Snap captures the current registry state. On a nil session it returns a
// zero snapshot (whose wall time is the zero Time).
func (s *Session) Snap() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	var sn Snapshot
	sn.wall = time.Now()
	for i := range sn.counters {
		sn.counters[i] = s.counters[i].Load()
	}
	for i := range sn.gauges {
		sn.gauges[i] = s.gauges[i].Load()
	}
	for i := range sn.phaseNS {
		sn.phaseNS[i] = s.phaseNS[i].Load()
		sn.phaseN[i] = s.phaseN[i].Load()
	}
	s.labeled.Lock()
	if len(s.labeled.m) > 0 {
		sn.labeled = make(map[string]int64, len(s.labeled.m))
		for k, v := range s.labeled.m {
			sn.labeled[k] = v
		}
	}
	s.labeled.Unlock()
	return sn
}
