// Package parser implements a recursive-descent parser for the CW language.
package parser

import (
	"fmt"
	"strconv"

	"chow88/internal/ast"
	"chow88/internal/lexer"
	"chow88/internal/token"
)

// Parse parses a complete CW program. It returns the first few syntax errors
// encountered (the parser does not attempt heroic recovery: after an error it
// skips to the next likely synchronization point).
func Parse(src string) (*ast.Program, error) {
	toks, lexErrs := lexer.ScanAll(src)
	if len(lexErrs) > 0 {
		return nil, lexErrs[0]
	}
	p := &parser{toks: toks}
	prog := p.parseProgram()
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	return prog, nil
}

type parser struct {
	toks []token.Token
	pos  int
	errs []error
}

type bailout struct{}

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
	if len(p.errs) >= 10 {
		panic(bailout{})
	}
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.cur().Kind != k {
		p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
		return token.Token{Kind: k, Pos: p.cur().Pos}
	}
	return p.advance()
}

func (p *parser) parseProgram() *ast.Program {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
		}
	}()
	prog := &ast.Program{}
	for p.cur().Kind != token.EOF {
		switch p.cur().Kind {
		case token.KwVar:
			prog.Decls = append(prog.Decls, p.parseVarDecl())
		case token.KwFunc:
			prog.Decls = append(prog.Decls, p.parseFuncDecl(false))
		case token.KwExtern:
			p.advance()
			prog.Decls = append(prog.Decls, p.parseFuncDecl(true))
		default:
			p.errorf(p.cur().Pos, "expected declaration, found %s", p.cur())
			p.advance()
		}
	}
	return prog
}

// parseVarDecl parses `var name type ;`.
func (p *parser) parseVarDecl() *ast.VarDecl {
	p.expect(token.KwVar)
	name := p.expect(token.Ident)
	typ := p.parseType()
	p.expect(token.Semi)
	return &ast.VarDecl{Name: name.Lit, Type: typ, NamePos: name.Pos}
}

// parseType parses `int`, `[N]int`, or `func(types...) [int]`.
func (p *parser) parseType() *ast.Type {
	switch p.cur().Kind {
	case token.KwInt:
		p.advance()
		return ast.TInt
	case token.LBracket:
		p.advance()
		lit := p.expect(token.Int)
		n, err := strconv.Atoi(lit.Lit)
		if err != nil || n <= 0 {
			p.errorf(lit.Pos, "invalid array length %q", lit.Lit)
			n = 1
		}
		p.expect(token.RBracket)
		p.expect(token.KwInt)
		return &ast.Type{Kind: ast.ArrayType, ArrLen: n}
	case token.KwFunc:
		p.advance()
		p.expect(token.LParen)
		t := &ast.Type{Kind: ast.FuncType}
		for p.cur().Kind != token.RParen && p.cur().Kind != token.EOF {
			t.Params = append(t.Params, p.parseType())
			if p.cur().Kind == token.Comma {
				p.advance()
			} else {
				break
			}
		}
		p.expect(token.RParen)
		if p.cur().Kind == token.KwInt {
			p.advance()
			t.Returns = true
		}
		return t
	}
	p.errorf(p.cur().Pos, "expected type, found %s", p.cur())
	p.advance()
	return ast.TInt
}

func (p *parser) parseFuncDecl(extern bool) *ast.FuncDecl {
	p.expect(token.KwFunc)
	name := p.expect(token.Ident)
	d := &ast.FuncDecl{Name: name.Lit, NamePos: name.Pos, Extern: extern}
	p.expect(token.LParen)
	for p.cur().Kind != token.RParen && p.cur().Kind != token.EOF {
		pn := p.expect(token.Ident)
		pt := p.parseType()
		d.Params = append(d.Params, &ast.VarDecl{Name: pn.Lit, Type: pt, NamePos: pn.Pos})
		if p.cur().Kind == token.Comma {
			p.advance()
		} else {
			break
		}
	}
	p.expect(token.RParen)
	if p.cur().Kind == token.KwInt {
		p.advance()
		d.Returns = true
	}
	if extern {
		p.expect(token.Semi)
		return d
	}
	d.Body = p.parseBlock()
	return d
}

func (p *parser) parseBlock() *ast.Block {
	lb := p.expect(token.LBrace)
	blk := &ast.Block{LPos: lb.Pos}
	for p.cur().Kind != token.RBrace && p.cur().Kind != token.EOF {
		blk.Stmts = append(blk.Stmts, p.parseStmt())
	}
	p.expect(token.RBrace)
	return blk
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.KwVar:
		return &ast.DeclStmt{Decl: p.parseVarDecl()}
	case token.LBrace:
		return p.parseBlock()
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		kw := p.advance()
		p.expect(token.LParen)
		cond := p.parseExpr()
		p.expect(token.RParen)
		body := p.parseBlock()
		return &ast.WhileStmt{Cond: cond, Body: body, WhilePos: kw.Pos}
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		kw := p.advance()
		var v ast.Expr
		if p.cur().Kind != token.Semi {
			v = p.parseExpr()
		}
		p.expect(token.Semi)
		return &ast.ReturnStmt{Value: v, RetPos: kw.Pos}
	case token.KwBreak:
		kw := p.advance()
		p.expect(token.Semi)
		return &ast.BreakStmt{KwPos: kw.Pos}
	case token.KwContinue:
		kw := p.advance()
		p.expect(token.Semi)
		return &ast.ContinueStmt{KwPos: kw.Pos}
	}
	s := p.parseSimpleStmt()
	p.expect(token.Semi)
	return s
}

// parseSimpleStmt parses an assignment or expression statement, without
// consuming the terminating token (';' or a for-clause delimiter).
func (p *parser) parseSimpleStmt() ast.Stmt {
	e := p.parseExpr()
	if p.cur().Kind == token.Assign {
		switch e.(type) {
		case *ast.Ident, *ast.IndexExpr:
		default:
			p.errorf(p.cur().Pos, "cannot assign to %s", ast.ExprString(e))
		}
		p.advance()
		rhs := p.parseExpr()
		return &ast.AssignStmt{Lhs: e, Rhs: rhs}
	}
	if _, ok := e.(*ast.CallExpr); !ok {
		p.errorf(e.Pos(), "expression statement must be a call")
	}
	return &ast.ExprStmt{X: e}
}

func (p *parser) parseIf() ast.Stmt {
	kw := p.expect(token.KwIf)
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	then := p.parseBlock()
	s := &ast.IfStmt{Cond: cond, Then: then, IfPos: kw.Pos}
	if p.cur().Kind == token.KwElse {
		p.advance()
		if p.cur().Kind == token.KwIf {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseBlock()
		}
	}
	return s
}

func (p *parser) parseFor() ast.Stmt {
	kw := p.expect(token.KwFor)
	p.expect(token.LParen)
	f := &ast.ForStmt{ForPos: kw.Pos}
	if p.cur().Kind != token.Semi {
		f.Init = p.parseSimpleStmt()
	}
	p.expect(token.Semi)
	if p.cur().Kind != token.Semi {
		f.Cond = p.parseExpr()
	}
	p.expect(token.Semi)
	if p.cur().Kind != token.RParen {
		f.Post = p.parseSimpleStmt()
	}
	p.expect(token.RParen)
	f.Body = p.parseBlock()
	return f
}

// Binary operator precedence, loosest first:
//
//	||  &&  == !=  < <= > >=  + -  * / %
func binPrec(k token.Kind) int {
	switch k {
	case token.OrOr:
		return 1
	case token.AndAnd:
		return 2
	case token.Eq, token.Neq:
		return 3
	case token.Lt, token.Leq, token.Gt, token.Geq:
		return 4
	case token.Plus, token.Minus:
		return 5
	case token.Star, token.Slash, token.Percent:
		return 6
	}
	return 0
}

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := binPrec(p.cur().Kind)
		if prec < minPrec {
			return x
		}
		op := p.advance()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{Op: op.Kind, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case token.Minus:
		op := p.advance()
		return &ast.UnaryExpr{Op: token.Minus, X: p.parseUnary(), OpPos: op.Pos}
	case token.Not:
		op := p.advance()
		return &ast.UnaryExpr{Op: token.Not, X: p.parseUnary(), OpPos: op.Pos}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	switch p.cur().Kind {
	case token.Int:
		t := p.advance()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "integer literal out of range: %s", t.Lit)
		}
		return &ast.IntLit{Value: v, LitPos: t.Pos}
	case token.LParen:
		p.advance()
		e := p.parseExpr()
		p.expect(token.RParen)
		return e
	case token.Ident:
		id := p.advance()
		ident := &ast.Ident{Name: id.Lit, NamePos: id.Pos}
		switch p.cur().Kind {
		case token.LParen:
			p.advance()
			call := &ast.CallExpr{Fun: ident}
			for p.cur().Kind != token.RParen && p.cur().Kind != token.EOF {
				call.Args = append(call.Args, p.parseExpr())
				if p.cur().Kind == token.Comma {
					p.advance()
				} else {
					break
				}
			}
			p.expect(token.RParen)
			return call
		case token.LBracket:
			p.advance()
			idx := p.parseExpr()
			p.expect(token.RBracket)
			return &ast.IndexExpr{Arr: ident, Index: idx}
		}
		return ident
	}
	p.errorf(p.cur().Pos, "expected expression, found %s", p.cur())
	t := p.advance()
	return &ast.IntLit{Value: 0, LitPos: t.Pos}
}
