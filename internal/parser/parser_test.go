package parser

import (
	"strings"
	"testing"

	"chow88/internal/ast"
	"chow88/internal/token"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse error: %v\nsource:\n%s", err, src)
	}
	return p
}

func TestGlobalVar(t *testing.T) {
	p := mustParse(t, "var g int;\nvar a [10]int;\nvar f func(int, int) int;")
	if len(p.Decls) != 3 {
		t.Fatalf("got %d decls", len(p.Decls))
	}
	g := p.Decls[0].(*ast.VarDecl)
	if g.Name != "g" || g.Type.Kind != ast.IntType {
		t.Errorf("bad g: %v %v", g.Name, g.Type)
	}
	a := p.Decls[1].(*ast.VarDecl)
	if a.Type.Kind != ast.ArrayType || a.Type.ArrLen != 10 {
		t.Errorf("bad a: %v", a.Type)
	}
	f := p.Decls[2].(*ast.VarDecl)
	if f.Type.Kind != ast.FuncType || len(f.Type.Params) != 2 || !f.Type.Returns {
		t.Errorf("bad f: %v", f.Type)
	}
}

func TestFuncDecl(t *testing.T) {
	p := mustParse(t, "func add(x int, y int) int { return x + y; }")
	f := p.Decls[0].(*ast.FuncDecl)
	if f.Name != "add" || len(f.Params) != 2 || !f.Returns {
		t.Fatalf("bad func: %+v", f)
	}
	ret := f.Body.Stmts[0].(*ast.ReturnStmt)
	bin := ret.Value.(*ast.BinaryExpr)
	if bin.Op != token.Plus {
		t.Errorf("op = %v", bin.Op)
	}
}

func TestExternDecl(t *testing.T) {
	p := mustParse(t, "extern func lib(x int) int;")
	f := p.Decls[0].(*ast.FuncDecl)
	if !f.Extern || f.Body != nil {
		t.Fatalf("bad extern: %+v", f)
	}
}

func TestPrecedence(t *testing.T) {
	p := mustParse(t, "func f() int { return 1 + 2 * 3 == 7 && 4 < 5 || 0 != 1; }")
	ret := p.Decls[0].(*ast.FuncDecl).Body.Stmts[0].(*ast.ReturnStmt)
	got := ast.ExprString(ret.Value)
	want := "((((1 + (2 * 3)) == 7) && (4 < 5)) || (0 != 1))"
	if got != want {
		t.Errorf("got %s\nwant %s", got, want)
	}
}

func TestUnary(t *testing.T) {
	p := mustParse(t, "func f() int { return -1 + !0 - -(-2); }")
	ret := p.Decls[0].(*ast.FuncDecl).Body.Stmts[0].(*ast.ReturnStmt)
	got := ast.ExprString(ret.Value)
	want := "(((-1) + (!0)) - (-(-2)))"
	if got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
func f(n int) int {
    var s int;
    s = 0;
    for (n = 0; n < 10; n = n + 1) {
        if (n % 2 == 0) { s = s + n; } else if (n == 3) { continue; } else { break; }
    }
    while (s > 100) { s = s - 1; }
    return s;
}`
	p := mustParse(t, src)
	body := p.Decls[0].(*ast.FuncDecl).Body
	if len(body.Stmts) != 5 {
		t.Fatalf("got %d stmts", len(body.Stmts))
	}
	if _, ok := body.Stmts[2].(*ast.ForStmt); !ok {
		t.Errorf("stmt 2 is %T, want for", body.Stmts[2])
	}
	f := body.Stmts[2].(*ast.ForStmt)
	ifs, ok := f.Body.Stmts[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("for body stmt is %T", f.Body.Stmts[0])
	}
	elif, ok := ifs.Else.(*ast.IfStmt)
	if !ok {
		t.Fatalf("else branch is %T, want else-if", ifs.Else)
	}
	if _, ok := elif.Else.(*ast.Block); !ok {
		t.Errorf("final else is %T", elif.Else)
	}
}

func TestCallsAndIndexing(t *testing.T) {
	p := mustParse(t, "func f() { g(1, a[2], h()); a[i + 1] = 3; }")
	body := p.Decls[0].(*ast.FuncDecl).Body
	call := body.Stmts[0].(*ast.ExprStmt).X.(*ast.CallExpr)
	if call.Fun.Name != "g" || len(call.Args) != 3 {
		t.Fatalf("bad call: %v", ast.ExprString(call))
	}
	asg := body.Stmts[1].(*ast.AssignStmt)
	if _, ok := asg.Lhs.(*ast.IndexExpr); !ok {
		t.Errorf("lhs is %T", asg.Lhs)
	}
}

func TestEmptyForClauses(t *testing.T) {
	p := mustParse(t, "func f() { for (;;) { break; } }")
	f := p.Decls[0].(*ast.FuncDecl).Body.Stmts[0].(*ast.ForStmt)
	if f.Init != nil || f.Cond != nil || f.Post != nil {
		t.Errorf("clauses should be nil: %+v", f)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"func f( {}",
		"func f() { 1 + 2; }",     // expression statement must be a call
		"func f() { (1+2) = 3; }", // bad assign target
		"var x;",
		"func f() { if 1 {} }",
		"blah",
		"func f() { return 99999999999999999999999999; }",
		"var a [0]int;",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

// TestFormatRoundTrip checks Format(parse(src)) reparses to the same rendering.
func TestFormatRoundTrip(t *testing.T) {
	src := `
var g int;
var arr [8]int;
var fp func(int) int;

func helper(x int) int {
    if (x <= 0) { return 1; }
    return x * helper(x - 1);
}

func main() {
    var i int;
    fp = helper;
    for (i = 0; i < 8; i = i + 1) {
        arr[i] = fp(i) + g;
    }
    while (g < 10 && arr[0] != 3 || !g) { g = g + 1; }
}`
	p1 := mustParse(t, src)
	f1 := ast.Format(p1)
	p2 := mustParse(t, f1)
	f2 := ast.Format(p2)
	if f1 != f2 {
		t.Errorf("format not stable:\n--- first ---\n%s\n--- second ---\n%s", f1, f2)
	}
	if !strings.Contains(f1, "fp = helper;") {
		t.Errorf("formatted output missing assignment:\n%s", f1)
	}
}
