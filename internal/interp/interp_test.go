package interp

import (
	"errors"
	"reflect"
	"testing"

	"chow88/internal/parser"
	"chow88/internal/sema"
)

func run(t *testing.T, src string) (*Result, error) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(p)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return Run(info, Options{})
}

func mustRun(t *testing.T, src string) []int64 {
	t.Helper()
	res, err := run(t, src)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Output
}

func expect(t *testing.T, src string, want []int64) {
	t.Helper()
	got := mustRun(t, src)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("output = %v, want %v", got, want)
	}
}

func TestArithmetic(t *testing.T) {
	expect(t, `func main() {
        print(2 + 3 * 4);
        print(10 / 3);
        print(10 % 3);
        print(-7 / 2);
        print(-7 % 2);
        print(1 - 2);
    }`, []int64{14, 3, 1, -3, -1, -1})
}

func TestComparisonsAndLogic(t *testing.T) {
	expect(t, `func main() {
        print(1 < 2); print(2 < 1); print(2 <= 2);
        print(3 > 2); print(2 >= 3); print(1 == 1); print(1 != 1);
        print(1 && 2); print(0 && 1); print(0 || 0); print(0 || 5);
        print(!0); print(!7);
    }`, []int64{1, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 1, 0})
}

func TestShortCircuit(t *testing.T) {
	// The right operand traps if evaluated; short-circuiting must skip it.
	expect(t, `
var n int;
func boom() int { n = 1 / n; return 1; }
func main() {
    print(0 && boom());
    print(1 || boom());
}`, []int64{0, 1})
}

func TestControlFlow(t *testing.T) {
	expect(t, `func main() {
        var i int;
        var s int;
        s = 0;
        for (i = 1; i <= 5; i = i + 1) {
            if (i == 3) { continue; }
            if (i == 5) { break; }
            s = s + i;
        }
        print(s);
        while (s > 0) { s = s - 2; }
        print(s);
    }`, []int64{7, -1})
}

func TestRecursion(t *testing.T) {
	expect(t, `
func fib(n int) int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() { print(fib(15)); }`, []int64{610})
}

func TestMutualRecursion(t *testing.T) {
	expect(t, `
func isEven(n int) int { if (n == 0) { return 1; } return isOdd(n - 1); }
func isOdd(n int) int { if (n == 0) { return 0; } return isEven(n - 1); }
func main() { print(isEven(10)); print(isOdd(10)); }`, []int64{1, 0})
}

func TestGlobalsAndArrays(t *testing.T) {
	expect(t, `
var g int;
var a [5]int;
func bump() { g = g + 1; }
func main() {
    var i int;
    for (i = 0; i < 5; i = i + 1) { a[i] = i * i; bump(); }
    print(a[4] + g);
}`, []int64{21})
}

func TestLocalArrays(t *testing.T) {
	expect(t, `
func sum3(x int) int {
    var t [3]int;
    t[0] = x; t[1] = x * 2; t[2] = x * 3;
    return t[0] + t[1] + t[2];
}
func main() { print(sum3(4)); }`, []int64{24})
}

func TestIndirectCalls(t *testing.T) {
	expect(t, `
var op func(int, int) int;
func add(a int, b int) int { return a + b; }
func mul(a int, b int) int { return a * b; }
func main() {
    op = add; print(op(3, 4));
    op = mul; print(op(3, 4));
}`, []int64{7, 12})
}

func TestFuncArg(t *testing.T) {
	expect(t, `
func apply(f func(int) int, x int) int { return f(x); }
func neg(x int) int { return -x; }
func main() { print(apply(neg, 9)); }`, []int64{-9})
}

func TestImplicitReturnZero(t *testing.T) {
	expect(t, `
func f(x int) int { if (x > 0) { return 1; } }
func main() { print(f(1)); print(f(-1)); }`, []int64{1, 0})
}

func TestShadowingSemantics(t *testing.T) {
	expect(t, `
var x int;
func main() {
    x = 10;
    var x int;
    x = 20;
    { var x int; x = 30; print(x); }
    print(x);
}`, []int64{30, 20})
}

func TestZeroInit(t *testing.T) {
	expect(t, `
var g int;
var a [3]int;
func main() { var l int; print(g + a[2] + l); }`, []int64{0})
}

func TestDivByZeroTrap(t *testing.T) {
	_, err := run(t, `var z int; func main() { print(1 / z); }`)
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("err = %v, want trap", err)
	}
	_, err = run(t, `var z int; func main() { print(1 % z); }`)
	if !errors.As(err, &trap) {
		t.Fatalf("err = %v, want trap", err)
	}
}

func TestIndexTrap(t *testing.T) {
	var trap *Trap
	_, err := run(t, `var a [3]int; var i int; func main() { i = 3; print(a[i]); }`)
	if !errors.As(err, &trap) {
		t.Fatalf("err = %v, want trap", err)
	}
	_, err = run(t, `var a [3]int; var i int; func main() { i = -1; a[i] = 0; }`)
	if !errors.As(err, &trap) {
		t.Fatalf("err = %v, want trap", err)
	}
}

func TestNilFuncTrap(t *testing.T) {
	var trap *Trap
	_, err := run(t, `var f func() int; func main() { print(f()); }`)
	if !errors.As(err, &trap) {
		t.Fatalf("err = %v, want trap", err)
	}
}

func TestExternTrap(t *testing.T) {
	var trap *Trap
	_, err := run(t, `extern func lib(x int) int; func main() { print(lib(1)); }`)
	if !errors.As(err, &trap) {
		t.Fatalf("err = %v, want trap", err)
	}
}

func TestStepLimit(t *testing.T) {
	p, _ := parser.Parse(`func main() { while (1) { } }`)
	info, _ := sema.Check(p)
	_, err := Run(info, Options{MaxSteps: 1000})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want limit", err)
	}
}

func TestDepthLimit(t *testing.T) {
	p, _ := parser.Parse(`func f() { f(); } func main() { f(); }`)
	info, _ := sema.Check(p)
	_, err := Run(info, Options{MaxDepth: 100})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want limit", err)
	}
}

func TestWraparound(t *testing.T) {
	expect(t, `func main() {
        var big int;
        big = 9223372036854775807;
        print(big + 1);
        print((0 - big - 1) / (0 - 1));
        print((0 - big - 1) % (0 - 1));
    }`, []int64{-9223372036854775808, -9223372036854775808, 0})
}

func TestForPostRunsAfterContinue(t *testing.T) {
	expect(t, `func main() {
        var i int; var n int;
        n = 0;
        for (i = 0; i < 4; i = i + 1) {
            if (i == 1) { continue; }
            n = n + 10;
        }
        print(i); print(n);
    }`, []int64{4, 30})
}
