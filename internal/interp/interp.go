// Package interp is a reference interpreter for checked CW programs.
//
// It executes the AST directly, independent of the IR, the optimizer, the
// register allocators and the code generator, and therefore serves as the
// oracle for differential testing: every compilation mode must produce the
// same printed output as the interpreter on every program.
//
// Semantics shared with the compiled implementation:
//   - integers are 64-bit two's complement with wraparound,
//   - division or remainder by zero is a runtime trap,
//   - variables start at zero,
//   - a function that falls off its end returns zero,
//   - calling an unassigned (zero) function variable is a trap.
package interp

import (
	"errors"
	"fmt"

	"chow88/internal/ast"
	"chow88/internal/sema"
	"chow88/internal/token"
)

// Options bound interpreter resource use.
type Options struct {
	// MaxSteps limits executed statements+expressions; 0 means the default.
	MaxSteps int64
	// MaxDepth limits call nesting; 0 means the default.
	MaxDepth int
}

// Each CW frame costs a deep chain of Go stack frames, so the depth default
// stays well under the Go runtime's 1 GB goroutine-stack ceiling.
const (
	defaultMaxSteps = int64(200_000_000)
	defaultMaxDepth = 10_000
)

// ErrLimit is returned (wrapped) when a resource limit is exceeded.
var ErrLimit = errors.New("resource limit exceeded")

// Trap is a CW runtime fault (division by zero, bad index, nil call).
type Trap struct {
	Msg string
	Pos token.Pos
}

func (t *Trap) Error() string { return fmt.Sprintf("%s: trap: %s", t.Pos, t.Msg) }

// Result is what a program run produced.
type Result struct {
	Output []int64 // values passed to print, in order
	Steps  int64
}

// Run executes the checked program from main.
func Run(info *sema.Info, opts Options) (*Result, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = defaultMaxSteps
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = defaultMaxDepth
	}
	in := &interp{info: info, opts: opts, globals: map[*sema.VarSym]*cell{}}
	for _, g := range info.Globals {
		in.globals[g] = newCell(g.Type)
	}
	res := &Result{}
	in.res = res
	err := in.call(info.Funcs["main"], nil)
	res.Steps = in.steps
	if err != nil {
		var r returnSignal
		if errors.As(err, &r) {
			return res, nil
		}
		return res, err
	}
	return res, nil
}

// cell is a storage location: a scalar/function value or an array.
type cell struct {
	v   int64
	arr []int64
}

func newCell(t *ast.Type) *cell {
	if t.Kind == ast.ArrayType {
		return &cell{arr: make([]int64, t.ArrLen)}
	}
	return &cell{}
}

// returnSignal unwinds a function body on return. value is the returned int
// (0 when the function returns nothing).
type returnSignal struct{ value int64 }

func (returnSignal) Error() string { return "return" }

type breakSignal struct{}

func (breakSignal) Error() string { return "break" }

type continueSignal struct{}

func (continueSignal) Error() string { return "continue" }

type interp struct {
	info    *sema.Info
	opts    Options
	globals map[*sema.VarSym]*cell
	res     *Result
	steps   int64
	depth   int
}

type frame struct {
	locals map[*sema.VarSym]*cell
}

func (in *interp) tick(pos token.Pos) error {
	in.steps++
	if in.steps > in.opts.MaxSteps {
		return fmt.Errorf("%s: %w: step budget", pos, ErrLimit)
	}
	return nil
}

// funcIndex gives each function a nonzero integer "address" used as the
// runtime representation of function values, matching the VM encoding.
func (in *interp) funcIndex(name string) int64 {
	for i, n := range in.info.FuncOrder {
		if n == name {
			return int64(i + 1)
		}
	}
	return 0
}

func (in *interp) funcByIndex(idx int64) *sema.FuncInfo {
	if idx < 1 || idx > int64(len(in.info.FuncOrder)) {
		return nil
	}
	return in.info.Funcs[in.info.FuncOrder[idx-1]]
}

// call invokes fn with already-evaluated arguments. It returns the return
// value (0 for void functions).
func (in *interp) call(fn *sema.FuncInfo, args []int64) (err error) {
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > in.opts.MaxDepth {
		return fmt.Errorf("%s: %w: call depth", fn.Decl.Pos(), ErrLimit)
	}
	f := &frame{locals: map[*sema.VarSym]*cell{}}
	for _, l := range fn.Locals {
		f.locals[l] = newCell(l.Type)
	}
	for i, p := range fn.Params {
		f.locals[p].v = args[i]
	}
	err = in.execBlock(f, fn.Decl.Body)
	if err == nil {
		// Fell off the end: implicit return 0 / return.
		return returnSignal{0}
	}
	return err
}

// callValue performs a call and yields the result value.
func (in *interp) callValue(fn *sema.FuncInfo, args []int64) (int64, error) {
	err := in.call(fn, args)
	var r returnSignal
	if errors.As(err, &r) {
		return r.value, nil
	}
	if err == nil {
		return 0, nil
	}
	return 0, err
}

func (in *interp) execBlock(f *frame, b *ast.Block) error {
	for _, s := range b.Stmts {
		if err := in.execStmt(f, s); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) execStmt(f *frame, s ast.Stmt) error {
	if err := in.tick(s.Pos()); err != nil {
		return err
	}
	switch s := s.(type) {
	case *ast.DeclStmt:
		return nil // storage pre-created per function
	case *ast.Block:
		return in.execBlock(f, s)
	case *ast.AssignStmt:
		v, err := in.eval(f, s.Rhs)
		if err != nil {
			return err
		}
		return in.assign(f, s.Lhs, v)
	case *ast.IfStmt:
		c, err := in.eval(f, s.Cond)
		if err != nil {
			return err
		}
		if c != 0 {
			return in.execBlock(f, s.Then)
		}
		if s.Else != nil {
			return in.execStmt(f, s.Else)
		}
		return nil
	case *ast.WhileStmt:
		for {
			c, err := in.eval(f, s.Cond)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
			if err := in.execBlock(f, s.Body); err != nil {
				switch err.(type) {
				case breakSignal:
					return nil
				case continueSignal:
					continue
				}
				return err
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			if err := in.execStmt(f, s.Init); err != nil {
				return err
			}
		}
		for {
			if s.Cond != nil {
				c, err := in.eval(f, s.Cond)
				if err != nil {
					return err
				}
				if c == 0 {
					return nil
				}
			}
			err := in.execBlock(f, s.Body)
			if err != nil {
				switch err.(type) {
				case breakSignal:
					return nil
				case continueSignal:
					// fall through to post
				default:
					return err
				}
			}
			if s.Post != nil {
				if err := in.execStmt(f, s.Post); err != nil {
					return err
				}
			}
		}
	case *ast.ReturnStmt:
		if s.Value == nil {
			return returnSignal{0}
		}
		v, err := in.eval(f, s.Value)
		if err != nil {
			return err
		}
		return returnSignal{v}
	case *ast.BreakStmt:
		return breakSignal{}
	case *ast.ContinueStmt:
		return continueSignal{}
	case *ast.ExprStmt:
		_, err := in.eval(f, s.X)
		return err
	}
	return fmt.Errorf("%s: unhandled statement %T", s.Pos(), s)
}

func (in *interp) lookup(f *frame, sym *sema.VarSym) *cell {
	if sym.Global {
		return in.globals[sym]
	}
	return f.locals[sym]
}

func (in *interp) assign(f *frame, lhs ast.Expr, v int64) error {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		in.lookup(f, in.info.Uses[lhs]).v = v
		return nil
	case *ast.IndexExpr:
		c := in.lookup(f, in.info.Uses[lhs.Arr])
		idx, err := in.eval(f, lhs.Index)
		if err != nil {
			return err
		}
		if idx < 0 || idx >= int64(len(c.arr)) {
			return &Trap{Msg: fmt.Sprintf("index %d out of range [0,%d)", idx, len(c.arr)), Pos: lhs.Pos()}
		}
		c.arr[idx] = v
		return nil
	}
	return fmt.Errorf("%s: bad assignment target %T", lhs.Pos(), lhs)
}

func (in *interp) eval(f *frame, e ast.Expr) (int64, error) {
	if err := in.tick(e.Pos()); err != nil {
		return 0, err
	}
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, nil
	case *ast.Ident:
		if sym, ok := in.info.Uses[e]; ok {
			return in.lookup(f, sym).v, nil
		}
		if fd, ok := in.info.FuncRefs[e]; ok {
			return in.funcIndex(fd.Name), nil
		}
		return 0, fmt.Errorf("%s: unresolved identifier %s", e.Pos(), e.Name)
	case *ast.IndexExpr:
		c := in.lookup(f, in.info.Uses[e.Arr])
		idx, err := in.eval(f, e.Index)
		if err != nil {
			return 0, err
		}
		if idx < 0 || idx >= int64(len(c.arr)) {
			return 0, &Trap{Msg: fmt.Sprintf("index %d out of range [0,%d)", idx, len(c.arr)), Pos: e.Pos()}
		}
		return c.arr[idx], nil
	case *ast.CallExpr:
		return in.evalCall(f, e)
	case *ast.BinaryExpr:
		return in.evalBinary(f, e)
	case *ast.UnaryExpr:
		v, err := in.eval(f, e.X)
		if err != nil {
			return 0, err
		}
		if e.Op == token.Minus {
			return -v, nil
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("%s: unhandled expression %T", e.Pos(), e)
}

func (in *interp) evalBinary(f *frame, e *ast.BinaryExpr) (int64, error) {
	// Short-circuit forms first.
	if e.Op == token.AndAnd || e.Op == token.OrOr {
		x, err := in.eval(f, e.X)
		if err != nil {
			return 0, err
		}
		if e.Op == token.AndAnd && x == 0 {
			return 0, nil
		}
		if e.Op == token.OrOr && x != 0 {
			return 1, nil
		}
		y, err := in.eval(f, e.Y)
		if err != nil {
			return 0, err
		}
		if y != 0 {
			return 1, nil
		}
		return 0, nil
	}
	x, err := in.eval(f, e.X)
	if err != nil {
		return 0, err
	}
	y, err := in.eval(f, e.Y)
	if err != nil {
		return 0, err
	}
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch e.Op {
	case token.Plus:
		return x + y, nil
	case token.Minus:
		return x - y, nil
	case token.Star:
		return x * y, nil
	case token.Slash:
		if y == 0 {
			return 0, &Trap{Msg: "division by zero", Pos: e.Pos()}
		}
		if x == -1<<63 && y == -1 {
			return x, nil // wraparound, matching the VM
		}
		return x / y, nil
	case token.Percent:
		if y == 0 {
			return 0, &Trap{Msg: "division by zero", Pos: e.Pos()}
		}
		if x == -1<<63 && y == -1 {
			return 0, nil
		}
		return x % y, nil
	case token.Eq:
		return b2i(x == y), nil
	case token.Neq:
		return b2i(x != y), nil
	case token.Lt:
		return b2i(x < y), nil
	case token.Leq:
		return b2i(x <= y), nil
	case token.Gt:
		return b2i(x > y), nil
	case token.Geq:
		return b2i(x >= y), nil
	}
	return 0, fmt.Errorf("%s: unhandled operator %s", e.Pos(), e.Op)
}

func (in *interp) evalCall(f *frame, e *ast.CallExpr) (int64, error) {
	// Builtin print.
	if _, isVar := in.info.Uses[e.Fun]; !isVar {
		if _, isFunc := in.info.FuncRefs[e.Fun]; !isFunc && e.Fun.Name == "print" {
			v, err := in.eval(f, e.Args[0])
			if err != nil {
				return 0, err
			}
			in.res.Output = append(in.res.Output, v)
			return 0, nil
		}
	}
	args := make([]int64, len(e.Args))
	for i, a := range e.Args {
		v, err := in.eval(f, a)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	var target *sema.FuncInfo
	if fd, ok := in.info.FuncRefs[e.Fun]; ok {
		if fd.Extern {
			return 0, &Trap{Msg: fmt.Sprintf("call to extern function %s", fd.Name), Pos: e.Pos()}
		}
		target = in.info.Funcs[fd.Name]
	} else {
		sym := in.info.Uses[e.Fun]
		fv := in.lookup(f, sym).v
		target = in.funcByIndex(fv)
		if target == nil {
			return 0, &Trap{Msg: fmt.Sprintf("indirect call through invalid function value %d", fv), Pos: e.Pos()}
		}
	}
	return in.callValue(target, args)
}
