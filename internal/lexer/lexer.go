// Package lexer implements a hand-written scanner for the CW language.
package lexer

import (
	"fmt"

	"chow88/internal/token"
)

// Lexer scans CW source text into tokens.
type Lexer struct {
	src  string
	off  int // byte offset of next unread character
	line int
	col  int
	errs []error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns all lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(p token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		switch c := l.peek(); {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			pos := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(pos, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token. At end of input it returns an EOF token,
// repeatedly if called again.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()
	switch {
	case isLetter(c):
		start := l.off - 1
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		if kw, ok := token.Keywords[lit]; ok {
			return token.Token{Kind: kw, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: token.Ident, Lit: lit, Pos: pos}
	case isDigit(c):
		start := l.off - 1
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.off < len(l.src) && isLetter(l.peek()) {
			l.errorf(pos, "malformed number: letter follows digits")
		}
		return token.Token{Kind: token.Int, Lit: l.src[start:l.off], Pos: pos}
	}
	two := func(next byte, ifTwo, ifOne token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: ifTwo, Pos: pos}
		}
		return token.Token{Kind: ifOne, Pos: pos}
	}
	switch c {
	case '+':
		return token.Token{Kind: token.Plus, Pos: pos}
	case '-':
		return token.Token{Kind: token.Minus, Pos: pos}
	case '*':
		return token.Token{Kind: token.Star, Pos: pos}
	case '/':
		return token.Token{Kind: token.Slash, Pos: pos}
	case '%':
		return token.Token{Kind: token.Percent, Pos: pos}
	case '=':
		return two('=', token.Eq, token.Assign)
	case '!':
		return two('=', token.Neq, token.Not)
	case '<':
		return two('=', token.Leq, token.Lt)
	case '>':
		return two('=', token.Geq, token.Gt)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return token.Token{Kind: token.AndAnd, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (did you mean &&?)", c)
		return token.Token{Kind: token.Illegal, Lit: string(c), Pos: pos}
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.OrOr, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (did you mean ||?)", c)
		return token.Token{Kind: token.Illegal, Lit: string(c), Pos: pos}
	case '(':
		return token.Token{Kind: token.LParen, Pos: pos}
	case ')':
		return token.Token{Kind: token.RParen, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBrace, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBrace, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBracket, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBracket, Pos: pos}
	case ',':
		return token.Token{Kind: token.Comma, Pos: pos}
	case ';':
		return token.Token{Kind: token.Semi, Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", c)
	return token.Token{Kind: token.Illegal, Lit: string(c), Pos: pos}
}

// ScanAll lexes the entire input, returning every token up to and including
// the terminating EOF token.
func ScanAll(src string) ([]token.Token, []error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.Errors()
		}
	}
}
