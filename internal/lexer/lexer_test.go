package lexer

import (
	"testing"

	"chow88/internal/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := ScanAll(src)
	for _, e := range errs {
		t.Fatalf("lex error: %v", e)
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestOperators(t *testing.T) {
	got := kinds(t, "+ - * / % = == != < <= > >= && || ! ( ) { } [ ] , ;")
	want := []token.Kind{
		token.Plus, token.Minus, token.Star, token.Slash, token.Percent,
		token.Assign, token.Eq, token.Neq, token.Lt, token.Leq, token.Gt, token.Geq,
		token.AndAnd, token.OrOr, token.Not,
		token.LParen, token.RParen, token.LBrace, token.RBrace,
		token.LBracket, token.RBracket, token.Comma, token.Semi, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "var func int if else while for return break continue extern foo _bar x9")
	want := []token.Kind{
		token.KwVar, token.KwFunc, token.KwInt, token.KwIf, token.KwElse,
		token.KwWhile, token.KwFor, token.KwReturn, token.KwBreak, token.KwContinue,
		token.KwExtern, token.Ident, token.Ident, token.Ident, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, errs := ScanAll("0 7 12345")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	lits := []string{"0", "7", "12345"}
	for i, want := range lits {
		if toks[i].Kind != token.Int || toks[i].Lit != want {
			t.Errorf("token %d: got %v, want int %q", i, toks[i], want)
		}
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a // line comment\nb /* block\ncomment */ c")
	want := []token.Kind{token.Ident, token.Ident, token.Ident, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestPositions(t *testing.T) {
	toks, _ := ScanAll("a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestIllegal(t *testing.T) {
	_, errs := ScanAll("a $ b")
	if len(errs) == 0 {
		t.Fatal("want lex error for $")
	}
}

func TestSingleAmpersandAndPipe(t *testing.T) {
	_, errs := ScanAll("a & b")
	if len(errs) == 0 {
		t.Fatal("want lex error for single &")
	}
	_, errs = ScanAll("a | b")
	if len(errs) == 0 {
		t.Fatal("want lex error for single |")
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, errs := ScanAll("a /* never closed")
	if len(errs) == 0 {
		t.Fatal("want error for unterminated comment")
	}
}

func TestMalformedNumber(t *testing.T) {
	_, errs := ScanAll("12abc")
	if len(errs) == 0 {
		t.Fatal("want error for letter after digits")
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("")
	for i := 0; i < 3; i++ {
		if tk := l.Next(); tk.Kind != token.EOF {
			t.Fatalf("call %d: got %v, want EOF", i, tk)
		}
	}
}
