// Package pipeline orchestrates the validated middle/back end: register
// allocation (core.PlanModule), the linkage-invariant validator
// (internal/check) and code generation (internal/codegen), connected by
// the graceful-degradation loop.
//
// Per procedure the degradation ladder is:
//
//  1. demote to the open convention (closed procedures; the paper's §3
//     escape hatch — open procedures always use the safe default linkage),
//     or re-plan in place when the procedure is already open;
//  2. re-plan with shrink-wrapping disabled for that procedure;
//  3. give up: hard error.
//
// Each intervention invalidates the offender's transitive callers (their
// plans consumed its summary) and re-plans that call-graph slice
// sequentially in bottom-up order, so a degraded compile is still
// deterministic. Mode.Strict short-circuits the ladder: any violation or
// recovered panic is a hard *ValidationError (for CI, where a plan that
// needed repair is itself the bug).
package pipeline

import (
	"context"
	"errors"
	"fmt"

	"chow88/internal/check"
	"chow88/internal/codegen"
	"chow88/internal/core"
	"chow88/internal/explain"
	"chow88/internal/front"
	"chow88/internal/incr"
	"chow88/internal/inline"
	"chow88/internal/ir"
	"chow88/internal/mach"
	"chow88/internal/mcode"
	"chow88/internal/obs"
)

// validateMode rejects incoherent register conventions before any planning
// happens: a Config that fails mach validation (overlapping save classes,
// reserved registers in an allocatable set, bad parameter list) would
// otherwise surface as a deep allocator failure or a miscompile. A nil
// Config is left to PlanModule's defaulting.
func validateMode(mode core.Mode) error {
	if mode.Config == nil {
		return nil
	}
	return mode.Config.Validate()
}

// Compile-time guarantee that the convention error is a distinct type the
// classifier can dispatch on.
var _ error = (*mach.ConfigError)(nil)

// maxRounds bounds the degradation loop. Every round escalates at least
// one procedure's ladder rung, so convergence is structural; the bound
// only guards against a validator/planner disagreement oscillating.
const maxRounds = 8

// ValidationError reports linkage violations that could not (or, under
// Mode.Strict, were not allowed to) be repaired by degradation.
type ValidationError struct {
	// Phase is the pipeline stage that found the violations: "plan",
	// "validate", "codegen" or "code-check".
	Phase      string
	Violations []check.Violation
}

func (e *ValidationError) Error() string {
	if len(e.Violations) == 0 {
		return fmt.Sprintf("validate: %s failed", e.Phase)
	}
	return fmt.Sprintf("validate: %d linkage violation(s) at %s (first: %s)",
		len(e.Violations), e.Phase, e.Violations[0])
}

// offender is one procedure requiring intervention this round.
type offender struct {
	f      *ir.Func
	phase  string
	reason string
}

// Build plans, validates and generates code for mod. With mode.Validate
// off it is exactly PlanModule + Generate. With it on, validation runs
// after planning and after code generation, worker panics are contained,
// and offending procedures degrade per the ladder; every intervention is
// returned as an obs.Demotion (and counted on the active obs session).
//
// With mode.Inline set, the profile-guided procedure integrator rewrites
// mod in place first (so any profile counts attached to its blocks are
// honored), and the whole validated pipeline runs on the integrated
// program. Should that build fail and the mode is not Strict, the inlining
// is discarded wholesale — the pipeline reruns on a pristine pre-inlining
// clone and records the retreat as a Demotion — because a partial
// un-inlining cannot be expressed once blocks are spliced. The returned
// plan's Module is the module actually compiled; with a discard that is
// the clone, not mod.
func Build(mod *ir.Module, mode core.Mode) (*core.ProgramPlan, *mcode.Program, []obs.Demotion, error) {
	return BuildCtx(context.Background(), mod, mode)
}

// BuildCtx is Build with a cancellation/deadline context threaded through:
// the pipeline checks ctx at every stage boundary (before the inline pass,
// before planning, at the top of every degradation round, before code
// generation), so a canceled compile returns ctx.Err() — wrapped in
// ErrCanceled for classification — within one stage's worth of work
// rather than running to completion. The stages themselves are not
// preemptible; overshoot is bounded by the longest single stage, which the
// chowd daemon's request deadlines rely on. A nil ctx means Background.
func BuildCtx(ctx context.Context, mod *ir.Module, mode core.Mode) (*core.ProgramPlan, *mcode.Program, []obs.Demotion, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctxErr(ctx); err != nil {
		return nil, nil, nil, err
	}
	if err := validateMode(mode); err != nil {
		return nil, nil, nil, err
	}
	if !mode.Inline {
		return build(ctx, mod, mode)
	}
	budget := mode.InlineBudget
	if budget == 0 {
		budget = inline.DefaultBudget
	}
	pristine := ir.CloneModule(mod)
	rep := inline.Apply(mod, budget, mode.ForceOpen)
	pp, prog, demotions, err := build(ctx, mod, mode)
	if err == nil {
		pp.Inline = rep
		return pp, prog, demotions, nil
	}
	if mode.Strict || errors.Is(err, ErrCanceled) {
		return pp, nil, demotions, err
	}
	obs.Current().Add(obs.CInlineDiscards, 1)
	if j := explain.Current(); j != nil {
		// The discarded build's decisions describe a program that no longer
		// exists; restart the journal and record the retreat itself.
		j.Reset()
		j.RecordModule(explain.Decision{
			Kind: explain.KindDiscard, Cause: "inline",
			Detail: "inlined build failed (" + err.Error() + "); rebuilt the pristine pre-inlining module",
		})
	}
	pp, prog, demotions, err2 := build(ctx, pristine, mode)
	if err2 != nil {
		return pp, nil, demotions, err2
	}
	demotions = append(demotions, obs.Demotion{
		Func: "*", Phase: "inline", Action: "discard-inlining", Reason: err.Error(),
	})
	return pp, prog, demotions, nil
}

// ErrCanceled wraps a context cancellation or deadline expiry observed at
// a pipeline stage boundary; errors.Is finds both this and the underlying
// context error (context.DeadlineExceeded / context.Canceled).
var ErrCanceled = errors.New("pipeline: compile canceled")

// ctxErr shapes a context failure as the pipeline's typed error.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}

func build(ctx context.Context, mod *ir.Module, mode core.Mode) (*core.ProgramPlan, *mcode.Program, []obs.Demotion, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, nil, nil, err
	}
	pp := core.PlanModule(mod, mode)
	if !mode.Validate {
		if err := ctxErr(ctx); err != nil {
			return pp, nil, nil, err
		}
		prog, err := codegen.Generate(pp)
		return pp, prog, nil, err
	}

	s := obs.Current()
	byName := make(map[string]*ir.Func, len(mod.Funcs))
	for _, f := range mod.Funcs {
		byName[f.Name] = f
	}

	var demotions []obs.Demotion
	rung := map[*ir.Func]int{}
	noSW := map[*ir.Func]bool{}
	for round := 0; round < maxRounds; round++ {
		if err := ctxErr(ctx); err != nil {
			return pp, nil, demotions, err
		}
		offs, prog, err := findOffenders(pp, byName)
		if err != nil {
			return pp, nil, demotions, err
		}
		if len(offs) == 0 {
			return pp, prog, demotions, nil
		}
		if mode.Strict {
			return pp, nil, demotions, strictError(offs)
		}
		roots := make([]*ir.Func, 0, len(offs))
		for _, o := range offs {
			var action string
			switch rung[o.f] {
			case 0:
				if mode.IPRA && !pp.Graph.Open[o.f] {
					action = "demote"
					pp.Demote(o.f, "degraded: "+o.reason)
					s.Add(obs.CCheckDemotions, 1)
				} else {
					action = "replan"
				}
			case 1:
				action = "replan-nosw"
				noSW[o.f] = true
			default:
				return pp, nil, demotions, strictError(offs)
			}
			rung[o.f]++
			demotions = append(demotions, obs.Demotion{
				Func: o.f.Name, Phase: o.phase, Action: action, Reason: o.reason,
			})
			if j := explain.Current(); j != nil {
				j.Record(o.f.Name, explain.Decision{
					Kind: explain.KindDemote, Cause: action,
					Detail: fmt.Sprintf("%s failure: %s", o.phase, o.reason),
				})
			}
			roots = append(roots, o.f)
		}
		if err := pp.Replan(pp.Affected(roots...), noSW); err != nil {
			return pp, nil, demotions, err
		}
	}
	return pp, nil, demotions, &ValidationError{Phase: "validate"}
}

// BuildIncremental compiles src, reusing as much of the previous build —
// described by st, from incr.Capture or a statefile — as the edit allows.
// Unchanged functions whose callees republish byte-identical linkage keep
// their plans and code verbatim; only the summary-delta frontier is
// replanned and re-emitted. The output is byte-identical to Build on a
// full front-end of src.
//
// st may be nil (first build). Whenever the incremental path cannot run —
// no state, a mode change, an edit outside the chunkable structure, any
// internal surprise, a validation failure — it falls back to a clean full
// build (counted on obs as incr.full_rebuilds) with FallbackReason set.
// The returned state describes the new revision for the next round; it is
// nil when the build degraded (demotions) or the source resists chunking.
func BuildIncremental(src string, mode core.Mode, st *incr.State) (*IncrementalResult, error) {
	return BuildIncrementalCtx(context.Background(), src, mode, st)
}

// BuildIncrementalCtx is BuildIncremental with a cancellation/deadline
// context, checked at the same stage-boundary granularity as BuildCtx
// (the incremental replan itself is one stage). A nil ctx means
// Background.
func BuildIncrementalCtx(ctx context.Context, src string, mode core.Mode, st *incr.State) (*IncrementalResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := validateMode(mode); err != nil {
		return nil, err
	}
	// Inlining rewrites the module after the front end, so the statefile's
	// chunk-to-function correspondence no longer describes the compiled
	// program: never reuse prior state and never capture new state under
	// it. (The mode fingerprint rejects cross-mode reuse anyway; this gate
	// makes the policy explicit and skips the work.)
	if mode.Inline {
		obs.Current().Add(obs.CIncrFullRebuild, 1)
		return fullBuildIncremental(ctx, src, mode, "inlining enabled")
	}
	reason := "no previous state"
	if st != nil {
		out, r := incr.Apply(src, mode, st)
		if out != nil {
			return &IncrementalResult{
				Plan: out.Plan, Prog: out.Prog, State: out.State,
				Incremental: true, Replanned: out.Replanned, Reused: out.Reused,
			}, nil
		}
		reason = r
	}
	obs.Current().Add(obs.CIncrFullRebuild, 1)
	return fullBuildIncremental(ctx, src, mode, reason)
}

// IncrementalResult is BuildIncremental's outcome.
type IncrementalResult struct {
	Plan *core.ProgramPlan
	Prog *mcode.Program
	// State describes this build for the next incremental round; nil when
	// none could be captured.
	State *incr.State
	// Incremental reports whether the incremental path was taken;
	// FallbackReason explains a full rebuild ("no previous state" on a
	// first build), empty otherwise.
	Incremental    bool
	FallbackReason string
	// Replanned/Reused count defined functions on the incremental path.
	Replanned, Reused int
	// Demotions from the full build's degradation ladder (always empty on
	// the incremental path, which does not degrade — it falls back).
	Demotions []obs.Demotion
}

// fullBuildIncremental is the fallback: a clean full build plus a state
// capture for the next round.
func fullBuildIncremental(ctx context.Context, src string, mode core.Mode, reason string) (*IncrementalResult, error) {
	mod, err := front.Module(src, mode.Optimize, !mode.Sequential)
	if err != nil {
		return nil, err
	}
	pp, prog, demotions, err := BuildCtx(ctx, mod, mode)
	if err != nil {
		return nil, err
	}
	res := &IncrementalResult{Plan: pp, Prog: prog, FallbackReason: reason, Demotions: demotions}
	// A degraded plan reflects this build's repair history, not a function
	// of the source alone; don't let it seed future incremental rounds.
	// Inlined builds never capture: see BuildIncremental.
	if len(demotions) == 0 && !mode.Inline {
		if st, err := incr.Capture(src, mode, pp); err == nil {
			res.State = st
		}
	}
	return res, nil
}

// findOffenders runs the staged pipeline until a stage reports failures:
// recovered planning panics, plan validation, code generation, machine-code
// validation. A clean pass returns the linked program.
func findOffenders(pp *core.ProgramPlan, byName map[string]*ir.Func) ([]offender, *mcode.Program, error) {
	s := obs.Current()

	// Recovered planning-worker panics.
	if len(pp.Failed) > 0 {
		var offs []offender
		for _, f := range pp.Module.Funcs {
			if reason, ok := pp.Failed[f]; ok {
				offs = append(offs, offender{f: f, phase: "plan", reason: "recovered panic: " + reason})
			}
		}
		pp.Failed = nil
		return offs, nil, nil
	}

	// Plan-level linkage validation.
	sp := s.Span(obs.PhaseValidate, "check plan")
	viols := check.Plan(pp)
	sp.End()
	if len(viols) > 0 {
		return violationOffenders(pp, byName, "validate", viols)
	}

	// Code generation (worker panics surface as *codegen.FuncError).
	prog, err := codegen.Generate(pp)
	if err != nil {
		var fe *codegen.FuncError
		if errors.As(err, &fe) {
			if f := byName[fe.Func]; f != nil {
				return []offender{{f: f, phase: "codegen", reason: fe.Err.Error()}}, nil, nil
			}
		}
		return nil, nil, err
	}

	// Machine-code-level validation.
	sp = s.Span(obs.PhaseValidate, "check code")
	viols = check.Code(pp, prog)
	sp.End()
	if len(viols) > 0 {
		return violationOffenders(pp, byName, "code-check", viols)
	}
	return nil, prog, nil
}

// violationOffenders groups violations by procedure (first rule per
// procedure wins as the reason), in deterministic module order.
func violationOffenders(pp *core.ProgramPlan, byName map[string]*ir.Func, phase string, viols []check.Violation) ([]offender, *mcode.Program, error) {
	obs.Current().Add(obs.CCheckViolations, int64(len(viols)))
	first := map[*ir.Func]string{}
	for _, v := range viols {
		f := byName[v.Func]
		if f == nil {
			// A violation naming no known procedure cannot be repaired by
			// demotion; fail hard.
			return nil, nil, &ValidationError{Phase: phase, Violations: viols}
		}
		if _, ok := first[f]; !ok {
			first[f] = fmt.Sprintf("%s: %s", v.Rule, v.Detail)
		}
	}
	var offs []offender
	for _, f := range pp.Module.Funcs {
		if reason, ok := first[f]; ok {
			offs = append(offs, offender{f: f, phase: phase, reason: reason})
		}
	}
	return offs, nil, nil
}

// strictError shapes the round's offenders as a hard error.
func strictError(offs []offender) *ValidationError {
	e := &ValidationError{Phase: offs[0].phase}
	for _, o := range offs {
		e.Violations = append(e.Violations, check.Violation{
			Func: o.f.Name, Rule: "degradation-required", Detail: o.reason,
		})
	}
	return e
}
