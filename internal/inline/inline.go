// Package inline is the profile-guided procedure integrator: an IR-level
// pass running after the front end and before register planning that
// replaces hot calls to small closed procedures with renamed copies of
// their bodies, under a code-growth budget.
//
// Inlining is the limit case of the paper's program: where inter-procedural
// allocation shrinks the register-usage penalty of a call, inlining deletes
// the call — no linkage moves, no frame push, no summary interlock — at the
// price of flooding the caller with the callee's live ranges, which can
// flip shrink-wrap placements and add save/restore traffic. The pass only
// decides *what* to splice; the mechanics live in ir.InlineCall, and the
// measurement of whether the trade paid off lives in the pixie
// linkage-cycle attribution (mcode.Instr.Linkage).
//
// Candidate ranking follows the measured-profile convention: score a call
// site by its block's execution frequency (trained counts under profile
// feedback, the 10^depth static estimate otherwise) divided by the callee's
// size, so hot calls to small procedures integrate first. Only closed
// procedures are candidates — main, externs, address-taken procedures and
// cycle members stay calls, exactly the set the allocator cannot summarize.
// Procedures whose every call disappears are dropped from the module.
package inline

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"chow88/internal/callgraph"
	"chow88/internal/explain"
	"chow88/internal/ir"
	"chow88/internal/obs"
)

// DefaultBudget is the code-growth allowance, in percent of the module's
// pre-inlining instruction count, used when -inline is given without a
// value.
const DefaultBudget = 50

// MaxBudget bounds the allowance; beyond 10000% the budget is surely a
// typo, and unbounded growth would defeat the deadline machinery.
const MaxBudget = 10000

// ErrBadBudget reports an unusable -inline budget value. The CLI maps it
// to its own exit code.
var ErrBadBudget = errors.New("invalid inline budget")

// ParseBudget interprets the -inline flag value: empty or "true" (the bare
// flag) selects DefaultBudget, otherwise the value must be an integer
// percentage in [1, MaxBudget].
func ParseBudget(s string) (int, error) {
	if s == "" || s == "true" {
		return DefaultBudget, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %q is not an integer percentage", ErrBadBudget, s)
	}
	if n < 1 || n > MaxBudget {
		return 0, fmt.Errorf("%w: %d%% outside [1, %d]", ErrBadBudget, n, MaxBudget)
	}
	return n, nil
}

// maxRounds bounds the pick-up-cloned-sites iteration: a call site copied
// into a caller by round N is a fresh candidate in round N+1, so hot call
// chains flatten, but only while the budget lasts.
const maxRounds = 4

// candidate is one rankable call site.
type candidate struct {
	caller *ir.Func
	callee *ir.Func
	call   *ir.Instr // stable identity; block/index relocated at splice time
	freq   float64
	size   int // callee instruction count at ranking time
	// Deterministic tie-break key: caller module position, block ID,
	// instruction index at ranking time.
	callerIdx, blockID, instrIdx int
}

// Apply inlines into mod in place and returns the report. budget is the
// growth allowance in percent; forceOpen mirrors the mode's separate
// compilation list, so a procedure the allocator must keep open is never
// integrated either.
func Apply(mod *ir.Module, budget int, forceOpen []string) *obs.InlineReport {
	os := obs.Current()
	sp := os.Span(obs.PhaseInline, "inline")
	defer sp.End()

	rep := &obs.InlineReport{Budget: budget}
	base := moduleSize(mod)
	rep.BaseInstrs = base
	maxGrowth := base * budget / 100
	grown := 0

	open := map[string]bool{}
	for _, n := range forceOpen {
		open[n] = true
	}

	// Each distinct call instruction counts once, however many rounds
	// re-surface it; stopped tracks the refused set so acceptance on a
	// later round (smaller callee never happens, but cheaper competitors
	// finishing first does) uncounts the refusal.
	seen := map[*ir.Instr]bool{}
	stopped := map[*ir.Instr]bool{}
	for round := 0; round < maxRounds; round++ {
		cands := collect(mod, open)
		progressed := false
		for _, c := range cands {
			if !seen[c.call] {
				seen[c.call] = true
				rep.SitesConsidered++
			}
			// Growth of one splice: the body, the parameter bindings, the
			// entry jump.
			cost := c.size + len(c.callee.Params) + 1
			if grown+cost > maxGrowth {
				if j := explain.Current(); j != nil && !stopped[c.call] {
					j.Record(c.caller.Name, explain.Decision{
						Kind: explain.KindInlineRefuse, Callee: c.callee.Name,
						Cause: "budget", Freq: c.freq, Cost: float64(cost),
						Detail: fmt.Sprintf("splice costs %d instrs; growth %d+%d exceeds budget %d (%d%% of %d)",
							cost, grown, cost, maxGrowth, budget, base),
					})
				}
				stopped[c.call] = true
				continue
			}
			site, ok := locate(c.caller, c.call)
			if !ok {
				continue // splice of an earlier candidate consumed it
			}
			if err := ir.InlineCall(c.caller, site, c.callee); err != nil {
				continue
			}
			grown += cost
			progressed = true
			delete(stopped, c.call)
			rep.SitesInlined++
			rep.Inlined = append(rep.Inlined, obs.InlinedSite{
				Caller: c.caller.Name, Callee: c.callee.Name, Freq: c.freq,
			})
			if j := explain.Current(); j != nil {
				j.Record(c.caller.Name, explain.Decision{
					Kind: explain.KindInline, Callee: c.callee.Name,
					Cause: "accepted", Freq: c.freq, Cost: float64(cost),
					Detail: fmt.Sprintf("score %.4g (freq/size %d); splice costs %d instrs, growth now %d of %d",
						c.freq/float64(max(c.size, 1)), c.size, cost, grown, maxGrowth),
				})
			}
		}
		if !progressed {
			break
		}
	}
	rep.BudgetStopped = len(stopped)

	rep.ProcsEliminated = dropDead(mod)
	rep.FinalInstrs = moduleSize(mod)

	os.Add(obs.CInlineSitesConsidered, int64(rep.SitesConsidered))
	os.Add(obs.CInlineSitesInlined, int64(rep.SitesInlined))
	os.Add(obs.CInlineBudgetStopped, int64(rep.BudgetStopped))
	os.Add(obs.CInlineProcsEliminated, int64(rep.ProcsEliminated))
	return rep
}

// collect ranks the current inlinable call sites, hottest-per-instruction
// first, with a fully deterministic order.
func collect(mod *ir.Module, forceOpen map[string]bool) []candidate {
	g := callgraph.Build(mod, forceOpen)
	sizes := map[*ir.Func]int{}
	callerIdx := map[*ir.Func]int{}
	for i, f := range mod.Funcs {
		callerIdx[f] = i
		sizes[f] = funcSize(f)
	}
	var cands []candidate
	for _, f := range mod.Funcs {
		if f.Extern {
			continue
		}
		for _, cs := range f.CallSites() {
			if cs.Instr.Op != ir.OpCall {
				continue
			}
			callee := cs.Instr.Callee
			if callee.Extern || callee == f || g.Open[callee] || len(callee.Blocks) == 0 {
				continue
			}
			cands = append(cands, candidate{
				caller:    f,
				callee:    callee,
				call:      cs.Instr,
				freq:      cs.Block.Freq(),
				size:      sizes[callee],
				callerIdx: callerIdx[f],
				blockID:   cs.Block.ID,
				instrIdx:  cs.Index,
			})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		si := cands[i].freq / float64(cands[i].size)
		sj := cands[j].freq / float64(cands[j].size)
		if si != sj {
			return si > sj
		}
		if cands[i].callerIdx != cands[j].callerIdx {
			return cands[i].callerIdx < cands[j].callerIdx
		}
		if cands[i].blockID != cands[j].blockID {
			return cands[i].blockID < cands[j].blockID
		}
		return cands[i].instrIdx < cands[j].instrIdx
	})
	return cands
}

// locate finds the call instruction's current position — earlier splices in
// the same block move instructions between blocks, so the (block, index)
// recorded at ranking time may be stale while the *ir.Instr is stable.
func locate(f *ir.Func, call *ir.Instr) (ir.CallSite, bool) {
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in == call {
				return ir.CallSite{Block: b, Index: i, Instr: in}, true
			}
		}
	}
	return ir.CallSite{}, false
}

// dropDead removes procedures no longer reachable from main over direct
// calls and function-address captures, returning how many were dropped.
// Externs stay: they emit no code and anchor separate-compilation linkage.
func dropDead(mod *ir.Module) int {
	main := mod.Lookup("main")
	if main == nil || main.Extern {
		return 0
	}
	reach := map[*ir.Func]bool{main: true}
	work := []*ir.Func{main}
	for len(work) > 0 {
		f := work[0]
		work = work[1:]
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if (in.Op == ir.OpCall || in.Op == ir.OpFuncAddr) && in.Callee != nil && !reach[in.Callee] {
					reach[in.Callee] = true
					work = append(work, in.Callee)
				}
			}
		}
	}
	drop := map[*ir.Func]bool{}
	for _, f := range mod.Funcs {
		if !f.Extern && !reach[f] {
			drop[f] = true
		}
	}
	mod.RemoveFuncs(drop)
	return len(drop)
}

func funcSize(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

func moduleSize(mod *ir.Module) int {
	n := 0
	for _, f := range mod.Funcs {
		n += funcSize(f)
	}
	return n
}
