package inline

import (
	"errors"
	"testing"

	"chow88/internal/front"
	"chow88/internal/ir"
)

func TestParseBudget(t *testing.T) {
	cases := []struct {
		in   string
		want int
		err  bool
	}{
		{"", DefaultBudget, false},
		{"true", DefaultBudget, false},
		{"1", 1, false},
		{"75", 75, false},
		{"10000", MaxBudget, false},
		{"0", 0, true},
		{"-5", 0, true},
		{"10001", 0, true},
		{"fifty", 0, true},
		{"50%", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBudget(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseBudget(%q) = %d, want error", c.in, got)
			} else if !errors.Is(err, ErrBadBudget) {
				t.Errorf("ParseBudget(%q) error %v is not ErrBadBudget", c.in, err)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseBudget(%q) = %d, %v, want %d", c.in, got, err, c.want)
		}
	}
}

const smallSrc = `
func add(a int, b int) int {
    return a + b;
}

func twice(x int) int {
    return add(x, x);
}

func main() {
    var i int;
    var s int;
    s = 0;
    for (i = 0; i < 10; i = i + 1) {
        s = add(s, twice(i));
    }
    print(s);
}
`

func TestApplySmallModule(t *testing.T) {
	mod, err := front.Module(smallSrc, true, false)
	if err != nil {
		t.Fatal(err)
	}
	rep := Apply(mod, 200, nil)
	if rep.SitesInlined == 0 {
		t.Fatal("no sites inlined on an all-leaf module")
	}
	if rep.SitesConsidered < rep.SitesInlined {
		t.Errorf("considered %d < inlined %d", rep.SitesConsidered, rep.SitesInlined)
	}
	// add and twice have exactly one shape of caller each and fit any sane
	// budget; with every call gone both must be dropped.
	for _, name := range []string{"add", "twice"} {
		if f := mod.Lookup(name); f != nil {
			t.Errorf("%s still in module after all its calls were inlined", name)
		}
	}
	if rep.ProcsEliminated != 2 {
		t.Errorf("ProcsEliminated = %d, want 2", rep.ProcsEliminated)
	}
	if rep.FinalInstrs <= 0 || rep.BaseInstrs <= 0 {
		t.Errorf("size accounting missing: base %d final %d", rep.BaseInstrs, rep.FinalInstrs)
	}
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					t.Errorf("%s still calls %s", f.Name, in.Callee.Name)
				}
			}
		}
	}
	if err := ir.VerifyModule(mod); err != nil {
		t.Fatalf("inlined module fails IR verification: %v", err)
	}
}

func TestApplyBudgetRefusal(t *testing.T) {
	mod, err := front.Module(smallSrc, true, false)
	if err != nil {
		t.Fatal(err)
	}
	// 1% of a tiny module rounds to zero growth: every candidate must be
	// refused, counted once, and the module left untouched.
	before := moduleSize(mod)
	rep := Apply(mod, 1, nil)
	if rep.SitesInlined != 0 {
		t.Errorf("SitesInlined = %d under a zero-growth budget", rep.SitesInlined)
	}
	if rep.BudgetStopped == 0 {
		t.Error("no sites recorded as budget-stopped")
	}
	if rep.BudgetStopped != rep.SitesConsidered {
		t.Errorf("BudgetStopped %d != SitesConsidered %d with nothing inlined",
			rep.BudgetStopped, rep.SitesConsidered)
	}
	if got := moduleSize(mod); got != before {
		t.Errorf("module size changed %d -> %d despite zero-growth budget", before, got)
	}
}

func TestApplyForceOpenExcluded(t *testing.T) {
	mod, err := front.Module(smallSrc, true, false)
	if err != nil {
		t.Fatal(err)
	}
	rep := Apply(mod, 200, []string{"add"})
	for _, s := range rep.Inlined {
		if s.Callee == "add" {
			t.Error("force-open procedure was inlined")
		}
	}
	if mod.Lookup("add") == nil {
		t.Error("force-open procedure was dropped")
	}
}

const recursiveSrc = `
func fact(n int) int {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}

func main() {
    print(fact(6));
}
`

func TestApplySkipsCycles(t *testing.T) {
	mod, err := front.Module(recursiveSrc, true, false)
	if err != nil {
		t.Fatal(err)
	}
	rep := Apply(mod, 1000, nil)
	if rep.SitesInlined != 0 {
		t.Errorf("inlined %d sites of a recursive callee", rep.SitesInlined)
	}
	if mod.Lookup("fact") == nil {
		t.Error("recursive procedure was dropped while still called")
	}
}
