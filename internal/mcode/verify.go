package mcode

import (
	"fmt"

	"chow88/internal/mach"
)

// Verify statically checks a linked Program: every register field names a
// real register, every opcode and memory class is in range, the function
// table is a consistent partition, branch targets stay inside their
// function and land on recorded block heads, and calls land on function
// entries. The code generator runs it at link time so a bad image fails
// when it is built, not by trapping mid-run; the predecoder runs it before
// translation so the fast engine can trust static targets.
//
// Functions without recorded block spans (hand-assembled test images) are
// held only to the range and ownership rules, not the block-head rule.
func Verify(p *Program) error {
	n := len(p.Code)
	// owner[pc] is the index in p.Funcs of the function covering pc, or -1.
	// head marks function entries and recorded block starts — the only
	// legal landing sites for static control transfers.
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	head := make([]bool, n)
	hasBlocks := make([]bool, len(p.Funcs))
	hasExtern := false

	for fi, f := range p.Funcs {
		if f.Extern {
			hasExtern = true
			if f.Entry >= 0 {
				return fmt.Errorf("mcode verify: extern func %s has code entry %d", f.Name, f.Entry)
			}
			continue
		}
		if f.Entry < 0 || f.End > n || f.Entry >= f.End {
			return fmt.Errorf("mcode verify: func %s spans [%d,%d) in a %d-instruction image", f.Name, f.Entry, f.End, n)
		}
		for pc := f.Entry; pc < f.End; pc++ {
			if owner[pc] >= 0 {
				return fmt.Errorf("mcode verify: funcs %s and %s overlap at pc %d", p.Funcs[owner[pc]].Name, f.Name, pc)
			}
			owner[pc] = fi
		}
		head[f.Entry] = true
		if len(f.Blocks) > 0 {
			hasBlocks[fi] = true
			for _, bs := range f.Blocks {
				if bs.Start < f.Entry || bs.Start >= f.End {
					return fmt.Errorf("mcode verify: func %s block %d starts at %d, outside [%d,%d)", f.Name, bs.BlockID, bs.Start, f.Entry, f.End)
				}
				head[bs.Start] = true
			}
		}
	}

	for pc := range p.Code {
		in := &p.Code[pc]
		if in.Op < 0 || in.Op > EXIT {
			return fmt.Errorf("mcode verify: pc %d: illegal opcode %d", pc, int(in.Op))
		}
		if badReg(in.Rd) || badReg(in.Rs) || badReg(in.Rt) {
			return fmt.Errorf("mcode verify: pc %d: %s: register index out of range", pc, in)
		}
		switch in.Op {
		case LW, SW:
			if in.Class < 0 || int(in.Class) >= len(classNames) {
				return fmt.Errorf("mcode verify: pc %d: %s: bad memory class %d", pc, in.Op, int(in.Class))
			}
		case BEQZ, BNEZ, J:
			t := in.Target
			if t < 0 || t >= n {
				return fmt.Errorf("mcode verify: pc %d: %s target %d out of range", pc, in.Op, t)
			}
			if o := owner[pc]; o >= 0 {
				if owner[t] != o {
					return fmt.Errorf("mcode verify: pc %d: %s target %d leaves func %s", pc, in.Op, t, p.Funcs[o].Name)
				}
				if hasBlocks[o] && !head[t] {
					return fmt.Errorf("mcode verify: pc %d: %s target %d is not a block head", pc, in.Op, t)
				}
			}
		case JAL:
			t := in.Target
			if t == -1 {
				// Unresolved call: legal only as a call to a declared
				// extern; it traps at run time if actually executed.
				if !hasExtern {
					return fmt.Errorf("mcode verify: pc %d: unresolved call target", pc)
				}
				continue
			}
			if t < 0 || t >= n {
				return fmt.Errorf("mcode verify: pc %d: call target %d out of range", pc, t)
			}
			if !head[t] {
				return fmt.Errorf("mcode verify: pc %d: call target %d is not a function entry or block head", pc, t)
			}
		}
	}
	return nil
}

func badReg(r mach.Reg) bool { return r < 0 || r >= mach.NumRegs }
