// Package mcode defines the target machine code: a MIPS R2000-flavoured,
// word-addressed load/store instruction set. Every load and store carries a
// classification so the tracer (internal/pixie) can reproduce the paper's
// "scalar loads/stores" metric — memory traffic attributable to scalar
// variables, compiler temporaries and register saves/restores, which perfect
// register allocation could remove.
package mcode

import (
	"fmt"
	"strings"

	"chow88/internal/mach"
)

// OpCode enumerates machine operations.
type OpCode int

// Machine operations.
const (
	LI   OpCode = iota // Rd = Imm
	MOVE               // Rd = Rs
	ADD                // Rd = Rs + Rt/Imm
	SUB
	MUL // 12 cycles, as on the R2000
	DIV // 35 cycles; traps on zero divisor
	REM // 35 cycles; traps on zero divisor
	SLT // Rd = Rs < Rt/Imm
	SLE
	SEQ
	SNE
	LW    // Rd = mem[Rs + Imm]; Class tags the access
	SW    // mem[Rs + Imm] = Rt; Class tags the access
	BEQZ  // if Rs == 0 goto Target
	BNEZ  // if Rs != 0 goto Target
	J     // goto Target
	JAL   // RA = pc+1; goto Target (entry of FuncIdx)
	JALR  // RA = pc+1; goto entry of function value in Rs
	JR    // goto Rs (return through RA)
	PRINT // emit Rs to the output stream
	EXIT  // halt
)

var opNames = [...]string{
	LI: "li", MOVE: "move", ADD: "add", SUB: "sub", MUL: "mul", DIV: "div",
	REM: "rem", SLT: "slt", SLE: "sle", SEQ: "seq", SNE: "sne",
	LW: "lw", SW: "sw", BEQZ: "beqz", BNEZ: "bnez", J: "j", JAL: "jal",
	JALR: "jalr", JR: "jr", PRINT: "print", EXIT: "exit",
}

func (o OpCode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", int(o))
}

// MemClass classifies a memory access for the tracer.
type MemClass int

// Memory access classes. Scalar, Spill and SaveRestore together form the
// paper's "scalar loads/stores"; Aggregate accesses (array elements) are not
// removable by register allocation and are excluded.
const (
	ClassNone        MemClass = iota
	ClassScalar               // named scalar variables (globals, memory-resident locals, parameters passed through memory)
	ClassSpill                // compiler temporaries without registers
	ClassSaveRestore          // register save/restore traffic (callee-saved, caller-saved around calls, RA)
	ClassAggregate            // array elements
)

var classNames = [...]string{
	ClassNone: "-", ClassScalar: "scalar", ClassSpill: "spill",
	ClassSaveRestore: "saverestore", ClassAggregate: "aggregate",
}

func (c MemClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class%d", int(c))
}

// IsScalarTraffic reports whether the class counts toward the paper's
// scalar loads/stores metric.
func (c MemClass) IsScalarTraffic() bool {
	return c == ClassScalar || c == ClassSpill || c == ClassSaveRestore
}

// Instr is one machine instruction.
type Instr struct {
	Op     OpCode
	Rd     mach.Reg
	Rs     mach.Reg
	Rt     mach.Reg
	HasImm bool  // Rt replaced by Imm in ALU forms
	Imm    int64 // immediate / address offset
	Target int   // absolute code index for branches, jumps and JAL
	Class  MemClass
	// Linkage marks call-linkage overhead: instructions that exist only to
	// cross a procedure boundary — frame setup/teardown, argument and
	// return-value marshalling, the transfer itself. Save/restore traffic
	// (ClassSaveRestore) is never flagged, so the tracer's linkage-cycle and
	// save/restore buckets partition call overhead disjointly; inlining
	// removes the former and may add the latter.
	Linkage bool
}

// String disassembles the instruction.
func (in *Instr) String() string {
	switch in.Op {
	case LI:
		return fmt.Sprintf("li %s, %d", in.Rd, in.Imm)
	case MOVE:
		return fmt.Sprintf("move %s, %s", in.Rd, in.Rs)
	case ADD, SUB, MUL, DIV, REM, SLT, SLE, SEQ, SNE:
		if in.HasImm {
			return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs, in.Rt)
	case LW:
		return fmt.Sprintf("lw %s, %d(%s)  ; %s", in.Rd, in.Imm, in.Rs, in.Class)
	case SW:
		return fmt.Sprintf("sw %s, %d(%s)  ; %s", in.Rt, in.Imm, in.Rs, in.Class)
	case BEQZ:
		return fmt.Sprintf("beqz %s, @%d", in.Rs, in.Target)
	case BNEZ:
		return fmt.Sprintf("bnez %s, @%d", in.Rs, in.Target)
	case J:
		return fmt.Sprintf("j @%d", in.Target)
	case JAL:
		return fmt.Sprintf("jal @%d", in.Target)
	case JALR:
		return fmt.Sprintf("jalr %s", in.Rs)
	case JR:
		return fmt.Sprintf("jr %s", in.Rs)
	case PRINT:
		return fmt.Sprintf("print %s", in.Rs)
	case EXIT:
		return "exit"
	}
	return fmt.Sprintf("?%d", int(in.Op))
}

// BlockSpan maps an IR basic block to its first instruction in the image,
// letting an execution profile be folded back onto the IR (the paper's
// planned profile-feedback capability).
type BlockSpan struct {
	BlockID int // ir.Block.ID within the function
	Start   int // absolute code index of the block's first instruction
}

// FuncInfo records where a function landed in the code image.
type FuncInfo struct {
	Name      string
	Entry     int // code index of the first instruction
	End       int // code index one past the last instruction
	FrameSize int // words
	Extern    bool
	// Blocks lists the function's basic blocks in layout order.
	Blocks []BlockSpan
}

// Program is a fully linked executable image.
type Program struct {
	Code []Instr
	// Funcs is indexed by the module's function order; function value v
	// (1-based) refers to Funcs[v-1].
	Funcs []*FuncInfo
	// DataSize is the size in words of the static data segment.
	DataSize int
}

// FuncAt returns the function containing code index pc, if any.
func (p *Program) FuncAt(pc int) *FuncInfo {
	for _, f := range p.Funcs {
		if pc >= f.Entry && pc < f.End {
			return f
		}
	}
	return nil
}

// Disassemble renders the whole program.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i, in := range p.Code {
		for _, f := range p.Funcs {
			if f.Entry == i && !f.Extern {
				fmt.Fprintf(&b, "%s:  ; frame %d words\n", f.Name, f.FrameSize)
			}
		}
		fmt.Fprintf(&b, "  %4d: %s\n", i, in.String())
	}
	return b.String()
}
