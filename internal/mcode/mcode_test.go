package mcode

import (
	"strings"
	"testing"

	"chow88/internal/mach"
)

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: LI, Rd: mach.T0, Imm: 42}, "li $t0, 42"},
		{Instr{Op: MOVE, Rd: mach.A0, Rs: mach.V0}, "move $a0, $v0"},
		{Instr{Op: ADD, Rd: mach.T0, Rs: mach.T1, Rt: mach.T2}, "add $t0, $t1, $t2"},
		{Instr{Op: ADD, Rd: mach.SP, Rs: mach.SP, HasImm: true, Imm: -4}, "add $sp, $sp, -4"},
		{Instr{Op: LW, Rd: mach.T0, Rs: mach.SP, Imm: 3, Class: ClassSpill}, "lw $t0, 3($sp)  ; spill"},
		{Instr{Op: SW, Rt: mach.S0, Rs: mach.SP, Imm: 1, Class: ClassSaveRestore}, "sw $s0, 1($sp)  ; saverestore"},
		{Instr{Op: BEQZ, Rs: mach.T3, Target: 17}, "beqz $t3, @17"},
		{Instr{Op: BNEZ, Rs: mach.T3, Target: 9}, "bnez $t3, @9"},
		{Instr{Op: J, Target: 5}, "j @5"},
		{Instr{Op: JAL, Target: 2}, "jal @2"},
		{Instr{Op: JALR, Rs: mach.K1}, "jalr $k1"},
		{Instr{Op: JR, Rs: mach.RA}, "jr $ra"},
		{Instr{Op: PRINT, Rs: mach.V1}, "print $v1"},
		{Instr{Op: EXIT}, "exit"},
		{Instr{Op: SLT, Rd: mach.T0, Rs: mach.T1, HasImm: true, Imm: 7}, "slt $t0, $t1, 7"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestProgramHelpers(t *testing.T) {
	p := &Program{
		Code: []Instr{
			{Op: JAL, Target: 2},
			{Op: EXIT},
			{Op: JR, Rs: mach.RA},
			{Op: JR, Rs: mach.RA},
		},
		Funcs: []*FuncInfo{
			{Name: "a", Entry: 2, End: 3},
			{Name: "b", Entry: 3, End: 4},
		},
	}
	if f := p.FuncAt(2); f == nil || f.Name != "a" {
		t.Errorf("funcAt(2) = %v", f)
	}
	if f := p.FuncAt(3); f == nil || f.Name != "b" {
		t.Errorf("funcAt(3) = %v", f)
	}
	if f := p.FuncAt(0); f != nil {
		t.Errorf("stub should not belong to a function: %v", f)
	}
	d := p.Disassemble()
	if !strings.Contains(d, "a:") || !strings.Contains(d, "b:") {
		t.Errorf("disassembly:\n%s", d)
	}
}

func TestMemClassNames(t *testing.T) {
	if ClassScalar.String() != "scalar" || ClassAggregate.String() != "aggregate" {
		t.Error("class names wrong")
	}
	if OpCode(LI).String() != "li" {
		t.Error("opcode name wrong")
	}
}
