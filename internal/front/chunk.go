package front

import (
	"fmt"
	"strings"

	"chow88/internal/lexer"
	"chow88/internal/token"
)

// Source chunking for incremental recompilation: a CW compilation unit is
// split into its top-level declarations — globals, extern declarations and
// function definitions — each carrying its exact source slice. Hashing the
// slices individually tells the incremental driver which functions an edit
// touched, and splicing unchanged definitions down to `extern` heads
// synthesizes the mini-sources that re-front-end only the changed ones.
//
// The chunker is deliberately conservative: any source it cannot carve
// cleanly (lexer errors, unexpected top-level tokens, duplicate names)
// returns an error, and the driver falls back to a full rebuild. Comments
// and whitespace between chunks are not part of any chunk, so edits there
// invalidate nothing; comments inside a chunk change its hash (harmless
// over-invalidation, never under-invalidation).

// ChunkKind classifies a top-level declaration.
type ChunkKind int

const (
	// ChunkGlobal is a top-level `var` declaration.
	ChunkGlobal ChunkKind = iota
	// ChunkExtern is an `extern func` declaration.
	ChunkExtern
	// ChunkFunc is a function definition.
	ChunkFunc
)

func (k ChunkKind) String() string {
	switch k {
	case ChunkGlobal:
		return "global"
	case ChunkExtern:
		return "extern"
	case ChunkFunc:
		return "func"
	}
	return fmt.Sprintf("kind-%d", int(k))
}

// Chunk is one top-level declaration with its exact source text.
type Chunk struct {
	Name string
	Kind ChunkKind
	// Text is the declaration's source slice, from its first token through
	// its closing `;` or `}`.
	Text string
	// Head is, for ChunkFunc, the signature text up to (excluding) the
	// body's `{`, trimmed — exactly what `extern <Head>;` re-declares.
	// Empty for other kinds.
	Head string
}

// ChunkSource carves src into its top-level declaration chunks, in source
// order. Function and extern names must be unique (duplicates are a sema
// error anyway, but the chunker must not silently merge them).
func ChunkSource(src string) ([]Chunk, error) {
	toks, errs := lexer.ScanAll(src)
	if len(errs) > 0 {
		return nil, fmt.Errorf("chunk: %w", errs[0])
	}
	starts := []int{0}
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			starts = append(starts, i+1)
		}
	}
	offset := func(p token.Pos) (int, error) {
		if p.Line < 1 || p.Line > len(starts) {
			return 0, fmt.Errorf("chunk: token line %d outside source", p.Line)
		}
		off := starts[p.Line-1] + p.Col - 1
		if off < 0 || off > len(src) {
			return 0, fmt.Errorf("chunk: token offset %d outside source", off)
		}
		return off, nil
	}

	var chunks []Chunk
	seen := map[string]bool{}
	i := 0
	for toks[i].Kind != token.EOF {
		start, err := offset(toks[i].Pos)
		if err != nil {
			return nil, err
		}
		var c Chunk
		switch toks[i].Kind {
		case token.KwVar:
			if toks[i+1].Kind != token.Ident {
				return nil, fmt.Errorf("chunk: var without a name at line %d", toks[i].Pos.Line)
			}
			c = Chunk{Name: toks[i+1].Lit, Kind: ChunkGlobal}
			for toks[i].Kind != token.Semi {
				if toks[i].Kind == token.EOF {
					return nil, fmt.Errorf("chunk: unterminated var declaration of %s", c.Name)
				}
				i++
			}
		case token.KwExtern:
			if toks[i+1].Kind != token.KwFunc || toks[i+2].Kind != token.Ident {
				return nil, fmt.Errorf("chunk: malformed extern declaration at line %d", toks[i].Pos.Line)
			}
			c = Chunk{Name: toks[i+2].Lit, Kind: ChunkExtern}
			for toks[i].Kind != token.Semi {
				if toks[i].Kind == token.EOF {
					return nil, fmt.Errorf("chunk: unterminated extern declaration of %s", c.Name)
				}
				i++
			}
		case token.KwFunc:
			if toks[i+1].Kind != token.Ident {
				return nil, fmt.Errorf("chunk: func without a name at line %d", toks[i].Pos.Line)
			}
			c = Chunk{Name: toks[i+1].Lit, Kind: ChunkFunc}
			// The signature contains no braces (there are no aggregate type
			// literals), so the first `{` opens the body; match it to depth
			// zero.
			for toks[i].Kind != token.LBrace {
				if toks[i].Kind == token.EOF {
					return nil, fmt.Errorf("chunk: function %s has no body", c.Name)
				}
				i++
			}
			bodyStart, err := offset(toks[i].Pos)
			if err != nil {
				return nil, err
			}
			c.Head = strings.TrimSpace(src[start:bodyStart])
			depth := 0
			for {
				switch toks[i].Kind {
				case token.LBrace:
					depth++
				case token.RBrace:
					depth--
				case token.EOF:
					return nil, fmt.Errorf("chunk: unbalanced braces in function %s", c.Name)
				}
				if depth == 0 {
					break
				}
				i++
			}
		default:
			return nil, fmt.Errorf("chunk: unexpected top-level token %s at line %d", toks[i].Kind, toks[i].Pos.Line)
		}
		// The closing token (`;` or `}`) is a single byte.
		end, err := offset(toks[i].Pos)
		if err != nil {
			return nil, err
		}
		c.Text = src[start : end+1]
		if seen[c.Name] {
			return nil, fmt.Errorf("chunk: duplicate declaration of %s", c.Name)
		}
		seen[c.Name] = true
		chunks = append(chunks, c)
		i++
	}
	return chunks, nil
}
