package front

import (
	"fmt"
	"strings"
	"testing"

	"chow88/internal/ir"
)

const cacheProbeSrc = `
var g int;
extern func helper(x int) int;
func work(a int, b int) int {
	var t int;
	t = 2 + 3;
	g = a * t + (10 - 4);
	if (1 < 2) {
		g = g + b;
	}
	return g + helper(a + 0);
}
func main() { print(work(3, 4)); }
`

// TestCacheKeyCoversOptionBits is the compile-cache key audit as a
// regression test. The cache key is (source hash, optimize) — the audit's
// claim is that optimize is the ONLY compilation option that reaches the
// front-end prefix (parse → sema → lower → -O2); everything else (IPRA,
// shrink-wrap, register configuration, force-open lists, validation,
// splitting, sequential) belongs to allocation and later phases. Two
// checks enforce it:
//
//  1. colliding options must not collide in the cache: the optimize=true
//     and optimize=false entries for one source are distinct, whichever
//     order they are populated and however often they alternate;
//  2. a cache hit is byte-identical to a cold build of the same
//     (source, optimize) pair, so no other option can have leaked into
//     the cached master.
//
// If a future option does affect the prefix, it must join the key; this
// test is where the omission shows up as a collision.
func TestCacheKeyCoversOptionBits(t *testing.T) {
	// A source no other test compiles, so this test owns its cache entries.
	src := cacheProbeSrc + "// cache-key audit probe\n"

	cold := map[bool]string{}
	for _, optimize := range []bool{true, false} {
		m, err := Build(src, optimize)
		if err != nil {
			t.Fatal(err)
		}
		cold[optimize] = ir.ModuleString(m)
	}
	if cold[true] == cold[false] {
		t.Fatal("optimizer output equals unoptimized output; the collision check below would be vacuous")
	}

	// Alternate the optimize bit through the cached path: first calls
	// populate, later calls hit. Any keying mistake returns the wrong
	// module for one of the combinations.
	for i, optimize := range []bool{true, false, false, true, true, false} {
		m, err := Module(src, optimize, true)
		if err != nil {
			t.Fatal(err)
		}
		if got := ir.ModuleString(m); got != cold[optimize] {
			t.Fatalf("call %d (optimize=%v): cached module differs from the cold build", i, optimize)
		}
	}
}

// TestChunkSource pins the chunker's carving: every top-level declaration
// becomes one chunk with its exact source slice, function chunks carry
// their extern-able heads, and surrounding trivia belongs to no chunk.
func TestChunkSource(t *testing.T) {
	src := "// leading comment, no chunk\nvar g int;\n\nvar arr [4]int;\n" +
		"extern func helper(x int) int;\n\n/* between */\n" +
		"func work(a int, b int) int {\n\tg = a; // inside\n\treturn b;\n}\n" +
		"func main() { print(work(1, 2)); }\n// trailing\n"
	chunks, err := ChunkSource(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		name string
		kind ChunkKind
		text string
		head string
	}{
		{"g", ChunkGlobal, "var g int;", ""},
		{"arr", ChunkGlobal, "var arr [4]int;", ""},
		{"helper", ChunkExtern, "extern func helper(x int) int;", ""},
		{"work", ChunkFunc, "func work(a int, b int) int {\n\tg = a; // inside\n\treturn b;\n}", "func work(a int, b int) int"},
		{"main", ChunkFunc, "func main() { print(work(1, 2)); }", "func main()"},
	}
	if len(chunks) != len(want) {
		t.Fatalf("got %d chunks, want %d", len(chunks), len(want))
	}
	for i, w := range want {
		c := chunks[i]
		if c.Name != w.name || c.Kind != w.kind {
			t.Errorf("chunk %d: got %s/%s, want %s/%s", i, c.Kind, c.Name, w.kind, w.name)
		}
		if c.Text != w.text {
			t.Errorf("chunk %s text:\n got %q\nwant %q", w.name, c.Text, w.text)
		}
		if c.Head != w.head {
			t.Errorf("chunk %s head: got %q, want %q", w.name, c.Head, w.head)
		}
		if !strings.Contains(src, c.Text) {
			t.Errorf("chunk %s text is not a slice of the source", w.name)
		}
	}
}

// TestChunkSourceRejects: anything the chunker cannot carve cleanly is an
// error (the incremental driver then falls back to a full rebuild).
func TestChunkSourceRejects(t *testing.T) {
	cases := map[string]string{
		"duplicate-func":       "func f() int { return 1; }\nfunc f() int { return 2; }",
		"duplicate-mixed-kind": "var f int;\nfunc f() int { return 1; }",
		"duplicate-extern":     "extern func f(x int) int;\nfunc f(x int) int { return x; }",
		"unterminated-var":     "var g int",
		"unterminated-body":    "func f() int { return 1;",
		"missing-body":         "func f() int",
		"stray-token":          "return 3;",
		"malformed-extern":     "extern g;",
		"lexer-error":          "func f() int { return 1 @ 2; }",
	}
	for name, src := range cases {
		if _, err := ChunkSource(src); err == nil {
			t.Errorf("%s: chunker accepted %q", name, src)
		}
	}
}

// TestChunkSourceRoundTrip: rejoining the chunks of a program must
// compile to the same IR as the original (trivia between chunks carries
// no meaning).
func TestChunkSourceRoundTrip(t *testing.T) {
	chunks, err := ChunkSource(cacheProbeSrc)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, c := range chunks {
		b.WriteString(c.Text)
		b.WriteString("\n")
	}
	orig, err := Build(cacheProbeSrc, true)
	if err != nil {
		t.Fatal(err)
	}
	rejoined, err := Build(b.String(), true)
	if err != nil {
		t.Fatal(err)
	}
	if ir.ModuleString(orig) != ir.ModuleString(rejoined) {
		t.Fatal("rejoined chunks lower to different IR than the original source")
	}
}

// TestCacheLRUBound drives a synthetic 10k-module workload through the
// compile cache with a small capacity and holds the memory contract: the
// cache never retains more than cap masters at any instant, evictions
// account for everything pushed out, and the process survives a working
// set 300x its bound without resetting wholesale.
func TestCacheLRUBound(t *testing.T) {
	const cap = 32
	old := SetCacheCap(cap)
	defer SetCacheCap(old)
	before := CacheStats()
	for i := 0; i < 10000; i++ {
		src := fmt.Sprintf("// lru probe %d\nfunc main() { print(%d); }\n", i, i)
		if _, err := Module(src, true, true); err != nil {
			t.Fatal(err)
		}
		if i%1000 == 0 {
			if st := CacheStats(); st.Entries > st.Cap {
				t.Fatalf("after %d modules: %d entries exceed cap %d", i+1, st.Entries, st.Cap)
			}
		}
	}
	after := CacheStats()
	if after.Entries > cap {
		t.Fatalf("final occupancy %d exceeds cap %d", after.Entries, cap)
	}
	misses := after.Misses - before.Misses
	if misses < 10000 {
		t.Fatalf("10k distinct sources produced only %d misses", misses)
	}
	if evicted := after.Evictions - before.Evictions; evicted < misses-int64(cap) {
		t.Fatalf("%d misses into a %d-entry cache evicted only %d masters", misses, cap, evicted)
	}
}

// TestCacheLRURecency proves eviction order is least-recently-used, not
// insertion order: touching an old entry protects it when the next insert
// overflows the cache.
func TestCacheLRURecency(t *testing.T) {
	old := SetCacheCap(2)
	defer SetCacheCap(old)
	srcs := []string{
		"// recency probe a\nfunc main() { print(1); }\n",
		"// recency probe b\nfunc main() { print(2); }\n",
		"// recency probe c\nfunc main() { print(3); }\n",
	}
	mustModule := func(src string) {
		t.Helper()
		if _, err := Module(src, true, true); err != nil {
			t.Fatal(err)
		}
	}
	mustModule(srcs[0])
	mustModule(srcs[1])
	mustModule(srcs[0]) // refresh a: b is now the LRU victim
	mustModule(srcs[2]) // evicts b

	st := CacheStats()
	mustModule(srcs[0])
	if got := CacheStats(); got.Hits != st.Hits+1 {
		t.Fatalf("refreshed entry was evicted (hits %d -> %d)", st.Hits, got.Hits)
	}
	st = CacheStats()
	mustModule(srcs[1])
	if got := CacheStats(); got.Misses != st.Misses+1 {
		t.Fatalf("LRU victim survived eviction (misses %d -> %d)", st.Misses, got.Misses)
	}
}
