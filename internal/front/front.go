// Package front runs the mode-independent prefix of the compilation
// pipeline — parse → sema → lower, and optionally the -O2 optimizer — and
// memoizes the result behind a source-keyed cache. Everything up to
// register allocation is identical across the paper's measurement modes
// except whether the optimizer ran, so the six-mode benchmark matrix
// lowers and optimizes each program once instead of six times. The root
// package, the profile-feedback builds and the experiments harness all
// share this one cache.
package front

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"

	"chow88/internal/ast"
	"chow88/internal/ir"
	"chow88/internal/lower"
	"chow88/internal/obs"
	"chow88/internal/opt"
	"chow88/internal/parser"
	"chow88/internal/sema"
)

// key identifies a cached front-end result: the source hash plus the
// single mode bit (-O2 on or off) that affects the prefix.
type key struct {
	src      [sha256.Size]byte
	optimize bool
}

// entry is one cached master module plus its LRU-list position.
type entry struct {
	k   key
	mod *ir.Module
}

// cache memoizes frozen, verified master modules behind an LRU bound. A
// master is never mutated again; every caller works on a private deep
// copy, so a cache hit is byte-identical to a cold build. lru orders
// *entry values most-recently-used first; when occupancy exceeds cap the
// least-recently-used master is evicted one at a time, so a long-lived
// process (the chowd daemon serving many tenants) holds at most cap
// modules however many distinct sources pass through.
var cache = struct {
	sync.Mutex
	lru *list.List
	m   map[key]*list.Element
	cap int
}{lru: list.New(), m: map[key]*list.Element{}, cap: DefaultCacheCap}

// DefaultCacheCap is the compile cache's default occupancy bound; ample
// for a benchmark suite or test matrix, and a hard memory ceiling for a
// multi-tenant daemon. SetCacheCap tunes it.
const DefaultCacheCap = 64

// counters are the cache's lifetime event counts, kept independently of any
// obs session so CacheStats answers even when observability is disabled.
var counters struct {
	hits, misses, evictions atomic.Int64
}

// Stats is a point-in-time view of the compile cache.
type Stats struct {
	// Entries is the current occupancy; Cap the LRU eviction threshold.
	Entries, Cap int
	// Hits, Misses and Evictions count cache events over the process
	// lifetime (an eviction discards the least-recently-used master once
	// occupancy would exceed Cap).
	Hits, Misses, Evictions int64
}

// CacheStats reports the compile cache's occupancy and lifetime hit/miss/
// eviction counts. The obs metrics registry mirrors the same events per
// session; this accessor is the always-on view.
func CacheStats() Stats {
	cache.Lock()
	n, c := cache.lru.Len(), cache.cap
	cache.Unlock()
	return Stats{
		Entries:   n,
		Cap:       c,
		Hits:      counters.hits.Load(),
		Misses:    counters.misses.Load(),
		Evictions: counters.evictions.Load(),
	}
}

// SetCacheCap rebounds the compile cache (shrinking evicts down to the new
// cap immediately, oldest first) and returns the previous bound. n < 1 is
// clamped to 1: a zero-capacity cache would break the Module contract of
// consulting the cache at all.
func SetCacheCap(n int) int {
	if n < 1 {
		n = 1
	}
	s := obs.Current()
	cache.Lock()
	defer cache.Unlock()
	old := cache.cap
	cache.cap = n
	for cache.lru.Len() > cache.cap {
		evictOldestLocked(s)
	}
	return old
}

// evictOldestLocked drops the least-recently-used master; the caller holds
// the cache lock.
func evictOldestLocked(s *obs.Session) {
	back := cache.lru.Back()
	if back == nil {
		return
	}
	cache.lru.Remove(back)
	delete(cache.m, back.Value.(*entry).k)
	counters.evictions.Add(1)
	s.Add(obs.CFrontCacheEvict, 1)
}

// StageError attributes a front-end failure to its pipeline stage
// ("parse", "sema", "lower" or "opt"), so drivers can map it to a distinct
// diagnostic and exit code. Recovered marks an error contained from a
// stage panic (fuzzed or malformed input must surface as a diagnostic,
// never a crash).
type StageError struct {
	Stage     string
	Recovered bool
	Err       error
}

func (e *StageError) Error() string {
	if e.Recovered {
		return fmt.Sprintf("%s: internal error: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.Stage, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// stage runs one front-end phase with panic containment.
func stage(s *obs.Session, p obs.Phase, name string, fn func() error) (err error) {
	sp := s.Span(p, name)
	defer sp.End()
	defer func() {
		if r := recover(); r != nil {
			err = &StageError{Stage: name, Recovered: true, Err: fmt.Errorf("%v", r)}
		}
	}()
	if err = fn(); err != nil {
		err = &StageError{Stage: name, Err: err}
	}
	return err
}

// Build runs the front end cold, bypassing the cache.
func Build(src string, optimize bool) (*ir.Module, error) {
	s := obs.Current()
	var tree *ast.Program
	if err := stage(s, obs.PhaseParse, "parse", func() (err error) {
		tree, err = parser.Parse(src)
		return err
	}); err != nil {
		return nil, err
	}
	var info *sema.Info
	if err := stage(s, obs.PhaseSema, "sema", func() (err error) {
		info, err = sema.Check(tree)
		return err
	}); err != nil {
		return nil, err
	}
	var mod *ir.Module
	if err := stage(s, obs.PhaseLower, "lower", func() (err error) {
		mod, err = lower.Build(info)
		return err
	}); err != nil {
		return nil, err
	}
	if optimize {
		if err := stage(s, obs.PhaseOpt, "opt", func() error {
			opt.Run(mod)
			if err := ir.VerifyModule(mod); err != nil {
				return fmt.Errorf("optimizer broke the IR: %w", err)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return mod, nil
}

// Module returns an IR module for src that the caller owns outright,
// consulting the compile cache unless bypassed.
func Module(src string, optimize, useCache bool) (*ir.Module, error) {
	if !useCache {
		return Build(src, optimize)
	}
	s := obs.Current()
	k := key{src: sha256.Sum256([]byte(src)), optimize: optimize}
	cache.Lock()
	var master *ir.Module
	if el := cache.m[k]; el != nil {
		cache.lru.MoveToFront(el)
		master = el.Value.(*entry).mod
	}
	cache.Unlock()
	if master == nil {
		counters.misses.Add(1)
		s.Add(obs.CFrontCacheMiss, 1)
		var err error
		master, err = Build(src, optimize)
		if err != nil {
			return nil, err
		}
		cache.Lock()
		if el := cache.m[k]; el != nil {
			// A concurrent builder of the same source won the insert race;
			// keep its master (the two are byte-identical by construction).
			cache.lru.MoveToFront(el)
			master = el.Value.(*entry).mod
		} else {
			cache.m[k] = cache.lru.PushFront(&entry{k: k, mod: master})
			for cache.lru.Len() > cache.cap {
				evictOldestLocked(s)
			}
		}
		n := cache.lru.Len()
		cache.Unlock()
		s.SetMax(obs.GFrontCacheEntries, int64(n))
	} else {
		counters.hits.Add(1)
		s.Add(obs.CFrontCacheHit, 1)
	}
	return ir.CloneModule(master), nil
}
