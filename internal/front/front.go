// Package front runs the mode-independent prefix of the compilation
// pipeline — parse → sema → lower, and optionally the -O2 optimizer — and
// memoizes the result behind a source-keyed cache. Everything up to
// register allocation is identical across the paper's measurement modes
// except whether the optimizer ran, so the six-mode benchmark matrix
// lowers and optimizes each program once instead of six times. The root
// package, the profile-feedback builds and the experiments harness all
// share this one cache.
package front

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"

	"chow88/internal/ast"
	"chow88/internal/ir"
	"chow88/internal/lower"
	"chow88/internal/obs"
	"chow88/internal/opt"
	"chow88/internal/parser"
	"chow88/internal/sema"
)

// key identifies a cached front-end result: the source hash plus the
// single mode bit (-O2 on or off) that affects the prefix.
type key struct {
	src      [sha256.Size]byte
	optimize bool
}

// cache memoizes frozen, verified master modules. A master is never
// mutated again; every caller works on a private deep copy, so a cache hit
// is byte-identical to a cold build.
var cache = struct {
	sync.Mutex
	mods map[key]*ir.Module
}{mods: map[key]*ir.Module{}}

// cacheCap bounds the cache. When full, the cache resets wholesale: the
// working set (a benchmark suite, a test matrix) is far below the cap, so
// eviction is a correctness backstop, not a tuning knob.
const cacheCap = 64

// counters are the cache's lifetime event counts, kept independently of any
// obs session so CacheStats answers even when observability is disabled.
var counters struct {
	hits, misses, resets atomic.Int64
}

// Stats is a point-in-time view of the compile cache.
type Stats struct {
	// Entries is the current occupancy; Cap the reset threshold.
	Entries, Cap int
	// Hits, Misses and Resets count cache events over the process lifetime
	// (a reset is the wholesale eviction at Cap).
	Hits, Misses, Resets int64
}

// CacheStats reports the compile cache's occupancy and lifetime hit/miss/
// reset counts. The obs metrics registry mirrors the same events per
// session; this accessor is the always-on view.
func CacheStats() Stats {
	cache.Lock()
	n := len(cache.mods)
	cache.Unlock()
	return Stats{
		Entries: n,
		Cap:     cacheCap,
		Hits:    counters.hits.Load(),
		Misses:  counters.misses.Load(),
		Resets:  counters.resets.Load(),
	}
}

// StageError attributes a front-end failure to its pipeline stage
// ("parse", "sema", "lower" or "opt"), so drivers can map it to a distinct
// diagnostic and exit code. Recovered marks an error contained from a
// stage panic (fuzzed or malformed input must surface as a diagnostic,
// never a crash).
type StageError struct {
	Stage     string
	Recovered bool
	Err       error
}

func (e *StageError) Error() string {
	if e.Recovered {
		return fmt.Sprintf("%s: internal error: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.Stage, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// stage runs one front-end phase with panic containment.
func stage(s *obs.Session, p obs.Phase, name string, fn func() error) (err error) {
	sp := s.Span(p, name)
	defer sp.End()
	defer func() {
		if r := recover(); r != nil {
			err = &StageError{Stage: name, Recovered: true, Err: fmt.Errorf("%v", r)}
		}
	}()
	if err = fn(); err != nil {
		err = &StageError{Stage: name, Err: err}
	}
	return err
}

// Build runs the front end cold, bypassing the cache.
func Build(src string, optimize bool) (*ir.Module, error) {
	s := obs.Current()
	var tree *ast.Program
	if err := stage(s, obs.PhaseParse, "parse", func() (err error) {
		tree, err = parser.Parse(src)
		return err
	}); err != nil {
		return nil, err
	}
	var info *sema.Info
	if err := stage(s, obs.PhaseSema, "sema", func() (err error) {
		info, err = sema.Check(tree)
		return err
	}); err != nil {
		return nil, err
	}
	var mod *ir.Module
	if err := stage(s, obs.PhaseLower, "lower", func() (err error) {
		mod, err = lower.Build(info)
		return err
	}); err != nil {
		return nil, err
	}
	if optimize {
		if err := stage(s, obs.PhaseOpt, "opt", func() error {
			opt.Run(mod)
			if err := ir.VerifyModule(mod); err != nil {
				return fmt.Errorf("optimizer broke the IR: %w", err)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return mod, nil
}

// Module returns an IR module for src that the caller owns outright,
// consulting the compile cache unless bypassed.
func Module(src string, optimize, useCache bool) (*ir.Module, error) {
	if !useCache {
		return Build(src, optimize)
	}
	s := obs.Current()
	k := key{src: sha256.Sum256([]byte(src)), optimize: optimize}
	cache.Lock()
	master := cache.mods[k]
	cache.Unlock()
	if master == nil {
		counters.misses.Add(1)
		s.Add(obs.CFrontCacheMiss, 1)
		var err error
		master, err = Build(src, optimize)
		if err != nil {
			return nil, err
		}
		cache.Lock()
		if len(cache.mods) >= cacheCap {
			cache.mods = make(map[key]*ir.Module, cacheCap)
			counters.resets.Add(1)
			s.Add(obs.CFrontCacheReset, 1)
		}
		cache.mods[k] = master
		n := len(cache.mods)
		cache.Unlock()
		s.SetMax(obs.GFrontCacheEntries, int64(n))
	} else {
		counters.hits.Add(1)
		s.Add(obs.CFrontCacheHit, 1)
	}
	return ir.CloneModule(master), nil
}
