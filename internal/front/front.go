// Package front runs the mode-independent prefix of the compilation
// pipeline — parse → sema → lower, and optionally the -O2 optimizer — and
// memoizes the result behind a source-keyed cache. Everything up to
// register allocation is identical across the paper's measurement modes
// except whether the optimizer ran, so the six-mode benchmark matrix
// lowers and optimizes each program once instead of six times. The root
// package, the profile-feedback builds and the experiments harness all
// share this one cache.
package front

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"chow88/internal/ir"
	"chow88/internal/lower"
	"chow88/internal/opt"
	"chow88/internal/parser"
	"chow88/internal/sema"
)

// key identifies a cached front-end result: the source hash plus the
// single mode bit (-O2 on or off) that affects the prefix.
type key struct {
	src      [sha256.Size]byte
	optimize bool
}

// cache memoizes frozen, verified master modules. A master is never
// mutated again; every caller works on a private deep copy, so a cache hit
// is byte-identical to a cold build.
var cache = struct {
	sync.Mutex
	mods map[key]*ir.Module
}{mods: map[key]*ir.Module{}}

// cacheCap bounds the cache. When full, the cache resets wholesale: the
// working set (a benchmark suite, a test matrix) is far below the cap, so
// eviction is a correctness backstop, not a tuning knob.
const cacheCap = 64

// Build runs the front end cold, bypassing the cache.
func Build(src string, optimize bool) (*ir.Module, error) {
	tree, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	info, err := sema.Check(tree)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	mod, err := lower.Build(info)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	if optimize {
		opt.Run(mod)
		if err := ir.VerifyModule(mod); err != nil {
			return nil, fmt.Errorf("optimizer broke the IR: %w", err)
		}
	}
	return mod, nil
}

// Module returns an IR module for src that the caller owns outright,
// consulting the compile cache unless bypassed.
func Module(src string, optimize, useCache bool) (*ir.Module, error) {
	if !useCache {
		return Build(src, optimize)
	}
	k := key{src: sha256.Sum256([]byte(src)), optimize: optimize}
	cache.Lock()
	master := cache.mods[k]
	cache.Unlock()
	if master == nil {
		var err error
		master, err = Build(src, optimize)
		if err != nil {
			return nil, err
		}
		cache.Lock()
		if len(cache.mods) >= cacheCap {
			cache.mods = make(map[key]*ir.Module, cacheCap)
		}
		cache.mods[k] = master
		cache.Unlock()
	}
	return ir.CloneModule(master), nil
}
