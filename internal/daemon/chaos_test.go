package daemon

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"chow88"
	"chow88/internal/faultinject"
)

// victimSrc names its worker function distinctively so a summary-corruption
// plan keyed on it can never land in a healthy client's compile.
const victimSrc = `
func victimfn(a int, b int, c int) int {
    var i int;
    var acc int;
    acc = b + c;
    for (i = 0; i < a; i = i + 1) { acc = acc + i * b + c; }
    return acc;
}
func helper(x int) int { return victimfn(x, x + 1, x + 2) + victimfn(x, 1, 0); }
func main() {
    print(helper(10));
    print(victimfn(5, 2, 1));
}
`

// healthyTraffic hammers /run with healthy programs from n goroutines
// while fn runs, then asserts every healthy answer was 200 with
// byte-identical-to-oracle output. This is the chaos suite's core claim:
// a fault poisons at most its own request, never a neighbor's.
func healthyTraffic(t *testing.T, url string, n, rounds int, fn func()) {
	t.Helper()
	srcs := []string{fibSrc, fibSrcV2}
	oracles := make([][]int64, len(srcs))
	for i, src := range srcs {
		out, err := chow88.Interpret(src)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		oracles[i] = out
	}
	var wg sync.WaitGroup
	errs := make(chan string, n*rounds)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (g + i) % len(srcs)
				status, _, r := postJSON(t, url+"/run", reqBody(t, Request{Source: srcs[k]}))
				if status != 200 || !r.OK {
					errs <- fmt.Sprintf("healthy client %d round %d: status %d, error %+v", g, i, status, r.Error)
					continue
				}
				if fmt.Sprint(r.Output) != fmt.Sprint(oracles[k]) {
					errs <- fmt.Sprintf("healthy client %d round %d: output %v, oracle %v", g, i, r.Output, oracles[k])
				}
			}
		}(g)
	}
	fn()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestChaosWorkerPanic injects a panic into the worker handling one
// incremental request: that request gets a structured 500, every
// concurrent healthy client gets oracle output, and the daemon keeps
// serving afterward.
func TestChaosWorkerPanic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	plan := &faultinject.Plan{Point: faultinject.PointPanicDaemonWorker, Func: "compile-incremental"}
	faultinject.Arm(plan)
	defer faultinject.Disarm()

	healthyTraffic(t, ts.URL, 3, 5, func() {
		status, _, r := postJSON(t, ts.URL+"/compile-incremental", reqBody(t, Request{Source: victimSrc, Client: "victim"}))
		if status != 500 {
			t.Errorf("victim request: status %d (resp %+v), want 500", status, r)
		}
		if r.Error == nil || !strings.Contains(r.Error.Detail, "worker panic (recovered)") {
			t.Errorf("victim error = %+v, want recovered-panic detail", r.Error)
		}
	})
	if !plan.Fired() {
		t.Fatal("panic plan never fired")
	}

	// The worker that died to the panic is gone from the pool only if the
	// daemon mishandled containment; a fresh request proves it is not.
	status, _, r := postJSON(t, ts.URL+"/compile-incremental", reqBody(t, Request{Source: victimSrc, Client: "victim"}))
	if status != 200 || !r.OK {
		t.Errorf("post-panic request: status %d, resp %+v", status, r)
	}
	_, _, metrics := getStatus(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "daemon.request_panics 1") {
		t.Errorf("metrics missing panic count:\n%s", metrics)
	}
}

// TestChaosCorruptSummary corrupts the victim function's register-usage
// summary mid-compile: the validator catches it, the degradation ladder
// demotes/replans, and the victim still gets oracle-correct output — a
// degraded compile, never a miscompile.
func TestChaosCorruptSummary(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	plan := &faultinject.Plan{Point: faultinject.PointCorruptSummary, Func: "victimfn"}
	faultinject.Arm(plan)
	defer faultinject.Disarm()

	oracle, err := chow88.Interpret(victimSrc)
	if err != nil {
		t.Fatal(err)
	}
	healthyTraffic(t, ts.URL, 3, 5, func() {
		status, _, r := postJSON(t, ts.URL+"/run", reqBody(t, Request{Source: victimSrc}))
		if status != 200 || !r.OK {
			t.Errorf("victim run: status %d, resp %+v", status, r)
			return
		}
		if fmt.Sprint(r.Output) != fmt.Sprint(oracle) {
			t.Errorf("victim output %v, oracle %v", r.Output, oracle)
		}
		if !plan.Fired() {
			t.Error("summary corruption never fired")
		}
		if len(r.Demotions) == 0 {
			t.Errorf("corrupted compile reported no demotions: %+v", r)
		}
	})
}

// TestChaosCorruptStatefile corrupts the statefile as it is written: the
// next incremental request detects the bad checksum, falls back to a full
// rebuild (reported as such), and the round after that is incremental
// again — the state pipeline self-heals.
func TestChaosCorruptStatefile(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	plan := &faultinject.Plan{Point: faultinject.PointCorruptStatefile}
	faultinject.Arm(plan)
	defer faultinject.Disarm()

	body := func(src string) string { return reqBody(t, Request{Source: src, Client: "victim"}) }
	healthyTraffic(t, ts.URL, 3, 5, func() {
		// Round 1 writes a corrupted statefile (the fault fires in Save).
		status, _, r := postJSON(t, ts.URL+"/compile-incremental", body(victimSrc))
		if status != 200 || !r.OK {
			t.Errorf("round 1: status %d, resp %+v", status, r)
			return
		}
		if !plan.Fired() {
			t.Error("statefile corruption never fired")
			return
		}
		// Round 2 must reject the corrupt state and fully rebuild.
		status, _, r = postJSON(t, ts.URL+"/compile-incremental", body(victimSrc))
		if status != 200 || !r.OK {
			t.Errorf("round 2: status %d, resp %+v", status, r)
			return
		}
		if r.Incremental {
			t.Errorf("round 2 trusted a corrupt statefile: %+v", r)
		}
		if !strings.Contains(r.FallbackReason, "statefile rejected") {
			t.Errorf("round 2 fallback reason %q, want statefile rejection", r.FallbackReason)
		}
		// Round 3: the rewritten (clean) statefile serves increments again.
		status, _, r = postJSON(t, ts.URL+"/compile-incremental", body(victimSrc))
		if status != 200 || !r.OK || !r.Incremental {
			t.Errorf("round 3: status %d, incremental %v (resp %+v), want incremental", status, r.Incremental, r)
		}
	})
}
