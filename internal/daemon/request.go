package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"chow88/internal/classify"
	"chow88/internal/core"
	"chow88/internal/mach"
	"chow88/internal/sim"
)

// Request is the JSON body of every POST endpoint. The zero value of each
// optional field selects the server default, so the minimal request is
// just {"source": "..."}.
type Request struct {
	// Source is the CW program text. Required.
	Source string `json:"source"`
	// Client keys per-client incremental state on /compile-incremental
	// (required there, ignored elsewhere). Clients that reuse the key
	// across requests get frontier-only recompiles.
	Client string `json:"client,omitempty"`
	// Opt selects the optimization level: "O2" or "O3" (IPRA). Default O3.
	Opt string `json:"opt,omitempty"`
	// ShrinkWrap toggles shrink-wrapped save/restore placement; omitted
	// means on (the paper's mode C is the daemon default).
	ShrinkWrap *bool `json:"shrinkwrap,omitempty"`
	// Regs restricts the register configuration: "" (full), "caller7" or
	// "callee7" (the Table 2 restrictions).
	Regs string `json:"regs,omitempty"`
	// Open forces the named procedures to the open convention.
	Open []string `json:"open,omitempty"`
	// Strict makes any graceful-degradation repair a hard error.
	Strict bool `json:"strict,omitempty"`
	// Engine pins a simulator tier on /run: "native", "fast", "reference".
	Engine string `json:"engine,omitempty"`
	// TimeoutMS bounds the request's compile+run wall clock; 0 selects the
	// server default, and values above the server maximum are clamped.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// MaxInstrs bounds simulated instructions on /run; 0 means the
	// simulator default.
	MaxInstrs int64 `json:"max_instrs,omitempty"`
	// Disasm includes the disassembly in compile responses.
	Disasm bool `json:"disasm,omitempty"`
}

// ReqError is a request rejected before any compile work started: the
// HTTP status to answer with, a stable machine-readable class, and a
// human-readable detail line.
type ReqError struct {
	Status int
	Class  string
	Detail string
}

func (e *ReqError) Error() string {
	return fmt.Sprintf("%s: %s (http %d)", e.Class, e.Detail, e.Status)
}

// Limits bound what DecodeRequest accepts. The zero value means
// unbounded, for tests and fuzzing; the server always sets both.
type Limits struct {
	// MaxBodyBytes is enforced by the HTTP layer (http.MaxBytesReader);
	// DecodeRequest only translates the overrun error it produces.
	MaxBodyBytes int64
	// MaxSourceLines bounds the decoded program's line count, so a small
	// body of pathological density can't buy unbounded parse work.
	MaxSourceLines int
}

// DecodeRequest reads one JSON request from r, rejecting unknown fields,
// trailing garbage, oversized sources and malformed values with typed
// errors. It never panics on any input (FuzzDaemonRequest proves this),
// which is what lets the daemon run the decoder on the request goroutine
// before admission control spends a worker on the unit.
func DecodeRequest(r io.Reader, lim Limits) (*Request, *ReqError) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, decodeError(err)
	}
	// A second value in the stream is a smuggled request, not padding.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, &ReqError{http.StatusBadRequest, "trailing-data", "request body holds more than one JSON value"}
	}
	if req.Source == "" {
		return nil, &ReqError{http.StatusBadRequest, "missing-source", `"source" is required and must be non-empty`}
	}
	if lim.MaxSourceLines > 0 {
		if n := strings.Count(req.Source, "\n") + 1; n > lim.MaxSourceLines {
			return nil, &ReqError{http.StatusRequestEntityTooLarge, "too-large",
				fmt.Sprintf("source is %d lines, limit %d", n, lim.MaxSourceLines)}
		}
	}
	if req.TimeoutMS < 0 {
		return nil, &ReqError{http.StatusBadRequest, "bad-timeout", `"timeout_ms" must be >= 0`}
	}
	if req.MaxInstrs < 0 {
		return nil, &ReqError{http.StatusBadRequest, "bad-budget", `"max_instrs" must be >= 0`}
	}
	if err := sim.ValidateEngine(req.Engine); err != nil {
		return nil, &ReqError{http.StatusBadRequest, "bad-engine", err.Error()}
	}
	if _, rerr := req.Mode(); rerr != nil {
		return nil, rerr
	}
	return &req, nil
}

// decodeError translates a json.Decoder failure into a typed rejection.
func decodeError(err error) *ReqError {
	var maxErr *http.MaxBytesError
	var unmarshalErr *json.UnmarshalTypeError
	switch {
	case errors.As(err, &maxErr):
		return &ReqError{http.StatusRequestEntityTooLarge, "too-large",
			fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit)}
	case errors.As(err, &unmarshalErr):
		return &ReqError{http.StatusBadRequest, "bad-field-type",
			fmt.Sprintf("field %q: cannot decode %s as %s", unmarshalErr.Field, unmarshalErr.Value, unmarshalErr.Type)}
	case strings.Contains(err.Error(), "unknown field"):
		return &ReqError{http.StatusBadRequest, "unknown-field", err.Error()}
	}
	return &ReqError{http.StatusBadRequest, "malformed-json", err.Error()}
}

// Mode translates the request's knobs into a compilation mode, mirroring
// chowcc's flag handling: O3 + shrink-wrap (the paper's mode C) unless the
// request says otherwise.
func (req *Request) Mode() (core.Mode, *ReqError) {
	sw := true
	if req.ShrinkWrap != nil {
		sw = *req.ShrinkWrap
	}
	var mode core.Mode
	switch req.Opt {
	case "", "O3":
		if sw {
			mode = core.ModeC()
		} else {
			mode = core.ModeB()
		}
	case "O2":
		if sw {
			mode = core.ModeA()
		} else {
			mode = core.ModeBase()
		}
	default:
		return core.Mode{}, &ReqError{http.StatusBadRequest, "bad-opt",
			fmt.Sprintf("unknown opt %q (valid: O2, O3)", req.Opt)}
	}
	switch req.Regs {
	case "":
	case "caller7":
		mode.Config = mach.CallerOnly7()
		mode.Name += "/caller7"
	case "callee7":
		mode.Config = mach.CalleeOnly7()
		mode.Name += "/callee7"
	default:
		return core.Mode{}, &ReqError{http.StatusBadRequest, "bad-regs",
			fmt.Sprintf("unknown regs %q (valid: caller7, callee7)", req.Regs)}
	}
	mode.ForceOpen = req.Open
	mode.Strict = req.Strict
	return mode, nil
}

// Stats is the run-statistics slice of a response.
type Stats struct {
	Cycles        int64 `json:"cycles"`
	Instrs        int64 `json:"instrs"`
	Calls         int64 `json:"calls"`
	Loads         int64 `json:"loads"`
	Stores        int64 `json:"stores"`
	LinkageCycles int64 `json:"linkage_cycles"`
}

// ErrorInfo is the structured error of a failed response. Class and
// ExitCode come from the shared classifier (internal/classify), so the
// daemon's error taxonomy is chowcc's exit-code taxonomy.
type ErrorInfo struct {
	Class    string `json:"class"`
	ExitCode int    `json:"exit_code"`
	Detail   string `json:"detail"`
}

// Response is the JSON body of every answer, success or failure.
type Response struct {
	OK   bool   `json:"ok"`
	Mode string `json:"mode,omitempty"`
	// Compile results.
	Funcs     int      `json:"funcs,omitempty"`
	CodeWords int      `json:"code_words,omitempty"`
	Demotions []string `json:"demotions,omitempty"`
	Disasm    string   `json:"disasm,omitempty"`
	// Incremental results (/compile-incremental).
	Incremental    bool   `json:"incremental,omitempty"`
	FallbackReason string `json:"fallback_reason,omitempty"`
	Reused         int    `json:"reused,omitempty"`
	Replanned      int    `json:"replanned,omitempty"`
	// Run results (/run).
	Output []int64 `json:"output,omitempty"`
	Engine string  `json:"engine,omitempty"`
	Stats  *Stats  `json:"stats,omitempty"`
	// Error is set exactly when OK is false.
	Error *ErrorInfo `json:"error,omitempty"`
}

// errorResponse builds the failure body for a classified compile/run error.
func errorResponse(err error) (status int, resp *Response) {
	code, label := classify.Error(err)
	return classify.HTTPStatus(code), &Response{
		OK:    false,
		Error: &ErrorInfo{Class: label, ExitCode: code, Detail: err.Error()},
	}
}

// reqErrorResponse builds the failure body for a pre-admission rejection.
func reqErrorResponse(e *ReqError) *Response {
	return &Response{OK: false, Error: &ErrorInfo{Class: e.Class, ExitCode: classify.ExitUsage, Detail: e.Detail}}
}
