package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"chow88"
)

const fibSrc = `
func fib(n int) int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() {
    print(fib(18));
    print(fib(10));
}
`

// fibSrcV2 edits only main, so an incremental rebuild reuses fib.
const fibSrcV2 = `
func fib(n int) int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() {
    print(fib(17));
    print(fib(10));
}
`

// slowSrc runs ~4e9 simple instructions: far past any test deadline, past
// the default instruction budget — a request for it only ends by limit.
const slowSrc = `
func spin(n int) int {
    var i int;
    var acc int;
    acc = 0;
    for (i = 0; i < n; i = i + 1) { acc = acc + i; }
    return acc;
}
func main() {
    var j int;
    var acc int;
    acc = 0;
    for (j = 0; j < 1000000; j = j + 1) { acc = acc + spin(1000); }
    print(acc);
}
`

func testCtx(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := testCtx(5 * time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (int, http.Header, *Response) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var r Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatalf("POST %s: decode response: %v", url, err)
	}
	return resp.StatusCode, resp.Header, &r
}

func reqBody(t *testing.T, req Request) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRunMatchesOracle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	status, _, r := postJSON(t, ts.URL+"/run", reqBody(t, Request{Source: fibSrc}))
	if status != 200 || !r.OK {
		t.Fatalf("run: status %d, resp %+v", status, r)
	}
	want, err := chow88.Interpret(fibSrc)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if fmt.Sprint(r.Output) != fmt.Sprint(want) {
		t.Errorf("output %v, oracle %v", r.Output, want)
	}
	if r.Stats == nil || r.Stats.Cycles <= 0 || r.Stats.Calls <= 0 {
		t.Errorf("missing run stats: %+v", r.Stats)
	}
	if r.Mode != "O3+sw" {
		t.Errorf("default mode = %q, want O3+sw", r.Mode)
	}
}

func TestCompileModesAndDisasm(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	off := false
	status, _, r := postJSON(t, ts.URL+"/compile", reqBody(t, Request{
		Source: fibSrc, Opt: "O2", ShrinkWrap: &off, Regs: "caller7", Disasm: true,
	}))
	if status != 200 || !r.OK {
		t.Fatalf("compile: status %d, resp %+v", status, r)
	}
	if r.Mode != "O2/caller7" {
		t.Errorf("mode = %q, want O2/caller7", r.Mode)
	}
	if r.Funcs != 2 || r.CodeWords <= 0 || r.Disasm == "" {
		t.Errorf("compile facts wrong: funcs=%d words=%d disasm=%d bytes", r.Funcs, r.CodeWords, len(r.Disasm))
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 4096, MaxSourceLines: 50})
	cases := []struct {
		name, endpoint, body string
		status               int
		class                string
	}{
		{"malformed", "/compile", `{`, 400, "malformed-json"},
		{"unknown field", "/compile", `{"source":"func main() { print(1); }","nope":1}`, 400, "unknown-field"},
		{"missing source", "/compile", `{}`, 400, "missing-source"},
		{"trailing data", "/compile", `{"source":"x"} {"source":"y"}`, 400, "trailing-data"},
		{"bad engine", "/run", `{"source":"func main() { print(1); }","engine":"turbo"}`, 400, "bad-engine"},
		{"bad opt", "/compile", `{"source":"func main() { print(1); }","opt":"O9"}`, 400, "bad-opt"},
		{"bad regs", "/compile", `{"source":"func main() { print(1); }","regs":"zero"}`, 400, "bad-regs"},
		{"negative timeout", "/compile", `{"source":"func main() { print(1); }","timeout_ms":-1}`, 400, "bad-timeout"},
		{"missing client", "/compile-incremental", `{"source":"func main() { print(1); }"}`, 400, "missing-client"},
		{"oversized body", "/compile", fmt.Sprintf(`{"source":%q}`, strings.Repeat("// padding\n", 600)), 413, "too-large"},
		{"too many lines", "/compile", fmt.Sprintf(`{"source":%q}`, strings.Repeat("//x\n", 60)), 413, "too-large"},
		{"parse error", "/compile", `{"source":"func main( {"}`, 422, "parse error"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, _, r := postJSON(t, ts.URL+c.endpoint, c.body)
			if status != c.status {
				t.Errorf("status = %d, want %d (resp %+v)", status, c.status, r)
			}
			if r.OK || r.Error == nil || r.Error.Class != c.class {
				t.Errorf("error = %+v, want class %q", r.Error, c.class)
			}
		})
	}
	if status, _, _ := getStatus(t, ts.URL+"/compile"); status != 405 {
		t.Errorf("GET /compile = %d, want 405", status)
	}
}

func getStatus(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, b
}

func TestDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	start := time.Now()
	status, _, r := postJSON(t, ts.URL+"/run", reqBody(t, Request{Source: slowSrc, TimeoutMS: 300}))
	if status != 504 {
		t.Fatalf("slow run: status %d (resp %+v), want 504", status, r)
	}
	if r.Error == nil || r.Error.Class != "deadline" {
		t.Errorf("error = %+v, want class deadline", r.Error)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("deadline enforcement took %v", el)
	}
}

func TestQueueBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	slow := reqBody(t, Request{Source: slowSrc, TimeoutMS: 1500})

	var wg sync.WaitGroup
	statuses := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, _, _ := postJSON(t, ts.URL+"/run", slow)
			statuses[i] = st
		}(i)
		time.Sleep(150 * time.Millisecond) // let it reach worker/queue
	}
	status, hdr, r := postJSON(t, ts.URL+"/run", slow)
	if status != 429 {
		t.Fatalf("third concurrent slow run: status %d (resp %+v), want 429", status, r)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("429 Retry-After = %q, want a positive integer", hdr.Get("Retry-After"))
	}
	if r.Error == nil || r.Error.Class != "queue-full" {
		t.Errorf("error = %+v, want class queue-full", r.Error)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != 504 {
			t.Errorf("slow request %d: status %d, want 504 (deadline)", i, st)
		}
	}
	_, _, metrics := getStatus(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "daemon.rejected_queue_full") {
		t.Errorf("metrics missing rejection counter:\n%s", metrics)
	}
}

func TestIncremental(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, MaxClients: 2})
	status, _, r := postJSON(t, ts.URL+"/compile-incremental", reqBody(t, Request{Source: fibSrc, Client: "alice"}))
	if status != 200 || !r.OK {
		t.Fatalf("first build: status %d, resp %+v", status, r)
	}
	if r.Incremental {
		t.Errorf("first build claims incremental (reason %q)", r.FallbackReason)
	}
	status, _, r = postJSON(t, ts.URL+"/compile-incremental", reqBody(t, Request{Source: fibSrcV2, Client: "alice"}))
	if status != 200 || !r.OK {
		t.Fatalf("second build: status %d, resp %+v", status, r)
	}
	if !r.Incremental || r.Reused < 1 {
		t.Errorf("edit to main should reuse fib: %+v", r)
	}

	// Two more clients overflow MaxClients=2 and evict the oldest slot.
	for _, c := range []string{"bob", "carol"} {
		if st, _, rr := postJSON(t, ts.URL+"/compile-incremental", reqBody(t, Request{Source: fibSrc, Client: c})); st != 200 {
			t.Fatalf("client %s: status %d, resp %+v", c, st, rr)
		}
	}
	if n := s.states.entries(); n > 2 {
		t.Errorf("state table holds %d clients, cap 2", n)
	}
	_, _, metrics := getStatus(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "daemon.state_evictions") {
		t.Errorf("metrics missing state eviction counter:\n%s", metrics)
	}
}

func TestMetricsTraceHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if st, _, r := postJSON(t, ts.URL+"/run", reqBody(t, Request{Source: fibSrc})); st != 200 {
		t.Fatalf("warmup run: %d %+v", st, r)
	}
	st, _, metrics := getStatus(t, ts.URL+"/metrics")
	if st != 200 {
		t.Fatalf("/metrics: %d", st)
	}
	for _, want := range []string{"daemon.uptime_ns", "daemon.accepted 1", "daemon.queue_depth", "phase.compile"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	st, _, trace := getStatus(t, ts.URL+"/trace")
	if st != 200 || !bytes.Contains(trace, []byte("traceEvents")) {
		t.Errorf("/trace: status %d, body %.80s", st, trace)
	}
	st, _, hz := getStatus(t, ts.URL+"/healthz")
	if st != 200 || !bytes.Contains(hz, []byte(`"ok":true`)) {
		t.Errorf("/healthz: status %d, body %s", st, hz)
	}
}

// TestRetryAfterDerivation pins the backoff arithmetic: the 429 hint tracks
// one queue turnover at the observed job latency (capped at the request
// budget), and the 503 hint tracks the drain window's remainder.
func TestRetryAfterDerivation(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 8, MaxTimeout: 30 * time.Second})

	// No completed jobs yet: nothing to extrapolate from, minimal backoff.
	if got := s.retryAfter(http.StatusTooManyRequests); got != 1 {
		t.Errorf("429 with no history = %d, want 1", got)
	}
	// Three jobs at 3s each: an empty queue still waits out the one job
	// ahead of it, ceil((0/2+1)*3s) = 3.
	s.jobNanos.Store(int64(9 * time.Second))
	s.jobCount.Store(3)
	if got := s.retryAfter(http.StatusTooManyRequests); got != 3 {
		t.Errorf("429 at 3s/job = %d, want 3", got)
	}
	// Pathological latency history never hints past the request budget cap.
	s.jobNanos.Store(int64(300 * time.Second))
	s.jobCount.Store(1)
	if got := s.retryAfter(http.StatusTooManyRequests); got != 30 {
		t.Errorf("429 capped = %d, want 30 (MaxTimeout)", got)
	}
	// Draining with a deadline: the window's remainder.
	s.mu.Lock()
	s.drainUntil = time.Now().Add(7 * time.Second)
	s.mu.Unlock()
	if got := s.retryAfter(http.StatusServiceUnavailable); got < 5 || got > 7 {
		t.Errorf("503 with 7s drain window = %d, want ~6", got)
	}
	// Draining without a deadline: minimal hint, never zero or negative.
	s.mu.Lock()
	s.drainUntil = time.Time{}
	s.mu.Unlock()
	if got := s.retryAfter(http.StatusServiceUnavailable); got != 1 {
		t.Errorf("503 without deadline = %d, want 1", got)
	}
}

func TestShutdownDrains(t *testing.T) {
	s, err := NewServer(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the worker, then shut down while it runs.
	inflight := make(chan int, 1)
	go func() {
		st, _, _ := postJSON(t, ts.URL+"/run", reqBody(t, Request{Source: slowSrc, TimeoutMS: 1200}))
		inflight <- st
	}()
	time.Sleep(300 * time.Millisecond)

	ctx, cancel := testCtx(10 * time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()
	time.Sleep(100 * time.Millisecond)

	// New work during the drain is refused with 503.
	st, hdr, r := postJSON(t, ts.URL+"/compile", reqBody(t, Request{Source: fibSrc}))
	if st != 503 || r.Error == nil || r.Error.Class != "draining" {
		t.Errorf("during drain: status %d, error %+v, want 503/draining", st, r.Error)
	}
	// The hint is the drain window's remainder (ctx has ~10s left), not the
	// old hardcoded second: retrying any sooner just meets the corpse again.
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 2 || ra > 10 {
		t.Errorf("503 Retry-After = %q, want the drain remainder in [2,10]", hdr.Get("Retry-After"))
	}

	// The in-flight request completes (its own deadline answers it).
	if st := <-inflight; st != 504 {
		t.Errorf("in-flight request: status %d, want 504", st)
	}
	if err := <-done; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}
