package daemon

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"chow88/internal/obs"
)

// clientState is one client's incremental slot: the statefile path and the
// single-writer lock serializing that client's /compile-incremental
// requests. Two requests from the same client must not interleave their
// read-modify-write of the statefile; two different clients proceed in
// parallel on different files.
type clientState struct {
	key  string
	path string
	mu   sync.Mutex
	// refs counts requests currently using the slot; the table only
	// evicts idle slots (refs == 0), so eviction can never delete a
	// statefile out from under an in-flight compile.
	refs int
	elem *list.Element
}

// stateTable maps client keys to statefiles with LRU eviction, bounding
// the daemon's disk footprint no matter how many distinct client keys it
// sees over its lifetime.
type stateTable struct {
	mu  sync.Mutex
	dir string
	cap int
	lru *list.List // front = most recently used; values are *clientState
	m   map[string]*clientState
	obs *obs.Session
}

func newStateTable(dir string, cap int, s *obs.Session) *stateTable {
	if cap < 1 {
		cap = 1
	}
	return &stateTable{dir: dir, cap: cap, lru: list.New(), m: map[string]*clientState{}, obs: s}
}

// statePath derives the statefile name from the client key by hashing:
// client keys are arbitrary strings, filenames are not.
func (t *stateTable) statePath(client string) string {
	sum := sha256.Sum256([]byte(client))
	return filepath.Join(t.dir, "client-"+hex.EncodeToString(sum[:8])+".cwstate")
}

// acquire returns the client's slot, creating it on first use, and pins it
// against eviction until the matching release. Creating a slot may evict
// the least-recently-used idle slot (and its statefile) when the table is
// over capacity.
func (t *stateTable) acquire(client string) *clientState {
	t.mu.Lock()
	defer t.mu.Unlock()
	cs := t.m[client]
	if cs == nil {
		cs = &clientState{key: client, path: t.statePath(client)}
		cs.elem = t.lru.PushFront(cs)
		t.m[client] = cs
		for t.lru.Len() > t.cap {
			if !t.evictOldestLocked() {
				break // everything is in flight; stay over cap briefly
			}
		}
	} else {
		t.lru.MoveToFront(cs.elem)
	}
	cs.refs++
	return cs
}

// release unpins a slot acquired with acquire.
func (t *stateTable) release(cs *clientState) {
	t.mu.Lock()
	cs.refs--
	t.mu.Unlock()
}

// evictOldestLocked removes the least-recently-used idle slot and deletes
// its statefile (and any lockfile). Returns false when every slot is
// pinned by an in-flight request.
func (t *stateTable) evictOldestLocked() bool {
	for e := t.lru.Back(); e != nil; e = e.Prev() {
		cs := e.Value.(*clientState)
		if cs.refs > 0 {
			continue
		}
		t.lru.Remove(e)
		delete(t.m, cs.key)
		os.Remove(cs.path)
		os.Remove(cs.path + ".lock")
		t.obs.Add(obs.CDaemonStateEvictions, 1)
		return true
	}
	return false
}

// entries reports the current slot count (tests).
func (t *stateTable) entries() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Len()
}

// clearStaleLocks removes leftover .lock files in dir. The daemon is the
// only writer of its state directory, so any lockfile present at startup
// is debris from a crashed predecessor, not a live writer.
func clearStaleLocks(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".lock") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
