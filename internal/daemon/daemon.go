// Package daemon is chowd's engine: a hardened compile-as-a-service server
// exposing the chow88 pipeline over HTTP+JSON.
//
// Every design choice serves one property: a misbehaving request — too
// big, too slow, malformed, panic-inducing, or deadline-blowing — degrades
// into a structured error for that request alone, while concurrent healthy
// requests keep getting byte-identical-to-oracle answers. Concretely:
//
//   - Admission control: a bounded worker pool fed by a bounded queue.
//     When the queue is full the request is refused immediately with 429
//     and Retry-After — the daemon never accumulates unbounded goroutines
//     or latency it cannot pay.
//   - Deadlines: every request carries a wall-clock budget (default or
//     client-chosen, capped) that covers queue wait, compile (checked at
//     pipeline stage boundaries) and simulation (sim.Options.Deadline).
//   - Input limits: request bodies are size-capped before JSON decoding,
//     sources are line-capped after, and the HTTP server's read timeouts
//     starve slow-client (slowloris) connections.
//   - Panic containment: each unit of work runs under recover; a poisoned
//     unit yields a structured 500 and the worker moves on.
//   - Incremental state: per-client statefiles under an LRU cap, each
//     serialized by a single-writer lock, evicted only when idle.
//   - Graceful shutdown: draining refuses new work with 503 while
//     in-flight and queued work completes under a drain deadline.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"chow88/internal/classify"
	"chow88/internal/faultinject"
	"chow88/internal/front"
	"chow88/internal/incr"
	"chow88/internal/mcode"
	"chow88/internal/obs"
	"chow88/internal/pipeline"
	"chow88/internal/sim"
)

// Config tunes the server. The zero value of every field selects a
// production-shaped default (see fill).
type Config struct {
	// Workers is the compile worker pool size.
	Workers int
	// QueueDepth is the admission queue capacity; a full queue answers 429.
	QueueDepth int
	// MaxBodyBytes caps the request body; MaxSourceLines caps the decoded
	// program's line count.
	MaxBodyBytes   int64
	MaxSourceLines int
	// DefaultTimeout is the per-request wall-clock budget when the request
	// names none; MaxTimeout caps what a request may ask for.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// ReadHeaderTimeout/ReadTimeout bound how long a client may take to
	// deliver its request (slowloris defense).
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	// StateDir holds per-client incremental statefiles; empty means a
	// fresh temporary directory owned (and removed at Shutdown) by the
	// server. MaxClients caps the statefile count via LRU eviction.
	StateDir   string
	MaxClients int
	// TraceCap bounds retained trace events (obs.Options.TraceCap); a
	// long-lived process must not grow its trace buffer without limit.
	TraceCap int
}

func (c *Config) fill() {
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxSourceLines <= 0 {
		c.MaxSourceLines = 20000
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 15 * time.Second
	}
	if c.MaxClients < 1 {
		c.MaxClients = 64
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 4096
	}
}

// Server is one daemon instance. Create with NewServer, attach listeners
// with Serve, stop with Shutdown.
type Server struct {
	cfg     Config
	obs     *obs.Session
	base    obs.Snapshot
	httpSrv *http.Server
	states  *stateTable

	queue chan *job
	wg    sync.WaitGroup // workers
	busy  atomic.Int64

	// jobNanos/jobCount accumulate completed-job wall time, the latency
	// estimate behind the 429 Retry-After hint.
	jobNanos atomic.Int64
	jobCount atomic.Int64

	mu          sync.RWMutex // guards draining and sends into queue
	draining    bool
	drainUntil  time.Time // Shutdown ctx's deadline, zero if none
	ownStateDir bool
}

type job struct {
	endpoint string
	ctx      context.Context
	run      func(ctx context.Context) (int, *Response)
	done     chan jobResult // buffered(1): the worker never blocks on a lost client
}

type jobResult struct {
	status int
	resp   *Response
}

// NewServer builds and starts a server (workers running, no listeners
// yet). It installs a fresh obs session as the process-wide current one so
// the whole pipeline's metrics land in /metrics.
func NewServer(cfg Config) (*Server, error) {
	cfg.fill()
	s := &Server{cfg: cfg}
	if cfg.StateDir == "" {
		dir, err := os.MkdirTemp("", "chowd-state-")
		if err != nil {
			return nil, fmt.Errorf("daemon: state dir: %w", err)
		}
		s.cfg.StateDir = dir
		s.ownStateDir = true
	} else if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: state dir: %w", err)
	}
	// The daemon is its state directory's only writer; leftover lockfiles
	// are debris from a crashed predecessor and would wedge every Save.
	clearStaleLocks(s.cfg.StateDir)

	s.obs = obs.Begin(obs.Options{Trace: true, TraceCap: cfg.TraceCap})
	s.base = s.obs.Snap()
	s.states = newStateTable(s.cfg.StateDir, cfg.MaxClients, s.obs)
	s.queue = make(chan *job, cfg.QueueDepth)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/compile", func(w http.ResponseWriter, r *http.Request) {
		s.serveWork(w, r, "compile", nil, s.compileWork)
	})
	mux.HandleFunc("/compile-incremental", func(w http.ResponseWriter, r *http.Request) {
		s.serveWork(w, r, "compile-incremental", requireClient, s.incrementalWork)
	})
	mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) {
		s.serveWork(w, r, "run", nil, s.runWork)
	})
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.httpSrv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		ReadTimeout:       cfg.ReadTimeout,
	}
	return s, nil
}

// Handler exposes the daemon's HTTP surface (tests drive it directly).
func (s *Server) Handler() http.Handler { return s.httpSrv.Handler }

// Serve accepts connections on ln until Shutdown. It may be called once
// per listener (TCP and unix socket concurrently).
func (s *Server) Serve(ln net.Listener) error { return s.httpSrv.Serve(ln) }

// Shutdown drains the daemon: new work is refused with 503 immediately,
// queued and in-flight work completes, and listeners close — all under
// ctx's deadline. A drain that outlives ctx returns the deadline error
// with work still running (the process is expected to exit anyway).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	if !already {
		s.draining = true
		if dl, ok := ctx.Deadline(); ok {
			s.drainUntil = dl
		}
		// Safe: every sender holds mu.RLock and re-checks draining first.
		close(s.queue)
	}
	s.mu.Unlock()

	var err error
	if !already {
		drained := make(chan struct{})
		go func() { s.wg.Wait(); close(drained) }()
		select {
		case <-drained:
		case <-ctx.Done():
			err = fmt.Errorf("daemon: drain deadline: %w", ctx.Err())
		}
	}
	if serr := s.httpSrv.Shutdown(ctx); serr != nil && err == nil {
		err = serr
	}
	if s.ownStateDir {
		os.RemoveAll(s.cfg.StateDir)
	}
	return err
}

// serveWork is the shared request path: decode → validate → admit → await.
func (s *Server) serveWork(w http.ResponseWriter, r *http.Request, endpoint string,
	pre func(*Request) *ReqError, work func(context.Context, *Request) (int, *Response)) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, reqErrorResponse(
			&ReqError{http.StatusMethodNotAllowed, "method-not-allowed", endpoint + " takes POST"}))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, rerr := DecodeRequest(body, Limits{MaxBodyBytes: s.cfg.MaxBodyBytes, MaxSourceLines: s.cfg.MaxSourceLines})
	if rerr == nil && pre != nil {
		rerr = pre(req)
	}
	if rerr != nil {
		if rerr.Status == http.StatusRequestEntityTooLarge {
			s.obs.Add(obs.CDaemonRejectedSize, 1)
		} else {
			s.obs.Add(obs.CDaemonBadRequests, 1)
		}
		writeJSON(w, rerr.Status, reqErrorResponse(rerr))
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	j := &job{endpoint: endpoint, ctx: ctx, done: make(chan jobResult, 1)}
	j.run = func(ctx context.Context) (int, *Response) { return work(ctx, req) }
	if res, admitted := s.admit(j); !admitted {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter(res.status)))
		writeJSON(w, res.status, res.resp)
		return
	}
	select {
	case res := <-j.done:
		if res.status == http.StatusGatewayTimeout {
			s.obs.Add(obs.CDaemonDeadlines, 1)
		}
		writeJSON(w, res.status, res.resp)
	case <-r.Context().Done():
		// Client gone; the worker's answer lands in the buffered channel
		// and is discarded, and ctx's cancellation (derived from the
		// request context) unwinds any compile still running.
	}
}

func requireClient(req *Request) *ReqError {
	if req.Client == "" {
		return &ReqError{http.StatusBadRequest, "missing-client", `"client" is required on /compile-incremental`}
	}
	return nil
}

// retryAfter derives the Retry-After hint (seconds, >= 1) for a refusal.
// Draining (503): retrying against this process is futile until it is gone,
// so the hint is the drain window's remainder — a client that waits that
// long talks to the replacement, not the corpse. Queue full (429): the hint
// is one full queue turnover through the worker pool at the observed mean
// job latency, so a saturated daemon paces clients to its actual drain rate
// instead of inviting an immediate second refusal.
func (s *Server) retryAfter(status int) int {
	if status == http.StatusServiceUnavailable {
		s.mu.RLock()
		until := s.drainUntil
		s.mu.RUnlock()
		if sec := int(time.Until(until) / time.Second); sec > 1 {
			return sec
		}
		return 1
	}
	mean := time.Duration(0)
	if n := s.jobCount.Load(); n > 0 {
		mean = time.Duration(s.jobNanos.Load() / n)
	}
	turnover := time.Duration(len(s.queue)/s.cfg.Workers+1) * mean
	sec := int((turnover + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	if lim := int(s.cfg.MaxTimeout / time.Second); sec > lim && lim >= 1 {
		sec = lim
	}
	return sec
}

// admit places j in the queue or refuses it (429 queue full, 503
// draining). It never blocks: backpressure is the client's problem to
// pace, not the daemon's to buffer.
func (s *Server) admit(j *job) (jobResult, bool) {
	s.mu.RLock()
	if s.draining {
		s.mu.RUnlock()
		s.obs.Add(obs.CDaemonDrainRefusals, 1)
		return jobResult{http.StatusServiceUnavailable, reqErrorResponse(
			&ReqError{http.StatusServiceUnavailable, "draining", "daemon is shutting down"})}, false
	}
	select {
	case s.queue <- j:
		s.obs.Add(obs.CDaemonAccepted, 1)
		s.obs.SetMax(obs.GDaemonQueueHigh, int64(len(s.queue)))
		s.mu.RUnlock()
		return jobResult{}, true
	default:
		s.mu.RUnlock()
		s.obs.Add(obs.CDaemonRejectedQueue, 1)
		return jobResult{http.StatusTooManyRequests, reqErrorResponse(
			&ReqError{http.StatusTooManyRequests, "queue-full", "admission queue is full; retry"})}, false
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		j.done <- s.runJob(j)
	}
}

// runJob executes one unit of work with panic containment: a poisoned unit
// becomes a structured 500, the worker survives to take the next job.
func (s *Server) runJob(j *job) (res jobResult) {
	defer func() {
		if p := recover(); p != nil {
			s.obs.Add(obs.CDaemonPanics, 1)
			res = jobResult{http.StatusInternalServerError, &Response{OK: false, Error: &ErrorInfo{
				Class: "internal error", ExitCode: classify.ExitInternal,
				Detail: fmt.Sprintf("worker panic (recovered): %v", p),
			}}}
		}
	}()
	if j.ctx.Err() != nil { // budget spent waiting in the queue
		return jobResult{http.StatusGatewayTimeout, deadlineResponse(j.ctx.Err())}
	}
	s.obs.SetMax(obs.GDaemonBusyHigh, s.busy.Add(1))
	defer s.busy.Add(-1)
	t0 := time.Now()
	defer func() {
		s.jobNanos.Add(int64(time.Since(t0)))
		s.jobCount.Add(1)
	}()
	if faultinject.Armed() {
		faultinject.PanicDaemonWorker(j.endpoint)
	}
	status, resp := j.run(j.ctx)
	return jobResult{status, resp}
}

func deadlineResponse(err error) *Response {
	return &Response{OK: false, Error: &ErrorInfo{
		Class: "deadline", ExitCode: classify.ExitDeadline,
		Detail: fmt.Sprintf("request deadline exceeded: %v", err),
	}}
}

// compile is the shared compile step: front end (cached) plus the
// validated pipeline under ctx's deadline. On success it fills a response
// with the compile-shaped fields and also returns the machine code for
// endpoints that go on to execute it.
func (s *Server) compile(ctx context.Context, req *Request) (*Response, *mcode.Program, int, *Response) {
	mode, rerr := req.Mode()
	if rerr != nil { // unreachable: DecodeRequest validated; defense in depth
		return nil, nil, rerr.Status, reqErrorResponse(rerr)
	}
	sp := s.obs.Span(obs.PhaseCompile, "daemon compile "+mode.Name)
	defer sp.End()
	mod, err := front.Module(req.Source, mode.Optimize, !mode.Sequential)
	if err != nil {
		status, resp := errorResponse(err)
		return nil, nil, status, resp
	}
	plan, code, demotions, err := pipeline.BuildCtx(ctx, mod, mode)
	if err != nil {
		status, resp := errorResponse(err)
		return nil, nil, status, resp
	}
	resp := &Response{OK: true, Mode: mode.Name, Funcs: len(plan.Funcs), CodeWords: len(code.Code)}
	for _, d := range demotions {
		resp.Demotions = append(resp.Demotions, d.String())
	}
	if req.Disasm {
		resp.Disasm = code.Disassemble()
	}
	return resp, code, 0, nil
}

// compileWork compiles the source and describes the result.
func (s *Server) compileWork(ctx context.Context, req *Request) (int, *Response) {
	resp, _, status, errResp := s.compile(ctx, req)
	if errResp != nil {
		return status, errResp
	}
	return http.StatusOK, resp
}

// runWork compiles and executes, passing the deadline's remainder to the
// simulator so a long-running program can't outlive its request budget.
func (s *Server) runWork(ctx context.Context, req *Request) (int, *Response) {
	resp, code, status, errResp := s.compile(ctx, req)
	if errResp != nil {
		return status, errResp
	}
	opts := sim.Options{MaxInstrs: req.MaxInstrs, Engine: req.Engine}
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return http.StatusGatewayTimeout, deadlineResponse(context.DeadlineExceeded)
		}
		opts.Deadline = rem
	}
	res, err := sim.Run(code, opts)
	if err != nil {
		return errorResponse(err)
	}
	resp.Output = res.Output
	if resp.Output == nil {
		resp.Output = []int64{} // a silent program still answers with an output field
	}
	resp.Engine = res.Engine
	resp.Stats = &Stats{
		Cycles: res.Stats.Cycles, Instrs: res.Stats.Instrs, Calls: res.Stats.Calls,
		Loads: res.Stats.Loads, Stores: res.Stats.Stores, LinkageCycles: res.Stats.LinkageCycles,
	}
	return http.StatusOK, resp
}

// incrementalWork compiles against the client's statefile under its
// single-writer lock. A missing/corrupt/mismatched statefile degrades to a
// full rebuild (never a wrong program) with the reason reported.
func (s *Server) incrementalWork(ctx context.Context, req *Request) (int, *Response) {
	mode, rerr := req.Mode()
	if rerr != nil {
		return rerr.Status, reqErrorResponse(rerr)
	}
	cs := s.states.acquire(req.Client)
	defer s.states.release(cs)
	cs.mu.Lock()
	defer cs.mu.Unlock()

	sp := s.obs.Span(obs.PhaseCompile, "daemon compile-incremental "+mode.Name)
	defer sp.End()
	st, lerr := incr.Load(cs.path)
	res, err := pipeline.BuildIncrementalCtx(ctx, req.Source, mode, st)
	if err != nil {
		return errorResponse(err)
	}
	if res.State != nil {
		if serr := res.State.Save(cs.path); serr != nil {
			// Non-fatal: the next round pays a full rebuild. A locked
			// statefile here would be a daemon bug (cs.mu serializes
			// writers), so surface it in metrics either way.
			s.obs.AddLabeled("daemon.state_save_errors", 1)
		}
	}
	resp := &Response{OK: true, Mode: mode.Name, Funcs: len(res.Plan.Funcs), CodeWords: len(res.Prog.Code),
		Incremental: res.Incremental, FallbackReason: res.FallbackReason,
		Reused: res.Reused, Replanned: res.Replanned}
	for _, d := range res.Demotions {
		resp.Demotions = append(resp.Demotions, d.String())
	}
	if lerr != nil && !errors.Is(lerr, fs.ErrNotExist) && !res.Incremental {
		resp.FallbackReason = "statefile rejected: " + lerr.Error()
	}
	if req.Disasm {
		resp.Disasm = res.Prog.Disassemble()
	}
	return http.StatusOK, resp
}

// handleMetrics renders the daemon-lifetime metrics window as plain text,
// one "name value" pair per line.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rep := s.obs.ReportSince(s.base)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "daemon.uptime_ns %d\n", rep.WallNanos)
	fmt.Fprintf(w, "daemon.queue_depth %d\n", len(s.queue))
	fmt.Fprintf(w, "daemon.busy_workers %d\n", s.busy.Load())
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	fmt.Fprintf(w, "daemon.draining %d\n", boolInt(draining))
	fmt.Fprintf(w, "daemon.state_clients %d\n", s.states.entries())
	fmt.Fprintf(w, "daemon.trace_dropped %d\n", s.obs.TraceDropped())
	for _, c := range rep.Counters {
		fmt.Fprintf(w, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range rep.Gauges {
		fmt.Fprintf(w, "%s %d\n", g.Name, g.Value)
	}
	for _, p := range rep.Phases {
		fmt.Fprintf(w, "phase.%s.count %d\nphase.%s.ns %d\n", p.Phase, p.Count, p.Phase, p.Nanos)
	}
}

// handleTrace exports the retained trace as Chrome trace_event JSON.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.obs.WriteTrace(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	status := http.StatusOK
	if draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ok": !draining, "draining": draining})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
