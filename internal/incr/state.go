package incr

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"sort"

	"chow88/internal/codegen"
	"chow88/internal/core"
	"chow88/internal/faultinject"
	"chow88/internal/front"
	"chow88/internal/ir"
	"chow88/internal/regalloc"
)

// State is everything a later compile needs to replay one build
// incrementally: per-function source hashes to detect edits, the call/
// address-reference structure to rebuild the call graph without
// re-front-ending unchanged bodies, the published linkage (the paper's
// summary + argument locations, canonically encoded) to decide where
// invalidation stops, and the relocatable code artifact to reuse verbatim.
type State struct {
	// ModeFP fingerprints every Mode field that can change output; a state
	// captured under a different mode is unusable.
	ModeFP string
	// GlobalsFP hashes all top-level var declarations together: any global
	// edit changes the data layout every function may depend on, so it
	// forces a full rebuild.
	GlobalsFP [sha256.Size]byte
	// Funcs describes every function declaration, in module order.
	Funcs []FuncState
}

// FuncState is one function's captured build artifacts.
type FuncState struct {
	Name   string
	Extern bool
	// ChunkHash covers the declaration's whole source chunk; HeadHash just
	// the signature (whose change invalidates callers, not only the body's
	// owner). Head is the signature text, re-declared as `extern Head;` in
	// mini-sources.
	ChunkHash [sha256.Size]byte
	HeadHash  [sha256.Size]byte
	Head      string
	// Call-graph structure of the lowered body: distinct direct callees in
	// first-call order, functions whose address the body takes, and
	// whether it calls indirectly. Enough to rebuild this function's
	// call-graph contribution without its body.
	Callees     []string
	AddrTakes   []string
	HasIndirect bool
	// Published linkage. Open/summary mirror the plan; Linkage is
	// core.EncodeLinkage's canonical encoding, the unit of delta
	// comparison.
	Open        bool
	HasSummary  bool
	SummaryUsed uint32
	SummaryArgs []regalloc.ArgLoc
	Linkage     []byte
	// Code is the relocatable emitted body (nil for extern).
	Code *codegen.FuncCode
}

// Statefile format: magic, format version, checksum of the gob payload,
// payload. Load rejects anything that does not verify end to end — a
// corrupt statefile must degrade to a full recompile, never miscompile.
const (
	stateMagic = "CHOWINCR"
	// Version is the statefile format version; bump on any layout change.
	// v2: mcode.Instr gained the Linkage attribution bit (gob layout of the
	// cached FuncCode bodies changed, and v1 code replayed into a v2 build
	// would silently lack linkage-cycle accounting).
	Version = 2
)

// ErrLocked reports that another writer holds the statefile's advisory
// lock. The loser of a write race gets this typed error and no side
// effects: the winner's .tmp+rename sequence can never interleave with
// another writer's, so the statefile on disk is always one writer's
// complete, checksummed output. Callers treat a lost race like a failed
// save — the next round simply has no head start.
var ErrLocked = errors.New("incr: statefile locked by another writer")

// LockPath returns the advisory lockfile guarding the statefile at path.
func LockPath(path string) string { return path + ".lock" }

// lock acquires the advisory lockfile with O_CREATE|O_EXCL — atomic on
// every platform the toolchain targets, no flock dependency. The lockfile
// records the holder's pid for post-mortem debugging. A crashed holder
// leaves the lock behind; that only blocks future state captures (each
// degrading to a full rebuild next round, never a miscompile), and
// long-lived daemons clear stale locks for the state directories they own
// at startup.
func lock(path string) (release func(), err error) {
	lp := LockPath(path)
	f, err := os.OpenFile(lp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			holder, _ := os.ReadFile(lp)
			return nil, fmt.Errorf("%w (%s held by pid %s)", ErrLocked, lp, bytes.TrimSpace(holder))
		}
		return nil, err
	}
	fmt.Fprintf(f, "%d\n", os.Getpid())
	f.Close()
	return func() { os.Remove(lp) }, nil
}

// Save writes the state to path (atomically, via a rename) under the
// statefile's advisory lock. A concurrent writer gets ErrLocked instead of
// a torn or interleaved file.
func (st *State) Save(path string) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return fmt.Errorf("incr: encode state: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	var out bytes.Buffer
	out.WriteString(stateMagic)
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], Version)
	out.Write(ver[:])
	out.Write(sum[:])
	out.Write(payload.Bytes())
	if faultinject.Armed() && faultinject.CorruptStatefile(path) {
		// Chaos: flip one payload byte after the checksum was computed, so
		// the corruption is end-to-end detectable. Load must reject the
		// file and the next build degrade to a full rebuild.
		b := out.Bytes()
		b[len(b)-1] ^= 0x01
	}
	release, err := lock(path)
	if err != nil {
		return err
	}
	defer release()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, out.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a statefile. Any mismatch — magic, version, checksum, gob
// decoding — is an error; the caller treats it as "no previous state".
func Load(path string) (*State, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	hdr := len(stateMagic) + 4 + sha256.Size
	if len(raw) < hdr || string(raw[:len(stateMagic)]) != stateMagic {
		return nil, fmt.Errorf("incr: %s is not a statefile", path)
	}
	if v := binary.LittleEndian.Uint32(raw[len(stateMagic):]); v != Version {
		return nil, fmt.Errorf("incr: statefile version %d, want %d", v, Version)
	}
	var sum [sha256.Size]byte
	copy(sum[:], raw[len(stateMagic)+4:])
	payload := raw[hdr:]
	if sha256.Sum256(payload) != sum {
		return nil, fmt.Errorf("incr: statefile checksum mismatch")
	}
	st := &State{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
		return nil, fmt.Errorf("incr: decode state: %w", err)
	}
	return st, nil
}

// ModeFingerprint flattens every output-relevant Mode field. Sequential is
// deliberately excluded: the parallel and sequential pipelines are
// byte-identical, so states transfer between them.
func ModeFingerprint(mode core.Mode) string {
	cfg := mode.Config
	fo := append([]string(nil), mode.ForceOpen...)
	sort.Strings(fo)
	return fmt.Sprintf("v%d|%s|ipra=%t|sw=%t|opt=%t|nosplit=%t|validate=%t|strict=%t|inline=%t/%d|cfg=%s/%08x/%08x/%v|forceopen=%v",
		Version, mode.Name, mode.IPRA, mode.ShrinkWrap, mode.Optimize, mode.DisableSplitting,
		mode.Validate, mode.Strict, mode.Inline, mode.InlineBudget,
		cfg.Name, uint32(cfg.CallerSaved), uint32(cfg.CalleeSaved), cfg.Params, fo)
}

// Capture builds the state of a finished full build: src must be the
// source pp was compiled from. Code artifacts are re-emitted from the
// final plans (deterministic, and cheap next to the build itself).
func Capture(src string, mode core.Mode, pp *core.ProgramPlan) (*State, error) {
	chunks, err := front.ChunkSource(src)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]front.Chunk, len(chunks))
	for _, c := range chunks {
		byName[c.Name] = c
	}
	codes, err := codegen.EmitFuncs(pp)
	if err != nil {
		return nil, err
	}
	st := &State{ModeFP: ModeFingerprint(mode), GlobalsFP: globalsFingerprint(chunks)}
	for i, f := range pp.Module.Funcs {
		c, ok := byName[f.Name]
		if !ok {
			return nil, fmt.Errorf("incr: no source chunk for %s", f.Name)
		}
		if wantKind := front.ChunkFunc; (f.Extern && c.Kind != front.ChunkExtern) || (!f.Extern && c.Kind != wantKind) {
			return nil, fmt.Errorf("incr: chunk kind mismatch for %s", f.Name)
		}
		fs := FuncState{
			Name:      f.Name,
			Extern:    f.Extern,
			ChunkHash: sha256.Sum256([]byte(c.Text)),
			HeadHash:  sha256.Sum256([]byte(c.Head)),
			Head:      c.Head,
		}
		if !f.Extern {
			fp := pp.Funcs[f]
			if fp == nil {
				return nil, fmt.Errorf("incr: no plan for %s", f.Name)
			}
			scanBody(f, &fs)
			fs.Open = pp.Graph.Open[f]
			setLinkage(&fs, fp.Summary)
			fs.Code = codes[i]
		}
		st.Funcs = append(st.Funcs, fs)
	}
	return st, nil
}

// setLinkage records a plan's published linkage on the state entry.
func setLinkage(fs *FuncState, s *core.Summary) {
	if s != nil && !fs.Open {
		fs.HasSummary = true
		fs.SummaryUsed = uint32(s.Used)
		fs.SummaryArgs = append([]regalloc.ArgLoc(nil), s.Args...)
	}
	if fs.Open {
		fs.Linkage = core.EncodeLinkage(true, nil)
	} else {
		fs.Linkage = core.EncodeLinkage(false, s)
	}
}

// scanBody extracts the call-graph contribution of f's lowered body.
func scanBody(f *ir.Func, fs *FuncState) {
	seenCall := map[string]bool{}
	seenAddr := map[string]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpCall:
				if !seenCall[in.Callee.Name] {
					seenCall[in.Callee.Name] = true
					fs.Callees = append(fs.Callees, in.Callee.Name)
				}
			case ir.OpCallInd:
				fs.HasIndirect = true
			case ir.OpFuncAddr:
				if !seenAddr[in.Callee.Name] {
					seenAddr[in.Callee.Name] = true
					fs.AddrTakes = append(fs.AddrTakes, in.Callee.Name)
				}
			}
		}
	}
}

// globalsFingerprint hashes every top-level var declaration, in order.
func globalsFingerprint(chunks []front.Chunk) [sha256.Size]byte {
	h := sha256.New()
	for _, c := range chunks {
		if c.Kind == front.ChunkGlobal {
			h.Write([]byte(c.Text))
			h.Write([]byte{0})
		}
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
