// Package incr implements summary-delta incremental recompilation.
//
// The paper's one-pass bottom-up discipline makes incrementality natural:
// a procedure's plan depends only on its own IR and the published linkage
// (register-usage summary + argument locations) of its direct callees. So
// after an edit, only the textually changed functions and the functions
// reached by a *linkage delta* chain need replanning — the moment a
// replanned callee republishes byte-identical linkage, propagation stops
// and every caller's previous plan and emitted code are reused verbatim.
//
// Apply is deliberately paranoid: any surprise — unchunkable source, a
// mini-compile error, a name that fails to resolve, a validator violation,
// a panic — abandons the incremental attempt with a reason, and the caller
// falls back to a full recompile. Degradation is always to a slower
// correct build, never to a wrong one.
package incr

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"strings"

	"chow88/internal/check"
	"chow88/internal/codegen"
	"chow88/internal/core"
	"chow88/internal/front"
	"chow88/internal/ir"
	"chow88/internal/mach"
	"chow88/internal/mcode"
	"chow88/internal/obs"
)

// Outcome is a successful incremental build.
type Outcome struct {
	Plan  *core.ProgramPlan
	Prog  *mcode.Program
	State *State // refreshed state for the new revision
	// Replanned and Reused count defined functions; their sum is the number
	// of function definitions in the new source.
	Replanned int
	Reused    int
}

// Apply recompiles src against the previous build's state. On any failure
// it returns a nil Outcome and the reason; the caller must then fall back
// to a full rebuild. A panic anywhere inside is contained and reported the
// same way.
func Apply(src string, mode core.Mode, st *State) (out *Outcome, reason string) {
	defer func() {
		if r := recover(); r != nil {
			out, reason = nil, fmt.Sprintf("panic during incremental build: %v", r)
		}
	}()
	o, err := apply(src, mode, st)
	if err != nil {
		return nil, err.Error()
	}
	return o, ""
}

func apply(src string, mode core.Mode, st *State) (*Outcome, error) {
	os := obs.Current()
	sp := os.Span(obs.PhaseIncr, "incremental")
	defer sp.End()

	if st == nil {
		return nil, fmt.Errorf("no previous state")
	}
	if fp := ModeFingerprint(mode); fp != st.ModeFP {
		return nil, fmt.Errorf("mode changed (%s -> %s)", st.ModeFP, fp)
	}
	chunks, err := front.ChunkSource(src)
	if err != nil {
		return nil, err
	}
	if globalsFingerprint(chunks) != st.GlobalsFP {
		return nil, fmt.Errorf("global variables changed")
	}

	// Function declarations of the new revision, in declaration order, and
	// the state indexed by name.
	var funcChunks []front.Chunk
	for _, c := range chunks {
		if c.Kind != front.ChunkGlobal {
			funcChunks = append(funcChunks, c)
		}
	}
	oldByName := make(map[string]*FuncState, len(st.Funcs))
	oldIndex := make(map[string]int, len(st.Funcs))
	for i := range st.Funcs {
		oldByName[st.Funcs[i].Name] = &st.Funcs[i]
		oldIndex[st.Funcs[i].Name] = i
	}

	// referencers[name] lists the previous revision's functions whose code
	// bakes something about name in: call sites (argument marshalling and
	// the callee's module index) and address takes (the index again).
	referencers := map[string][]string{}
	for i := range st.Funcs {
		fs := &st.Funcs[i]
		for _, n := range fs.Callees {
			referencers[n] = append(referencers[n], fs.Name)
		}
		for _, n := range fs.AddrTakes {
			referencers[n] = append(referencers[n], fs.Name)
		}
	}

	// Diff. A function is "changed" when its front-end output cannot be
	// assumed identical: its own chunk changed, or something its lowered
	// body bakes in moved — a referenced signature, a referenced function's
	// module index, a referenced declaration's existence or kind.
	changed := map[string]bool{}
	markReferencers := func(name string) {
		for _, r := range referencers[name] {
			changed[r] = true
		}
	}
	newNames := make(map[string]bool, len(funcChunks))
	for i, c := range funcChunks {
		newNames[c.Name] = true
		old, ok := oldByName[c.Name]
		if !ok {
			changed[c.Name] = true // new declaration; callers must mention it textually
			continue
		}
		if (old.Extern && c.Kind != front.ChunkExtern) || (!old.Extern && c.Kind != front.ChunkFunc) {
			changed[c.Name] = true
			markReferencers(c.Name)
			continue
		}
		if sha256.Sum256([]byte(c.Text)) != old.ChunkHash {
			changed[c.Name] = true
			if sha256.Sum256([]byte(c.Head)) != old.HeadHash {
				markReferencers(c.Name)
			}
		}
		// Module indices are 1-based declaration positions; JAL and funcaddr
		// operands encode them, so reused code is only valid for functions
		// whose every referenced index is unmoved.
		if oldIndex[c.Name] != i {
			markReferencers(c.Name)
		}
	}
	for name := range oldByName {
		if !newNames[name] {
			markReferencers(name) // removed; referencers must have changed textually too
		}
	}

	// Mini-source: the new revision with every unchanged function body
	// elided. Globals and changed declarations appear verbatim, unchanged
	// definitions shrink to their extern heads (main, which cannot be
	// extern, to an empty body). Declaration order — hence module indices
	// and data layout — is preserved exactly.
	var mini strings.Builder
	for _, c := range chunks {
		switch {
		case c.Kind == front.ChunkGlobal, changed[c.Name]:
			mini.WriteString(c.Text)
		case c.Kind == front.ChunkExtern:
			mini.WriteString(c.Text)
		case c.Name == "main":
			mini.WriteString(c.Head)
			mini.WriteString(" { }")
		default:
			mini.WriteString("extern ")
			mini.WriteString(c.Head)
			mini.WriteString(";")
		}
		mini.WriteString("\n")
	}
	mod, err := front.Build(mini.String(), mode.Optimize)
	if err != nil {
		return nil, fmt.Errorf("mini-compile: %w", err)
	}
	if len(mod.Funcs) != len(funcChunks) {
		return nil, fmt.Errorf("mini-compile produced %d functions, want %d", len(mod.Funcs), len(funcChunks))
	}
	for i, f := range mod.Funcs {
		if f.Name != funcChunks[i].Name {
			return nil, fmt.Errorf("mini-compile declaration order mismatch at %d: %s != %s", i, f.Name, funcChunks[i].Name)
		}
	}

	// Turn the mini-module into the working module: every elided function
	// gets a stub body that reproduces its previous call-graph contribution
	// (distinct callees in first-call order, indirect-call flag), so
	// callgraph.Build classifies and orders functions exactly as a full
	// build of the real source would.
	stub := map[*ir.Func]bool{}
	for i, c := range funcChunks {
		f := mod.Funcs[i]
		if c.Kind != front.ChunkFunc || changed[c.Name] {
			continue
		}
		old := oldByName[c.Name]
		if old == nil || old.Extern {
			return nil, fmt.Errorf("no reusable state for %s", c.Name)
		}
		f.Extern = false
		f.Blocks = nil
		b := f.NewBlock()
		for _, callee := range old.Callees {
			t := mod.Lookup(callee)
			if t == nil {
				return nil, fmt.Errorf("stub %s: callee %s not in module", c.Name, callee)
			}
			b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpCall, Callee: t})
		}
		if old.HasIndirect {
			b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpCallInd})
		}
		b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpRet})
		for _, name := range old.AddrTakes {
			t := mod.Lookup(name)
			if t == nil {
				return nil, fmt.Errorf("stub %s: address-taken %s not in module", c.Name, name)
			}
			t.AddressTaken = true
		}
		stub[f] = true
	}

	pp := core.NewShellPlan(mod, mode)

	// Classification flips (open <-> closed) change a function's linkage
	// even with identical text; preset them into the replan frontier. Seed
	// the previous summaries for functions closed in both revisions — the
	// bottom-up walk replans any callee before a caller could consume its
	// seed, so stale seeds are never read.
	classDelta := map[*ir.Func]bool{}
	for _, f := range mod.Funcs {
		if f.Extern {
			continue
		}
		old := oldByName[f.Name]
		if old == nil || old.Extern {
			continue
		}
		if pp.Graph.Open[f] != old.Open {
			classDelta[f] = true
		}
		if old.HasSummary && !pp.Graph.Open[f] {
			pp.SeedSummary(f, &core.Summary{Used: mach.RegSet(old.SummaryUsed), Args: old.SummaryArgs})
		}
	}

	// The walk: bottom-up over the call graph, replanning exactly the
	// functions that are changed, class-flipped, or downstream of a
	// linkage delta. Everything else keeps its seeded summary and previous
	// code. Stubs entering the frontier are first rebuilt for real
	// (mini-compile of just that function, transplanted in).
	//
	// Closed callees always precede their callers in PostOrder (a closed
	// function is in no cycle), so their deltas are discovered in time as
	// the walk replans them. Callees in a cycle with their caller offer no
	// such guarantee — but cycle members are open, whose only possible
	// linkage change is a class flip, and those are known before the walk:
	// pre-seeding them makes delta propagation exact.
	linkDelta := map[*ir.Func]bool{}
	for f := range classDelta {
		linkDelta[f] = true
	}
	var frontier []*ir.Func
	reused := 0
	wsp := os.Span(obs.PhasePlan, "replan frontier")
	for _, f := range pp.Order {
		if f.Extern {
			continue
		}
		old := oldByName[f.Name]
		replan := changed[f.Name] || classDelta[f]
		if !replan {
			for _, c := range pp.Graph.Callees[f] {
				if linkDelta[c] {
					replan = true
					os.Add(obs.CIncrDeltaPropagations, 1)
					break
				}
			}
		}
		if !replan {
			os.Add(obs.CIncrFuncsReused, 1)
			reused++
			continue
		}
		if stub[f] {
			if err := demandCompile(chunks, mode, mod, f); err != nil {
				return nil, err
			}
			delete(stub, f)
			os.Add(obs.CIncrDemandCompiles, 1)
		}
		fp, err := pp.PlanOne(f)
		if err != nil {
			return nil, fmt.Errorf("replan %s: %w", f.Name, err)
		}
		newLink := core.EncodeLinkage(pp.Graph.Open[f], fp.Summary)
		if old != nil && !old.Extern && bytes.Equal(newLink, old.Linkage) {
			os.Add(obs.CIncrSummaryCutoffs, 1)
		} else {
			linkDelta[f] = true
		}
		frontier = append(frontier, f)
	}
	wsp.End()
	os.Add(obs.CIncrFuncsReplanned, int64(len(frontier)))
	os.SetMax(obs.GIncrFrontier, int64(len(frontier)))

	// Resolve callee summaries for validation: fresh plans first, then the
	// previous build's publications for reused functions.
	summaryOf := func(f *ir.Func) *core.Summary {
		if fp := pp.Funcs[f]; fp != nil {
			return fp.Summary
		}
		if old := oldByName[f.Name]; old != nil && old.HasSummary && !pp.Graph.Open[f] {
			return &core.Summary{Used: mach.RegSet(old.SummaryUsed), Args: old.SummaryArgs}
		}
		return nil
	}
	if mode.Validate {
		if viols := check.PlanFuncs(pp, frontier, summaryOf); len(viols) > 0 {
			return nil, fmt.Errorf("plan validation: %s", viols[0])
		}
	}

	// Emit the frontier, reuse everything else's previous code verbatim,
	// and link. (There is no degradation ladder here: a code-check failure
	// means the full pipeline should handle this revision.)
	codes := make([]*codegen.FuncCode, len(mod.Funcs))
	for i, f := range mod.Funcs {
		if f.Extern {
			continue
		}
		if fp := pp.Funcs[f]; fp != nil {
			codes[i], err = codegen.EmitFunc(pp, fp)
			if err != nil {
				return nil, fmt.Errorf("emit %s: %w", f.Name, err)
			}
			continue
		}
		old := oldByName[f.Name]
		if old == nil || old.Code == nil {
			return nil, fmt.Errorf("no reusable code for %s", f.Name)
		}
		codes[i] = old.Code
		os.Add(obs.CIncrCodeReused, 1)
	}
	prog, err := codegen.Link(mod, codes)
	if err != nil {
		return nil, err
	}
	if mode.Validate {
		if viols := check.CodeFuncs(pp, prog, frontier, summaryOf); len(viols) > 0 {
			return nil, fmt.Errorf("code validation: %s", viols[0])
		}
	}

	// Refresh the state: replanned functions are scanned and recorded
	// fresh, reused ones carry their previous entries (with the new
	// revision's hashes, which equal the old ones by construction).
	nst := &State{ModeFP: st.ModeFP, GlobalsFP: st.GlobalsFP}
	for i, f := range mod.Funcs {
		c := funcChunks[i]
		fs := FuncState{
			Name:      f.Name,
			Extern:    f.Extern,
			ChunkHash: sha256.Sum256([]byte(c.Text)),
			HeadHash:  sha256.Sum256([]byte(c.Head)),
			Head:      c.Head,
		}
		if !f.Extern {
			if fp := pp.Funcs[f]; fp != nil {
				scanBody(f, &fs)
				fs.Open = pp.Graph.Open[f]
				setLinkage(&fs, fp.Summary)
			} else {
				old := oldByName[f.Name]
				fs.Callees = old.Callees
				fs.AddrTakes = old.AddrTakes
				fs.HasIndirect = old.HasIndirect
				fs.Open = old.Open
				fs.HasSummary = old.HasSummary
				fs.SummaryUsed = old.SummaryUsed
				fs.SummaryArgs = old.SummaryArgs
				fs.Linkage = old.Linkage
			}
			fs.Code = codes[i]
		}
		nst.Funcs = append(nst.Funcs, fs)
	}

	return &Outcome{Plan: pp, Prog: prog, State: nst, Replanned: len(frontier), Reused: reused}, nil
}

// demandCompile rebuilds the real body of a textually unchanged function
// that was pulled into the replan frontier by a callee's linkage delta:
// mini-compile a source with only that one definition kept, then
// transplant the resulting body into the working module's stub.
func demandCompile(chunks []front.Chunk, mode core.Mode, mod *ir.Module, f *ir.Func) error {
	var mini strings.Builder
	for _, c := range chunks {
		switch {
		case c.Kind == front.ChunkGlobal, c.Kind == front.ChunkExtern, c.Name == f.Name:
			mini.WriteString(c.Text)
		case c.Name == "main":
			mini.WriteString(c.Head)
			mini.WriteString(" { }")
		default:
			mini.WriteString("extern ")
			mini.WriteString(c.Head)
			mini.WriteString(";")
		}
		mini.WriteString("\n")
	}
	m, err := front.Build(mini.String(), mode.Optimize)
	if err != nil {
		return fmt.Errorf("demand-compile %s: %w", f.Name, err)
	}
	src := m.Lookup(f.Name)
	if src == nil || src.Extern {
		return fmt.Errorf("demand-compile %s: definition missing from mini-module", f.Name)
	}
	if err := ir.TransplantFunc(mod, f, src); err != nil {
		return err
	}
	return nil
}
