package incr

import (
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"chow88/internal/codegen"
	"chow88/internal/core"
	"chow88/internal/mach"
	"chow88/internal/regalloc"
)

func sampleState() *State {
	return &State{
		ModeFP:    ModeFingerprint(core.ModeC()),
		GlobalsFP: sha256.Sum256([]byte("var g int;")),
		Funcs: []FuncState{
			{
				Name:      "helper",
				Extern:    true,
				ChunkHash: sha256.Sum256([]byte("extern func helper(x int) int;")),
				HeadHash:  sha256.Sum256([]byte("")),
				Head:      "",
				Linkage:   nil,
				Code:      nil,
			},
			{
				Name:        "work",
				ChunkHash:   sha256.Sum256([]byte("func work(a int) int { return helper(a); }")),
				HeadHash:    sha256.Sum256([]byte("func work(a int) int")),
				Head:        "func work(a int) int",
				Callees:     []string{"helper"},
				AddrTakes:   []string{"helper"},
				HasIndirect: true,
				Open:        false,
				HasSummary:  true,
				SummaryUsed: 0x00ff00f0,
				SummaryArgs: []regalloc.ArgLoc{{InReg: true, Reg: 4}},
				Linkage:     []byte{1, 0xf0, 0x00, 0xff, 0x00, 1, 1, 4, 0, 0, 0, 0},
				Code:        &codegen.FuncCode{FrameSize: 16},
			},
		},
	}
}

// TestStateRoundTrip: Save then Load reproduces the state exactly.
func TestStateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.state")
	st := sampleState()
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, st)
	}

	// Saving over an existing statefile replaces it cleanly.
	st.Funcs = st.Funcs[:1]
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Funcs) != 1 {
		t.Errorf("overwrite not visible: %d funcs, want 1", len(got.Funcs))
	}
}

// TestModeFingerprint: every output-relevant mode axis separates states;
// Sequential — the one axis that cannot change output — does not.
func TestModeFingerprint(t *testing.T) {
	modes := map[string]core.Mode{
		"base": core.ModeBase(),
		"A":    core.ModeA(),
		"B":    core.ModeB(),
		"C":    core.ModeC(),
		"D":    core.ModeD(),
		"E":    core.ModeE(),
	}
	fps := map[string]string{}
	for name, m := range modes {
		fps[name] = ModeFingerprint(m)
	}
	for a, fa := range fps {
		for b, fb := range fps {
			if a != b && fa == fb {
				t.Errorf("modes %s and %s share fingerprint %q", a, b, fa)
			}
		}
	}

	c := core.ModeC()
	base := ModeFingerprint(c)

	seq := c
	seq.Sequential = !seq.Sequential
	if ModeFingerprint(seq) != base {
		t.Error("Sequential must not affect the fingerprint (pipelines are byte-identical)")
	}

	fo := c
	fo.ForceOpen = []string{"b", "a"}
	fo2 := c
	fo2.ForceOpen = []string{"a", "b"}
	if ModeFingerprint(fo) != ModeFingerprint(fo2) {
		t.Error("ForceOpen order must not affect the fingerprint")
	}
	if ModeFingerprint(fo) == base {
		t.Error("ForceOpen contents must affect the fingerprint")
	}

	axes := map[string]func(*core.Mode){
		"IPRA":             func(m *core.Mode) { m.IPRA = !m.IPRA },
		"ShrinkWrap":       func(m *core.Mode) { m.ShrinkWrap = !m.ShrinkWrap },
		"Optimize":         func(m *core.Mode) { m.Optimize = !m.Optimize },
		"DisableSplitting": func(m *core.Mode) { m.DisableSplitting = !m.DisableSplitting },
		"Validate":         func(m *core.Mode) { m.Validate = !m.Validate },
		"Strict":           func(m *core.Mode) { m.Strict = !m.Strict },
		"Inline":           func(m *core.Mode) { m.Inline = !m.Inline },
		"InlineBudget":     func(m *core.Mode) { m.InlineBudget = 75 },
	}
	for name, flip := range axes {
		m := core.ModeC()
		flip(&m)
		if ModeFingerprint(m) == base {
			t.Errorf("flipping %s must change the fingerprint", name)
		}
	}
}

// TestModeFingerprintConventionAudit sweeps the entire convention
// enumeration: every distinct calling convention must fingerprint
// distinctly, or a statefile captured under one partition could be spliced
// into a build for another (stale summaries, wrong save sites — a silent
// miscompile, not a failure).
func TestModeFingerprintConventionAudit(t *testing.T) {
	cands := append([]*mach.Config{mach.Default(), mach.CallerOnly7(), mach.CalleeOnly7()},
		mach.Enumerate(-1)...)
	seen := map[string]string{} // fingerprint -> spec
	for _, c := range cands {
		fp := ModeFingerprint(core.ModeConv(c))
		spec := c.Spec()
		if prev, ok := seen[fp]; ok && prev != spec {
			t.Errorf("conventions %s and %s share fingerprint %q", prev, spec, fp)
		}
		seen[fp] = spec
	}
	// Same shape, different members: the short name collides (both are one
	// 2/1 partition) but the register sets must still separate the states.
	a := core.ModeConv(&mach.Config{Name: "x", CallerSaved: mach.SetOf(mach.T0, mach.T1), CalleeSaved: mach.SetOf(mach.S0)})
	b := core.ModeConv(&mach.Config{Name: "x", CallerSaved: mach.SetOf(mach.T0, mach.T2), CalleeSaved: mach.SetOf(mach.S0)})
	if ModeFingerprint(a) == ModeFingerprint(b) {
		t.Error("same-named conventions with different register sets share a fingerprint")
	}
	// And the parameter list alone must separate, too.
	p0 := core.ModeConv(mach.Boundary(9, 0))
	p4 := core.ModeConv(mach.Boundary(9, 4))
	if ModeFingerprint(p0) == ModeFingerprint(p4) {
		t.Error("parameter count does not reach the fingerprint")
	}
}

// TestSaveLockHeld: a writer that finds the advisory lock taken gets the
// typed ErrLocked and leaves the statefile untouched.
func TestSaveLockHeld(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.state")
	st := sampleState()
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(LockPath(path), []byte("424242\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := sampleState()
	st2.GlobalsFP = sha256.Sum256([]byte("var h int;"))
	err := st2.Save(path)
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("save under a held lock returned %v, want ErrLocked", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("statefile damaged by a locked-out writer: %v", err)
	}
	if got.GlobalsFP != st.GlobalsFP {
		t.Fatal("locked-out writer's payload reached the statefile")
	}
	if err := os.Remove(LockPath(path)); err != nil {
		t.Fatal(err)
	}
	if err := st2.Save(path); err != nil {
		t.Fatalf("save after lock release: %v", err)
	}
}

// TestSaveConcurrentWriters hammers one statefile path from many
// goroutines. The advisory lock admits one writer at a time: every loser
// gets the typed ErrLocked (never a different error, never a partial
// write), and after every round the file on disk verifies end to end —
// magic, version, checksum, gob — as exactly one writer's output.
func TestSaveConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.state")
	const writers = 8
	const rounds = 25

	states := make([]*State, writers)
	for i := range states {
		states[i] = sampleState()
		states[i].GlobalsFP = sha256.Sum256([]byte{byte(i)})
	}

	var wins, losses atomic.Int64
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make([]error, writers)
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = states[i].Save(path)
			}(i)
		}
		wg.Wait()
		okByFP := map[[sha256.Size]byte]bool{}
		for i, err := range errs {
			switch {
			case err == nil:
				wins.Add(1)
				okByFP[states[i].GlobalsFP] = true
			case errors.Is(err, ErrLocked):
				losses.Add(1)
			default:
				t.Fatalf("round %d writer %d: unexpected error class: %v", round, i, err)
			}
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("round %d: statefile fails verification after concurrent writes: %v", round, err)
		}
		if !okByFP[got.GlobalsFP] {
			t.Fatalf("round %d: statefile holds a losing writer's payload", round)
		}
	}
	if wins.Load() == 0 {
		t.Fatal("no writer ever won the lock")
	}
	if losses.Load() == 0 {
		t.Skip("writers never actually contended; lock exclusion unexercised this run")
	}
}
