package dataflow

import (
	"testing"
	"testing/quick"

	"chow88/internal/ir"
)

func TestBitVecBasics(t *testing.T) {
	v := NewBitVec(130)
	v.Set(0)
	v.Set(64)
	v.Set(129)
	if !v.Get(0) || !v.Get(64) || !v.Get(129) || v.Get(1) {
		t.Fatal("get/set broken")
	}
	if v.Count() != 3 {
		t.Fatalf("count = %d", v.Count())
	}
	v.Clear(64)
	if v.Get(64) || v.Count() != 2 {
		t.Fatal("clear broken")
	}
	var got []int
	v.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Fatalf("foreach = %v", got)
	}
	if v.String() != "{0, 129}" {
		t.Fatalf("string = %s", v.String())
	}
}

func TestBitVecSetOps(t *testing.T) {
	a := NewBitVec(100)
	b := NewBitVec(100)
	a.Set(1)
	a.Set(50)
	b.Set(50)
	b.Set(99)
	u := NewBitVec(100)
	u.Copy(a)
	if !u.Union(b) {
		t.Fatal("union should change")
	}
	if u.Count() != 3 {
		t.Fatalf("union count = %d", u.Count())
	}
	if u.Union(b) {
		t.Fatal("second union should not change")
	}
	i := NewBitVec(100)
	i.Copy(a)
	i.Intersect(b)
	if i.Count() != 1 || !i.Get(50) {
		t.Fatalf("intersect = %s", i)
	}
	d := NewBitVec(100)
	d.Copy(a)
	d.AndNot(b)
	if d.Count() != 1 || !d.Get(1) {
		t.Fatalf("andnot = %s", d)
	}
}

func TestBitVecFillAll(t *testing.T) {
	v := NewBitVec(70)
	v.FillAll(70)
	if v.Count() != 70 {
		t.Fatalf("fillall count = %d", v.Count())
	}
	v.ClearAll()
	if !v.Empty() {
		t.Fatal("clearall broken")
	}
}

// Property: union is idempotent, commutative in effect, and monotone in count.
func TestBitVecUnionProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := NewBitVec(256)
		b := NewBitVec(256)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		u1 := NewBitVec(256)
		u1.Copy(a)
		u1.Union(b)
		u2 := NewBitVec(256)
		u2.Copy(b)
		u2.Union(a)
		if !u1.Equal(u2) {
			return false
		}
		if u1.Count() < a.Count() || u1.Count() < b.Count() {
			return false
		}
		// Idempotent.
		u3 := NewBitVec(256)
		u3.Copy(u1)
		if u3.Union(u1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// diamond builds: entry -> a, b; a,b -> join; join -> exit (straight).
func diamond() *ir.Func {
	f := ir.NewFunc("d")
	entry := f.NewBlock()
	a := f.NewBlock()
	b := f.NewBlock()
	join := f.NewBlock()
	cond := f.NewTemp("c", true)
	entry.Instrs = []*ir.Instr{
		{Op: ir.OpConst, Dst: cond, Imm: 1},
		{Op: ir.OpBr, A: ir.TempOp(cond), Target: a, Else: b},
	}
	a.Instrs = []*ir.Instr{{Op: ir.OpJmp, Target: join}}
	b.Instrs = []*ir.Instr{{Op: ir.OpJmp, Target: join}}
	join.Instrs = []*ir.Instr{ir.NewRet(nil)}
	f.ComputeCFG()
	return f
}

func TestDominatorsDiamond(t *testing.T) {
	f := diamond()
	idom := Dominators(f)
	entry, a, b, join := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if idom[a] != entry || idom[b] != entry {
		t.Errorf("idom(a/b) wrong")
	}
	if idom[join] != entry {
		t.Errorf("idom(join) = %v, want entry", idom[join])
	}
	if !Dominates(idom, entry, join) || Dominates(idom, a, join) {
		t.Errorf("dominates relation wrong")
	}
}

// loopFunc builds: entry -> head; head -> body|exit; body -> head.
func loopFunc() *ir.Func {
	f := ir.NewFunc("l")
	entry := f.NewBlock()
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	c := f.NewTemp("c", true)
	entry.Instrs = []*ir.Instr{
		{Op: ir.OpConst, Dst: c, Imm: 1},
		{Op: ir.OpJmp, Target: head},
	}
	head.Instrs = []*ir.Instr{{Op: ir.OpBr, A: ir.TempOp(c), Target: body, Else: exit}}
	body.Instrs = []*ir.Instr{{Op: ir.OpJmp, Target: head}}
	exit.Instrs = []*ir.Instr{ir.NewRet(nil)}
	f.ComputeCFG()
	return f
}

func TestLoops(t *testing.T) {
	f := loopFunc()
	loops := Loops(f)
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	l := loops[0]
	if l.Header != f.Blocks[1] {
		t.Errorf("header = %v", l.Header)
	}
	if !l.Blocks[f.Blocks[2]] || l.Blocks[f.Blocks[3]] {
		t.Errorf("membership wrong: %v", l.Blocks)
	}
	if f.Blocks[1].LoopDepth != 1 || f.Blocks[2].LoopDepth != 1 {
		t.Errorf("depths: head=%d body=%d", f.Blocks[1].LoopDepth, f.Blocks[2].LoopDepth)
	}
	if f.Blocks[0].LoopDepth != 0 || f.Blocks[3].LoopDepth != 0 {
		t.Errorf("outside-loop depths wrong")
	}
}

func TestNestedLoopDepth(t *testing.T) {
	// entry -> h1; h1 -> h2|exit; h2 -> b2|l1latch; b2 -> h2; l1latch -> h1.
	f := ir.NewFunc("n")
	entry := f.NewBlock()
	h1 := f.NewBlock()
	h2 := f.NewBlock()
	b2 := f.NewBlock()
	latch1 := f.NewBlock()
	exit := f.NewBlock()
	c := f.NewTemp("c", true)
	entry.Instrs = []*ir.Instr{{Op: ir.OpConst, Dst: c, Imm: 1}, {Op: ir.OpJmp, Target: h1}}
	h1.Instrs = []*ir.Instr{{Op: ir.OpBr, A: ir.TempOp(c), Target: h2, Else: exit}}
	h2.Instrs = []*ir.Instr{{Op: ir.OpBr, A: ir.TempOp(c), Target: b2, Else: latch1}}
	b2.Instrs = []*ir.Instr{{Op: ir.OpJmp, Target: h2}}
	latch1.Instrs = []*ir.Instr{{Op: ir.OpJmp, Target: h1}}
	exit.Instrs = []*ir.Instr{ir.NewRet(nil)}
	f.ComputeCFG()
	Loops(f)
	if h2.LoopDepth != 2 || b2.LoopDepth != 2 {
		t.Errorf("inner depths: h2=%d b2=%d, want 2", h2.LoopDepth, b2.LoopDepth)
	}
	if h1.LoopDepth != 1 || latch1.LoopDepth != 1 {
		t.Errorf("outer depths: h1=%d latch=%d, want 1", h1.LoopDepth, latch1.LoopDepth)
	}
	if b2.Freq() <= h1.Freq() {
		t.Errorf("freq should grow with depth")
	}
}
