package dataflow

import "chow88/internal/ir"

// Dominators computes the immediate-dominator relation for f using the
// classic iterative algorithm over reverse postorder. The returned map is
// keyed by block; the entry block maps to itself.
func Dominators(f *ir.Func) map[*ir.Block]*ir.Block {
	rpo := f.RPO()
	index := make(map[*ir.Block]int, len(rpo))
	for i, b := range rpo {
		index[b] = i
	}
	idom := make(map[*ir.Block]*ir.Block, len(rpo))
	entry := f.Entry()
	idom[entry] = entry

	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the idom map.
func Dominates(idom map[*ir.Block]*ir.Block, a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		next := idom[b]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// Loop is a natural loop: a header and the set of member blocks (including
// the header).
type Loop struct {
	Header *ir.Block
	Blocks map[*ir.Block]bool
}

// Loops finds the natural loops of f (one per header; back edges sharing a
// header are merged) and annotates every block's LoopDepth with its loop
// nesting level. Blocks outside any loop get depth 0.
func Loops(f *ir.Func) []*Loop {
	idom := Dominators(f)
	loops := map[*ir.Block]*Loop{}

	for _, b := range f.RPO() {
		for _, s := range b.Succs {
			if !Dominates(idom, s, b) {
				continue // not a back edge
			}
			l := loops[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
				loops[s] = l
			}
			// Walk predecessors backward from the latch to the header.
			stack := []*ir.Block{b}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[n] {
					continue
				}
				l.Blocks[n] = true
				for _, p := range n.Preds {
					stack = append(stack, p)
				}
			}
		}
	}

	var out []*Loop
	for _, l := range loops {
		out = append(out, l)
	}
	for _, b := range f.Blocks {
		b.LoopDepth = 0
	}
	for _, l := range out {
		for b := range l.Blocks {
			b.LoopDepth++
		}
	}
	return out
}
