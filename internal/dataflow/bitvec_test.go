package dataflow

import "testing"

// FillAll once left every leading word saturated when n sat more than one
// word below capacity: FillAll(3) on a 2-word vector produced {0..63, 64,65,
// 66} instead of {0,1,2}. The fix must mask every word.
func TestFillAllShortPrefix(t *testing.T) {
	for _, tc := range []struct {
		capBits int
		n       int
	}{
		{128, 3},   // n more than one word below capacity (the bug)
		{192, 3},   // two saturated leading words under the old code
		{192, 64},  // word-aligned fill with trailing words to clear
		{192, 65},  // one full word plus one bit
		{128, 0},   // empty fill must clear everything
		{128, 128}, // full fill
		{64, 17},   // single word, partial
	} {
		v := NewBitVec(tc.capBits)
		// Pre-soil the vector: FillAll must also clear stale trailing bits.
		v.FillAll(tc.capBits)
		v.FillAll(tc.n)
		for i := 0; i < tc.capBits; i++ {
			want := i < tc.n
			if got := v.Get(i); got != want {
				t.Fatalf("FillAll(%d) on %d-bit vector: bit %d = %v, want %v",
					tc.n, tc.capBits, i, got, want)
			}
		}
		if got := v.Count(); got != tc.n {
			t.Fatalf("FillAll(%d): Count = %d", tc.n, got)
		}
	}
}

func TestScratchPoolReuse(t *testing.T) {
	a := GetScratch(100)
	if len(a) != 2 {
		t.Fatalf("GetScratch(100): %d words, want 2", len(a))
	}
	a.Set(5)
	a.Set(99)
	PutScratch(a)
	// A recycled vector must come back empty whatever was left in it.
	b := GetScratch(70)
	if !b.Empty() {
		t.Fatalf("recycled scratch not empty: %s", b)
	}
	if len(b) != 2 {
		t.Fatalf("GetScratch(70): %d words, want 2", len(b))
	}
	PutScratch(b)
	// Growing past the pooled capacity must allocate a larger vector.
	c := GetScratch(1000)
	if len(c) != 16 {
		t.Fatalf("GetScratch(1000): %d words, want 16", len(c))
	}
	if !c.Empty() {
		t.Fatalf("fresh scratch not empty")
	}
	PutScratch(c)
}
