// Package dataflow provides the analyses shared by the allocator and the
// shrink-wrap optimizer: compact bit vectors, an iterative data-flow engine,
// dominators, and natural-loop detection with loop-depth annotation.
package dataflow

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"
)

// BitVec is a fixed-capacity bit set. The zero value of a word slice of the
// right length is the empty set; use NewBitVec to allocate.
type BitVec []uint64

// NewBitVec allocates a vector able to hold n bits.
func NewBitVec(n int) BitVec { return make(BitVec, (n+63)/64) }

// Get reports whether bit i is set.
func (v BitVec) Get(i int) bool { return v[i/64]&(1<<(uint(i)%64)) != 0 }

// Set sets bit i.
func (v BitVec) Set(i int) { v[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (v BitVec) Clear(i int) { v[i/64] &^= 1 << (uint(i) % 64) }

// Copy copies src into v (same capacity required).
func (v BitVec) Copy(src BitVec) { copy(v, src) }

// Union sets v |= o and reports whether v changed.
func (v BitVec) Union(o BitVec) bool {
	changed := false
	for i := range v {
		n := v[i] | o[i]
		if n != v[i] {
			v[i] = n
			changed = true
		}
	}
	return changed
}

// Intersect sets v &= o and reports whether v changed.
func (v BitVec) Intersect(o BitVec) bool {
	changed := false
	for i := range v {
		n := v[i] & o[i]
		if n != v[i] {
			v[i] = n
			changed = true
		}
	}
	return changed
}

// AndNot sets v &^= o.
func (v BitVec) AndNot(o BitVec) {
	for i := range v {
		v[i] &^= o[i]
	}
}

// Equal reports whether v and o hold the same bits.
func (v BitVec) Equal(o BitVec) bool {
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Empty reports whether no bit is set.
func (v BitVec) Empty() bool {
	for _, w := range v {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (v BitVec) Count() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// FillAll sets the first n bits and clears the rest.
func (v BitVec) FillAll(n int) {
	full := n / 64
	for i := range v {
		switch {
		case i < full:
			v[i] = ^uint64(0)
		case i == full && n%64 != 0:
			v[i] = (1 << (uint(n) % 64)) - 1
		default:
			v[i] = 0
		}
	}
}

// ClearAll resets the vector to empty.
func (v BitVec) ClearAll() {
	for i := range v {
		v[i] = 0
	}
}

// ForEach calls fn for each set bit in ascending order.
func (v BitVec) ForEach(fn func(i int)) {
	for wi, w := range v {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// scratchPool recycles the transient vectors of the allocator's hot loops
// (liveness fixpoints, interference construction). Vectors from different
// functions share the pool, so capacities vary; Get re-slices or reallocates
// as needed.
var scratchPool = sync.Pool{New: func() any { return BitVec(nil) }}

// GetScratch returns an empty vector able to hold n bits, drawn from a
// process-wide recycling pool. Safe for concurrent use; callers must return
// the vector with PutScratch once done and not use it afterwards.
func GetScratch(n int) BitVec {
	words := (n + 63) / 64
	v := scratchPool.Get().(BitVec)
	if cap(v) < words {
		return make(BitVec, words)
	}
	v = v[:words]
	v.ClearAll()
	return v
}

// PutScratch returns a vector obtained from GetScratch to the pool.
func PutScratch(v BitVec) { scratchPool.Put(v) } //nolint:staticcheck // slice header boxing is cheaper than the allocs avoided

// String renders the set bits, e.g. "{1, 5, 9}".
func (v BitVec) String() string {
	var parts []string
	v.ForEach(func(i int) { parts = append(parts, fmt.Sprintf("%d", i)) })
	return "{" + strings.Join(parts, ", ") + "}"
}
