// Package dataflow provides the analyses shared by the allocator and the
// shrink-wrap optimizer: compact bit vectors, an iterative data-flow engine,
// dominators, and natural-loop detection with loop-depth annotation.
package dataflow

import (
	"fmt"
	"math/bits"
	"strings"
)

// BitVec is a fixed-capacity bit set. The zero value of a word slice of the
// right length is the empty set; use NewBitVec to allocate.
type BitVec []uint64

// NewBitVec allocates a vector able to hold n bits.
func NewBitVec(n int) BitVec { return make(BitVec, (n+63)/64) }

// Get reports whether bit i is set.
func (v BitVec) Get(i int) bool { return v[i/64]&(1<<(uint(i)%64)) != 0 }

// Set sets bit i.
func (v BitVec) Set(i int) { v[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (v BitVec) Clear(i int) { v[i/64] &^= 1 << (uint(i) % 64) }

// Copy copies src into v (same capacity required).
func (v BitVec) Copy(src BitVec) { copy(v, src) }

// Union sets v |= o and reports whether v changed.
func (v BitVec) Union(o BitVec) bool {
	changed := false
	for i := range v {
		n := v[i] | o[i]
		if n != v[i] {
			v[i] = n
			changed = true
		}
	}
	return changed
}

// Intersect sets v &= o and reports whether v changed.
func (v BitVec) Intersect(o BitVec) bool {
	changed := false
	for i := range v {
		n := v[i] & o[i]
		if n != v[i] {
			v[i] = n
			changed = true
		}
	}
	return changed
}

// AndNot sets v &^= o.
func (v BitVec) AndNot(o BitVec) {
	for i := range v {
		v[i] &^= o[i]
	}
}

// Equal reports whether v and o hold the same bits.
func (v BitVec) Equal(o BitVec) bool {
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Empty reports whether no bit is set.
func (v BitVec) Empty() bool {
	for _, w := range v {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (v BitVec) Count() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// FillAll sets the first n bits.
func (v BitVec) FillAll(n int) {
	for i := range v {
		v[i] = ^uint64(0)
	}
	if n%64 != 0 && len(v) > 0 {
		v[len(v)-1] = (1 << (uint(n) % 64)) - 1
	}
}

// ClearAll resets the vector to empty.
func (v BitVec) ClearAll() {
	for i := range v {
		v[i] = 0
	}
}

// ForEach calls fn for each set bit in ascending order.
func (v BitVec) ForEach(fn func(i int)) {
	for wi, w := range v {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// String renders the set bits, e.g. "{1, 5, 9}".
func (v BitVec) String() string {
	var parts []string
	v.ForEach(func(i int) { parts = append(parts, fmt.Sprintf("%d", i)) })
	return "{" + strings.Join(parts, ", ") + "}"
}
