package experiments

import (
	"fmt"
	"strings"

	"chow88/internal/benchprog"
	"chow88/internal/core"
	"chow88/internal/front"
	"chow88/internal/inline"
	"chow88/internal/obs"
	"chow88/internal/pipeline"
	"chow88/internal/pixie"
	"chow88/internal/sim"
)

// runInlined is runProfiled with the procedure integrator enabled: the same
// baseline training run attaches measured block frequencies, and the final
// build inlines hot call sites from those measurements before planning. It
// additionally returns the integrator's report (nil if the inlined build was
// discarded by graceful degradation).
func runInlined(src string, mode core.Mode, budget int) (*pixie.Stats, []int64, *obs.InlineReport, error) {
	mod, err := front.Module(src, mode.Optimize, !mode.Sequential)
	if err != nil {
		return nil, nil, nil, err
	}
	train := core.ModeBase()
	train.Optimize = mode.Optimize
	train.Validate = mode.Validate
	_, trainCode, _, err := pipeline.Build(mod, train)
	if err != nil {
		return nil, nil, nil, err
	}
	trainRes, err := sim.Run(trainCode, sim.Options{Profile: true})
	if err != nil {
		return nil, nil, nil, err
	}
	applyCounts(mod, trainCode, trainRes.InstrCounts)

	mode.Inline = true
	mode.InlineBudget = budget
	pp, code, _, err := pipeline.Build(mod, mode)
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := sim.Run(code, sim.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	return &res.Stats, res.Output, pp.Inline, nil
}

// InlineVsIPRA extends the paper's Table 2 question — where does the call
// penalty go? — to its limit case: under mode C with profile feedback, how
// many cycles does profile-guided inlining recover beyond what IPRA +
// shrink-wrapping already save, and at what cost? The pixie classification
// attributes the delta: call-linkage cycles removed (the JAL/JR, argument
// MOVEs and frame adjustment that vanish with the call) versus save/restore
// loads+stores added (the callee's live ranges now flooding the caller can
// force extra shrink-wrap saves). Both attribution columns are measured on
// the trace, not estimated.
func InlineVsIPRA() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Inlining vs IPRA under mode C with profile feedback (budget %d%%):\n\n", inline.DefaultBudget)
	b.WriteString("  program    |     cycles C | C+inline     |   Δ%  | linkage- | sv/rs+ | sites | procs-\n")
	b.WriteString("  -----------+--------------+--------------+-------+----------+--------+-------+-------\n")
	improved, regressed := 0, 0
	var worst float64
	for _, bench := range benchprog.All() {
		ipra, outI, err := runProfiled(bench.Source, core.ModeC())
		if err != nil {
			return "", fmt.Errorf("%s ipra: %w", bench.Name, err)
		}
		inl, outN, rep, err := runInlined(bench.Source, core.ModeC(), inline.DefaultBudget)
		if err != nil {
			return "", fmt.Errorf("%s inline: %w", bench.Name, err)
		}
		if len(outI) != len(outN) {
			return "", fmt.Errorf("%s: output diverged", bench.Name)
		}
		for i := range outI {
			if outI[i] != outN[i] {
				return "", fmt.Errorf("%s: output diverged at %d", bench.Name, i)
			}
		}
		delta := pixie.PercentReduction(ipra.Cycles, inl.Cycles)
		if inl.Cycles < ipra.Cycles {
			improved++
		} else if inl.Cycles > ipra.Cycles {
			regressed++
		}
		if -delta > worst {
			worst = -delta
		}
		sites, procs := 0, 0
		if rep != nil {
			sites, procs = rep.SitesInlined, rep.ProcsEliminated
		}
		fmt.Fprintf(&b, "  %-10s | %12d | %12d | %5.1f | %8d | %6d | %5d | %5d\n",
			bench.Name, ipra.Cycles, inl.Cycles, delta,
			ipra.LinkageCycles-inl.LinkageCycles,
			inl.SaveRestoreLS()-ipra.SaveRestoreLS(),
			sites, procs)
	}
	fmt.Fprintf(&b, "\n  %d programs improved, %d regressed (worst regression %.1f%%).\n", improved, regressed, worst)
	b.WriteString("  Δ% = cycle reduction of inlining over mode C (positive is better);\n")
	b.WriteString("  linkage- = call-linkage cycles removed; sv/rs+ = save/restore\n")
	b.WriteString("  loads+stores added by live-range growth; sites/procs- = call sites\n")
	b.WriteString("  inlined / dead procedures dropped. Attribution via the pixie\n")
	b.WriteString("  instruction classification (disjoint linkage and save/restore bits).\n")
	return b.String(), nil
}
