package experiments

import (
	"fmt"
	"strings"

	"chow88/internal/codegen"
	"chow88/internal/core"
	"chow88/internal/mach"
	"chow88/internal/regalloc"
	"chow88/internal/sim"
)

// fig1Src realizes Figure 1: procedure p's variable a, q's variable b and
// r's variable c have usage ranges that never span the calls connecting
// them, so one register can serve all three simultaneously active
// procedures under inter-procedural allocation.
const fig1Src = `
var sink int;

func r(z int) int {
    var c int;
    c = z * 3 + z;          // z dies here; c can reuse its register
    sink = sink + c;
    return c + 1;
}

func q(y int) int {
    var b int;
    b = y * 2 + 7;          // y dies here
    sink = sink + b * b;    // b dead before the call to r
    return r(5) + 5;
}

func p(x int) int {
    var a int;
    a = x * x + x;          // x dies here
    sink = sink + a * a;    // a dead before the call to q
    return q(3) + 9;
}

func main() {
    print(p(4));
    print(sink);
}
`

// Fig1 reports where a, b and c live under inter-procedural allocation and
// the register footprint of the whole three-deep call tree. The optimizer
// is left off so the named variables survive into allocation. The Fig. 1
// point: because no usage range spans a call, the simultaneously active
// procedures share a handful of registers with no saving and restoring.
func Fig1() (string, error) {
	mod, err := irModuleNoOpt(fig1Src)
	if err != nil {
		return "", err
	}
	plan := core.PlanModule(mod, core.ModeC())
	var b strings.Builder
	b.WriteString("Figure 1: register reuse in simultaneously active procedures\n\n")
	vars := map[string]string{"p": "a", "q": "b", "r": "c"}
	var treeUsed mach.RegSet
	allInRegs := true
	for _, name := range []string{"p", "q", "r"} {
		f := mod.Lookup(name)
		fp := plan.Funcs[f]
		for _, t := range f.Temps() {
			if t.IsVar && strings.HasPrefix(t.Name, vars[name]+".") {
				loc := fp.Alloc.Locs[t.ID]
				if loc.Kind == regalloc.LocReg {
					fmt.Fprintf(&b, "  %s: variable %s lives in %s\n", name, vars[name], loc.Reg)
				} else {
					allInRegs = false
					fmt.Fprintf(&b, "  %s: variable %s in memory\n", name, vars[name])
				}
			}
		}
		treeUsed = treeUsed.Union(fp.Alloc.UsedRegs)
	}
	fmt.Fprintf(&b, "\n  whole call tree register footprint: %s (%d registers)\n",
		treeUsed, treeUsed.Count())

	// Execute and count register save/restore traffic: the point of Fig. 1
	// is that sharing happens without any.
	code, err := codegen.Generate(plan)
	if err != nil {
		return "", err
	}
	res, err := sim.Run(code, sim.Options{})
	if err != nil {
		return "", err
	}
	saveRestore := res.Stats.SaveRestoreLS()
	// The only unavoidable linkage traffic is the return-address save of
	// each non-leaf invocation: main, p and q run once each = 6 memory ops.
	const raLinkage = 6
	fmt.Fprintf(&b, "  register save/restore memory operations in the run: %d\n", saveRestore)
	fmt.Fprintf(&b, "  (of which return-address linkage: %d)\n", raLinkage)
	if allInRegs && treeUsed.Count() <= 3 && saveRestore <= raLinkage {
		b.WriteString("\n  three simultaneously active procedures, all variables in\n")
		b.WriteString("  registers, zero register saves/restores beyond the return-\n")
		b.WriteString("  address linkage — the Fig. 1 effect.\n")
	} else {
		b.WriteString("\n  NOTE: variables did not all share one register.\n")
	}
	return b.String(), nil
}

// fig2OneRegion has a single conditional region using a callee-saved
// register: shrink-wrapping confines the save to that arm.
const fig2OneRegion = `
var g int;

func work(v int) int { return v + g; }

func f(c1 int, c2 int) int {
    if (c1 > 0) {
        var u int;
        var v int;
        var w int;
        u = work(c1);
        v = work(u);
        w = work(u + 1);
        g = g + u + v + w;   // u stays live across two calls
    }
    g = g + 2;
    if (c2 > 0) {
        g = g + 3;
    }
    return g;
}

func main() {
    print(f(1, 1));
    print(f(0, 1));
    print(f(1, 0));
    print(f(0, 0));
}
`

// fig2TwoRegions realizes the Figure 2 hazard: two disjoint ranges (u in
// the first arm, w in the second) share one callee-saved register, and a
// path reaches the second region without passing the first. Placing a
// second save there would double-save on the path through both arms;
// instead of splitting the edge with a new CFG node, the range-extension
// refinement widens the usage range until the save hoists to a point that
// covers every path exactly once.
const fig2TwoRegions = `
var g int;

func work(v int) int { return v + g; }

func f(c1 int, c2 int) int {
    if (c1 > 0) {
        var u int;
        var v int;
        u = work(c1);
        v = work(u);
        g = g + u + v + work(u + v);   // u live across two calls
    }
    g = g + 2;
    if (c2 > 0) {
        var w int;
        var x int;
        w = work(c2);
        x = work(w);
        g = g + w + x + work(w + x);   // w live across two calls
    }
    return g;
}

func main() {
    print(f(1, 1));
    print(f(0, 1));
    print(f(1, 0));
    print(f(0, 0));
}
`

func fig2Plan(src string) (string, error) {
	mod, err := irModuleFor(src)
	if err != nil {
		return "", err
	}
	plan := core.PlanModule(mod, core.ModeA()) // intra + shrink-wrap isolates §5
	f := mod.Lookup("f")
	fp := plan.Funcs[f]
	var b strings.Builder
	fmt.Fprintf(&b, "  f has %d blocks; callee-saved registers managed: %s\n",
		len(f.Blocks), fp.Plan.Regs())
	for _, r := range fp.Plan.Regs().Regs() {
		var saves, restores []string
		for _, blk := range fp.Plan.SaveAt[r] {
			saves = append(saves, blk.Name)
		}
		for _, blk := range fp.Plan.RestoreAt[r] {
			restores = append(restores, blk.Name)
		}
		fmt.Fprintf(&b, "  %s: save at entry of {%s}, restore at exit of {%s}\n",
			r, strings.Join(saves, ", "), strings.Join(restores, ", "))
	}
	return b.String(), nil
}

// Fig2 contrasts save placement for the two control-flow forms: with a
// single region the save shrink-wraps into the arm; with two regions
// sharing the register across a merge path, the range extension hoists the
// save so no path saves twice (the paper's alternative — creating a new
// CFG node — would lengthen the other paths).
func Fig2() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 2: save placement depends on the form of the control flow\n\n")
	b.WriteString("(a) one region using the register:\n")
	s1, err := fig2Plan(fig2OneRegion)
	if err != nil {
		return "", err
	}
	b.WriteString(s1)
	b.WriteString("\n(b) two regions sharing it across a merge path (the Fig. 2 hazard):\n")
	s2, err := fig2Plan(fig2TwoRegions)
	if err != nil {
		return "", err
	}
	b.WriteString(s2)
	b.WriteString("\n  in (a) the save sits inside the conditional arm; in (b) inserting a\n")
	b.WriteString("  second save at the other region would double-save on the path through\n")
	b.WriteString("  both arms, so the usage range is extended and the save hoists instead\n")
	b.WriteString("  of splitting the edge with a new block.\n")
	return b.String(), nil
}

// fig3Src realizes Figure 3: two conditionals in sequence; a callee-saved
// register is used only in the first arm. With equal branch probabilities
// the four paths see different effects from shrink-wrapping: one wins, one
// loses, two are a wash.
const fig3Src = `
var g int;
var path1 int;
var path2 int;

func leaf(v int) int { return v * 2 + g; }

func f() int {
    if (path1 > 0) {
        // Register-hungry region: x stays live across two calls, so it
        // wants a callee-saved register whose activity is confined to
        // this arm.
        var x int;
        var a int;
        var b int;
        x = leaf(1);
        a = leaf(x);
        b = leaf(x + 1);
        g = g + x + a + b;
    }
    g = g + 1;
    if (path2 > 0) {
        g = g + leaf(4);     // no use of x here
    }
    return g;
}

func main() {
    print(f());
}
`

// Fig3 measures the save/restore traffic of f on each of the four paths,
// with shrink-wrapping on and off, reproducing the paper's observation that
// the optimization helps on paths avoiding the register's region, hurts
// nowhere here, and is neutral on the rest.
func Fig3() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 3: effects of shrink-wrap optimization per execution path\n\n")
	b.WriteString("  path (p1,p2)   save/restore ops: sw-off   sw-on   delta\n")
	for _, p1 := range []string{"0", "1"} {
		for _, p2 := range []string{"0", "1"} {
			src := strings.Replace(fig3Src,
				"func main() {\n    print(f());",
				"func main() {\n    path1 = "+p1+"; path2 = "+p2+";\n    print(f());", 1)
			off, err := run(src, core.ModeBase())
			if err != nil {
				return "", err
			}
			on, err := run(src, core.ModeA())
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "      (%s,%s)      %19d %7d %7d\n",
				p1, p2, off.stats.SaveRestoreLS(), on.stats.SaveRestoreLS(),
				on.stats.SaveRestoreLS()-off.stats.SaveRestoreLS())
		}
	}
	b.WriteString("\n  negative delta = shrink-wrapping removed save/restore traffic on\n")
	b.WriteString("  that path; zero = the path executes the region anyway.\n")
	return b.String(), nil
}

// fig4Src realizes Figure 4: p calls q inside one loop and r inside
// another; r's subtree uses register 1. Whether the save/restore belongs
// around the call in p or at the entry/exit of r depends on which call is
// more frequent.
const fig4Src = `
var g int;
var nq int;
var nr int;

func q(v int) int { return v + 1; }

func r(v int) int {
    var a int;
    var b int;
    a = q(v);        // r's subtree keeps a live across a call
    b = q(v + 1);
    return a * b + g;
}

func p() int {
    var x int;
    var acc int;
    var i int;
    x = 13;
    acc = 0;
    for (i = 0; i < nq; i = i + 1) {
        acc = acc + q(i) + x;     // x is live across the calls to q
    }
    for (i = 0; i < nr; i = i + 1) {
        acc = acc + r(i) + x;     // and across the calls to r
    }
    return acc;
}

func main() {
    print(p());
}
`

// Fig4 sweeps the relative frequencies of the two calls and reports the
// save/restore traffic under -O2 and under inter-procedural allocation,
// showing the cost shifting between the call sites in p and the body of r.
func Fig4() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 4: where saves/restores land depends on call frequencies\n\n")
	b.WriteString("  (calls to q, calls to r)   save/restore ops: O2    O3+sw\n")
	type cfg struct{ nq, nr int }
	for _, c := range []cfg{{200, 2}, {100, 100}, {2, 200}} {
		src := strings.Replace(fig4Src,
			"func main() {\n    print(p());",
			fmt.Sprintf("func main() {\n    nq = %d; nr = %d;\n    print(p());", c.nq, c.nr), 1)
		base, err := run(src, core.ModeBase())
		if err != nil {
			return "", err
		}
		ipra, err := run(src, core.ModeC())
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "      (%4d,%4d)          %14d %8d\n",
			c.nq, c.nr, base.stats.SaveRestoreLS(), ipra.stats.SaveRestoreLS())
	}
	b.WriteString("\n  inter-procedural allocation lets the callee summaries decide which\n")
	b.WriteString("  calls actually need protection, so the traffic tracks the cheaper\n")
	b.WriteString("  placement as the frequency ratio shifts.\n")
	return b.String(), nil
}
