// Package experiments regenerates the paper's evaluation artifacts: Table 1
// (the effect of shrink-wrapping and inter-procedural allocation on cycles
// and scalar loads/stores across the 13-program suite), Table 2 (7
// caller-saved vs 7 callee-saved registers), and executable demonstrations
// of Figures 1–4.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"chow88/internal/benchprog"
	"chow88/internal/core"
	"chow88/internal/front"
	"chow88/internal/ir"
	"chow88/internal/obs"
	"chow88/internal/pipeline"
	"chow88/internal/pixie"
	"chow88/internal/sim"
)

// measured is one compile+run of a benchmark under one mode: the trace
// stats and output, plus the per-measurement obs reports when a session is
// active (nil otherwise).
type measured struct {
	stats   *pixie.Stats
	output  []int64
	compile *obs.CompileReport
	run     *obs.RunReport
}

// run compiles src under mode and executes it, returning the trace stats.
// The front end is shared across modes through internal/front's cache, so
// a table's six-mode matrix lowers and optimizes each benchmark once.
func run(src string, mode core.Mode) (*measured, error) {
	s := obs.Current()
	snap := s.Snap()
	var sp obs.Span
	if s != nil {
		sp = s.Span(obs.PhaseCompile, "Compile "+mode.Name)
	}
	mod, err := front.Module(src, mode.Optimize, !mode.Sequential)
	if err != nil {
		sp.End()
		return nil, err
	}
	_, code, demotions, err := pipeline.Build(mod, mode)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.End()
	out := &measured{}
	if s != nil {
		out.compile = &obs.CompileReport{Report: *s.ReportSince(snap), Demotions: demotions}
	}
	res, err := sim.Run(code, sim.Options{})
	if err != nil {
		return nil, err
	}
	out.stats, out.output, out.run = &res.Stats, res.Output, res.Report
	return out, nil
}

// Measurement holds one benchmark's stats under every mode of a table.
type Measurement struct {
	Name  string
	Lines int
	// CyclesPerCall under the baseline, the paper's call-intensity column.
	CyclesPerCall float64
	// Base is the -O2 (shrink-wrap off) reference.
	Base *pixie.Stats
	// ByMode holds stats per mode key (e.g. "A", "B", "C", "D", "E").
	ByMode map[string]*pixie.Stats
	// CompileObs and RunObs hold the per-measurement observability reports
	// when a session is active, keyed like ByMode plus "base"; empty
	// otherwise.
	CompileObs map[string]*obs.CompileReport
	RunObs     map[string]*obs.RunReport
}

// CycleReduction returns column I for the given mode key: % reduction in
// executed cycles relative to the baseline.
func (m *Measurement) CycleReduction(key string) float64 {
	return pixie.PercentReduction(m.Base.Cycles, m.ByMode[key].Cycles)
}

// ScalarLSReduction returns column II: % reduction in scalar loads/stores.
func (m *Measurement) ScalarLSReduction(key string) float64 {
	return pixie.PercentReduction(m.Base.ScalarLS(), m.ByMode[key].ScalarLS())
}

// modesFor maps table column keys to compilation modes.
func modesFor(keys []string) map[string]core.Mode {
	all := map[string]core.Mode{
		"A": core.ModeA(),
		"B": core.ModeB(),
		"C": core.ModeC(),
		"D": core.ModeD(),
		"E": core.ModeE(),
	}
	out := map[string]core.Mode{}
	for _, k := range keys {
		out[k] = all[k]
	}
	return out
}

// RunSuite measures every benchmark under the baseline plus the listed
// column modes. Output equality across modes is verified as it goes.
func RunSuite(keys []string) ([]*Measurement, error) {
	modes := modesFor(keys)
	var out []*Measurement
	for _, b := range benchprog.All() {
		base, err := run(b.Source, core.ModeBase())
		if err != nil {
			return nil, fmt.Errorf("%s [base]: %w", b.Name, err)
		}
		wantOut := base.output
		m := &Measurement{
			Name:          b.Name,
			Lines:         b.Lines,
			CyclesPerCall: base.stats.CyclesPerCall(),
			Base:          base.stats,
			ByMode:        map[string]*pixie.Stats{},
			CompileObs:    map[string]*obs.CompileReport{},
			RunObs:        map[string]*obs.RunReport{},
		}
		m.noteObs("base", base)
		for _, k := range keys {
			got, err := run(b.Source, modes[k])
			if err != nil {
				return nil, fmt.Errorf("%s [%s]: %w", b.Name, k, err)
			}
			if len(got.output) != len(wantOut) {
				return nil, fmt.Errorf("%s [%s]: output diverged", b.Name, k)
			}
			for i := range got.output {
				if got.output[i] != wantOut[i] {
					return nil, fmt.Errorf("%s [%s]: output diverged at %d", b.Name, k, i)
				}
			}
			m.ByMode[k] = got.stats
			m.noteObs(k, got)
		}
		out = append(out, m)
	}
	return out, nil
}

// noteObs files one measurement's obs reports under the given mode key.
func (m *Measurement) noteObs(key string, r *measured) {
	if r.compile != nil {
		m.CompileObs[key] = r.compile
	}
	if r.run != nil {
		m.RunObs[key] = r.run
	}
}

// FormatObs renders the per-measurement compile and run metrics collected
// while an obs session was active: one row per (program, mode) with the
// compile wall time and the headline allocator/engine counters beside it.
// Returns "" when no reports were collected (observability disabled).
func FormatObs(title string, rows []*Measurement, keys []string) string {
	collected := false
	for _, m := range rows {
		if len(m.CompileObs) > 0 || len(m.RunObs) > 0 {
			collected = true
			break
		}
	}
	if !collected {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s", title, "\n")
	fmt.Fprintf(&b, "%-11s %-5s %10s %6s %7s %6s %10s %12s %10s %s%s",
		"program", "mode", "compile", "funcs", "spilled", "saves",
		"engine", "blk entries", "run", "fallback", "\n")
	all := append([]string{"base"}, keys...)
	for _, m := range rows {
		for _, k := range all {
			cr, rr := m.CompileObs[k], m.RunObs[k]
			if cr == nil && rr == nil {
				continue
			}
			engine, fallback, entries, runWall := "-", "-", int64(0), int64(0)
			if rr != nil {
				engine = rr.Engine
				entries = rr.Counter("sim.block_entries")
				runWall = rr.WallNanos
				if rr.FallbackReason != "" {
					fallback = truncate(rr.FallbackReason, 40)
				}
			}
			fmt.Fprintf(&b, "%-11s %-5s %10s %6d %7d %6d %10s %12d %10s %s%s",
				m.Name, k,
				fmtWall(cr),
				cr.Counter("plan.funcs_planned"),
				cr.Counter("regalloc.ranges_spilled"),
				cr.Counter("plan.save_sites"),
				engine, entries,
				time.Duration(runWall).Round(time.Microsecond),
				fallback, "\n")
		}
	}
	cs := front.CacheStats()
	fmt.Fprintf(&b, "front cache: %d/%d entries, %d hits, %d misses, %d evictions\n",
		cs.Entries, cs.Cap, cs.Hits, cs.Misses, cs.Evictions)
	return b.String()
}

// truncate clips s to at most n runes for table rendering.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func fmtWall(cr *obs.CompileReport) string {
	if cr == nil {
		return "-"
	}
	return time.Duration(cr.WallNanos).Round(time.Microsecond).String()
}

// Table1 runs the measurements for the paper's Table 1 (columns A, B, C).
func Table1() ([]*Measurement, error) { return RunSuite([]string{"A", "B", "C"}) }

// Table2 runs the measurements for Table 2 (columns D, E).
func Table2() ([]*Measurement, error) { return RunSuite([]string{"D", "E"}) }

// FormatTable renders measurements in the paper's layout.
func FormatTable(title string, rows []*Measurement, keys []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-11s %6s %11s |", "program", "lines", "cycles/call")
	for _, k := range keys {
		fmt.Fprintf(&b, " I.%s%%", k)
	}
	b.WriteString(" |")
	for _, k := range keys {
		fmt.Fprintf(&b, " II.%s%%", k)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 34+13*2*len(keys)))
	b.WriteString("\n")
	for _, m := range rows {
		fmt.Fprintf(&b, "%-11s %6d %11.0f |", m.Name, m.Lines, m.CyclesPerCall)
		for _, k := range keys {
			fmt.Fprintf(&b, " %5.1f", m.CycleReduction(k))
		}
		b.WriteString(" |")
		for _, k := range keys {
			fmt.Fprintf(&b, " %6.1f", m.ScalarLSReduction(k))
		}
		b.WriteString("\n")
	}
	b.WriteString("\nI = % reduction in cycles; II = % reduction in scalar loads/stores,\n")
	b.WriteString("both relative to -O2 with shrink-wrap disabled (positive is better).\n")
	return b.String()
}

// Keys1 and Keys2 are the column sets of the two tables.
var (
	Keys1 = []string{"A", "B", "C"}
	Keys2 = []string{"D", "E"}
)

// DetailRow exposes the raw counters used by the tables (for EXPERIMENTS.md
// and debugging).
func DetailRow(m *Measurement, key string) string {
	st := m.ByMode[key]
	return fmt.Sprintf("%s[%s]: cycles %d→%d, scalarLS %d→%d, save/restore %d→%d",
		m.Name, key, m.Base.Cycles, st.Cycles,
		m.Base.ScalarLS(), st.ScalarLS(),
		m.Base.SaveRestoreLS(), st.SaveRestoreLS())
}

// irModuleFor compiles src to optimized IR (shared by the figure demos).
func irModuleFor(src string) (*ir.Module, error) {
	return front.Module(src, true, true)
}

// irModuleNoOpt lowers src without running the optimizer, preserving named
// variables for the allocation demonstrations.
func irModuleNoOpt(src string) (*ir.Module, error) {
	return front.Module(src, false, true)
}
