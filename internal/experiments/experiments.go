// Package experiments regenerates the paper's evaluation artifacts: Table 1
// (the effect of shrink-wrapping and inter-procedural allocation on cycles
// and scalar loads/stores across the 13-program suite), Table 2 (7
// caller-saved vs 7 callee-saved registers), and executable demonstrations
// of Figures 1–4.
package experiments

import (
	"fmt"
	"strings"

	"chow88/internal/benchprog"
	"chow88/internal/codegen"
	"chow88/internal/core"
	"chow88/internal/front"
	"chow88/internal/ir"
	"chow88/internal/pixie"
	"chow88/internal/sim"
)

// run compiles src under mode and executes it, returning the trace stats.
// The front end is shared across modes through internal/front's cache, so
// a table's six-mode matrix lowers and optimizes each benchmark once.
func run(src string, mode core.Mode) (*pixie.Stats, []int64, error) {
	mod, err := front.Module(src, mode.Optimize, !mode.Sequential)
	if err != nil {
		return nil, nil, err
	}
	plan := core.PlanModule(mod, mode)
	code, err := codegen.Generate(plan)
	if err != nil {
		return nil, nil, err
	}
	res, err := sim.Run(code, sim.Options{})
	if err != nil {
		return nil, nil, err
	}
	return &res.Stats, res.Output, nil
}

// Measurement holds one benchmark's stats under every mode of a table.
type Measurement struct {
	Name  string
	Lines int
	// CyclesPerCall under the baseline, the paper's call-intensity column.
	CyclesPerCall float64
	// Base is the -O2 (shrink-wrap off) reference.
	Base *pixie.Stats
	// ByMode holds stats per mode key (e.g. "A", "B", "C", "D", "E").
	ByMode map[string]*pixie.Stats
}

// CycleReduction returns column I for the given mode key: % reduction in
// executed cycles relative to the baseline.
func (m *Measurement) CycleReduction(key string) float64 {
	return pixie.PercentReduction(m.Base.Cycles, m.ByMode[key].Cycles)
}

// ScalarLSReduction returns column II: % reduction in scalar loads/stores.
func (m *Measurement) ScalarLSReduction(key string) float64 {
	return pixie.PercentReduction(m.Base.ScalarLS(), m.ByMode[key].ScalarLS())
}

// modesFor maps table column keys to compilation modes.
func modesFor(keys []string) map[string]core.Mode {
	all := map[string]core.Mode{
		"A": core.ModeA(),
		"B": core.ModeB(),
		"C": core.ModeC(),
		"D": core.ModeD(),
		"E": core.ModeE(),
	}
	out := map[string]core.Mode{}
	for _, k := range keys {
		out[k] = all[k]
	}
	return out
}

// RunSuite measures every benchmark under the baseline plus the listed
// column modes. Output equality across modes is verified as it goes.
func RunSuite(keys []string) ([]*Measurement, error) {
	modes := modesFor(keys)
	var out []*Measurement
	for _, b := range benchprog.All() {
		base, wantOut, err := run(b.Source, core.ModeBase())
		if err != nil {
			return nil, fmt.Errorf("%s [base]: %w", b.Name, err)
		}
		m := &Measurement{
			Name:          b.Name,
			Lines:         b.Lines,
			CyclesPerCall: base.CyclesPerCall(),
			Base:          base,
			ByMode:        map[string]*pixie.Stats{},
		}
		for _, k := range keys {
			st, gotOut, err := run(b.Source, modes[k])
			if err != nil {
				return nil, fmt.Errorf("%s [%s]: %w", b.Name, k, err)
			}
			if len(gotOut) != len(wantOut) {
				return nil, fmt.Errorf("%s [%s]: output diverged", b.Name, k)
			}
			for i := range gotOut {
				if gotOut[i] != wantOut[i] {
					return nil, fmt.Errorf("%s [%s]: output diverged at %d", b.Name, k, i)
				}
			}
			m.ByMode[k] = st
		}
		out = append(out, m)
	}
	return out, nil
}

// Table1 runs the measurements for the paper's Table 1 (columns A, B, C).
func Table1() ([]*Measurement, error) { return RunSuite([]string{"A", "B", "C"}) }

// Table2 runs the measurements for Table 2 (columns D, E).
func Table2() ([]*Measurement, error) { return RunSuite([]string{"D", "E"}) }

// FormatTable renders measurements in the paper's layout.
func FormatTable(title string, rows []*Measurement, keys []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-11s %6s %11s |", "program", "lines", "cycles/call")
	for _, k := range keys {
		fmt.Fprintf(&b, " I.%s%%", k)
	}
	b.WriteString(" |")
	for _, k := range keys {
		fmt.Fprintf(&b, " II.%s%%", k)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 34+13*2*len(keys)))
	b.WriteString("\n")
	for _, m := range rows {
		fmt.Fprintf(&b, "%-11s %6d %11.0f |", m.Name, m.Lines, m.CyclesPerCall)
		for _, k := range keys {
			fmt.Fprintf(&b, " %5.1f", m.CycleReduction(k))
		}
		b.WriteString(" |")
		for _, k := range keys {
			fmt.Fprintf(&b, " %6.1f", m.ScalarLSReduction(k))
		}
		b.WriteString("\n")
	}
	b.WriteString("\nI = % reduction in cycles; II = % reduction in scalar loads/stores,\n")
	b.WriteString("both relative to -O2 with shrink-wrap disabled (positive is better).\n")
	return b.String()
}

// Keys1 and Keys2 are the column sets of the two tables.
var (
	Keys1 = []string{"A", "B", "C"}
	Keys2 = []string{"D", "E"}
)

// DetailRow exposes the raw counters used by the tables (for EXPERIMENTS.md
// and debugging).
func DetailRow(m *Measurement, key string) string {
	st := m.ByMode[key]
	return fmt.Sprintf("%s[%s]: cycles %d→%d, scalarLS %d→%d, save/restore %d→%d",
		m.Name, key, m.Base.Cycles, st.Cycles,
		m.Base.ScalarLS(), st.ScalarLS(),
		m.Base.SaveRestoreLS(), st.SaveRestoreLS())
}

// irModuleFor compiles src to optimized IR (shared by the figure demos).
func irModuleFor(src string) (*ir.Module, error) {
	return front.Module(src, true, true)
}

// irModuleNoOpt lowers src without running the optimizer, preserving named
// variables for the allocation demonstrations.
func irModuleNoOpt(src string) (*ir.Module, error) {
	return front.Module(src, false, true)
}
