package experiments

import (
	"strings"
	"testing"

	"chow88/internal/core"
	"chow88/internal/obs"
	"chow88/internal/pixie"
)

func TestFigures(t *testing.T) {
	for name, fn := range map[string]func() (string, error){
		"fig1": Fig1, "fig2": Fig2, "fig3": Fig3, "fig4": Fig4,
	} {
		out, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) < 80 {
			t.Errorf("%s: suspiciously short output:\n%s", name, out)
		}
		if strings.Contains(out, "NOTE:") {
			t.Errorf("%s reported an unexpected shape:\n%s", name, out)
		}
	}
}

func TestFig1ShowsSharing(t *testing.T) {
	out, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "the Fig. 1 effect") {
		t.Errorf("fig1 should demonstrate call-tree register reuse:\n%s", out)
	}
}

func TestFig3ShowsMixedDeltas(t *testing.T) {
	out, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	// The four paths must not all have the same delta: the point of the
	// figure is that the effect depends on the path taken.
	if !strings.Contains(out, "-") {
		t.Errorf("no winning path in fig3:\n%s", out)
	}
}

func TestFormatTable(t *testing.T) {
	rows := []*Measurement{{
		Name:          "demo",
		Lines:         100,
		CyclesPerCall: 42,
		Base:          &pixie.Stats{Cycles: 1000},
		ByMode: map[string]*pixie.Stats{
			"A": {Cycles: 900},
			"B": {Cycles: 800},
			"C": {Cycles: 700},
		},
	}}
	out := FormatTable("Table X", rows, Keys1)
	for _, want := range []string{"Table X", "demo", "10.0", "20.0", "30.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

// TestRunSuiteOneMode runs the full benchmark suite under a single column,
// verifying output equivalence as it goes (a slimmer version of what
// cmd/experiments does, fast enough for the test suite).
func TestRunSuiteOneMode(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run is slow")
	}
	rows, err := RunSuite([]string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, m := range rows {
		if m.Base.Cycles == 0 || m.ByMode["C"].Cycles == 0 {
			t.Errorf("%s: empty measurement", m.Name)
		}
		if d := DetailRow(m, "C"); !strings.Contains(d, m.Name) {
			t.Errorf("detail row: %s", d)
		}
	}
	_ = core.ModeC
}

// FormatObs must surface the run's fallback reason and the front-end cache
// statistics — both previously visible only in the -json document.
func TestFormatObsFallbackAndCacheStats(t *testing.T) {
	m := &Measurement{
		Name:       "demo",
		CompileObs: map[string]*obs.CompileReport{"base": {}},
		RunObs: map[string]*obs.RunReport{"base": {
			Engine:         "reference",
			FallbackReason: "static verification failed: unbalanced stack",
		}},
	}
	out := FormatObs("metrics", []*Measurement{m}, nil)
	if out == "" {
		t.Fatal("FormatObs returned nothing despite collected reports")
	}
	for _, want := range []string{"fallback", "static verification failed", "front cache:", "hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// A fallback longer than the column clips rather than wrecking the row.
	m.RunObs["base"].FallbackReason = strings.Repeat("x", 100)
	out = FormatObs("metrics", []*Measurement{m}, nil)
	if !strings.Contains(out, "xxx...") {
		t.Errorf("long fallback not truncated:\n%s", out)
	}
}
