package experiments

import (
	"fmt"
	"strings"

	"chow88/internal/benchprog"
	"chow88/internal/core"
	"chow88/internal/front"
	"chow88/internal/ir"
	"chow88/internal/mcode"
	"chow88/internal/pipeline"
	"chow88/internal/pixie"
	"chow88/internal/sim"
)

// runProfiled compiles src under mode with profile feedback from a baseline
// training run (the paper's §8 future-work capability) and executes it.
// The cached front end returns a private clone, so the profile counts
// written onto the module never leak into other compilations.
func runProfiled(src string, mode core.Mode) (*pixie.Stats, []int64, error) {
	mod, err := front.Module(src, mode.Optimize, !mode.Sequential)
	if err != nil {
		return nil, nil, err
	}
	train := core.ModeBase()
	train.Optimize = mode.Optimize
	train.Validate = mode.Validate
	_, trainCode, _, err := pipeline.Build(mod, train)
	if err != nil {
		return nil, nil, err
	}
	trainRes, err := sim.Run(trainCode, sim.Options{Profile: true})
	if err != nil {
		return nil, nil, err
	}
	applyCounts(mod, trainCode, trainRes.InstrCounts)

	_, code, _, err := pipeline.Build(mod, mode)
	if err != nil {
		return nil, nil, err
	}
	res, err := sim.Run(code, sim.Options{})
	if err != nil {
		return nil, nil, err
	}
	return &res.Stats, res.Output, nil
}

func applyCounts(mod *ir.Module, code *mcode.Program, counts []int64) {
	for _, fi := range code.Funcs {
		if fi.Extern {
			continue
		}
		f := mod.Lookup(fi.Name)
		byID := map[int]*ir.Block{}
		for _, b := range f.Blocks {
			byID[b.ID] = b
		}
		for _, span := range fi.Blocks {
			if b := byID[span.BlockID]; b != nil && span.Start < len(counts) {
				b.SetProfile(counts[span.Start])
			}
		}
	}
}

// ProfileFeedback measures the suite under mode C with static loop-depth
// frequency estimates versus measured profiles, reporting the paper's two
// metrics. The paper attributes its residual regressions (ccom) to the lack
// of exactly this data.
func ProfileFeedback() (string, error) {
	var b strings.Builder
	b.WriteString("Profile feedback (the paper's §8 future work) under mode C:\n\n")
	b.WriteString("  program    | II.C% static | II.C% profiled | I.C% static | I.C% profiled\n")
	b.WriteString("  -----------+--------------+----------------+-------------+--------------\n")
	for _, bench := range benchprog.All() {
		baseRun, err := run(bench.Source, core.ModeBase())
		if err != nil {
			return "", fmt.Errorf("%s base: %w", bench.Name, err)
		}
		base, wantOut := baseRun.stats, baseRun.output
		staticRun, err := run(bench.Source, core.ModeC())
		if err != nil {
			return "", fmt.Errorf("%s static: %w", bench.Name, err)
		}
		static, outS := staticRun.stats, staticRun.output
		prof, outP, err := runProfiled(bench.Source, core.ModeC())
		if err != nil {
			return "", fmt.Errorf("%s profiled: %w", bench.Name, err)
		}
		for i := range wantOut {
			if outS[i] != wantOut[i] || outP[i] != wantOut[i] {
				return "", fmt.Errorf("%s: output diverged", bench.Name)
			}
		}
		fmt.Fprintf(&b, "  %-10s | %12.1f | %14.1f | %11.1f | %12.1f\n",
			bench.Name,
			pixie.PercentReduction(base.ScalarLS(), static.ScalarLS()),
			pixie.PercentReduction(base.ScalarLS(), prof.ScalarLS()),
			pixie.PercentReduction(base.Cycles, static.Cycles),
			pixie.PercentReduction(base.Cycles, prof.Cycles))
	}
	b.WriteString("\n  Measured block frequencies replace the 10^loop-depth estimate, so\n")
	b.WriteString("  save/restore placement follows actual execution behaviour — the\n")
	b.WriteString("  paper's prescription for its ccom regression.\n")
	return b.String(), nil
}
