package experiments

import (
	"fmt"
	"strings"

	"chow88/internal/core"
)

// ChainProgram synthesizes a program whose call graph is a chain of the
// given depth, with `pressure` values live across calls at every level and
// a conditional register-hungry region per level (so the §6 propagate-vs-
// wrap decision has real choices). The paper identifies call-graph height
// as the parameter that decides when the register file runs out and which
// register class wins; this workload sweeps exactly that.
func ChainProgram(depth, pressure int) string {
	var b strings.Builder
	b.WriteString("var sink int;\n\n")
	b.WriteString("func l0(x int) int { return x * 2 + 1; }\n\n")
	for i := 1; i < depth; i++ {
		fmt.Fprintf(&b, "func l%d(x int) int {\n", i)
		b.WriteString("    var r int;\n")
		fmt.Fprintf(&b, "    r = l%d(x);\n", i-1)
		b.WriteString("    if (x % 2 == 0) {\n")
		for p := 0; p < pressure; p++ {
			fmt.Fprintf(&b, "        var a%d int;\n", p)
		}
		fmt.Fprintf(&b, "        a0 = l%d(r + 1);\n", i-1)
		for p := 1; p < pressure; p++ {
			fmt.Fprintf(&b, "        a%d = l%d(a%d + r);\n", p, i-1, p-1)
		}
		b.WriteString("        r = r")
		for p := 0; p < pressure; p++ {
			fmt.Fprintf(&b, " + a%d", p)
		}
		b.WriteString(";\n    }\n")
		b.WriteString("    sink = sink + 1;\n")
		b.WriteString("    return r;\n}\n\n")
	}
	b.WriteString("func main() {\n")
	b.WriteString("    var i int;\n    var s int;\n    s = 0;\n")
	b.WriteString("    for (i = 0; i < 40; i = i + 1) {\n")
	fmt.Fprintf(&b, "        s = (s + l%d(i)) %% 1000000007;\n", depth-1)
	b.WriteString("    }\n    print(s);\n    print(sink);\n}\n")
	return b.String()
}

// HeightSweep measures the two restricted register classes (Table 2's D and
// E) on call chains of growing height, reporting save/restore traffic and
// cycles. It regenerates the paper's §8 analysis: caller-saved registers
// win while the file suffices; as height grows, the callee-saved class's
// ability to migrate saves up the graph takes over.
func HeightSweep() (string, error) {
	var b strings.Builder
	b.WriteString("Call-graph height sweep (the paper's \"relevant parameter\"):\n\n")
	b.WriteString("  depth | save/restore D | save/restore E |   cycles D |   cycles E\n")
	b.WriteString("  ------+----------------+----------------+------------+-----------\n")
	for _, depth := range []int{2, 4, 6, 8, 10, 12} {
		src := ChainProgram(depth, 3)
		d, err := run(src, core.ModeD())
		if err != nil {
			return "", fmt.Errorf("depth %d D: %w", depth, err)
		}
		e, err := run(src, core.ModeE())
		if err != nil {
			return "", fmt.Errorf("depth %d E: %w", depth, err)
		}
		outD, outE := d.output, e.output
		for i := range outD {
			if outD[i] != outE[i] {
				return "", fmt.Errorf("depth %d: outputs diverge", depth)
			}
		}
		fmt.Fprintf(&b, "  %5d | %14d | %14d | %10d | %10d\n",
			depth, d.stats.SaveRestoreLS(), e.stats.SaveRestoreLS(), d.stats.Cycles, e.stats.Cycles)
	}
	b.WriteString("\n  D = 7 caller-saved only; E = 7 callee-saved only (both -O3+sw).\n")
	b.WriteString("\n  Reading: at height 2 the caller-saved class wins outright (no\n")
	b.WriteString("  entry/exit saves anywhere, summaries small) — the paper's small-\n")
	b.WriteString("  program result. As height grows, usage summaries saturate and both\n")
	b.WriteString("  classes pay the same around-call cost; E's overhead stays a constant\n")
	b.WriteString("  14 ops regardless of depth — the callee-saved saves have migrated\n")
	b.WriteString("  all the way to main, where they execute once per program run, the\n")
	b.WriteString("  ideal case of §3.\n")
	return b.String(), nil
}
