package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"chow88/internal/benchprog"
	"chow88/internal/core"
	"chow88/internal/explain"
	"chow88/internal/front"
	"chow88/internal/mach"
	"chow88/internal/pipeline"
	"chow88/internal/pixie"
	"chow88/internal/progen"
	"chow88/internal/sim"
)

// The convention sweep answers the question the paper fixes by fiat: given
// the 20 allocatable registers, where should the caller-saved/callee-saved
// boundary sit, and how many registers should carry parameters? Every
// candidate partition compiles the whole workload under mode C with the
// validator on, runs it on the simulator's native tier, and is charged the
// trace's cycle count plus the two penalty buckets the paper measures —
// save/restore loads+stores and call-linkage cycles. Candidates run in a
// worker pool; the explain-journal attribution of the winner (a process-
// global journal, so necessarily sequential) happens after the pool drains.

// Workload is one program the sweep measures. The standard workload is the
// 13-program suite plus synthetic progen programs whose call sites carry up
// to 6 arguments — beyond what the suite exercises under the fixed 4-register
// convention.
type Workload struct {
	Name   string
	Source string
}

// SweepWorkload assembles the suite plus n synthetic programs. Generated
// seeds whose baseline run exceeds the simulator budget are skipped (the
// generator has no termination proof), scanning forward until n runnable
// programs are found.
func SweepWorkload(n int) ([]Workload, error) {
	var out []Workload
	for _, b := range benchprog.All() {
		out = append(out, Workload{Name: b.Name, Source: b.Source})
	}
	cfg := progen.DefaultConfig()
	cfg.MaxParams = mach.MaxParams
	for seed, found := int64(0), 0; found < n && seed < int64(n)*8+32; seed++ {
		src := progen.Generate(seed, cfg)
		if _, _, err := sweepRun(src, core.ModeC()); err != nil {
			continue
		}
		out = append(out, Workload{Name: fmt.Sprintf("gen%d", seed), Source: src})
		found++
	}
	return out, nil
}

// sweepRun is the lean measurement path: compile under mode, execute on the
// default (native) engine, return the trace stats and output. No obs spans —
// sweep candidates run concurrently and per-measurement reports would
// interleave.
func sweepRun(src string, mode core.Mode) (*pixie.Stats, []int64, error) {
	mod, err := front.Module(src, mode.Optimize, !mode.Sequential)
	if err != nil {
		return nil, nil, err
	}
	_, code, _, err := pipeline.Build(mod, mode)
	if err != nil {
		return nil, nil, err
	}
	res, err := sim.Run(code, sim.Options{})
	if err != nil {
		return nil, nil, err
	}
	return &res.Stats, res.Output, nil
}

// SweepRow is one candidate convention's aggregate over the workload.
type SweepRow struct {
	Cfg  *mach.Config
	Spec string
	// Cycles, SaveLS and Linkage are trace totals over the workload: executed
	// cycles, save/restore loads+stores, and call-linkage cycles.
	Cycles  int64
	SaveLS  int64
	Linkage int64
	// ByProgram holds the per-program stats in workload order (feeds the
	// attribution step and per-program selection).
	ByProgram []*pixie.Stats
	// Rejected carries the Config.Validate() reason for candidates that never
	// compiled; all other fields are zero.
	Rejected string
}

// SweepReport is the full sweep result.
type SweepReport struct {
	Workload []Workload
	// Rows holds the measured candidates, best (fewest cycles) first, ties
	// broken by spec string — a total order independent of worker scheduling.
	Rows []*SweepRow
	// Rejected holds candidates Config.Validate() refused, with reasons.
	Rejected []*SweepRow
	// Base is the Default() convention's row (also present in Rows).
	Base *SweepRow
	// AttrProgram names the workload program with the largest winner-vs-
	// default cycle delta; Attribution is the explain-journal diff naming the
	// save/restore placement decisions responsible for it.
	AttrProgram string
	Attribution string
}

// Winner returns the best measured row (nil on an empty sweep).
func (r *SweepReport) Winner() *SweepRow {
	if len(r.Rows) == 0 {
		return nil
	}
	return r.Rows[0]
}

// Sweep measures every candidate convention over the workload using at most
// workers concurrent compilations (0 selects GOMAXPROCS). Candidates that
// fail Config.Validate() are reported as rejected rather than compiled; the
// Default() convention is always included. Every measured candidate's output
// must match the default convention's on every program — a mismatch fails
// the sweep. The report is deterministic: byte-identical across worker
// counts, including workers=1.
func Sweep(cands []*mach.Config, workload []Workload, workers int) (*SweepReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &SweepReport{Workload: workload}

	// Partition candidates: rejected ones never reach the pool. Duplicate
	// specs (Enumerate covers the Default point) measure once.
	var accepted []*SweepRow
	seen := map[string]bool{}
	base := mach.Default()
	for _, c := range append([]*mach.Config{base}, cands...) {
		if err := c.Validate(); err != nil {
			rep.Rejected = append(rep.Rejected, &SweepRow{Cfg: c, Spec: specOrName(c), Rejected: err.Error()})
			continue
		}
		spec := c.Spec()
		if seen[spec] {
			continue
		}
		seen[spec] = true
		accepted = append(accepted, &SweepRow{Cfg: c, Spec: spec})
	}
	sort.Slice(rep.Rejected, func(i, j int) bool { return rep.Rejected[i].Spec < rep.Rejected[j].Spec })

	// The default convention runs first, alone: its outputs are the oracle
	// every candidate is checked against.
	baseSpec := base.Spec()
	var baseRow *SweepRow
	for _, r := range accepted {
		if r.Spec == baseSpec {
			baseRow = r
		}
	}
	wantOut := make([][]int64, len(workload))
	for i, w := range workload {
		st, out, err := sweepRun(w.Source, core.ModeConv(baseRow.Cfg))
		if err != nil {
			return nil, fmt.Errorf("%s [%s]: %w", w.Name, baseRow.Spec, err)
		}
		wantOut[i] = out
		baseRow.note(st)
	}
	rep.Base = baseRow

	// Worker pool over the remaining candidates. Each worker owns whole rows,
	// so aggregation needs no locks beyond the error slot.
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		fail  error
		next  = make(chan *SweepRow)
		abort = make(chan struct{})
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for row := range next {
				if err := measureRow(row, workload, wantOut); err != nil {
					mu.Lock()
					if fail == nil {
						fail = err
						close(abort)
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
feed:
	for _, r := range accepted {
		if r == baseRow {
			continue
		}
		select {
		case next <- r:
		case <-abort:
			break feed
		}
	}
	close(next)
	wg.Wait()
	if fail != nil {
		return nil, fail
	}

	rep.Rows = accepted
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Cycles != rep.Rows[j].Cycles {
			return rep.Rows[i].Cycles < rep.Rows[j].Cycles
		}
		return rep.Rows[i].Spec < rep.Rows[j].Spec
	})

	// Attribution: re-derive the winner-vs-default delta on the program where
	// it is largest, through the decision journal. The journal is a process-
	// global atomic pointer, so this runs strictly after the pool.
	if w := rep.Winner(); w != nil && w != baseRow {
		prog, delta := -1, int64(0)
		for i := range workload {
			d := baseRow.ByProgram[i].Cycles - w.ByProgram[i].Cycles
			if d < 0 {
				d = -d
			}
			if d > delta {
				prog, delta = i, d
			}
		}
		if prog >= 0 {
			attr, err := attributeDelta(workload[prog], baseRow, w, prog)
			if err != nil {
				return nil, fmt.Errorf("attribution on %s: %w", workload[prog].Name, err)
			}
			rep.AttrProgram = workload[prog].Name
			rep.Attribution = attr
		}
	}
	return rep, nil
}

// measureRow compiles and runs every workload program under row's
// convention, checking output against the default convention's.
func measureRow(row *SweepRow, workload []Workload, wantOut [][]int64) error {
	for i, w := range workload {
		st, out, err := sweepRun(w.Source, core.ModeConv(row.Cfg))
		if err != nil {
			return fmt.Errorf("%s [%s]: %w", w.Name, row.Spec, err)
		}
		if len(out) != len(wantOut[i]) {
			return fmt.Errorf("%s [%s]: output diverged", w.Name, row.Spec)
		}
		for k := range out {
			if out[k] != wantOut[i][k] {
				return fmt.Errorf("%s [%s]: output diverged at %d", w.Name, row.Spec, k)
			}
		}
		row.note(st)
	}
	return nil
}

// note accumulates one program's stats into the row totals.
func (r *SweepRow) note(st *pixie.Stats) {
	r.ByProgram = append(r.ByProgram, st)
	r.Cycles += st.Cycles
	r.SaveLS += st.SaveRestoreLS()
	r.Linkage += st.LinkageCycles
}

// attributeDelta journals two sequential compiles of one program — default
// convention, then winner — and feeds both artifacts through the explaindiff
// alignment, reporting which save/restore placements account for the
// measured save/restore traffic change.
func attributeDelta(w Workload, base, win *SweepRow, prog int) (string, error) {
	arts := make([]*explain.Artifact, 2)
	for i, cfg := range []*mach.Config{base.Cfg, win.Cfg} {
		j := explain.Begin()
		_, _, err := sweepRun(w.Source, core.ModeConv(cfg))
		explain.End()
		if err != nil {
			return "", err
		}
		arts[i] = j.Artifact()
	}
	d := explain.DiffArtifacts(arts[0], arts[1])
	measured := win.ByProgram[prog].SaveRestoreLS() - base.ByProgram[prog].SaveRestoreLS()
	return d.Format(base.Spec, win.Spec, float64(measured), true), nil
}

// specOrName renders an identifier even for configs too broken to encode
// meaningfully (the spec encoder is total, so this is just Spec today).
func specOrName(c *mach.Config) string {
	if s := c.Spec(); s != "" {
		return s
	}
	return c.Name
}

// SampleConventions returns a deterministic spread of at most n points from
// the full enumeration (Default() is always among them) — the smoke-test and
// quick-look alternative to sweeping all of Enumerate().
func SampleConventions(n int) []*mach.Config {
	all := mach.Enumerate(-1)
	if n <= 0 || n >= len(all) {
		return all
	}
	out := []*mach.Config{mach.Default()}
	seen := map[string]bool{out[0].Spec(): true}
	for i := 0; i < n && len(out) < n; i++ {
		c := all[i*len(all)/n]
		if spec := c.Spec(); !seen[spec] {
			seen[spec] = true
			out = append(out, c)
		}
	}
	return out
}

// FormatSweep renders the report: one row per measured convention, penalty
// buckets beside the cycle totals, the rejection list, and the winner's
// attribution appendix.
func FormatSweep(r *SweepReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Convention sweep over %d programs, %d candidate conventions:\n\n",
		len(r.Workload), len(r.Rows))
	b.WriteString("  convention                                |       cycles |   Δ%  |  save/rest |  linkage\n")
	b.WriteString("  ------------------------------------------+--------------+-------+------------+---------\n")
	for _, row := range r.Rows {
		mark := " "
		switch row {
		case r.Winner():
			mark = "*"
		case r.Base:
			mark = "="
		}
		fmt.Fprintf(&b, " %s%-42s | %12d | %5.1f | %10d | %8d\n",
			mark, row.Spec, row.Cycles,
			pixie.PercentReduction(r.Base.Cycles, row.Cycles),
			row.SaveLS, row.Linkage)
	}
	b.WriteString("\n  Δ% = cycle reduction vs the default convention (positive is better);\n")
	b.WriteString("  save/rest = save/restore loads+stores; linkage = call-linkage cycles;\n")
	b.WriteString("  * = sweep winner, = = default convention. Totals over the workload.\n")
	if len(r.Rejected) > 0 {
		fmt.Fprintf(&b, "\n  %d candidate(s) rejected by Config.Validate():\n", len(r.Rejected))
		for _, row := range r.Rejected {
			fmt.Fprintf(&b, "    %-42s %s\n", row.Spec, row.Rejected)
		}
	}
	if r.Attribution != "" {
		fmt.Fprintf(&b, "\nAttribution of the winner's save/restore delta on %q:\n%s", r.AttrProgram, r.Attribution)
	}
	return b.String()
}

// TuneRow is one program's profile-guided convention selection.
type TuneRow struct {
	Program string
	// BaseCycles is the profiled build under the Default() convention;
	// BestCycles is the profiled build under Best. Best is never worse: the
	// default convention competes in every selection.
	BaseCycles int64
	Best       *mach.Config
	BestCycles int64
	Evaluated  int
}

// Tune performs per-program profile-guided convention selection over the
// 13-program suite: each program trains once under the baseline mode with
// the trace profiler on, the measured block frequencies are applied to a
// fresh module clone per candidate, and the candidate whose profiled mode-C
// build executes the fewest cycles wins. The Default() convention always
// competes, so selection never regresses a program; ties keep the default.
// Programs tune concurrently (candidates within one program share its
// training run).
func Tune(cands []*mach.Config, workers int) ([]*TuneRow, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	base := mach.Default()
	var pool []*mach.Config
	seen := map[string]bool{}
	for _, c := range append([]*mach.Config{base}, cands...) {
		if err := c.Validate(); err != nil {
			continue
		}
		if spec := c.Spec(); !seen[spec] {
			seen[spec] = true
			pool = append(pool, c)
		}
	}

	suite := benchprog.All()
	rows := make([]*TuneRow, len(suite))
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		fail error
		next = make(chan int)
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				row, err := tuneProgram(suite[idx].Name, suite[idx].Source, base, pool)
				mu.Lock()
				if err != nil && fail == nil {
					fail = err
				}
				rows[idx] = row
				mu.Unlock()
			}
		}()
	}
	for i := range suite {
		next <- i
	}
	close(next)
	wg.Wait()
	if fail != nil {
		return nil, fail
	}
	return rows, nil
}

// tuneProgram trains src once and races every candidate convention on the
// profiled build.
func tuneProgram(name, src string, base *mach.Config, pool []*mach.Config) (*TuneRow, error) {
	mod, err := front.Module(src, true, true)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	_, trainCode, _, err := pipeline.Build(mod, core.ModeBase())
	if err != nil {
		return nil, fmt.Errorf("%s [train]: %w", name, err)
	}
	trainRes, err := sim.Run(trainCode, sim.Options{Profile: true})
	if err != nil {
		return nil, fmt.Errorf("%s [train]: %w", name, err)
	}
	wantOut := trainRes.Output

	row := &TuneRow{Program: name, Evaluated: len(pool)}
	baseSpec := base.Spec()
	for _, cfg := range pool {
		// A fresh clone per candidate: applyCounts writes block profiles onto
		// the module, and the cached front end hands each call a private copy.
		m, err := front.Module(src, true, true)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		applyCounts(m, trainCode, trainRes.InstrCounts)
		_, code, _, err := pipeline.Build(m, core.ModeConv(cfg))
		if err != nil {
			return nil, fmt.Errorf("%s [%s]: %w", name, cfg.Spec(), err)
		}
		res, err := sim.Run(code, sim.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s [%s]: %w", name, cfg.Spec(), err)
		}
		if len(res.Output) != len(wantOut) {
			return nil, fmt.Errorf("%s [%s]: output diverged", name, cfg.Spec())
		}
		for k := range res.Output {
			if res.Output[k] != wantOut[k] {
				return nil, fmt.Errorf("%s [%s]: output diverged at %d", name, cfg.Spec(), k)
			}
		}
		cyc := res.Stats.Cycles
		if cfg.Spec() == baseSpec {
			row.BaseCycles = cyc
		}
		// Strictly fewer cycles wins; ties keep the earlier candidate, and the
		// default convention is first in the pool.
		if row.Best == nil || cyc < row.BestCycles {
			row.Best, row.BestCycles = cfg, cyc
		}
	}
	return row, nil
}

// FormatTune renders the per-program selections.
func FormatTune(rows []*TuneRow) string {
	var b strings.Builder
	b.WriteString("Profile-guided per-program convention selection (mode C, trained on the baseline run):\n\n")
	b.WriteString("  program    |      default |         best |   Δ%  | convention\n")
	b.WriteString("  -----------+--------------+--------------+-------+-----------\n")
	improved := 0
	for _, r := range rows {
		d := pixie.PercentReduction(r.BaseCycles, r.BestCycles)
		if r.BestCycles < r.BaseCycles {
			improved++
		}
		fmt.Fprintf(&b, "  %-10s | %12d | %12d | %5.1f | %s\n",
			r.Program, r.BaseCycles, r.BestCycles, d, r.Best.Spec())
	}
	fmt.Fprintf(&b, "\n  %d of %d programs beat the default convention; none regress (the\n",
		improved, len(rows))
	b.WriteString("  default competes in every selection). Δ% = cycle reduction of the\n")
	b.WriteString("  selected convention over the default (positive is better).\n")
	return b.String()
}
