package experiments

import (
	"strings"
	"testing"

	"chow88/internal/benchprog"
	"chow88/internal/mach"
)

// smokeWorkload is a 3-program cut of the suite, small enough that sweep
// tests stay fast while still exercising multi-program aggregation.
func smokeWorkload() []Workload {
	var out []Workload
	for _, b := range benchprog.All()[:3] {
		out = append(out, Workload{Name: b.Name, Source: b.Source})
	}
	return out
}

// smokeCandidates spans the partition space ends plus the paper's point.
func smokeCandidates() []*mach.Config {
	return []*mach.Config{
		mach.Boundary(0, 4),
		mach.Boundary(20, 0),
		mach.Boundary(9, 6),
		mach.Boundary(14, 2),
	}
}

func TestSweepSmoke(t *testing.T) {
	rep, err := Sweep(smokeCandidates(), smokeWorkload(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Default is injected even when absent from the candidate list.
	if rep.Base == nil || rep.Base.Spec != mach.Default().Spec() {
		t.Fatalf("base row = %+v", rep.Base)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (4 candidates + default)", len(rep.Rows))
	}
	for i, r := range rep.Rows {
		if r.Cycles <= 0 || len(r.ByProgram) != 3 {
			t.Errorf("row %s: cycles=%d programs=%d", r.Spec, r.Cycles, len(r.ByProgram))
		}
		if i > 0 && rep.Rows[i-1].Cycles > r.Cycles {
			t.Errorf("rows not sorted by cycles at %d", i)
		}
	}
	out := FormatSweep(rep)
	for _, want := range []string{"Convention sweep", mach.Default().Spec(), "save/rest"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The winner's save/restore delta must be attributed through the decision
	// journal whenever the default convention did not win.
	if w := rep.Winner(); w != rep.Base {
		if rep.Attribution == "" || !strings.Contains(rep.Attribution, "explaindiff:") {
			t.Errorf("no attribution for winner %s:\n%s", w.Spec, rep.Attribution)
		}
	}
}

// TestSweepDeterministic pins the byte-determinism contract: the rendered
// report is identical for a sequential and a parallel sweep.
func TestSweepDeterministic(t *testing.T) {
	wl := smokeWorkload()[:2]
	cands := smokeCandidates()
	seq, err := Sweep(cands, wl, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep(cands, wl, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := FormatSweep(seq), FormatSweep(par); a != b {
		t.Errorf("sweep report depends on worker count:\n--- workers=1\n%s\n--- workers=4\n%s", a, b)
	}
}

// TestSweepRejectsInvalid proves an incoherent candidate is refused by
// Config.Validate() with its named reason instead of being compiled.
func TestSweepRejectsInvalid(t *testing.T) {
	bad := &mach.Config{
		Name:        "overlap",
		CallerSaved: mach.SetOf(mach.T0, mach.S0),
		CalleeSaved: mach.SetOf(mach.S0),
		Params:      []mach.Reg{mach.A0},
	}
	rep, err := Sweep([]*mach.Config{bad}, smokeWorkload()[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rejected) != 1 {
		t.Fatalf("rejected = %d, want 1", len(rep.Rejected))
	}
	if !strings.Contains(rep.Rejected[0].Rejected, mach.ReasonClassOverlap) {
		t.Errorf("rejection reason %q does not name %s", rep.Rejected[0].Rejected, mach.ReasonClassOverlap)
	}
	if !strings.Contains(FormatSweep(rep), mach.ReasonClassOverlap) {
		t.Error("rendered report drops the rejection reason")
	}
}

func TestSampleConventions(t *testing.T) {
	got := SampleConventions(10)
	if len(got) == 0 || len(got) > 10 {
		t.Fatalf("sample size = %d", len(got))
	}
	def := mach.Default().Spec()
	found := false
	seen := map[string]bool{}
	for _, c := range got {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Spec(), err)
		}
		if seen[c.Spec()] {
			t.Errorf("duplicate sample %s", c.Spec())
		}
		seen[c.Spec()] = true
		if c.Spec() == def {
			found = true
		}
	}
	if !found {
		t.Error("Default() missing from sample")
	}
	if all := mach.Enumerate(-1); len(SampleConventions(0)) != len(all) {
		t.Error("SampleConventions(0) should return the full enumeration")
	}
}

// TestTuneNeverRegresses is the acceptance gate for profile-guided
// selection: over the whole suite, the chosen convention never loses to the
// default (which competes in every selection) and wins outright somewhere.
func TestTuneNeverRegresses(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes the full suite")
	}
	cands := []*mach.Config{
		mach.Boundary(5, 4),
		mach.Boundary(13, 4),
		mach.Boundary(9, 6),
		mach.Boundary(11, 2),
		mach.Boundary(20, 4),
	}
	rows, err := Tune(cands, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(benchprog.All()) {
		t.Fatalf("rows = %d", len(rows))
	}
	improved := 0
	for _, r := range rows {
		if r.BaseCycles == 0 {
			t.Errorf("%s: default convention was not measured", r.Program)
		}
		if r.BestCycles > r.BaseCycles {
			t.Errorf("%s: selection regressed: best %d > default %d (%s)",
				r.Program, r.BestCycles, r.BaseCycles, r.Best.Spec())
		}
		if r.BestCycles < r.BaseCycles {
			improved++
		}
	}
	if improved == 0 {
		t.Error("no program beat the default convention")
	}
	out := FormatTune(rows)
	if !strings.Contains(out, "Profile-guided") || !strings.Contains(out, rows[0].Program) {
		t.Errorf("tune report:\n%s", out)
	}
}
