package explain

// The journal is process-global (one atomic pointer), so none of these
// tests may run in parallel with each other; they install and tear down
// the current journal around every scenario.

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestArtifactModuleOrder(t *testing.T) {
	j := Begin()
	defer End()
	j.SetModuleOrder([]string{"zeta", "alpha"})
	j.Record("alpha", Decision{Kind: KindClassify, Cause: "closed"})
	j.Record("zeta", Decision{Kind: KindClassify, Cause: "closed"})
	// Buckets outside the module order (an inlined-away caller) trail,
	// sorted by name.
	j.Record("stray2", Decision{Kind: KindSpill, Reg: "$s0"})
	j.Record("stray1", Decision{Kind: KindSpill, Reg: "$s1"})

	a := j.Artifact()
	var got []string
	for _, p := range a.Procs {
		got = append(got, p.Func)
	}
	want := []string{"zeta", "alpha", "stray1", "stray2"}
	if len(got) != len(want) {
		t.Fatalf("procs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("procs = %v, want %v", got, want)
		}
	}
}

func TestDropPlacementsKeepsNonPlacement(t *testing.T) {
	j := Begin()
	defer End()
	j.Record("f", Decision{Kind: KindClassify, Cause: "closed"})
	j.Record("f", Decision{Kind: KindSave, Reg: "$s0", Block: "b0"})
	j.Record("f", Decision{Kind: KindRestore, Reg: "$s0", Block: "b1"})
	j.Record("f", Decision{Kind: KindWrap, Reg: "$s0", Cause: "wrap"})
	j.DropPlacements()
	j.Record("f", Decision{Kind: KindSave, Reg: "$s0", Block: "b2"})

	ds := j.Artifact().Proc("f").Decisions
	var kinds []string
	for _, d := range ds {
		kinds = append(kinds, d.Kind+":"+d.Block)
	}
	want := "classify: wrap: save:b2"
	if got := strings.Join(kinds, " "); got != want {
		t.Errorf("after DropPlacements: %q, want %q", got, want)
	}
}

func TestResetClearsEverything(t *testing.T) {
	j := Begin()
	defer End()
	j.SetModuleOrder([]string{"f"})
	j.Record("f", Decision{Kind: KindClassify})
	j.RecordModule(Decision{Kind: KindDiscard})
	j.Reset()
	a := j.Artifact()
	if len(a.Procs) != 0 || len(a.Module) != 0 {
		t.Errorf("artifact after Reset: %+v", a)
	}
}

func TestNarrativeFilter(t *testing.T) {
	j := Begin()
	defer End()
	j.Record("f", Decision{Kind: KindClassify, Cause: "closed"})
	j.Record("g", Decision{Kind: KindSpill, Reg: "$t0", Cause: "interference", Freq: 100})
	a := j.Artifact()

	all := a.Narrative("")
	if !strings.Contains(all, "f: 1 decision(s)") || !strings.Contains(all, "g: 1 decision(s)") {
		t.Errorf("full narrative:\n%s", all)
	}
	only := a.Narrative("g")
	if strings.Contains(only, "f:") || !strings.Contains(only, "freq=100") {
		t.Errorf("filtered narrative:\n%s", only)
	}
	missing := a.Narrative("nosuch")
	if !strings.Contains(missing, `no decisions recorded for procedure "nosuch"`) {
		t.Errorf("unknown-proc narrative:\n%s", missing)
	}
}

func TestArtifactJSONRoundTrip(t *testing.T) {
	j := Begin()
	defer End()
	j.Record("f", Decision{Kind: KindSave, Reg: "$s0", Block: "b0", Cause: "shrink-wrap", Freq: 8, Detail: "eq 3.5"})
	b, err := json.Marshal(j.Artifact())
	if err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if d := back.Proc("f").Decisions[0]; d != (Decision{Kind: KindSave, Reg: "$s0", Block: "b0", Cause: "shrink-wrap", Freq: 8, Detail: "eq 3.5"}) {
		t.Errorf("round trip = %+v", d)
	}
}

func art(fn string, ds ...Decision) *Artifact {
	return &Artifact{Procs: []ProcJournal{{Func: fn, Decisions: ds}}}
}

func TestDiffPredictsFreqWeightedDelta(t *testing.T) {
	a := art("f",
		Decision{Kind: KindSave, Reg: "$s0", Block: "b0", Cause: "entry-exit", Freq: 10},
		Decision{Kind: KindRestore, Reg: "$s0", Block: "b9", Cause: "entry-exit", Freq: 10},
	)
	b := art("f",
		Decision{Kind: KindSave, Reg: "$s0", Block: "b3", Cause: "shrink-wrap", Freq: 2},
		Decision{Kind: KindRestore, Reg: "$s0", Block: "b9", Cause: "entry-exit", Freq: 10},
		Decision{Kind: KindWrap, Reg: "$s0", Cause: "wrap"},
	)
	d := DiffArtifacts(a, b)
	// Save moved from b0 (10 executions) to b3 (2): delta = -10 + 2 = -8.
	// The unchanged restore contributes nothing.
	if d.PredictedOps != -8 {
		t.Errorf("PredictedOps = %v, want -8", d.PredictedOps)
	}
	if len(d.Funcs) != 1 || d.Funcs[0].Func != "f" {
		t.Fatalf("funcs = %+v", d.Funcs)
	}
	if n := len(d.Funcs[0].Sites); n != 2 {
		t.Errorf("sites = %d, want 2 (the moved save's two ends)", n)
	}
	foundWrap := false
	for _, c := range d.Funcs[0].Context {
		if strings.Contains(c, "wrap $s0") {
			foundWrap = true
		}
	}
	if !foundWrap {
		t.Errorf("context %v does not name the wrap flip", d.Funcs[0].Context)
	}
}

func TestDiffAccumulatesRepeatedSites(t *testing.T) {
	// Two around-call saves of one register in one block accumulate.
	a := art("f")
	b := art("f",
		Decision{Kind: KindSave, Reg: "$t0", Block: "b1", Cause: "around-call", Freq: 5},
		Decision{Kind: KindSave, Reg: "$t0", Block: "b1", Cause: "around-call", Freq: 5},
	)
	d := DiffArtifacts(a, b)
	if d.PredictedOps != 10 {
		t.Errorf("PredictedOps = %v, want 10", d.PredictedOps)
	}
}

func TestAttribution(t *testing.T) {
	d := &Diff{PredictedOps: -90}
	if got := d.Attribution(-100); got != 90 {
		t.Errorf("attribution(-100) with -90 predicted = %v, want 90", got)
	}
	if got := d.Attribution(0); got != 0 {
		t.Errorf("attribution(0) with nonzero prediction = %v, want 0", got)
	}
	if got := (&Diff{}).Attribution(0); got != 100 {
		t.Errorf("attribution(0) with zero prediction = %v, want 100", got)
	}
	// Wildly wrong predictions clamp at 0, not negative.
	if got := (&Diff{PredictedOps: 500}).Attribution(-10); got != 0 {
		t.Errorf("clamp failed: %v", got)
	}
}

func TestFormatMeasuredLine(t *testing.T) {
	d := DiffArtifacts(
		art("f", Decision{Kind: KindSave, Reg: "$s0", Block: "b0", Freq: 4}),
		art("f"),
	)
	withM := d.Format("a", "b", -4, true)
	if !strings.Contains(withM, "measured") || !strings.Contains(withM, "100.0% attributed") {
		t.Errorf("measured render:\n%s", withM)
	}
	without := d.Format("a", "b", 0, false)
	if strings.Contains(without, "measured") {
		t.Errorf("unmeasured render still has a measured line:\n%s", without)
	}
}

// The disabled path must stay invisible: one atomic load, zero heap
// allocations — the same bar internal/obs holds its disabled path to.
func TestExplainDisabledAllocFree(t *testing.T) {
	End()
	if n := testing.AllocsPerRun(1000, func() {
		if j := Current(); j != nil {
			t.Fatal("journal unexpectedly active")
		}
		// The nil-safe methods must also stay alloc-free.
		Current().Record("f", Decision{})
		Current().Reset()
		Current().DropPlacements()
	}); n != 0 {
		t.Errorf("disabled path allocates %v per op, want 0", n)
	}
}

func BenchmarkExplainDisabled(b *testing.B) {
	End()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if j := Current(); j != nil {
			b.Fatal("journal unexpectedly active")
		}
	}
}
