// Package explain is the decision-provenance journal: a structured record
// of every allocation decision the compiler takes — open/closed
// classification, spills and split rounds, the §6 propagate-vs-wrap choice,
// parameter-register negotiation, each save/restore placement with the
// eq-3.x term that licensed it, demotion ladder steps and inlining
// verdicts — keyed by procedure and serializable for diffing across modes.
//
// The journal follows internal/obs's discipline exactly: a process-global
// atomic pointer, nil-safe methods, and a disabled path that costs one
// atomic load and zero allocations (instrumentation sites must guard with
// `if j := explain.Current(); j != nil { ... }` so the fmt work of building
// a Decision is never done dark — held by TestExplainDisabledAllocFree).
//
// Determinism: decisions are bucketed per function, each function is
// planned and emitted by exactly one worker, and the artifact serializes
// buckets in module order — so parallel and sequential compiles produce
// byte-identical journals. Nothing in a Decision depends on scheduling: no
// timestamps, no worker IDs, and every set iterated while recording
// (RegSet.ForEach, CallSites, plan site slices) has a fixed order.
package explain

import (
	"sync"
	"sync/atomic"

	"chow88/internal/obs"
)

// Decision kinds. The narrative renderer and explaindiff switch on these.
const (
	// KindClassify is the open/closed verdict (§3), cause one of the enum
	// closed/main/extern/addr-taken/cycle/force-open/demotion.
	KindClassify = "classify"
	// KindSpill is one live range sent to memory, cause "interference",
	// "cost" or "no-registers".
	KindSpill = "spill"
	// KindSplit is a live-range splitting round, cause "kept" or "reverted".
	KindSplit = "split"
	// KindWrap is the §6 propagate-vs-wrap choice for one callee-saved
	// register, cause "propagate" or "wrap".
	KindWrap = "wrap"
	// KindCallSite is the negotiated linkage of one call site: what the
	// callee clobbers and where arguments go, cause "summary" or "default".
	KindCallSite = "callsite"
	// KindSummary is the register-usage summary published to callers (§2).
	KindSummary = "summary"
	// KindParam is one parameter's negotiated location (§4).
	KindParam = "param"
	// KindSave / KindRestore are save/restore placements: shrink-wrap sites
	// licensed by eq 3.5/3.6, entry/exit defaults, around-call saves of
	// live clobbered registers, and the return-address slot.
	KindSave    = "save"
	KindRestore = "restore"
	// KindDemote is one degradation-ladder step, cause "demote", "replan"
	// or "replan-nosw".
	KindDemote = "demote"
	// KindInline / KindInlineRefuse are procedure-integrator verdicts.
	KindInline       = "inline"
	KindInlineRefuse = "inline-refuse"
	// KindDiscard is the module-level inline retreat (pipeline rebuilt the
	// pristine pre-inlining clone).
	KindDiscard = "discard-inlining"
)

// Decision is one recorded choice. Fields beyond Kind are optional and
// kind-dependent; the zero value of each is omitted from the JSON form.
type Decision struct {
	Kind string `json:"kind"`
	// Reg names the register the decision is about (save/restore/wrap/param).
	Reg string `json:"reg,omitempty"`
	// Callee names the other procedure involved (callsite/inline).
	Callee string `json:"callee,omitempty"`
	// Block names the basic block the decision lands in.
	Block string `json:"block,omitempty"`
	// Cause is the compact machine-matchable reason enum for the kind.
	Cause string `json:"cause,omitempty"`
	// Detail is the human-readable account, including the numbers actually
	// compared (the §6 costs, the eq-3.x terms, the inline budget state).
	Detail string `json:"detail,omitempty"`
	// Freq is the execution-frequency estimate that priced the decision
	// (measured counts under profile feedback, 10^depth otherwise).
	Freq float64 `json:"freq,omitempty"`
	// Cost is the kind-specific figure of merit (net spill benefit, split
	// traffic delta, inline splice cost, §6 local save cost).
	Cost float64 `json:"cost,omitempty"`
}

// Journal accumulates decisions for one compile. All methods are safe for
// concurrent use and safe on a nil receiver.
type Journal struct {
	mu     sync.Mutex
	funcs  map[string][]Decision
	module []Decision
	order  []string
}

var current atomic.Pointer[Journal]

// Begin installs a fresh journal as the process-global current journal and
// returns it. The previous journal (if any) is displaced.
func Begin() *Journal {
	j := &Journal{funcs: map[string][]Decision{}}
	current.Store(j)
	return j
}

// End uninstalls and returns the current journal; nil if none was active.
func End() *Journal {
	j := current.Load()
	current.Store(nil)
	return j
}

// Current returns the active journal, nil when recording is disabled. This
// is the one atomic load the disabled path costs.
func Current() *Journal { return current.Load() }

// Record appends one decision to fn's bucket. Nil-safe; instrumentation
// sites should still guard on Current() != nil so Decision construction
// (fmt formatting) is skipped entirely when recording is off.
func (j *Journal) Record(fn string, d Decision) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.funcs[fn] = append(j.funcs[fn], d)
	j.mu.Unlock()
	obs.Current().ExplainEvent(PhaseOf(d), fn, d.Kind+subject(d))
}

// RecordModule appends one module-level decision (inline retreats).
func (j *Journal) RecordModule(d Decision) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.module = append(j.module, d)
	j.mu.Unlock()
	obs.Current().ExplainEvent(PhaseOf(d), "", d.Kind+subject(d))
}

// SetModuleOrder fixes the bucket serialization order to the module's
// function order; core.PlanModule calls it at the start of planning.
// Buckets for functions not in the order (e.g. a caller inlining erased)
// are appended after it, sorted by name.
func (j *Journal) SetModuleOrder(names []string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.order = append(j.order[:0], names...)
	j.mu.Unlock()
}

// DropPlacements removes every save/restore decision recorded so far.
// codegen.Generate calls it on entry: the degradation loop may generate
// code several times per compile, and only the final generation's
// placements describe the program actually shipped.
func (j *Journal) DropPlacements() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for name, ds := range j.funcs {
		kept := ds[:0]
		for _, d := range ds {
			if d.Kind != KindSave && d.Kind != KindRestore {
				kept = append(kept, d)
			}
		}
		j.funcs[name] = kept
	}
}

// Reset clears everything recorded so far. CompileProfiled resets between
// the training and final builds so the artifact describes the program
// actually shipped; the pipeline resets before an inline retreat's rebuild
// for the same reason (re-recording the retreat itself afterwards).
func (j *Journal) Reset() {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.funcs = map[string][]Decision{}
	j.module = nil
	j.order = nil
	j.mu.Unlock()
}

// PhaseOf maps a decision to the pipeline phase whose trace span owns it:
// planning decisions nest under the plan spans, inliner verdicts under the
// inline span, and everything recorded at codegen time or by the
// degradation ladder under the top-level compile span.
func PhaseOf(d Decision) string {
	switch d.Kind {
	case KindInline, KindInlineRefuse:
		return "inline"
	case KindDemote, KindDiscard:
		return "compile"
	case KindSave, KindRestore:
		// All save/restore records are cut at codegen time (plan-driven
		// sites, around-call traffic, the RA slot), under the compile span.
		return "compile"
	default:
		return "plan"
	}
}

// subject is the short trace-event suffix identifying what the decision is
// about.
func subject(d Decision) string {
	switch {
	case d.Reg != "":
		return " " + d.Reg
	case d.Callee != "":
		return " " + d.Callee
	default:
		return ""
	}
}
