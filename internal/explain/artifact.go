package explain

import (
	"fmt"
	"sort"
	"strings"
)

// Artifact is the journal's serializable form: per-procedure decision lists
// in module order, then module-level decisions. This is what chowcc -json
// attaches to obs.CompileReport and what cmd/explaindiff consumes.
type Artifact struct {
	Procs []ProcJournal `json:"procs"`
	// Module holds module-level decisions (the inline retreat); empty for
	// ordinary compiles.
	Module []Decision `json:"module,omitempty"`
}

// ProcJournal is one procedure's decisions, in the order they were taken:
// classification, coloring (spills/splits), the §6 wrap choices, linkage
// publication (call sites, summary, parameters), save/restore placement,
// then any codegen-time around-call and return-address traffic.
type ProcJournal struct {
	Func      string     `json:"func"`
	Decisions []Decision `json:"decisions"`
}

// Artifact snapshots the journal. Buckets serialize in module order;
// buckets for functions outside it (an inlined-away caller) follow, sorted
// by name, so the output is a pure function of the decisions recorded.
func (j *Journal) Artifact() *Artifact {
	a := &Artifact{Procs: []ProcJournal{}}
	if j == nil {
		return a
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	emitted := make(map[string]bool, len(j.order))
	for _, name := range j.order {
		emitted[name] = true
		if ds := j.funcs[name]; len(ds) > 0 {
			a.Procs = append(a.Procs, ProcJournal{Func: name, Decisions: append([]Decision(nil), ds...)})
		}
	}
	var rest []string
	for name, ds := range j.funcs {
		if !emitted[name] && len(ds) > 0 {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		a.Procs = append(a.Procs, ProcJournal{Func: name, Decisions: append([]Decision(nil), j.funcs[name]...)})
	}
	a.Module = append([]Decision(nil), j.module...)
	return a
}

// Proc returns the named procedure's journal, nil when absent.
func (a *Artifact) Proc(name string) *ProcJournal {
	for i := range a.Procs {
		if a.Procs[i].Func == name {
			return &a.Procs[i]
		}
	}
	return nil
}

// Decisions returns every decision across the artifact (module-level last).
func (a *Artifact) Decisions() []Decision {
	var out []Decision
	for _, p := range a.Procs {
		out = append(out, p.Decisions...)
	}
	return append(out, a.Module...)
}

// Narrative renders the artifact as the per-procedure table chowcc -explain
// prints. A non-empty proc filters to that procedure (unknown names render
// a one-line notice so a typo is visible rather than silent).
func (a *Artifact) Narrative(proc string) string {
	var b strings.Builder
	if proc != "" {
		p := a.Proc(proc)
		if p == nil {
			fmt.Fprintf(&b, "explain: no decisions recorded for procedure %q\n", proc)
			return b.String()
		}
		writeProc(&b, p)
		return b.String()
	}
	for i := range a.Procs {
		writeProc(&b, &a.Procs[i])
	}
	if len(a.Module) > 0 {
		b.WriteString("module:\n")
		for _, d := range a.Module {
			writeDecision(&b, d)
		}
	}
	return b.String()
}

func writeProc(b *strings.Builder, p *ProcJournal) {
	fmt.Fprintf(b, "%s: %d decision(s)\n", p.Func, len(p.Decisions))
	for _, d := range p.Decisions {
		writeDecision(b, d)
	}
}

func writeDecision(b *strings.Builder, d Decision) {
	subj := d.Reg
	if d.Callee != "" {
		if subj != "" {
			subj += " "
		}
		subj += d.Callee
	}
	if d.Block != "" {
		subj += "@" + d.Block
	}
	fmt.Fprintf(b, "  %-14s %-18s %-12s", d.Kind, subj, d.Cause)
	if d.Freq != 0 {
		fmt.Fprintf(b, " freq=%-10.4g", d.Freq)
	} else {
		fmt.Fprintf(b, " %-15s", "")
	}
	if d.Detail != "" {
		fmt.Fprintf(b, " %s", d.Detail)
	}
	b.WriteString("\n")
}
