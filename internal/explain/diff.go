package explain

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Cross-artifact attribution: given two journals of the same program under
// different configurations (mode B vs C, pre- vs post-inline), Diff aligns
// their save/restore placement decisions by (procedure, kind, register,
// block) and predicts the change in executed save/restore memory
// operations as the frequency-weighted difference of the two placements.
//
// Under the simulator's cost model every load and store costs one cycle,
// so the predicted operation delta is also the predicted cycle delta for
// the pixie SaveRestoreLS bucket — explaindiff compares it against the
// measured delta from two `experiments`/chowcc runs and reports how much
// of the measurement the named decisions account for. With measured block
// frequencies (-pgo) the prediction is exact up to blocks whose counts
// changed between runs, i.e. normally 100%.

// SiteDelta is one save/restore site whose expected executions changed.
type SiteDelta struct {
	Kind  string  `json:"kind"`
	Reg   string  `json:"reg"`
	Block string  `json:"block,omitempty"`
	Cause string  `json:"cause,omitempty"`
	FreqA float64 `json:"freq_a"`
	FreqB float64 `json:"freq_b"`
}

// Ops is the site's predicted executed-operation delta (B minus A).
func (s *SiteDelta) Ops() float64 { return s.FreqB - s.FreqA }

// FuncDelta collects one procedure's changed decisions.
type FuncDelta struct {
	Func string `json:"func"`
	// Ops is the procedure's predicted save/restore operation delta.
	Ops   float64     `json:"ops"`
	Sites []SiteDelta `json:"sites"`
	// Context lists the non-placement decisions that changed — classify
	// flips, §6 wrap flips, renegotiated parameters, inliner verdicts —
	// the "why" behind the placement deltas and the linkage-cycle change.
	Context []string `json:"context,omitempty"`
}

// Diff is the full attribution report.
type Diff struct {
	Funcs []FuncDelta `json:"funcs"`
	// PredictedOps is the whole-program predicted save/restore operation
	// (= cycle) delta, B minus A.
	PredictedOps float64 `json:"predicted_save_restore_ops"`
}

type siteKey struct {
	fn, kind, reg, block string
}

// DiffArtifacts attributes the placement differences between a and b.
func DiffArtifacts(a, b *Artifact) *Diff {
	freqA, causeA := siteIndex(a)
	freqB, causeB := siteIndex(b)

	// Procedure order: b's module order first, then procedures only a saw.
	var order []string
	seen := map[string]bool{}
	for _, p := range b.Procs {
		order = append(order, p.Func)
		seen[p.Func] = true
	}
	for _, p := range a.Procs {
		if !seen[p.Func] {
			order = append(order, p.Func)
			seen[p.Func] = true
		}
	}

	byFn := map[string][]siteKey{}
	for k := range freqA {
		byFn[k.fn] = append(byFn[k.fn], k)
	}
	for k := range freqB {
		if _, ok := freqA[k]; !ok {
			byFn[k.fn] = append(byFn[k.fn], k)
		}
	}

	d := &Diff{}
	for _, fn := range order {
		keys := byFn[fn]
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].kind != keys[j].kind {
				return keys[i].kind < keys[j].kind
			}
			if keys[i].reg != keys[j].reg {
				return keys[i].reg < keys[j].reg
			}
			return keys[i].block < keys[j].block
		})
		fd := FuncDelta{Func: fn}
		for _, k := range keys {
			fa, fb := freqA[k], freqB[k]
			if fa == fb {
				continue
			}
			cause := causeB[k]
			if cause == "" {
				cause = causeA[k]
			}
			fd.Sites = append(fd.Sites, SiteDelta{
				Kind: k.kind, Reg: k.reg, Block: k.block, Cause: cause,
				FreqA: fa, FreqB: fb,
			})
			fd.Ops += fb - fa
		}
		fd.Context = contextLines(a.Proc(fn), b.Proc(fn))
		if len(fd.Sites) > 0 || len(fd.Context) > 0 {
			d.Funcs = append(d.Funcs, fd)
			d.PredictedOps += fd.Ops
		}
	}
	return d
}

// siteIndex sums expected executions per save/restore site and remembers
// each site's recorded cause. Multiple decisions on one key (a site emitted
// in several degradation rounds, around-call saves at two calls in one
// block) accumulate, matching how often the operation actually executes.
func siteIndex(a *Artifact) (map[siteKey]float64, map[siteKey]string) {
	freq := map[siteKey]float64{}
	cause := map[siteKey]string{}
	for _, p := range a.Procs {
		for _, dec := range p.Decisions {
			if dec.Kind != KindSave && dec.Kind != KindRestore {
				continue
			}
			k := siteKey{fn: p.Func, kind: dec.Kind, reg: dec.Reg, block: dec.Block}
			freq[k] += dec.Freq
			cause[k] = dec.Cause
		}
	}
	return freq, cause
}

// maxContext caps the context lines per procedure in the rendered report.
const maxContext = 8

// contextLines names the non-placement decisions that differ between the
// two journals of one procedure.
func contextLines(pa, pb *ProcJournal) []string {
	countA := contextIndex(pa)
	countB := contextIndex(pb)
	var keys []string
	seen := map[string]bool{}
	for k := range countB {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range countA {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var out []string
	for _, k := range keys {
		na, nb := countA[k], countB[k]
		switch {
		case na == nb:
		case na == 0:
			out = append(out, "+ "+k)
		case nb == 0:
			out = append(out, "- "+k)
		default:
			out = append(out, fmt.Sprintf("± %s (%d -> %d)", k, na, nb))
		}
	}
	return out
}

func contextIndex(p *ProcJournal) map[string]int {
	out := map[string]int{}
	if p == nil {
		return out
	}
	for _, d := range p.Decisions {
		switch d.Kind {
		case KindSave, KindRestore:
			continue
		}
		key := d.Kind
		if d.Reg != "" {
			key += " " + d.Reg
		}
		if d.Callee != "" {
			key += " " + d.Callee
		}
		if d.Block != "" {
			key += "@" + d.Block
		}
		if d.Cause != "" {
			key += " [" + d.Cause + "]"
		}
		out[key]++
	}
	return out
}

// Attribution reports what fraction (percent, clamped to [0,100]) of the
// measured save/restore delta the predicted decision deltas account for. A
// zero measurement is fully attributed exactly when nothing was predicted.
func (d *Diff) Attribution(measured float64) float64 {
	if measured == 0 {
		if d.PredictedOps == 0 {
			return 100
		}
		return 0
	}
	pct := 100 * (1 - math.Abs(d.PredictedOps-measured)/math.Abs(measured))
	if pct < 0 {
		return 0
	}
	return pct
}

// Format renders the report. aName/bName label the two inputs; measured is
// the save/restore LS delta from the two runs' pixie stats when both
// documents carried stats (haveMeasured false renders prediction only).
func (d *Diff) Format(aName, bName string, measured float64, haveMeasured bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "explaindiff: %s -> %s\n", aName, bName)
	if len(d.Funcs) == 0 {
		b.WriteString("no decision differences\n")
	}
	for _, fd := range d.Funcs {
		fmt.Fprintf(&b, "%s: %+.6g save/restore ops\n", fd.Func, fd.Ops)
		for _, s := range fd.Sites {
			fmt.Fprintf(&b, "  %-8s %-5s @%-8s %-12s %12.6g -> %-12.6g (%+.6g ops)\n",
				s.Kind, s.Reg, s.Block, s.Cause, s.FreqA, s.FreqB, s.Ops())
		}
		ctx := fd.Context
		more := 0
		if len(ctx) > maxContext {
			more = len(ctx) - maxContext
			ctx = ctx[:maxContext]
		}
		for _, c := range ctx {
			fmt.Fprintf(&b, "  because: %s\n", c)
		}
		if more > 0 {
			fmt.Fprintf(&b, "  because: ... %d more changed decision(s)\n", more)
		}
	}
	fmt.Fprintf(&b, "predicted save/restore delta: %+.6g ops (= cycles)\n", d.PredictedOps)
	if haveMeasured {
		fmt.Fprintf(&b, "measured  save/restore delta: %+.6g cycles (%.1f%% attributed to the decisions above)\n",
			measured, d.Attribution(measured))
	}
	return b.String()
}
