package progen

import (
	"strings"
	"testing"
)

func TestDeterministic(t *testing.T) {
	a := Generate(42, DefaultConfig())
	b := Generate(42, DefaultConfig())
	if a != b {
		t.Fatal("same seed must generate the same program")
	}
	c := Generate(43, DefaultConfig())
	if a == c {
		t.Fatal("different seeds should almost surely differ")
	}
}

func TestHasExpectedShape(t *testing.T) {
	src := Generate(7, DefaultConfig())
	if !strings.Contains(src, "func main()") {
		t.Error("no main")
	}
	if !strings.Contains(src, "func f0(") {
		t.Error("no generated functions")
	}
	if !strings.Contains(src, "print(") {
		t.Error("no output: differential tests would be vacuous")
	}
}

func TestIndexAlwaysMasked(t *testing.T) {
	// Every array subscript must be a literal or a masked expression;
	// scan for the tell-tale pattern.
	for seed := int64(0); seed < 30; seed++ {
		src := Generate(seed, DefaultConfig())
		for i := 0; i < len(src); i++ {
			if src[i] != '[' {
				continue
			}
			j := i + 1
			depth := 1
			for j < len(src) && depth > 0 {
				if src[j] == '[' {
					depth++
				}
				if src[j] == ']' {
					depth--
				}
				j++
			}
			idx := src[i+1 : j-1]
			numeric := true
			for _, ch := range idx {
				if ch < '0' || ch > '9' {
					numeric = false
					break
				}
			}
			if !numeric && !strings.Contains(idx, "%") {
				t.Fatalf("seed %d: unmasked index %q", seed, idx)
			}
		}
	}
}

func TestNoDivisionByVariables(t *testing.T) {
	// Division and remainder must always have constant divisors.
	for seed := int64(0); seed < 30; seed++ {
		src := Generate(seed, DefaultConfig())
		for _, op := range []string{"/ ", "% "} {
			k := 0
			for {
				i := strings.Index(src[k:], op)
				if i < 0 {
					break
				}
				k += i + len(op)
				ch := src[k]
				if ch < '0' || ch > '9' {
					t.Fatalf("seed %d: non-constant divisor near %q", seed, src[k-8:k+4])
				}
			}
		}
	}
}
