// Package progen generates random, terminating, trap-free CW programs for
// differential testing: whatever the compiler does, the compiled program
// must print exactly what the reference interpreter prints.
//
// The generator guarantees well-definedness by construction: every variable
// is initialized before use, loop induction variables are never reassigned
// in loop bodies, array indices are masked into range, divisors are nonzero
// constants, recursion always decreases a guarded counter, and
// function-typed globals are bound before any indirect call.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config tunes program shape.
type Config struct {
	Funcs     int // number of functions besides main
	Globals   int // scalar globals
	Arrays    int // global arrays
	MaxStmts  int // statements per block
	MaxDepth  int // statement nesting depth
	MaxExpr   int // expression depth
	MaxParams int
	FuncVars  int  // function-typed globals for indirect calls
	Recursion bool // allow self-recursive functions
	ForceExt  bool // unused hook for extern decls (not generated: they trap)
}

// DefaultConfig returns a medium-size program shape.
func DefaultConfig() Config {
	return Config{
		Funcs:     6,
		Globals:   4,
		Arrays:    2,
		MaxStmts:  5,
		MaxDepth:  3,
		MaxExpr:   3,
		MaxParams: 4,
		FuncVars:  2,
		Recursion: true,
	}
}

type fn struct {
	name    string
	params  int
	returns bool
	rec     bool // self-recursive: first param is the decreasing guard
}

type generator struct {
	r   *rand.Rand
	cfg Config
	b   strings.Builder

	globals []string
	arrays  []string // name:size encoded separately
	arrLen  map[string]int
	funcs   []fn
	fvars   []string // function-typed globals
	fvarSig []int    // parameter count of each function var's signature

	// Per-function state.
	locals    []string
	frozen    map[string]bool // loop induction vars: not assignable
	depth     int
	exprDepth int
	cur       fn
	nextLocal int
}

// Generate produces a program from the seed.
func Generate(seed int64, cfg Config) string {
	g := &generator{r: rand.New(rand.NewSource(seed)), cfg: cfg, arrLen: map[string]int{}}
	g.program()
	return g.b.String()
}

func (g *generator) w(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
}

func (g *generator) program() {
	for i := 0; i < g.cfg.Globals; i++ {
		name := fmt.Sprintf("g%d", i)
		g.globals = append(g.globals, name)
		g.w("var %s int;\n", name)
	}
	for i := 0; i < g.cfg.Arrays; i++ {
		name := fmt.Sprintf("arr%d", i)
		size := 4 + g.r.Intn(12)
		g.arrays = append(g.arrays, name)
		g.arrLen[name] = size
		g.w("var %s [%d]int;\n", name, size)
	}
	// Function-typed globals: one-int-param signatures so any unary
	// function can be bound.
	for i := 0; i < g.cfg.FuncVars; i++ {
		name := fmt.Sprintf("fv%d", i)
		g.fvars = append(g.fvars, name)
		g.fvarSig = append(g.fvarSig, 1)
		g.w("var %s func(int) int;\n", name)
	}
	g.w("\n")
	for i := 0; i < g.cfg.Funcs; i++ {
		g.function(i)
	}
	g.mainFunc()
}

func (g *generator) function(i int) {
	f := fn{
		name:    fmt.Sprintf("f%d", i),
		params:  g.r.Intn(g.cfg.MaxParams + 1),
		returns: true,
	}
	if g.cfg.Recursion && g.r.Intn(4) == 0 {
		f.rec = true
		if f.params == 0 {
			f.params = 1
		}
	}
	g.funcs = append(g.funcs, f)
	g.cur = f
	g.locals = nil
	g.frozen = map[string]bool{}
	g.nextLocal = 0

	g.w("func %s(", f.name)
	for p := 0; p < f.params; p++ {
		if p > 0 {
			g.w(", ")
		}
		pn := fmt.Sprintf("p%d", p)
		g.w("%s int", pn)
		g.locals = append(g.locals, pn)
	}
	g.w(") int {\n")
	if f.rec {
		// Guarded descent: the recursive call sites use p0 - 1.
		g.w("    if (p0 <= 0) { return %d; }\n", g.r.Intn(20))
	}
	g.block(1)
	g.w("    return %s;\n", g.expr(0))
	g.w("}\n\n")
}

func (g *generator) mainFunc() {
	g.cur = fn{name: "main"}
	g.locals = nil
	g.frozen = map[string]bool{}
	g.nextLocal = 0
	g.w("func main() {\n")
	// Bind every function variable before anything can call through it.
	for i, fv := range g.fvars {
		target := g.pickFuncWithParams(g.fvarSig[i])
		if target == "" {
			// Guaranteed fallback: an identity-ish expression function must
			// exist; synthesize one binding to the first unary function or
			// skip (call sites check emptiness too).
			continue
		}
		g.w("    %s = %s;\n", fv, target)
	}
	g.block(1)
	for i := 0; i < 3; i++ {
		g.w("    print(%s);\n", g.expr(0))
	}
	g.w("}\n")
}

func (g *generator) pickFuncWithParams(n int) string {
	var matches []string
	for _, f := range g.funcs {
		if f.params == n && !f.rec {
			matches = append(matches, f.name)
		}
	}
	// Recursive functions are never bound to function variables: their
	// guard argument would be an arbitrary computed value, making recursion
	// depth unbounded.
	if len(matches) == 0 {
		return ""
	}
	return matches[g.r.Intn(len(matches))]
}

func (g *generator) indent(depth int) string { return strings.Repeat("    ", depth) }

// block emits statements at the given depth. Locals declared inside go out
// of scope when the block ends, so the visible-locals list is restored.
func (g *generator) block(depth int) {
	saved := len(g.locals)
	n := 1 + g.r.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(depth)
	}
	g.locals = g.locals[:saved]
}

func (g *generator) stmt(depth int) {
	ind := g.indent(depth)
	roll := g.r.Intn(100)
	switch {
	case roll < 20: // new local
		name := fmt.Sprintf("v%d_%d", depth, g.nextLocal)
		g.nextLocal++
		g.w("%svar %s int;\n", ind, name)
		g.w("%s%s = %s;\n", ind, name, g.expr(0))
		g.locals = append(g.locals, name)
	case roll < 45: // assignment
		tgt := g.assignable()
		if tgt == "" {
			g.w("%sprint(%s);\n", ind, g.expr(0))
			return
		}
		g.w("%s%s = %s;\n", ind, tgt, g.expr(0))
	case roll < 55 && depth < g.cfg.MaxDepth: // if
		g.w("%sif (%s) {\n", ind, g.cond())
		g.block(depth + 1)
		if g.r.Intn(2) == 0 {
			g.w("%s} else {\n", ind)
			g.block(depth + 1)
		}
		g.w("%s}\n", ind)
	case roll < 65 && depth < g.cfg.MaxDepth: // bounded for loop
		iv := fmt.Sprintf("i%d_%d", depth, g.nextLocal)
		g.nextLocal++
		g.w("%svar %s int;\n", ind, iv)
		g.locals = append(g.locals, iv)
		g.frozen[iv] = true
		bound := 2 + g.r.Intn(8)
		g.w("%sfor (%s = 0; %s < %d; %s = %s + 1) {\n", ind, iv, iv, bound, iv, iv)
		g.block(depth + 1)
		if g.r.Intn(4) == 0 {
			g.w("%s    if (%s == %d) { break; }\n", ind, iv, g.r.Intn(bound))
		}
		g.w("%s}\n", ind)
		g.frozen[iv] = false
	case roll < 75: // call statement
		call := g.callExpr(0)
		if call == "" {
			g.w("%sprint(%s);\n", ind, g.expr(0))
			return
		}
		if g.r.Intn(2) == 0 {
			g.w("%sprint(%s);\n", ind, call)
		} else {
			tgt := g.assignable()
			if tgt == "" {
				g.w("%sprint(%s);\n", ind, call)
			} else {
				g.w("%s%s = %s;\n", ind, tgt, call)
			}
		}
	case roll < 85 && len(g.arrays) > 0: // array store
		arr := g.arrays[g.r.Intn(len(g.arrays))]
		g.w("%s%s[%s] = %s;\n", ind, arr, g.maskedIndex(arr), g.expr(0))
	default: // print
		g.w("%sprint(%s);\n", ind, g.expr(0))
	}
}

// assignable picks a mutable variable (never a frozen induction variable).
func (g *generator) assignable() string {
	var cands []string
	for _, l := range g.locals {
		if !g.frozen[l] {
			cands = append(cands, l)
		}
	}
	cands = append(cands, g.globals...)
	if len(cands) == 0 {
		return ""
	}
	return cands[g.r.Intn(len(cands))]
}

// maskedIndex produces an index expression guaranteed in [0, len).
func (g *generator) maskedIndex(arr string) string {
	n := g.arrLen[arr]
	if g.r.Intn(2) == 0 {
		return fmt.Sprintf("%d", g.r.Intn(n))
	}
	return fmt.Sprintf("((%s %% %d + %d) %% %d)", g.expr(1), n, n, n)
}

func (g *generator) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	c := fmt.Sprintf("%s %s %s", g.expr(1), ops[g.r.Intn(len(ops))], g.expr(1))
	switch g.r.Intn(4) {
	case 0:
		c = fmt.Sprintf("%s && %s", c, g.cond0())
	case 1:
		c = fmt.Sprintf("%s || %s", c, g.cond0())
	case 2:
		c = fmt.Sprintf("!(%s)", c)
	}
	return c
}

func (g *generator) cond0() string {
	ops := []string{"<", ">", "=="}
	return fmt.Sprintf("%s %s %s", g.expr(2), ops[g.r.Intn(len(ops))], g.expr(2))
}

// expr generates an int expression. depth bounds recursion.
func (g *generator) expr(depth int) string {
	if depth >= g.cfg.MaxExpr {
		return g.leaf()
	}
	switch g.r.Intn(10) {
	case 0, 1, 2:
		return g.leaf()
	case 3, 4:
		op := []string{"+", "-", "*"}[g.r.Intn(3)]
		return fmt.Sprintf("(%s %s %s)", g.expr(depth+1), op, g.expr(depth+1))
	case 5:
		// Division by a nonzero constant only.
		d := 1 + g.r.Intn(9)
		op := "/"
		if g.r.Intn(2) == 0 {
			op = "%"
		}
		return fmt.Sprintf("(%s %s %d)", g.expr(depth+1), op, d)
	case 6:
		if len(g.arrays) > 0 {
			arr := g.arrays[g.r.Intn(len(g.arrays))]
			return fmt.Sprintf("%s[%s]", arr, g.maskedIndex(arr))
		}
		return g.leaf()
	case 7:
		if c := g.callExpr(depth); c != "" {
			return c
		}
		return g.leaf()
	case 8:
		return fmt.Sprintf("(-%s)", g.expr(depth+1))
	default:
		ops := []string{"<", "<=", "==", "!="}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth+1), ops[g.r.Intn(len(ops))], g.expr(depth+1))
	}
}

func (g *generator) leaf() string {
	choices := 2 + len(g.locals) + len(g.globals)
	k := g.r.Intn(choices)
	switch {
	case k == 0 || k == 1:
		return fmt.Sprintf("%d", g.r.Intn(41)-20)
	case k-2 < len(g.locals):
		return g.locals[k-2]
	default:
		return g.globals[k-2-len(g.locals)]
	}
}

// callExpr builds a call to an already-defined function (keeping the static
// call graph acyclic except for guarded self-recursion), or through a bound
// function variable. Returns "" when nothing is callable. Argument
// expressions continue at depth+1 so nested calls cannot recurse without
// bound.
func (g *generator) callExpr(depth int) string {
	if depth >= g.cfg.MaxExpr {
		return ""
	}
	argDepth := depth + 1
	// Inside f_i we may call f_0..f_{i-1}; recursive functions also call
	// themselves with a decreasing guard.
	var cands []fn
	for _, f := range g.funcs {
		if f.name == g.cur.name {
			break
		}
		cands = append(cands, f)
	}
	self := g.cur.rec && g.r.Intn(3) == 0
	useFvar := len(g.fvars) > 0 && g.cur.name == "main" && g.r.Intn(4) == 0
	switch {
	case self:
		args := []string{"(p0 - 1)"}
		for p := 1; p < g.cur.params; p++ {
			args = append(args, g.expr(argDepth))
		}
		return fmt.Sprintf("%s(%s)", g.cur.name, strings.Join(args, ", "))
	case useFvar:
		i := g.r.Intn(len(g.fvars))
		if g.pickFuncWithParams(g.fvarSig[i]) == "" {
			return "" // variable would be unbound
		}
		return fmt.Sprintf("%s(%s)", g.fvars[i], g.expr(argDepth))
	case len(cands) > 0:
		f := cands[g.r.Intn(len(cands))]
		args := make([]string, f.params)
		for p := range args {
			args[p] = g.expr(argDepth)
		}
		if f.rec {
			// Keep the guard small so recursion stays shallow.
			args[0] = fmt.Sprintf("%d", g.r.Intn(6))
		}
		return fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
	}
	return ""
}
