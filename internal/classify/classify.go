// Package classify maps errors from the compile/run surfaces to failure
// classes shared by every front door: chowcc turns the class into a
// process exit code, the chowd daemon turns the same class into an HTTP
// status. Keeping the mapping in one place (below chow88 in the import
// graph, so internal packages can use it too) means a script driving
// chowcc and a client driving chowd triage the same failure the same way.
package classify

import (
	"context"
	"errors"

	"chow88/internal/codegen"
	"chow88/internal/front"
	"chow88/internal/inline"
	"chow88/internal/mach"
	"chow88/internal/pipeline"
	"chow88/internal/sim"
)

// Exit codes, one per failure class (chowcc exits with these directly).
const (
	ExitOK        = 0
	ExitInternal  = 1
	ExitUsage     = 2
	ExitParse     = 3
	ExitSema      = 4
	ExitValidate  = 5
	ExitCodegen   = 6
	ExitTrap      = 7
	ExitBudget    = 8
	ExitDeadline  = 9
	ExitBadEngine = 10
	ExitBadBudget = 11
	ExitBadConv   = 12
)

// Error maps an error from Compile/Run (or any of their variants) to its
// failure class: the chowcc exit code and the label of the one-line
// diagnostic. Unrecognized errors are internal errors.
func Error(err error) (code int, label string) {
	var se *front.StageError
	var ve *pipeline.ValidationError
	var fe *codegen.FuncError
	var trap *sim.Trap
	var ce *mach.ConfigError
	switch {
	case errors.As(err, &ce):
		return ExitBadConv, "bad convention"
	case errors.As(err, &se):
		switch {
		case se.Recovered:
			return ExitInternal, "internal error"
		case se.Stage == "parse":
			return ExitParse, "parse error"
		case se.Stage == "sema":
			return ExitSema, "semantic error"
		default: // lower/opt failures are compiler bugs
			return ExitInternal, "internal error"
		}
	case errors.As(err, &ve):
		return ExitValidate, "linkage violation"
	case errors.As(err, &fe):
		return ExitCodegen, "codegen error"
	case errors.As(err, &trap):
		return ExitTrap, "machine trap"
	case errors.Is(err, sim.ErrLimit):
		return ExitBudget, "instruction budget"
	case errors.Is(err, sim.ErrDeadline),
		errors.Is(err, context.DeadlineExceeded):
		// sim.ErrDeadline is the simulator's own wall clock;
		// context.DeadlineExceeded arrives via pipeline.ErrCanceled when a
		// caller's deadline (chowd's per-request budget) expired mid-compile.
		return ExitDeadline, "deadline"
	case errors.Is(err, sim.ErrBadEngine):
		return ExitBadEngine, "bad engine"
	case errors.Is(err, inline.ErrBadBudget):
		return ExitBadBudget, "bad inline budget"
	}
	return ExitInternal, "internal error"
}

// HTTPStatus maps a failure class (an Exit* code) to the HTTP status the
// chowd daemon answers with. The classes partition cleanly: the program
// was unprocessable (422), the request itself was bad (400), the work blew
// its deadline (504), or the compiler broke (500). Admission-level
// statuses (413 oversized, 429 queue full, 503 draining) never reach the
// classifier — they are decided before a unit of work exists.
func HTTPStatus(code int) int {
	switch code {
	case ExitOK:
		return 200
	case ExitParse, ExitSema, ExitValidate, ExitTrap, ExitBudget:
		return 422
	case ExitUsage, ExitBadEngine, ExitBadBudget, ExitBadConv:
		return 400
	case ExitDeadline:
		return 504
	}
	return 500 // ExitInternal, ExitCodegen: the compiler's fault
}
