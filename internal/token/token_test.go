package token

import "testing"

func TestKindStrings(t *testing.T) {
	if Plus.String() != "+" || KwFunc.String() != "func" || Ident.String() != "identifier" {
		t.Error("kind names wrong")
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kinds need a fallback rendering")
	}
}

func TestKeywordsTable(t *testing.T) {
	if Keywords["while"] != KwWhile || Keywords["extern"] != KwExtern {
		t.Error("keyword table wrong")
	}
	if _, ok := Keywords["notakeyword"]; ok {
		t.Error("bogus keyword")
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: Ident, Lit: "abc", Pos: Pos{Line: 2, Col: 5}}
	if tok.String() != `identifier "abc"` {
		t.Errorf("got %s", tok)
	}
	if tok.Pos.String() != "2:5" {
		t.Errorf("pos = %s", tok.Pos)
	}
	if (Token{Kind: Semi}).String() != ";" {
		t.Error("operator token rendering wrong")
	}
}
