// Package token defines the lexical tokens of the CW language, the small
// C-like language used to drive the register-allocation experiments.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. The zero value is Illegal.
const (
	Illegal Kind = iota
	EOF

	// Literals and identifiers.
	Ident // foo
	Int   // 123

	// Operators and delimiters.
	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %

	Assign // =
	Eq     // ==
	Neq    // !=
	Lt     // <
	Leq    // <=
	Gt     // >
	Geq    // >=

	AndAnd // &&
	OrOr   // ||
	Not    // !

	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Comma    // ,
	Semi     // ;

	// Keywords.
	KwVar
	KwFunc
	KwInt
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwExtern
)

var kindNames = map[Kind]string{
	Illegal:  "illegal",
	EOF:      "eof",
	Ident:    "identifier",
	Int:      "int literal",
	Plus:     "+",
	Minus:    "-",
	Star:     "*",
	Slash:    "/",
	Percent:  "%",
	Assign:   "=",
	Eq:       "==",
	Neq:      "!=",
	Lt:       "<",
	Leq:      "<=",
	Gt:       ">",
	Geq:      ">=",
	AndAnd:   "&&",
	OrOr:     "||",
	Not:      "!",
	LParen:   "(",
	RParen:   ")",
	LBrace:   "{",
	RBrace:   "}",
	LBracket: "[",
	RBracket: "]",
	Comma:    ",",
	Semi:     ";",

	KwVar:      "var",
	KwFunc:     "func",
	KwInt:      "int",
	KwIf:       "if",
	KwElse:     "else",
	KwWhile:    "while",
	KwFor:      "for",
	KwReturn:   "return",
	KwBreak:    "break",
	KwContinue: "continue",
	KwExtern:   "extern",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"var":      KwVar,
	"func":     KwFunc,
	"int":      KwInt,
	"if":       KwIf,
	"else":     KwElse,
	"while":    KwWhile,
	"for":      KwFor,
	"return":   KwReturn,
	"break":    KwBreak,
	"continue": KwContinue,
	"extern":   KwExtern,
}

// Pos is a source position: 1-based line and column.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Lit  string // literal text for Ident and Int
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, Int:
		return fmt.Sprintf("%s %q", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}
