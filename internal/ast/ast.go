// Package ast defines the abstract syntax tree for the CW language.
//
// CW is a small C-like whole-program language with a single scalar type
// (int), fixed-size int arrays, first-class function references (used for
// indirect calls), and the usual structured control flow. It exists to give
// the register allocator realistic call-intensive programs to chew on.
package ast

import (
	"fmt"
	"strings"

	"chow88/internal/token"
)

// Type describes a CW type.
type Type struct {
	Kind    TypeKind
	ArrLen  int     // for ArrayType: number of elements
	Params  []*Type // for FuncType
	Returns bool    // for FuncType: returns an int
}

// TypeKind discriminates Type.
type TypeKind int

// The CW type kinds.
const (
	IntType TypeKind = iota
	ArrayType
	FuncType
	VoidType // function "return type" of procedures
)

// TInt is the canonical int type.
var TInt = &Type{Kind: IntType}

// TVoid is the canonical void (no value) type.
var TVoid = &Type{Kind: VoidType}

// Equal reports whether two types are structurally identical.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case ArrayType:
		return t.ArrLen == o.ArrLen
	case FuncType:
		if t.Returns != o.Returns || len(t.Params) != len(o.Params) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Equal(o.Params[i]) {
				return false
			}
		}
	}
	return true
}

// String renders the type in CW syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case IntType:
		return "int"
	case VoidType:
		return "void"
	case ArrayType:
		return fmt.Sprintf("[%d]int", t.ArrLen)
	case FuncType:
		var b strings.Builder
		b.WriteString("func(")
		for i, p := range t.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
		b.WriteString(")")
		if t.Returns {
			b.WriteString(" int")
		}
		return b.String()
	}
	return fmt.Sprintf("Type(%d)", int(t.Kind))
}

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// Program is a whole CW compilation unit.
type Program struct {
	Decls []Decl
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// VarDecl declares a global or local variable.
type VarDecl struct {
	Name    string
	Type    *Type
	NamePos token.Pos
}

func (d *VarDecl) Pos() token.Pos { return d.NamePos }
func (d *VarDecl) declNode()      {}

// FuncDecl declares a function. Extern functions have Body == nil and model
// separately-compiled code: the allocator must treat them as open.
type FuncDecl struct {
	Name    string
	Params  []*VarDecl
	Returns bool
	Body    *Block // nil for extern declarations
	Extern  bool
	NamePos token.Pos
}

func (d *FuncDecl) Pos() token.Pos { return d.NamePos }
func (d *FuncDecl) declNode()      {}

// Sig returns the function's type.
func (d *FuncDecl) Sig() *Type {
	t := &Type{Kind: FuncType, Returns: d.Returns}
	for _, p := range d.Params {
		t.Params = append(t.Params, p.Type)
	}
	return t
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a brace-delimited statement list (introduces a scope).
type Block struct {
	Stmts []Stmt
	LPos  token.Pos
}

func (s *Block) Pos() token.Pos { return s.LPos }
func (s *Block) stmtNode()      {}

// DeclStmt is a local variable declaration used as a statement.
type DeclStmt struct {
	Decl *VarDecl
}

func (s *DeclStmt) Pos() token.Pos { return s.Decl.Pos() }
func (s *DeclStmt) stmtNode()      {}

// AssignStmt assigns Rhs to the lvalue Lhs (an *Ident or *IndexExpr).
type AssignStmt struct {
	Lhs Expr
	Rhs Expr
}

func (s *AssignStmt) Pos() token.Pos { return s.Lhs.Pos() }
func (s *AssignStmt) stmtNode()      {}

// IfStmt is a conditional with optional else branch (possibly another If).
type IfStmt struct {
	Cond  Expr
	Then  *Block
	Else  Stmt // *Block, *IfStmt, or nil
	IfPos token.Pos
}

func (s *IfStmt) Pos() token.Pos { return s.IfPos }
func (s *IfStmt) stmtNode()      {}

// WhileStmt loops while Cond is nonzero.
type WhileStmt struct {
	Cond     Expr
	Body     *Block
	WhilePos token.Pos
}

func (s *WhileStmt) Pos() token.Pos { return s.WhilePos }
func (s *WhileStmt) stmtNode()      {}

// ForStmt is C-style: for (init; cond; post) body. Any clause may be nil.
type ForStmt struct {
	Init   Stmt // *AssignStmt or *ExprStmt or nil
	Cond   Expr // nil means true
	Post   Stmt // *AssignStmt or *ExprStmt or nil
	Body   *Block
	ForPos token.Pos
}

func (s *ForStmt) Pos() token.Pos { return s.ForPos }
func (s *ForStmt) stmtNode()      {}

// ReturnStmt returns from the enclosing function, with an optional value.
type ReturnStmt struct {
	Value  Expr // nil for plain return
	RetPos token.Pos
}

func (s *ReturnStmt) Pos() token.Pos { return s.RetPos }
func (s *ReturnStmt) stmtNode()      {}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ KwPos token.Pos }

func (s *BreakStmt) Pos() token.Pos { return s.KwPos }
func (s *BreakStmt) stmtNode()      {}

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ KwPos token.Pos }

func (s *ContinueStmt) Pos() token.Pos { return s.KwPos }
func (s *ContinueStmt) stmtNode()      {}

// ExprStmt evaluates an expression for its side effects (a call).
type ExprStmt struct{ X Expr }

func (s *ExprStmt) Pos() token.Pos { return s.X.Pos() }
func (s *ExprStmt) stmtNode()      {}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	Value  int64
	LitPos token.Pos
}

func (e *IntLit) Pos() token.Pos { return e.LitPos }
func (e *IntLit) exprNode()      {}

// Ident is a use of a named variable or function.
type Ident struct {
	Name    string
	NamePos token.Pos
}

func (e *Ident) Pos() token.Pos { return e.NamePos }
func (e *Ident) exprNode()      {}

// IndexExpr is arr[index].
type IndexExpr struct {
	Arr   *Ident
	Index Expr
}

func (e *IndexExpr) Pos() token.Pos { return e.Arr.Pos() }
func (e *IndexExpr) exprNode()      {}

// CallExpr calls Fun (a function name or a function-typed variable).
type CallExpr struct {
	Fun  *Ident
	Args []Expr
}

func (e *CallExpr) Pos() token.Pos { return e.Fun.Pos() }
func (e *CallExpr) exprNode()      {}

// BinaryExpr applies Op to X and Y. && and || short-circuit.
type BinaryExpr struct {
	Op   token.Kind
	X, Y Expr
}

func (e *BinaryExpr) Pos() token.Pos { return e.X.Pos() }
func (e *BinaryExpr) exprNode()      {}

// UnaryExpr applies Op (- or !) to X.
type UnaryExpr struct {
	Op    token.Kind
	X     Expr
	OpPos token.Pos
}

func (e *UnaryExpr) Pos() token.Pos { return e.OpPos }
func (e *UnaryExpr) exprNode()      {}
