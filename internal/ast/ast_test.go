package ast

import (
	"strings"
	"testing"

	"chow88/internal/token"
)

func TestTypeEqual(t *testing.T) {
	arr4 := &Type{Kind: ArrayType, ArrLen: 4}
	arr5 := &Type{Kind: ArrayType, ArrLen: 5}
	fn := &Type{Kind: FuncType, Params: []*Type{TInt}, Returns: true}
	fn2 := &Type{Kind: FuncType, Params: []*Type{TInt}, Returns: true}
	fnV := &Type{Kind: FuncType, Params: []*Type{TInt}}
	fn0 := &Type{Kind: FuncType, Returns: true}

	cases := []struct {
		a, b *Type
		want bool
	}{
		{TInt, TInt, true},
		{TInt, TVoid, false},
		{arr4, arr4, true},
		{arr4, arr5, false},
		{fn, fn2, true},
		{fn, fnV, false},
		{fn, fn0, false},
		{nil, nil, true},
		{TInt, nil, false},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: %v == %v -> %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	cases := map[string]*Type{
		"int":                TInt,
		"void":               TVoid,
		"[7]int":             {Kind: ArrayType, ArrLen: 7},
		"func(int, int) int": {Kind: FuncType, Params: []*Type{TInt, TInt}, Returns: true},
		"func()":             {Kind: FuncType},
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%v = %q, want %q", typ, got, want)
		}
	}
}

func TestExprString(t *testing.T) {
	e := &BinaryExpr{
		Op: token.Plus,
		X:  &IntLit{Value: 1},
		Y: &BinaryExpr{
			Op: token.Star,
			X:  &Ident{Name: "x"},
			Y:  &IndexExpr{Arr: &Ident{Name: "a"}, Index: &IntLit{Value: 2}},
		},
	}
	if got := ExprString(e); got != "(1 + (x * a[2]))" {
		t.Errorf("got %s", got)
	}
	call := &CallExpr{Fun: &Ident{Name: "f"}, Args: []Expr{&IntLit{Value: 3}, &Ident{Name: "y"}}}
	if got := ExprString(call); got != "f(3, y)" {
		t.Errorf("got %s", got)
	}
	neg := &UnaryExpr{Op: token.Minus, X: &IntLit{Value: 5}}
	if got := ExprString(neg); got != "(-5)" {
		t.Errorf("got %s", got)
	}
	not := &UnaryExpr{Op: token.Not, X: &Ident{Name: "b"}}
	if got := ExprString(not); got != "(!b)" {
		t.Errorf("got %s", got)
	}
}

func TestFuncSig(t *testing.T) {
	fd := &FuncDecl{
		Name:    "f",
		Params:  []*VarDecl{{Name: "a", Type: TInt}, {Name: "b", Type: TInt}},
		Returns: true,
	}
	sig := fd.Sig()
	if sig.Kind != FuncType || len(sig.Params) != 2 || !sig.Returns {
		t.Errorf("sig = %v", sig)
	}
}

func TestFormatProducesDeclarations(t *testing.T) {
	p := &Program{Decls: []Decl{
		&VarDecl{Name: "g", Type: TInt},
		&VarDecl{Name: "a", Type: &Type{Kind: ArrayType, ArrLen: 3}},
		&FuncDecl{Name: "ext", Extern: true, Returns: true},
		&FuncDecl{
			Name: "main",
			Body: &Block{Stmts: []Stmt{
				&AssignStmt{Lhs: &Ident{Name: "g"}, Rhs: &IntLit{Value: 4}},
				&ReturnStmt{},
			}},
		},
	}}
	out := Format(p)
	for _, want := range []string{"var g int;", "var a [3]int;", "extern func ext() int;", "g = 4;", "return;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
