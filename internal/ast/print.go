package ast

import (
	"fmt"
	"strings"

	"chow88/internal/token"
)

// Format renders the program back into CW source text. The output reparses
// to an equivalent tree, which the property tests rely on.
func Format(p *Program) string {
	var b strings.Builder
	for i, d := range p.Decls {
		if i > 0 {
			b.WriteByte('\n')
		}
		formatDecl(&b, d)
	}
	return b.String()
}

func formatDecl(b *strings.Builder, d Decl) {
	switch d := d.(type) {
	case *VarDecl:
		fmt.Fprintf(b, "var %s %s;\n", d.Name, d.Type)
	case *FuncDecl:
		if d.Extern {
			b.WriteString("extern ")
		}
		fmt.Fprintf(b, "func %s(", d.Name)
		for i, p := range d.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s %s", p.Name, p.Type)
		}
		b.WriteString(")")
		if d.Returns {
			b.WriteString(" int")
		}
		if d.Body == nil {
			b.WriteString(";\n")
			return
		}
		b.WriteString(" ")
		formatBlock(b, d.Body, 0)
		b.WriteByte('\n')
	default:
		fmt.Fprintf(b, "/* unknown decl %T */\n", d)
	}
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func formatBlock(b *strings.Builder, blk *Block, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		formatStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	formatStmtNoIndent(b, s, depth)
	b.WriteByte('\n')
}

func formatStmtNoIndent(b *strings.Builder, s Stmt, depth int) {
	switch s := s.(type) {
	case *DeclStmt:
		fmt.Fprintf(b, "var %s %s;", s.Decl.Name, s.Decl.Type)
	case *AssignStmt:
		fmt.Fprintf(b, "%s = %s;", ExprString(s.Lhs), ExprString(s.Rhs))
	case *IfStmt:
		fmt.Fprintf(b, "if (%s) ", ExprString(s.Cond))
		formatBlock(b, s.Then, depth)
		if s.Else != nil {
			b.WriteString(" else ")
			switch e := s.Else.(type) {
			case *Block:
				formatBlock(b, e, depth)
			case *IfStmt:
				formatStmtNoIndent(b, e, depth)
			}
		}
	case *WhileStmt:
		fmt.Fprintf(b, "while (%s) ", ExprString(s.Cond))
		formatBlock(b, s.Body, depth)
	case *ForStmt:
		b.WriteString("for (")
		if s.Init != nil {
			formatSimpleStmt(b, s.Init)
		}
		b.WriteString("; ")
		if s.Cond != nil {
			b.WriteString(ExprString(s.Cond))
		}
		b.WriteString("; ")
		if s.Post != nil {
			formatSimpleStmt(b, s.Post)
		}
		b.WriteString(") ")
		formatBlock(b, s.Body, depth)
	case *ReturnStmt:
		if s.Value != nil {
			fmt.Fprintf(b, "return %s;", ExprString(s.Value))
		} else {
			b.WriteString("return;")
		}
	case *BreakStmt:
		b.WriteString("break;")
	case *ContinueStmt:
		b.WriteString("continue;")
	case *ExprStmt:
		fmt.Fprintf(b, "%s;", ExprString(s.X))
	case *Block:
		formatBlock(b, s, depth)
	default:
		fmt.Fprintf(b, "/* unknown stmt %T */", s)
	}
}

// formatSimpleStmt renders an assignment or expression without the trailing
// semicolon, as used in for-clauses.
func formatSimpleStmt(b *strings.Builder, s Stmt) {
	switch s := s.(type) {
	case *AssignStmt:
		fmt.Fprintf(b, "%s = %s", ExprString(s.Lhs), ExprString(s.Rhs))
	case *ExprStmt:
		b.WriteString(ExprString(s.X))
	}
}

// ExprString renders an expression, fully parenthesizing compound
// subexpressions so precedence never needs reconstructing.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *Ident:
		return e.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", e.Arr.Name, ExprString(e.Index))
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", e.Fun.Name, strings.Join(args, ", "))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(e.X), e.Op, ExprString(e.Y))
	case *UnaryExpr:
		if e.Op == token.Minus {
			return fmt.Sprintf("(-%s)", ExprString(e.X))
		}
		return fmt.Sprintf("(!%s)", ExprString(e.X))
	}
	return fmt.Sprintf("/* unknown expr %T */", e)
}
