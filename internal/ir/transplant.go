package ir

import "fmt"

// TransplantFunc replaces dst's body with a deep copy of src's, remapping
// every cross-function and global reference by name onto dstMod's objects.
// Incremental recompilation uses it to drop a freshly mini-compiled
// function body into the working module without rebuilding anything else:
// the source function comes from a throwaway module whose other
// definitions are extern stubs, so only names connect it to the real one.
//
// dst keeps its Name and AddressTaken flag (the driver maintains those);
// Returns comes from src and Extern is cleared. Every referenced callee
// and global must exist in dstMod under the same name — the transplant is
// rejected (dst untouched) otherwise, and the driver falls back to a full
// rebuild.
func TransplantFunc(dstMod *Module, dst, src *Func) error {
	fmap := make(map[*Func]*Func)
	gmap := make(map[*Global]*Global)
	dstGlobals := make(map[string]*Global, len(dstMod.Globals))
	for _, g := range dstMod.Globals {
		dstGlobals[g.Name] = g
	}
	for _, b := range src.Blocks {
		for _, in := range b.Instrs {
			if in.Callee != nil {
				if _, ok := fmap[in.Callee]; !ok {
					t := dstMod.Lookup(in.Callee.Name)
					if t == nil {
						return fmt.Errorf("transplant %s: callee %s not in destination module", src.Name, in.Callee.Name)
					}
					fmap[in.Callee] = t
				}
			}
			for _, g := range []*Global{in.Global, in.Arr.Global} {
				if g == nil {
					continue
				}
				if _, ok := gmap[g]; !ok {
					t := dstGlobals[g.Name]
					if t == nil {
						return fmt.Errorf("transplant %s: global %s not in destination module", src.Name, g.Name)
					}
					if t.Addr != g.Addr || t.Size != g.Size {
						return fmt.Errorf("transplant %s: global %s laid out differently (addr %d/%d size %d/%d)",
							src.Name, g.Name, g.Addr, t.Addr, g.Size, t.Size)
					}
					gmap[g] = t
				}
			}
		}
	}
	dst.Params, dst.Blocks, dst.LocalArrays, dst.temps = nil, nil, nil, nil
	dst.Returns = src.Returns
	dst.Extern = false
	dst.nextTemp = src.nextTemp
	dst.nextBlock = src.nextBlock
	cloneFuncInto(src, dst, fmap, gmap)
	return nil
}
