package ir

// CloneModule returns a deep copy of m sharing no mutable state with the
// original: optimizing or allocating the copy leaves m frozen. All IDs,
// names, block ordering and operand structure are preserved exactly, so
// compiling the clone is byte-identical to compiling the original. This is
// what lets the front-end compile cache hand out a pristine pre-optimization
// module per compilation while keeping one master per source text.
func CloneModule(m *Module) *Module {
	out := NewModule()
	gmap := make(map[*Global]*Global, len(m.Globals))
	for _, g := range m.Globals {
		ng := *g
		out.Globals = append(out.Globals, &ng)
		gmap[g] = &ng
	}
	// Create all function shells first: instructions reference callees
	// anywhere in the module.
	fmap := make(map[*Func]*Func, len(m.Funcs))
	for _, f := range m.Funcs {
		nf := &Func{
			Name:         f.Name,
			Returns:      f.Returns,
			Extern:       f.Extern,
			AddressTaken: f.AddressTaken,
			nextTemp:     f.nextTemp,
			nextBlock:    f.nextBlock,
		}
		out.AddFunc(nf)
		fmap[f] = nf
	}
	for i, f := range m.Funcs {
		cloneFuncInto(f, out.Funcs[i], fmap, gmap)
	}
	return out
}

func cloneFuncInto(f, nf *Func, fmap map[*Func]*Func, gmap map[*Global]*Global) {
	tmap := make(map[*Temp]*Temp, len(f.temps))
	if f.temps != nil {
		nf.temps = make([]*Temp, len(f.temps))
		for i, t := range f.temps {
			nt := *t
			nf.temps[i] = &nt
			tmap[t] = &nt
		}
	}
	remapT := func(t *Temp) *Temp {
		if t == nil {
			return nil
		}
		if nt, ok := tmap[t]; ok {
			return nt
		}
		// Temp constructed outside NewTemp (hand-built IR): copy it once.
		nt := *t
		tmap[t] = &nt
		return &nt
	}
	remapOp := func(o Operand) Operand {
		o.Temp = remapT(o.Temp)
		return o
	}
	if f.Params != nil {
		nf.Params = make([]*Temp, len(f.Params))
		for i, p := range f.Params {
			nf.Params[i] = remapT(p)
		}
	}
	amap := make(map[*LocalArray]*LocalArray, len(f.LocalArrays))
	for _, a := range f.LocalArrays {
		na := *a
		nf.LocalArrays = append(nf.LocalArrays, &na)
		amap[a] = &na
	}
	bmap := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, Name: b.Name, LoopDepth: b.LoopDepth, ProfCount: b.ProfCount}
		nf.Blocks = append(nf.Blocks, nb)
		bmap[b] = nb
	}
	for _, b := range f.Blocks {
		nb := bmap[b]
		nb.Instrs = make([]*Instr, len(b.Instrs))
		for i, in := range b.Instrs {
			v := *in
			v.Dst = remapT(v.Dst)
			v.A = remapOp(v.A)
			v.B = remapOp(v.B)
			if in.Args != nil {
				v.Args = make([]Operand, len(in.Args))
				for j, a := range in.Args {
					v.Args[j] = remapOp(a)
				}
			}
			if v.Callee != nil {
				v.Callee = fmap[v.Callee]
			}
			if v.Global != nil {
				v.Global = gmap[v.Global]
			}
			if v.Arr.Global != nil {
				v.Arr.Global = gmap[v.Arr.Global]
			}
			if v.Arr.Local != nil {
				v.Arr.Local = amap[v.Arr.Local]
			}
			if v.Target != nil {
				v.Target = bmap[v.Target]
			}
			if v.Else != nil {
				v.Else = bmap[v.Else]
			}
			nb.Instrs[i] = &v
		}
		// Preserve the exact CFG edge ordering rather than recomputing it.
		for _, p := range b.Preds {
			nb.Preds = append(nb.Preds, bmap[p])
		}
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, bmap[s])
		}
	}
}
