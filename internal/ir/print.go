package ir

import (
	"fmt"
	"strings"
)

// String renders the instruction in a readable assembly-like form.
func (in *Instr) String() string {
	var b strings.Builder
	switch in.Op {
	case OpConst:
		fmt.Fprintf(&b, "%s = const %d", in.Dst, in.Imm)
	case OpCopy:
		fmt.Fprintf(&b, "%s = %s", in.Dst, in.A)
	case OpNeg:
		fmt.Fprintf(&b, "%s = neg %s", in.Dst, in.A)
	case OpNot:
		fmt.Fprintf(&b, "%s = not %s", in.Dst, in.A)
	case OpLoadG:
		fmt.Fprintf(&b, "%s = loadg %s", in.Dst, in.Global)
	case OpStoreG:
		fmt.Fprintf(&b, "storeg %s = %s", in.Global, in.A)
	case OpLoadIdx:
		fmt.Fprintf(&b, "%s = %s[%s]", in.Dst, in.Arr, in.A)
	case OpStoreIdx:
		fmt.Fprintf(&b, "%s[%s] = %s", in.Arr, in.A, in.B)
	case OpFuncAddr:
		fmt.Fprintf(&b, "%s = &%s", in.Dst, in.Callee.Name)
	case OpCall, OpCallInd:
		if in.Dst != nil {
			fmt.Fprintf(&b, "%s = ", in.Dst)
		}
		if in.Op == OpCall {
			fmt.Fprintf(&b, "call %s(", in.Callee.Name)
		} else {
			fmt.Fprintf(&b, "callind %s(", in.A)
		}
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteString(")")
	case OpPrint:
		fmt.Fprintf(&b, "print %s", in.A)
	case OpJmp:
		fmt.Fprintf(&b, "jmp %s", in.Target)
	case OpBr:
		fmt.Fprintf(&b, "br %s ? %s : %s", in.A, in.Target, in.Else)
	case OpRet:
		if in.retHasValue() {
			fmt.Fprintf(&b, "ret %s", in.A)
		} else {
			b.WriteString("ret")
		}
	default:
		fmt.Fprintf(&b, "%s = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	}
	return b.String()
}

// retHasValue distinguishes `ret` from `ret 0`: RetVoid stores no operand
// temp and Imm == 0 flags void. We encode "has value" in Imm for OpRet.
func (in *Instr) retHasValue() bool { return in.Op == OpRet && in.Imm == 1 }

// FuncString renders a whole function.
func FuncString(f *Func) string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.Name)
	}
	b.WriteString(")")
	if f.Returns {
		b.WriteString(" int")
	}
	b.WriteString(" {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:", blk.Name)
		if blk.LoopDepth > 0 {
			fmt.Fprintf(&b, "  ; depth %d", blk.LoopDepth)
		}
		b.WriteString("\n")
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "    %s\n", in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ModuleString renders a whole module.
func ModuleString(m *Module) string {
	var b strings.Builder
	for _, g := range m.Globals {
		if g.IsArray {
			fmt.Fprintf(&b, "global %s [%d]\n", g.Name, g.Size)
		} else {
			fmt.Fprintf(&b, "global %s\n", g.Name)
		}
	}
	for _, f := range m.Funcs {
		if f.Extern {
			fmt.Fprintf(&b, "extern func %s\n", f.Name)
			continue
		}
		b.WriteString(FuncString(f))
	}
	return b.String()
}
