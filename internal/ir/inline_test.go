package ir

import "testing"

// buildAddFunc makes `func add(a, b) { return a + b }`.
func buildAddFunc() *Func {
	f := NewFunc("add")
	f.Returns = true
	a := f.NewTemp("a", true)
	b := f.NewTemp("b", true)
	f.Params = []*Temp{a, b}
	r := f.NewTemp("", false)
	blk := f.NewBlock()
	op := TempOp(r)
	blk.Instrs = []*Instr{
		{Op: OpAdd, Dst: r, A: TempOp(a), B: TempOp(b)},
		NewRet(&op),
	}
	f.ComputeCFG()
	return f
}

// buildCaller makes `func main() { x = add(3, y); print(x) }` and returns
// the module, caller and call site.
func buildCaller(add *Func) (*Module, *Func, CallSite) {
	m := NewModule()
	m.AddFunc(add)
	main := NewFunc("main")
	m.AddFunc(main)
	y := main.NewTemp("y", true)
	x := main.NewTemp("x", true)
	blk := main.NewBlock()
	blk.Instrs = []*Instr{
		{Op: OpConst, Dst: y, Imm: 4},
		{Op: OpCall, Dst: x, Callee: add, Args: []Operand{ConstOp(3), TempOp(y)}},
		{Op: OpPrint, A: TempOp(x)},
		NewRet(nil),
	}
	main.ComputeCFG()
	return m, main, main.CallSites()[0]
}

func TestInlineCallBasic(t *testing.T) {
	add := buildAddFunc()
	m, main, site := buildCaller(add)
	if err := InlineCall(main, site, add); err != nil {
		t.Fatal(err)
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("inlined module fails verify: %v", err)
	}
	if n := len(main.CallSites()); n != 0 {
		t.Errorf("call survived inlining: %d sites", n)
	}
	// The callee body is untouched and still verifies.
	if err := Verify(add); err != nil {
		t.Errorf("callee damaged: %v", err)
	}
	// No caller instruction may reference a callee temp or block.
	calleeTemps := map[*Temp]bool{}
	for _, ct := range add.Temps() {
		calleeTemps[ct] = true
	}
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			for _, u := range in.Uses(nil) {
				if calleeTemps[u] {
					t.Fatalf("caller uses callee temp %s", u)
				}
			}
			if in.Dst != nil && calleeTemps[in.Dst] {
				t.Fatalf("caller writes callee temp %s", in.Dst)
			}
		}
	}
	// The inlined body must feed the result: an add of the bound params
	// into a fresh temp, copied to x.
	var sawAdd, sawResultCopy bool
	x := main.Temps()[1]
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpAdd {
				sawAdd = true
			}
			if in.Op == OpCopy && in.Dst == x {
				sawResultCopy = true
			}
		}
	}
	if !sawAdd || !sawResultCopy {
		t.Errorf("spliced body incomplete: add=%v resultcopy=%v", sawAdd, sawResultCopy)
	}
}

func TestInlineCallConstArgMaterializes(t *testing.T) {
	add := buildAddFunc()
	_, main, site := buildCaller(add)
	if err := InlineCall(main, site, add); err != nil {
		t.Fatal(err)
	}
	// The const argument 3 must become an OpConst into the cloned param.
	found := false
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpConst && in.Imm == 3 && in.Dst != nil && in.Dst.Name == "add$a" {
				found = true
			}
		}
	}
	if !found {
		t.Error("const argument was not materialized into the cloned parameter")
	}
}

func TestInlineCallMidBlockTail(t *testing.T) {
	// Instructions after the call must run after the inlined body, exactly
	// once, on the path from every inlined return.
	add := buildAddFunc()
	_, main, site := buildCaller(add)
	callBlock := site.Block
	if err := InlineCall(main, site, add); err != nil {
		t.Fatal(err)
	}
	// The call block now ends in a jump into the inlined entry.
	term := callBlock.Terminator()
	if term == nil || term.Op != OpJmp {
		t.Fatalf("call block terminator = %v", term)
	}
	// Walk from the inlined entry: every path must reach the print.
	rpo := main.RPO()
	var printBlock *Block
	for _, b := range rpo {
		for _, in := range b.Instrs {
			if in.Op == OpPrint {
				printBlock = b
			}
		}
	}
	if printBlock == nil {
		t.Fatal("continuation (print) unreachable after inlining")
	}
	if len(printBlock.Preds) == 0 {
		t.Error("continuation has no predecessors")
	}
}

func TestInlineCallProfileScaling(t *testing.T) {
	// Callee: entry count 100 (10 per call from this site's 10 plus 90
	// from elsewhere). After inlining a site with count 10, the clone gets
	// 10% of each callee block count and the callee keeps the rest.
	add := buildAddFunc()
	add.Entry().SetProfile(100)
	m, main, site := buildCaller(add)
	site.Block.SetProfile(10)
	if err := InlineCall(main, site, add); err != nil {
		t.Fatal(err)
	}
	if got := add.Entry().ProfCount; got != 90 {
		t.Errorf("callee entry count after inline = %d, want 90", got)
	}
	var cloneCount int64 = -2
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpAdd {
				cloneCount = b.ProfCount
			}
		}
	}
	if cloneCount != 10 {
		t.Errorf("cloned body count = %d, want 10", cloneCount)
	}
	_ = m
}

func TestInlineCallNoProfileLoopDepth(t *testing.T) {
	add := buildAddFunc()
	add.Entry().LoopDepth = 1
	_, main, site := buildCaller(add)
	site.Block.LoopDepth = 2
	if err := InlineCall(main, site, add); err != nil {
		t.Fatal(err)
	}
	var cloneDepth = -1
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpAdd {
				cloneDepth = b.LoopDepth
			}
		}
	}
	if cloneDepth != 3 {
		t.Errorf("cloned body depth = %d, want 3 (2 site + 1 callee)", cloneDepth)
	}
	for _, b := range main.Blocks {
		if b.ProfCount != -1 {
			t.Errorf("block %s has prof count %d without a profile", b.Name, b.ProfCount)
		}
	}
}

func TestInlineCallVoidCallee(t *testing.T) {
	g := &Global{Name: "g", Size: 1}
	callee := NewFunc("store")
	v := callee.NewTemp("v", true)
	callee.Params = []*Temp{v}
	cb := callee.NewBlock()
	cb.Instrs = []*Instr{
		{Op: OpStoreG, Global: g, A: TempOp(v)},
		NewRet(nil),
	}
	callee.ComputeCFG()

	m := NewModule()
	m.Globals = append(m.Globals, g)
	m.AddFunc(callee)
	main := NewFunc("main")
	m.AddFunc(main)
	mb := main.NewBlock()
	mb.Instrs = []*Instr{
		{Op: OpCall, Callee: callee, Args: []Operand{ConstOp(7)}},
		NewRet(nil),
	}
	main.ComputeCFG()

	if err := InlineCall(main, main.CallSites()[0], callee); err != nil {
		t.Fatal(err)
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("void inline fails verify: %v", err)
	}
	found := false
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpStoreG && in.Global == g {
				found = true
			}
		}
	}
	if !found {
		t.Error("void callee body not spliced")
	}
}

func TestInlineCallLocalArraysCloned(t *testing.T) {
	callee := NewFunc("buf")
	callee.Returns = true
	arr := &LocalArray{Name: "tmp", Size: 4}
	callee.LocalArrays = []*LocalArray{arr}
	r := callee.NewTemp("", false)
	cb := callee.NewBlock()
	op := TempOp(r)
	cb.Instrs = []*Instr{
		{Op: OpStoreIdx, Arr: ArrayRef{Local: arr}, A: ConstOp(0), B: ConstOp(9)},
		{Op: OpLoadIdx, Dst: r, Arr: ArrayRef{Local: arr}, A: ConstOp(0)},
		NewRet(&op),
	}
	callee.ComputeCFG()

	m := NewModule()
	m.AddFunc(callee)
	main := NewFunc("main")
	m.AddFunc(main)
	x := main.NewTemp("x", true)
	mb := main.NewBlock()
	mb.Instrs = []*Instr{
		{Op: OpCall, Dst: x, Callee: callee},
		{Op: OpPrint, A: TempOp(x)},
		NewRet(nil),
	}
	main.ComputeCFG()

	if err := InlineCall(main, main.CallSites()[0], callee); err != nil {
		t.Fatal(err)
	}
	if len(main.LocalArrays) != 1 {
		t.Fatalf("caller local arrays = %d, want 1", len(main.LocalArrays))
	}
	clone := main.LocalArrays[0]
	if clone == arr {
		t.Fatal("local array shared, not cloned")
	}
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Arr.Local == arr {
				t.Fatal("caller references callee local array")
			}
		}
	}
	if clone.Size != 4 {
		t.Errorf("clone size = %d", clone.Size)
	}
}

func TestInlineCallErrors(t *testing.T) {
	add := buildAddFunc()
	_, main, site := buildCaller(add)

	// Self-inline.
	if err := InlineCall(main, site, main); err == nil {
		t.Error("self-inline accepted")
	}
	// Extern callee.
	ext := NewFunc("ext")
	ext.Extern = true
	bad := site
	bad.Instr = &Instr{Op: OpCall, Callee: ext}
	if err := InlineCall(main, bad, ext); err == nil {
		t.Error("extern inline accepted")
	}
	// Stale site: inline once, then reuse the same handle.
	if err := InlineCall(main, site, add); err != nil {
		t.Fatal(err)
	}
	if err := InlineCall(main, site, add); err == nil {
		t.Error("stale call site accepted")
	}
}

func TestRemoveFuncs(t *testing.T) {
	m := NewModule()
	a := NewFunc("a")
	b := NewFunc("b")
	c := NewFunc("c")
	for _, f := range []*Func{a, b, c} {
		blk := f.NewBlock()
		blk.Instrs = []*Instr{NewRet(nil)}
		m.AddFunc(f)
	}
	m.RemoveFuncs(map[*Func]bool{b: true})
	if len(m.Funcs) != 2 || m.Funcs[0] != a || m.Funcs[1] != c {
		t.Fatalf("funcs after removal: %v", m.Funcs)
	}
	if m.Lookup("b") != nil {
		t.Error("removed func still resolvable")
	}
	if m.Lookup("a") != a || m.Lookup("c") != c {
		t.Error("surviving funcs unresolvable")
	}
	if m.FuncIndex(a) != 1 || m.FuncIndex(c) != 2 {
		t.Error("indices not dense after removal")
	}
	m.RemoveFuncs(nil) // no-op
	if len(m.Funcs) != 2 {
		t.Error("nil removal changed the module")
	}
}
