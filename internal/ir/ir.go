// Package ir defines the three-address intermediate representation the
// optimizer, register allocators and code generator operate on.
//
// The IR is not SSA: temps are mutable storage locations, exactly as in the
// Ucode setting of the paper, where the allocation candidates are program
// variables and compiler temporaries with arbitrary def/use patterns. A
// function is a list of basic blocks; every block ends in exactly one
// terminator (Jmp, Br or Ret).
package ir

import "fmt"

// Op enumerates IR operations.
type Op int

// IR operations. Binary comparisons produce 0/1 ints.
const (
	OpConst Op = iota // Dst = Imm
	OpCopy            // Dst = A
	OpNeg             // Dst = -A
	OpNot             // Dst = !A

	OpAdd // Dst = A + B
	OpSub
	OpMul
	OpDiv // traps if B == 0
	OpRem // traps if B == 0
	OpCmpEq
	OpCmpNe
	OpCmpLt
	OpCmpLe
	OpCmpGt
	OpCmpGe

	OpLoadG    // Dst = *Global (scalar global)
	OpStoreG   // *Global = A
	OpLoadIdx  // Dst = Arr[A]
	OpStoreIdx // Arr[A] = B
	OpFuncAddr // Dst = &Callee (function value)

	OpCall    // Dst? = Callee(Args...)
	OpCallInd // Dst? = (*A)(Args...)
	OpPrint   // print(A)

	OpJmp // goto Target
	OpBr  // if A != 0 goto Target else goto Else
	OpRet // return A?
)

var opNames = [...]string{
	OpConst: "const", OpCopy: "copy", OpNeg: "neg", OpNot: "not",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpCmpEq: "cmpeq", OpCmpNe: "cmpne", OpCmpLt: "cmplt", OpCmpLe: "cmple",
	OpCmpGt: "cmpgt", OpCmpGe: "cmpge",
	OpLoadG: "loadg", OpStoreG: "storeg", OpLoadIdx: "loadidx", OpStoreIdx: "storeidx",
	OpFuncAddr: "funcaddr",
	OpCall:     "call", OpCallInd: "callind", OpPrint: "print",
	OpJmp: "jmp", OpBr: "br", OpRet: "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool { return o == OpJmp || o == OpBr || o == OpRet }

// IsCall reports whether the op is a procedure call.
func (o Op) IsCall() bool { return o == OpCall || o == OpCallInd }

// IsCmp reports whether the op is a comparison producing 0/1.
func (o Op) IsCmp() bool { return o >= OpCmpEq && o <= OpCmpGe }

// Temp is an allocatable storage location: a user variable, a parameter, or
// a compiler temporary.
type Temp struct {
	ID    int
	Name  string
	IsVar bool // user-declared variable (including parameters)
}

func (t *Temp) String() string {
	if t == nil {
		return "<nil>"
	}
	return t.Name
}

// Operand is either a temp or an integer constant.
type Operand struct {
	Temp  *Temp
	Const int64
}

// TempOp wraps a temp as an operand.
func TempOp(t *Temp) Operand { return Operand{Temp: t} }

// ConstOp wraps a constant as an operand.
func ConstOp(v int64) Operand { return Operand{Const: v} }

// IsConst reports whether the operand is a constant.
func (o Operand) IsConst() bool { return o.Temp == nil }

func (o Operand) String() string {
	if o.Temp != nil {
		return o.Temp.Name
	}
	return fmt.Sprintf("%d", o.Const)
}

// Global is a module-level variable: one word for scalars, Size words for
// arrays. Addr is its word address in the VM data segment, assigned by
// Module.Layout.
type Global struct {
	Name    string
	Size    int
	IsArray bool
	Addr    int
}

func (g *Global) String() string { return g.Name }

// LocalArray is a stack-allocated array. Its frame offset is assigned during
// code generation.
type LocalArray struct {
	Name string
	Size int
	// IsSpill marks a one-word home slot created by live-range splitting;
	// its accesses are scalar traffic (of a variable when SpillVar is set,
	// of a compiler temporary otherwise), not aggregate traffic.
	IsSpill  bool
	SpillVar bool
}

func (a *LocalArray) String() string { return a.Name }

// ArrayRef names either a global array or a local array; exactly one of the
// fields is non-nil.
type ArrayRef struct {
	Global *Global
	Local  *LocalArray
}

// Valid reports whether exactly one side is set.
func (a ArrayRef) Valid() bool { return (a.Global != nil) != (a.Local != nil) }

// Len returns the number of elements.
func (a ArrayRef) Len() int {
	if a.Global != nil {
		return a.Global.Size
	}
	return a.Local.Size
}

func (a ArrayRef) String() string {
	if a.Global != nil {
		return a.Global.Name
	}
	if a.Local != nil {
		return a.Local.Name
	}
	return "<none>"
}

// Instr is a single IR instruction.
type Instr struct {
	Op     Op
	Dst    *Temp     // result, nil if none
	A, B   Operand   // generic operands (see per-op comments)
	Args   []Operand // call arguments
	Callee *Func     // direct call target / FuncAddr target
	Global *Global   // for OpLoadG/OpStoreG
	Arr    ArrayRef  // for OpLoadIdx/OpStoreIdx
	Imm    int64     // for OpConst
	Target *Block    // for OpJmp/OpBr (taken edge)
	Else   *Block    // for OpBr (fallthrough edge)
}

// Uses appends the temps read by the instruction to buf and returns it.
func (in *Instr) Uses(buf []*Temp) []*Temp {
	add := func(o Operand) {
		if o.Temp != nil {
			buf = append(buf, o.Temp)
		}
	}
	switch in.Op {
	case OpConst, OpFuncAddr, OpJmp:
	case OpCopy, OpNeg, OpNot, OpLoadIdx, OpStoreG, OpPrint, OpBr:
		add(in.A)
	case OpRet:
		add(in.A)
	case OpStoreIdx:
		add(in.A)
		add(in.B)
	case OpLoadG:
	case OpCall:
		for _, a := range in.Args {
			add(a)
		}
	case OpCallInd:
		add(in.A)
		for _, a := range in.Args {
			add(a)
		}
	default: // binary arithmetic/comparison
		add(in.A)
		add(in.B)
	}
	return buf
}

// Def returns the temp written by the instruction, or nil.
func (in *Instr) Def() *Temp { return in.Dst }

// HasSideEffects reports whether the instruction must be kept even if its
// result is unused.
func (in *Instr) HasSideEffects() bool {
	switch in.Op {
	case OpStoreG, OpStoreIdx, OpCall, OpCallInd, OpPrint, OpJmp, OpBr, OpRet:
		return true
	case OpDiv, OpRem:
		return true // may trap
	case OpLoadIdx:
		return true // may trap on bad index
	}
	return false
}

// Block is a basic block.
type Block struct {
	ID     int
	Name   string
	Instrs []*Instr
	Preds  []*Block
	Succs  []*Block
	// LoopDepth is the natural-loop nesting depth, filled by dataflow.Loops.
	LoopDepth int
	// ProfCount is the measured execution count from a training run, or -1
	// when no profile is attached (the paper's planned profile feedback).
	ProfCount int64
}

func (b *Block) String() string { return b.Name }

// SetProfile attaches a measured execution count.
func (b *Block) SetProfile(count int64) { b.ProfCount = count }

// ClearProfile detaches profile data.
func (b *Block) ClearProfile() { b.ProfCount = -1 }

// Terminator returns the block's final instruction, or nil if empty.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Freq is the execution-frequency estimate for the block. With a profile
// attached it is the measured count; otherwise it is the classic static
// loop-nesting heuristic 10^depth that the paper's allocator used in place
// of profile data.
func (b *Block) Freq() float64 {
	if b.ProfCount >= 0 {
		return float64(b.ProfCount)
	}
	f := 1.0
	for i := 0; i < b.LoopDepth && i < 6; i++ {
		f *= 10
	}
	return f
}

// Func is an IR function.
type Func struct {
	Name         string
	Params       []*Temp
	Returns      bool
	Extern       bool
	AddressTaken bool
	Blocks       []*Block
	LocalArrays  []*LocalArray

	nextTemp  int
	nextBlock int
	temps     []*Temp
}

// NewFunc creates an empty function.
func NewFunc(name string) *Func { return &Func{Name: name} }

// NewTemp creates a fresh temp. If name is empty a compiler-temporary name
// is invented and IsVar is false.
func (f *Func) NewTemp(name string, isVar bool) *Temp {
	t := &Temp{ID: f.nextTemp, Name: name, IsVar: isVar}
	if name == "" {
		t.Name = fmt.Sprintf("t%d", f.nextTemp)
	}
	f.nextTemp++
	f.temps = append(f.temps, t)
	return t
}

// Temps returns all temps ever created, indexed by ID.
func (f *Func) Temps() []*Temp { return f.temps }

// TruncateTemps discards temps created after the first n, undoing temp
// creation when a speculative IR rewrite is rolled back. The caller must
// guarantee the discarded temps are unreferenced.
func (f *Func) TruncateTemps(n int) {
	if n < len(f.temps) {
		f.temps = f.temps[:n]
		f.nextTemp = n
	}
}

// NumTemps returns the number of temps created so far.
func (f *Func) NumTemps() int { return f.nextTemp }

// NewBlock appends a fresh empty block (no profile attached).
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextBlock, Name: fmt.Sprintf("b%d", f.nextBlock), ProfCount: -1}
	f.nextBlock++
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// ComputeCFG rebuilds Preds/Succs from terminators.
func (f *Func) ComputeCFG() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
		b.Succs = b.Succs[:0]
	}
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		switch t.Op {
		case OpJmp:
			b.Succs = append(b.Succs, t.Target)
		case OpBr:
			b.Succs = append(b.Succs, t.Target)
			if t.Else != t.Target {
				b.Succs = append(b.Succs, t.Else)
			}
		}
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// RPO returns the blocks in reverse postorder from the entry. Unreachable
// blocks are excluded.
func (f *Func) RPO() []*Block {
	seen := make([]bool, f.nextBlock)
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.ID] = true
		for _, s := range b.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if len(f.Blocks) > 0 {
		dfs(f.Entry())
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// RemoveUnreachable drops blocks not reachable from entry and recomputes the
// CFG. Block IDs are reassigned densely.
func (f *Func) RemoveUnreachable() {
	reach := f.RPO()
	inReach := make(map[*Block]bool, len(reach))
	for _, b := range reach {
		inReach[b] = true
	}
	var kept []*Block
	for _, b := range f.Blocks {
		if inReach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	for i, b := range f.Blocks {
		b.ID = i
	}
	f.nextBlock = len(f.Blocks)
	f.ComputeCFG()
}

// ExitBlocks returns the blocks ending in OpRet.
func (f *Func) ExitBlocks() []*Block {
	var out []*Block
	for _, b := range f.Blocks {
		if t := b.Terminator(); t != nil && t.Op == OpRet {
			out = append(out, b)
		}
	}
	return out
}

// CallSites returns every call instruction with its block, in block order.
type CallSite struct {
	Block *Block
	Index int // instruction index within the block
	Instr *Instr
}

// CallSites lists the calls in the function.
func (f *Func) CallSites() []CallSite {
	var out []CallSite
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Op.IsCall() {
				out = append(out, CallSite{Block: b, Index: i, Instr: in})
			}
		}
	}
	return out
}

// IsLeaf reports whether the function performs no calls.
func (f *Func) IsLeaf() bool { return len(f.CallSites()) == 0 }

// Module is a whole program in IR form.
type Module struct {
	Globals []*Global
	Funcs   []*Func
	byName  map[string]*Func
}

// NewModule creates an empty module.
func NewModule() *Module { return &Module{byName: map[string]*Func{}} }

// AddFunc registers a function.
func (m *Module) AddFunc(f *Func) {
	m.Funcs = append(m.Funcs, f)
	m.byName[f.Name] = f
}

// Lookup finds a function by name.
func (m *Module) Lookup(name string) *Func { return m.byName[name] }

// FuncIndex returns the 1-based "address" of a function, the runtime
// representation of function values (0 is the invalid function).
func (m *Module) FuncIndex(f *Func) int64 {
	for i, g := range m.Funcs {
		if g == f {
			return int64(i + 1)
		}
	}
	return 0
}

// DataBase is the word address where module globals begin in the VM data
// segment. Nonzero so that 0 can serve as an obviously-invalid address.
const DataBase = 1024

// Layout assigns word addresses to globals.
func (m *Module) Layout() {
	addr := DataBase
	for _, g := range m.Globals {
		g.Addr = addr
		addr += g.Size
	}
}

// DataSize returns the number of words of the data segment, including the
// reserved low region.
func (m *Module) DataSize() int {
	n := DataBase
	for _, g := range m.Globals {
		n += g.Size
	}
	return n
}
