package ir

import "fmt"

// InlineCall splices a deep, renamed copy of callee's body into caller at
// the given call site, the register-renaming discipline of the
// `inline_procedures` exemplar lifted to basic-block IR: every callee temp
// and local array is cloned into fresh caller storage, parameters become
// explicit copies of the call's argument operands, and each return becomes
// a copy of the returned value into the call's destination followed by a
// jump to the continuation block (the instructions that followed the call).
//
// Block frequencies are scaled to the call site: with profiles attached,
// each cloned block receives the callee block's measured count scaled by
// siteCount/calleeEntryCount, and the scaled share is subtracted from the
// original callee blocks (so a callee that stays live — other call sites,
// address taken — keeps exactly the counts of the calls that remain).
// Without profiles the cloned blocks inherit the callee's loop depth added
// to the call site's, preserving the static 10^depth estimate.
//
// The caller's CFG is recomputed; the callee is left structurally intact.
// The caller and callee must belong to the same module (globals and callees
// referenced by the cloned body are shared, not remapped).
func InlineCall(caller *Func, site CallSite, callee *Func) error {
	call := site.Instr
	if call.Op != OpCall || call.Callee != callee {
		return fmt.Errorf("inline %s into %s: site is not a direct call to the callee", callee.Name, caller.Name)
	}
	if callee.Extern {
		return fmt.Errorf("inline %s into %s: callee is extern", callee.Name, caller.Name)
	}
	if callee == caller {
		return fmt.Errorf("inline %s: cannot inline a function into itself", callee.Name)
	}
	if len(call.Args) != len(callee.Params) {
		return fmt.Errorf("inline %s into %s: arity %d != %d", callee.Name, caller.Name, len(call.Args), len(callee.Params))
	}
	b := site.Block
	if site.Index >= len(b.Instrs) || b.Instrs[site.Index] != call {
		return fmt.Errorf("inline %s into %s: stale call site", callee.Name, caller.Name)
	}

	// Continuation: the tail of the call block, entered by every inlined
	// return. It runs exactly as often as the call block itself.
	cont := caller.NewBlock()
	cont.Instrs = append(cont.Instrs, b.Instrs[site.Index+1:]...)
	cont.LoopDepth = b.LoopDepth
	cont.ProfCount = b.ProfCount
	b.Instrs = b.Instrs[:site.Index]

	// Fresh caller storage for every callee temp and local array.
	tmap := make(map[*Temp]*Temp, len(callee.temps))
	for _, t := range callee.temps {
		tmap[t] = caller.NewTemp(callee.Name+"$"+t.Name, t.IsVar)
	}
	amap := make(map[*LocalArray]*LocalArray, len(callee.LocalArrays))
	for _, a := range callee.LocalArrays {
		na := &LocalArray{
			Name:     fmt.Sprintf("%s$%s.%d", callee.Name, a.Name, len(caller.LocalArrays)),
			Size:     a.Size,
			IsSpill:  a.IsSpill,
			SpillVar: a.SpillVar,
		}
		caller.LocalArrays = append(caller.LocalArrays, na)
		amap[a] = na
	}

	// Bind arguments to the cloned parameter temps, in order.
	for i, p := range callee.Params {
		b.Instrs = append(b.Instrs, copyInto(tmap[p], call.Args[i]))
	}

	// Frequency scaling: the share of the callee's measured counts owned by
	// this call site.
	siteCount := b.ProfCount
	entryCount := int64(-1)
	if len(callee.Blocks) > 0 {
		entryCount = callee.Entry().ProfCount
	}

	bmap := make(map[*Block]*Block, len(callee.Blocks))
	for _, cb := range callee.Blocks {
		nb := caller.NewBlock()
		nb.LoopDepth = cb.LoopDepth + b.LoopDepth
		nb.ProfCount = scaledCount(cb.ProfCount, siteCount, entryCount)
		bmap[cb] = nb
	}

	remapT := func(t *Temp) *Temp {
		if t == nil {
			return nil
		}
		if nt, ok := tmap[t]; ok {
			return nt
		}
		return t
	}
	remapOp := func(o Operand) Operand {
		o.Temp = remapT(o.Temp)
		return o
	}
	for _, cb := range callee.Blocks {
		nb := bmap[cb]
		for _, in := range cb.Instrs {
			if in.Op == OpRet {
				if call.Dst != nil && in.retHasValue() {
					nb.Instrs = append(nb.Instrs, copyInto(call.Dst, remapOp(in.A)))
				}
				nb.Instrs = append(nb.Instrs, &Instr{Op: OpJmp, Target: cont})
				continue
			}
			v := *in
			v.Dst = remapT(v.Dst)
			v.A = remapOp(v.A)
			v.B = remapOp(v.B)
			if in.Args != nil {
				v.Args = make([]Operand, len(in.Args))
				for j, a := range in.Args {
					v.Args[j] = remapOp(a)
				}
			}
			if v.Arr.Local != nil {
				v.Arr = ArrayRef{Local: amap[v.Arr.Local]}
			}
			if v.Target != nil {
				v.Target = bmap[v.Target]
			}
			if v.Else != nil {
				v.Else = bmap[v.Else]
			}
			nb.Instrs = append(nb.Instrs, &v)
		}
	}

	// Consume this site's share of the callee's counts, leaving the
	// remainder for the call sites that survive.
	if siteCount >= 0 && entryCount > 0 {
		for _, cb := range callee.Blocks {
			if cb.ProfCount >= 0 {
				taken := scaledCount(cb.ProfCount, siteCount, entryCount)
				if taken > 0 {
					cb.ProfCount -= taken
					if cb.ProfCount < 0 {
						cb.ProfCount = 0
					}
				}
			}
		}
	}

	// Enter the inlined body where the call was.
	b.Instrs = append(b.Instrs, &Instr{Op: OpJmp, Target: bmap[callee.Entry()]})
	caller.ComputeCFG()
	return nil
}

// copyInto builds the copy of an operand into dst: a const materializes, a
// temp copies.
func copyInto(dst *Temp, o Operand) *Instr {
	if o.IsConst() {
		return &Instr{Op: OpConst, Dst: dst, Imm: o.Const}
	}
	return &Instr{Op: OpCopy, Dst: dst, A: o}
}

// scaledCount apportions a callee block count to one call site:
// count * site/entry, rounded down, clamped to the count itself. A missing
// profile anywhere (-1) propagates.
func scaledCount(count, site, entry int64) int64 {
	if count < 0 || site < 0 {
		return -1
	}
	if entry <= 0 {
		return 0
	}
	s := count * site / entry
	if s > count {
		s = count
	}
	return s
}

// RemoveFuncs drops the given functions from the module, renumbering
// nothing: remaining functions keep their identity, and function "values"
// (module indices) are assigned at code generation from the surviving
// order. The inliner uses it to drop procedures whose every call site was
// absorbed. Removing a function that is still referenced leaves dangling
// Callee pointers — callers must ensure the dropped set is unreachable.
func (m *Module) RemoveFuncs(drop map[*Func]bool) {
	if len(drop) == 0 {
		return
	}
	kept := m.Funcs[:0]
	for _, f := range m.Funcs {
		if drop[f] {
			delete(m.byName, f.Name)
			continue
		}
		kept = append(kept, f)
	}
	m.Funcs = kept
}
