package ir

import "fmt"

// NewRet builds a return instruction. Pass nil for a void return.
func NewRet(v *Operand) *Instr {
	if v == nil {
		return &Instr{Op: OpRet}
	}
	return &Instr{Op: OpRet, A: *v, Imm: 1}
}

// Verify checks the structural invariants of a function:
//   - every block ends in exactly one terminator, and terminators appear
//     nowhere else;
//   - branch targets are blocks of this function;
//   - temps referenced belong to this function;
//   - value-returning functions return values, void functions do not;
//   - calls match callee arity;
//   - array references are well-formed.
func Verify(f *Func) error {
	if f.Extern {
		return nil
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", f.Name)
	}
	blockSet := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		blockSet[b] = true
	}
	tempSet := make(map[*Temp]bool, len(f.temps))
	for _, t := range f.temps {
		tempSet[t] = true
	}
	checkOperand := func(b *Block, in *Instr, o Operand) error {
		if o.Temp != nil && !tempSet[o.Temp] {
			return fmt.Errorf("%s/%s: %v references foreign temp %s", f.Name, b.Name, in, o.Temp)
		}
		return nil
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s/%s: empty block", f.Name, b.Name)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				return fmt.Errorf("%s/%s: instruction %d (%v): terminator placement", f.Name, b.Name, i, in)
			}
			if in.Dst != nil && !tempSet[in.Dst] {
				return fmt.Errorf("%s/%s: %v defines foreign temp", f.Name, b.Name, in)
			}
			if err := checkOperand(b, in, in.A); err != nil {
				return err
			}
			if err := checkOperand(b, in, in.B); err != nil {
				return err
			}
			for _, a := range in.Args {
				if err := checkOperand(b, in, a); err != nil {
					return err
				}
			}
			switch in.Op {
			case OpJmp:
				if in.Target == nil || !blockSet[in.Target] {
					return fmt.Errorf("%s/%s: jmp to foreign block", f.Name, b.Name)
				}
			case OpBr:
				if in.Target == nil || !blockSet[in.Target] || in.Else == nil || !blockSet[in.Else] {
					return fmt.Errorf("%s/%s: br to foreign block", f.Name, b.Name)
				}
			case OpRet:
				if f.Returns && !in.retHasValue() {
					return fmt.Errorf("%s/%s: void return in value-returning function", f.Name, b.Name)
				}
				if !f.Returns && in.retHasValue() {
					return fmt.Errorf("%s/%s: value return in void function", f.Name, b.Name)
				}
			case OpCall:
				if in.Callee == nil {
					return fmt.Errorf("%s/%s: call with no callee", f.Name, b.Name)
				}
				if len(in.Args) != len(in.Callee.Params) && !in.Callee.Extern {
					return fmt.Errorf("%s/%s: call %s arity %d != %d", f.Name, b.Name, in.Callee.Name, len(in.Args), len(in.Callee.Params))
				}
			case OpCallInd:
				if in.A.Temp == nil {
					return fmt.Errorf("%s/%s: indirect call through non-temp", f.Name, b.Name)
				}
			case OpLoadG, OpStoreG:
				if in.Global == nil || in.Global.IsArray {
					return fmt.Errorf("%s/%s: %v: bad scalar global", f.Name, b.Name, in)
				}
			case OpLoadIdx, OpStoreIdx:
				if !in.Arr.Valid() {
					return fmt.Errorf("%s/%s: %v: bad array ref", f.Name, b.Name, in)
				}
			case OpFuncAddr:
				if in.Callee == nil {
					return fmt.Errorf("%s/%s: funcaddr with no target", f.Name, b.Name)
				}
			}
		}
	}
	return nil
}

// VerifyModule verifies every function.
func VerifyModule(m *Module) error {
	for _, f := range m.Funcs {
		if err := Verify(f); err != nil {
			return err
		}
	}
	return nil
}
