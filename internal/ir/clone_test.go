package ir

import "testing"

// buildCloneFixture makes a module exercising every cross-reference a clone
// must remap: globals, local arrays, call/func-addr edges, branch targets
// and parameter temps.
func buildCloneFixture() *Module {
	m := NewModule()
	g := &Global{Name: "g", Size: 1}
	arr := &Global{Name: "arr", Size: 8, IsArray: true}
	m.Globals = append(m.Globals, g, arr)

	leaf := NewFunc("leaf")
	leaf.Returns = true
	p := leaf.NewTemp("p", true)
	leaf.Params = []*Temp{p}
	lb := leaf.NewBlock()
	t0 := leaf.NewTemp("", false)
	lb.Instrs = append(lb.Instrs,
		&Instr{Op: OpAdd, Dst: t0, A: TempOp(p), B: ConstOp(1)},
		&Instr{Op: OpRet, A: TempOp(t0)},
	)

	main := NewFunc("main")
	la := &LocalArray{Name: "buf", Size: 4}
	main.LocalArrays = append(main.LocalArrays, la)
	b0 := main.NewBlock()
	b1 := main.NewBlock()
	b2 := main.NewBlock()
	x := main.NewTemp("x", true)
	y := main.NewTemp("y", false)
	b0.Instrs = append(b0.Instrs,
		&Instr{Op: OpLoadG, Dst: x, Global: g},
		&Instr{Op: OpCall, Dst: y, Callee: leaf, Args: []Operand{TempOp(x)}},
		&Instr{Op: OpBr, A: TempOp(y), Target: b1, Else: b2},
	)
	b1.Instrs = append(b1.Instrs,
		&Instr{Op: OpStoreIdx, Arr: ArrayRef{Local: la}, A: ConstOp(0), B: TempOp(y)},
		&Instr{Op: OpJmp, Target: b2},
	)
	b2.Instrs = append(b2.Instrs,
		&Instr{Op: OpStoreG, Global: g, A: TempOp(y)},
		&Instr{Op: OpRet},
	)
	main.ComputeCFG()
	leaf.ComputeCFG()

	m.AddFunc(leaf)
	m.AddFunc(main)
	m.Layout()
	return m
}

func TestCloneModuleIsolated(t *testing.T) {
	m := buildCloneFixture()
	want := ModuleString(m)

	c := CloneModule(m)
	if got := ModuleString(c); got != want {
		t.Fatalf("clone renders differently:\n--- original ---\n%s\n--- clone ---\n%s", want, got)
	}

	// No structural sharing: funcs, blocks, instrs, temps, globals must all
	// be distinct objects.
	cm := c.Lookup("main")
	om := m.Lookup("main")
	if cm == om {
		t.Fatal("clone shares *Func")
	}
	if cm.Blocks[0] == om.Blocks[0] {
		t.Fatal("clone shares *Block")
	}
	if cm.Blocks[0].Instrs[0] == om.Blocks[0].Instrs[0] {
		t.Fatal("clone shares *Instr")
	}
	if cm.Temps()[0] == om.Temps()[0] {
		t.Fatal("clone shares *Temp")
	}
	if c.Globals[0] == m.Globals[0] {
		t.Fatal("clone shares *Global")
	}
	// Internal references must point inside the clone, not back at m.
	if call := cm.Blocks[0].Instrs[1]; call.Callee != c.Lookup("leaf") {
		t.Fatal("clone's call edge escapes to the original module")
	}
	if br := cm.Blocks[0].Instrs[2]; br.Target != cm.Blocks[1] || br.Else != cm.Blocks[2] {
		t.Fatal("clone's branch targets escape to the original module")
	}
	if cm.Blocks[1].Instrs[0].Arr.Local == om.LocalArrays[0] {
		t.Fatal("clone shares *LocalArray")
	}

	// Mutating the clone must leave the original untouched.
	cm.Blocks[2].Instrs[0].Global = c.Globals[1]
	cm.NewTemp("extra", false)
	cm.Blocks[1].Instrs = cm.Blocks[1].Instrs[:1]
	c.Lookup("leaf").Blocks[0].Instrs[0].B = ConstOp(99)
	if got := ModuleString(m); got != want {
		t.Fatalf("mutating the clone changed the original:\n--- before ---\n%s\n--- after ---\n%s", want, got)
	}
}

func TestCloneModulePreservesCounters(t *testing.T) {
	m := buildCloneFixture()
	c := CloneModule(m)
	om, cm := m.Lookup("main"), c.Lookup("main")
	if cm.NumTemps() != om.NumTemps() {
		t.Fatalf("NumTemps: %d != %d", cm.NumTemps(), om.NumTemps())
	}
	// Fresh temps and blocks in the clone must continue the original's ID
	// sequences (identical numbering for identical downstream rewrites).
	ot, ct := om.NewTemp("", false), cm.NewTemp("", false)
	if ot.ID != ct.ID || ot.Name != ct.Name {
		t.Fatalf("temp counters diverge: %d/%s vs %d/%s", ot.ID, ot.Name, ct.ID, ct.Name)
	}
	ob, cb := om.NewBlock(), cm.NewBlock()
	if ob.ID != cb.ID || ob.Name != cb.Name {
		t.Fatalf("block counters diverge: %d/%s vs %d/%s", ob.ID, ob.Name, cb.ID, cb.Name)
	}
}
