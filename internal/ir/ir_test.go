package ir

import (
	"strings"
	"testing"
)

// buildDiamond constructs entry -> (a|b) -> join with a conditional.
func buildDiamond() (*Func, *Block, *Block, *Block, *Block) {
	f := NewFunc("d")
	f.Returns = true
	entry := f.NewBlock()
	a := f.NewBlock()
	b := f.NewBlock()
	join := f.NewBlock()
	c := f.NewTemp("c", true)
	r := f.NewTemp("r", true)
	entry.Instrs = []*Instr{
		{Op: OpConst, Dst: c, Imm: 1},
		{Op: OpBr, A: TempOp(c), Target: a, Else: b},
	}
	a.Instrs = []*Instr{
		{Op: OpConst, Dst: r, Imm: 10},
		{Op: OpJmp, Target: join},
	}
	b.Instrs = []*Instr{
		{Op: OpConst, Dst: r, Imm: 20},
		{Op: OpJmp, Target: join},
	}
	op := TempOp(r)
	join.Instrs = []*Instr{NewRet(&op)}
	f.ComputeCFG()
	return f, entry, a, b, join
}

func TestCFGEdges(t *testing.T) {
	f, entry, a, b, join := buildDiamond()
	if len(entry.Succs) != 2 || len(join.Preds) != 2 {
		t.Fatalf("edges wrong: succs=%d preds=%d", len(entry.Succs), len(join.Preds))
	}
	if a.Preds[0] != entry || b.Preds[0] != entry {
		t.Error("preds wrong")
	}
	rpo := f.RPO()
	if rpo[0] != entry || rpo[len(rpo)-1] != join {
		t.Errorf("rpo order wrong: %v", rpo)
	}
}

func TestRemoveUnreachable(t *testing.T) {
	f, _, _, _, _ := buildDiamond()
	dead := f.NewBlock()
	dead.Instrs = []*Instr{NewRet(nil)}
	f.ComputeCFG()
	f.RemoveUnreachable()
	for _, b := range f.Blocks {
		if b == dead {
			t.Error("unreachable block survived")
		}
	}
	for i, b := range f.Blocks {
		if b.ID != i {
			t.Error("IDs not re-densified")
		}
	}
}

func TestVerifyCatchesBadness(t *testing.T) {
	// Terminator in the middle.
	f := NewFunc("bad")
	b := f.NewBlock()
	x := f.NewTemp("x", true)
	b.Instrs = []*Instr{
		NewRet(nil),
		{Op: OpConst, Dst: x, Imm: 1},
	}
	if err := Verify(f); err == nil {
		t.Error("mid-block terminator not caught")
	}

	// Missing terminator.
	f2 := NewFunc("bad2")
	b2 := f2.NewBlock()
	y := f2.NewTemp("y", true)
	b2.Instrs = []*Instr{{Op: OpConst, Dst: y, Imm: 1}}
	if err := Verify(f2); err == nil {
		t.Error("missing terminator not caught")
	}

	// Foreign temp.
	f3 := NewFunc("bad3")
	b3 := f3.NewBlock()
	alien := &Temp{ID: 99, Name: "alien"}
	op := TempOp(alien)
	b3.Instrs = []*Instr{NewRet(&op)}
	f3.Returns = true
	if err := Verify(f3); err == nil {
		t.Error("foreign temp not caught")
	}

	// Branch to a foreign block.
	f4 := NewFunc("bad4")
	b4 := f4.NewBlock()
	other := &Block{ID: 7, Name: "other"}
	b4.Instrs = []*Instr{{Op: OpJmp, Target: other}}
	if err := Verify(f4); err == nil {
		t.Error("foreign branch target not caught")
	}

	// Void return in a value function.
	f5 := NewFunc("bad5")
	f5.Returns = true
	b5 := f5.NewBlock()
	b5.Instrs = []*Instr{NewRet(nil)}
	if err := Verify(f5); err == nil {
		t.Error("void return in int function not caught")
	}
}

func TestUsesAndDef(t *testing.T) {
	f := NewFunc("u")
	a := f.NewTemp("a", true)
	b := f.NewTemp("b", true)
	d := f.NewTemp("d", true)
	in := &Instr{Op: OpAdd, Dst: d, A: TempOp(a), B: TempOp(b)}
	uses := in.Uses(nil)
	if len(uses) != 2 || uses[0] != a || uses[1] != b {
		t.Errorf("uses = %v", uses)
	}
	if in.Def() != d {
		t.Errorf("def = %v", in.Def())
	}
	call := &Instr{Op: OpCall, Dst: d, Callee: f, Args: []Operand{TempOp(a), ConstOp(3)}}
	uses = call.Uses(nil)
	if len(uses) != 1 || uses[0] != a {
		t.Errorf("call uses = %v", uses)
	}
}

func TestSideEffects(t *testing.T) {
	cases := []struct {
		in   Instr
		want bool
	}{
		{Instr{Op: OpAdd}, false},
		{Instr{Op: OpDiv}, true},
		{Instr{Op: OpRem}, true},
		{Instr{Op: OpLoadIdx}, true},
		{Instr{Op: OpStoreG}, true},
		{Instr{Op: OpCall}, true},
		{Instr{Op: OpPrint}, true},
		{Instr{Op: OpConst}, false},
		{Instr{Op: OpLoadG}, false},
	}
	for _, c := range cases {
		if got := c.in.HasSideEffects(); got != c.want {
			t.Errorf("%s: side effects = %v", c.in.Op, got)
		}
	}
}

func TestFreq(t *testing.T) {
	b := &Block{LoopDepth: 0, ProfCount: -1}
	if b.Freq() != 1 {
		t.Errorf("depth 0 freq = %f", b.Freq())
	}
	b.LoopDepth = 2
	if b.Freq() != 100 {
		t.Errorf("depth 2 freq = %f", b.Freq())
	}
	b.LoopDepth = 50
	if b.Freq() != 1e6 {
		t.Errorf("freq must cap: %f", b.Freq())
	}
	b.SetProfile(1234)
	if b.Freq() != 1234 {
		t.Errorf("profiled freq = %f", b.Freq())
	}
	b.ClearProfile()
	if b.Freq() != 1e6 {
		t.Errorf("cleared freq = %f", b.Freq())
	}
}

func TestModuleHelpers(t *testing.T) {
	m := NewModule()
	f1 := NewFunc("a")
	f2 := NewFunc("b")
	m.AddFunc(f1)
	m.AddFunc(f2)
	if m.Lookup("a") != f1 || m.Lookup("nope") != nil {
		t.Error("lookup broken")
	}
	if m.FuncIndex(f1) != 1 || m.FuncIndex(f2) != 2 {
		t.Error("indexes wrong")
	}
	if m.FuncIndex(NewFunc("ghost")) != 0 {
		t.Error("unknown func should map to 0")
	}
	m.Globals = append(m.Globals,
		&Global{Name: "x", Size: 1},
		&Global{Name: "arr", Size: 10, IsArray: true})
	m.Layout()
	if m.Globals[0].Addr != DataBase || m.Globals[1].Addr != DataBase+1 {
		t.Error("layout wrong")
	}
	if m.DataSize() != DataBase+11 {
		t.Errorf("datasize = %d", m.DataSize())
	}
}

func TestPrinting(t *testing.T) {
	f, _, _, _, _ := buildDiamond()
	s := FuncString(f)
	for _, want := range []string{"func d()", "br c ? b1 : b2", "ret r", "const 10"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	m := NewModule()
	m.Globals = append(m.Globals, &Global{Name: "g", Size: 1}, &Global{Name: "a", Size: 4, IsArray: true})
	m.AddFunc(f)
	ms := ModuleString(m)
	if !strings.Contains(ms, "global g") || !strings.Contains(ms, "global a [4]") {
		t.Errorf("module string:\n%s", ms)
	}
}

func TestCallSitesAndLeaf(t *testing.T) {
	f := NewFunc("f")
	g := NewFunc("g")
	b := f.NewBlock()
	b.Instrs = []*Instr{
		{Op: OpCall, Callee: g},
		NewRet(nil),
	}
	f.ComputeCFG()
	if f.IsLeaf() {
		t.Error("f calls g")
	}
	cs := f.CallSites()
	if len(cs) != 1 || cs[0].Instr.Callee != g || cs[0].Index != 0 {
		t.Errorf("callsites = %+v", cs)
	}
	if !g.IsLeaf() {
		t.Error("g is a leaf")
	}
}

func TestExitBlocks(t *testing.T) {
	f, _, _, _, join := buildDiamond()
	exits := f.ExitBlocks()
	if len(exits) != 1 || exits[0] != join {
		t.Errorf("exits = %v", exits)
	}
}

func TestOperands(t *testing.T) {
	c := ConstOp(42)
	if !c.IsConst() || c.String() != "42" {
		t.Error("const operand broken")
	}
	f := NewFunc("f")
	x := f.NewTemp("", false)
	o := TempOp(x)
	if o.IsConst() || o.String() != "t0" {
		t.Errorf("temp operand broken: %s", o)
	}
	if x.IsVar {
		t.Error("anonymous temps are not vars")
	}
}
