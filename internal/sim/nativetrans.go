// Translation from the predecoded internal ISA to closure-threaded code.
// translateNative compiles each basic block's xcode span into an nblock:
// every superinstruction becomes a Go closure specialized by its register
// and immediate operands (packed operands are unpacked here, once, instead
// of on every execution), and every static control edge becomes a direct
// *nblock pointer. Terminators that only transfer control compile to the
// block's next pointer — the run loop follows it without any call — and a
// conditional branch whose edge targets its own block fuses the block into
// a self-iterating loop closure (loopTerm). The per-op bodies below mirror
// the fast engine's dispatch cases in fastvm.go line for line — same
// evaluation order (register aliasing between fused sub-instructions
// resolves identically), same fault pc, same message text — and the
// differential suite enforces that against RunReference.
package sim

import (
	"fmt"

	"chow88/internal/mach"
	"chow88/internal/mcode"
)

// ntrans carries translation state: the program (for JALR's function
// table), the predecoded image (runs, blockIdx), and the block array
// under construction, which edge() hands out forward pointers into.
type ntrans struct {
	p   *mcode.Program
	img *image
	nbs []nblock
}

// termInfo is a translated terminator. Exactly one of three shapes:
//   - next != nil (fn nil): resolved unconditional control, optionally with
//     a step carrying the terminator's data effects (register writes,
//     loads); the run loop follows next directly.
//   - fn != nil, isBranch false: computed control (indirect jumps, EXIT,
//     edges that leave the image).
//   - fn != nil, isBranch true: a conditional branch; cond/bnz/taken/fall
//     describe it declaratively so translateNative can refuse the plain fn
//     and fuse a self-targeting branch into a loop closure instead.
type termInfo struct {
	fn       nblockFn
	step     nstep
	next     *nblock
	nextIdx  int32
	isBranch bool
	cond     func(*nctx) (int64, bool)
	bnz      bool
	taken    int32
	fall     int32
	leavePC  int
}

// translateNative compiles img into a closure-threaded nimage. It returns
// (nil, reason) if any opcode has no closure constructor — the caller
// then falls back to the fast engine rather than guessing; predecode only
// emits opcodes known here, so this is a defensive posture, not an
// expected path.
func translateNative(p *mcode.Program, img *image) (*nimage, string) {
	nbs := make([]nblock, len(img.blocks))
	t := &ntrans{p: p, img: img, nbs: nbs}
	builds := make([]termInfo, len(img.blocks))
	for bi := range img.blocks {
		b := &img.blocks[bi]
		hi := int32(len(img.xcode))
		if bi+1 < len(img.blocks) {
			hi = img.blocks[bi+1].x0
		}
		span := img.xcode[b.x0:hi]
		if len(span) == 0 {
			return nil, fmt.Sprintf("block %d has an empty predecoded span", bi)
		}
		var steps []nstep
		if n := len(span) - 1; n > 0 {
			steps = make([]nstep, 0, n+1)
			for k := range span[:n] {
				s, ok := t.step(&span[k])
				if !ok {
					return nil, fmt.Sprintf("block %d: no closure for mid-block opcode %s", bi, xopName(span[k].op))
				}
				steps = append(steps, s)
			}
		}
		ti, ok := t.term(&span[len(span)-1])
		if !ok {
			return nil, fmt.Sprintf("block %d: no closure for terminator %s", bi, xopName(span[len(span)-1].op))
		}
		if ti.step != nil {
			steps = append(steps, ti.step)
		}
		builds[bi] = ti
		nbs[bi] = nblock{steps: steps, term: ti.fn, next: ti.next, ninstr: img.ents[bi].ninstr, bi: int32(bi)}
	}
	t.fuseLoops(builds)
	return &nimage{blocks: nbs}, ""
}

// edge resolves a static control edge to its block, or nil for a negative
// sentinel (control would leave the code image); terminator closures turn
// nil into c.leave at the fast engine's trap pc.
func (t *ntrans) edge(b int32) *nblock {
	if b < 0 {
		return nil
	}
	return &t.nbs[b]
}

// uncond resolves a terminator that only transfers control: a direct next
// pointer when the target is in the image, a leave closure otherwise.
func (t *ntrans) uncond(target int32, leavePC int) termInfo {
	if target < 0 {
		return termInfo{nextIdx: -1, fn: func(c *nctx) *nblock { return c.leave(leavePC) }}
	}
	return termInfo{next: &t.nbs[target], nextIdx: target}
}

// jr resolves a register-indirect jump through src: leave the image for an
// out-of-range pc, bridge through the reference interpreter for a mid-block
// landing, thread directly to a block head otherwise.
func (t *ntrans) jr(src uint8) termInfo {
	n := int64(len(t.p.Code))
	blockIdx := t.img.blockIdx
	nbs := t.nbs
	return termInfo{fn: func(c *nctx) *nblock {
		pcv := c.regs[src]
		if uint64(pcv) >= uint64(n) {
			return c.leave(int(pcv))
		}
		nbi := blockIdx[pcv]
		if nbi < 0 {
			c.sig, c.bridgePC = nsBridge, pcv
			return nil
		}
		return &nbs[nbi]
	}}
}

// fuseLoops finds single-block self-loops — a conditional branch whose
// taken or fallthrough edge targets its own block — and replaces each
// one's terminator with a closure that iterates the loop internally
// (loopTerm). Cross-block trace fusion was tried and measured as a net
// regression: the rotating per-element cond/step call sites turn
// monomorphic (predictable) indirect calls into megamorphic ones, and the
// element orchestration costs as much as the run-loop bookkeeping it
// saves. Self-loops keep every call site monomorphic, which is where
// fusion actually pays.
func (t *ntrans) fuseLoops(builds []termInfo) {
	for bi := range builds {
		ti := &builds[bi]
		if !ti.isBranch || (ti.taken != int32(bi) && ti.fall != int32(bi)) {
			continue
		}
		t.nbs[bi].term = t.loopTerm(int32(bi), ti)
	}
}

// loopTerm compiles a self-targeting branch block into a terminator that
// keeps iterating the block without returning to the run loop. The run
// loop has already entered the block and run its steps, so the closure
// starts at the branch. Per-iteration bookkeeping is exact — the same
// entry counts, instruction totals and Taken increments the run loop
// would perform — and control returns to the run loop only on the exit
// edge, a fault, or when the next iteration could cross the budget or
// deadline horizon (the run loop owns those edges and re-enters the block
// with the precise handoff/expiry semantics).
func (t *ntrans) loopTerm(bi int32, ti *termInfo) nblockFn {
	stay := ti.taken == bi
	var exit *nblock
	if stay {
		exit = t.edge(ti.fall)
	} else {
		exit = t.edge(ti.taken)
	}
	self := &t.nbs[bi]
	steps := t.nbs[bi].steps
	nin := int64(t.img.ents[bi].ninstr)
	cond, bnz, leavePC := ti.cond, ti.bnz, ti.leavePC
	return func(c *nctx) *nblock {
		instrs := c.instrs
		for {
			v, ok := cond(c)
			if !ok {
				return nil
			}
			taken := (v != 0) == bnz
			if taken {
				c.st.Taken++
			}
			if taken != stay {
				c.instrs = instrs
				if exit == nil {
					return c.leave(leavePC)
				}
				return exit
			}
			ni := instrs + nin
			if ni > c.maxInstrs || ni >= c.deadlineAt {
				c.instrs = instrs
				return self
			}
			instrs = ni
			c.ents[bi].count++
			for _, s := range steps {
				if !s(c) {
					return nil
				}
			}
		}
	}
}

// branch assembles a conditional-branch termInfo around a fully
// specialized closure plus its declarative description for loopTerm.
func branch(fn nblockFn, cond func(*nctx) (int64, bool), bnz bool, taken, fall int32, leavePC int) termInfo {
	return termInfo{fn: fn, isBranch: true, cond: cond, bnz: bnz, taken: taken, fall: fall, leavePC: leavePC}
}

// step builds the closure for one non-terminating superinstruction.
func (t *ntrans) step(x *xinstr) (nstep, bool) {
	// Operand unpacking happens here, once per translated instruction; the
	// closures capture only these scalars (and, for runs, a pointer into
	// the immutable image). bi/pc locate the instruction for fault
	// accounting: bi is the executing block (x.a2 for every faultable
	// step — faultable ops are never tail-inlined, see inlinableOp).
	rd, rs, rt, fl := x.rd, x.rs, x.rt, x.flags
	imm := x.imm
	bi, pc := x.a2, int(x.pc)

	switch x.op {
	case xLI:
		return func(c *nctx) bool { c.regs[rd] = imm; return true }, true
	case xMOVE:
		return func(c *nctx) bool { c.regs[rd] = c.regs[rs]; return true }, true
	case xADDR:
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs] + r[rt]
			return true
		}, true
	case xADDI:
		return func(c *nctx) bool { c.regs[rd] = c.regs[rs] + imm; return true }, true
	case xSUBR:
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs] - r[rt]
			return true
		}, true
	case xSUBI:
		return func(c *nctx) bool { c.regs[rd] = c.regs[rs] - imm; return true }, true
	case xMULR:
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs] * r[rt]
			return true
		}, true
	case xMULI:
		return func(c *nctx) bool { c.regs[rd] = c.regs[rs] * imm; return true }, true
	case xDIVR:
		return func(c *nctx) bool {
			r := c.regs
			d := r[rt]
			if d == 0 {
				return c.fault(bi, pc, "division by zero")
			}
			r[rd] = r[rs] / d
			return true
		}, true
	case xDIVI:
		if imm == 0 {
			return func(c *nctx) bool { return c.fault(bi, pc, "division by zero") }, true
		}
		return func(c *nctx) bool { c.regs[rd] = c.regs[rs] / imm; return true }, true
	case xREMR:
		return func(c *nctx) bool {
			r := c.regs
			d := r[rt]
			if d == 0 {
				return c.fault(bi, pc, "division by zero")
			}
			r[rd] = r[rs] % d
			return true
		}, true
	case xREMI:
		if imm == 0 {
			return func(c *nctx) bool { return c.fault(bi, pc, "division by zero") }, true
		}
		return func(c *nctx) bool { c.regs[rd] = c.regs[rs] % imm; return true }, true
	case xSLTR:
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = b2i(r[rs] < r[rt])
			return true
		}, true
	case xSLTI:
		return func(c *nctx) bool { c.regs[rd] = b2i(c.regs[rs] < imm); return true }, true
	case xSLER:
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = b2i(r[rs] <= r[rt])
			return true
		}, true
	case xSLEI:
		return func(c *nctx) bool { c.regs[rd] = b2i(c.regs[rs] <= imm); return true }, true
	case xSEQR:
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = b2i(r[rs] == r[rt])
			return true
		}, true
	case xSEQI:
		return func(c *nctx) bool { c.regs[rd] = b2i(c.regs[rs] == imm); return true }, true
	case xSNER:
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = b2i(r[rs] != r[rt])
			return true
		}, true
	case xSNEI:
		return func(c *nctx) bool { c.regs[rd] = b2i(c.regs[rs] != imm); return true }, true
	case xLW:
		return func(c *nctx) bool {
			addr := c.regs[rs] + imm
			if uint64(addr) >= uint64(c.memWords) {
				return c.faultAddr(bi, pc, "load from bad address %d", addr)
			}
			c.regs[rd] = c.mem[addr]
			return true
		}, true
	case xSW:
		return func(c *nctx) bool {
			addr := c.regs[rs] + imm
			if uint64(addr) >= uint64(c.memWords) {
				return c.faultAddr(bi, pc, "store to bad address %d", addr)
			}
			noteStoreInline(c.m, addr)
			c.mem[addr] = c.regs[rt]
			return true
		}, true
	case xMOVE2:
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs]
			r[rt] = r[fl]
			return true
		}, true
	case xLIMOVE:
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = imm
			r[rt] = r[fl]
			return true
		}, true
	case xLIDIVR:
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = imm
			r[rt] = r[rs] / imm
			return true
		}, true
	case xLIREMR:
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = imm
			r[rt] = r[rs] % imm
			return true
		}, true
	case xLIREM2:
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = 2
			r[rt] = r[rs] % 2
			return true
		}, true
	case xDIVLIREM2:
		remDst, remSrc := uint8(x.a1>>8), uint8(x.a1)
		return func(c *nctx) bool {
			r := c.regs
			d := r[rt]
			if d == 0 {
				return c.fault(bi, pc, "division by zero")
			}
			r[rd] = r[rs] / d
			r[fl] = 2
			r[remDst] = r[remSrc] % 2
			return true
		}, true
	case xMOVEADDMOVEMUL:
		m1d, m1s := uint8(x.a1), uint8(x.a1>>8)
		m2d, m2s := uint8(x.a1>>16), uint8(x.a1>>24)
		mulS := uint8(x.a2)
		return func(c *nctx) bool {
			r := c.regs
			r[m1d] = r[m1s]
			r[rd] = r[rs] + r[rt]
			r[m2d] = r[m2s]
			r[fl] = r[mulS] * imm
			return true
		}, true
	case xMOVELWADDMOVE:
		off := x.imm >> 32
		addD, addS1, addS2 := uint8(x.imm), uint8(x.imm>>8), uint8(x.imm>>16)
		mvD, mvS := uint8(x.a1), uint8(x.a1>>8)
		return func(c *nctx) bool {
			r := c.regs
			r[rt] = r[fl]
			addr := r[rs] + off
			if uint64(addr) >= uint64(c.memWords) {
				return c.faultAddr(bi, pc+1, "load from bad address %d", addr)
			}
			r[rd] = c.mem[addr]
			r[addD] = r[addS1] + r[addS2]
			r[mvD] = r[mvS]
			return true
		}, true
	case xADDRMOVE:
		mvD, mvS := uint8(x.imm), uint8(x.imm>>8)
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs] + r[rt]
			r[mvD] = r[mvS]
			return true
		}, true
	case xADDIMOVE:
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs] + imm
			r[rt] = r[fl]
			return true
		}, true
	case xMULRMOVE:
		mvD, mvS := uint8(x.imm), uint8(x.imm>>8)
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs] * r[rt]
			r[mvD] = r[mvS]
			return true
		}, true
	case xMULIMOVE:
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs] * imm
			r[rt] = r[fl]
			return true
		}, true
	case xMOVEADDR:
		mvD, mvS := uint8(x.imm), uint8(x.imm>>8)
		return func(c *nctx) bool {
			r := c.regs
			r[mvD] = r[mvS]
			r[rd] = r[rs] + r[rt]
			return true
		}, true
	case xMOVEADDI:
		return func(c *nctx) bool {
			r := c.regs
			r[rt] = r[fl]
			r[rd] = r[rs] + imm
			return true
		}, true
	case xMOVEMULR:
		mvD, mvS := uint8(x.imm), uint8(x.imm>>8)
		return func(c *nctx) bool {
			r := c.regs
			r[mvD] = r[mvS]
			r[rd] = r[rs] * r[rt]
			return true
		}, true
	case xMOVEMULI:
		return func(c *nctx) bool {
			r := c.regs
			r[rt] = r[fl]
			r[rd] = r[rs] * imm
			return true
		}, true
	case xLWMOVE:
		off := int64(x.a1)
		return func(c *nctx) bool {
			r := c.regs
			addr := r[rs] + off
			if uint64(addr) >= uint64(c.memWords) {
				return c.faultAddr(bi, pc, "load from bad address %d", addr)
			}
			r[rd] = c.mem[addr]
			r[rt] = r[fl]
			return true
		}, true
	case xLWADDR:
		off := int64(x.a1)
		addS := uint8(x.imm)
		return func(c *nctx) bool {
			r := c.regs
			addr := r[rs] + off
			if uint64(addr) >= uint64(c.memWords) {
				return c.faultAddr(bi, pc, "load from bad address %d", addr)
			}
			r[rd] = c.mem[addr]
			r[rt] = r[fl] + r[addS]
			return true
		}, true
	case xLWADDI:
		off := int64(x.a1)
		return func(c *nctx) bool {
			r := c.regs
			addr := r[rs] + off
			if uint64(addr) >= uint64(c.memWords) {
				return c.faultAddr(bi, pc, "load from bad address %d", addr)
			}
			r[rd] = c.mem[addr]
			r[rt] = r[fl] + imm
			return true
		}, true
	case xLWSEQR, xLWSLTR, xLWSLER, xLWSNER:
		off := int64(x.a1)
		cmpS := uint8(x.imm)
		op := x.op
		return func(c *nctx) bool {
			r := c.regs
			addr := r[rs] + off
			if uint64(addr) >= uint64(c.memWords) {
				return c.faultAddr(bi, pc, "load from bad address %d", addr)
			}
			r[rd] = c.mem[addr]
			a, b := r[fl], r[cmpS]
			var v int64
			switch op {
			case xLWSEQR:
				v = b2i(a == b)
			case xLWSLTR:
				v = b2i(a < b)
			case xLWSLER:
				v = b2i(a <= b)
			default:
				v = b2i(a != b)
			}
			r[rt] = v
			return true
		}, true
	case xLWSEQI, xLWSLTI, xLWSLEI, xLWSNEI:
		off := int64(x.a1)
		op := x.op
		return func(c *nctx) bool {
			r := c.regs
			addr := r[rs] + off
			if uint64(addr) >= uint64(c.memWords) {
				return c.faultAddr(bi, pc, "load from bad address %d", addr)
			}
			r[rd] = c.mem[addr]
			a := r[fl]
			var v int64
			switch op {
			case xLWSEQI:
				v = b2i(a == imm)
			case xLWSLTI:
				v = b2i(a < imm)
			case xLWSLEI:
				v = b2i(a <= imm)
			default:
				v = b2i(a != imm)
			}
			r[rt] = v
			return true
		}, true
	case xLWDIVR:
		off := int64(x.a1)
		divS := uint8(x.imm)
		return func(c *nctx) bool {
			r := c.regs
			addr := r[rs] + off
			if uint64(addr) >= uint64(c.memWords) {
				return c.faultAddr(bi, pc, "load from bad address %d", addr)
			}
			r[rd] = c.mem[addr]
			d := r[divS]
			if d == 0 {
				return c.fault(bi, pc+1, "division by zero")
			}
			r[rt] = r[fl] / d
			return true
		}, true
	case xMOVELW:
		return func(c *nctx) bool {
			r := c.regs
			r[rt] = r[fl]
			addr := r[rs] + imm
			if uint64(addr) >= uint64(c.memWords) {
				return c.faultAddr(bi, pc+1, "load from bad address %d", addr)
			}
			r[rd] = c.mem[addr]
			return true
		}, true
	case xADDRLW:
		base := uint8(x.imm)
		off := int64(x.a1)
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs] + r[rt]
			addr := r[base] + off
			if uint64(addr) >= uint64(c.memWords) {
				return c.faultAddr(bi, pc+1, "load from bad address %d", addr)
			}
			r[fl] = c.mem[addr]
			return true
		}, true
	case xADDILW:
		off := int64(x.a1)
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs] + imm
			addr := r[fl] + off
			if uint64(addr) >= uint64(c.memWords) {
				return c.faultAddr(bi, pc+1, "load from bad address %d", addr)
			}
			r[rt] = c.mem[addr]
			return true
		}, true
	case xMULIADD:
		addS := uint8(x.a1)
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs] * imm
			r[rt] = r[fl] + r[addS]
			return true
		}, true
	case xPRINT:
		return func(c *nctx) bool {
			res := c.m.res
			res.Output = append(res.Output, c.regs[rs])
			return true
		}, true
	case xSPG:
		return func(c *nctx) bool {
			if c.regs[mach.SP] < c.m.stackFloor {
				return c.spOver(bi, pc)
			}
			return true
		}, true
	case xADDISPG:
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs] + imm
			if r[mach.SP] < c.m.stackFloor {
				return c.spOver(bi, pc)
			}
			return true
		}, true
	case xSWLI:
		off := int64(x.a1)
		return func(c *nctx) bool {
			r := c.regs
			addr := r[rs] + off
			if uint64(addr) >= uint64(c.memWords) {
				return c.faultAddr(bi, pc, "store to bad address %d", addr)
			}
			noteStoreInline(c.m, addr)
			c.mem[addr] = r[rt]
			r[rd] = imm
			return true
		}, true
	case xLI2:
		second := int64(x.a1)
		return func(c *nctx) bool {
			r := c.regs
			r[rd] = imm
			r[rt] = second
			return true
		}, true
	case xSWRUN:
		run := &t.img.runs[x.a1]
		return func(c *nctx) bool {
			r := c.regs
			base := r[run.base]
			if base > -runBaseMax && base < runBaseMax &&
				base+run.minOff >= 0 && base+run.maxOff < c.memWords {
				c.m.noteStoreRange(base+run.minOff, base+run.maxOff+1)
				for j := range run.ents {
					e := &run.ents[j]
					c.mem[base+e.off] = r[e.reg]
				}
			} else {
				for k := range run.ents {
					e := &run.ents[k]
					addr := base + e.off
					if uint64(addr) >= uint64(c.memWords) {
						return c.faultAddr(bi, pc+k, "store to bad address %d", addr)
					}
					c.m.noteStore(addr)
					c.mem[addr] = r[e.reg]
				}
			}
			return true
		}, true
	case xLWRUN:
		run := &t.img.runs[x.a1]
		return func(c *nctx) bool {
			r := c.regs
			base := r[run.base]
			if base > -runBaseMax && base < runBaseMax &&
				base+run.minOff >= 0 && base+run.maxOff < c.memWords {
				for j := range run.ents {
					e := &run.ents[j]
					r[e.reg] = c.mem[base+e.off]
				}
			} else {
				for k := range run.ents {
					e := &run.ents[k]
					addr := base + e.off
					if uint64(addr) >= uint64(c.memWords) {
						return c.faultAddr(bi, pc+k, "load from bad address %d", addr)
					}
					r[e.reg] = c.mem[addr]
				}
			}
			return true
		}, true
	}
	return nil, false
}

// noteStoreInline is machine.noteStore as a free function; with two
// leaf callers per store closure the compiler inlines it, matching the
// fast engine's hand expansion.
func noteStoreInline(m *machine, addr int64) {
	if addr < m.stackFloor {
		if addr < m.loData {
			m.loData = addr
		}
		if addr >= m.hiData {
			m.hiData = addr + 1
		}
	} else {
		if addr < m.loStack {
			m.loStack = addr
		}
		if addr >= m.hiStack {
			m.hiStack = addr + 1
		}
	}
}

// term builds the termInfo for a block's terminating superinstruction.
// Conditional branches carry both a fully specialized closure (no inner
// condition call) and the declarative cond/bnz/edges form for loopTerm.
// The closure and cond bodies intentionally duplicate each compare; the
// differential suite pins both against RunReference.
func (t *ntrans) term(x *xinstr) (termInfo, bool) {
	rd, rs, rt, fl := x.rd, x.rs, x.rt, x.flags
	imm := x.imm
	pc := int(x.pc)
	bnz := x.flags&fBNZ != 0

	switch x.op {
	case xBEQZ, xBNEZ:
		taken, fall := t.edge(x.a1), t.edge(x.a2)
		wantZero := x.op == xBEQZ
		leavePC := pc + 1
		fn := func(c *nctx) *nblock {
			nb := fall
			if (c.regs[rs] == 0) == wantZero {
				c.st.Taken++
				nb = taken
			}
			if nb == nil {
				return c.leave(leavePC)
			}
			return nb
		}
		var cond func(*nctx) (int64, bool)
		if wantZero {
			cond = func(c *nctx) (int64, bool) { return b2i(c.regs[rs] == 0), true }
		} else {
			cond = func(c *nctx) (int64, bool) { return b2i(c.regs[rs] != 0), true }
		}
		return branch(fn, cond, true, x.a1, x.a2, leavePC), true

	case xJ:
		return t.uncond(x.a1, pc+1), true
	case xJAL:
		ra := int64(x.pc) + 1
		// An unresolved extern call completes the jump, then control
		// arrives at pc -1 and leaves the image — after RA is written.
		ti := t.uncond(x.a1, -1)
		ti.step = func(c *nctx) bool { c.regs[mach.RA] = ra; return true }
		return ti, true
	case xJALR:
		ownBI := x.a1
		ra := int64(x.pc) + 1
		funcs := t.p.Funcs
		nf := int64(len(funcs))
		blockIdx := t.img.blockIdx
		nbs := t.nbs
		return termInfo{fn: func(c *nctx) *nblock {
			fv := c.regs[rs]
			if fv < 1 || fv > nf {
				c.faultAddr(ownBI, pc, "indirect call through invalid function value %d", fv)
				return nil
			}
			fi := funcs[fv-1]
			if fi.Entry < 0 {
				c.faultName(ownBI, pc, "indirect call to extern function %s", fi.Name)
				return nil
			}
			c.regs[mach.RA] = ra
			// Function entries are block leaders, so the target is always
			// a block head.
			return &nbs[blockIdx[fi.Entry]]
		}}, true
	case xJR:
		return t.jr(rs), true
	case xADDISPGJR:
		guardBI := x.a2
		ti := t.jr(rt)
		ti.step = func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs] + imm
			if r[mach.SP] < c.m.stackFloor {
				return c.spOver(guardBI, pc)
			}
			return true
		}
		return ti, true
	case xMOVEJ:
		ti := t.uncond(x.a1, pc+1)
		ti.step = func(c *nctx) bool { c.regs[rd] = c.regs[rs]; return true }
		return ti, true
	case xMOVEJAL:
		ti := t.uncond(x.a1, pc+1)
		ti.step = func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs]
			r[mach.RA] = imm
			return true
		}
		return ti, true
	case xMOVE2MOVEJAL:
		m3d, m3s := uint8(x.imm>>8), uint8(x.imm)
		ra := x.imm >> 16
		ti := t.uncond(x.a1, pc+1)
		ti.step = func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs]
			r[rt] = r[fl]
			r[m3d] = r[m3s]
			r[mach.RA] = ra
			return true
		}
		return ti, true
	case xMOVEADDMOVEMULMOVEJ:
		m1d, m1s := uint8(x.a1), uint8(x.a1>>8)
		m2d, m2s := uint8(x.a1>>16), uint8(x.a1>>24)
		mulS := uint8(x.a2)
		mulImm := int64(int32(uint32(x.imm)))
		m3d, m3s := uint8(x.a2>>8), uint8(x.a2>>16)
		ti := t.uncond(int32(x.imm>>32), pc+1)
		ti.step = func(c *nctx) bool {
			r := c.regs
			r[m1d] = r[m1s]
			r[rd] = r[rs] + r[rt]
			r[m2d] = r[m2s]
			r[fl] = r[mulS] * mulImm
			r[m3d] = r[m3s]
			return true
		}
		return ti, true
	case xMOVEJR:
		ti := t.jr(rt)
		ti.step = func(c *nctx) bool { c.regs[rd] = c.regs[rs]; return true }
		return ti, true
	case xADDIMOVEJ:
		ti := t.uncond(x.a1, pc+1)
		ti.step = func(c *nctx) bool {
			r := c.regs
			r[rd] = r[rs] + imm
			r[rt] = r[fl]
			return true
		}
		return ti, true
	case xLIMOVEJR:
		ti := t.jr(rs)
		ti.step = func(c *nctx) bool {
			r := c.regs
			r[rd] = imm
			r[rt] = r[fl]
			return true
		}
		return ti, true
	case xLWADDMOVEJ:
		ownBI := x.a2
		off := int64(x.a1)
		addS := uint8(x.imm)
		mvD, mvS := uint8(x.imm>>8), uint8(x.imm>>16)
		ti := t.uncond(int32(x.imm>>24), pc+1)
		ti.step = func(c *nctx) bool {
			r := c.regs
			addr := r[rs] + off
			if uint64(addr) >= uint64(c.memWords) {
				return c.faultAddr(ownBI, pc, "load from bad address %d", addr)
			}
			r[rd] = c.mem[addr]
			r[rt] = r[fl] + r[addS]
			r[mvD] = r[mvS]
			return true
		}
		return ti, true
	case xMOVEFALL:
		ti := t.uncond(x.a2, pc+1)
		ti.step = func(c *nctx) bool { c.regs[rd] = c.regs[rs]; return true }
		return ti, true
	case xLIFALL:
		ti := t.uncond(x.a2, pc+1)
		ti.step = func(c *nctx) bool { c.regs[rd] = imm; return true }
		return ti, true
	case xFALL:
		return t.uncond(x.a2, pc+1), true
	case xEXIT:
		return termInfo{fn: func(c *nctx) *nblock {
			c.sig = nsExit
			return nil
		}}, true

	case xDIVLIREM2X2SNEB:
		ownBI := x.a2
		li1, par1 := uint8(x.imm), uint8(x.imm>>8)
		d2rd, d2rs, d2rt := uint8(x.imm>>16), uint8(x.imm>>24), uint8(x.imm>>32)
		li2, par2 := uint8(x.imm>>40), uint8(x.imm>>48)
		cmpD := x.flags >> 1
		taken, fall := t.edge(x.a1), t.edge(x.a2+1)
		leavePC := pc + 1
		// Every intermediate is written to and re-read from the register
		// file at the reference interpreter's program points, so register
		// aliasing between the eight instructions resolves identically
		// (same contract as the fast engine's case body).
		cond := func(c *nctx) (int64, bool) {
			r := c.regs
			d := r[rt]
			if d == 0 {
				return 0, c.fault(ownBI, pc, "division by zero")
			}
			r[rd] = r[rs] / d
			r[li1] = 2
			r[par1] = r[rd] % 2
			d2 := r[d2rt]
			if d2 == 0 {
				return 0, c.fault(ownBI, pc+3, "division by zero")
			}
			r[d2rd] = r[d2rs] / d2
			r[li2] = 2
			r[par2] = r[d2rd] % 2
			v := b2i(r[par1] != r[par2])
			r[cmpD] = v
			return v, true
		}
		fn := func(c *nctx) *nblock {
			r := c.regs
			d := r[rt]
			if d == 0 {
				c.fault(ownBI, pc, "division by zero")
				return nil
			}
			r[rd] = r[rs] / d
			r[li1] = 2
			r[par1] = r[rd] % 2
			d2 := r[d2rt]
			if d2 == 0 {
				c.fault(ownBI, pc+3, "division by zero")
				return nil
			}
			r[d2rd] = r[d2rs] / d2
			r[li2] = 2
			r[par2] = r[d2rd] % 2
			v := b2i(r[par1] != r[par2])
			r[cmpD] = v
			nb := fall
			if (v != 0) == bnz {
				c.st.Taken++
				nb = taken
			}
			if nb == nil {
				return c.leave(leavePC)
			}
			return nb
		}
		return branch(fn, cond, bnz, x.a1, x.a2+1, leavePC), true

	case xSLTRB, xSLERB, xSEQRB, xSNERB:
		taken, fall := t.edge(x.a1), t.edge(x.a2)
		leavePC := pc + 1
		op := x.op
		cond := func(c *nctx) (int64, bool) {
			r := c.regs
			var v int64
			switch op {
			case xSLTRB:
				v = b2i(r[rs] < r[rt])
			case xSLERB:
				v = b2i(r[rs] <= r[rt])
			case xSEQRB:
				v = b2i(r[rs] == r[rt])
			default:
				v = b2i(r[rs] != r[rt])
			}
			r[rd] = v
			return v, true
		}
		fn := func(c *nctx) *nblock {
			r := c.regs
			var v int64
			switch op {
			case xSLTRB:
				v = b2i(r[rs] < r[rt])
			case xSLERB:
				v = b2i(r[rs] <= r[rt])
			case xSEQRB:
				v = b2i(r[rs] == r[rt])
			default:
				v = b2i(r[rs] != r[rt])
			}
			r[rd] = v
			nb := fall
			if (v != 0) == bnz {
				c.st.Taken++
				nb = taken
			}
			if nb == nil {
				return c.leave(leavePC)
			}
			return nb
		}
		return branch(fn, cond, bnz, x.a1, x.a2, leavePC), true
	case xSLTIB, xSLEIB, xSEQIB, xSNEIB:
		taken, fall := t.edge(x.a1), t.edge(x.a2)
		leavePC := pc + 1
		op := x.op
		cond := func(c *nctx) (int64, bool) {
			r := c.regs
			var v int64
			switch op {
			case xSLTIB:
				v = b2i(r[rs] < imm)
			case xSLEIB:
				v = b2i(r[rs] <= imm)
			case xSEQIB:
				v = b2i(r[rs] == imm)
			default:
				v = b2i(r[rs] != imm)
			}
			r[rd] = v
			return v, true
		}
		fn := func(c *nctx) *nblock {
			r := c.regs
			var v int64
			switch op {
			case xSLTIB:
				v = b2i(r[rs] < imm)
			case xSLEIB:
				v = b2i(r[rs] <= imm)
			case xSEQIB:
				v = b2i(r[rs] == imm)
			default:
				v = b2i(r[rs] != imm)
			}
			r[rd] = v
			nb := fall
			if (v != 0) == bnz {
				c.st.Taken++
				nb = taken
			}
			if nb == nil {
				return c.leave(leavePC)
			}
			return nb
		}
		return branch(fn, cond, bnz, x.a1, x.a2, leavePC), true

	case xLWSEQRB, xLWSNERB, xLWSLTRB, xLWSLERB:
		ownBI := x.a2
		off := int64(int32(uint32(x.imm)))
		cmpS := x.flags >> 1
		cmpR := uint8(x.imm >> 32)
		op := x.op
		taken, fall := t.edge(x.a1), t.edge(x.a2+1)
		leavePC := pc + 1
		cond := func(c *nctx) (int64, bool) {
			r := c.regs
			addr := r[rs] + off
			if uint64(addr) >= uint64(c.memWords) {
				return 0, c.faultAddr(ownBI, pc, "load from bad address %d", addr)
			}
			r[rd] = c.mem[addr]
			a, b := r[cmpS], r[cmpR]
			var v int64
			switch op {
			case xLWSEQRB:
				v = b2i(a == b)
			case xLWSNERB:
				v = b2i(a != b)
			case xLWSLTRB:
				v = b2i(a < b)
			default:
				v = b2i(a <= b)
			}
			r[rt] = v
			return v, true
		}
		fn := func(c *nctx) *nblock {
			r := c.regs
			addr := r[rs] + off
			if uint64(addr) >= uint64(c.memWords) {
				c.faultAddr(ownBI, pc, "load from bad address %d", addr)
				return nil
			}
			r[rd] = c.mem[addr]
			a, b := r[cmpS], r[cmpR]
			var v int64
			switch op {
			case xLWSEQRB:
				v = b2i(a == b)
			case xLWSNERB:
				v = b2i(a != b)
			case xLWSLTRB:
				v = b2i(a < b)
			default:
				v = b2i(a <= b)
			}
			r[rt] = v
			nb := fall
			if (v != 0) == bnz {
				c.st.Taken++
				nb = taken
			}
			if nb == nil {
				return c.leave(leavePC)
			}
			return nb
		}
		return branch(fn, cond, bnz, x.a1, x.a2+1, leavePC), true
	case xLWSEQIB, xLWSNEIB, xLWSLTIB, xLWSLEIB:
		ownBI := x.a2
		off := int64(int32(uint32(x.imm)))
		cmpS := x.flags >> 1
		cmpImm := x.imm >> 32
		op := x.op
		taken, fall := t.edge(x.a1), t.edge(x.a2+1)
		leavePC := pc + 1
		cond := func(c *nctx) (int64, bool) {
			r := c.regs
			addr := r[rs] + off
			if uint64(addr) >= uint64(c.memWords) {
				return 0, c.faultAddr(ownBI, pc, "load from bad address %d", addr)
			}
			r[rd] = c.mem[addr]
			a := r[cmpS]
			var v int64
			switch op {
			case xLWSEQIB:
				v = b2i(a == cmpImm)
			case xLWSNEIB:
				v = b2i(a != cmpImm)
			case xLWSLTIB:
				v = b2i(a < cmpImm)
			default:
				v = b2i(a <= cmpImm)
			}
			r[rt] = v
			return v, true
		}
		fn := func(c *nctx) *nblock {
			r := c.regs
			addr := r[rs] + off
			if uint64(addr) >= uint64(c.memWords) {
				c.faultAddr(ownBI, pc, "load from bad address %d", addr)
				return nil
			}
			r[rd] = c.mem[addr]
			a := r[cmpS]
			var v int64
			switch op {
			case xLWSEQIB:
				v = b2i(a == cmpImm)
			case xLWSNEIB:
				v = b2i(a != cmpImm)
			case xLWSLTIB:
				v = b2i(a < cmpImm)
			default:
				v = b2i(a <= cmpImm)
			}
			r[rt] = v
			nb := fall
			if (v != 0) == bnz {
				c.st.Taken++
				nb = taken
			}
			if nb == nil {
				return c.leave(leavePC)
			}
			return nb
		}
		return branch(fn, cond, bnz, x.a1, x.a2+1, leavePC), true
	case xMULIADDLWSEQIB:
		ownBI := x.a2
		mulD, mulS := uint8(x.imm), uint8(x.imm>>8)
		lwD := uint8(x.imm >> 16)
		off := int64(int16(uint16(x.imm >> 24)))
		mulImm := int64(int16(uint16(x.imm >> 40)))
		cmpImm := int64(int8(uint8(x.imm >> 56)))
		cmpD := x.flags >> 1
		taken, fall := t.edge(x.a1), t.edge(x.a2+1)
		leavePC := pc + 1
		cond := func(c *nctx) (int64, bool) {
			r := c.regs
			r[mulD] = r[mulS] * mulImm
			r[rd] = r[rs] + r[rt]
			addr := r[rd] + off
			if uint64(addr) >= uint64(c.memWords) {
				return 0, c.faultAddr(ownBI, pc+2, "load from bad address %d", addr)
			}
			r[lwD] = c.mem[addr]
			v := b2i(r[lwD] == cmpImm)
			r[cmpD] = v
			return v, true
		}
		fn := func(c *nctx) *nblock {
			r := c.regs
			r[mulD] = r[mulS] * mulImm
			r[rd] = r[rs] + r[rt]
			addr := r[rd] + off
			if uint64(addr) >= uint64(c.memWords) {
				c.faultAddr(ownBI, pc+2, "load from bad address %d", addr)
				return nil
			}
			r[lwD] = c.mem[addr]
			v := b2i(r[lwD] == cmpImm)
			r[cmpD] = v
			nb := fall
			if (v != 0) == bnz {
				c.st.Taken++
				nb = taken
			}
			if nb == nil {
				return c.leave(leavePC)
			}
			return nb
		}
		return branch(fn, cond, bnz, x.a1, x.a2+1, leavePC), true
	}
	return termInfo{}, false
}
