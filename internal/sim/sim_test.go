package sim

import (
	"errors"
	"testing"
	"time"

	"chow88/internal/mach"
	"chow88/internal/mcode"
)

// prog builds a runnable image from raw instructions placed in one
// function after the startup stub.
func prog(ins ...mcode.Instr) *mcode.Program {
	code := []mcode.Instr{
		{Op: mcode.JAL, Target: 2},
		{Op: mcode.EXIT},
	}
	code = append(code, ins...)
	return &mcode.Program{
		Code:     code,
		Funcs:    []*mcode.FuncInfo{{Name: "main", Entry: 2, End: len(code)}},
		DataSize: 2048,
	}
}

func TestALUAndPrint(t *testing.T) {
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 6},
		mcode.Instr{Op: mcode.LI, Rd: mach.T1, Imm: 7},
		mcode.Instr{Op: mcode.MUL, Rd: mach.T2, Rs: mach.T0, Rt: mach.T1},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T2},
		mcode.Instr{Op: mcode.ADD, Rd: mach.T2, Rs: mach.T2, HasImm: true, Imm: -2},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T2},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 2 || res.Output[0] != 42 || res.Output[1] != 40 {
		t.Fatalf("output = %v", res.Output)
	}
	// Cycle model: MUL costs 12.
	if res.Stats.MulDiv != 1 {
		t.Errorf("muldiv = %d", res.Stats.MulDiv)
	}
	wantCycles := int64(1 /*jal*/ + 1 /*exit*/ + 1 + 1 + 12 + 1 + 1 + 1 + 1)
	if res.Stats.Cycles != wantCycles {
		t.Errorf("cycles = %d, want %d", res.Stats.Cycles, wantCycles)
	}
}

func TestMemoryAndClasses(t *testing.T) {
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 99},
		mcode.Instr{Op: mcode.SW, Rs: mach.Zero, Rt: mach.T0, Imm: 1024, Class: mcode.ClassScalar},
		mcode.Instr{Op: mcode.LW, Rd: mach.T1, Rs: mach.Zero, Imm: 1024, Class: mcode.ClassSaveRestore},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T1},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 99 {
		t.Fatalf("output = %v", res.Output)
	}
	st := res.Stats
	if st.StoresByClass[mcode.ClassScalar] != 1 || st.LoadsByClass[mcode.ClassSaveRestore] != 1 {
		t.Errorf("class counts wrong: %+v", st)
	}
	if st.ScalarLS() != 2 {
		t.Errorf("scalarLS = %d", st.ScalarLS())
	}
}

func TestDivTrap(t *testing.T) {
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 5},
		mcode.Instr{Op: mcode.DIV, Rd: mach.T1, Rs: mach.T0, Rt: mach.T2},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	_, err := Run(p, Options{})
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("err = %v, want trap", err)
	}
}

func TestBadAddressTrap(t *testing.T) {
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: -5},
		mcode.Instr{Op: mcode.LW, Rd: mach.T1, Rs: mach.T0, Class: mcode.ClassScalar},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	var trap *Trap
	if _, err := Run(p, Options{}); !errors.As(err, &trap) {
		t.Fatalf("want trap, got %v", err)
	}
}

func TestStackOverflowTrap(t *testing.T) {
	// Infinite recursion: each frame drops SP by 64 words.
	code := []mcode.Instr{
		{Op: mcode.JAL, Target: 2},
		{Op: mcode.EXIT},
		{Op: mcode.ADD, Rd: mach.SP, Rs: mach.SP, HasImm: true, Imm: -64},
		{Op: mcode.JAL, Target: 2},
	}
	p := &mcode.Program{
		Code:     code,
		Funcs:    []*mcode.FuncInfo{{Name: "main", Entry: 2, End: 4}},
		DataSize: 2048,
	}
	var trap *Trap
	if _, err := Run(p, Options{MemWords: 1 << 16}); !errors.As(err, &trap) {
		t.Fatalf("want stack-overflow trap, got %v", err)
	}
}

func TestInstrBudget(t *testing.T) {
	code := []mcode.Instr{
		{Op: mcode.JAL, Target: 2},
		{Op: mcode.EXIT},
		{Op: mcode.J, Target: 2},
	}
	p := &mcode.Program{
		Code:     code,
		Funcs:    []*mcode.FuncInfo{{Name: "main", Entry: 2, End: 3}},
		DataSize: 2048,
	}
	if _, err := Run(p, Options{MaxInstrs: 1000}); !errors.Is(err, ErrLimit) {
		t.Fatalf("want limit, got %v", err)
	}
}

func TestWallClockDeadline(t *testing.T) {
	code := []mcode.Instr{
		{Op: mcode.JAL, Target: 2},
		{Op: mcode.EXIT},
		{Op: mcode.J, Target: 2},
	}
	p := &mcode.Program{
		Code:     code,
		Funcs:    []*mcode.FuncInfo{{Name: "main", Entry: 2, End: 3}},
		DataSize: 2048,
	}
	for _, run := range []struct {
		name string
		fn   func(*mcode.Program, Options) (*Result, error)
	}{{"native", pinEngine("native")}, {"fast", pinEngine("fast")}, {"reference", RunReference}} {
		t.Run(run.name, func(t *testing.T) {
			res, err := run.fn(p, Options{Deadline: time.Millisecond})
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("want ErrDeadline, got %v", err)
			}
			// Expiry must surface the partial statistics, not discard them.
			if res == nil || res.Stats.Instrs == 0 {
				t.Fatal("deadline expiry returned no partial statistics")
			}
		})
	}
	// A generous deadline must not interfere with a clean run.
	p2 := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 7},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T0},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	res, err := Run(p2, Options{Deadline: time.Minute})
	if err != nil || len(res.Output) != 1 || res.Output[0] != 7 {
		t.Fatalf("clean run under deadline: out=%v err=%v", res.Output, err)
	}
}

func TestBadIndirectTrap(t *testing.T) {
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 0},
		mcode.Instr{Op: mcode.JALR, Rs: mach.T0},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	var trap *Trap
	if _, err := Run(p, Options{}); !errors.As(err, &trap) {
		t.Fatalf("want trap, got %v", err)
	}
}

func TestBranchesAndCounters(t *testing.T) {
	// Loop 3 times: counts branches and taken-ness.
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 3},
		// loop:
		mcode.Instr{Op: mcode.ADD, Rd: mach.T0, Rs: mach.T0, HasImm: true, Imm: -1},
		mcode.Instr{Op: mcode.BNEZ, Rs: mach.T0, Target: 3},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T0},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 0 {
		t.Fatalf("output = %v", res.Output)
	}
	if res.Stats.Branches != 3 || res.Stats.Taken != 2 {
		t.Errorf("branches=%d taken=%d", res.Stats.Branches, res.Stats.Taken)
	}
	if res.Stats.Calls != 1 {
		t.Errorf("calls = %d", res.Stats.Calls)
	}
}

func TestZeroRegisterStaysZero(t *testing.T) {
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.Zero, Imm: 77},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.Zero},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 0 {
		t.Errorf("$zero = %d", res.Output[0])
	}
}

func TestSignedDivisionSemantics(t *testing.T) {
	mk := func(a, b int64, op mcode.OpCode) int64 {
		p := prog(
			mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: a},
			mcode.Instr{Op: mcode.LI, Rd: mach.T1, Imm: b},
			mcode.Instr{Op: op, Rd: mach.T2, Rs: mach.T0, Rt: mach.T1},
			mcode.Instr{Op: mcode.PRINT, Rs: mach.T2},
			mcode.Instr{Op: mcode.JR, Rs: mach.RA},
		)
		res, err := Run(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Output[0]
	}
	if got := mk(-7, 2, mcode.DIV); got != -3 {
		t.Errorf("-7/2 = %d", got)
	}
	if got := mk(-7, 2, mcode.REM); got != -1 {
		t.Errorf("-7%%2 = %d", got)
	}
	if got := mk(-1<<63, -1, mcode.DIV); got != -1<<63 {
		t.Errorf("overflow div = %d", got)
	}
	if got := mk(-1<<63, -1, mcode.REM); got != 0 {
		t.Errorf("overflow rem = %d", got)
	}
}

// TestDeadlinePartialStatsExact pins the boundary semantics of deadline
// expiry: the partial Stats must describe exactly the instructions that ran
// to completion, with no phantom fetched-but-unexecuted instruction counted.
// Ground truth comes from the instruction budget, whose documented semantics
// execute exactly MaxInstrs instructions and then count the over-budget
// fetch before failing: a deadline run reporting N executed instructions
// must match a MaxInstrs=N reference run in Output, InstrCounts and every
// Stats counter except Instrs itself (where the budget run reads N+1).
func TestDeadlinePartialStatsExact(t *testing.T) {
	// An infinite loop with varied cost per instruction — ALU, mul, store,
	// load, branch — so an off-by-one instruction shows up in several
	// counters at once, not just Instrs.
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 0},
		// loop:
		mcode.Instr{Op: mcode.ADD, Rd: mach.T0, Rs: mach.T0, HasImm: true, Imm: 1},
		mcode.Instr{Op: mcode.MUL, Rd: mach.T1, Rs: mach.T0, HasImm: true, Imm: 3},
		mcode.Instr{Op: mcode.SW, Rs: mach.T2, Rt: mach.T1, Imm: 1500, Class: mcode.ClassScalar},
		mcode.Instr{Op: mcode.LW, Rd: mach.T1, Rs: mach.T2, Imm: 1500, Class: mcode.ClassScalar},
		mcode.Instr{Op: mcode.BNEZ, Rs: mach.T0, Target: 3},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	engines := []struct {
		name string
		run  func(*mcode.Program, Options) (*Result, error)
	}{
		{"native", pinEngine("native")},
		{"fast", pinEngine("fast")},
		{"reference", RunReference},
	}
	for _, e := range engines {
		t.Run(e.name, func(t *testing.T) {
			// An already-expired deadline fires at the first stride poll,
			// leaving a partial prefix of the run behind.
			part, err := e.run(p, Options{Deadline: time.Nanosecond, Profile: true})
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("want ErrDeadline, got %v", err)
			}
			n := part.Stats.Instrs
			if n <= 0 {
				t.Fatalf("deadline run reports %d executed instructions", n)
			}
			ref, err := RunReference(p, Options{MaxInstrs: n, Profile: true})
			if !errors.Is(err, ErrLimit) {
				t.Fatalf("want ErrLimit from budget run, got %v", err)
			}
			want := ref.Stats
			want.Instrs-- // the budget run counts its over-budget fetch
			if part.Stats != want {
				t.Errorf("partial stats diverge from an exact %d-instruction run:\n got %+v\nwant %+v",
					n, part.Stats, want)
			}
			if len(part.Output) != len(ref.Output) {
				t.Errorf("output length: got %d want %d", len(part.Output), len(ref.Output))
			}
			for i := range part.Output {
				if part.Output[i] != ref.Output[i] {
					t.Errorf("output[%d]: got %d want %d", i, part.Output[i], ref.Output[i])
				}
			}
			// InstrCounts must differ only by the budget run's single
			// phantom fetch at the pc it faulted on.
			if len(part.InstrCounts) != len(ref.InstrCounts) {
				t.Fatalf("instr count lengths: got %d want %d", len(part.InstrCounts), len(ref.InstrCounts))
			}
			var extra int64
			for pc := range ref.InstrCounts {
				d := ref.InstrCounts[pc] - part.InstrCounts[pc]
				if d < 0 || d > 1 {
					t.Fatalf("instr counts at pc %d differ by %d", pc, d)
				}
				extra += d
			}
			if extra != 1 {
				t.Errorf("budget run should count exactly one phantom fetch, found %d", extra)
			}
		})
	}
}

// pinEngine adapts Run to the (program, options) signature of the engine
// tables above, with the named tier pinned via Options.Engine.
func pinEngine(engine string) func(*mcode.Program, Options) (*Result, error) {
	return func(p *mcode.Program, o Options) (*Result, error) {
		o.Engine = engine
		return Run(p, o)
	}
}
