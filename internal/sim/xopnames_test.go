package sim

import "testing"

// TestXopNamesComplete pins the display-name table to the internal ISA:
// every opcode in [0, numXops) must carry a distinct, non-placeholder
// name. The dispatch histogram, run reports and the native translator's
// decline diagnostics all label opcodes through xopName, so a new
// superinstruction cannot land without its name showing up here.
func TestXopNamesComplete(t *testing.T) {
	seen := make(map[string]xop, numXops)
	for op := 0; op < numXops; op++ {
		name := xopName(xop(op))
		if name == "" || name == "XOP?" {
			t.Errorf("opcode %d has no entry in xopNames", op)
			continue
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("opcodes %d and %d share the name %q", prev, op, name)
		}
		seen[name] = xop(op)
	}
}
