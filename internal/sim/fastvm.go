// The predecoded execution engine. runFast drives the image produced by
// predecode as one flat dispatch loop over the internal instruction
// stream: static control edges carry the target's block index, so
// following an edge is a handful of arithmetic instructions — bump the
// entered block's entry counter, charge its instruction count against the
// budget, jump to its first internal instruction. The only statistic
// maintained while blocks execute is that per-block entry counter; the
// full pixie.Stats plus the per-instruction profile counts are
// materialized from the counters once, when the run ends (pixie's own
// block-counting technique). The register file is over-sized to 256 slots
// so the uint8 register fields of the internal ISA can never index out of
// range, letting the compiler drop every register bounds check in the hot
// loop; stack-overflow detection costs nothing per instruction because
// predecode emits a guard opcode only after instructions that write $sp.
//
// Exactness on faults is non-negotiable: a trap must report the same PC,
// the same message and the same partial statistics as the reference
// interpreter. The fast path executes instructions for real (so machine
// state is always true) and batches only the counters; when an instruction
// faults mid-block, the trap helpers unwind the faulting block's entry
// count, flush the batched counters, then reconstruct per-instruction
// statistics for the completed prefix of the faulting block from the
// original code, then apply the reference interpreter's exact partial
// accounting for the faulting instruction itself. The instruction budget
// is pre-checked per block entry: a block that could exhaust it is
// delegated (after a flush) to the reference interpreter, which then owns
// the run to termination — it is within one block of the limit, so this
// costs nothing measurable.
package sim

import (
	"fmt"
	"time"

	"chow88/internal/mach"
	"chow88/internal/mcode"
	"chow88/internal/obs"
)

// runBaseMax bounds the base-register magnitude eligible for a memory
// run's single bounds check; combined with the offset bound applied at
// fusion time it makes base+minOff / base+maxOff overflow-free. Bases
// outside the window take the per-entry walk, whose address arithmetic
// wraps exactly like the reference interpreter's.
const runBaseMax = int64(1) << 62

// entCnt is runFast's per-run copy of a blkEnt with the block's entry
// counter inline: the edge code then touches one cache line per block
// transition instead of two (the shared image's ents plus a separate
// counts array). The image itself stays immutable and shareable.
type entCnt struct {
	x0     int32 // copied from blkEnt (negative marks a threaded J-only block)
	ninstr int32
	count  int64
}

// prefixStats accounts the fully-completed instructions [b.start, end) of
// a block the fast engine was executing when a fault struck: full
// per-instruction statistics plus profile counts. No branch can sit in
// the prefix (branches terminate blocks and never fault), so Taken needs
// no handling.
func (m *machine) prefixStats(b *block, end int) {
	st := &m.res.Stats
	ic := m.res.InstrCounts
	for pc := int(b.start); pc < end; pc++ {
		addInstrStats(st, &m.p.Code[pc])
		if ic != nil {
			ic[pc]++
		}
	}
}

// flushEnts materializes pixie.Stats, the per-instruction profile counts
// and the obs dispatch histogram from the per-run block entry counters,
// then resets the counters so it is safe to resume batching afterwards.
// Both block engines — the predecoded dispatch loop and the
// closure-threaded native tier — run on the same entry-counter
// representation, so this is the single place batched counts become
// statistics.
func (m *machine) flushEnts(img *image, ents []entCnt) {
	st := &m.res.Stats
	ic := m.res.InstrCounts
	xcode := img.xcode
	for bi := range ents {
		c := ents[bi].count
		if c == 0 {
			continue
		}
		b := &img.blocks[bi]
		st.AddN(&b.delta, c)
		if ic != nil {
			for i := b.start; i < b.end; i++ {
				ic[i] += c
			}
			for _, tb := range img.tails[bi] {
				tbb := &img.blocks[tb]
				for i := tbb.start; i < tbb.end; i++ {
					ic[i] += c
				}
			}
		}
		if m.superHits != nil {
			// Attribute the block's dispatches to its predecoded span
			// (tail-inlined bodies included — they live in the span).
			// Never touched in the dispatch loops: the histogram, like
			// Stats, materializes from the entry counters alone.
			m.blockEntries += c
			hi := int32(len(xcode))
			if bi+1 < len(img.blocks) {
				hi = img.blocks[bi+1].x0
			}
			for k := b.x0; k < hi; k++ {
				m.superHits[xcode[k].op] += c
			}
		}
		ents[bi].count = 0
	}
}

// faultEnts reports a trap with preformatted message msg at original code
// index fpc inside block bi, replicating the reference interpreter's
// partial accounting for the faulting instruction: InstrCounts and
// Instrs/Cycles always tick before any fault there; DIV/REM charge their
// full latency before the zero check; JALR counts the call before
// validating the callee. The faulting block's entry is unwound first — it
// never completed, so its batched delta must not apply.
func (m *machine) faultEnts(img *image, ents []entCnt, bi int32, fpc int, msg string) error {
	ents[bi].count--
	m.flushEnts(img, ents)
	m.prefixStats(&img.blocks[bi], fpc)
	st := &m.res.Stats
	if ic := m.res.InstrCounts; ic != nil {
		ic[fpc]++
	}
	st.Instrs++
	st.Cycles++
	if m.p.Code[fpc].Linkage {
		st.LinkageCycles++
	}
	switch m.p.Code[fpc].Op {
	case mcode.DIV, mcode.REM:
		st.Cycles += 34
		st.MulDiv++
	case mcode.JALR:
		st.Calls++
	}
	return &Trap{Msg: msg, PC: fpc}
}

// spOverEnts reports a stack overflow after the instruction at fpc: the
// reference interpreter completes the instruction (full statistics) and
// then checks the floor, so the prefix includes fpc itself.
func (m *machine) spOverEnts(img *image, ents []entCnt, bi int32, fpc int) error {
	ents[bi].count--
	m.flushEnts(img, ents)
	m.prefixStats(&img.blocks[bi], fpc+1)
	return m.trap(fpc, "stack overflow (sp %d below floor %d)", m.regs[mach.SP], m.stackFloor)
}

// runFast executes the program from pc 0 on the predecoded image.
func (m *machine) runFast(img *image) error {
	p := m.p
	n := len(p.Code)
	st := &m.res.Stats
	regs := &m.regs
	mem := m.mem
	memWords := m.memWords
	xcode := img.xcode

	// ents is the per-run copy of the image's block entry table with each
	// block's entry counter inline — the only state the dispatch loop
	// maintains per transition, and a single cache line per entry instead
	// of the shared ents plus a separate counts array. flush materializes
	// Stats and (when profiling) InstrCounts from the counters; it runs on
	// every exit path and before any hand-off to the precise interpreter,
	// and resets the counters so it is safe to resume batching afterwards.
	// A block entry that faults before completing is unwound (count--) by
	// the trap helpers before they flush. Tail-inlined blocks execute under
	// the inlining block's count: its delta already includes theirs, and
	// the tails list routes InstrCounts to their code ranges.
	ents := make([]entCnt, len(img.ents))
	for i, e := range img.ents {
		ents[i] = entCnt{x0: e.x0, ninstr: e.ninstr}
	}
	flush := func() { m.flushEnts(img, ents) }

	// fault reports a trap at original code index fpc inside block bi; the
	// partial-accounting contract lives in machine.faultEnts, shared with
	// the native tier.
	fault := func(bi int32, fpc int, format string, args ...any) error {
		return m.faultEnts(img, ents, bi, fpc, fmt.Sprintf(format, args...))
	}

	// spOver reports a stack overflow after the instruction at fpc; see
	// machine.spOverEnts.
	spOver := func(bi int32, fpc int) error {
		return m.spOverEnts(img, ents, bi, fpc)
	}

	// instrs mirrors what st.Instrs will be once counts are flushed; the
	// per-block budget pre-check reads it instead of touching st. nbi is
	// the pending control edge: terminator cases set it and fall out of
	// the switch into the shared edge code below; every other case loops
	// back directly with continue.
	var instrs int64
	var nbi int32
	var xi int

	// Enter block 0 (the startup stub at pc 0).
	{
		bb := &img.blocks[0]
		ents[0].count++
		instrs += bb.ninstr
		if instrs > m.maxInstrs {
			ents[0].count--
			flush()
			obs.Current().Add(obs.CSimBudgetHandoff, 1)
			_, _, err := m.interpret(0, nil)
			return err
		}
		if instrs >= m.deadlineAt {
			m.deadlineAt += deadlineStride
			if time.Now().After(m.deadline) {
				ents[0].count--
				flush()
				return fmt.Errorf("pc 0: %w", ErrDeadline)
			}
		}
		xi = int(bb.x0)
	}

	for {
		x := &xcode[xi]
		xi++
		switch x.op {
		case xLI:
			regs[x.rd] = x.imm
			continue
		case xMOVE:
			regs[x.rd] = regs[x.rs]
			continue
		case xADDR:
			regs[x.rd] = regs[x.rs] + regs[x.rt]
			continue
		case xADDI:
			regs[x.rd] = regs[x.rs] + x.imm
			continue
		case xSUBR:
			regs[x.rd] = regs[x.rs] - regs[x.rt]
			continue
		case xSUBI:
			regs[x.rd] = regs[x.rs] - x.imm
			continue
		case xMULR:
			regs[x.rd] = regs[x.rs] * regs[x.rt]
			continue
		case xMULI:
			regs[x.rd] = regs[x.rs] * x.imm
			continue
		case xDIVR:
			d := regs[x.rt]
			if d == 0 {
				return fault(x.a2, int(x.pc), "division by zero")
			}
			regs[x.rd] = regs[x.rs] / d
			continue
		case xDIVI:
			if x.imm == 0 {
				return fault(x.a2, int(x.pc), "division by zero")
			}
			regs[x.rd] = regs[x.rs] / x.imm
			continue
		case xREMR:
			d := regs[x.rt]
			if d == 0 {
				return fault(x.a2, int(x.pc), "division by zero")
			}
			regs[x.rd] = regs[x.rs] % d
			continue
		case xREMI:
			if x.imm == 0 {
				return fault(x.a2, int(x.pc), "division by zero")
			}
			regs[x.rd] = regs[x.rs] % x.imm
			continue
		case xSLTR:
			regs[x.rd] = b2i(regs[x.rs] < regs[x.rt])
			continue
		case xSLTI:
			regs[x.rd] = b2i(regs[x.rs] < x.imm)
			continue
		case xSLER:
			regs[x.rd] = b2i(regs[x.rs] <= regs[x.rt])
			continue
		case xSLEI:
			regs[x.rd] = b2i(regs[x.rs] <= x.imm)
			continue
		case xSEQR:
			regs[x.rd] = b2i(regs[x.rs] == regs[x.rt])
			continue
		case xSEQI:
			regs[x.rd] = b2i(regs[x.rs] == x.imm)
			continue
		case xSNER:
			regs[x.rd] = b2i(regs[x.rs] != regs[x.rt])
			continue
		case xSNEI:
			regs[x.rd] = b2i(regs[x.rs] != x.imm)
			continue
		case xLW:
			addr := regs[x.rs] + x.imm
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			continue
		case xSW:
			addr := regs[x.rs] + x.imm
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "store to bad address %d", addr)
			}
			// noteStore, expanded by hand: runFast is past the size where the
			// compiler inlines it, and a call per store is measurable.
			if addr < m.stackFloor {
				if addr < m.loData {
					m.loData = addr
				}
				if addr >= m.hiData {
					m.hiData = addr + 1
				}
			} else {
				if addr < m.loStack {
					m.loStack = addr
				}
				if addr >= m.hiStack {
					m.hiStack = addr + 1
				}
			}
			mem[addr] = regs[x.rt]
			continue
		case xMOVE2:
			regs[x.rd] = regs[x.rs]
			regs[x.rt] = regs[x.flags]
			continue
		case xLIMOVE:
			regs[x.rd] = x.imm
			regs[x.rt] = regs[x.flags]
			continue
		case xLIDIVR:
			regs[x.rd] = x.imm
			regs[x.rt] = regs[x.rs] / x.imm
			continue
		case xLIREMR:
			regs[x.rd] = x.imm
			regs[x.rt] = regs[x.rs] % x.imm
			continue
		case xLIREM2:
			regs[x.rd] = 2
			regs[x.rt] = regs[x.rs] % 2
			continue
		case xDIVLIREM2:
			d := regs[x.rt]
			if d == 0 {
				return fault(x.a2, int(x.pc), "division by zero")
			}
			regs[x.rd] = regs[x.rs] / d
			regs[x.flags] = 2
			regs[uint8(x.a1>>8)] = regs[uint8(x.a1)] % 2
			continue
		case xMOVEADDMOVEMUL:
			regs[uint8(x.a1)] = regs[uint8(x.a1>>8)]
			regs[x.rd] = regs[x.rs] + regs[x.rt]
			regs[uint8(x.a1>>16)] = regs[uint8(x.a1>>24)]
			regs[x.flags] = regs[uint8(x.a2)] * x.imm
			continue
		case xMOVELWADDMOVE:
			regs[x.rt] = regs[x.flags]
			addr := regs[x.rs] + x.imm>>32
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc)+1, "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			regs[uint8(x.imm)] = regs[uint8(x.imm>>8)] + regs[uint8(x.imm>>16)]
			regs[uint8(x.a1)] = regs[uint8(x.a1>>8)]
			continue
		case xADDRMOVE:
			regs[x.rd] = regs[x.rs] + regs[x.rt]
			regs[uint8(x.imm)] = regs[uint8(x.imm>>8)]
			continue
		case xADDIMOVE:
			regs[x.rd] = regs[x.rs] + x.imm
			regs[x.rt] = regs[x.flags]
			continue
		case xMULRMOVE:
			regs[x.rd] = regs[x.rs] * regs[x.rt]
			regs[uint8(x.imm)] = regs[uint8(x.imm>>8)]
			continue
		case xMULIMOVE:
			regs[x.rd] = regs[x.rs] * x.imm
			regs[x.rt] = regs[x.flags]
			continue
		case xMOVEADDR:
			regs[uint8(x.imm)] = regs[uint8(x.imm>>8)]
			regs[x.rd] = regs[x.rs] + regs[x.rt]
			continue
		case xMOVEADDI:
			regs[x.rt] = regs[x.flags]
			regs[x.rd] = regs[x.rs] + x.imm
			continue
		case xMOVEMULR:
			regs[uint8(x.imm)] = regs[uint8(x.imm>>8)]
			regs[x.rd] = regs[x.rs] * regs[x.rt]
			continue
		case xMOVEMULI:
			regs[x.rt] = regs[x.flags]
			regs[x.rd] = regs[x.rs] * x.imm
			continue
		case xLWMOVE:
			addr := regs[x.rs] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			regs[x.rt] = regs[x.flags]
			continue
		case xLWADDR:
			addr := regs[x.rs] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			regs[x.rt] = regs[x.flags] + regs[uint8(x.imm)]
			continue
		case xLWADDI:
			addr := regs[x.rs] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			regs[x.rt] = regs[x.flags] + x.imm
			continue
		case xLWSEQR:
			addr := regs[x.rs] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			regs[x.rt] = b2i(regs[x.flags] == regs[uint8(x.imm)])
			continue
		case xLWSEQI:
			addr := regs[x.rs] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			regs[x.rt] = b2i(regs[x.flags] == x.imm)
			continue
		case xLWSLTR:
			addr := regs[x.rs] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			regs[x.rt] = b2i(regs[x.flags] < regs[uint8(x.imm)])
			continue
		case xLWSLTI:
			addr := regs[x.rs] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			regs[x.rt] = b2i(regs[x.flags] < x.imm)
			continue
		case xLWSLER:
			addr := regs[x.rs] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			regs[x.rt] = b2i(regs[x.flags] <= regs[uint8(x.imm)])
			continue
		case xLWSLEI:
			addr := regs[x.rs] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			regs[x.rt] = b2i(regs[x.flags] <= x.imm)
			continue
		case xLWSNER:
			addr := regs[x.rs] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			regs[x.rt] = b2i(regs[x.flags] != regs[uint8(x.imm)])
			continue
		case xLWSNEI:
			addr := regs[x.rs] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			regs[x.rt] = b2i(regs[x.flags] != x.imm)
			continue
		case xLWDIVR:
			addr := regs[x.rs] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			d := regs[uint8(x.imm)]
			if d == 0 {
				return fault(x.a2, int(x.pc)+1, "division by zero")
			}
			regs[x.rt] = regs[x.flags] / d
			continue
		case xMOVELW:
			regs[x.rt] = regs[x.flags]
			addr := regs[x.rs] + x.imm
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc)+1, "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			continue
		case xADDRLW:
			regs[x.rd] = regs[x.rs] + regs[x.rt]
			addr := regs[uint8(x.imm)] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc)+1, "load from bad address %d", addr)
			}
			regs[x.flags] = mem[addr]
			continue
		case xADDILW:
			regs[x.rd] = regs[x.rs] + x.imm
			addr := regs[x.flags] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc)+1, "load from bad address %d", addr)
			}
			regs[x.rt] = mem[addr]
			continue
		case xMULIADD:
			regs[x.rd] = regs[x.rs] * x.imm
			regs[x.rt] = regs[x.flags] + regs[uint8(x.a1)]
			continue
		case xPRINT:
			m.res.Output = append(m.res.Output, regs[x.rs])
			continue
		case xSPG:
			if regs[mach.SP] < m.stackFloor {
				return spOver(x.a2, int(x.pc))
			}
			continue
		case xADDISPG:
			regs[x.rd] = regs[x.rs] + x.imm
			if regs[mach.SP] < m.stackFloor {
				return spOver(x.a2, int(x.pc))
			}
			continue
		case xSWLI:
			addr := regs[x.rs] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "store to bad address %d", addr)
			}
			if addr < m.stackFloor { // noteStore, expanded by hand (see xSW)
				if addr < m.loData {
					m.loData = addr
				}
				if addr >= m.hiData {
					m.hiData = addr + 1
				}
			} else {
				if addr < m.loStack {
					m.loStack = addr
				}
				if addr >= m.hiStack {
					m.hiStack = addr + 1
				}
			}
			mem[addr] = regs[x.rt]
			regs[x.rd] = x.imm
			continue
		case xLI2:
			regs[x.rd] = x.imm
			regs[x.rt] = int64(x.a1)
			continue

		case xBEQZ:
			nbi = x.a2
			if regs[x.rs] == 0 {
				st.Taken++
				nbi = x.a1
			}
		case xBNEZ:
			nbi = x.a2
			if regs[x.rs] != 0 {
				st.Taken++
				nbi = x.a1
			}
		case xJ:
			nbi = x.a1
		case xJAL:
			regs[mach.RA] = int64(x.pc) + 1
			nbi = x.a1
			if nbi < 0 {
				// Unresolved extern call: the jump itself completed, then
				// control arrives at pc -1 and leaves the image.
				flush()
				return m.trap(-1, "control left the code image")
			}
		case xJALR:
			fv := regs[x.rs]
			if fv < 1 || fv > int64(len(p.Funcs)) {
				return fault(x.a1, int(x.pc), "indirect call through invalid function value %d", fv)
			}
			fi := p.Funcs[fv-1]
			if fi.Entry < 0 {
				return fault(x.a1, int(x.pc), "indirect call to extern function %s", fi.Name)
			}
			regs[mach.RA] = int64(x.pc) + 1
			nbi = img.blockIdx[fi.Entry]
		case xJR:
			pcv := regs[x.rs]
			if pcv < 0 || pcv >= int64(n) {
				flush()
				return m.trap(int(pcv), "control left the code image")
			}
			nbi = img.blockIdx[pcv]
			if nbi < 0 {
				// Jump into the middle of a block: flush, then run the
				// reference interpreter precisely until control reaches a
				// block head, and resume block execution there.
				flush()
				npc, done, err := m.interpret(int(pcv), img.blockIdx)
				if done {
					return err
				}
				instrs = st.Instrs // flush + interpret leave them equal
				nbi = img.blockIdx[npc]
			}
		case xADDISPGJR:
			regs[x.rd] = regs[x.rs] + x.imm
			if regs[mach.SP] < m.stackFloor {
				return spOver(x.a2, int(x.pc))
			}
			pcv := regs[x.rt]
			if pcv < 0 || pcv >= int64(n) {
				flush()
				return m.trap(int(pcv), "control left the code image")
			}
			nbi = img.blockIdx[pcv]
			if nbi < 0 {
				flush()
				npc, done, err := m.interpret(int(pcv), img.blockIdx)
				if done {
					return err
				}
				instrs = st.Instrs
				nbi = img.blockIdx[npc]
			}
		case xMOVEJ:
			regs[x.rd] = regs[x.rs]
			nbi = x.a1
		case xMOVEJAL:
			regs[x.rd] = regs[x.rs]
			regs[mach.RA] = x.imm
			nbi = x.a1
		case xMOVE2MOVEJAL:
			regs[x.rd] = regs[x.rs]
			regs[x.rt] = regs[x.flags]
			regs[uint8(x.imm>>8)] = regs[uint8(x.imm)]
			regs[mach.RA] = x.imm >> 16
			nbi = x.a1
		case xMOVEADDMOVEMULMOVEJ:
			regs[uint8(x.a1)] = regs[uint8(x.a1>>8)]
			regs[x.rd] = regs[x.rs] + regs[x.rt]
			regs[uint8(x.a1>>16)] = regs[uint8(x.a1>>24)]
			regs[x.flags] = regs[uint8(x.a2)] * int64(int32(uint32(x.imm)))
			regs[uint8(x.a2>>8)] = regs[uint8(x.a2>>16)]
			nbi = int32(x.imm >> 32)
		case xMOVEJR:
			regs[x.rd] = regs[x.rs]
			pcv := regs[x.rt]
			if pcv < 0 || pcv >= int64(n) {
				flush()
				return m.trap(int(pcv), "control left the code image")
			}
			nbi = img.blockIdx[pcv]
			if nbi < 0 {
				flush()
				npc, done, err := m.interpret(int(pcv), img.blockIdx)
				if done {
					return err
				}
				instrs = st.Instrs
				nbi = img.blockIdx[npc]
			}
		case xADDIMOVEJ:
			regs[x.rd] = regs[x.rs] + x.imm
			regs[x.rt] = regs[x.flags]
			nbi = x.a1
		case xLIMOVEJR:
			regs[x.rd] = x.imm
			regs[x.rt] = regs[x.flags]
			pcv := regs[x.rs]
			if pcv < 0 || pcv >= int64(n) {
				flush()
				return m.trap(int(pcv), "control left the code image")
			}
			nbi = img.blockIdx[pcv]
			if nbi < 0 {
				flush()
				npc, done, err := m.interpret(int(pcv), img.blockIdx)
				if done {
					return err
				}
				instrs = st.Instrs
				nbi = img.blockIdx[npc]
			}
		case xLWADDMOVEJ:
			addr := regs[x.rs] + int64(x.a1)
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			regs[x.rt] = regs[x.flags] + regs[uint8(x.imm)]
			regs[uint8(x.imm>>8)] = regs[uint8(x.imm>>16)]
			nbi = int32(x.imm >> 24)
		case xMOVEFALL:
			regs[x.rd] = regs[x.rs]
			nbi = x.a2
		case xLIFALL:
			regs[x.rd] = x.imm
			nbi = x.a2
		case xDIVLIREM2X2SNEB:
			// Two DIV;LI 2;REM parity computations feeding SNE+branch. Every
			// intermediate is written to and re-read from the register file
			// at the reference interpreter's program points, so register
			// aliasing between the eight instructions resolves identically.
			d := regs[x.rt]
			if d == 0 {
				return fault(x.a2, int(x.pc), "division by zero")
			}
			regs[x.rd] = regs[x.rs] / d
			regs[uint8(x.imm)] = 2
			regs[uint8(x.imm>>8)] = regs[x.rd] % 2
			d2 := regs[uint8(x.imm>>32)]
			if d2 == 0 {
				return fault(x.a2, int(x.pc)+3, "division by zero")
			}
			regs[uint8(x.imm>>16)] = regs[uint8(x.imm>>24)] / d2
			regs[uint8(x.imm>>40)] = 2
			regs[uint8(x.imm>>48)] = regs[uint8(x.imm>>16)] % 2
			v := b2i(regs[uint8(x.imm>>8)] != regs[uint8(x.imm>>48)])
			regs[x.flags>>1] = v
			nbi = x.a2 + 1
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xFALL:
			nbi = x.a2
		case xEXIT:
			flush()
			return nil

		case xSLTRB:
			v := b2i(regs[x.rs] < regs[x.rt])
			regs[x.rd] = v
			nbi = x.a2
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xSLTIB:
			v := b2i(regs[x.rs] < x.imm)
			regs[x.rd] = v
			nbi = x.a2
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xSLERB:
			v := b2i(regs[x.rs] <= regs[x.rt])
			regs[x.rd] = v
			nbi = x.a2
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xSLEIB:
			v := b2i(regs[x.rs] <= x.imm)
			regs[x.rd] = v
			nbi = x.a2
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xSEQRB:
			v := b2i(regs[x.rs] == regs[x.rt])
			regs[x.rd] = v
			nbi = x.a2
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xSEQIB:
			v := b2i(regs[x.rs] == x.imm)
			regs[x.rd] = v
			nbi = x.a2
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xSNERB:
			v := b2i(regs[x.rs] != regs[x.rt])
			regs[x.rd] = v
			nbi = x.a2
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xSNEIB:
			v := b2i(regs[x.rs] != x.imm)
			regs[x.rd] = v
			nbi = x.a2
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}

		// Load-test-branch triples: imm packs the load offset (low 32) and
		// the compare operand (high 32); flags>>1 is the compare source.
		// The fallthrough block is always a2+1 (decode guarantees it
		// exists).
		case xLWSEQRB:
			addr := regs[x.rs] + int64(int32(uint32(x.imm)))
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			v := b2i(regs[x.flags>>1] == regs[uint8(x.imm>>32)])
			regs[x.rt] = v
			nbi = x.a2 + 1
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xLWSEQIB:
			addr := regs[x.rs] + int64(int32(uint32(x.imm)))
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			v := b2i(regs[x.flags>>1] == x.imm>>32)
			regs[x.rt] = v
			nbi = x.a2 + 1
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xMULIADDLWSEQIB:
			// Scaled array probe: MUL (imm) ; ADD ; LW ; SEQ (imm) ; branch.
			// Each intermediate is written to and re-read from the register
			// file at the reference interpreter's program points, so aliasing
			// between the five instructions resolves identically.
			regs[uint8(x.imm)] = regs[uint8(x.imm>>8)] * int64(int16(uint16(x.imm>>40)))
			regs[x.rd] = regs[x.rs] + regs[x.rt]
			addr := regs[x.rd] + int64(int16(uint16(x.imm>>24)))
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc)+2, "load from bad address %d", addr)
			}
			regs[uint8(x.imm>>16)] = mem[addr]
			v := b2i(regs[uint8(x.imm>>16)] == int64(int8(uint8(x.imm>>56))))
			regs[x.flags>>1] = v
			nbi = x.a2 + 1
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xLWSNERB:
			addr := regs[x.rs] + int64(int32(uint32(x.imm)))
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			v := b2i(regs[x.flags>>1] != regs[uint8(x.imm>>32)])
			regs[x.rt] = v
			nbi = x.a2 + 1
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xLWSNEIB:
			addr := regs[x.rs] + int64(int32(uint32(x.imm)))
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			v := b2i(regs[x.flags>>1] != x.imm>>32)
			regs[x.rt] = v
			nbi = x.a2 + 1
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xLWSLTRB:
			addr := regs[x.rs] + int64(int32(uint32(x.imm)))
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			v := b2i(regs[x.flags>>1] < regs[uint8(x.imm>>32)])
			regs[x.rt] = v
			nbi = x.a2 + 1
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xLWSLTIB:
			addr := regs[x.rs] + int64(int32(uint32(x.imm)))
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			v := b2i(regs[x.flags>>1] < x.imm>>32)
			regs[x.rt] = v
			nbi = x.a2 + 1
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xLWSLERB:
			addr := regs[x.rs] + int64(int32(uint32(x.imm)))
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			v := b2i(regs[x.flags>>1] <= regs[uint8(x.imm>>32)])
			regs[x.rt] = v
			nbi = x.a2 + 1
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}
		case xLWSLEIB:
			addr := regs[x.rs] + int64(int32(uint32(x.imm)))
			if addr < 0 || addr >= memWords {
				return fault(x.a2, int(x.pc), "load from bad address %d", addr)
			}
			regs[x.rd] = mem[addr]
			v := b2i(regs[x.flags>>1] <= x.imm>>32)
			regs[x.rt] = v
			nbi = x.a2 + 1
			if (v != 0) == (x.flags&fBNZ != 0) {
				st.Taken++
				nbi = x.a1
			}

		case xSWRUN:
			r := &img.runs[x.a1]
			base := regs[r.base]
			if base > -runBaseMax && base < runBaseMax &&
				base+r.minOff >= 0 && base+r.maxOff < memWords {
				m.noteStoreRange(base+r.minOff, base+r.maxOff+1)
				for j := range r.ents {
					e := &r.ents[j]
					mem[base+e.off] = regs[e.reg]
				}
			} else {
				for k := range r.ents {
					e := &r.ents[k]
					addr := base + e.off
					if addr < 0 || addr >= memWords {
						return fault(x.a2, int(x.pc)+k, "store to bad address %d", addr)
					}
					m.noteStore(addr)
					mem[addr] = regs[e.reg]
				}
			}
			continue
		case xLWRUN:
			r := &img.runs[x.a1]
			base := regs[r.base]
			if base > -runBaseMax && base < runBaseMax &&
				base+r.minOff >= 0 && base+r.maxOff < memWords {
				for j := range r.ents {
					e := &r.ents[j]
					regs[e.reg] = mem[base+e.off]
				}
			} else {
				for k := range r.ents {
					e := &r.ents[k]
					addr := base + e.off
					if addr < 0 || addr >= memWords {
						return fault(x.a2, int(x.pc)+k, "load from bad address %d", addr)
					}
					regs[e.reg] = mem[addr]
				}
			}
			continue

		default:
			// Unreachable: predecode emits only the opcodes above.
			flush()
			return m.trap(int(x.pc), "illegal instruction %d", int(p.Code[x.pc].Op))
		}

		// Follow the pending edge: enter block nbi. nbi < 0 means control
		// would fall off the end of the code image (only terminators whose
		// fallthrough pc is len(p.Code) carry that sentinel).
		if nbi < 0 {
			flush()
			return m.trap(int(x.pc)+1, "control left the code image")
		}
		for {
			e := &ents[nbi]
			e.count++
			instrs += int64(e.ninstr)
			if instrs > m.maxInstrs {
				// The budget could expire inside the entered block; unwind
				// its entry and let the reference interpreter finish the run
				// with exact per-instruction accounting (it terminates
				// within one block of instructions).
				e.count--
				flush()
				obs.Current().Add(obs.CSimBudgetHandoff, 1)
				_, _, err := m.interpret(int(img.blocks[nbi].start), nil)
				return err
			}
			if instrs >= m.deadlineAt {
				// A wall-clock deadline is inherently approximate (unlike the
				// instruction budget it never needs bit-exact accounting), so
				// expiry stops at the block boundary: unwind the entry that
				// was never executed, flush partial statistics, and return.
				m.deadlineAt += deadlineStride
				if time.Now().After(m.deadline) {
					e.count--
					flush()
					return fmt.Errorf("pc %d: %w", img.blocks[nbi].start, ErrDeadline)
				}
			}
			if e.x0 >= 0 {
				xi = int(e.x0)
				break
			}
			// J-only block: follow its edge without dispatching the jump.
			nbi = -e.x0 - 1
		}
	}
}
