// Package sim executes mcode programs on a register-accurate virtual
// machine modelled on the MIPS R2000: 32 general registers, a flat
// word-addressed memory holding the data segment and a downward-growing
// stack, and the R2000's integer cycle costs (single-cycle ALU, loads and
// stores; 12-cycle multiply; 35-cycle divide). It fills a pixie.Stats with
// the trace counters as it runs.
//
// Three engines share the machine model, forming a ladder of increasing
// speed. RunReference is the original per-instruction interpreter and the
// oracle the others are tested against. The fast engine executes a
// predecoded image: the program is translated once into a dense internal
// ISA, basic blocks are discovered, and each block's statistics are
// accumulated in one step per block entry (see predecode.go / fastvm.go).
// The native engine — Run's default — further translates the predecoded
// blocks into closure-threaded code with zero switch dispatch (see
// nativevm.go / nativetrans.go). All three are bit-identical in Output,
// Stats and InstrCounts, which the differential tests enforce;
// Options.Engine pins a specific tier.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"chow88/internal/mach"
	"chow88/internal/mcode"
	"chow88/internal/obs"
	"chow88/internal/pixie"
)

// Options configure a run.
type Options struct {
	// MemWords is the memory size in words; 0 selects a default sized to
	// the program's data segment plus a 1 MiW stack.
	MemWords int
	// MaxInstrs bounds execution; 0 means the default (2e9).
	MaxInstrs int64
	// Deadline bounds wall-clock execution; 0 means no deadline. Expiry
	// returns ErrDeadline with the statistics accumulated so far (the
	// Result is partial but internally consistent). The clock is polled
	// every deadlineStride instructions, so overshoot is bounded by that
	// stride, and runs without a deadline pay nothing per instruction.
	Deadline time.Duration
	// Profile records per-instruction execution counts in the result,
	// enabling profile feedback to the register allocator.
	Profile bool
	// Engine pins an execution tier: "native" (closure-threaded, the
	// default), "fast" (predecoded block dispatch) or "reference" (the
	// per-instruction oracle). Empty selects the default ladder. A pinned
	// block engine still degrades — to the fast engine when native
	// translation declines, to the reference interpreter when the image
	// fails static verification or the initial stack pointer is degenerate
	// — with the reason on Result.FallbackReason. Unknown names make Run
	// fail with ErrBadEngine.
	Engine string
}

// ErrBadEngine reports an unknown Options.Engine name.
var ErrBadEngine = errors.New("unknown engine")

// ValidateEngine checks an Options.Engine value; the empty string (the
// default ladder) is valid.
func ValidateEngine(name string) error {
	switch name {
	case "", "native", "fast", "reference":
		return nil
	}
	return fmt.Errorf("%w %q (valid: native, fast, reference)", ErrBadEngine, name)
}

const defaultMaxInstrs = int64(2_000_000_000)

// deadlineStride is the instruction interval between wall-clock polls when
// Options.Deadline is set (~1M instructions, well under a millisecond of
// simulated work per poll).
const deadlineStride = int64(1) << 20

// Trap is a machine fault.
type Trap struct {
	Msg string
	PC  int
}

func (t *Trap) Error() string { return fmt.Sprintf("pc %d: machine trap: %s", t.PC, t.Msg) }

// ErrLimit reports instruction-budget exhaustion.
var ErrLimit = errors.New("instruction budget exceeded")

// ErrDeadline reports wall-clock deadline expiry (Options.Deadline).
var ErrDeadline = errors.New("wall-clock deadline exceeded")

// Result carries the run outcome.
type Result struct {
	Output []int64
	Stats  pixie.Stats
	// InstrCounts holds per-code-index execution counts when Options.Profile
	// was set (indexed like Program.Code).
	InstrCounts []int64
	// Engine names the engine that executed the run: "native" (the
	// closure-threaded tier), "fast" (the predecoded block-batched engine)
	// or "reference" (the per-instruction interpreter).
	Engine string
	// FallbackReason explains a run that degraded below the requested
	// tier — the static verification error or the degenerate initial stack
	// pointer (reference fallbacks), or the declined native translation (a
	// fast fallback). Empty when the requested tier ran or when the caller
	// asked for the reference engine outright.
	FallbackReason string
	// Report carries the run's metrics window when an obs session is
	// active; nil otherwise.
	Report *obs.RunReport
}

// machine is the mutable state of one run, shared by the predecoded engine
// and the per-instruction reference interpreter (which doubles as the fast
// engine's precise mode around traps and non-block entry points).
type machine struct {
	p   *mcode.Program
	mem []int64
	// regs holds the 32 architectural registers plus a scratch slot
	// (zeroSink): the predecoded engine renames writes to $zero into the
	// scratch, so the hardwired zero needs no per-instruction re-clearing.
	// The array is sized 256 so that the fast engine's uint8 register
	// fields can never index out of range — the compiler drops every
	// bounds check in the hot loop. The reference interpreter uses slots
	// 0..31 only and re-clears $zero as before.
	regs       [256]int64
	memWords   int64
	stackFloor int64
	maxInstrs  int64
	// deadline is the wall-clock cutoff (zero time when Options.Deadline is
	// unset); deadlineAt is the executed-instruction count at which the
	// clock is next polled, MaxInt64 when no deadline is armed so the hot
	// loops pay one always-false compare.
	deadline   time.Time
	deadlineAt int64
	// loData/hiData and loStack/hiStack bound the memory words the run has
	// written (all writes go through SW or a store run), split at
	// stackFloor. release clears exactly those ranges before pooling the
	// buffer, keeping the pool's all-zero invariant without paying a full
	// memclr of the 8 MiB default memory on every run. Two ranges matter:
	// almost every program dirties both the globals at the bottom of
	// memory and the stack at the top, so a single range would span — and
	// release would clear — nearly the whole buffer.
	loData, hiData   int64
	loStack, hiStack int64
	res              *Result
	// superHits and blockEntries accumulate the fast engine's per-
	// superinstruction dispatch histogram (indexed by xop) and its total
	// block entries. flush fills them from the block entry counters —
	// never from the dispatch loop — and only when superHits is non-nil,
	// which Run arranges exactly when an obs session is active.
	superHits    []int64
	blockEntries int64
}

// memPool recycles memory buffers between runs. Every pooled buffer is
// all-zero over its full capacity (release restores that invariant by
// clearing the words the run dirtied), so a fresh machine can slice one
// without clearing. Runs with a program's default sizing dominate, so the
// capacity check almost always hits.
var memPool sync.Pool

func getMem(n int) []int64 {
	if v := memPool.Get(); v != nil {
		if buf := *v.(*[]int64); cap(buf) >= n {
			obs.Current().Add(obs.CSimPoolReuse, 1)
			return buf[:n]
		}
	}
	obs.Current().Add(obs.CSimPoolAlloc, 1)
	return make([]int64, n)
}

// release returns the machine's memory to the pool with its dirtied words
// re-zeroed. The Result never aliases the buffer, so this is safe as soon
// as the run has ended.
func (m *machine) release() {
	if m.loData < m.hiData {
		clear(m.mem[m.loData:m.hiData])
	}
	if m.loStack < m.hiStack {
		clear(m.mem[m.loStack:m.hiStack])
	}
	buf := m.mem[:cap(m.mem)]
	memPool.Put(&buf)
	m.mem = nil
}

// noteStore records a write to mem[addr], growing the data- or stack-side
// dirty range for release.
func (m *machine) noteStore(addr int64) {
	if addr < m.stackFloor {
		if addr < m.loData {
			m.loData = addr
		}
		if addr >= m.hiData {
			m.hiData = addr + 1
		}
	} else {
		if addr < m.loStack {
			m.loStack = addr
		}
		if addr >= m.hiStack {
			m.hiStack = addr + 1
		}
	}
}

// noteStoreRange records writes covering mem[lo:hi), splitting the span at
// stackFloor when it straddles the boundary.
func (m *machine) noteStoreRange(lo, hi int64) {
	if lo < m.stackFloor {
		t := min(hi, m.stackFloor)
		if lo < m.loData {
			m.loData = lo
		}
		if t > m.hiData {
			m.hiData = t
		}
	}
	if hi > m.stackFloor {
		f := max(lo, m.stackFloor)
		if f < m.loStack {
			m.loStack = f
		}
		if hi > m.hiStack {
			m.hiStack = hi
		}
	}
}

func newMachine(p *mcode.Program, opts Options) *machine {
	memWords := opts.MemWords
	if memWords == 0 {
		memWords = p.DataSize + 1<<20
	}
	maxInstrs := opts.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = defaultMaxInstrs
	}
	m := &machine{
		p:          p,
		mem:        getMem(memWords),
		memWords:   int64(memWords),
		stackFloor: int64(p.DataSize),
		maxInstrs:  maxInstrs,
		loData:     int64(memWords),
		loStack:    int64(memWords),
		deadlineAt: math.MaxInt64,
		res:        &Result{},
	}
	if opts.Deadline > 0 {
		m.deadline = time.Now().Add(opts.Deadline)
		m.deadlineAt = deadlineStride
	}
	m.regs[mach.SP] = int64(memWords)
	if opts.Profile {
		m.res.InstrCounts = make([]int64, len(p.Code))
	}
	return m
}

// Run executes the program from its startup stub on the selected engine
// (Options.Engine; the closure-threaded native tier by default).
// Degradation is always toward exactness, never a guess: images that fail
// static verification — and degenerate configurations whose initial stack
// pointer already sits below the data segment — take the reference
// interpreter wholesale, and a native run whose translation declines takes
// the fast engine. Every fallback surfaces its reason on
// Result.FallbackReason.
func Run(p *mcode.Program, opts Options) (*Result, error) {
	if err := ValidateEngine(opts.Engine); err != nil {
		return nil, err
	}
	s := obs.Current()
	snap := s.Snap()
	sp := s.Span(obs.PhaseRun, "sim.Run")
	m := newMachine(p, opts)
	defer m.release()
	var err error
	if opts.Engine == "reference" {
		m.res.Engine = "reference"
		s.Add(obs.CSimRunsRef, 1)
		_, _, err = m.interpret(0, nil)
	} else {
		img, reason := imageFor(p)
		switch {
		case img == nil:
			m.res.Engine, m.res.FallbackReason = "reference", reason
			s.Add(obs.CSimRunsRef, 1)
			s.Add(obs.CSimVerifyFallback, 1)
			_, _, err = m.interpret(0, nil)
		case m.regs[mach.SP] < m.stackFloor:
			m.res.Engine = "reference"
			m.res.FallbackReason = "initial stack pointer below the data segment"
			s.Add(obs.CSimRunsRef, 1)
			s.Add(obs.CSimStackFallback, 1)
			_, _, err = m.interpret(0, nil)
		case opts.Engine == "fast":
			m.res.Engine = "fast"
			s.Add(obs.CSimRunsFast, 1)
			if s != nil {
				m.superHits = make([]int64, numXops)
			}
			err = m.runFast(img)
		default: // "" or "native"
			nimg, nreason := nativeFor(p, img)
			if nimg == nil {
				m.res.Engine, m.res.FallbackReason = "fast", nreason
				s.Add(obs.CSimRunsFast, 1)
				s.Add(obs.CSimNativeFallback, 1)
				if s != nil {
					m.superHits = make([]int64, numXops)
				}
				err = m.runFast(img)
			} else {
				m.res.Engine = "native"
				s.Add(obs.CSimRunsNative, 1)
				if s != nil {
					m.superHits = make([]int64, numXops)
				}
				err = m.runNative(img, nimg)
			}
		}
	}
	sp.End()
	m.finishObs(s, snap)
	return m.res, err
}

// RunReference executes the program on the per-instruction reference
// interpreter. It is the oracle the predecoded engine is differentially
// tested against; Output, Stats and InstrCounts match Run bit for bit.
func RunReference(p *mcode.Program, opts Options) (*Result, error) {
	s := obs.Current()
	snap := s.Snap()
	sp := s.Span(obs.PhaseRun, "sim.RunReference")
	m := newMachine(p, opts)
	defer m.release()
	m.res.Engine = "reference"
	s.Add(obs.CSimRunsRef, 1)
	_, _, err := m.interpret(0, nil)
	sp.End()
	m.finishObs(s, snap)
	return m.res, err
}

// finishObs publishes the run's accumulated engine metrics to the obs
// session and attaches a RunReport covering the window since snap. No-op
// when no session is active.
func (m *machine) finishObs(s *obs.Session, snap obs.Snapshot) {
	if s == nil {
		return
	}
	if m.superHits != nil {
		s.Add(obs.CSimBlockEntries, m.blockEntries)
		for op, n := range m.superHits {
			if n != 0 {
				s.AddLabeled(obs.SuperHitPrefix+xopName(xop(op)), n)
			}
		}
	}
	m.res.Report = &obs.RunReport{
		Report:         *s.ReportSince(snap),
		Engine:         m.res.Engine,
		FallbackReason: m.res.FallbackReason,
		SuperHits:      s.LabeledSince(snap, obs.SuperHitPrefix),
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// rt returns the right operand of an ALU instruction: the immediate or the
// Rt register. (Hoisted out of the interpreter loop — it used to be a
// closure rebuilt every instruction.)
func (m *machine) rt(in *mcode.Instr) int64 {
	if in.HasImm {
		return in.Imm
	}
	return m.regs[in.Rt]
}

func (m *machine) trap(pc int, format string, args ...any) error {
	return &Trap{Msg: fmt.Sprintf(format, args...), PC: pc}
}

// interpret is the reference interpreter loop, executing from pc until the
// program exits or faults. When stopAt is non-nil, control arriving at an
// index with stopAt[pc] >= 0 suspends the loop instead, returning
// (pc, false, nil) so the predecoded engine can resume block execution;
// callers guarantee the entry pc itself is not a stop point. On
// termination it returns (0, true, err) with err nil for a clean exit.
func (m *machine) interpret(pc int, stopAt []int32) (int, bool, error) {
	if stopAt != nil {
		obs.Current().Add(obs.CSimInterpBridges, 1)
	}
	p := m.p
	st := &m.res.Stats
	counts := m.res.InstrCounts
	for {
		if pc < 0 || pc >= len(p.Code) {
			return 0, true, m.trap(pc, "control left the code image")
		}
		if stopAt != nil && stopAt[pc] >= 0 {
			return pc, false, nil
		}
		in := &p.Code[pc]
		// Poll the wall clock before accounting for the instruction about to
		// execute: deadline expiry must leave Stats describing exactly the
		// instructions that ran to completion, with no phantom fetch counted.
		// (The budget check below intentionally keeps its historical
		// semantics: ErrLimit fires after counting the over-budget fetch.)
		if st.Instrs >= m.deadlineAt {
			m.deadlineAt += deadlineStride
			if time.Now().After(m.deadline) {
				return 0, true, fmt.Errorf("pc %d: %w", pc, ErrDeadline)
			}
		}
		if counts != nil {
			counts[pc]++
		}
		st.Instrs++
		if st.Instrs > m.maxInstrs {
			return 0, true, fmt.Errorf("pc %d: %w", pc, ErrLimit)
		}
		st.Cycles++
		if in.Linkage {
			st.LinkageCycles++
		}
		nextPC := pc + 1

		switch in.Op {
		case mcode.LI:
			m.regs[in.Rd] = in.Imm
		case mcode.MOVE:
			m.regs[in.Rd] = m.regs[in.Rs]
		case mcode.ADD:
			m.regs[in.Rd] = m.regs[in.Rs] + m.rt(in)
		case mcode.SUB:
			m.regs[in.Rd] = m.regs[in.Rs] - m.rt(in)
		case mcode.MUL:
			st.Cycles += 11 // 12 total
			st.MulDiv++
			m.regs[in.Rd] = m.regs[in.Rs] * m.rt(in)
		case mcode.DIV, mcode.REM:
			st.Cycles += 34 // 35 total
			st.MulDiv++
			d := m.rt(in)
			if d == 0 {
				return 0, true, m.trap(pc, "division by zero")
			}
			n := m.regs[in.Rs]
			if n == -1<<63 && d == -1 {
				if in.Op == mcode.DIV {
					m.regs[in.Rd] = n
				} else {
					m.regs[in.Rd] = 0
				}
			} else if in.Op == mcode.DIV {
				m.regs[in.Rd] = n / d
			} else {
				m.regs[in.Rd] = n % d
			}
		case mcode.SLT:
			m.regs[in.Rd] = b2i(m.regs[in.Rs] < m.rt(in))
		case mcode.SLE:
			m.regs[in.Rd] = b2i(m.regs[in.Rs] <= m.rt(in))
		case mcode.SEQ:
			m.regs[in.Rd] = b2i(m.regs[in.Rs] == m.rt(in))
		case mcode.SNE:
			m.regs[in.Rd] = b2i(m.regs[in.Rs] != m.rt(in))
		case mcode.LW:
			addr := m.regs[in.Rs] + in.Imm
			if addr < 0 || addr >= m.memWords {
				return 0, true, m.trap(pc, "load from bad address %d", addr)
			}
			m.regs[in.Rd] = m.mem[addr]
			st.Loads++
			st.LoadsByClass[in.Class]++
		case mcode.SW:
			addr := m.regs[in.Rs] + in.Imm
			if addr < 0 || addr >= m.memWords {
				return 0, true, m.trap(pc, "store to bad address %d", addr)
			}
			m.noteStore(addr)
			m.mem[addr] = m.regs[in.Rt]
			st.Stores++
			st.StoresByClass[in.Class]++
		case mcode.BEQZ:
			st.Branches++
			if m.regs[in.Rs] == 0 {
				st.Taken++
				nextPC = in.Target
			}
		case mcode.BNEZ:
			st.Branches++
			if m.regs[in.Rs] != 0 {
				st.Taken++
				nextPC = in.Target
			}
		case mcode.J:
			nextPC = in.Target
		case mcode.JAL:
			st.Calls++
			m.regs[mach.RA] = int64(pc + 1)
			nextPC = in.Target
		case mcode.JALR:
			st.Calls++
			fv := m.regs[in.Rs]
			if fv < 1 || fv > int64(len(p.Funcs)) {
				return 0, true, m.trap(pc, "indirect call through invalid function value %d", fv)
			}
			fi := p.Funcs[fv-1]
			if fi.Entry < 0 {
				return 0, true, m.trap(pc, "indirect call to extern function %s", fi.Name)
			}
			m.regs[mach.RA] = int64(pc + 1)
			nextPC = fi.Entry
		case mcode.JR:
			nextPC = int(m.regs[in.Rs])
		case mcode.PRINT:
			m.res.Output = append(m.res.Output, m.regs[in.Rs])
		case mcode.EXIT:
			return 0, true, nil
		default:
			return 0, true, m.trap(pc, "illegal instruction %d", int(in.Op))
		}
		m.regs[mach.Zero] = 0
		if m.regs[mach.SP] < m.stackFloor {
			return 0, true, m.trap(pc, "stack overflow (sp %d below floor %d)", m.regs[mach.SP], m.stackFloor)
		}
		pc = nextPC
	}
}
