// Package sim executes mcode programs on a register-accurate virtual
// machine modelled on the MIPS R2000: 32 general registers, a flat
// word-addressed memory holding the data segment and a downward-growing
// stack, and the R2000's integer cycle costs (single-cycle ALU, loads and
// stores; 12-cycle multiply; 35-cycle divide). It fills a pixie.Stats with
// the trace counters as it runs.
package sim

import (
	"errors"
	"fmt"

	"chow88/internal/mach"
	"chow88/internal/mcode"
	"chow88/internal/pixie"
)

// Options configure a run.
type Options struct {
	// MemWords is the memory size in words; 0 selects a default sized to
	// the program's data segment plus a 1 MiW stack.
	MemWords int
	// MaxInstrs bounds execution; 0 means the default (2e9).
	MaxInstrs int64
	// Profile records per-instruction execution counts in the result,
	// enabling profile feedback to the register allocator.
	Profile bool
}

const defaultMaxInstrs = int64(2_000_000_000)

// Trap is a machine fault.
type Trap struct {
	Msg string
	PC  int
}

func (t *Trap) Error() string { return fmt.Sprintf("pc %d: machine trap: %s", t.PC, t.Msg) }

// ErrLimit reports instruction-budget exhaustion.
var ErrLimit = errors.New("instruction budget exceeded")

// Result carries the run outcome.
type Result struct {
	Output []int64
	Stats  pixie.Stats
	// InstrCounts holds per-code-index execution counts when Options.Profile
	// was set (indexed like Program.Code).
	InstrCounts []int64
}

// Run executes the program from its startup stub.
func Run(p *mcode.Program, opts Options) (*Result, error) {
	memWords := opts.MemWords
	if memWords == 0 {
		memWords = p.DataSize + 1<<20
	}
	maxInstrs := opts.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = defaultMaxInstrs
	}
	mem := make([]int64, memWords)
	var regs [mach.NumRegs]int64
	regs[mach.SP] = int64(memWords)
	stackFloor := int64(p.DataSize)

	res := &Result{}
	if opts.Profile {
		res.InstrCounts = make([]int64, len(p.Code))
	}
	st := &res.Stats
	pc := 0

	trap := func(format string, args ...any) error {
		return &Trap{Msg: fmt.Sprintf(format, args...), PC: pc}
	}
	load := func(addr int64) (int64, error) {
		if addr < 0 || addr >= int64(memWords) {
			return 0, trap("load from bad address %d", addr)
		}
		return mem[addr], nil
	}
	store := func(addr, v int64) error {
		if addr < 0 || addr >= int64(memWords) {
			return trap("store to bad address %d", addr)
		}
		mem[addr] = v
		return nil
	}

	for {
		if pc < 0 || pc >= len(p.Code) {
			return res, trap("control left the code image")
		}
		in := &p.Code[pc]
		if res.InstrCounts != nil {
			res.InstrCounts[pc]++
		}
		st.Instrs++
		if st.Instrs > maxInstrs {
			return res, fmt.Errorf("pc %d: %w", pc, ErrLimit)
		}
		st.Cycles++
		nextPC := pc + 1

		rt := func() int64 {
			if in.HasImm {
				return in.Imm
			}
			return regs[in.Rt]
		}
		b2i := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}

		switch in.Op {
		case mcode.LI:
			regs[in.Rd] = in.Imm
		case mcode.MOVE:
			regs[in.Rd] = regs[in.Rs]
		case mcode.ADD:
			regs[in.Rd] = regs[in.Rs] + rt()
		case mcode.SUB:
			regs[in.Rd] = regs[in.Rs] - rt()
		case mcode.MUL:
			st.Cycles += 11 // 12 total
			st.MulDiv++
			regs[in.Rd] = regs[in.Rs] * rt()
		case mcode.DIV, mcode.REM:
			st.Cycles += 34 // 35 total
			st.MulDiv++
			d := rt()
			if d == 0 {
				return res, trap("division by zero")
			}
			n := regs[in.Rs]
			if n == -1<<63 && d == -1 {
				if in.Op == mcode.DIV {
					regs[in.Rd] = n
				} else {
					regs[in.Rd] = 0
				}
			} else if in.Op == mcode.DIV {
				regs[in.Rd] = n / d
			} else {
				regs[in.Rd] = n % d
			}
		case mcode.SLT:
			regs[in.Rd] = b2i(regs[in.Rs] < rt())
		case mcode.SLE:
			regs[in.Rd] = b2i(regs[in.Rs] <= rt())
		case mcode.SEQ:
			regs[in.Rd] = b2i(regs[in.Rs] == rt())
		case mcode.SNE:
			regs[in.Rd] = b2i(regs[in.Rs] != rt())
		case mcode.LW:
			v, err := load(regs[in.Rs] + in.Imm)
			if err != nil {
				return res, err
			}
			regs[in.Rd] = v
			st.Loads++
			st.LoadsByClass[in.Class]++
		case mcode.SW:
			if err := store(regs[in.Rs]+in.Imm, regs[in.Rt]); err != nil {
				return res, err
			}
			st.Stores++
			st.StoresByClass[in.Class]++
		case mcode.BEQZ:
			st.Branches++
			if regs[in.Rs] == 0 {
				st.Taken++
				nextPC = in.Target
			}
		case mcode.BNEZ:
			st.Branches++
			if regs[in.Rs] != 0 {
				st.Taken++
				nextPC = in.Target
			}
		case mcode.J:
			nextPC = in.Target
		case mcode.JAL:
			st.Calls++
			regs[mach.RA] = int64(pc + 1)
			nextPC = in.Target
		case mcode.JALR:
			st.Calls++
			fv := regs[in.Rs]
			if fv < 1 || fv > int64(len(p.Funcs)) {
				return res, trap("indirect call through invalid function value %d", fv)
			}
			fi := p.Funcs[fv-1]
			if fi.Entry < 0 {
				return res, trap("indirect call to extern function %s", fi.Name)
			}
			regs[mach.RA] = int64(pc + 1)
			nextPC = fi.Entry
		case mcode.JR:
			nextPC = int(regs[in.Rs])
		case mcode.PRINT:
			res.Output = append(res.Output, regs[in.Rs])
		case mcode.EXIT:
			return res, nil
		default:
			return res, trap("illegal instruction %d", int(in.Op))
		}
		regs[mach.Zero] = 0
		if regs[mach.SP] < stackFloor {
			return res, trap("stack overflow (sp %d below floor %d)", regs[mach.SP], stackFloor)
		}
		pc = nextPC
	}
}
