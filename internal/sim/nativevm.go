// The closure-threaded native execution tier. Where the fast engine
// dispatches predecoded superinstructions through one big switch, the
// native tier translates each basic block once into directly executable
// closures — one per superinstruction, specialized by its register and
// immediate operands at translation time — and resolves every static
// control edge to a direct *nblock pointer (unconditional edges skip even
// the terminator call: the block records its successor and the run loop
// follows the pointer). Blocks that branch back to themselves fuse into
// self-contained loop closures that keep iterating without returning to
// the run loop. No opcode is inspected at run time.
//
// Accounting is identical to the fast engine by construction: both run on
// the per-run block entry counters, and machine.flushEnts /
// machine.faultEnts / machine.spOverEnts (fastvm.go) are the only code
// that turns those counters into pixie.Stats, InstrCounts and the obs
// dispatch histogram. The differential suite holds all three tiers
// bit-identical to RunReference.
package sim

import (
	"fmt"
	"sync"
	"time"

	"chow88/internal/mcode"
	"chow88/internal/obs"
	"chow88/internal/pixie"
)

// nsig tells runNative why a block body stopped without a successor.
type nsig uint8

const (
	// nsExit: the program executed EXIT; flush and return cleanly.
	nsExit nsig = iota
	// nsFault: a closure recorded a trap in faultBI/faultPC and the
	// message fields.
	nsFault
	// nsSPOver: a stack-pointer guard tripped (faultBI/faultPC).
	nsSPOver
	// nsLeave: control left the code image at leavePC.
	nsLeave
	// nsBridge: a register-indirect jump landed mid-block at bridgePC; run
	// the reference interpreter until control reaches a block head.
	nsBridge
)

// nstep executes one non-terminating superinstruction. A false return
// means a fault was recorded in the context and the block must unwind.
type nstep func(*nctx) bool

// nblockFn executes a block's terminator (everything after its steps) and
// returns the successor block, or nil with c.sig saying why.
type nblockFn func(*nctx) *nblock

// nblock is one translated basic block. The run loop executes steps in
// order, then either follows next directly (unconditional control — no
// closure call at all) or calls term. ninstr mirrors the entry table so
// the per-entry instruction accounting reads from the same cache line as
// the step slice.
type nblock struct {
	steps []nstep
	// term is nil exactly when the block ends in resolved unconditional
	// control; then next is its successor. Terminators that compute a
	// successor (branches, indirect jumps, EXIT, edges that leave the
	// image) live in term, with next nil.
	term   nblockFn
	next   *nblock
	ninstr int32
	bi     int32
}

// nimage is a program's closure-threaded translation. It is immutable
// after translateNative returns and safe to share across concurrent runs:
// translated closures capture only translation-time constants (unpacked
// operands, *nblock successors, the image's runs table), never run state.
type nimage struct {
	blocks []nblock
}

// nctx is the per-run execution context threaded through every closure.
// All mutable run state lives here or behind m; the closures themselves
// are stateless, which is what makes the translation cache race-free.
type nctx struct {
	regs     *[256]int64
	mem      []int64
	memWords int64
	m        *machine
	st       *pixie.Stats
	// ents is the per-run block entry counter table; instrs mirrors what
	// st.Instrs will be once counts are flushed. maxInstrs and deadlineAt
	// are copied out of the machine so the per-block admission checks pay
	// no pointer chase; deadlineAt is kept in sync with m.deadlineAt
	// around polls and interpreter bridges. Fused self-loop closures
	// advance ents/instrs directly (see loopTerm in nativetrans.go).
	ents       []entCnt
	instrs     int64
	maxInstrs  int64
	deadlineAt int64
	// sig and the fields below carry a block's exit disposition out to
	// runNative. Fault messages are deferred: closures record a fixed
	// message or a format plus one operand, and runNative formats on the
	// (terminal, cold) fault path — keeping fmt out of the closures keeps
	// them leaf functions.
	sig      nsig
	faultBI  int32
	faultPC  int
	faultMsg string // fixed-text trap message, or ""
	faultFmt string // one-verb format when faultMsg is empty
	faultArg int64  // %d operand for faultFmt
	faultStr string // %s operand for faultFmt (extern call names)
	leavePC  int
	bridgePC int64
}

// fault records a trap with a fixed message at original code index fpc
// inside block bi. The false return lets step closures write
// `return c.fault(...)`.
func (c *nctx) fault(bi int32, fpc int, msg string) bool {
	c.sig, c.faultBI, c.faultPC = nsFault, bi, fpc
	c.faultMsg = msg
	return false
}

// faultAddr records a trap whose message formats one integer operand
// (bad addresses, bad function values).
func (c *nctx) faultAddr(bi int32, fpc int, format string, arg int64) bool {
	c.sig, c.faultBI, c.faultPC = nsFault, bi, fpc
	c.faultMsg, c.faultStr = "", ""
	c.faultFmt, c.faultArg = format, arg
	return false
}

// faultName records a trap whose message formats one string operand.
func (c *nctx) faultName(bi int32, fpc int, format, name string) bool {
	c.sig, c.faultBI, c.faultPC = nsFault, bi, fpc
	c.faultMsg = ""
	c.faultFmt, c.faultStr = format, name
	return false
}

// faultText resolves the recorded fault message (cold path).
func (c *nctx) faultText() string {
	switch {
	case c.faultMsg != "":
		return c.faultMsg
	case c.faultStr != "":
		return fmt.Sprintf(c.faultFmt, c.faultStr)
	default:
		return fmt.Sprintf(c.faultFmt, c.faultArg)
	}
}

// spOver records a stack-overflow guard trip after the instruction at fpc.
func (c *nctx) spOver(bi int32, fpc int) bool {
	c.sig, c.faultBI, c.faultPC = nsSPOver, bi, fpc
	return false
}

// leave records control leaving the code image at pc. The nil return
// lets terminator closures write `return c.leave(pc)`.
func (c *nctx) leave(pc int) *nblock {
	c.sig, c.leavePC = nsLeave, pc
	return nil
}

// nEntry is a memoized translation outcome: the closure-threaded image,
// or nil with the reason translation declined (the run then takes the
// fast engine, reason surfaced on Result.FallbackReason).
type nEntry struct {
	ni     *nimage
	reason string
}

// nativeCache memoizes translations per predecoded image. Keying on the
// *image identity is sound because imageFor memoizes images per program:
// the same program always yields the same image pointer until its cache
// entry is evicted, at which point the stale key here simply ages out at
// the next wholesale reset. Bounded like imageCache.
var nativeCache = struct {
	sync.Mutex
	ents map[*image]nEntry
}{ents: map[*image]nEntry{}}

const nativeCacheCap = 128

// nativeFor returns the memoized closure-threaded translation of img, or
// (nil, reason) when translation declined. Safe for concurrent use; the
// first caller translates under the lock, later callers hit the cache.
func nativeFor(p *mcode.Program, img *image) (*nimage, string) {
	s := obs.Current()
	nativeCache.Lock()
	defer nativeCache.Unlock()
	if e, ok := nativeCache.ents[img]; ok {
		s.Add(obs.CSimNativeCacheHits, 1)
		return e.ni, e.reason
	}
	sp := s.Span(obs.PhasePredecode, "native-translate")
	ni, reason := translateNative(p, img)
	sp.End()
	s.Add(obs.CSimNativeTranslates, 1)
	if ni != nil {
		s.Add(obs.CSimNativeBlocks, int64(len(ni.blocks)))
	}
	if len(nativeCache.ents) >= nativeCacheCap {
		nativeCache.ents = make(map[*image]nEntry, nativeCacheCap)
	}
	nativeCache.ents[img] = nEntry{ni: ni, reason: reason}
	return ni, reason
}

// runNative executes the program from block 0 on the closure-threaded
// image. The loop owns exactly what fastvm's shared edge code owns —
// per-entry counter/budget/deadline bookkeeping — and the translated
// closures own everything else. Error paths reuse the fast engine's
// flush/fault/spOver machinery so trap pc, message text and partial
// statistics are shared by construction.
func (m *machine) runNative(img *image, nimg *nimage) error {
	ents := make([]entCnt, len(img.ents))
	for i, e := range img.ents {
		ents[i] = entCnt{x0: e.x0, ninstr: e.ninstr}
	}
	c := &nctx{
		regs:       &m.regs,
		mem:        m.mem,
		memWords:   m.memWords,
		m:          m,
		st:         &m.res.Stats,
		ents:       ents,
		maxInstrs:  m.maxInstrs,
		deadlineAt: m.deadlineAt,
	}
	// The hot-loop bookkeeping lives in locals: fields of c reload from
	// memory after every closure call (the callee could alias them), while
	// locals stay in registers. c.instrs/c.deadlineAt are synced for the
	// fused trace closures, which advance them internally.
	instrs, maxInstrs, deadlineAt := int64(0), m.maxInstrs, m.deadlineAt
	cur := &nimg.blocks[0]
	for {
		ents[cur.bi].count++
		instrs += int64(cur.ninstr)
		if instrs > maxInstrs {
			// The budget could expire inside the entered block; unwind its
			// entry and let the reference interpreter finish the run with
			// exact per-instruction accounting.
			ents[cur.bi].count--
			m.flushEnts(img, ents)
			obs.Current().Add(obs.CSimBudgetHandoff, 1)
			_, _, err := m.interpret(int(img.blocks[cur.bi].start), nil)
			return err
		}
		if instrs >= deadlineAt {
			// Wall-clock expiry stops at the block boundary: unwind the
			// entry that was never executed, flush, and return (see runFast).
			m.deadlineAt += deadlineStride
			deadlineAt = m.deadlineAt
			c.deadlineAt = deadlineAt
			if time.Now().After(m.deadline) {
				ents[cur.bi].count--
				m.flushEnts(img, ents)
				return fmt.Errorf("pc %d: %w", img.blocks[cur.bi].start, ErrDeadline)
			}
		}
		for _, s := range cur.steps {
			if !s(c) {
				goto handle
			}
		}
		if cur.term == nil {
			cur = cur.next
			continue
		}
		c.instrs = instrs
		if next := cur.term(c); next != nil {
			instrs = c.instrs
			cur = next
			continue
		}
	handle:
		switch c.sig {
		case nsExit:
			m.flushEnts(img, ents)
			return nil
		case nsFault:
			return m.faultEnts(img, ents, c.faultBI, c.faultPC, c.faultText())
		case nsSPOver:
			return m.spOverEnts(img, ents, c.faultBI, c.faultPC)
		case nsLeave:
			m.flushEnts(img, ents)
			return m.trap(c.leavePC, "control left the code image")
		default: // nsBridge
			// Register-indirect jump into the middle of a block: flush, run
			// the reference interpreter precisely until control reaches a
			// block head, and resume closure threading there.
			m.flushEnts(img, ents)
			npc, done, err := m.interpret(int(c.bridgePC), img.blockIdx)
			if done {
				return err
			}
			instrs = m.res.Stats.Instrs // flush + interpret leave them equal
			deadlineAt = m.deadlineAt   // the interpreter may have polled
			c.deadlineAt = deadlineAt
			cur = &nimg.blocks[img.blockIdx[npc]]
		}
	}
}
