package sim

import (
	"fmt"
	"reflect"
	"testing"

	"chow88/internal/mach"
	"chow88/internal/mcode"
)

// runEngines executes p on all three tiers under identical options and
// requires the fast and native engines bit-identical — Output, Stats,
// InstrCounts and error text — to the reference oracle. It returns the
// native tier's result and error for further assertions.
func runEngines(t *testing.T, p *mcode.Program, opts Options) (*Result, error) {
	t.Helper()
	ref, rerr := RunReference(p, opts)
	var res *Result
	var err error
	for _, engine := range []string{"fast", "native"} {
		o := opts
		o.Engine = engine
		res, err = Run(p, o)
		switch {
		case (err == nil) != (rerr == nil):
			t.Fatalf("%s vs reference disagree on error:\n%s: %v\nref: %v", engine, engine, err, rerr)
		case err != nil && err.Error() != rerr.Error():
			t.Fatalf("%s vs reference disagree on error text:\n%s: %v\nref: %v", engine, engine, err, rerr)
		}
		if !reflect.DeepEqual(res.Output, ref.Output) {
			t.Fatalf("%s output diverged:\n%s: %v\nref: %v", engine, engine, res.Output, ref.Output)
		}
		if res.Stats != ref.Stats {
			t.Fatalf("%s stats diverged from reference:\n%s", engine, res.Stats.Diff(&ref.Stats))
		}
		if !reflect.DeepEqual(res.InstrCounts, ref.InstrCounts) {
			t.Fatalf("%s instruction counts diverged:\n%s: %v\nref: %v", engine, engine, res.InstrCounts, ref.InstrCounts)
		}
	}
	return res, err
}

// requireFastPath asserts that p passes static verification and native
// translation, i.e. both block engines actually execute their compiled
// form of the image rather than falling down the tier ladder.
func requireFastPath(t *testing.T, p *mcode.Program) {
	t.Helper()
	img, _ := imageFor(p)
	if img == nil {
		t.Fatalf("image rejected by verify; fast path not exercised:\n%v", mcode.Verify(p))
	}
	if ni, reason := nativeFor(p, img); ni == nil {
		t.Fatalf("native translation declined; closure threading not exercised: %s", reason)
	}
}

func profOpts() Options { return Options{Profile: true} }

func TestEnginesFusedCompareBranch(t *testing.T) {
	// A counting loop whose back edge is a fused SLT+BNEZ, plus every
	// compare flavor feeding both branch senses, immediate and register.
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 0},
		mcode.Instr{Op: mcode.LI, Rd: mach.T3, Imm: 5},
		// loop:
		mcode.Instr{Op: mcode.ADD, Rd: mach.T0, Rs: mach.T0, HasImm: true, Imm: 1},
		mcode.Instr{Op: mcode.SLT, Rd: mach.T1, Rs: mach.T0, Rt: mach.T3},
		mcode.Instr{Op: mcode.BNEZ, Rs: mach.T1, Target: 4},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T0},
		// The comparison result survives the fused branch and is readable.
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T1},
		mcode.Instr{Op: mcode.SEQ, Rd: mach.T1, Rs: mach.T0, HasImm: true, Imm: 5},
		mcode.Instr{Op: mcode.BEQZ, Rs: mach.T1, Target: 11},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T1},
		mcode.Instr{Op: mcode.SNE, Rd: mach.T2, Rs: mach.T0, HasImm: true, Imm: 9},
		mcode.Instr{Op: mcode.BNEZ, Rs: mach.T2, Target: 15},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T0},
		mcode.Instr{Op: mcode.SLE, Rd: mach.T2, Rs: mach.T3, Rt: mach.T0},
		mcode.Instr{Op: mcode.BEQZ, Rs: mach.T2, Target: 17},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T2},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	requireFastPath(t, p)
	res, err := runEngines(t, p, profOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 0, 1, 1}
	if !reflect.DeepEqual(res.Output, want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
}

func TestEnginesSaveRestoreRuns(t *testing.T) {
	// A prologue/epilogue shape: push three registers, clobber them,
	// restore. The stores and loads fuse into memory runs.
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 11},
		mcode.Instr{Op: mcode.LI, Rd: mach.T1, Imm: 22},
		mcode.Instr{Op: mcode.LI, Rd: mach.T2, Imm: 33},
		mcode.Instr{Op: mcode.ADD, Rd: mach.SP, Rs: mach.SP, HasImm: true, Imm: -3},
		mcode.Instr{Op: mcode.SW, Rs: mach.SP, Rt: mach.T0, Imm: 0, Class: mcode.ClassSaveRestore},
		mcode.Instr{Op: mcode.SW, Rs: mach.SP, Rt: mach.T1, Imm: 1, Class: mcode.ClassSaveRestore},
		mcode.Instr{Op: mcode.SW, Rs: mach.SP, Rt: mach.T2, Imm: 2, Class: mcode.ClassSaveRestore},
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 0},
		mcode.Instr{Op: mcode.LI, Rd: mach.T1, Imm: 0},
		mcode.Instr{Op: mcode.LI, Rd: mach.T2, Imm: 0},
		mcode.Instr{Op: mcode.LW, Rd: mach.T0, Rs: mach.SP, Imm: 0, Class: mcode.ClassSaveRestore},
		mcode.Instr{Op: mcode.LW, Rd: mach.T1, Rs: mach.SP, Imm: 1, Class: mcode.ClassSaveRestore},
		mcode.Instr{Op: mcode.LW, Rd: mach.T2, Rs: mach.SP, Imm: 2, Class: mcode.ClassSaveRestore},
		mcode.Instr{Op: mcode.ADD, Rd: mach.SP, Rs: mach.SP, HasImm: true, Imm: 3},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T0},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T1},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T2},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	requireFastPath(t, p)
	res, err := runEngines(t, p, profOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{11, 22, 33}) {
		t.Fatalf("output = %v", res.Output)
	}
	if res.Stats.SaveRestoreLS() != 6 {
		t.Fatalf("save/restore l+s = %d, want 6", res.Stats.SaveRestoreLS())
	}
}

func TestEnginesStoreRunFaultMidRun(t *testing.T) {
	// The second store of a fused run faults; the trap PC must be that
	// store's original index and the first store must have counted.
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 2047},
		mcode.Instr{Op: mcode.SW, Rs: mach.T0, Rt: mach.T1, Imm: 0, Class: mcode.ClassScalar},
		mcode.Instr{Op: mcode.SW, Rs: mach.T0, Rt: mach.T1, Imm: -4000, Class: mcode.ClassScalar},
		mcode.Instr{Op: mcode.SW, Rs: mach.T0, Rt: mach.T1, Imm: 1, Class: mcode.ClassScalar},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	requireFastPath(t, p)
	res, err := runEngines(t, p, profOpts())
	if err == nil {
		t.Fatal("want bad-address trap")
	}
	trap, ok := err.(*Trap)
	if !ok || trap.PC != 4 {
		t.Fatalf("trap = %v, want pc 4", err)
	}
	if res.Stats.Stores != 1 {
		t.Fatalf("stores before fault = %d, want 1", res.Stats.Stores)
	}
}

func TestEnginesLoadRunFaultMidRun(t *testing.T) {
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 1},
		mcode.Instr{Op: mcode.LW, Rd: mach.T1, Rs: mach.T0, Imm: 0, Class: mcode.ClassScalar},
		mcode.Instr{Op: mcode.LW, Rd: mach.T2, Rs: mach.T0, Imm: -2, Class: mcode.ClassScalar},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	requireFastPath(t, p)
	_, err := runEngines(t, p, profOpts())
	trap, ok := err.(*Trap)
	if !ok || trap.PC != 4 {
		t.Fatalf("trap = %v, want pc 4", err)
	}
}

func TestEnginesDivTraps(t *testing.T) {
	for name, ins := range map[string]mcode.Instr{
		"reg-zero": {Op: mcode.DIV, Rd: mach.T1, Rs: mach.T0, Rt: mach.T2},
		"imm-zero": {Op: mcode.REM, Rd: mach.T1, Rs: mach.T0, HasImm: true, Imm: 0},
	} {
		t.Run(name, func(t *testing.T) {
			p := prog(
				mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 5},
				ins,
				mcode.Instr{Op: mcode.JR, Rs: mach.RA},
			)
			requireFastPath(t, p)
			res, err := runEngines(t, p, profOpts())
			if err == nil {
				t.Fatal("want div-by-zero trap")
			}
			// The divide's full latency is charged before the zero check.
			if res.Stats.MulDiv != 1 || res.Stats.Cycles < 35 {
				t.Fatalf("partial stats wrong: %+v", res.Stats)
			}
		})
	}
}

func TestEnginesIndirectCallTraps(t *testing.T) {
	mk := func(fv int64) *mcode.Program {
		code := []mcode.Instr{
			{Op: mcode.JAL, Target: 2},
			{Op: mcode.EXIT},
			{Op: mcode.LI, Rd: mach.T0, Imm: fv},
			{Op: mcode.JALR, Rs: mach.T0},
			{Op: mcode.JR, Rs: mach.RA},
		}
		return &mcode.Program{
			Code: code,
			Funcs: []*mcode.FuncInfo{
				{Name: "main", Entry: 2, End: 5},
				{Name: "lib", Entry: -1, Extern: true},
			},
			DataSize: 64,
		}
	}
	for name, fv := range map[string]int64{"invalid": 99, "extern": 2} {
		t.Run(name, func(t *testing.T) {
			p := mk(fv)
			requireFastPath(t, p)
			res, err := runEngines(t, p, profOpts())
			if err == nil {
				t.Fatal("want trap")
			}
			// JALR counts the call before validating the callee.
			if res.Stats.Calls != 2 {
				t.Fatalf("calls = %d, want 2", res.Stats.Calls)
			}
		})
	}
}

func TestEnginesJumpIntoBlockMiddle(t *testing.T) {
	// JR lands mid-block (its target is not a static leader): the fast
	// engine bridges with the precise interpreter until the next head.
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T1, Imm: 5},
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 6},
		mcode.Instr{Op: mcode.JR, Rs: mach.T0},
		mcode.Instr{Op: mcode.LI, Rd: mach.T1, Imm: 99}, // skipped head
		mcode.Instr{Op: mcode.ADD, Rd: mach.T1, Rs: mach.T1, HasImm: true, Imm: 1},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T1},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	requireFastPath(t, p)
	if img, _ := imageFor(p); img.blockIdx[6] >= 0 {
		t.Fatal("test premise broken: pc 6 became a block head")
	}
	res, err := runEngines(t, p, profOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{6}) {
		t.Fatalf("output = %v", res.Output)
	}
}

func TestEnginesBudgetExpiresMidBlock(t *testing.T) {
	// An infinite loop whose body is a 4-instruction straight block; odd
	// budgets expire inside the block, exercising the precise delegation.
	body := prog(
		mcode.Instr{Op: mcode.ADD, Rd: mach.T0, Rs: mach.T0, HasImm: true, Imm: 1},
		mcode.Instr{Op: mcode.ADD, Rd: mach.T1, Rs: mach.T0, Rt: mach.T0},
		mcode.Instr{Op: mcode.SUB, Rd: mach.T2, Rs: mach.T1, Rt: mach.T0},
		mcode.Instr{Op: mcode.J, Target: 2},
	)
	requireFastPath(t, body)
	for budget := int64(5); budget <= 13; budget++ {
		res, err := runEngines(t, body, Options{Profile: true, MaxInstrs: budget})
		if err == nil {
			t.Fatalf("budget %d: want limit error", budget)
		}
		if res.Stats.Instrs != budget+1 {
			t.Fatalf("budget %d: instrs = %d", budget, res.Stats.Instrs)
		}
	}
}

func TestEnginesStackOverflowMidBlock(t *testing.T) {
	// SP drops below the floor in the middle of a straight block; the trap
	// reports that instruction with its full statistics counted.
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 10},
		mcode.Instr{Op: mcode.MOVE, Rd: mach.SP, Rs: mach.T0},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T0},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	requireFastPath(t, p)
	res, err := runEngines(t, p, profOpts())
	trap, ok := err.(*Trap)
	if !ok || trap.PC != 3 {
		t.Fatalf("trap = %v, want stack overflow at pc 3", err)
	}
	// The MOVE itself completed: 3 instructions total (stub JAL, LI, MOVE).
	if res.Stats.Instrs != 3 {
		t.Fatalf("instrs = %d", res.Stats.Instrs)
	}
}

func TestEnginesControlLeavesImage(t *testing.T) {
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 1 << 40},
		mcode.Instr{Op: mcode.JR, Rs: mach.T0},
	)
	requireFastPath(t, p)
	if _, err := runEngines(t, p, profOpts()); err == nil {
		t.Fatal("want control-left trap")
	}
}

func TestEnginesZeroRegisterWrites(t *testing.T) {
	// Writes to $zero — plain, in a fused compare, and inside a load run —
	// must all be discarded identically.
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.Zero, Imm: 7},
		mcode.Instr{Op: mcode.ADD, Rd: mach.Zero, Rs: mach.Zero, HasImm: true, Imm: 9},
		mcode.Instr{Op: mcode.LW, Rd: mach.Zero, Rs: mach.Zero, Imm: 3, Class: mcode.ClassScalar},
		mcode.Instr{Op: mcode.LW, Rd: mach.T1, Rs: mach.Zero, Imm: 4, Class: mcode.ClassScalar},
		mcode.Instr{Op: mcode.SEQ, Rd: mach.Zero, Rs: mach.T1, HasImm: true, Imm: 0},
		mcode.Instr{Op: mcode.BNEZ, Rs: mach.Zero, Target: 9},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.Zero},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	requireFastPath(t, p)
	res, err := runEngines(t, p, profOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{0}) {
		t.Fatalf("output = %v", res.Output)
	}
}

func TestEnginesDegenerateStack(t *testing.T) {
	// MemWords below the data segment: the initial SP already violates the
	// floor. Run falls back to the reference engine wholesale; both
	// engines must agree on the resulting trap.
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 1},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	if _, err := runEngines(t, p, Options{MemWords: 16, Profile: true}); err == nil {
		t.Fatal("want stack overflow")
	}
}

func TestEnginesBadImageFallsBack(t *testing.T) {
	// An image the verifier rejects (branch target out of range) still
	// runs — on the reference engine — and both entry points agree.
	p := prog(
		mcode.Instr{Op: mcode.BEQZ, Rs: mach.T0, Target: 999},
	)
	if img, _ := imageFor(p); img != nil {
		t.Fatal("verifier should reject out-of-range branch")
	}
	if _, err := runEngines(t, p, profOpts()); err == nil {
		t.Fatal("want trap from bad branch")
	}
}

func TestEnginesOverflowingRunBase(t *testing.T) {
	// A run base near the int64 extremes must not panic or diverge: the
	// fast path's bounds check refuses it and the per-entry walk traps
	// exactly like the reference.
	for _, base := range []int64{-1 << 63, (-1 << 63) + 1, 1<<63 - 1, 1 << 62} {
		p := prog(
			mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: base},
			mcode.Instr{Op: mcode.SW, Rs: mach.T0, Rt: mach.T1, Imm: 5, Class: mcode.ClassScalar},
			mcode.Instr{Op: mcode.SW, Rs: mach.T0, Rt: mach.T1, Imm: 9, Class: mcode.ClassScalar},
			mcode.Instr{Op: mcode.JR, Rs: mach.RA},
		)
		requireFastPath(t, p)
		if _, err := runEngines(t, p, profOpts()); err == nil {
			t.Fatalf("base %d: want trap", base)
		}
	}
}

func TestEnginesSignedDivisionEdge(t *testing.T) {
	p := prog(
		mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: -1 << 63},
		mcode.Instr{Op: mcode.LI, Rd: mach.T1, Imm: -1},
		mcode.Instr{Op: mcode.DIV, Rd: mach.T2, Rs: mach.T0, Rt: mach.T1},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T2},
		mcode.Instr{Op: mcode.REM, Rd: mach.T2, Rs: mach.T0, Rt: mach.T1},
		mcode.Instr{Op: mcode.PRINT, Rs: mach.T2},
		mcode.Instr{Op: mcode.JR, Rs: mach.RA},
	)
	requireFastPath(t, p)
	res, err := runEngines(t, p, profOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{-1 << 63, 0}) {
		t.Fatalf("output = %v", res.Output)
	}
}

// TestNativeConcurrentRuns hammers the native tier from many goroutines:
// a shared program (translation-cache hit path) interleaved with fresh
// program values (miss path, including the wholesale cache reset once the
// map fills). Run under the race detector by `make native`, this is the
// test that holds the cache's locking and the translated closures'
// statelessness honest.
func TestNativeConcurrentRuns(t *testing.T) {
	mk := func() *mcode.Program {
		return prog(
			mcode.Instr{Op: mcode.LI, Rd: mach.T0, Imm: 3},
			// loop:
			mcode.Instr{Op: mcode.ADD, Rd: mach.T0, Rs: mach.T0, HasImm: true, Imm: -1},
			mcode.Instr{Op: mcode.BNEZ, Rs: mach.T0, Target: 3},
			mcode.Instr{Op: mcode.PRINT, Rs: mach.T0},
			mcode.Instr{Op: mcode.JR, Rs: mach.RA},
		)
	}
	shared := mk()
	want, werr := RunReference(shared, Options{Profile: true})
	if werr != nil {
		t.Fatal(werr)
	}
	const workers, iters = 8, 40
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < iters; i++ {
				p := shared
				if i%3 == 0 {
					p = mk() // a fresh program value forces a fresh translation
				}
				res, err := Run(p, Options{Engine: "native", Profile: true})
				if err != nil {
					errs <- fmt.Errorf("worker %d run %d: %v", w, i, err)
					return
				}
				if !reflect.DeepEqual(res.Output, want.Output) || res.Stats != want.Stats {
					errs <- fmt.Errorf("worker %d run %d diverged:\n%s", w, i, res.Stats.Diff(&want.Stats))
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
