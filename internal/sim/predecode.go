// Predecoding: one-time translation of an mcode.Program into the dense
// internal ISA the fast engine executes.
//
// The translation splits immediate and register ALU forms into distinct
// opcodes (the per-iteration HasImm test disappears), renames writes to
// $zero into a scratch slot (the hardwired zero needs no re-clearing),
// discovers basic blocks, and resolves every static control edge to the
// target's *block index* so the executor follows edges without consulting
// a pc map. Each block records its precomputed statistics delta; the
// executor counts block entries and materializes pixie.Stats from the
// deltas once per run. Two superinstruction fusions cut dispatches
// further: compare-and-branch pairs (SLT/SLE/SEQ/SNE feeding BEQZ/BNEZ),
// and prologue/epilogue save/restore runs (consecutive same-base SW or LW)
// which become one bounds check plus a tight copy loop. Instructions that
// write $sp are followed by a synthetic stack guard, so the common case
// pays nothing for overflow detection; blocks that fall through without a
// control instruction get a synthetic terminator carrying the edge.
//
// Images are memoized per *mcode.Program, so the experiments harness and
// repeated Prog.Run calls pay the decode once.
package sim

import (
	"sync"

	"chow88/internal/mach"
	"chow88/internal/mcode"
	"chow88/internal/obs"
	"chow88/internal/pixie"
)

// xop enumerates the internal ISA. The *R/*I suffixes are the register and
// immediate ALU forms; the *B forms are fused compare-and-branch.
type xop uint8

const (
	xLI xop = iota
	xMOVE
	xADDR
	xADDI
	xSUBR
	xSUBI
	xMULR
	xMULI
	xDIVR
	xDIVI
	xREMR
	xREMI
	xSLTR
	xSLTI
	xSLER
	xSLEI
	xSEQR
	xSEQI
	xSNER
	xSNEI
	xLW
	xSW
	xBEQZ
	xBNEZ
	xJ
	xJAL
	xJALR
	xJR
	xPRINT
	xEXIT
	// Fused compare-and-branch: the comparison result is still written to
	// rd (it may be read later), then the branch decides on it directly.
	xSLTRB
	xSLTIB
	xSLERB
	xSLEIB
	xSEQRB
	xSEQIB
	xSNERB
	xSNEIB
	// Memory runs: n consecutive same-base stores or loads executed under
	// one bounds check.
	xSWRUN
	xLWRUN
	// Pair superinstructions for the hottest adjacent opcode pairs in
	// compiled code (register shuffling around calls dominates the dynamic
	// mix): two dispatches become one. The MOVE half packs its registers
	// into whichever fields the primary op leaves free — rt/flags for
	// immediate forms, the low bytes of imm for register forms.
	xMOVE2    // MOVE ; MOVE
	xLIMOVE   // LI ; MOVE
	xLIDIVR   // LI rd,imm ; DIV rt, rs / rd   (imm != 0)
	xLIREMR   // LI rd,imm ; REM rt, rs % rd   (imm != 0)
	xADDRMOVE // ADD (reg) ; MOVE
	xADDIMOVE // ADD (imm) ; MOVE
	xMULRMOVE // MUL (reg) ; MOVE
	xMULIMOVE // MUL (imm) ; MOVE
	xMOVEADDR // MOVE ; ADD (reg)
	xMOVEADDI // MOVE ; ADD (imm)
	xMOVEMULR // MOVE ; MUL (reg)
	xMOVEMULI // MOVE ; MUL (imm)
	xMOVEJ    // MOVE ; J
	xMOVEJAL  // MOVE ; JAL      (imm = return address)
	xMOVEJR   // MOVE ; JR rt
	// LW-pair superinstructions. Fusions with a faultable half work
	// because the trap helpers reconstruct partial statistics from the
	// original code at any pc: a fault in the second half reports pc+1
	// with the first half's effects already applied. When the load is the
	// first half its offset moves to a1 (pairs fuse only when it fits
	// int32), freeing imm for the second op; the second op's registers
	// sit in rt/flags, with a third register packed into imm's low byte
	// for register forms.
	xLWMOVE  // LW ; MOVE
	xLWADDR  // LW ; ADD (reg)
	xLWADDI  // LW ; ADD (imm)
	xLWSEQR  // LW ; SEQ (reg)
	xLWSEQI  // LW ; SEQ (imm)
	xLWSLTR  // LW ; SLT (reg)
	xLWSLTI  // LW ; SLT (imm)
	xLWSLER  // LW ; SLE (reg)
	xLWSLEI  // LW ; SLE (imm)
	xLWSNER  // LW ; SNE (reg)
	xLWSNEI  // LW ; SNE (imm)
	xLWDIVR  // LW ; DIV (reg)  — divisor checked at run time
	xMOVELW  // MOVE ; LW       (offset stays in imm; move in rt/flags)
	xADDRLW  // ADD (reg) ; LW  (load rd in flags, base in imm's low byte)
	xADDILW  // ADD (imm) ; LW  (load rd/base in rt/flags, offset in a1)
	xMULIADD // MUL (imm) ; ADD (reg) — array indexing (scale, then base)
	// Triple superinstructions: a fused pair extended with the block
	// terminator, so load-test-branch sequences and tail jumps retire in a
	// single dispatch that falls straight into the edge code. In the
	// LW+compare+branch family the packed imm carries the load offset in
	// its low 32 bits and the compare operand (immediate or register
	// number) in its high 32; flags holds the compare source register
	// shifted left one, with fBNZ in bit 0; a1 is the taken block and a2
	// the pair's own block (the fallthrough block is always a2+1 — triples
	// fuse only when the branch does not sit on the last code index).
	xLWSEQRB // LW ; SEQ (reg) ; BEQZ/BNEZ
	xLWSEQIB // LW ; SEQ (imm) ; BEQZ/BNEZ
	xLWSNERB // LW ; SNE (reg) ; BEQZ/BNEZ
	xLWSNEIB // LW ; SNE (imm) ; BEQZ/BNEZ
	xLWSLTRB // LW ; SLT (reg) ; BEQZ/BNEZ
	xLWSLTIB // LW ; SLT (imm) ; BEQZ/BNEZ
	xLWSLERB // LW ; SLE (reg) ; BEQZ/BNEZ
	xLWSLEIB // LW ; SLE (imm) ; BEQZ/BNEZ
	// xADDIMOVEJ and xLIMOVEJR absorb an unconditional terminator into the
	// preceding pair: the J's target block rides in a1; the JR's source
	// register rides in rs (free in both pair encodings).
	xADDIMOVEJ // ADD (imm) ; MOVE ; J
	xLIMOVEJR  // LI ; MOVE ; JR
	// xLIREM2 is xLIREMR specialized to the constant 2, the dominant
	// divisor in the suite (parity tests): the compiler strength-reduces
	// the literal remainder where a variable divisor costs a hardware
	// divide.
	xLIREM2 // LI 2 ; REM (reg)
	// Peephole merges of adjacent superinstructions (see mergePeep).
	// xDIVLIREM2 keeps the divide's registers in rd/rs/rt and packs the
	// LI destination in flags and the remainder's dest/src into a1.
	// xMOVE2MOVEJAL packs the third move into imm's low bytes with the
	// return address above them. xMOVEADDMOVEMUL packs its two moves into
	// a1 (four register bytes), the multiply dest/src into flags/a2, and
	// the multiply immediate in imm.
	xDIVLIREM2      // DIV (reg) ; LI 2 ; REM (reg)
	xMOVE2MOVEJAL   // MOVE ; MOVE ; MOVE ; JAL
	xMOVEADDMOVEMUL // MOVE ; ADD (reg) ; MOVE ; MUL (imm)
	// xMOVELWADDMOVE shifts the load offset into imm's high half and packs
	// the add's three registers into imm's low bytes and the second move
	// into a1. xLWADDMOVEJ packs the add's register operand, the move, and
	// the jump's target block into imm (target above bit 24).
	xMOVELWADDMOVE // MOVE ; LW ; ADD (reg) ; MOVE
	xLWADDMOVEJ    // LW ; ADD (reg) ; MOVE ; J (or plain fallthrough)
	// xMOVEADDMOVEMULMOVEJ extends xMOVEADDMOVEMUL with a trailing move
	// and jump: the multiply immediate narrows to imm's low 32 bits (the
	// merge requires it to fit) with the target block above it, and the
	// final move's registers join the multiply source in a2.
	xMOVEADDMOVEMULMOVEJ // MOVE ; ADD (reg) ; MOVE ; MUL (imm) ; MOVE ; J
	// xMOVEFALL is a trailing move folded into its block's synthetic
	// fallthrough terminator (a2 = fallthrough block, as for xFALL).
	xMOVEFALL // MOVE ; fall off block end
	// xDIVLIREM2X2SNEB fuses a whole parity-compare block tail — two
	// strength-reduced divide/parity pairs feeding a compare-and-branch
	// (the dominant shape of bit-walking loops): eight instructions retire
	// in one dispatch. The first divide keeps rd/rs/rt; imm packs, from the
	// low byte up, the first LI destination, the first parity destination,
	// then the second divide's rd/rs/rt, LI destination and parity
	// destination. flags carries the compare destination shifted left one
	// with fBNZ in bit 0 (as for the LW triples); a1 is the taken block and
	// the fallthrough is a2+1. The merge requires each remainder to read
	// its own divide's quotient and the compare to read the two parities,
	// so the executor can re-read every intermediate from the register file
	// at the reference interpreter's program points (alias-exact).
	xDIVLIREM2X2SNEB // DIV ; LI 2 ; REM ; DIV ; LI 2 ; REM ; SNE ; BEQZ/BNEZ
	// Call-linkage fusions: every frame adjust pays its stack guard inside
	// the add's dispatch, and the epilogue adjust+guard absorbs the return
	// jump too (the JR's source register rides in rt, which the immediate
	// add leaves free).
	xADDISPG   // ADD (imm) writing $sp ; stack guard
	xADDISPGJR // ADD (imm) writing $sp ; stack guard ; JR
	// More straight-line pairs from the dynamic histogram: a store or a
	// constant load followed by the next argument's constant, and a
	// trailing constant folded into the synthetic fallthrough (as
	// xMOVEFALL). xSWLI keeps the store's offset in a1 (int32-gated) and
	// the constant in imm; xLI2 keeps the first constant in imm and the
	// second (int32-gated) in a1.
	xSWLI   // SW ; LI
	xLI2    // LI ; LI
	xLIFALL // LI ; fall off block end
	// xMULIADDLWSEQIB is the array-probe loop shape: scale an index,
	// add the base, load, compare against a constant, branch. It fuses
	// only when the load's base is the add's destination and the compare
	// reads the loaded value, so the executor re-reads both from the
	// register file at the reference program points; imm packs, low byte
	// up, the multiply dest and source, the load dest, the load offset
	// (int16), the multiply immediate (int16) and the compare operand
	// (int8), all range-gated at merge time. rd/rs/rt hold the add's
	// dest and sources, flags>>1 the compare dest, and a1/a2 follow the
	// LW triple convention (taken target; own block, fallthrough a2+1).
	xMULIADDLWSEQIB // MUL (imm) ; ADD (reg) ; LW ; SEQ (imm) ; BEQZ/BNEZ
	// xSPG is a synthetic stack guard emitted after any instruction that
	// writes $sp; pc names the writer, a2 its block.
	xSPG
	// xFALL is the synthetic terminator of a block that ends without a
	// control instruction: a2 is the fallthrough block (or -1 when control
	// would run off the code image), pc the block's last instruction.
	xFALL
)

// fBNZ gives a fused compare-and-branch BNEZ sense (branch when the
// comparison holds); clear means BEQZ (branch when it fails).
const fBNZ uint8 = 1

// zeroSink is the scratch register slot that absorbs writes to $zero.
const zeroSink = mach.NumRegs

// xinstr is one predecoded instruction.
//
// a1/a2 carry block indices for control: a1 is the branch/jump/call target
// block (or the memRun index for xSWRUN/xLWRUN, or the faulting
// instruction's own block for xJALR), a2 the fallthrough block for
// terminators and the instruction's own block for faultable mid-block
// instructions (loads, stores, divides, runs, guards) so trap handlers
// know which entry count to unwind.
type xinstr struct {
	op    xop
	rd    uint8
	rs    uint8
	rt    uint8
	flags uint8
	imm   int64
	a1    int32
	a2    int32
	pc    int32 // original code index (trap reporting, return addresses)
}

// runEnt is one access of a fused memory run.
type runEnt struct {
	off int64
	reg uint8 // data source (SW) or destination (LW, $zero renamed)
}

// memRun is a fused run of consecutive same-base loads or stores. minOff
// and maxOff bound the touched offsets so the whole run needs one bounds
// check on the fast path.
type memRun struct {
	base   uint8
	minOff int64
	maxOff int64
	ents   []runEnt
}

// block is one straight-line basic block.
type block struct {
	start, end int32 // original code span [start, end)
	x0         int32 // first predecoded instruction in image.xcode
	ninstr     int64 // == end - start; budget pre-check
	// delta is the full-execution statistics of the block — everything the
	// reference interpreter would count running start..end-1 without a
	// fault. Taken is control-dependent and always zero here; the executor
	// counts it when a terminating branch fires.
	delta pixie.Stats
}

// blkEnt is the hot per-block pair the executor reads on every block
// transition. block itself is large (it embeds a full pixie.Stats), so
// indexing blocks[] per entry costs a cache line per transition; ents[]
// packs eight blocks per line instead. A negative x0 marks a block whose
// whole body is a single unconditional jump: -x0-1 is the jump's target
// block, and the executor follows the edge in the entry loop without
// dispatching the jump at all (the entry bookkeeping — count, budget —
// still runs per threaded block).
type blkEnt struct {
	x0     int32 // == blocks[i].x0, or -(target block)-1 for a J-only block
	ninstr int32 // == blocks[i].ninstr
}

// image is the predecoded program. It is immutable once built and shared
// across concurrent runs.
type image struct {
	blocks []block
	ents   []blkEnt
	xcode  []xinstr
	runs   []memRun
	// tails[bi] lists the blocks whose bodies were tail-inlined into block
	// bi (in chain order): bi's ninstr and delta include theirs, and flush
	// attributes bi's entry count to their code ranges when profiling.
	tails [][]int32
	// blockIdx maps a code index to its block when the index is a block
	// head, -1 otherwise. The executor needs it only for dynamic control
	// (JR, JALR) and as the stop-set when the reference interpreter
	// bridges a non-head entry.
	blockIdx []int32
}

// imgEntry is one imageCache slot: the predecoded image, or nil with the
// verification failure that rejected the program — cached too, so every
// run of a bad image takes the reference path without re-verifying, and
// the fallback reason survives to be reported on each Result.
type imgEntry struct {
	img    *image
	reason string
}

// imageCache memoizes predecoded images per program identity. When the
// cache fills it resets wholesale — the working set (a benchmark suite, a
// test matrix) sits far below the cap, so eviction is a correctness
// backstop rather than a tuning knob.
var imageCache = struct {
	sync.Mutex
	imgs map[*mcode.Program]imgEntry
}{imgs: map[*mcode.Program]imgEntry{}}

const imageCacheCap = 128

// imageFor returns the memoized image for p, plus the verification
// failure message when predecoding rejected it (the image is then nil).
func imageFor(p *mcode.Program) (*image, string) {
	s := obs.Current()
	imageCache.Lock()
	e, ok := imageCache.imgs[p]
	imageCache.Unlock()
	if ok {
		s.Add(obs.CSimImageCacheHits, 1)
		return e.img, e.reason
	}
	sp := s.Span(obs.PhasePredecode, "predecode")
	e.img, e.reason = predecode(p)
	sp.End()
	s.Add(obs.CSimPredecodes, 1)
	if s != nil && e.img != nil {
		inlined := 0
		for _, t := range e.img.tails {
			inlined += len(t)
		}
		s.Add(obs.CSimTailInlined, int64(inlined))
	}
	imageCache.Lock()
	if len(imageCache.imgs) >= imageCacheCap {
		imageCache.imgs = make(map[*mcode.Program]imgEntry, imageCacheCap)
	}
	imageCache.imgs[p] = e
	imageCache.Unlock()
	return e.img, e.reason
}

// runOffOK bounds offsets eligible for memory-run fusion; within it, the
// run's base+minOff / base+maxOff bounds check is overflow-free for any
// base inside the runBaseMax window.
func runOffOK(off int64) bool {
	return off > -(1<<32) && off < 1<<32
}

func isCmp(op mcode.OpCode) bool {
	return op == mcode.SLT || op == mcode.SLE || op == mcode.SEQ || op == mcode.SNE
}

func isControl(op mcode.OpCode) bool {
	switch op {
	case mcode.BEQZ, mcode.BNEZ, mcode.J, mcode.JAL, mcode.JALR, mcode.JR, mcode.EXIT:
		return true
	}
	return false
}

// addInstrStats adds the full execution statistics of one instruction —
// exactly the counters the reference interpreter bumps when it completes
// without trapping. Taken is control-dependent and accounted separately.
func addInstrStats(st *pixie.Stats, in *mcode.Instr) {
	st.Instrs++
	st.Cycles++
	if in.Linkage {
		st.LinkageCycles++
	}
	switch in.Op {
	case mcode.MUL:
		st.Cycles += 11
		st.MulDiv++
	case mcode.DIV, mcode.REM:
		st.Cycles += 34
		st.MulDiv++
	case mcode.LW:
		st.Loads++
		st.LoadsByClass[in.Class]++
	case mcode.SW:
		st.Stores++
		st.StoresByClass[in.Class]++
	case mcode.BEQZ, mcode.BNEZ:
		st.Branches++
	case mcode.JAL, mcode.JALR:
		st.Calls++
	}
}

// predecode builds the image, or returns nil plus the verification error
// when static verification rejects the program (the caller then runs the
// reference interpreter, which reproduces the original trap behaviour for
// bad images).
func predecode(p *mcode.Program) (*image, string) {
	if err := mcode.Verify(p); err != nil {
		return nil, err.Error()
	}
	n := len(p.Code)

	// Leaders: the startup stub, function entries, every static control
	// target, and every instruction after a control transfer (fallthrough
	// of a branch, return point of a call).
	leader := make([]bool, n)
	leader[0] = true
	for _, f := range p.Funcs {
		if !f.Extern {
			leader[f.Entry] = true
		}
	}
	for i := range p.Code {
		in := &p.Code[i]
		switch in.Op {
		case mcode.BEQZ, mcode.BNEZ, mcode.J, mcode.JAL:
			if in.Target >= 0 && in.Target < n {
				leader[in.Target] = true
			}
		}
		if isControl(in.Op) && i+1 < n {
			leader[i+1] = true
		}
	}

	// Pass 1: partition [0,n) into blocks and compute each block's static
	// statistics delta. blockIdx must be complete before translation so
	// control edges can be resolved to block indices.
	img := &image{blockIdx: make([]int32, n)}
	for i := range img.blockIdx {
		img.blockIdx[i] = -1
	}
	for i := 0; i < n; {
		start := i
		for {
			op := p.Code[i].Op
			i++
			if isControl(op) || i >= n || leader[i] {
				break
			}
		}
		b := block{start: int32(start), end: int32(i), ninstr: int64(i - start)}
		for pc := start; pc < i; pc++ {
			addInstrStats(&b.delta, &p.Code[pc])
		}
		img.blockIdx[start] = int32(len(img.blocks))
		img.blocks = append(img.blocks, b)
	}

	// Pass 2: translate each block.
	for bi := range img.blocks {
		b := &img.blocks[bi]
		b.x0 = int32(len(img.xcode))
		img.decodeBlock(p, b, int32(bi))
	}

	// Pass 3: tail inlining. A block ending in a plain jump (or a synthetic
	// fallthrough) whose target's body contains only duplication-safe
	// instructions absorbs a copy of that body in place of the jump, so hot
	// join blocks retire without a dispatch or a block transition — and a
	// chain of such targets keeps collapsing until an unsafe body, a cycle,
	// or the size cap stops it. The copy is position-independent: control
	// fields hold global block indices and pc fields original code indices.
	// Duplication-safe ops never fault and never consult their own block
	// index, so every trap still unwinds the count of the block that was
	// entered; the inlined instructions execute unconditionally (a basic
	// block branches only at its end), so folding the tails' ninstr and
	// delta into the inlining block keeps the entry-count accounting exact.
	img.inlineTails()

	img.ents = make([]blkEnt, len(img.blocks))
	for bi := range img.blocks {
		b := &img.blocks[bi]
		e := blkEnt{x0: b.x0, ninstr: int32(b.ninstr)}
		hi := len(img.xcode)
		if bi+1 < len(img.blocks) {
			hi = int(img.blocks[bi+1].x0)
		}
		if hi-int(b.x0) == 1 {
			if x := &img.xcode[b.x0]; x.op == xJ && x.a1 >= 0 {
				e.x0 = -x.a1 - 1
			}
		}
		img.ents[bi] = e
	}
	return img, ""
}

// inlineTailMax caps the predecoded length a block may grow to by tail
// inlining; it bounds code duplication on long jump chains.
const inlineTailMax = 40

// inlinableOp reports whether an internal instruction may be duplicated
// into another block's tail: it must not fault (faults unwind the entering
// block's count, and a copy runs under the inlining block's count, so a2
// would lie) and must not address its own block — which also rules out the
// LW triples whose fallthrough is addressed as a2+1, the stack guard, and
// the memory runs.
func inlinableOp(op xop) bool {
	switch op {
	case xLI, xMOVE, xADDR, xADDI, xSUBR, xSUBI, xMULR, xMULI,
		xSLTR, xSLTI, xSLER, xSLEI, xSEQR, xSEQI, xSNER, xSNEI,
		xBEQZ, xBNEZ, xJ, xJAL, xJR, xPRINT, xEXIT,
		xSLTRB, xSLTIB, xSLERB, xSLEIB, xSEQRB, xSEQIB, xSNERB, xSNEIB,
		xMOVE2, xLIMOVE, xLIDIVR, xLIREMR, xLIREM2,
		xADDRMOVE, xADDIMOVE, xMULRMOVE, xMULIMOVE,
		xMOVEADDR, xMOVEADDI, xMOVEMULR, xMOVEMULI,
		xMOVEJ, xMOVEJAL, xMOVEJR, xMULIADD,
		xADDIMOVEJ, xLIMOVEJR, xMOVE2MOVEJAL, xMOVEADDMOVEMUL,
		xMOVEADDMOVEMULMOVEJ, xMOVEFALL, xLI2, xLIFALL, xFALL:
		return true
	}
	return false
}

// inlineTails rebuilds xcode with safe jump targets copied into the jumping
// blocks (see the pass 3 comment in predecode). Block order is preserved,
// so [blocks[i].x0, blocks[i+1].x0) still spans block i's body.
func (img *image) inlineTails() {
	old := img.xcode
	spans := make([][2]int32, len(img.blocks))
	nin := make([]int64, len(img.blocks))
	deltas := make([]pixie.Stats, len(img.blocks))
	for bi := range img.blocks {
		hi := int32(len(old))
		if bi+1 < len(img.blocks) {
			hi = img.blocks[bi+1].x0
		}
		spans[bi] = [2]int32{img.blocks[bi].x0, hi}
		nin[bi] = img.blocks[bi].ninstr
		deltas[bi] = img.blocks[bi].delta
	}
	img.tails = make([][]int32, len(img.blocks))
	code := make([]xinstr, 0, len(old)+len(old)/8)
	for bi := range img.blocks {
		b := &img.blocks[bi]
		b.x0 = int32(len(code))
		code = append(code, old[spans[bi][0]:spans[bi][1]]...)
		room := inlineTailMax - int(spans[bi][1]-spans[bi][0])
		for {
			last := code[len(code)-1]
			// conv, when set, is what the terminator degrades to once its
			// control transfer is replaced by the inlined body (a fused
			// MOVE/LI+fallthrough keeps its data half).
			var tb int32
			conv, hasConv := xop(0), false
			switch {
			case last.op == xJ && last.a1 >= 0:
				tb = last.a1
			case last.op == xFALL && last.a2 >= 0:
				tb = last.a2
			case last.op == xMOVEFALL && last.a2 >= 0:
				tb, conv, hasConv = last.a2, xMOVE, true
			case last.op == xLIFALL && last.a2 >= 0:
				tb, conv, hasConv = last.a2, xLI, true
			default:
				tb = -1
			}
			if tb < 0 || tb == int32(bi) {
				break
			}
			seen := false
			for _, t := range img.tails[bi] {
				if t == tb {
					seen = true
					break
				}
			}
			if seen {
				break
			}
			lo, hi := spans[tb][0], spans[tb][1]
			if int(hi-lo) > room {
				break
			}
			safe := true
			for k := lo; k < hi; k++ {
				if !inlinableOp(old[k].op) {
					safe = false
					break
				}
			}
			if !safe {
				break
			}
			if hasConv {
				code[len(code)-1].op = conv
				code = append(code, old[lo:hi]...)
			} else {
				code = append(code[:len(code)-1], old[lo:hi]...)
			}
			room -= int(hi - lo)
			b.ninstr += nin[tb]
			b.delta.Add(&deltas[tb])
			img.tails[bi] = append(img.tails[bi], tb)
		}
	}
	img.xcode = code
}

// edgeTo resolves original code index t to its block index; t is always a
// leader here (Verify plus the leader pass guarantee it).
func (img *image) edgeTo(t int) int32 {
	return img.blockIdx[t]
}

// decodeBlock translates one block's instructions, applying the fusions.
func (img *image) decodeBlock(p *mcode.Program, b *block, bi int32) {
	n := len(p.Code)
	// fallBi is the block entered when control falls off this block's end.
	fallBi := int32(-1)
	if int(b.end) < n {
		fallBi = img.blockIdx[b.end]
	}

	i := int(b.start)
	end := int(b.end)
	endsInControl := isControl(p.Code[end-1].Op)
	for i < end {
		in := &p.Code[i]

		// Compare-and-branch fusion. The branch, when present, is the
		// block terminator reading the comparison result just written.
		// Results into $zero or $sp keep the plain path (the branch would
		// read the re-cleared zero; $sp writes need the floor check).
		if isCmp(in.Op) && i+1 < end && in.Rd != mach.Zero && in.Rd != mach.SP {
			br := &p.Code[i+1]
			if (br.Op == mcode.BEQZ || br.Op == mcode.BNEZ) && br.Rs == in.Rd {
				x := xinstr{
					op: fusedOp(in.Op, in.HasImm),
					rd: uint8(in.Rd), rs: uint8(in.Rs), rt: uint8(in.Rt),
					imm: in.Imm,
					a1:  img.edgeTo(br.Target),
					a2:  fallBi,
					pc:  int32(i),
				}
				if br.Op == mcode.BNEZ {
					x.flags |= fBNZ
				}
				if !img.mergeCmpBranch(b, &x, i, fallBi) {
					img.xcode = append(img.xcode, x)
				}
				i += 2
				continue
			}
		}

		// Save/restore run fusion: consecutive stores (or loads) off one
		// base register collapse into a single bounds-checked copy loop.
		// Offsets are bounded so the run's min/max bounds check cannot
		// overflow (see runBaseMax in fastvm.go).
		if in.Op == mcode.SW {
			j := i
			for j < end && p.Code[j].Op == mcode.SW && p.Code[j].Rs == in.Rs &&
				runOffOK(p.Code[j].Imm) {
				j++
			}
			if j-i >= 2 {
				img.emitRun(xSWRUN, p, i, j, uint8(in.Rs), bi)
				i = j
				continue
			}
		}
		if in.Op == mcode.LW {
			// A load must not redefine the base mid-run, and loads into
			// $sp stay on the plain path for the stack guard.
			j := i
			for j < end && p.Code[j].Op == mcode.LW && p.Code[j].Rs == in.Rs &&
				p.Code[j].Rd != in.Rs && p.Code[j].Rd != mach.SP &&
				runOffOK(p.Code[j].Imm) {
				j++
			}
			if j-i >= 2 {
				img.emitRun(xLWRUN, p, i, j, uint8(in.Rs), bi)
				i = j
				continue
			}
		}

		// Pair fusion: the hottest adjacent pairs collapse into one
		// dispatch. Neither half may write $sp (the guard must follow the
		// writer immediately); faultable halves carry their block in a2 so
		// the trap helpers can rebuild exact partial statistics. When the
		// fused pair reaches the block terminator, the terminator itself is
		// absorbed too (fuseTriple) and the whole sequence retires in one
		// dispatch.
		if i+1 < end {
			if x, ok := fusePair(img, in, &p.Code[i+1], i, bi); ok {
				if i+3 == end {
					if y, ok3 := fuseTriple(img, x, &p.Code[i+1], &p.Code[i+2], fallBi); ok3 {
						if !img.mergeTriple(b, &y, i) {
							img.xcode = append(img.xcode, y)
						}
						i += 3
						continue
					}
				}
				if !img.mergePeep(b, &x, i) {
					img.xcode = append(img.xcode, x)
				}
				i += 2
				continue
			}
		}

		// A return jump right after a guarded frame adjust retires with it.
		if in.Op == mcode.JR {
			if n := len(img.xcode); n > int(b.x0) {
				if pv := &img.xcode[n-1]; pv.op == xADDISPG && int(pv.pc) == i-1 {
					pv.op = xADDISPGJR
					pv.rt = uint8(in.Rs)
					i++
					continue
				}
			}
		}

		img.xcode = append(img.xcode, decodeOne(img, in, i, bi, fallBi))
		if writesSP(in) {
			// An immediate add into $sp (the frame adjust) absorbs its guard;
			// every other $sp writer keeps the separate guard opcode.
			if last := &img.xcode[len(img.xcode)-1]; last.op == xADDI {
				last.op = xADDISPG
				last.a2 = bi
			} else {
				img.xcode = append(img.xcode, xinstr{op: xSPG, a2: bi, pc: int32(i)})
			}
		}
		i++
	}
	if !endsInControl {
		// A trailing plain move folds into the synthetic terminator; its pc
		// is already b.end-1, as xFALL's would be. When an LW+ADD pair
		// precedes the move, the whole tail collapses into xLWADDMOVEJ with
		// the fallthrough block as the packed jump target.
		if n := len(img.xcode); n > int(b.x0) {
			if pv := &img.xcode[n-1]; pv.op == xMOVE && pv.pc == b.end-1 {
				if n-1 > int(b.x0) && fallBi >= 0 {
					if p2 := &img.xcode[n-2]; p2.op == xLWADDR && p2.pc == b.end-3 {
						p2.op = xLWADDMOVEJ
						p2.imm = int64(uint8(p2.imm)) | int64(pv.rd)<<8 |
							int64(pv.rs)<<16 | int64(fallBi)<<24
						img.xcode = img.xcode[:n-1]
						return
					}
				}
				pv.op = xMOVEFALL
				pv.a2 = fallBi
				return
			}
			if pv := &img.xcode[n-1]; pv.op == xLI && pv.pc == b.end-1 {
				pv.op = xLIFALL
				pv.a2 = fallBi
				return
			}
		}
		img.xcode = append(img.xcode, xinstr{op: xFALL, a2: fallBi, pc: b.end - 1})
	}
}

// zrename maps a destination register to its executor slot: writes to
// $zero land in the scratch sink so the zero stays hardwired.
func zrename(r mach.Reg) uint8 {
	if r == mach.Zero {
		return zeroSink
	}
	return uint8(r)
}

// packMove packs a MOVE's destination and source into the low bytes of an
// imm field left free by a register-form primary op; the executor indexes
// the register file with uint8(imm) / uint8(imm>>8).
func packMove(rd, rs uint8) int64 {
	return int64(rd) | int64(rs)<<8
}

// fitsInt32 reports whether a load offset can move into the a1 field.
func fitsInt32(v int64) bool { return v == int64(int32(v)) }

// mergePeep folds the fused pair x (covering code indices i, i+1) into the
// previously emitted superinstruction when the two form one of the hot
// chains the suite's dynamic pair histogram surfaced. The predecessor must
// belong to the same block and end exactly at i, which its pc field proves
// (it is a single instruction, or a pair whose pc names its first half).
// Returns true when x was absorbed and must not be appended.
func (img *image) mergePeep(b *block, x *xinstr, i int) bool {
	if len(img.xcode) == int(b.x0) {
		return false
	}
	pv := &img.xcode[len(img.xcode)-1]
	switch {
	case x.op == xLIREM2 && pv.op == xDIVR && int(pv.pc) == i-1:
		// DIV r ; LI 2 ; REM: the divide's fault bookkeeping (a2, pc)
		// carries over unchanged.
		pv.op = xDIVLIREM2
		pv.flags = x.rd
		pv.a1 = int32(x.rt)<<8 | int32(x.rs)
		return true
	case x.op == xMOVEJAL && pv.op == xMOVE2 && int(pv.pc) == i-2:
		pv.op = xMOVE2MOVEJAL
		pv.imm = x.imm<<16 | int64(x.rd)<<8 | int64(x.rs)
		pv.a1 = x.a1
		return true
	case x.op == xMOVEMULI && pv.op == xMOVEADDR && int(pv.pc) == i-2:
		pv.op = xMOVEADDMOVEMUL
		pv.a1 = int32(uint8(pv.imm)) | int32(uint8(pv.imm>>8))<<8 |
			int32(x.rt)<<16 | int32(x.flags)<<24
		pv.flags = x.rd
		pv.a2 = int32(x.rs)
		pv.imm = x.imm
		return true
	case x.op == xADDRMOVE && pv.op == xMOVELW && int(pv.pc) == i-2 &&
		fitsInt32(pv.imm):
		pv.op = xMOVELWADDMOVE
		pv.imm = pv.imm<<32 | int64(x.rd) | int64(x.rs)<<8 | int64(x.rt)<<16
		pv.a1 = int32(uint8(x.imm)) | int32(uint8(x.imm>>8))<<8
		return true
	case x.op == xMOVEJ && pv.op == xLWADDR && int(pv.pc) == i-2:
		pv.op = xLWADDMOVEJ
		pv.imm = int64(uint8(pv.imm)) | int64(x.rd)<<8 | int64(x.rs)<<16 |
			int64(x.a1)<<24
		return true
	case x.op == xMOVEJ && pv.op == xMOVEADDMOVEMUL && int(pv.pc) == i-4 &&
		fitsInt32(pv.imm):
		pv.op = xMOVEADDMOVEMULMOVEJ
		pv.imm = int64(x.a1)<<32 | int64(uint32(pv.imm))
		pv.a2 |= int32(x.rd)<<8 | int32(x.rs)<<16
		return true
	}
	return false
}

// mergeCmpBranch folds a freshly fused compare-and-branch x (covering code
// indices i, i+1) into the preceding superinstructions when the block tail
// is the parity-walk shape: two xDIVLIREM2 merges feeding a register SNE.
// The remainders must read their own divides' quotients and the compare the
// two parities just computed, so the fused executor can re-read every
// intermediate value from the register file exactly where the reference
// interpreter would (any register aliasing between the eight instructions
// then resolves identically). Returns true when x was absorbed.
func (img *image) mergeCmpBranch(b *block, x *xinstr, i int, fallBi int32) bool {
	if x.op != xSNERB || fallBi < 0 || len(img.xcode)-int(b.x0) < 2 {
		return false
	}
	n := len(img.xcode)
	pv, p2 := &img.xcode[n-1], &img.xcode[n-2]
	if pv.op != xDIVLIREM2 || int(pv.pc) != i-3 ||
		p2.op != xDIVLIREM2 || int(p2.pc) != i-6 {
		return false
	}
	if uint8(p2.a1) != p2.rd || uint8(pv.a1) != pv.rd ||
		x.rs != uint8(p2.a1>>8) || x.rt != uint8(pv.a1>>8) {
		return false
	}
	p2.op = xDIVLIREM2X2SNEB
	p2.imm = int64(p2.flags) | int64(uint8(p2.a1>>8))<<8 | int64(pv.rd)<<16 |
		int64(pv.rs)<<24 | int64(pv.rt)<<32 | int64(pv.flags)<<40 |
		int64(uint8(pv.a1>>8))<<48
	p2.flags = x.rd<<1 | x.flags&fBNZ
	p2.a1 = x.a1
	img.xcode = img.xcode[:n-1]
	return true
}

// mergeTriple folds a freshly fused LW-compare-branch triple y (covering
// code indices i..i+2) into a preceding xMULIADD when the block tail is the
// scaled-array-probe shape: MUL (imm) ; ADD computing the element address,
// LW through that address, SEQ (imm) on the loaded word, branch. The load
// base must be the add's destination and the compare must read the loaded
// value, so the fused executor re-reads every intermediate from the register
// file at the reference interpreter's program points (aliasing between the
// five instructions then resolves identically). The small fields ride in the
// packed imm, so the lw offset and mul imm must fit int16 and the compare
// operand int8. Rewrites the xMULIADD in place and returns true when y was
// absorbed.
func (img *image) mergeTriple(b *block, y *xinstr, i int) bool {
	if y.op != xLWSEQIB || len(img.xcode)-int(b.x0) < 1 {
		return false
	}
	pv := &img.xcode[len(img.xcode)-1]
	if pv.op != xMULIADD || int(pv.pc) != i-2 {
		return false
	}
	if y.rs != pv.rt || y.flags>>1 != y.rd {
		return false
	}
	off := int64(int32(uint32(y.imm)))
	opnd := y.imm >> 32
	if int64(int16(off)) != off || int64(int8(opnd)) != opnd ||
		int64(int16(pv.imm)) != pv.imm {
		return false
	}
	pv.op = xMULIADDLWSEQIB
	pv.imm = int64(pv.rd) | int64(pv.rs)<<8 | int64(y.rd)<<16 |
		int64(uint16(int16(off)))<<24 | int64(uint16(int16(pv.imm)))<<40 |
		int64(uint8(int8(opnd)))<<56
	pv.rd, pv.rs, pv.rt = pv.rt, pv.flags, uint8(pv.a1)
	pv.flags = y.rt<<1 | y.flags&fBNZ
	pv.a1, pv.a2 = y.a1, y.a2
	return true
}

// fuseTriple upgrades an already-fused pair x (whose second half is b) to
// absorb the block terminator c when the combination is one of the triple
// superinstructions. c is always the block's last instruction.
func fuseTriple(img *image, x xinstr, b, c *mcode.Instr, fallBi int32) (xinstr, bool) {
	switch x.op {
	case xADDIMOVE:
		if c.Op == mcode.J {
			x.op = xADDIMOVEJ
			x.a1 = img.edgeTo(c.Target)
			return x, true
		}
	case xLIMOVE:
		if c.Op == mcode.JR {
			x.op = xLIMOVEJR
			x.rs = uint8(c.Rs)
			return x, true
		}
	case xLWSEQR, xLWSEQI, xLWSNER, xLWSNEI, xLWSLTR, xLWSLTI, xLWSLER, xLWSLEI:
		// The branch must read the compare result just written (a result
		// into $zero reads back as hardwired 0 — keep the plain path), the
		// compare operand must fit the packed imm's high half, and the
		// fallthrough block must exist so it can be addressed as a2+1.
		if c.Op != mcode.BEQZ && c.Op != mcode.BNEZ {
			return xinstr{}, false
		}
		if b.Rd == mach.Zero || mach.Reg(c.Rs) != b.Rd || fallBi < 0 || !fitsInt32(x.imm) {
			return xinstr{}, false
		}
		switch x.op {
		case xLWSEQR:
			x.op = xLWSEQRB
		case xLWSEQI:
			x.op = xLWSEQIB
		case xLWSNER:
			x.op = xLWSNERB
		case xLWSNEI:
			x.op = xLWSNEIB
		case xLWSLTR:
			x.op = xLWSLTRB
		case xLWSLTI:
			x.op = xLWSLTIB
		case xLWSLER:
			x.op = xLWSLERB
		case xLWSLEI:
			x.op = xLWSLEIB
		}
		x.imm = x.imm<<32 | int64(uint32(x.a1))
		x.flags = x.flags << 1
		if c.Op == mcode.BNEZ {
			x.flags |= fBNZ
		}
		x.a1 = img.edgeTo(c.Target)
		return x, true
	}
	return xinstr{}, false
}

// fusePair fuses the instruction pair (a at code index pc, b at pc+1) into
// one superinstruction when it matches one of the hot shapes. Execution
// order inside a pair is preserved (a's writes are visible to b's reads)
// and neither half may write $sp. Faultable halves are fusible — the trap
// helpers rebuild exact partial statistics from the original code — so
// loads pair freely; a divide's zero check either moves to run time
// (xLWDIVR) or is discharged at decode time by a non-zero constant
// divisor (xLIDIVR/xLIREMR).
func fusePair(img *image, a, b *mcode.Instr, pc int, bi int32) (xinstr, bool) {
	if writesSP(a) || writesSP(b) {
		return xinstr{}, false
	}
	x := xinstr{pc: int32(pc)}
	switch a.Op {
	case mcode.LW:
		if !fitsInt32(a.Imm) {
			return xinstr{}, false
		}
		x.rd, x.rs, x.a1, x.a2 = zrename(a.Rd), uint8(a.Rs), int32(a.Imm), bi
		switch b.Op {
		case mcode.MOVE:
			x.op = xLWMOVE
			x.rt, x.flags = zrename(b.Rd), uint8(b.Rs)
			return x, true
		case mcode.ADD, mcode.SEQ, mcode.SLT, mcode.SLE, mcode.SNE:
			switch b.Op {
			case mcode.ADD:
				x.op = aluXop(xLWADDR, xLWADDI, b.HasImm)
			case mcode.SEQ:
				x.op = aluXop(xLWSEQR, xLWSEQI, b.HasImm)
			case mcode.SLT:
				x.op = aluXop(xLWSLTR, xLWSLTI, b.HasImm)
			case mcode.SLE:
				x.op = aluXop(xLWSLER, xLWSLEI, b.HasImm)
			case mcode.SNE:
				x.op = aluXop(xLWSNER, xLWSNEI, b.HasImm)
			}
			x.rt, x.flags = zrename(b.Rd), uint8(b.Rs)
			if b.HasImm {
				x.imm = b.Imm
			} else {
				x.imm = int64(uint8(b.Rt))
			}
			return x, true
		case mcode.DIV:
			if !b.HasImm {
				x.op = xLWDIVR
				x.rt, x.flags = zrename(b.Rd), uint8(b.Rs)
				x.imm = int64(uint8(b.Rt))
				return x, true
			}
		}
	case mcode.MOVE:
		mrd, mrs := zrename(a.Rd), uint8(a.Rs)
		switch b.Op {
		case mcode.MOVE:
			x.op = xMOVE2
			x.rd, x.rs, x.rt, x.flags = mrd, mrs, zrename(b.Rd), uint8(b.Rs)
			return x, true
		case mcode.LW:
			x.op = xMOVELW
			x.rd, x.rs, x.imm = zrename(b.Rd), uint8(b.Rs), b.Imm
			x.rt, x.flags = mrd, mrs
			x.a2 = bi
			return x, true
		case mcode.ADD, mcode.MUL:
			if b.Op == mcode.ADD {
				x.op = aluXop(xMOVEADDR, xMOVEADDI, b.HasImm)
			} else {
				x.op = aluXop(xMOVEMULR, xMOVEMULI, b.HasImm)
			}
			x.rd, x.rs = zrename(b.Rd), uint8(b.Rs)
			if b.HasImm {
				x.imm = b.Imm
				x.rt, x.flags = mrd, mrs
			} else {
				x.rt = uint8(b.Rt)
				x.imm = packMove(mrd, mrs)
			}
			return x, true
		case mcode.J:
			x.op = xMOVEJ
			x.rd, x.rs = mrd, mrs
			x.a1 = img.edgeTo(b.Target)
			return x, true
		case mcode.JAL:
			if b.Target >= 0 {
				x.op = xMOVEJAL
				x.rd, x.rs = mrd, mrs
				x.a1 = img.edgeTo(b.Target)
				x.imm = int64(pc) + 2 // the JAL's return address
				return x, true
			}
		case mcode.JR:
			x.op = xMOVEJR
			x.rd, x.rs, x.rt = mrd, mrs, uint8(b.Rs)
			return x, true
		}
	case mcode.SW:
		if b.Op == mcode.LI && fitsInt32(a.Imm) {
			x.op = xSWLI
			x.rs, x.rt = uint8(a.Rs), uint8(a.Rt)
			x.a1, x.a2 = int32(a.Imm), bi
			x.rd, x.imm = zrename(b.Rd), b.Imm
			return x, true
		}
	case mcode.LI:
		switch b.Op {
		case mcode.LI:
			if fitsInt32(b.Imm) {
				x.op = xLI2
				x.rd, x.imm = zrename(a.Rd), a.Imm
				x.rt, x.a1 = zrename(b.Rd), int32(b.Imm)
				return x, true
			}
		case mcode.MOVE:
			x.op = xLIMOVE
			x.rd, x.imm = zrename(a.Rd), a.Imm
			x.rt, x.flags = zrename(b.Rd), uint8(b.Rs)
			return x, true
		case mcode.DIV, mcode.REM:
			// The divisor must be the constant just materialized (and the
			// constant non-zero, so the pair cannot fault). An a.Rd of
			// $zero would make the divisor read as 0 — not fusible.
			if !b.HasImm && b.Rt == a.Rd && a.Rd != mach.Zero && a.Imm != 0 {
				if b.Op == mcode.DIV {
					x.op = xLIDIVR
				} else if a.Imm == 2 {
					x.op = xLIREM2
				} else {
					x.op = xLIREMR
				}
				x.rd, x.imm = uint8(a.Rd), a.Imm
				x.rt, x.rs = zrename(b.Rd), uint8(b.Rs)
				return x, true
			}
		}
	case mcode.ADD, mcode.MUL:
		if b.Op == mcode.MOVE {
			if a.Op == mcode.ADD {
				x.op = aluXop(xADDRMOVE, xADDIMOVE, a.HasImm)
			} else {
				x.op = aluXop(xMULRMOVE, xMULIMOVE, a.HasImm)
			}
			x.rd, x.rs = zrename(a.Rd), uint8(a.Rs)
			mrd, mrs := zrename(b.Rd), uint8(b.Rs)
			if a.HasImm {
				x.imm = a.Imm
				x.rt, x.flags = mrd, mrs
			} else {
				x.rt = uint8(a.Rt)
				x.imm = packMove(mrd, mrs)
			}
			return x, true
		}
		if a.Op == mcode.ADD && b.Op == mcode.LW && fitsInt32(b.Imm) {
			x.rd, x.rs = zrename(a.Rd), uint8(a.Rs)
			x.a1, x.a2 = int32(b.Imm), bi
			if a.HasImm {
				x.op = xADDILW
				x.imm = a.Imm
				x.rt, x.flags = zrename(b.Rd), uint8(b.Rs)
			} else {
				x.op = xADDRLW
				x.rt = uint8(a.Rt)
				x.flags = zrename(b.Rd)
				x.imm = int64(uint8(b.Rs))
			}
			return x, true
		}
		if a.Op == mcode.MUL && a.HasImm && b.Op == mcode.ADD && !b.HasImm {
			x.op = xMULIADD
			x.rd, x.rs, x.imm = zrename(a.Rd), uint8(a.Rs), a.Imm
			x.rt, x.flags = zrename(b.Rd), uint8(b.Rs)
			x.a1 = int32(uint8(b.Rt))
			return x, true
		}
	}
	return xinstr{}, false
}

// writesSP reports whether the instruction can move the stack pointer and
// therefore needs a stack guard after it.
func writesSP(in *mcode.Instr) bool {
	switch in.Op {
	case mcode.LI, mcode.MOVE, mcode.ADD, mcode.SUB, mcode.MUL, mcode.DIV,
		mcode.REM, mcode.SLT, mcode.SLE, mcode.SEQ, mcode.SNE, mcode.LW:
		return in.Rd == mach.SP
	}
	return false
}

// emitRun fuses code[i:j) (all LW or all SW off the same base) into one
// run superinstruction.
func (img *image) emitRun(op xop, p *mcode.Program, i, j int, base uint8, bi int32) {
	r := memRun{base: base}
	for k := i; k < j; k++ {
		in := &p.Code[k]
		reg := in.Rt // SW: data source
		if op == xLWRUN {
			reg = in.Rd
			if reg == mach.Zero {
				reg = zeroSink
			}
		}
		if k == i || in.Imm < r.minOff {
			r.minOff = in.Imm
		}
		if k == i || in.Imm > r.maxOff {
			r.maxOff = in.Imm
		}
		r.ents = append(r.ents, runEnt{off: in.Imm, reg: uint8(reg)})
	}
	img.xcode = append(img.xcode, xinstr{
		op: op, rs: base,
		a1: int32(len(img.runs)),
		a2: bi,
		pc: int32(i),
	})
	img.runs = append(img.runs, r)
}

func fusedOp(op mcode.OpCode, hasImm bool) xop {
	var base xop
	switch op {
	case mcode.SLT:
		base = xSLTRB
	case mcode.SLE:
		base = xSLERB
	case mcode.SEQ:
		base = xSEQRB
	case mcode.SNE:
		base = xSNERB
	}
	if hasImm {
		base++
	}
	return base
}

func aluXop(reg, imm xop, hasImm bool) xop {
	if hasImm {
		return imm
	}
	return reg
}

// decodeOne translates a single instruction at code index pc within block
// bi (fallBi is the block's fallthrough successor, used by terminators).
func decodeOne(img *image, in *mcode.Instr, pc int, bi, fallBi int32) xinstr {
	x := xinstr{
		rd: uint8(in.Rd), rs: uint8(in.Rs), rt: uint8(in.Rt),
		imm: in.Imm,
		pc:  int32(pc),
	}
	switch in.Op {
	case mcode.LI:
		x.op = xLI
	case mcode.MOVE:
		x.op = xMOVE
	case mcode.ADD:
		x.op = aluXop(xADDR, xADDI, in.HasImm)
	case mcode.SUB:
		x.op = aluXop(xSUBR, xSUBI, in.HasImm)
	case mcode.MUL:
		x.op = aluXop(xMULR, xMULI, in.HasImm)
	case mcode.DIV:
		x.op = aluXop(xDIVR, xDIVI, in.HasImm)
		x.a2 = bi
	case mcode.REM:
		x.op = aluXop(xREMR, xREMI, in.HasImm)
		x.a2 = bi
	case mcode.SLT:
		x.op = aluXop(xSLTR, xSLTI, in.HasImm)
	case mcode.SLE:
		x.op = aluXop(xSLER, xSLEI, in.HasImm)
	case mcode.SEQ:
		x.op = aluXop(xSEQR, xSEQI, in.HasImm)
	case mcode.SNE:
		x.op = aluXop(xSNER, xSNEI, in.HasImm)
	case mcode.LW:
		x.op = xLW
		x.a2 = bi
	case mcode.SW:
		x.op = xSW
		x.a2 = bi
	case mcode.BEQZ:
		x.op = xBEQZ
		x.a1 = img.edgeTo(in.Target)
		x.a2 = fallBi
	case mcode.BNEZ:
		x.op = xBNEZ
		x.a1 = img.edgeTo(in.Target)
		x.a2 = fallBi
	case mcode.J:
		x.op = xJ
		x.a1 = img.edgeTo(in.Target)
	case mcode.JAL:
		x.op = xJAL
		// Unresolved extern call: control leaves the image (pc -1).
		x.a1 = -1
		if in.Target >= 0 {
			x.a1 = img.edgeTo(in.Target)
		}
	case mcode.JALR:
		x.op = xJALR
		x.a1 = bi
	case mcode.JR:
		x.op = xJR
	case mcode.PRINT:
		x.op = xPRINT
	case mcode.EXIT:
		x.op = xEXIT
	}
	// Writes to $zero are renamed into the scratch slot so the zero stays
	// hardwired ($sp writers get a guard appended by decodeBlock).
	if in.Rd == mach.Zero && writesZero(in.Op) {
		x.rd = zeroSink
	}
	return x
}

// writesZero reports whether the op's Rd field is a destination.
func writesZero(op mcode.OpCode) bool {
	switch op {
	case mcode.LI, mcode.MOVE, mcode.ADD, mcode.SUB, mcode.MUL, mcode.DIV,
		mcode.REM, mcode.SLT, mcode.SLE, mcode.SEQ, mcode.SNE, mcode.LW:
		return true
	}
	return false
}
