package codegen

import (
	"reflect"
	"strings"
	"testing"

	"chow88/internal/core"
	"chow88/internal/interp"
	"chow88/internal/lower"
	"chow88/internal/mcode"
	"chow88/internal/opt"
	"chow88/internal/parser"
	"chow88/internal/sema"
	"chow88/internal/sim"
)

func compile(t *testing.T, src string, mode core.Mode) *mcode.Program {
	t.Helper()
	tree, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(tree)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	mod, err := lower.Build(info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if mode.Optimize {
		opt.Run(mod)
	}
	plan := core.PlanModule(mod, mode)
	prog, err := Generate(plan)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	return prog
}

func runBoth(t *testing.T, src string, mode core.Mode) {
	t.Helper()
	prog := compile(t, src, mode)
	res, err := sim.Run(prog, sim.Options{})
	if err != nil {
		t.Fatalf("sim: %v\n%s", err, prog.Disassemble())
	}
	tree, _ := parser.Parse(src)
	info, _ := sema.Check(tree)
	want, err := interp.Run(info, interp.Options{})
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if !reflect.DeepEqual(res.Output, want.Output) {
		t.Fatalf("output %v != %v\n%s", res.Output, want.Output, prog.Disassemble())
	}
}

// TestParallelMoveSwap: calling g(b, a) from f(a, b) forces a register swap
// through $at under the default convention.
func TestParallelMoveSwap(t *testing.T) {
	src := `
func g(x int, y int) int { return x * 10 + y; }
func f(a int, b int) int { return g(b, a); }
func main() { print(f(1, 2)); }`
	runBoth(t, src, core.ModeBase())
	prog := compile(t, src, core.ModeBase())
	if !strings.Contains(prog.Disassemble(), "$at") {
		t.Log("no $at use; swap may have been resolved another way (acceptable)")
	}
}

// TestParallelMoveRotation: three-way rotation of argument registers.
func TestParallelMoveRotation(t *testing.T) {
	runBoth(t, `
func g(x int, y int, z int) int { return x * 100 + y * 10 + z; }
func f(a int, b int, c int) int { return g(c, a, b); }
func main() { print(f(1, 2, 3)); }`, core.ModeBase())
}

// TestStackArgsBothDirections: args beyond the register convention travel on
// the stack and come back intact, including under IPRA negotiation.
func TestStackArgsBothDirections(t *testing.T) {
	src := `
func g(a int, b int, c int, d int, e int, f int, h int) int {
    return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6 + h * 7;
}
func main() { print(g(1, 2, 3, 4, 5, 6, 7)); }`
	runBoth(t, src, core.ModeBase())
	runBoth(t, src, core.ModeC())
	runBoth(t, src, core.ModeE())
}

// TestFrameRestoredAcrossCalls: SP must come back to its original value;
// a pattern of nested calls with frames of varying size would corrupt
// results otherwise.
func TestFrameRestoredAcrossCalls(t *testing.T) {
	runBoth(t, `
func deep(n int) int {
    var buf [17]int;
    buf[3] = n;
    if (n <= 0) { return buf[3]; }
    var r int;
    r = deep(n - 1);
    return r + buf[3];
}
func main() { print(deep(6)); }`, core.ModeC())
}

// TestReturnValueThroughV0 checks the result path with memory-resident
// destinations (restricted register set forces spills).
func TestReturnValueThroughV0(t *testing.T) {
	runBoth(t, `
func seven() int { return 7; }
func f() int {
    var a int;
    var b int;
    var c int;
    var d int;
    var e int;
    var g2 int;
    var h int;
    var i int;
    a = seven(); b = seven(); c = seven(); d = seven();
    e = seven(); g2 = seven(); h = seven(); i = seven();
    return a + b + c + d + e + g2 + h + i;
}
func main() { print(f()); }`, core.ModeE())
}

// TestExternCallTraps: a direct call to an extern function leaves the code
// image and traps, mirroring the interpreter.
func TestExternCallTraps(t *testing.T) {
	prog := compile(t, `
extern func lib(x int) int;
func main() { print(lib(3)); }`, core.ModeBase())
	_, err := sim.Run(prog, sim.Options{})
	if err == nil {
		t.Fatal("extern call should trap")
	}
}

// TestSaveRestoreClassification: callee-saved prologue traffic must carry
// the save/restore class so pixie's metric sees it.
func TestSaveRestoreClassification(t *testing.T) {
	prog := compile(t, `
func leaf(v int) int {
    if (v <= 0) { return 0; }
    return leaf(v - 1) + v;
}
func main() { print(leaf(5)); }`, core.ModeBase())
	res, err := sim.Run(prog, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SaveRestoreLS() == 0 {
		t.Error("recursive function must produce save/restore traffic")
	}
	if res.Stats.LoadsByClass[mcode.ClassSaveRestore] == 0 {
		t.Error("restores missing the save/restore class")
	}
}

// TestDisassemblyShape sanity-checks the generated image structure.
func TestDisassemblyShape(t *testing.T) {
	prog := compile(t, `
func add(a int, b int) int { return a + b; }
func main() { print(add(1, 2)); }`, core.ModeBase())
	d := prog.Disassemble()
	for _, want := range []string{"main:", "add:", "jal", "jr $ra", "exit"} {
		if !strings.Contains(d, want) {
			t.Errorf("missing %q:\n%s", want, d)
		}
	}
	if prog.Code[0].Op != mcode.JAL {
		t.Error("image must start with the startup stub")
	}
	if prog.Code[1].Op != mcode.EXIT {
		t.Error("stub must exit after main returns")
	}
}

// TestGeneratedImagesVerify: every mode's output must pass the static
// verifier (Generate runs it at link time; this asserts it directly and
// that corrupting an image is caught).
func TestGeneratedImagesVerify(t *testing.T) {
	src := `
func fib(n int) int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() {
    var i int;
    i = 0;
    while (i < 5) { print(fib(i)); i = i + 1; }
}`
	for _, mode := range []core.Mode{
		core.ModeBase(), core.ModeA(), core.ModeB(),
		core.ModeC(), core.ModeD(), core.ModeE(),
	} {
		prog := compile(t, src, mode)
		if err := mcode.Verify(prog); err != nil {
			t.Fatalf("%s: generated image fails verify: %v", mode.Name, err)
		}
	}

	prog := compile(t, src, core.ModeBase())
	corrupt := func(mutate func(p *mcode.Program)) error {
		clone := *prog
		clone.Code = append([]mcode.Instr(nil), prog.Code...)
		mutate(&clone)
		return mcode.Verify(&clone)
	}
	if err := corrupt(func(p *mcode.Program) {
		for i := range p.Code {
			if p.Code[i].Op == mcode.BEQZ || p.Code[i].Op == mcode.BNEZ {
				p.Code[i].Target = len(p.Code) + 7
				return
			}
		}
		t.Fatal("no branch to corrupt")
	}); err == nil {
		t.Error("out-of-range branch target must fail verify")
	}
	if err := corrupt(func(p *mcode.Program) {
		p.Code[3].Rd = 200
	}); err == nil {
		t.Error("register index out of range must fail verify")
	}
	if err := corrupt(func(p *mcode.Program) {
		p.Code[0].Target = len(p.Code) + 1
	}); err == nil {
		t.Error("out-of-range call target must fail verify")
	}
}
